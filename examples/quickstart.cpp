// Quickstart: disperse 10 robots on a 16-node dynamic graph in ~6 lines of
// library code. This is the minimal end-to-end use of the public API:
//   1. pick an adversary (here: a fresh random connected graph every round,
//      the 1-interval connected dynamic graph model of the paper),
//   2. pick an initial configuration (here: all robots on one node),
//   3. run Algorithm 4 (Dispersion_Dynamic) through the engine,
//   4. inspect the RunResult.
#include <cstdio>

#include "core/dispersion.h"
#include "dynamic/random_adversary.h"
#include "robots/placement.h"
#include "sim/engine.h"

int main() {
  using namespace dyndisp;

  const std::size_t n = 16;  // graph nodes
  const std::size_t k = 10;  // robots

  RandomAdversary adversary(n, /*extra_edges=*/5, /*seed=*/42);
  Configuration initial = placement::rooted(n, k);

  EngineOptions options;
  options.max_rounds = 10 * k;
  options.record_progress = true;

  Engine engine(adversary, std::move(initial), core::dispersion_factory(),
                options);
  const RunResult result = engine.run();

  std::printf("dispersed: %s\n", result.dispersed ? "yes" : "no");
  std::printf("rounds:    %llu (Theorem 4 bound: k = %zu)\n",
              static_cast<unsigned long long>(result.rounds), k);
  std::printf("moves:     %zu edge traversals\n", result.total_moves);
  std::printf("memory:    %zu bits per robot (Theta(log k))\n",
              result.max_memory_bits);
  std::printf("progress:  ");
  for (std::size_t i = 0; i < result.occupied_per_round.size(); ++i)
    std::printf("%s%zu", i ? " -> " : "", result.occupied_per_round[i]);
  std::printf(" occupied nodes\n");

  std::printf("final positions:\n");
  for (RobotId id = 1; id <= k; ++id)
    std::printf("  robot %2u -> node %u\n", id,
                result.final_config.position(id));
  return result.dispersed ? 0 : 1;
}
