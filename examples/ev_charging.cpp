// The paper's motivating application (Section I): relocating self-driving
// electric cars (robots) to recharge stations (graph nodes), where every
// station can serve one car and the road network changes -- lane closures,
// congestion -- from minute to minute.
//
// A 4x5 city grid of stations starts with all 14 cars clustered at two
// downtown garages. Each round a couple of road segments close and others
// reopen (edge-churn adversary). The cars run Algorithm 4: global
// communication is the cars' radio network, 1-neighborhood knowledge is
// their ability to see whether adjacent stations are taken.
#include <cstdio>

#include "core/dispersion.h"
#include "dynamic/churn_adversary.h"
#include "graph/builders.h"
#include "robots/placement.h"
#include "sim/engine.h"

int main() {
  using namespace dyndisp;

  const std::size_t rows = 4, cols = 5;
  const std::size_t n = rows * cols;  // 20 charging stations
  const std::size_t k = 14;           // 14 electric cars

  // City grid with road churn: 2 road segments swapped per round.
  ChurnAdversary roads(builders::grid(rows, cols), /*churn=*/2, /*seed=*/7);

  // Cars 1-7 in the garage at station (0,0), cars 8-14 at station (2,3).
  std::vector<NodeId> start(k);
  for (std::size_t i = 0; i < 7; ++i) start[i] = 0;
  for (std::size_t i = 7; i < k; ++i) start[i] = 2 * cols + 3;
  Configuration initial = placement::explicit_positions(n, std::move(start));

  EngineOptions options;
  options.max_rounds = 10 * k;
  options.record_trace = true;

  Engine engine(roads, std::move(initial), core::dispersion_factory(),
                options);
  const RunResult result = engine.run();

  std::printf("%zu cars, %zu stations, changing roads\n", k, n);
  std::printf("all cars at their own charger after %llu rounds "
              "(Theorem 4 guarantees <= %zu)\n\n",
              static_cast<unsigned long long>(result.rounds), k);

  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    const auto& rec = result.trace.at(i);
    std::size_t moved = 0;
    for (const Port p : rec.moves)
      if (p != kInvalidPort) ++moved;
    std::printf("minute %zu: %zu cars relocated, %zu/%zu stations charging\n",
                i, moved, rec.after.occupied_count(), k);
  }

  std::printf("\nfinal charging map (%zux%zu grid, id = car, . = free):\n",
              rows, cols);
  const auto occ = result.final_config.occupancy();
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const NodeId v = static_cast<NodeId>(r * cols + c);
      const auto cars = result.final_config.robots_at(v);
      if (cars.empty())
        std::printf("  . ");
      else
        std::printf(" %2u ", cars.front());
    }
    std::printf("\n");
  }
  (void)occ;
  return result.dispersed ? 0 : 1;
}
