// Byzantine demo: the same fleet, three times.
//   1. All honest: Algorithm 4 disperses within k rounds (Theorem 4).
//   2. Robot 1 CRASHES at round 0: tolerated, O(k-1) rounds (Theorem 5).
//   3. Robot 1 LIES ("I am alone here") instead of crashing: the protocol
//      deadlocks -- nothing moves, ever.
// Crash tolerance is not Byzantine tolerance; the paper lists Byzantine
// robots as an open direction, and this is why.
#include <cstdio>
#include <memory>
#include <set>

#include "core/dispersion.h"
#include "dynamic/random_adversary.h"
#include "robots/placement.h"
#include "sim/byzantine.h"
#include "sim/engine.h"

int main() {
  using namespace dyndisp;
  const std::size_t n = 16, k = 10;
  const Round horizon = 50 * k;

  auto run = [&](const char* label, FaultSchedule faults,
                 std::shared_ptr<const ByzantineModel> byzantine) {
    RandomAdversary adversary(n, 6, /*seed=*/5);
    EngineOptions options;
    options.max_rounds = horizon;
    options.byzantine = std::move(byzantine);
    Engine engine(adversary, placement::rooted(n, k),
                  core::dispersion_factory(), options, std::move(faults));
    const RunResult r = engine.run();
    if (r.dispersed) {
      std::printf("%-28s dispersed in %llu rounds (moves: %zu)\n", label,
                  static_cast<unsigned long long>(r.rounds), r.total_moves);
    } else {
      std::printf("%-28s DEADLOCKED: %zu/%zu nodes ever occupied after %llu "
                  "rounds (moves: %zu)\n",
                  label, r.max_occupied, k,
                  static_cast<unsigned long long>(r.rounds), r.total_moves);
    }
    return r;
  };

  std::printf("k=%zu robots rooted on one node, fully dynamic graph\n\n", k);
  const RunResult honest = run("all honest:", FaultSchedule::none(), nullptr);
  const RunResult crashed =
      run("robot 1 crashes at round 0:",
          FaultSchedule({{0, 1, CrashPhase::kBeforeCommunicate}}), nullptr);
  const RunResult lied =
      run("robot 1 lies (count = 1):", FaultSchedule::none(),
          std::make_shared<ByzantineModel>(std::set<RobotId>{1},
                                           ByzantineLie::kHideMultiplicity));

  std::printf("\nthe lie wins: the node's broadcaster claims to be alone, the"
              "\nmultiplicity is invisible, no spanning tree is ever rooted"
              "\nthere, and no robot ever moves.\n");
  return honest.dispersed && crashed.dispersed && !lied.dispersed ? 0 : 1;
}
