// Adversary showcase: watch the Theorem 3 lower-bound adversary at work.
//
// Round by round, the adversary rebuilds the two-star dynamic tree of
// Fig. 2 -- a star over the occupied nodes, a star over the empty ones, one
// bridge between the centers -- so that exactly ONE empty node borders the
// occupied set. Algorithm 4 still extracts the maximum possible progress
// (one robot through the bridge per round) and finishes in exactly k-1
// rounds: the Theta(k) bound, visualized.
#include <cstdio>
#include <string>

#include "core/dispersion.h"
#include "dynamic/star_star_adversary.h"
#include "robots/placement.h"
#include "sim/engine.h"

int main() {
  using namespace dyndisp;

  const std::size_t n = 12, k = 8;
  StarStarAdversary adversary(n);

  EngineOptions options;
  options.max_rounds = 10 * k;
  options.record_trace = true;

  Engine engine(adversary, placement::rooted(n, k),
                core::dispersion_factory(), options);
  const RunResult result = engine.run();

  std::printf("star-star adversary vs Algorithm 4: n=%zu, k=%zu, rooted\n\n",
              n, k);
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    const auto& rec = result.trace.at(i);
    // Render the two stars: occupied nodes (count in brackets) | empty.
    std::string occupied_side, empty_side;
    const auto occ = rec.before.occupancy();
    for (NodeId v = 0; v < n; ++v) {
      if (occ[v] > 0) {
        occupied_side += " " + std::to_string(v);
        if (occ[v] > 1) occupied_side += "(x" + std::to_string(occ[v]) + ")";
      } else {
        empty_side += " " + std::to_string(v);
      }
    }
    std::printf("round %zu: T_A = {%s } --bridge-- T_B = {%s }\n", i,
                occupied_side.c_str(), empty_side.c_str());
    for (RobotId id = 1; id <= k; ++id) {
      if (rec.moves[id - 1] != kInvalidPort) {
        std::printf("          robot %u crosses to node %u (+%zu new node)\n",
                    id, rec.after.position(id), rec.newly_occupied);
      }
    }
  }
  std::printf("\ndispersed in %llu rounds; the adversarial lower bound is "
              "k-1 = %zu: ratio %.3f\n",
              static_cast<unsigned long long>(result.rounds), k - 1,
              static_cast<double>(result.rounds) / static_cast<double>(k - 1));
  return result.dispersed && result.rounds == k - 1 ? 0 : 1;
}
