// Fault tolerance (Section VII): robots crash mid-run -- including the
// settled robot of an already-claimed node -- and Algorithm 4 keeps going:
// components split, vacated nodes become claimable again, and every
// surviving robot still ends alone on a node within O(k - f) rounds.
#include <cstdio>

#include "core/dispersion.h"
#include "dynamic/random_adversary.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "sim/fault.h"

int main() {
  using namespace dyndisp;

  const std::size_t n = 18, k = 12;
  RandomAdversary adversary(n, 6, /*seed=*/21);

  // A hand-written crash schedule exercising both crash phases:
  //  - robot 1 (the robot that settles the root) dies at round 2 before
  //    communicating: its node silently becomes free again;
  //  - robot 7 dies at round 3 after communicating: the others planned a
  //    slide around it that it will not perform;
  //  - robot 12 dies late, at round 6.
  const FaultSchedule faults({
      {2, 1, CrashPhase::kBeforeCommunicate},
      {3, 7, CrashPhase::kAfterCommunicate},
      {6, 12, CrashPhase::kBeforeCommunicate},
  });

  EngineOptions options;
  options.max_rounds = 10 * k;
  options.record_progress = true;

  Engine engine(adversary, placement::rooted(n, k),
                core::dispersion_factory(), options, faults);
  const RunResult result = engine.run();

  std::printf("k=%zu robots, f=%zu crashes at rounds 2, 3, 6\n", k,
              result.crashed);
  std::printf("occupied nodes per round: ");
  for (std::size_t i = 0; i < result.occupied_per_round.size(); ++i)
    std::printf("%s%zu", i ? " -> " : "", result.occupied_per_round[i]);
  std::printf("\n(dips are crashes vacating nodes; Algorithm 4 reclaims "
              "them as fresh empty nodes)\n\n");

  std::printf("dispersed: %s in %llu rounds "
              "(Theorem 5: O(k - f) = O(%zu))\n",
              result.dispersed ? "yes" : "no",
              static_cast<unsigned long long>(result.rounds),
              k - result.crashed);
  std::printf("survivors on distinct nodes:\n");
  for (RobotId id = 1; id <= k; ++id) {
    if (result.final_config.alive(id)) {
      std::printf("  robot %2u -> node %u\n", id,
                  result.final_config.position(id));
    } else {
      std::printf("  robot %2u -> (crashed)\n", id);
    }
  }
  return result.dispersed && result.final_config.is_dispersed() ? 0 : 1;
}
