#!/usr/bin/env sh
# Cross-process determinism regression: the same campaign spec + seeds must
# produce
#   * byte-identical results.jsonl across two SEPARATE dyndisp_campaign
#     processes at threads=1 (record values AND line order), and
#   * the identical record SET at threads=4 (line order legitimately differs
#     with completion order, so the thread comparison sorts first).
#
# --no-timing zeroes the per-record wall_ms field, the one value that is
# allowed to differ between runs; everything else in a record is claimed to
# be a pure function of (spec, seed).
#
# A multi-process leg runs the spec through the campaign service
# (coordinator + forked worker processes) at --workers 1 and --workers 4;
# the merged shard stores must be BYTE-identical to the threads=1 store --
# the service's determinism contract is stronger than the in-process
# thread pool's because the merge rewrites records in job order.
#
# A fourth leg re-runs the campaign with the struct-of-arrays round core
# disabled ("soa": false in the spec) and checks the record SET matches the
# default (SoA) runs after normalizing the job-id/spec-hash suffix the
# option adds -- cross-process proof that both engine cores produce the
# same records.
#
# A fifth leg does the same with the flat PacketArena broadcast backend
# disabled ("flat_packets": false): the legacy vector<InfoPacket> broadcast
# must produce the identical record set, which is the wire-format identity
# claim checked across processes rather than inside one.
#
# A sixth leg disables incremental component-forest planning
# ("incremental": false): every round re-planned statelessly as full churn
# must produce the identical record set -- the cross-process twin of the
# differential-incremental fuzzer oracle.
#
# usage: check_determinism.sh <dyndisp_campaign> <spec.json> <work-dir>
set -eu

CAMPAIGN_BIN=$1
SPEC=$2
WORK=$3

rm -rf "$WORK"
mkdir -p "$WORK"

run() {
  # $1 = store subdir, $2 = threads
  "$CAMPAIGN_BIN" run "$SPEC" --seeds 2 --threads "$2" --quiet --no-timing \
    --out "$WORK/$1" > "$WORK/$1.stdout"
}

run a 1
run b 1
run c 4

run_workers() {
  # $1 = store subdir, $2 = worker process count
  "$CAMPAIGN_BIN" run "$SPEC" --seeds 2 --workers "$2" --quiet --no-timing \
    --out "$WORK/$1" > "$WORK/$1.stdout"
}

run_workers w1 1
run_workers w4 4

# Same spec with the SoA round core off ("soa": false spliced in after the
# opening brace); identity claims are checked below.
sed '0,/{/s//{ "soa": false,/' "$SPEC" > "$WORK/spec_soa_off.json"
"$CAMPAIGN_BIN" run "$WORK/spec_soa_off.json" --seeds 2 --threads 1 --quiet \
  --no-timing --out "$WORK/d" > "$WORK/d.stdout"

# And with the flat packet arena off ("flat_packets": false spliced in).
sed '0,/{/s//{ "flat_packets": false,/' "$SPEC" > "$WORK/spec_flat_off.json"
"$CAMPAIGN_BIN" run "$WORK/spec_flat_off.json" --seeds 2 --threads 1 --quiet \
  --no-timing --out "$WORK/e" > "$WORK/e.stdout"

# And with incremental planning off ("incremental": false spliced in).
sed '0,/{/s//{ "incremental": false,/' "$SPEC" > "$WORK/spec_inc_off.json"
"$CAMPAIGN_BIN" run "$WORK/spec_inc_off.json" --seeds 2 --threads 1 --quiet \
  --no-timing --out "$WORK/f" > "$WORK/f.stdout"

# Two independent single-threaded processes: byte-identical, order included.
cmp "$WORK/a/results.jsonl" "$WORK/b/results.jsonl" || {
  echo "FAIL: threads=1 runs differ byte-for-byte" >&2
  diff "$WORK/a/results.jsonl" "$WORK/b/results.jsonl" | head -10 >&2
  exit 1
}

# Multi-process service runs: merged stores byte-identical to threads=1,
# at any worker count -- order included, no sorting allowed.
for w in w1 w4; do
  cmp "$WORK/a/results.jsonl" "$WORK/$w/results.jsonl" || {
    echo "FAIL: service run $w differs bytewise from threads=1" >&2
    diff "$WORK/a/results.jsonl" "$WORK/$w/results.jsonl" | head -10 >&2
    exit 1
  }
done

# threads=1 vs threads=4: same record set (sorted line comparison).
sort "$WORK/a/results.jsonl" > "$WORK/a.sorted"
sort "$WORK/c/results.jsonl" > "$WORK/c.sorted"
cmp "$WORK/a.sorted" "$WORK/c.sorted" || {
  echo "FAIL: threads=1 and threads=4 record sets differ" >&2
  diff "$WORK/a.sorted" "$WORK/c.sorted" | head -10 >&2
  exit 1
}

# SoA on (a) vs off (d), flat on (a) vs off (e): same records up to the
# "|soa=off" / "|flat=off" id suffix and the spec hash, all of which the
# options change by design.
normalize() {
  sed -e 's/|soa=off//' -e 's/|flat=off//' -e 's/|inc=off//' \
    -e 's/"spec_hash": "[0-9a-f]*"/"spec_hash": "-"/' \
    "$1" | sort
}
normalize "$WORK/a/results.jsonl" > "$WORK/a.norm"
normalize "$WORK/d/results.jsonl" > "$WORK/d.norm"
cmp "$WORK/a.norm" "$WORK/d.norm" || {
  echo "FAIL: SoA-on and SoA-off record sets differ" >&2
  diff "$WORK/a.norm" "$WORK/d.norm" | head -10 >&2
  exit 1
}
normalize "$WORK/e/results.jsonl" > "$WORK/e.norm"
cmp "$WORK/a.norm" "$WORK/e.norm" || {
  echo "FAIL: flat-packets-on and -off record sets differ" >&2
  diff "$WORK/a.norm" "$WORK/e.norm" | head -10 >&2
  exit 1
}
normalize "$WORK/f/results.jsonl" > "$WORK/f.norm"
cmp "$WORK/a.norm" "$WORK/f.norm" || {
  echo "FAIL: incremental-on and -off record sets differ" >&2
  diff "$WORK/a.norm" "$WORK/f.norm" | head -10 >&2
  exit 1
}

# The aggregate reports must agree too (the aggregator sorts by job index,
# so this holds whenever the record sets do -- kept as a belt-and-braces
# check that reporting is order-independent).
"$CAMPAIGN_BIN" report "$WORK/a" > "$WORK/report_a.txt"
"$CAMPAIGN_BIN" report "$WORK/c" > "$WORK/report_c.txt"
cmp "$WORK/report_a.txt" "$WORK/report_c.txt" || {
  echo "FAIL: aggregate reports differ between thread counts" >&2
  exit 1
}

records=$(wc -l < "$WORK/a/results.jsonl")
echo "determinism: OK ($records records, threads 1==1 bytewise, 1==4 as sets, workers 1/4 bytewise, soa on==off as sets, flat on==off as sets, incremental on==off as sets)"
