#!/usr/bin/env sh
# One-command reproduction: configure, build, run the full test suite, and
# regenerate every table/figure, recording the outputs at the repo root.
set -eu
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && case "$(basename "$b")" in bench_*) ;; *) continue;; esac || continue
  echo "===== $b =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done

echo "done: test_output.txt, bench_output.txt"
