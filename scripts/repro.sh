#!/usr/bin/env bash
# One-command reproduction: configure, build, run the full test suite,
# regenerate every table/figure, and smoke-run the Table-I campaign,
# recording the outputs at the repo root. Fails fast on the first error.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && case "$(basename "$b")" in bench_*) ;; *) continue;; esac || continue
  # bench_roundtime runs separately below so its JSON lands at the repo root.
  case "$(basename "$b")" in bench_roundtime) continue;; esac
  echo "===== $b =====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done

echo "===== build/bench/bench_roundtime --json =====" | tee -a bench_output.txt
# Best-of-5 wall times: single-rep rows at the small sizes are pure noise.
# The k=10^6 mega headline row (several minutes, >1 GB peak RSS) is opt-in:
# run `DYNDISP_MEGA=1 scripts/repro.sh` to include it (docs/PERFORMANCE.md
# documents the row and its targets). Default runs stop at k=10^5.
MEGA_FLAG=""
[ "${DYNDISP_MEGA:-0}" = "1" ] && MEGA_FLAG="--mega"
build/bench/bench_roundtime --json --reps=5 $MEGA_FLAG \
  --out=BENCH_roundtime.json 2>&1 |
  tee -a bench_output.txt
build/bench/bench_roundtime --validate=BENCH_roundtime.json 2>&1 |
  tee -a bench_output.txt

# Smoke-mode Table-I campaign: 2 seeds per tuple through the declarative
# sweep engine (spec -> scheduler -> JSONL store -> aggregate report).
rm -rf campaign_out/table1_smoke
build/tools/dyndisp_campaign run campaigns/table1.json --seeds 2 --quiet \
  --out campaign_out/table1_smoke 2>&1 | tee campaign_output.txt
build/tools/dyndisp_campaign report campaign_out/table1_smoke 2>&1 |
  tee -a campaign_output.txt

echo "done: test_output.txt, bench_output.txt, BENCH_roundtime.json, campaign_output.txt"
