#!/bin/sh
# Static-analysis gate, fail-fast:
#   1. dyndisp_lint --all over src tests tools (the project-specific
#      determinism/metering/hygiene rules + its planted self-check);
#   2. clang-tidy over the whole tree via the `tidy` CMake preset, when
#      clang-tidy is installed (skipped with a notice otherwise -- CI's
#      lint job always has it).
#
# usage: scripts/lint.sh [build-dir]
#   build-dir  an existing configured build containing tools/dyndisp_lint
#              (default: build; configured+built here if missing)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cd "$repo_root"

if [ ! -x "$build_dir/tools/dyndisp_lint" ]; then
    echo "lint.sh: building dyndisp_lint in $build_dir" >&2
    cmake -B "$build_dir" -S "$repo_root" >/dev/null
    cmake --build "$build_dir" --target dyndisp_lint >/dev/null
fi

echo "== dyndisp_lint --self-check =="
"$build_dir/tools/dyndisp_lint" --self-check --quiet

echo "== dyndisp_lint --all src tests tools =="
"$build_dir/tools/dyndisp_lint" --all src tests tools

if command -v clang-tidy >/dev/null 2>&1; then
    echo "== clang-tidy (tidy preset) =="
    cmake --preset tidy >/dev/null
    cmake --build --preset tidy
else
    echo "== clang-tidy not installed; skipped (CI lint job runs it) =="
fi

echo "lint.sh: all gates passed"
