// Reproduces Theorem 2: DISPERSION is impossible in the GLOBAL
// communication model without 1-neighborhood knowledge, even with unlimited
// memory.
//
// The clique-trap adversary implements the proof construction literally:
// each round it forms the clique over the alpha occupied nodes, dry-runs
// the algorithm to learn every planned port, finds a clique edge used by no
// robot (alpha(alpha-1)/2 > k guarantees one), and replaces it with two
// edges into the empty-path H -- placed at port slots no robot uses.
// Robots without neighborhood knowledge observe identical inputs on both
// graphs, so no robot ever crosses into H: zero new nodes, forever.
//
// The bench also runs Algorithm 4 (WITH knowledge) under the same trap: it
// sees through the rewiring and disperses in <= k rounds, confirming that
// 1-neighborhood knowledge is exactly the capability the trap exploits.
#include <cstdio>
#include <string>

#include "baselines/blind_walk.h"
#include "baselines/random_walk.h"
#include "core/dispersion.h"
#include "dynamic/clique_trap_adversary.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace dyndisp;

struct TrapResult {
  bool contained = false;
  std::size_t max_occupied = 0;
  std::size_t failures = 0;
  std::size_t degenerate = 0;
  Round rounds = 0;
  bool dispersed = false;
};

TrapResult run_trap(const AlgorithmFactory& factory, std::size_t n,
                    std::size_t k, bool with_knowledge, std::uint64_t seed) {
  CliqueTrapAdversary adv(n);
  EngineOptions opt;
  opt.comm = CommModel::kGlobal;
  opt.neighborhood_knowledge = with_knowledge;
  opt.allow_model_mismatch = true;
  opt.max_rounds = 100 * k;
  Rng rng(seed);
  // The proof's configuration: k robots over k-1 nodes (one doubled node).
  Engine engine(adv, placement::grouped(n, k, k - 1, rng), factory, opt);
  const RunResult r = engine.run();
  TrapResult out;
  out.contained = !r.dispersed && r.max_occupied < k && adv.failures() == 0;
  out.max_occupied = r.max_occupied;
  out.failures = adv.failures();
  out.degenerate = adv.degenerate_rounds();
  out.rounds = r.rounds;
  out.dispersed = r.dispersed;
  return out;
}

}  // namespace

int main() {
  std::printf("== Theorem 2: impossibility in the global model without "
              "1-neighborhood knowledge ==\n\n");

  bool ok = true;
  AsciiTable table({"k", "algorithm", "1-nbhd", "max occupied",
                    "unused-edge rounds", "outcome"});
  table.set_title("clique-trap adversary (horizon 100k rounds)");

  for (const std::size_t k : {6u, 8u, 12u, 16u, 24u}) {
    const std::size_t n = k + 8;
    const TrapResult blind =
        run_trap(baselines::blind_walk_factory(), n, k, false, k);
    ok &= blind.contained && blind.degenerate == 0;
    table.add_row({std::to_string(k), "blind-walk", "no",
                   std::to_string(blind.max_occupied) + "/" +
                       std::to_string(k),
                   "all", blind.contained ? "trapped forever" : "ESCAPED"});

    const TrapResult walk =
        run_trap(baselines::random_walk_factory(31 * k), n, k, false, k + 1);
    ok &= walk.contained;
    table.add_row({std::to_string(k), "random-walk", "no",
                   std::to_string(walk.max_occupied) + "/" + std::to_string(k),
                   "all", walk.contained ? "trapped forever" : "ESCAPED"});

    // Contrast: the same adversary is powerless against Algorithm 4.
    const TrapResult alg4 =
        run_trap(core::dispersion_factory(), n, k, true, k + 2);
    ok &= alg4.dispersed && alg4.rounds <= k && alg4.failures >= 1;
    table.add_row({std::to_string(k), "Dispersion_Dynamic(Alg4)", "yes",
                   std::to_string(alg4.max_occupied) + "/" + std::to_string(k),
                   std::to_string(alg4.failures) + " escapes",
                   alg4.dispersed ? "dispersed in " +
                                        std::to_string(alg4.rounds) + " rounds"
                                  : "STUCK"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\n%s\n",
              ok ? "Theorem 2 reproduced: without 1-neighborhood knowledge "
                   "zero new nodes are ever visited; with it (Algorithm 4) "
                   "the same adversary is harmless."
                 : "MISMATCH: trap containment or the Alg4 contrast failed!");
  return ok ? 0 : 1;
}
