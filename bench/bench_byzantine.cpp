// Byzantine exploration (the paper's future-work direction #3), as a
// measured NEGATIVE result: Algorithm 4 tolerates crash faults (Theorem 5)
// because a crashed robot simply stops contributing packets, but it has no
// defense against robots that keep participating and LIE. One strategically
// placed liar deadlocks the protocol; the tables quantify each attack and
// contrast it with the equivalent crash.
#include <cstdio>
#include <memory>
#include <set>
#include <string>

#include "core/dispersion.h"
#include "dynamic/random_adversary.h"
#include "robots/placement.h"
#include "sim/byzantine.h"
#include "sim/engine.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace dyndisp;

constexpr std::size_t kTrials = 8;

struct Cell {
  Summary rounds;
  Summary max_occupied;
  std::size_t dispersed = 0;
};

Cell sweep(std::size_t n, std::size_t k, std::size_t liars, ByzantineLie lie,
           bool crash_instead, Round horizon) {
  Cell cell;
  for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
    RandomAdversary adv(n, n / 3, seed * 7);
    EngineOptions opt;
    opt.max_rounds = horizon;
    FaultSchedule faults = FaultSchedule::none();
    if (crash_instead) {
      std::vector<CrashEvent> events;
      for (std::size_t i = 0; i < liars; ++i)
        events.push_back({0, static_cast<RobotId>(i + 1),
                          CrashPhase::kBeforeCommunicate});
      faults = FaultSchedule(std::move(events));
    } else if (liars > 0) {
      std::set<RobotId> ids;
      for (std::size_t i = 0; i < liars; ++i)
        ids.insert(static_cast<RobotId>(i + 1));
      opt.byzantine = std::make_shared<ByzantineModel>(std::move(ids), lie);
    }
    Engine engine(adv, placement::rooted(n, k), core::dispersion_factory(),
                  opt, std::move(faults));
    const RunResult r = engine.run();
    if (r.dispersed) ++cell.dispersed;
    cell.rounds.add(static_cast<double>(r.rounds));
    cell.max_occupied.add(static_cast<double>(r.max_occupied));
  }
  return cell;
}

std::string outcome(const Cell& c, Round horizon) {
  if (c.dispersed == kTrials)
    return "dispersed, mean " + fmt_double(c.rounds.mean(), 1) + " rounds";
  if (c.dispersed == 0)
    return "DEADLOCK (>" + std::to_string(horizon) + " rounds, max occ " +
           fmt_double(c.max_occupied.max(), 0) + ")";
  return std::to_string(c.dispersed) + "/" + std::to_string(kTrials) +
         " dispersed";
}

}  // namespace

int main() {
  const std::size_t n = 24, k = 16;
  const Round horizon = 100 * k;
  std::printf("== Byzantine robots vs Algorithm 4 (negative result; "
              "n=%zu, k=%zu, rooted, %zu seeds) ==\n\n",
              n, k, kTrials);

  AsciiTable table({"faulty robots", "crash (Thm 5)", "hide-multiplicity lie",
                    "hide-empty-neighbors lie"});
  bool ok = true;
  for (const std::size_t f : {0u, 1u, 2u, 4u}) {
    const Cell crash =
        sweep(n, k, f, ByzantineLie::kHideMultiplicity, true, horizon);
    const Cell hide_mult =
        sweep(n, k, f, ByzantineLie::kHideMultiplicity, false, horizon);
    const Cell hide_empty =
        sweep(n, k, f, ByzantineLie::kHideEmptyNeighbors, false, horizon);
    table.add_row({std::to_string(f), outcome(crash, horizon),
                   outcome(hide_mult, horizon), outcome(hide_empty, horizon)});
    // Crashes are always tolerated (Theorem 5).
    ok &= crash.dispersed == kTrials;
    if (f == 0) {
      ok &= hide_mult.dispersed == kTrials && hide_empty.dispersed == kTrials;
    } else {
      // Robot 1 broadcasts the rooted pile: the hide-multiplicity liar
      // must deadlock the run with zero progress, every seed.
      ok &= hide_mult.dispersed == 0;
      ok &= hide_mult.max_occupied.max() == 1.0;
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\n%s\n",
      ok ? "Reproduced contrast: crash-fault tolerance (Theorem 5) does NOT "
           "extend to Byzantine robots -- one lying broadcaster deadlocks "
           "Algorithm 4, motivating the paper's future-work direction."
         : "MISMATCH in the Byzantine contrast!");
  return ok ? 0 : 1;
}
