// Reproduces Theorem 1 / Fig. 1: DISPERSION is impossible in the LOCAL
// communication model even with 1-neighborhood knowledge and unlimited
// memory.
//
// An executable cannot quantify over all algorithms; this bench does what
// can be demonstrated mechanically:
//   (a) verifies the proof's symmetry kernel -- in the Fig. 1 configuration
//       the interior path nodes w and x have canonically identical local
//       views, so no port-oblivious deterministic rule can orient both
//       toward the empty blob; and
//   (b) runs the constructive path-trap adversary against every local
//       algorithm in the library (greedy, DFS dispersion, random walk) for
//       a horizon of 100k rounds, showing zero net progress: the occupied
//       set never reaches k nodes.
#include <cstdio>
#include <string>

#include "baselines/dfs_dispersion.h"
#include "baselines/greedy_local.h"
#include "baselines/random_walk.h"
#include "dynamic/path_trap_adversary.h"
#include "graph/local_view.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "util/table.h"

namespace {

using namespace dyndisp;

bool check_symmetry_kernel() {
  // Fig. 1, k = 6: path v-u-w-x-y (nodes 0..4), empty star blob 5..7.
  Graph g(8);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 6);
  g.add_edge(5, 7);
  const std::vector<std::size_t> occ{2, 1, 1, 1, 1, 0, 0, 0};
  const bool wx = views_symmetric(g, 2, 3, occ);
  std::printf("symmetry kernel (Fig. 1): views of w and x canonically "
              "identical: %s\n",
              wx ? "yes" : "NO");
  return wx;
}

struct TrapResult {
  std::string algorithm;
  bool contained = false;
  std::size_t max_occupied = 0;
  std::size_t trap_failures = 0;
  Round horizon = 0;
};

TrapResult run_trap(const std::string& name, const AlgorithmFactory& factory,
                    std::size_t n, std::size_t k) {
  PathTrapAdversary adv(n);
  EngineOptions opt;
  opt.comm = CommModel::kLocal;
  opt.neighborhood_knowledge = true;  // the Theorem 1 setting
  opt.allow_model_mismatch = true;
  opt.max_rounds = 100 * k;
  Engine engine(adv, placement::figure1(n, k), factory, opt);
  const RunResult r = engine.run();
  TrapResult out;
  out.algorithm = name;
  out.contained = !r.dispersed && r.max_occupied < k;
  out.max_occupied = r.max_occupied;
  out.trap_failures = adv.failures();
  out.horizon = opt.max_rounds;
  return out;
}

}  // namespace

int main() {
  std::printf("== Theorem 1 / Fig. 1: impossibility in the local model "
              "(with 1-neighborhood knowledge) ==\n\n");

  bool ok = check_symmetry_kernel();
  std::printf("\n");

  AsciiTable table({"k", "algorithm", "horizon", "max occupied (goal k)",
                    "contained"});
  table.set_title("path-trap adversary vs local algorithms "
                  "(Fig. 1 initial configuration)");
  for (const std::size_t k : {5u, 6u, 8u, 12u, 16u}) {
    const std::size_t n = k + 6;
    const TrapResult results[] = {
        run_trap("greedy(local+1-nbhd)", baselines::greedy_local_factory(), n,
                 k),
        run_trap("DFS-dispersion", baselines::dfs_dispersion_factory(), n, k),
        run_trap("random-walk", baselines::random_walk_factory(17 * k), n, k),
    };
    for (const TrapResult& r : results) {
      ok &= r.contained;
      table.add_row({std::to_string(k), r.algorithm,
                     std::to_string(r.horizon),
                     std::to_string(r.max_occupied) + "/" + std::to_string(k),
                     r.contained ? "yes" : "NO"});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\n%s\n",
              ok ? "Theorem 1 reproduced: every local algorithm was held "
                   "below dispersion for the whole horizon."
                 : "MISMATCH: some algorithm escaped the Theorem 1 trap!");
  return ok ? 0 : 1;
}
