// Ablation studies of Algorithm 4's design choices (the DESIGN.md index):
//   A1  spanning-tree construction: DFS (the paper) vs BFS (the alternative
//       the paper notes) -- rounds unchanged, slide distances shorter;
//   A2  paths served per round: the paper's count(root)-1 vs a cap of 1 --
//       still O(k) by Lemma 7, measurably slower on bushy configurations;
//   A3  planner execution: faithful per-robot recomputation vs shared
//       exact memoization -- byte-identical outcomes, less simulator work;
//   A4  scheduler: synchronous (the paper) vs semi-synchronous random
//       activation (future-work direction) -- rounds scale ~1/p.
#include <cstdio>

#include "core/dispersion.h"
#include "dynamic/random_adversary.h"
#include "graph/builders.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace dyndisp;
using core::PlannerConfig;

constexpr std::size_t kTrials = 10;

struct Cell {
  Summary rounds;
  Summary moves;
  std::size_t dispersed = 0;
};

Cell sweep(std::size_t n, std::size_t k, const AlgorithmFactory& factory,
           EngineOptions opt, std::uint64_t salt) {
  Cell cell;
  for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
    RandomAdversary adv(n, n / 3, seed * 3 + salt);
    Rng rng(seed + salt);
    Engine engine(adv, placement::grouped(n, k, 3, rng), factory, opt);
    const RunResult r = engine.run();
    if (r.dispersed) ++cell.dispersed;
    cell.rounds.add(static_cast<double>(r.rounds));
    cell.moves.add(static_cast<double>(r.total_moves));
  }
  return cell;
}

}  // namespace

int main() {
  const std::size_t n = 48, k = 32;
  EngineOptions opt;
  opt.max_rounds = 100 * k;
  std::printf("== Ablations of Algorithm 4's design choices "
              "(n=%zu, k=%zu, 3-group start, %zu seeds) ==\n\n",
              n, k, kTrials);

  bool ok = true;

  {
    AsciiTable t({"variant", "mean rounds", "max rounds", "mean moves",
                  "dispersed"});
    t.set_title("A1+A2: spanning-tree construction x paths served per round");
    struct V {
      const char* name;
      PlannerConfig config;
    };
    const V variants[] = {
        {"DFS tree, count(root)-1 paths  [the paper]", {}},
        {"BFS tree, count(root)-1 paths", {PlannerConfig::Tree::kBfs, 0}},
        {"DFS tree, 1 path/round", {PlannerConfig::Tree::kDfs, 1}},
        {"BFS tree, 1 path/round", {PlannerConfig::Tree::kBfs, 1}},
    };
    double paper_moves = 0, capped_rounds = 0, paper_rounds = 0;
    for (const V& v : variants) {
      const Cell c = sweep(n, k, core::dispersion_factory_with_config(v.config),
                           opt, 11);
      ok &= c.dispersed == kTrials && c.rounds.max() <= static_cast<double>(k);
      t.add_row({v.name, fmt_double(c.rounds.mean(), 1),
                 fmt_double(c.rounds.max(), 0), fmt_double(c.moves.mean(), 1),
                 std::to_string(c.dispersed) + "/" + std::to_string(kTrials)});
      if (std::string(v.name).find("[the paper]") != std::string::npos) {
        paper_moves = c.moves.mean();
        paper_rounds = c.rounds.mean();
      }
      if (std::string(v.name) == "DFS tree, 1 path/round")
        capped_rounds = c.rounds.mean();
    }
    ok &= paper_rounds <= capped_rounds;  // multi-path at least as fast
    std::fputs(t.render().c_str(), stdout);
    std::printf("multi-path sliding is the round-count lever; all variants "
                "stay within the k-round bound (Lemma 7 is variant-proof).\n\n");
    (void)paper_moves;
  }

  {
    AsciiTable t({"planner mode", "mean rounds", "mean moves", "dispersed"});
    t.set_title("A3: faithful per-robot planning vs shared memoization "
                "(identical results, k-times less simulator work)");
    const Cell faithful =
        sweep(n, k, core::dispersion_factory(), opt, 23);
    const Cell memo =
        sweep(n, k, core::dispersion_factory_memoized(), opt, 23);
    ok &= faithful.rounds.mean() == memo.rounds.mean() &&
          faithful.moves.mean() == memo.moves.mean();
    t.add_row({"faithful (each robot recomputes)",
               fmt_double(faithful.rounds.mean(), 1),
               fmt_double(faithful.moves.mean(), 1),
               std::to_string(faithful.dispersed) + "/" +
                   std::to_string(kTrials)});
    t.add_row({"memoized (one plan per packet set)",
               fmt_double(memo.rounds.mean(), 1),
               fmt_double(memo.moves.mean(), 1),
               std::to_string(memo.dispersed) + "/" +
                   std::to_string(kTrials)});
    std::fputs(t.render().c_str(), stdout);
    std::printf("\n");
  }

  {
    AsciiTable t({"activation p", "mean rounds", "max rounds", "rounds x p",
                  "dispersed"});
    t.set_title("A4: semi-synchronous random activation (future work)");
    for (const double p : {1.0, 0.8, 0.5, 0.3, 0.15}) {
      EngineOptions semi = opt;
      if (p < 1.0) {
        semi.activation = Activation::kRandomSubset;
        semi.activation_probability = p;
        semi.activation_seed = 5;
      }
      const Cell c = sweep(n, k, core::dispersion_factory_memoized(), semi, 31);
      ok &= c.dispersed == kTrials;
      t.add_row({fmt_double(p, 2), fmt_double(c.rounds.mean(), 1),
                 fmt_double(c.rounds.max(), 0),
                 fmt_double(c.rounds.mean() * p, 1),
                 std::to_string(c.dispersed) + "/" + std::to_string(kTrials)});
    }
    std::size_t rr_dispersed = 0;
    {
      // Sequential extreme: one robot per round (effective p = 1/k). NOT
      // gated: sequential activation can livelock Algorithm 4 (partial
      // slides keep un-doing each other), which is reported, not hidden.
      EngineOptions seq = opt;
      seq.activation = Activation::kRoundRobin;
      seq.max_rounds = 1000 * k;
      const Cell c = sweep(n, k, core::dispersion_factory_memoized(), seq, 31);
      rr_dispersed = c.dispersed;
      t.add_row({"1/k (round-robin)", fmt_double(c.rounds.mean(), 1),
                 fmt_double(c.rounds.max(), 0), "-",
                 std::to_string(c.dispersed) + "/" + std::to_string(kTrials)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::printf("rounds grow SUPER-linearly in 1/p (rounds*p is not flat): a "
                "slide makes clean progress only when an entire root path's "
                "movers are simultaneously awake, and partial slides can "
                "transiently vacate nodes. Random partial activation still "
                "dispersed on every seed, but the sequential extreme "
                "dispersed on only %zu/%zu seeds within 1000k rounds -- "
                "Algorithm 4's guarantee is genuinely synchronous, matching "
                "the paper's framing of semi-/asynchrony as open.\n",
                rr_dispersed, kTrials);
  }

  std::printf("\n%s\n", ok ? "All ablations consistent with the analysis."
                           : "MISMATCH in an ablation!");
  return ok ? 0 : 1;
}
