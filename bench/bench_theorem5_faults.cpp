// Reproduces Theorem 5: with f <= k crash faults, Algorithm 4 solves
// FAULTYDISPERSION in O(k - f) rounds with Theta(log k) bits per robot.
// Sweeps f for fixed k under random crash schedules (both crash phases) and
// an adversarial early-crash schedule, reporting rounds vs the k - f line.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/dispersion.h"
#include "dynamic/random_adversary.h"
#include "dynamic/star_star_adversary.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "util/bits.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace dyndisp;

constexpr std::size_t kK = 64;
constexpr std::size_t kN = 96;
constexpr std::size_t kTrials = 8;

struct FaultRow {
  std::size_t f = 0;
  Summary rounds;
  Summary crashed;
  std::size_t dispersed = 0;
  std::size_t memory_bits = 0;
};

FaultRow sweep_f(std::size_t f, bool early_crashes) {
  FaultRow row;
  row.f = f;
  for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
    RandomAdversary adv(kN, kN / 3, seed * 11 + f);
    Rng rng(seed * 101 + f);
    // Random schedules spread crashes over the first k rounds (so late
    // crashes may never fire if dispersion finishes first); the round-0
    // variant kills all f robots up front, which exposes the k-f decline
    // directly: the run behaves like a fault-free run of k-f robots.
    FaultSchedule faults = FaultSchedule::random(kK, f, kK, rng);
    if (early_crashes) {
      std::vector<CrashEvent> events;
      for (const CrashEvent& e : faults.events())
        events.push_back({0, e.robot, CrashPhase::kBeforeCommunicate});
      faults = FaultSchedule(std::move(events));
    }
    EngineOptions opt;
    opt.max_rounds = 10 * kK;
    Engine engine(adv, placement::rooted(kN, kK), core::dispersion_factory_memoized(),
                  opt, faults);
    const RunResult r = engine.run();
    if (r.dispersed) ++row.dispersed;
    row.rounds.add(static_cast<double>(r.rounds));
    row.crashed.add(static_cast<double>(r.crashed));
    row.memory_bits = std::max(row.memory_bits, r.max_memory_bits);
  }
  return row;
}

}  // namespace

int main() {
  std::printf("== Theorem 5: FAULTYDISPERSION in O(k-f) rounds "
              "(k=%zu, n=%zu, %zu seeds per f) ==\n\n",
              kK, kN, kTrials);

  CsvWriter csv("bench_theorem5.csv",
                {"schedule", "f", "rounds_mean", "rounds_max", "k_minus_f"});
  bool all_ok = true;

  for (const bool early : {false, true}) {
    std::printf("-- crash schedule: %s --\n",
                early ? "all f crashes at round 0 (pure k-f behaviour)"
                      : "random over the first k rounds");
    AsciiTable table({"f", "mean rounds", "max rounds", "k-f line",
                      "dispersed", "mem bits"});
    for (const std::size_t f :
         {0u, 4u, 8u, 16u, 24u, 32u, 40u, 48u, 56u, 63u}) {
      const FaultRow row = sweep_f(f, early);
      // O(k-f) with the additive slack of rounds "wasted" by crash events:
      // every crash can stall at most one round, so rounds <= k - f_eff + f.
      all_ok &= row.dispersed == kTrials;
      all_ok &= row.rounds.max() <= static_cast<double>(kK + 1);
      table.add_row({std::to_string(f), fmt_double(row.rounds.mean(), 1),
                     fmt_double(row.rounds.max(), 0),
                     std::to_string(kK - f),
                     std::to_string(row.dispersed) + "/" +
                         std::to_string(kTrials),
                     std::to_string(row.memory_bits)});
      csv.add_row({early ? "early" : "random", std::to_string(f),
                   fmt_double(row.rounds.mean(), 2),
                   fmt_double(row.rounds.max(), 0),
                   std::to_string(kK - f)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }

  std::printf("%s\nseries written to bench_theorem5.csv\n",
              all_ok
                  ? "All sweeps dispersed; rounds track the k-f line from "
                    "above within the crash-stall slack (O(k-f), Thm 5)."
                  : "MISMATCH: a faulty sweep failed to disperse in bound!");
  return all_ok ? 0 : 1;
}
