// Microbenchmarks (google-benchmark) of the paper's building blocks:
// Algorithm 1 (component construction), Algorithm 2 (spanning tree),
// Algorithm 3 (disjoint paths), the full per-round plan, and one engine
// round, as a function of the number of robots. Complements the round/
// memory tables with the simulator-side computational cost of Section V-VI.
#include <benchmark/benchmark.h>

#include "core/component.h"
#include "core/disjoint_paths.h"
#include "core/dispersion.h"
#include "core/planner.h"
#include "core/spanning_tree.h"
#include "dynamic/random_adversary.h"
#include "graph/builders.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "sim/sensing.h"
#include "util/rng.h"

namespace {

using namespace dyndisp;

struct RoundInput {
  Graph g;
  Configuration conf;
  std::vector<InfoPacket> packets;
};

RoundInput make_round(std::size_t k) {
  const std::size_t n = k + k / 2 + 2;
  Rng rng(k * 17 + 1);
  RoundInput input{builders::random_connected(n, n, rng),
                   placement::grouped(n, k, std::max<std::size_t>(2, k / 2),
                                      rng),
                   {}};
  input.packets = make_all_packets(input.g, input.conf, true);
  return input;
}

void BM_Alg1_BuildComponent(benchmark::State& state) {
  const RoundInput input = make_round(static_cast<std::size_t>(state.range(0)));
  const RobotId start = input.packets.front().sender;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_component(input.packets, start));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Alg1_BuildComponent)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_Alg2_SpanningTree(benchmark::State& state) {
  const RoundInput input = make_round(static_cast<std::size_t>(state.range(0)));
  const auto components = core::build_all_components(input.packets);
  const core::ComponentGraph* with_mult = nullptr;
  for (const auto& cg : components)
    if (cg.has_multiplicity()) with_mult = &cg;
  if (with_mult == nullptr) {
    state.SkipWithError("no multiplicity component");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_spanning_tree(*with_mult));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Alg2_SpanningTree)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_Alg3_DisjointPaths(benchmark::State& state) {
  const RoundInput input = make_round(static_cast<std::size_t>(state.range(0)));
  const auto components = core::build_all_components(input.packets);
  const core::ComponentGraph* with_mult = nullptr;
  for (const auto& cg : components)
    if (cg.has_multiplicity()) with_mult = &cg;
  if (with_mult == nullptr) {
    state.SkipWithError("no multiplicity component");
    return;
  }
  const core::SpanningTree st = core::build_spanning_tree(*with_mult);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::disjoint_paths(*with_mult, st));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Alg3_DisjointPaths)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_Alg4_PlanRound(benchmark::State& state) {
  const RoundInput input = make_round(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::plan_round(input.packets));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Alg4_PlanRound)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_PacketAssembly(benchmark::State& state) {
  const RoundInput input = make_round(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_all_packets(input.g, input.conf, true));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PacketAssembly)->RangeMultiplier(2)->Range(8, 256)->Complexity();

// One full dispersion run per iteration: faithful vs memoized planner.
void BM_FullRun_Faithful(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const std::size_t n = k + k / 2;
  for (auto _ : state) {
    RandomAdversary adv(n, n / 3, 7);
    EngineOptions opt;
    opt.max_rounds = 10 * k;
    Engine engine(adv, placement::rooted(n, k), core::dispersion_factory(),
                  opt);
    benchmark::DoNotOptimize(engine.run());
  }
}
BENCHMARK(BM_FullRun_Faithful)->RangeMultiplier(2)->Range(8, 64);

void BM_FullRun_Memoized(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const std::size_t n = k + k / 2;
  for (auto _ : state) {
    RandomAdversary adv(n, n / 3, 7);
    EngineOptions opt;
    opt.max_rounds = 10 * k;
    Engine engine(adv, placement::rooted(n, k),
                  core::dispersion_factory_memoized(), opt);
    benchmark::DoNotOptimize(engine.run());
  }
}
BENCHMARK(BM_FullRun_Memoized)->RangeMultiplier(2)->Range(8, 64);

}  // namespace

BENCHMARK_MAIN();
