// Reproduces Theorem 4: Algorithm 4 solves DISPERSION in Theta(k) rounds
// with Theta(log k) bits per robot, on ANY 1-interval connected dynamic
// graph. Sweeps k over multiple adversaries, graph densities, and initial
// configurations; reports measured rounds (always <= k), the fitted slope
// of rounds vs k (linear scaling), and the audited per-robot memory
// (== ceil(log2(k+1)) bits, robot ID only).
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/experiment.h"
#include "core/dispersion.h"
#include "dynamic/churn_adversary.h"
#include "dynamic/random_adversary.h"
#include "dynamic/ring_adversary.h"
#include "dynamic/star_star_adversary.h"
#include "dynamic/static_adversary.h"
#include "dynamic/t_interval_adversary.h"
#include "graph/builders.h"
#include "robots/placement.h"
#include "util/bits.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace dyndisp;

constexpr std::size_t kTrials = 8;

struct AdversaryKind {
  const char* name;
  std::unique_ptr<Adversary> (*make)(std::size_t n, std::uint64_t seed);
};

std::unique_ptr<Adversary> make_random(std::size_t n, std::uint64_t seed) {
  return std::make_unique<RandomAdversary>(n, n / 3, seed);
}
std::unique_ptr<Adversary> make_tree(std::size_t n, std::uint64_t seed) {
  return std::make_unique<RandomAdversary>(n, 0, seed);
}
std::unique_ptr<Adversary> make_churn(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return std::make_unique<ChurnAdversary>(
      builders::random_connected(n, n / 2, rng), 3, seed);
}
std::unique_ptr<Adversary> make_star_star(std::size_t n, std::uint64_t seed) {
  return std::make_unique<StarStarAdversary>(n, true, seed);
}
std::unique_ptr<Adversary> make_static_shuffled(std::size_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  return std::make_unique<StaticAdversary>(
      builders::random_connected(n, n / 3, rng), true, seed);
}
std::unique_ptr<Adversary> make_t_interval(std::size_t n, std::uint64_t seed) {
  return std::make_unique<TIntervalAdversary>(
      std::make_unique<RandomAdversary>(n, n / 4, seed), 4);
}
std::unique_ptr<Adversary> make_ring_worst(std::size_t n, std::uint64_t seed) {
  return std::make_unique<RingAdversary>(
      n, RingAdversary::Strategy::kWorstEdge, seed);
}

const AdversaryKind kAdversaries[] = {
    {"random-connected", make_random},
    {"random-tree", make_tree},
    {"edge-churn", make_churn},
    {"star-star", make_star_star},
    {"static+shuffle", make_static_shuffled},
    {"4-interval", make_t_interval},
    {"dynamic-ring(worst)", make_ring_worst},
};

analysis::SweepSummary sweep(const AdversaryKind& kind, std::size_t n,
                             std::size_t k, bool rooted) {
  analysis::TrialSpec spec;
  spec.adversary = [&kind, n](std::uint64_t seed) {
    return kind.make(n, seed);
  };
  spec.placement = [n, k, rooted](std::uint64_t seed) {
    if (rooted) return placement::rooted(n, k);
    Rng rng(seed);
    return placement::uniform_random(n, k, rng);
  };
  spec.algorithm = core::dispersion_factory_memoized();
  spec.options.max_rounds = 10 * k + 10;
  return analysis::run_sweep(spec, kTrials, 1000 + k);
}

}  // namespace

int main() {
  std::printf(
      "== Theorem 4: O(k) rounds, Theta(log k) bits, any dynamic graph ==\n"
      "rounds are max over %zu seeds; bound column is k (Thm 4)\n\n",
      kTrials);

  CsvWriter csv("bench_theorem4.csv",
                {"adversary", "placement", "k", "n", "rounds_max",
                 "rounds_mean", "moves_mean", "memory_bits"});

  const std::vector<std::size_t> ks{8, 16, 32, 64, 128};
  bool all_ok = true;

  for (const bool rooted : {true, false}) {
    std::printf("-- initial configuration: %s --\n",
                rooted ? "rooted (all robots on one node)"
                       : "arbitrary (uniform random)");
    AsciiTable table({"adversary", "k", "n", "max rounds", "mean rounds",
                      "std", "bound k", "mem bits", "log2 bound"});
    std::vector<double> slope_note;
    for (const AdversaryKind& kind : kAdversaries) {
      std::vector<double> xs, ys;
      for (const std::size_t k : ks) {
        const std::size_t n = k + k / 2;
        const analysis::SweepSummary s = sweep(kind, n, k, rooted);
        const bool ok =
            s.dispersed_count == s.trials &&
            s.rounds.max() <= static_cast<double>(k) &&
            s.memory_bits.max() <=
                static_cast<double>(bit_width_for(k + 1));
        all_ok &= ok;
        xs.push_back(static_cast<double>(k));
        ys.push_back(s.rounds.max());
        table.add_row({kind.name, std::to_string(k), std::to_string(n),
                       fmt_double(s.rounds.max(), 0),
                       fmt_double(s.rounds.mean(), 1),
                       fmt_double(s.rounds.stddev(), 1), std::to_string(k),
                       fmt_double(s.memory_bits.max(), 0),
                       std::to_string(bit_width_for(k + 1))});
        csv.add_row({kind.name, rooted ? "rooted" : "random",
                     std::to_string(k), std::to_string(n),
                     fmt_double(s.rounds.max(), 0),
                     fmt_double(s.rounds.mean(), 2),
                     fmt_double(s.moves.mean(), 1),
                     fmt_double(s.memory_bits.max(), 0)});
      }
      const double slope = linear_slope(xs, ys);
      table.add_row({std::string("  `- slope rounds/k = ") +
                         fmt_double(slope, 3),
                     "", "", "", "", "", "", "", ""});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }

  std::printf("%s\nseries written to bench_theorem4.csv\n",
              all_ok ? "All sweeps within Theorem 4's bounds: rounds <= k, "
                       "memory = ceil(log2(k+1)) bits."
                     : "MISMATCH: some sweep exceeded the Theorem 4 bounds!");
  return all_ok ? 0 : 1;
}
