// Regenerates the worked example of Figs. 3 and 4: a 15-node, 17-edge round
// graph with 14 robots forming two connected components. Prints every
// intermediate structure of Section V/VI -- info packets, the two connected
// components (Algorithm 1), their spanning trees (Algorithm 2), the
// LeafNodeSets and disjoint root paths (Algorithm 3), and the sliding step
// of Algorithm 4 (Fig. 4(b)) -- then runs the algorithm to completion,
// showing the per-round +1 progress of Lemma 7.
//
// The paper's figure is not machine-readable, so the instance here is a
// faithful re-creation of its parameters (15 nodes, 17 edges, 14 robots,
// two components, multiplicity roots) rather than a pixel-exact copy; every
// printed structure is additionally checked against the lemmas.
#include <cstdio>
#include <sstream>

#include "core/component.h"
#include "core/disjoint_paths.h"
#include "core/dispersion.h"
#include "core/planner.h"
#include "core/spanning_tree.h"
#include <fstream>

#include "dynamic/static_adversary.h"
#include "graph/io.h"
#include "viz/svg.h"
#include "robots/configuration.h"
#include "sim/engine.h"
#include "sim/sensing.h"

namespace {

using namespace dyndisp;

Graph fig3_graph() {
  return Graph::from_edges(15, {{0, 1},
                                {1, 2},
                                {2, 3},
                                {3, 4},
                                {4, 5},
                                {0, 2},
                                {3, 5},
                                {8, 9},
                                {9, 10},
                                {10, 11},
                                {11, 12},
                                {8, 10},
                                {5, 6},
                                {6, 8},
                                {4, 13},
                                {13, 14},
                                {14, 7}});
}

Configuration fig3_config() {
  // robot id (1-based) -> node.
  return Configuration(
      15, {0, 8, 5, 8, 1, 9, 2, 10, 11, 11, 12, 0, 3, 4});
}

void print_component(const core::ComponentGraph& cg, const char* tag) {
  std::printf("component %s: %zu nodes, root (smallest multiplicity) = r%u\n",
              tag, cg.size(), cg.root_name());
  for (const auto& node : cg.nodes()) {
    std::printf("  node[r%u] count=%zu deg=%zu robots={", node.name,
                node.count, node.degree);
    for (std::size_t i = 0; i < node.robots.size(); ++i)
      std::printf("%s%u", i ? "," : "", node.robots[i]);
    std::printf("} edges={");
    for (std::size_t i = 0; i < node.edges.size(); ++i)
      std::printf("%sp%u->r%u", i ? ", " : "", node.edges[i].first,
                  node.edges[i].second);
    std::printf("}%s\n", node.has_empty_neighbor() ? "  [empty neighbor]" : "");
  }
}

void print_tree(const core::SpanningTree& st) {
  std::printf("spanning tree rooted at r%u:\n", st.root());
  for (const auto& tn : st.nodes()) {
    if (tn.parent == kNoRobot) {
      std::printf("  r%u (root)\n", tn.name);
    } else {
      std::printf("  r%u -- parent r%u (up via p%u, down via p%u), depth %zu\n",
                  tn.name, tn.parent, tn.port_to_parent, tn.port_from_parent,
                  tn.depth);
    }
  }
}

void print_paths(const std::vector<core::RootPath>& paths) {
  std::printf("disjoint root paths (%zu):\n", paths.size());
  for (const auto& path : paths) {
    std::printf("  ");
    for (std::size_t i = 0; i < path.size(); ++i)
      std::printf("%sr%u", i ? " -> " : "", path[i]);
    if (path.size() == 1) std::printf(" (trivial: root borders empty node)");
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("== Figs. 3 & 4 walkthrough: one round of Algorithm 4 on a "
              "15-node, 17-edge graph with 14 robots ==\n\n");
  const Graph g = fig3_graph();
  const Configuration conf = fig3_config();
  std::printf("n=%zu m=%zu k=%zu, occupied=%zu, multiplicity nodes=%zu\n\n",
              g.node_count(), g.edge_count(), conf.robot_count(),
              conf.occupied_count(), conf.multiplicity_nodes().size());

  const auto packets = make_all_packets(g, conf, true);
  std::printf("info packets broadcast (%zu, one per occupied node):\n",
              packets.size());
  for (const auto& pkt : packets) {
    std::printf("  sender r%u count=%zu deg=%zu occupied-neighbors=%zu\n",
                pkt.sender, pkt.count, pkt.degree,
                pkt.occupied_neighbors.size());
  }
  std::printf("\n-- Algorithm 1: connected components (Fig. 3b) --\n");
  const auto components = core::build_all_components(packets);
  bool ok = components.size() == 2;
  print_component(components[0], "CG^1 (around node v with robots {1,12})");
  print_component(components[1], "CG^2 (around node with robots {2,4})");

  std::printf("\n-- Algorithm 2: component spanning trees (Fig. 3c) --\n");
  std::vector<core::SpanningTree> trees;
  for (const auto& cg : components) {
    trees.push_back(core::build_spanning_tree(cg));
    print_tree(trees.back());
    ok &= trees.back().size() == cg.size();
  }
  ok &= trees[0].root() == 1 && trees[1].root() == 2;

  std::printf("\n-- Algorithm 3: disjoint root paths (Fig. 4a) --\n");
  for (std::size_t i = 0; i < components.size(); ++i) {
    const auto leaves = core::leaf_node_set(components[i], trees[i]);
    std::printf("LeafNodeSet(ST^%zu) = {", i + 1);
    for (std::size_t j = 0; j < leaves.size(); ++j)
      std::printf("%sr%u", j ? "," : "", leaves[j]);
    std::printf("}\n");
    const auto paths = core::disjoint_paths(components[i], trees[i]);
    print_paths(paths);
    ok &= !paths.empty();
  }

  std::printf("\n-- Algorithm 4: the sliding step (Fig. 4b) --\n");
  const core::SlidePlan plan = core::plan_round(packets);
  for (const auto& [mover, directive] : plan.movers) {
    if (directive.exit_via_smallest_empty) {
      std::printf("  robot %u slides OFF the component into its smallest "
                  "empty port\n",
                  mover);
    } else {
      std::printf("  robot %u slides along the tree via port %u\n", mover,
                  directive.port);
    }
  }

  std::printf("\n-- full run to dispersion (static replay of the round "
              "graph) --\n");
  StaticAdversary adv(g);
  EngineOptions opt;
  opt.max_rounds = 100;
  opt.record_trace = true;
  opt.record_progress = true;
  Engine engine(adv, conf, core::dispersion_factory(), opt);
  const RunResult r = engine.run();
  for (std::size_t i = 0; i < r.trace.size(); ++i)
    std::fputs(r.trace.describe_round(i).c_str(), stdout);
  std::printf("dispersed=%s in %llu rounds (occupied %zu -> %zu of k=%zu); "
              "progress per round: ",
              r.dispersed ? "yes" : "NO",
              static_cast<unsigned long long>(r.rounds), r.initial_occupied,
              r.final_config.occupied_count(), r.k);
  for (std::size_t i = 0; i < r.occupied_per_round.size(); ++i)
    std::printf("%s%zu", i ? "->" : "", r.occupied_per_round[i]);
  std::printf("\n");
  ok &= r.dispersed && r.stalled_rounds == 0;

  // Lemma 7: the first round gains at least one node. (Not necessarily one
  // per component: in this very instance the two components' exit robots
  // both slide onto the same empty node 6 -- exactly the worst case the
  // proof of Lemma 7 warns about, "all robots slided from different root
  // paths may reach that node".)
  ok &= r.occupied_per_round.size() >= 2 &&
        r.occupied_per_round[1] >= r.occupied_per_round[0] + 1;

  // Companion artifacts: the round-0 graph as DOT (Fig. 3a) and the whole
  // run as an animated SVG.
  {
    std::ofstream dot("fig3_graph.dot");
    dot << to_dot(g, conf.occupancy(), "Fig3");
    std::ofstream svg("fig34_run.svg");
    svg << viz::render_animation(r.trace);
  }
  std::printf("\nartifacts: fig3_graph.dot, fig34_run.svg\n");

  std::printf("%s\n", ok ? "Walkthrough matches the paper's construction."
                         : "MISMATCH in the walkthrough!");
  return ok ? 0 : 1;
}
