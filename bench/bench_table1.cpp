// Reproduces Table I of the paper: the feasibility landscape of DISPERSION
// on 1-interval connected anonymous dynamic graphs across the four model
// rows. "Impossible" rows are demonstrated by the corresponding trap
// adversary containing a library of candidate algorithms for a horizon two
// orders of magnitude beyond what a correct algorithm would need; the
// algorithmic rows run Algorithm 4 (fault-free and crashy) and report
// measured rounds and measured per-robot memory against the claimed bounds.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "baselines/blind_walk.h"
#include "baselines/dfs_dispersion.h"
#include "baselines/greedy_local.h"
#include "baselines/random_walk.h"
#include "core/dispersion.h"
#include "dynamic/clique_trap_adversary.h"
#include "dynamic/path_trap_adversary.h"
#include "dynamic/random_adversary.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "util/bits.h"
#include "util/table.h"

namespace {

using namespace dyndisp;

constexpr std::size_t kN = 20;
constexpr std::size_t kK = 12;
constexpr Round kHorizon = 100 * kK;

struct RowOutcome {
  std::string measured;
  bool matches_paper = true;
};

// Row 1: local comm + unlimited memory + 1-nbhd knowledge -> impossible.
RowOutcome row_local() {
  struct Candidate {
    const char* name;
    AlgorithmFactory factory;
  };
  const Candidate candidates[] = {
      {"greedy", baselines::greedy_local_factory()},
      {"dfs", baselines::dfs_dispersion_factory()},
      {"random-walk", baselines::random_walk_factory(7)},
  };
  std::size_t contained = 0, total = 0;
  std::size_t worst_occ = 0;
  for (const auto& c : candidates) {
    PathTrapAdversary adv(kN);
    EngineOptions opt;
    opt.comm = CommModel::kLocal;
    opt.neighborhood_knowledge = true;
    opt.allow_model_mismatch = true;
    opt.max_rounds = kHorizon;
    Engine engine(adv, placement::figure1(kN, kK), c.factory, opt);
    const RunResult r = engine.run();
    ++total;
    if (!r.dispersed && r.max_occupied < kK) ++contained;
    worst_occ = std::max(worst_occ, r.max_occupied);
  }
  RowOutcome out;
  out.matches_paper = contained == total;
  out.measured = "trapped " + std::to_string(contained) + "/" +
                 std::to_string(total) + " algs, max " +
                 std::to_string(worst_occ) + "/" + std::to_string(kK) +
                 " nodes in " + std::to_string(kHorizon) + " rounds";
  return out;
}

// Row 2: global comm + unlimited memory, no 1-nbhd knowledge -> impossible.
RowOutcome row_global_blind() {
  struct Candidate {
    const char* name;
    AlgorithmFactory factory;
  };
  const Candidate candidates[] = {
      {"blind-walk", baselines::blind_walk_factory()},
      {"random-walk", baselines::random_walk_factory(11)},
  };
  std::size_t contained = 0, total = 0;
  std::size_t worst_occ = 0;
  for (const auto& c : candidates) {
    CliqueTrapAdversary adv(kN);
    EngineOptions opt;
    opt.comm = CommModel::kGlobal;
    opt.neighborhood_knowledge = false;
    opt.allow_model_mismatch = true;
    opt.max_rounds = kHorizon;
    Rng rng(5);
    Engine engine(adv, placement::grouped(kN, kK, kK - 1, rng), c.factory,
                  opt);
    const RunResult r = engine.run();
    ++total;
    if (!r.dispersed && r.max_occupied < kK && adv.failures() == 0)
      ++contained;
    worst_occ = std::max(worst_occ, r.max_occupied);
  }
  RowOutcome out;
  out.matches_paper = contained == total;
  out.measured = "trapped " + std::to_string(contained) + "/" +
                 std::to_string(total) + " algs, max " +
                 std::to_string(worst_occ) + "/" + std::to_string(kK) +
                 " nodes in " + std::to_string(kHorizon) + " rounds";
  return out;
}

// Row 3: global comm + Theta(log k) memory + 1-nbhd -> Theta(k) rounds.
RowOutcome row_algorithm4() {
  std::size_t max_rounds = 0, max_bits = 0;
  std::size_t trials = 0, ok = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomAdversary adv(kN, kN / 3, seed);
    EngineOptions opt;
    opt.max_rounds = 10 * kK;
    Rng rng(seed);
    Engine engine(adv, placement::uniform_random(kN, kK, rng),
                  core::dispersion_factory(), opt);
    const RunResult r = engine.run();
    ++trials;
    if (r.dispersed && r.rounds <= kK) ++ok;
    max_rounds = std::max<std::size_t>(max_rounds, r.rounds);
    max_bits = std::max(max_bits, r.max_memory_bits);
  }
  RowOutcome out;
  out.matches_paper = ok == trials;
  out.measured = "dispersed " + std::to_string(ok) + "/" +
                 std::to_string(trials) + ", max " +
                 std::to_string(max_rounds) + " rounds (k=" +
                 std::to_string(kK) + "), " + std::to_string(max_bits) +
                 " bits (ceil(log2(k+1))=" +
                 std::to_string(bit_width_for(kK + 1)) + ")";
  return out;
}

// Row 4: crash faults -> O(k - f) rounds.
RowOutcome row_faulty() {
  const std::size_t f = kK / 3;
  std::size_t max_rounds = 0;
  std::size_t trials = 0, ok = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomAdversary adv(kN, kN / 3, seed);
    Rng rng(seed * 13);
    const FaultSchedule faults = FaultSchedule::random(kK, f, kK, rng);
    EngineOptions opt;
    opt.max_rounds = 10 * kK;
    Engine engine(adv, placement::rooted(kN, kK), core::dispersion_factory(),
                  opt, faults);
    const RunResult r = engine.run();
    ++trials;
    if (r.dispersed && r.rounds <= kK + 1) ++ok;
    max_rounds = std::max<std::size_t>(max_rounds, r.rounds);
  }
  RowOutcome out;
  out.matches_paper = ok == trials;
  out.measured = "dispersed " + std::to_string(ok) + "/" +
                 std::to_string(trials) + " with f=" + std::to_string(f) +
                 ", max " + std::to_string(max_rounds) + " rounds";
  return out;
}

}  // namespace

int main() {
  std::printf("== Table I: DISPERSION on n=%zu-node 1-interval connected "
              "dynamic graphs, k=%zu robots ==\n\n",
              kN, kK);

  AsciiTable table({"comm", "memory/robot", "1-nbhd", "paper", "measured",
                    "match"});
  table.set_title("Table I (reproduced)");

  const RowOutcome r1 = row_local();
  table.add_row({"local", "unlimited", "yes", "impossible (Thm 1)",
                 r1.measured, r1.matches_paper ? "yes" : "NO"});

  const RowOutcome r2 = row_global_blind();
  table.add_row({"global", "unlimited", "no", "impossible (Thm 2)",
                 r2.measured, r2.matches_paper ? "yes" : "NO"});

  const RowOutcome r3 = row_algorithm4();
  table.add_row({"global", "Theta(log k)", "yes", "Theta(k) rounds (Thm 3&4)",
                 r3.measured, r3.matches_paper ? "yes" : "NO"});

  const RowOutcome r4 = row_faulty();
  table.add_row({"global, f crashes", "Theta(log k)", "yes",
                 "O(k-f) rounds (Thm 5)", r4.measured,
                 r4.matches_paper ? "yes" : "NO"});

  std::fputs(table.render().c_str(), stdout);
  const bool all = r1.matches_paper && r2.matches_paper && r3.matches_paper &&
                   r4.matches_paper;
  std::printf("\n%s\n", all ? "All four rows match the paper."
                            : "MISMATCH: some row deviates from the paper!");
  return all ? 0 : 1;
}
