// Baseline contrast (the paper's Section I motivation): static-graph
// dispersion algorithms vs Algorithm 4, on static AND dynamic inputs.
// The headline shape reproduced: on static graphs the DFS baseline is fine
// (it was designed there) but needs O(m) rounds where Algorithm 4 needs
// O(k); under adversarial dynamics every baseline stalls or blows its
// budget while Algorithm 4 stays exactly linear in k.
#include <cstdio>
#include <memory>
#include <string>

#include "baselines/dfs_dispersion.h"
#include "baselines/greedy_local.h"
#include "baselines/random_walk.h"
#include "core/dispersion.h"
#include "dynamic/random_adversary.h"
#include "dynamic/star_star_adversary.h"
#include "dynamic/static_adversary.h"
#include "graph/builders.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace dyndisp;

struct Cell {
  Summary rounds;
  std::size_t dispersed = 0;
  std::size_t trials = 0;
};

enum class Scenario { kStaticRandom, kDynamicRandom, kStarStar };

std::unique_ptr<Adversary> make_adversary(Scenario s, std::size_t n,
                                          std::uint64_t seed) {
  switch (s) {
    case Scenario::kStaticRandom: {
      Rng rng(seed);
      return std::make_unique<StaticAdversary>(
          builders::random_connected(n, n / 2, rng));
    }
    case Scenario::kDynamicRandom:
      return std::make_unique<RandomAdversary>(n, n / 2, seed);
    case Scenario::kStarStar:
      return std::make_unique<StarStarAdversary>(n, true, seed);
  }
  return nullptr;
}

Cell run_cell(Scenario s, const AlgorithmFactory& factory, bool needs_global,
              bool needs_knowledge, std::size_t n, std::size_t k,
              Round horizon) {
  Cell cell;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto adv = make_adversary(s, n, seed);
    EngineOptions opt;
    opt.comm = needs_global ? CommModel::kGlobal : CommModel::kLocal;
    opt.neighborhood_knowledge = needs_knowledge;
    opt.allow_model_mismatch = true;
    opt.max_rounds = horizon;
    Engine engine(*adv, placement::rooted(n, k), factory, opt);
    const RunResult r = engine.run();
    ++cell.trials;
    if (r.dispersed) ++cell.dispersed;
    cell.rounds.add(static_cast<double>(r.rounds));
  }
  return cell;
}

std::string fmt_cell(const Cell& c, Round horizon) {
  if (c.dispersed == 0) return "stall (>" + std::to_string(horizon) + ")";
  std::string s = fmt_double(c.rounds.mean(), 1) + " rounds";
  if (c.dispersed < c.trials)
    s += " (" + std::to_string(c.dispersed) + "/" +
         std::to_string(c.trials) + " ok)";
  return s;
}

}  // namespace

int main() {
  const std::size_t k = 24, n = 36;
  const Round horizon = 100 * k;
  std::printf("== Baselines vs Algorithm 4 (k=%zu, n=%zu, rooted start, "
              "mean over 5 seeds, horizon %llu) ==\n\n",
              k, n, static_cast<unsigned long long>(horizon));

  struct Algo {
    const char* name;
    AlgorithmFactory factory;
    bool global, knowledge;
  };
  const Algo algos[] = {
      {"Dispersion_Dynamic(Alg4)", core::dispersion_factory_memoized(), true,
       true},
      {"DFS-dispersion(static design)", baselines::dfs_dispersion_factory(),
       false, false},
      {"greedy(local+1-nbhd)", baselines::greedy_local_factory(), false, true},
      {"random-walk", baselines::random_walk_factory(99), false, false},
  };

  AsciiTable table({"algorithm", "static random graph", "dynamic random",
                    "star-star adversary"});
  bool ok = true;
  double alg4_star = 0, alg4_static = 0;
  for (const Algo& a : algos) {
    const Cell st = run_cell(Scenario::kStaticRandom, a.factory, a.global,
                             a.knowledge, n, k, horizon);
    const Cell dyn = run_cell(Scenario::kDynamicRandom, a.factory, a.global,
                              a.knowledge, n, k, horizon);
    const Cell star = run_cell(Scenario::kStarStar, a.factory, a.global,
                               a.knowledge, n, k, horizon);
    table.add_row({a.name, fmt_cell(st, horizon), fmt_cell(dyn, horizon),
                   fmt_cell(star, horizon)});
    if (std::string(a.name) == "Dispersion_Dynamic(Alg4)") {
      // The paper's claims: k-1 rounds everywhere, all seeds.
      ok &= st.dispersed == st.trials && dyn.dispersed == dyn.trials &&
            star.dispersed == star.trials;
      ok &= star.rounds.max() <= static_cast<double>(k);
      alg4_star = star.rounds.mean();
      alg4_static = st.rounds.mean();
    } else if (std::string(a.name).rfind("DFS", 0) == 0) {
      // Shape: fine on static, dead under the adversarial dynamics.
      ok &= st.dispersed == st.trials;
      ok &= star.dispersed == 0;
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nAlg4 mean rounds: static %.1f, adversarial dynamic %.1f "
              "(both <= k-1 = %zu: dynamics are free for Algorithm 4).\n",
              alg4_static, alg4_star, k - 1);
  std::printf("%s\n", ok ? "Shape matches the paper: only Algorithm 4 "
                           "survives adversarial dynamics."
                         : "MISMATCH in the baseline comparison!");
  return ok ? 0 : 1;
}
