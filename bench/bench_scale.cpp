// Scale check: Theorem 4's guarantees at simulation sizes an order of
// magnitude beyond the other benches (k up to 512 robots, fully dynamic
// graphs), plus the simulator's wall-clock cost per robot-round. The per-
// round packet volume grows as Theta(k) packets of Theta(k)-bit content, so
// simulating one round is Omega(k^2) work by the model itself -- the table
// reports how close the engine stays to that floor.
#include <chrono>
#include <cstdio>

#include "core/dispersion.h"
#include "dynamic/random_adversary.h"
#include "dynamic/star_star_adversary.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "util/bits.h"
#include "util/table.h"

namespace {

using namespace dyndisp;

struct ScaleRow {
  std::size_t k = 0;
  Round rounds = 0;
  bool dispersed = false;
  std::size_t memory_bits = 0;
  double wall_ms = 0;
  double packet_mbits = 0;
};

ScaleRow run(std::size_t k, bool star_star) {
  const std::size_t n = k + k / 2;
  RandomAdversary random_adv(n, n / 3, 11);
  StarStarAdversary star_adv(n);
  Adversary& adv =
      star_star ? static_cast<Adversary&>(star_adv) : random_adv;
  EngineOptions opt;
  opt.max_rounds = 10 * k;
  Engine engine(adv, placement::rooted(n, k),
                core::dispersion_factory_memoized(), opt);
  const auto t0 = std::chrono::steady_clock::now();
  const RunResult r = engine.run();
  const auto t1 = std::chrono::steady_clock::now();
  ScaleRow row;
  row.k = k;
  row.rounds = r.rounds;
  row.dispersed = r.dispersed;
  row.memory_bits = r.max_memory_bits;
  row.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.packet_mbits = static_cast<double>(r.packet_bits_sent) / 1e6;
  return row;
}

}  // namespace

int main() {
  std::printf("== Scale: Theorem 4 at k up to 512 (rooted, n = 1.5k) ==\n\n");
  bool ok = true;
  for (const bool star_star : {false, true}) {
    AsciiTable table({"k", "rounds", "bound", "mem bits", "packet Mbits",
                      "wall ms"});
    table.set_title(star_star ? "star-star adversary (the exact-k-1 regime)"
                              : "fresh random connected graph per round");
    for (const std::size_t k : {64u, 128u, 256u, 512u}) {
      const ScaleRow row = run(k, star_star);
      ok &= row.dispersed && row.rounds <= k &&
            row.memory_bits == bit_width_for(k + 1);
      if (star_star) ok &= row.rounds == k - 1;
      table.add_row({std::to_string(row.k), std::to_string(row.rounds),
                     std::to_string(k), std::to_string(row.memory_bits),
                     fmt_double(row.packet_mbits, 2),
                     fmt_double(row.wall_ms, 0)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }
  std::printf("%s\n", ok ? "Theorem 4 holds unchanged at 512 robots; "
                           "memory stays at ceil(log2(k+1)) bits."
                         : "MISMATCH at scale!");
  return ok ? 0 : 1;
}
