// Reproduces Theorem 3 / Fig. 2: the Omega(k) lower bound on 1-interval
// connected dynamic trees of constant dynamic diameter.
//
// The star-star adversary rebuilds, every round, a tree T_{A_r} + T_{B_r}
// (diameter <= 3) in which exactly one empty node borders the occupied set.
// No algorithm -- regardless of memory, including randomized ones -- can
// occupy more than one new node per round, so dispersing k robots from a
// rooted configuration needs >= k-1 rounds. The series below shows:
//   * Algorithm 4 needs exactly k-1 rounds (its O(k) bound is TIGHT), and
//   * the randomized walk baseline, with unlimited memory, cannot beat the
//     bound either (Theorem 3's remark).
#include <cstdio>

#include "baselines/random_walk.h"
#include "core/dispersion.h"
#include "dynamic/star_star_adversary.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using namespace dyndisp;

RunResult run(std::size_t n, std::size_t k, const AlgorithmFactory& factory,
              bool local_ok, std::uint64_t seed) {
  StarStarAdversary adv(n, /*shuffle_ports=*/true, seed);
  EngineOptions opt;
  opt.max_rounds = 200 * k;
  if (local_ok) {
    opt.comm = CommModel::kLocal;
    opt.neighborhood_knowledge = false;
    opt.allow_model_mismatch = true;
  }
  Engine engine(adv, placement::rooted(n, k), factory, opt);
  return engine.run();
}

}  // namespace

int main() {
  std::printf("== Theorem 3 / Fig. 2: Omega(k) lower bound on dynamic trees "
              "(dynamic diameter <= 3) ==\n\n");

  AsciiTable table({"k", "n", "lower bound k-1", "Alg4 rounds",
                    "Alg4/(k-1)", "random-walk rounds", "walk dispersed"});
  table.set_title("rounds to disperse from a rooted configuration under the "
                  "star-star adversary");
  CsvWriter csv("bench_lower_bound.csv",
                {"k", "n", "alg4_rounds", "walk_rounds", "walk_dispersed"});

  bool tight = true;
  for (const std::size_t k : {4u, 8u, 16u, 32u, 64u, 128u}) {
    const std::size_t n = k + k / 2 + 2;
    const RunResult alg4 =
        run(n, k, core::dispersion_factory_memoized(), false, k);
    const RunResult walk =
        run(n, k, baselines::random_walk_factory(k * 7 + 1), true, k);

    tight &= alg4.dispersed && alg4.rounds == k - 1;
    // The lower bound itself: NOBODY can finish faster than k-1.
    tight &= !walk.dispersed || walk.rounds >= k - 1;

    table.add_row({std::to_string(k), std::to_string(n), std::to_string(k - 1),
                   std::to_string(alg4.rounds),
                   fmt_double(static_cast<double>(alg4.rounds) /
                                  static_cast<double>(k - 1),
                              3),
                   std::to_string(walk.rounds),
                   walk.dispersed ? "yes" : "no (budget 200k)"});
    csv.add_row({std::to_string(k), std::to_string(n),
                 std::to_string(alg4.rounds), std::to_string(walk.rounds),
                 walk.dispersed ? "1" : "0"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\n%s\n",
              tight ? "Theta(k) is tight: Algorithm 4 meets the adversarial "
                      "lower bound exactly (ratio 1.000)."
                    : "MISMATCH: some run beat or missed the bound!");
  std::printf("series written to bench_lower_bound.csv\n");
  return tight ? 0 : 1;
}
