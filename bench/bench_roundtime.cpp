// Round-time perf harness: wall-clock cost of simulating Algorithm 4 per
// robot-round, across adversaries, scales, and compute-phase thread counts.
// Unlike the theorem benches this one makes no claim about the paper -- it
// tracks the ENGINE, so perf regressions in the round hot path (packet
// assembly, state serialization, planning) show up as a number a CI job or
// a human can diff across commits. `--json` writes BENCH_roundtime.json, a
// machine-readable sibling of the ASCII table (schema in README.md).
//
//   bench_roundtime [--json] [--out=FILE] [--threads=1,8] [--reps=N]
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/dispersion.h"
#include "dynamic/random_adversary.h"
#include "dynamic/ring_adversary.h"
#include "dynamic/star_star_adversary.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using namespace dyndisp;

struct Row {
  std::string adversary;
  std::size_t k = 0;
  std::size_t n = 0;
  std::size_t threads = 1;
  Round rounds = 0;
  bool dispersed = false;
  std::uint64_t robot_rounds = 0;
  double wall_ms = 0;
  double robot_rounds_per_sec = 0;
  double packet_mbits = 0;
};

std::unique_ptr<Adversary> make_adversary(const std::string& name,
                                          std::size_t n) {
  if (name == "random") return std::make_unique<RandomAdversary>(n, n / 3, 11);
  if (name == "star-star") return std::make_unique<StarStarAdversary>(n);
  if (name == "ring")
    return std::make_unique<RingAdversary>(n, RingAdversary::Strategy::kWorstEdge);
  throw std::invalid_argument("unknown adversary: " + name);
}

Row run(const std::string& adversary, std::size_t k, std::size_t threads,
        std::size_t reps) {
  const std::size_t n = k + k / 2;
  Row row;
  row.adversary = adversary;
  row.k = k;
  row.n = n;
  row.threads = threads;
  // Median-free but repeatable: take the best of `reps` runs so a one-off
  // scheduler hiccup does not masquerade as a regression.
  for (std::size_t rep = 0; rep < reps; ++rep) {
    auto adv = make_adversary(adversary, n);
    EngineOptions opt;
    opt.max_rounds = 10 * k;
    opt.threads = threads;
    Engine engine(*adv, placement::rooted(n, k),
                  core::dispersion_factory_memoized(), opt);
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult r = engine.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < row.wall_ms) row.wall_ms = ms;
    row.rounds = r.rounds;
    row.dispersed = r.dispersed;
    row.robot_rounds = static_cast<std::uint64_t>(r.rounds) * k;
    row.packet_mbits = static_cast<double>(r.packet_bits_sent) / 1e6;
  }
  row.robot_rounds_per_sec =
      row.wall_ms > 0 ? 1000.0 * static_cast<double>(row.robot_rounds) /
                            row.wall_ms
                      : 0;
  return row;
}

std::vector<std::size_t> parse_threads(const std::string& spec) {
  std::vector<std::size_t> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    unsigned long t = 0;
    try {
      std::size_t pos = 0;
      t = std::stoul(item, &pos);
      if (pos != item.size()) throw std::invalid_argument(item);
    } catch (const std::exception&) {
      throw std::invalid_argument("--threads expects integers, got '" + item +
                                  "'");
    }
    if (t == 0) throw std::invalid_argument("--threads values must be >= 1");
    out.push_back(t);
  }
  if (out.empty()) throw std::invalid_argument("--threads list is empty");
  return out;
}

void write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  JsonWriter w(out);
  w.begin_object();
  w.member("bench", "roundtime");
  w.member("schema_version", std::uint64_t{1});
  w.key("results");
  w.begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.member("adversary", r.adversary);
    w.member("k", static_cast<std::uint64_t>(r.k));
    w.member("n", static_cast<std::uint64_t>(r.n));
    w.member("threads", static_cast<std::uint64_t>(r.threads));
    w.member("rounds", static_cast<std::uint64_t>(r.rounds));
    w.member("dispersed", r.dispersed);
    w.member("robot_rounds", r.robot_rounds);
    w.member("wall_ms", r.wall_ms);
    w.member("robot_rounds_per_sec", r.robot_rounds_per_sec);
    w.member("packet_mbits", r.packet_mbits);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

}  // namespace

int main(int argc, char** argv) try {
  CliArgs args(argc, argv);
  const bool json = args.get_bool("json", false);
  const std::string out_path = args.get("out", "BENCH_roundtime.json");
  const std::vector<std::size_t> thread_counts =
      parse_threads(args.get("threads", "1,8"));
  const std::size_t reps = args.get_uint("reps", 1);
  for (const std::string& key : args.unused()) {
    std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
    return 2;
  }

  std::printf("== Round-time harness: engine wall-clock per robot-round ==\n");
  bool ok = true;
  std::vector<Row> rows;
  for (const char* adversary : {"random", "star-star", "ring"}) {
    AsciiTable table({"k", "threads", "rounds", "wall ms", "robot-rounds/s",
                      "packet Mbits"});
    table.set_title(adversary);
    for (const std::size_t k : {64u, 128u, 256u, 512u}) {
      for (const std::size_t threads : thread_counts) {
        const Row row = run(adversary, k, threads, reps);
        ok &= row.dispersed;
        rows.push_back(row);
        table.add_row({std::to_string(row.k), std::to_string(row.threads),
                       std::to_string(row.rounds), fmt_double(row.wall_ms, 1),
                       fmt_double(row.robot_rounds_per_sec, 0),
                       fmt_double(row.packet_mbits, 2)});
      }
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }
  if (json) {
    write_json(rows, out_path);
    std::printf("wrote %s (%zu result rows)\n", out_path.c_str(), rows.size());
  }
  if (!ok) std::printf("WARNING: some runs did not disperse\n");
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
