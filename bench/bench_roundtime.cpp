// Round-time perf harness: wall-clock cost of simulating Algorithm 4 per
// robot-round, across adversaries, scales, compute-phase thread counts, and
// the delta-aware structure cache (on vs off). Unlike the theorem benches
// this one makes no claim about the paper -- it tracks the ENGINE, so perf
// regressions in the round hot path (packet assembly, state serialization,
// planning, cross-round reuse) show up as a number a CI job or a human can
// diff across commits. `--json` writes BENCH_roundtime.json, a
// machine-readable sibling of the ASCII table (schema in README.md).
//
// The adversary set spans the reuse spectrum: `random` / `star-star` /
// `ring-worst` rewire every round (the cache can at best break even there),
// while `static`, `t-interval`, and `scripted` replay graphs across rounds,
// which is where the delta-aware loop earns its keep.
//
//   bench_roundtime [--json] [--out=FILE] [--threads=1,8] [--reps=N]
//                   [--smoke] [--validate=FILE]
//
// `--smoke` shrinks the sweep to one tiny size per adversary (CI-friendly:
// seconds, not minutes). `--validate=FILE` parses a previously written JSON
// file, checks it against schema v2 (field presence/types, cache on/off
// pairing, reuse counters nonzero on the replay-heavy rows), and exits --
// no timing assertions, so it is safe on loaded CI machines.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/registry.h"
#include "core/dispersion.h"
#include "dynamic/random_adversary.h"
#include "dynamic/scripted_adversary.h"
#include "dynamic/t_interval_adversary.h"
#include "robots/configuration.h"
#include "sim/engine.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using namespace dyndisp;

constexpr std::uint64_t kSchemaVersion = 2;
constexpr std::uint64_t kSeed = 11;

struct Row {
  std::string adversary;
  std::size_t k = 0;
  std::size_t n = 0;
  std::size_t threads = 1;
  bool structure_cache = true;
  Round rounds = 0;
  bool dispersed = false;
  std::uint64_t robot_rounds = 0;
  double wall_ms = 0;
  double robot_rounds_per_sec = 0;
  double packet_mbits = 0;
  RoundLoopStats stats;
};

/// One bench row family: which adversary, how robots are placed, and how the
/// node count scales with k. The replay-heavy rows use a rooted start on
/// n = 3k: the run takes many rounds, most robots settle early and stay put,
/// and only the moving frontier dirties nodes -- the regime the delta
/// broadcast and structure cache target.
struct AdversarySpec {
  const char* name;       // registry adversary name, or "scripted"
  const char* placement;  // registry placement name
  std::size_t n_num, n_den;  // n = k * n_num / n_den
  bool reuse_heavy;       // replays graphs; cache counters must be nonzero
};

constexpr AdversarySpec kSpecs[] = {
    {"random", "rooted", 3, 2, false},
    {"star-star", "rooted", 3, 2, false},
    {"ring-worst", "rooted", 3, 2, false},
    {"static", "rooted", 3, 1, true},
    {"t-interval", "rooted", 3, 1, true},
    {"scripted", "rooted", 3, 1, true},
};

std::unique_ptr<Adversary> make_adversary(const std::string& name,
                                          std::size_t n) {
  const campaign::Registry& registry = campaign::Registry::instance();
  if (name == "scripted") {
    // A three-line script, then the repeat-last horizon: rounds 0..2 churn,
    // everything after round 2 replays script.back() forever.
    std::vector<Graph> script;
    for (std::uint64_t s = 1; s <= 3; ++s)
      script.push_back(registry.family("random", n, kSeed + s));
    return std::make_unique<ScriptedAdversary>(std::move(script));
  }
  if (name == "t-interval") {
    // Wider window than the registry's T=4: with T=8, 7 of every 8 rounds
    // replay the window's graph, which is the regime this row measures.
    return std::make_unique<TIntervalAdversary>(
        std::make_unique<RandomAdversary>(n, n / 4, kSeed), 8);
  }
  return registry.adversary(name, "random", n, kSeed);
}

Row run(const AdversarySpec& spec, std::size_t k, std::size_t threads,
        bool structure_cache, std::size_t reps) {
  Row row;
  row.adversary = spec.name;
  row.k = k;
  row.threads = threads;
  row.structure_cache = structure_cache;
  // Median-free but repeatable: take the best of `reps` runs so a one-off
  // scheduler hiccup does not masquerade as a regression.
  for (std::size_t rep = 0; rep < reps; ++rep) {
    auto adv = make_adversary(spec.name, k * spec.n_num / spec.n_den);
    // Families may round the requested size; place on the graph's actual n.
    const std::size_t n = adv->node_count();
    Configuration initial =
        campaign::Registry::instance().placement(spec.placement, n, k,
                                                 /*groups=*/3, kSeed);
    EngineOptions opt;
    opt.max_rounds = 10 * k;
    opt.threads = threads;
    opt.structure_cache = structure_cache;
    Engine engine(*adv, std::move(initial),
                  core::dispersion_factory_memoized(), opt);
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult r = engine.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < row.wall_ms) row.wall_ms = ms;
    row.n = n;
    row.rounds = r.rounds;
    row.dispersed = r.dispersed;
    row.robot_rounds = static_cast<std::uint64_t>(r.rounds) * k;
    row.packet_mbits = static_cast<double>(r.packet_bits_sent) / 1e6;
    row.stats = r.stats;  // identical every rep (deterministic loop)
  }
  row.robot_rounds_per_sec =
      row.wall_ms > 0 ? 1000.0 * static_cast<double>(row.robot_rounds) /
                            row.wall_ms
                      : 0;
  return row;
}

std::vector<std::size_t> parse_threads(const std::string& spec) {
  std::vector<std::size_t> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    unsigned long t = 0;
    try {
      std::size_t pos = 0;
      t = std::stoul(item, &pos);
      if (pos != item.size()) throw std::invalid_argument(item);
    } catch (const std::exception&) {
      throw std::invalid_argument("--threads expects integers, got '" + item +
                                  "'");
    }
    if (t == 0) throw std::invalid_argument("--threads values must be >= 1");
    out.push_back(t);
  }
  if (out.empty()) throw std::invalid_argument("--threads list is empty");
  return out;
}

void write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  JsonWriter w(out);
  w.begin_object();
  w.member("bench", "roundtime");
  w.member("schema_version", kSchemaVersion);
  w.key("results");
  w.begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.member("adversary", r.adversary);
    w.member("k", static_cast<std::uint64_t>(r.k));
    w.member("n", static_cast<std::uint64_t>(r.n));
    w.member("threads", static_cast<std::uint64_t>(r.threads));
    w.member("structure_cache", r.structure_cache);
    w.member("rounds", static_cast<std::uint64_t>(r.rounds));
    w.member("dispersed", r.dispersed);
    w.member("robot_rounds", r.robot_rounds);
    w.member("wall_ms", r.wall_ms);
    w.member("robot_rounds_per_sec", r.robot_rounds_per_sec);
    w.member("packet_mbits", r.packet_mbits);
    w.member("graph_reuses", static_cast<std::uint64_t>(r.stats.graph_reuses));
    w.member("validations_skipped",
             static_cast<std::uint64_t>(r.stats.validations_skipped));
    w.member("broadcasts_reused",
             static_cast<std::uint64_t>(r.stats.broadcasts_reused));
    w.member("broadcast_deltas",
             static_cast<std::uint64_t>(r.stats.broadcast_deltas));
    w.member("packets_copied",
             static_cast<std::uint64_t>(r.stats.packets_copied));
    w.member("packets_rebuilt",
             static_cast<std::uint64_t>(r.stats.packets_rebuilt));
    w.member("sc_exact_hits", r.stats.sc_exact_hits);
    w.member("sc_components_reused", r.stats.sc_components_reused);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

// ---- --validate=FILE: schema v2 checks, no timing assertions ----

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("validate: " + what);
}

const JsonValue& req(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) fail("missing key '" + key + "'");
  return *v;
}

int validate(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue doc = JsonValue::parse(buffer.str());

  if (req(doc, "bench").as_string() != "roundtime")
    fail("'bench' is not \"roundtime\"");
  if (req(doc, "schema_version").as_uint() != kSchemaVersion)
    fail("'schema_version' is not " + std::to_string(kSchemaVersion));
  const std::vector<JsonValue>& rows = req(doc, "results").items();
  if (rows.empty()) fail("'results' is empty");

  static const char* const kUints[] = {
      "k", "n", "threads", "rounds", "robot_rounds",
      "graph_reuses", "validations_skipped", "broadcasts_reused",
      "broadcast_deltas", "packets_copied", "packets_rebuilt",
      "sc_exact_hits", "sc_components_reused"};
  static const char* const kNumbers[] = {"wall_ms", "robot_rounds_per_sec",
                                         "packet_mbits"};
  // (adversary, k, threads) -> bitmask of cache settings seen (1 = off,
  // 2 = on); every tuple must appear with the cache both on and off.
  std::map<std::string, unsigned> cache_sides;
  for (const JsonValue& row : rows) {
    const std::string adversary = req(row, "adversary").as_string();
    for (const char* key : kUints) (void)req(row, key).as_uint();
    for (const char* key : kNumbers) (void)req(row, key).as_number();
    (void)req(row, "dispersed").as_bool();
    const bool cache = req(row, "structure_cache").as_bool();
    const std::string tuple = adversary + "/k=" +
                              std::to_string(req(row, "k").as_uint()) +
                              "/t=" +
                              std::to_string(req(row, "threads").as_uint());
    cache_sides[tuple] |= cache ? 2u : 1u;
    if (!cache) {
      // The rebuild-everything loop must not report reuse it cannot perform.
      for (const char* key : {"graph_reuses", "broadcasts_reused",
                              "broadcast_deltas", "sc_exact_hits"}) {
        if (req(row, key).as_uint() != 0)
          fail(tuple + ": cache-off row has nonzero " + key);
      }
      continue;
    }
    for (const AdversarySpec& spec : kSpecs) {
      if (!spec.reuse_heavy || adversary != spec.name) continue;
      // Replay-heavy adversary with the cache on: the hint path and the
      // broadcast reuse/delta path must both have fired.
      if (req(row, "graph_reuses").as_uint() == 0)
        fail(tuple + ": reuse-heavy row has graph_reuses == 0");
      if (req(row, "broadcasts_reused").as_uint() +
              req(row, "broadcast_deltas").as_uint() ==
          0)
        fail(tuple + ": reuse-heavy row reused no broadcasts");
    }
  }
  for (const auto& [tuple, sides] : cache_sides) {
    if (sides != 3u)
      fail(tuple + ": missing its cache-" +
           (sides == 1u ? std::string("on") : std::string("off")) + " row");
  }
  std::printf("validate: %s ok (%zu rows, schema v%llu)\n", path.c_str(),
              rows.size(),
              static_cast<unsigned long long>(kSchemaVersion));
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  CliArgs args(argc, argv);
  const std::string validate_path = args.get("validate", "");
  const bool json = args.get_bool("json", false);
  const std::string out_path = args.get("out", "BENCH_roundtime.json");
  const std::vector<std::size_t> thread_counts =
      parse_threads(args.get("threads", "1,8"));
  const std::size_t reps = args.get_uint("reps", 1);
  const bool smoke = args.get_bool("smoke", false);
  for (const std::string& key : args.unused()) {
    std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
    return 2;
  }
  if (!validate_path.empty()) return validate(validate_path);

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{16}
            : std::vector<std::size_t>{64, 128, 256, 512};

  std::printf("== Round-time harness: engine wall-clock per robot-round ==\n");
  bool ok = true;
  std::vector<Row> rows;
  for (const AdversarySpec& spec : kSpecs) {
    AsciiTable table({"k", "threads", "cache", "rounds", "wall ms",
                      "robot-rounds/s", "packet Mbits"});
    table.set_title(spec.name);
    for (const std::size_t k : sizes) {
      for (const std::size_t threads : thread_counts) {
        double off_rate = 0;
        for (const bool cache : {false, true}) {
          const Row row = run(spec, k, threads, cache, reps);
          ok &= row.dispersed;
          rows.push_back(row);
          std::string rate = fmt_double(row.robot_rounds_per_sec, 0);
          if (!cache) {
            off_rate = row.robot_rounds_per_sec;
          } else if (off_rate > 0) {
            rate += " (" +
                    fmt_double(row.robot_rounds_per_sec / off_rate, 2) + "x)";
          }
          table.add_row({std::to_string(row.k), std::to_string(row.threads),
                         cache ? "on" : "off", std::to_string(row.rounds),
                         fmt_double(row.wall_ms, 1), rate,
                         fmt_double(row.packet_mbits, 2)});
        }
      }
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }
  if (json) {
    write_json(rows, out_path);
    std::printf("wrote %s (%zu result rows)\n", out_path.c_str(), rows.size());
  }
  if (!ok) std::printf("WARNING: some runs did not disperse\n");
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
