// Round-time perf harness: wall-clock cost of simulating Algorithm 4 per
// robot-round, across adversaries, scales, compute-phase thread counts, and
// the engine's three big round-loop switches -- the delta-aware structure
// cache, the struct-of-arrays round core (EngineOptions::soa), and the flat
// PacketArena broadcast backend (EngineOptions::flat_packets). Unlike the
// theorem benches this one makes no claim about the paper -- it tracks the
// ENGINE, so perf regressions in the round hot path (packet assembly,
// state serialization, planning, cross-round reuse, view materialization)
// show up as a number a CI job or a human can diff across commits. `--json`
// writes BENCH_roundtime.json, a machine-readable sibling of the ASCII
// table (schema in README.md).
//
// The adversary set spans the reuse spectrum: `random` / `star-star` /
// `ring-worst` rewire every round (the cache can at best break even there),
// while `static`, `t-interval`, and `scripted` replay graphs across rounds,
// which is where the delta-aware loop earns its keep. A mega-scale section
// (random adversary, random placement, k up to 10^6) exercises the regime
// the SoA core and the packet arena were built for; heap allocations are
// counted per row (a process-global operator-new counter), which is where
// the arena's headline -- the legacy broadcast's ~12M allocations per
// k=10^5 run collapsing by >5x -- is visible.
//
//   bench_roundtime [--json] [--out=FILE] [--threads=1,8] [--reps=N]
//                   [--smoke] [--mega] [--mega-smoke] [--validate[=FILE]]
//
// Each (adversary, k, threads) tuple runs a quartet of engine paths -- all
// toggles on (the default engine), then cache / soa / flat off one at a
// time -- so every switch is diffed against the full default. The k=10^6
// mega row runs the default corner only (one legacy-path run at that scale
// would add minutes for no new information; the toggles' identity is
// pinned up through k=10^5). `--smoke` shrinks the sweep to one tiny size
// per adversary plus the k=4096 mega row (CI-friendly: seconds, not
// minutes). `--mega` appends the k=10^6 headline row to the mega section
// (several minutes and >1 GB RSS, so scripts/repro.sh gates it behind
// DYNDISP_MEGA=1; see docs/PERFORMANCE.md). `--mega-smoke` instead runs
// ONLY the mega spec at k=65536 (default corner, threads=1) and exits
// nonzero if the run misses its heap-allocation or peak-RSS ceilings --
// the CI-sized canary for the mega row's memory diet, deterministic where
// wall-clock on shared runners is not. Bare `--validate` checks, after the sweep, that every tuple's
// engine paths agreed on all round observables (robot_rounds, rounds,
// packet_mbits, dispersed) -- the three toggles claim bitwise identity,
// and this is that claim at bench scale. `--validate=FILE` parses a
// previously written JSON file, checks it against schema v5 (field
// presence/types, soa and flat on/off pairing below k=10^6, per-tuple
// observable identity, reuse counters nonzero on the replay-heavy rows),
// and exits -- no timing assertions, so it is safe on loaded CI machines.
//
// Schema v5 adds the engine's per-phase wall-time buckets (phase_*_ms from
// RoundLoopStats: graph_build / broadcast / plan / compute / move), so the
// mega rows' time is attributable without a profiler.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/registry.h"
#include "core/dispersion.h"
#include "dynamic/random_adversary.h"
#include "dynamic/scripted_adversary.h"
#include "dynamic/t_interval_adversary.h"
#include "robots/configuration.h"
#include "sim/engine.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/memprobe.h"
#include "util/table.h"

// Heap-allocation probe: the shared util/memprobe.h counter with this
// binary's operator-new hook installed (see that header for why the hook
// is per-binary). The counter is the measurement the packet arena exists
// to improve; the delta across an engine.run() is the run's allocation
// count.
DYNDISP_MEMPROBE_DEFINE_GLOBAL_NEW

namespace {

using namespace dyndisp;

constexpr std::uint64_t kSchemaVersion = 5;
constexpr std::uint64_t kSeed = 11;

/// k at and above which only the default engine corner runs (and the
/// validators stop demanding toggle pairing): the mega headline row.
constexpr std::size_t kDefaultCornerOnlyK = 1000000;

/// --mega-smoke ceilings for the k=65536 mega row (default corner,
/// threads=1). Allocation counts are deterministic (the memprobe counter
/// is exact) and peak RSS at this scale is dominated by n-proportional
/// state, so both are stable across machines; the margins are ~1.5x the
/// measured values so only a real regression -- a reintroduced retained
/// copy, a per-round allocation leak -- trips them, not noise.
constexpr std::size_t kMegaSmokeK = 65536;
constexpr std::uint64_t kMegaSmokeAllocCeiling = 9'500'000;
constexpr double kMegaSmokeRssCeilingMb = 150;

struct Row {
  std::string adversary;
  std::size_t k = 0;
  std::size_t n = 0;
  std::size_t threads = 1;
  bool structure_cache = true;
  bool soa = true;
  bool flat_packets = true;
  Round rounds = 0;
  bool dispersed = false;
  std::uint64_t robot_rounds = 0;
  double wall_ms = 0;
  double robot_rounds_per_sec = 0;
  double packet_mbits = 0;
  double peak_rss_mb = 0;
  std::uint64_t heap_allocs = 0;
  RoundLoopStats stats;
};

/// One bench row family: which adversary, how robots are placed, and how the
/// node count scales with k. The replay-heavy rows use a rooted start on
/// n = 3k: the run takes many rounds, most robots settle early and stay put,
/// and only the moving frontier dirties nodes -- the regime the delta
/// broadcast and structure cache target.
struct AdversarySpec {
  const char* name;       // registry adversary name, or "scripted"
  const char* placement;  // registry placement name
  std::size_t n_num, n_den;  // n = k * n_num / n_den
  bool reuse_heavy;       // replays graphs; cache counters must be nonzero
};

constexpr AdversarySpec kSpecs[] = {
    {"random", "rooted", 3, 2, false},
    {"star-star", "rooted", 3, 2, false},
    {"ring-worst", "rooted", 3, 2, false},
    {"static", "rooted", 3, 1, true},
    {"t-interval", "rooted", 3, 1, true},
    {"scripted", "rooted", 3, 1, true},
};

/// The mega-scale section: the random adversary rewires every round, the
/// random placement scatters robots so the first rounds carry giant
/// components, and k reaches the 10^5 regime the SoA core targets.
/// Runs at threads=1 only -- the headline claim is single-threaded.
constexpr AdversarySpec kMegaSpec = {"random", "random", 3, 2, false};

/// Process-wide peak RSS in MB. Monotone high-water mark for the WHOLE
/// process, so within one bench invocation only the first row to touch a
/// new peak moves it; it is recorded per row as an upper bound and is
/// meaningful mainly on the mega rows, which dwarf everything before them.
double peak_rss_mb() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KB
}

std::unique_ptr<Adversary> make_adversary(const std::string& name,
                                          std::size_t n) {
  const campaign::Registry& registry = campaign::Registry::instance();
  if (name == "scripted") {
    // A three-line script, then the repeat-last horizon: rounds 0..2 churn,
    // everything after round 2 replays script.back() forever.
    std::vector<Graph> script;
    for (std::uint64_t s = 1; s <= 3; ++s)
      script.push_back(registry.family("random", n, kSeed + s));
    return std::make_unique<ScriptedAdversary>(std::move(script));
  }
  if (name == "t-interval") {
    // Wider window than the registry's T=4: with T=8, 7 of every 8 rounds
    // replay the window's graph, which is the regime this row measures.
    return std::make_unique<TIntervalAdversary>(
        std::make_unique<RandomAdversary>(n, n / 4, kSeed), 8);
  }
  return registry.adversary(name, "random", n, kSeed);
}

Row run(const AdversarySpec& spec, std::size_t k, std::size_t threads,
        bool structure_cache, bool soa, bool flat_packets, std::size_t reps) {
  Row row;
  row.adversary = spec.name;
  row.k = k;
  row.threads = threads;
  row.structure_cache = structure_cache;
  row.soa = soa;
  row.flat_packets = flat_packets;
  // Median-free but repeatable: take the best of `reps` runs so a one-off
  // scheduler hiccup does not masquerade as a regression.
  for (std::size_t rep = 0; rep < reps; ++rep) {
    auto adv = make_adversary(spec.name, k * spec.n_num / spec.n_den);
    // Families may round the requested size; place on the graph's actual n.
    const std::size_t n = adv->node_count();
    Configuration initial =
        campaign::Registry::instance().placement(spec.placement, n, k,
                                                 /*groups=*/3, kSeed);
    EngineOptions opt;
    opt.max_rounds = 10 * k;
    opt.threads = threads;
    opt.structure_cache = structure_cache;
    opt.soa = soa;
    opt.flat_packets = flat_packets;
    Engine engine(*adv, std::move(initial),
                  core::dispersion_factory_memoized(), opt);
    const std::uint64_t allocs_before = dyndisp::memprobe::allocation_count();
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult r = engine.run();
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t allocs =
        dyndisp::memprobe::allocation_count() - allocs_before;
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < row.wall_ms) row.wall_ms = ms;
    // The round loop is deterministic, so rep 0 already warmed every
    // process-global cache; take the min so one-time warmup allocations do
    // not inflate the steady-state count.
    if (rep == 0 || allocs < row.heap_allocs) row.heap_allocs = allocs;
    row.n = n;
    row.rounds = r.rounds;
    row.dispersed = r.dispersed;
    row.robot_rounds = static_cast<std::uint64_t>(r.rounds) * k;
    row.packet_mbits = static_cast<double>(r.packet_bits_sent) / 1e6;
    row.stats = r.stats;  // identical every rep (deterministic loop)
  }
  row.peak_rss_mb = peak_rss_mb();
  row.robot_rounds_per_sec =
      row.wall_ms > 0 ? 1000.0 * static_cast<double>(row.robot_rounds) /
                            row.wall_ms
                      : 0;
  return row;
}

std::vector<std::size_t> parse_threads(const std::string& spec) {
  std::vector<std::size_t> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    unsigned long t = 0;
    try {
      std::size_t pos = 0;
      t = std::stoul(item, &pos);
      if (pos != item.size()) throw std::invalid_argument(item);
    } catch (const std::exception&) {
      throw std::invalid_argument("--threads expects integers, got '" + item +
                                  "'");
    }
    if (t == 0) throw std::invalid_argument("--threads values must be >= 1");
    out.push_back(t);
  }
  if (out.empty()) throw std::invalid_argument("--threads list is empty");
  return out;
}

void write_json(const std::vector<Row>& rows, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  JsonWriter w(out);
  w.begin_object();
  w.member("bench", "roundtime");
  w.member("schema_version", kSchemaVersion);
  w.key("results");
  w.begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.member("adversary", r.adversary);
    w.member("k", static_cast<std::uint64_t>(r.k));
    w.member("n", static_cast<std::uint64_t>(r.n));
    w.member("threads", static_cast<std::uint64_t>(r.threads));
    w.member("structure_cache", r.structure_cache);
    w.member("soa", r.soa);
    w.member("flat_packets", r.flat_packets);
    w.member("rounds", static_cast<std::uint64_t>(r.rounds));
    w.member("dispersed", r.dispersed);
    w.member("robot_rounds", r.robot_rounds);
    w.member("wall_ms", r.wall_ms);
    w.member("robot_rounds_per_sec", r.robot_rounds_per_sec);
    w.member("packet_mbits", r.packet_mbits);
    w.member("peak_rss_mb", r.peak_rss_mb);
    w.member("heap_allocs", r.heap_allocs);
    w.member("graph_reuses", static_cast<std::uint64_t>(r.stats.graph_reuses));
    w.member("validations_skipped",
             static_cast<std::uint64_t>(r.stats.validations_skipped));
    w.member("broadcasts_reused",
             static_cast<std::uint64_t>(r.stats.broadcasts_reused));
    w.member("broadcast_deltas",
             static_cast<std::uint64_t>(r.stats.broadcast_deltas));
    w.member("packets_copied",
             static_cast<std::uint64_t>(r.stats.packets_copied));
    w.member("packets_rebuilt",
             static_cast<std::uint64_t>(r.stats.packets_rebuilt));
    w.member("sc_exact_hits", r.stats.sc_exact_hits);
    w.member("sc_components_reused", r.stats.sc_components_reused);
    w.member("soa_rounds", static_cast<std::uint64_t>(r.stats.soa_rounds));
    w.member("arena_views", static_cast<std::uint64_t>(r.stats.arena_views));
    w.member("state_list_rounds_skipped",
             static_cast<std::uint64_t>(r.stats.state_list_rounds_skipped));
    w.member("before_copies_skipped",
             static_cast<std::uint64_t>(r.stats.before_copies_skipped));
    w.member("flat_rounds", static_cast<std::uint64_t>(r.stats.flat_rounds));
    w.member("phase_graph_build_ms", r.stats.phase_graph_build_ms);
    w.member("phase_broadcast_ms", r.stats.phase_broadcast_ms);
    w.member("phase_plan_ms", r.stats.phase_plan_ms);
    w.member("phase_compute_ms", r.stats.phase_compute_ms);
    w.member("phase_move_ms", r.stats.phase_move_ms);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("validate: " + what);
}

// ---- bare --validate: cross-path identity over the rows just produced ----

/// Checks that within every (adversary, k, threads) tuple, every engine
/// path (the (cache, soa) corners) observed the identical run: same
/// robot_rounds, rounds, packet_mbits, dispersed. Throws on the first
/// divergence -- a mismatch means a "pure optimization" changed behavior.
void validate_rows(const std::vector<Row>& rows) {
  struct Observed {
    const Row* first = nullptr;
  };
  std::map<std::string, Observed> tuples;
  for (const Row& row : rows) {
    const std::string tuple = row.adversary + "/k=" + std::to_string(row.k) +
                              "/t=" + std::to_string(row.threads);
    Observed& obs = tuples[tuple];
    if (obs.first == nullptr) {
      obs.first = &row;
      continue;
    }
    const Row& a = *obs.first;
    const auto corner = [](const Row& r) {
      return std::string(r.structure_cache ? "cache=on" : "cache=off") +
             (r.soa ? ",soa=on" : ",soa=off") +
             (r.flat_packets ? ",flat=on" : ",flat=off");
    };
    const auto diverged = [&](const char* what, const std::string& va,
                              const std::string& vb) {
      fail(tuple + ": " + what + " diverged across engine paths (" +
           corner(a) + ": " + va + " | " + corner(row) + ": " + vb + ")");
    };
    if (a.robot_rounds != row.robot_rounds)
      diverged("robot_rounds", std::to_string(a.robot_rounds),
               std::to_string(row.robot_rounds));
    if (a.rounds != row.rounds)
      diverged("rounds", std::to_string(a.rounds), std::to_string(row.rounds));
    if (a.packet_mbits != row.packet_mbits)
      diverged("packet_mbits", std::to_string(a.packet_mbits),
               std::to_string(row.packet_mbits));
    if (a.dispersed != row.dispersed)
      diverged("dispersed", std::to_string(a.dispersed),
               std::to_string(row.dispersed));
  }
  std::printf("validate: %zu tuples, every engine path agreed on all round "
              "observables\n",
              tuples.size());
}

// ---- --validate=FILE: schema v5 checks, no timing assertions ----

const JsonValue& req(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) fail("missing key '" + key + "'");
  return *v;
}

int validate_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue doc = JsonValue::parse(buffer.str());

  if (req(doc, "bench").as_string() != "roundtime")
    fail("'bench' is not \"roundtime\"");
  if (req(doc, "schema_version").as_uint() != kSchemaVersion)
    fail("'schema_version' is not " + std::to_string(kSchemaVersion));
  const std::vector<JsonValue>& rows = req(doc, "results").items();
  if (rows.empty()) fail("'results' is empty");

  static const char* const kUints[] = {
      "k", "n", "threads", "rounds", "robot_rounds", "heap_allocs",
      "graph_reuses", "validations_skipped", "broadcasts_reused",
      "broadcast_deltas", "packets_copied", "packets_rebuilt",
      "sc_exact_hits", "sc_components_reused", "soa_rounds", "arena_views",
      "state_list_rounds_skipped", "before_copies_skipped", "flat_rounds"};
  static const char* const kNumbers[] = {
      "wall_ms", "robot_rounds_per_sec", "packet_mbits", "peak_rss_mb",
      "phase_graph_build_ms", "phase_broadcast_ms", "phase_plan_ms",
      "phase_compute_ms", "phase_move_ms"};
  /// Per (adversary, k, threads) tuple: which soa/flat sides appeared
  /// (1 = off, 2 = on; both required below the default-corner-only scale)
  /// and the observables every engine path must agree on.
  struct Tuple {
    unsigned soa_sides = 0;
    unsigned flat_sides = 0;
    std::uint64_t k = 0;
    bool seen = false;
    std::uint64_t robot_rounds = 0;
    std::uint64_t rounds = 0;
    double packet_mbits = 0;
    bool dispersed = false;
  };
  std::map<std::string, Tuple> tuples;
  for (const JsonValue& row : rows) {
    const std::string adversary = req(row, "adversary").as_string();
    for (const char* key : kUints) (void)req(row, key).as_uint();
    for (const char* key : kNumbers) (void)req(row, key).as_number();
    (void)req(row, "dispersed").as_bool();
    const bool cache = req(row, "structure_cache").as_bool();
    const bool soa = req(row, "soa").as_bool();
    const bool flat = req(row, "flat_packets").as_bool();
    const std::string tuple = adversary + "/k=" +
                              std::to_string(req(row, "k").as_uint()) +
                              "/t=" +
                              std::to_string(req(row, "threads").as_uint());
    Tuple& t = tuples[tuple];
    t.soa_sides |= soa ? 2u : 1u;
    t.flat_sides |= flat ? 2u : 1u;
    t.k = req(row, "k").as_uint();
    // Every engine path of a tuple ran the identical round sequence; the
    // round observables must say so.
    if (!t.seen) {
      t.seen = true;
      t.robot_rounds = req(row, "robot_rounds").as_uint();
      t.rounds = req(row, "rounds").as_uint();
      t.packet_mbits = req(row, "packet_mbits").as_number();
      t.dispersed = req(row, "dispersed").as_bool();
    } else if (t.robot_rounds != req(row, "robot_rounds").as_uint() ||
               t.rounds != req(row, "rounds").as_uint() ||
               t.packet_mbits != req(row, "packet_mbits").as_number() ||
               t.dispersed != req(row, "dispersed").as_bool()) {
      fail(tuple + ": engine paths disagree on round observables");
    }
    // The SoA counters must track the path that actually ran.
    if (soa) {
      if (req(row, "soa_rounds").as_uint() != req(row, "rounds").as_uint())
        fail(tuple + ": soa row did not run every round through the arena");
    } else {
      for (const char* key : {"soa_rounds", "arena_views",
                              "state_list_rounds_skipped",
                              "before_copies_skipped"}) {
        if (req(row, key).as_uint() != 0)
          fail(tuple + ": soa-off row has nonzero " + key);
      }
    }
    // The flat counter must track the path that actually ran: every
    // executed round of a flat row broadcasts through the arena (all bench
    // rows are global-comm Algorithm 4), and a legacy row must claim none.
    if (flat) {
      if (req(row, "flat_rounds").as_uint() != req(row, "rounds").as_uint())
        fail(tuple + ": flat row did not broadcast every round via the arena");
    } else if (req(row, "flat_rounds").as_uint() != 0) {
      fail(tuple + ": flat-off row has nonzero flat_rounds");
    }
    if (!cache) {
      // The rebuild-everything loop must not report reuse it cannot perform.
      for (const char* key : {"graph_reuses", "broadcasts_reused",
                              "broadcast_deltas", "sc_exact_hits"}) {
        if (req(row, key).as_uint() != 0)
          fail(tuple + ": cache-off row has nonzero " + key);
      }
      continue;
    }
    for (const AdversarySpec& spec : kSpecs) {
      if (!spec.reuse_heavy || adversary != spec.name) continue;
      // Replay-heavy adversary with the cache on: the hint path and the
      // broadcast reuse/delta path must both have fired.
      if (req(row, "graph_reuses").as_uint() == 0)
        fail(tuple + ": reuse-heavy row has graph_reuses == 0");
      if (req(row, "broadcasts_reused").as_uint() +
              req(row, "broadcast_deltas").as_uint() ==
          0)
        fail(tuple + ": reuse-heavy row reused no broadcasts");
    }
  }
  for (const auto& [tuple, t] : tuples) {
    // The headline mega row runs the default corner only; no pairing there.
    if (t.k >= kDefaultCornerOnlyK) continue;
    if (t.soa_sides != 3u)
      fail(tuple + ": missing its soa-" +
           (t.soa_sides == 1u ? std::string("on") : std::string("off")) +
           " row");
    if (t.flat_sides != 3u)
      fail(tuple + ": missing its flat-" +
           (t.flat_sides == 1u ? std::string("on") : std::string("off")) +
           " row");
  }
  std::printf("validate: %s ok (%zu rows, schema v%llu)\n", path.c_str(),
              rows.size(),
              static_cast<unsigned long long>(kSchemaVersion));
  return 0;
}

/// The engine paths each tuple runs: all toggles on (the default engine),
/// then each toggle off alone, so every switch is diffed against the full
/// default. (cache, soa, flat) triples.
struct Corner {
  bool cache, soa, flat;
};
constexpr Corner kCorners[] = {{true, true, true},
                               {false, true, true},
                               {true, false, true},
                               {true, true, false}};

}  // namespace

int main(int argc, char** argv) try {
  CliArgs args(argc, argv);
  const std::string validate_arg = args.get("validate", "");
  const bool json = args.get_bool("json", false);
  const std::string out_path = args.get("out", "BENCH_roundtime.json");
  const std::vector<std::size_t> thread_counts =
      parse_threads(args.get("threads", "1,8"));
  const std::size_t reps = args.get_uint("reps", 1);
  const bool smoke = args.get_bool("smoke", false);
  const bool mega = args.get_bool("mega", false);
  const bool mega_smoke = args.get_bool("mega-smoke", false);
  for (const std::string& key : args.unused()) {
    std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
    return 2;
  }
  // Bare `--validate` parses as "true": validate the sweep about to run.
  // Any other value is a JSON file to check.
  if (!validate_arg.empty() && validate_arg != "true")
    return validate_file(validate_arg);

  if (mega_smoke) {
    // CI canary: the k=65536 mega row alone, with hard memory ceilings.
    // Runs before anything else so the process RSS high-water mark is its
    // own, not an earlier row's.
    const Row row = run(kMegaSpec, kMegaSmokeK, 1, true, true, true, reps);
    std::printf(
        "mega-smoke: k=%zu rounds=%llu wall=%.0fms allocs=%llu rss=%.0fMB\n",
        row.k, static_cast<unsigned long long>(row.rounds), row.wall_ms,
        static_cast<unsigned long long>(row.heap_allocs), row.peak_rss_mb);
    bool pass = true;
    if (!row.dispersed) {
      std::printf("mega-smoke: FAIL -- run did not disperse\n");
      pass = false;
    }
    if (row.heap_allocs > kMegaSmokeAllocCeiling) {
      std::printf("mega-smoke: FAIL -- heap_allocs %llu > ceiling %llu\n",
                  static_cast<unsigned long long>(row.heap_allocs),
                  static_cast<unsigned long long>(kMegaSmokeAllocCeiling));
      pass = false;
    }
    if (row.peak_rss_mb > kMegaSmokeRssCeilingMb) {
      std::printf("mega-smoke: FAIL -- peak RSS %.0f MB > ceiling %.0f MB\n",
                  row.peak_rss_mb, kMegaSmokeRssCeilingMb);
      pass = false;
    }
    if (pass) std::printf("mega-smoke: OK (ceilings allocs<=%llu rss<=%.0fMB)\n",
                          static_cast<unsigned long long>(kMegaSmokeAllocCeiling),
                          kMegaSmokeRssCeilingMb);
    return pass ? 0 : 1;
  }

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{16}
            : std::vector<std::size_t>{64, 128, 256, 512};
  std::vector<std::size_t> mega_sizes =
      smoke ? std::vector<std::size_t>{4096}
            : std::vector<std::size_t>{4096, 65536, 100000};
  // The k=10^6 headline costs minutes and >1 GB: opt-in via --mega
  // (scripts/repro.sh forwards DYNDISP_MEGA=1 as this flag).
  if (mega && !smoke) mega_sizes.push_back(1000000);

  std::printf("== Round-time harness: engine wall-clock per robot-round ==\n");
  bool ok = true;
  std::vector<Row> rows;
  const auto sweep = [&](const AdversarySpec& spec, const std::string& title,
                         const std::vector<std::size_t>& ks,
                         const std::vector<std::size_t>& threads_list) {
    AsciiTable table({"k", "threads", "cache", "soa", "flat", "rounds",
                      "wall ms", "g/b/p/c/m ms", "robot-rounds/s",
                      "peak RSS MB", "allocs", "packet Mbits"});
    table.set_title(title);
    for (const std::size_t k : ks) {
      for (const std::size_t threads : threads_list) {
        double base_rate = 0;  // the all-on default engine's rate
        for (const auto& [cache, soa, flat] : kCorners) {
          // The headline k=10^6 row runs the default corner only, and a
          // single rep: one legacy-path run (or a best-of-N retake) at that
          // scale would add minutes for no new information (identity is
          // pinned up through k=10^5, and the row's minutes-long wall time
          // dwarfs scheduler jitter the reps exist to smooth out).
          if (k >= kDefaultCornerOnlyK && !(cache && soa && flat)) continue;
          const std::size_t row_reps = k >= kDefaultCornerOnlyK ? 1 : reps;
          const Row row = run(spec, k, threads, cache, soa, flat, row_reps);
          ok &= row.dispersed;
          rows.push_back(row);
          std::string rate = fmt_double(row.robot_rounds_per_sec, 0);
          if (cache && soa && flat) {
            base_rate = row.robot_rounds_per_sec;
          } else if (row.robot_rounds_per_sec > 0) {
            // Speedup the default engine shows over this degraded path.
            rate += " (x" +
                    fmt_double(base_rate / row.robot_rounds_per_sec, 2) +
                    " vs on)";
          }
          // Phase attribution: graph_build/broadcast/plan/compute/move.
          const std::string phases =
              fmt_double(row.stats.phase_graph_build_ms, 0) + "/" +
              fmt_double(row.stats.phase_broadcast_ms, 0) + "/" +
              fmt_double(row.stats.phase_plan_ms, 0) + "/" +
              fmt_double(row.stats.phase_compute_ms, 0) + "/" +
              fmt_double(row.stats.phase_move_ms, 0);
          table.add_row({std::to_string(row.k), std::to_string(row.threads),
                         cache ? "on" : "off", soa ? "on" : "off",
                         flat ? "on" : "off", std::to_string(row.rounds),
                         fmt_double(row.wall_ms, 1), phases, rate,
                         fmt_double(row.peak_rss_mb, 0),
                         std::to_string(row.heap_allocs),
                         fmt_double(row.packet_mbits, 2)});
        }
      }
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  };
  for (const AdversarySpec& spec : kSpecs)
    sweep(spec, spec.name, sizes, thread_counts);
  sweep(kMegaSpec, "random (mega-scale, random placement)", mega_sizes, {1});

  if (!validate_arg.empty()) validate_rows(rows);
  if (json) {
    write_json(rows, out_path);
    std::printf("wrote %s (%zu result rows)\n", out_path.c_str(), rows.size());
  }
  if (!ok) std::printf("WARNING: some runs did not disperse\n");
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
