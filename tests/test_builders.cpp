// Tests for the graph family builders, including parameterized sweeps over
// sizes checking structural invariants of every family.
#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/builders.h"
#include "util/rng.h"

namespace dyndisp {
namespace {

using builders::binary_tree;
using builders::complete;
using builders::complete_bipartite;
using builders::cycle;
using builders::grid;
using builders::hypercube;
using builders::lollipop;
using builders::path;
using builders::random_connected;
using builders::random_connected_p;
using builders::random_tree;
using builders::star;
using builders::torus;

TEST(Builders, PathStructure) {
  const Graph g = path(5);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.degree(4), 1u);
  EXPECT_EQ(diameter(g), 4u);
  EXPECT_TRUE(is_tree(g));
}

TEST(Builders, SingleNodePath) {
  const Graph g = path(1);
  EXPECT_EQ(g.node_count(), 1u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Builders, CycleStructure) {
  const Graph g = cycle(6);
  EXPECT_EQ(g.edge_count(), 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_EQ(diameter(g), 3u);
}

TEST(Builders, StarStructure) {
  const Graph g = star(7);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  for (NodeId v = 1; v < 7; ++v) EXPECT_EQ(g.degree(v), 1u);
  EXPECT_EQ(diameter(g), 2u);
}

TEST(Builders, CompleteStructure) {
  const Graph g = complete(5);
  EXPECT_EQ(g.edge_count(), 10u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(diameter(g), 1u);
}

TEST(Builders, CompleteBipartiteStructure) {
  const Graph g = complete_bipartite(2, 3);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(4), 2u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(Builders, GridStructure) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.edge_count(), 3u * 3 + 4u * 2);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(5), 4u);   // interior (1,1)
  EXPECT_EQ(diameter(g), 5u);   // (3-1)+(4-1)
}

TEST(Builders, TorusStructure) {
  const Graph g = torus(3, 3);
  EXPECT_EQ(g.node_count(), 9u);
  EXPECT_EQ(g.edge_count(), 18u);
  for (NodeId v = 0; v < 9; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Builders, HypercubeStructure) {
  const Graph g = hypercube(3);
  EXPECT_EQ(g.node_count(), 8u);
  EXPECT_EQ(g.edge_count(), 12u);
  for (NodeId v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 3u);
  EXPECT_EQ(diameter(g), 3u);
}

TEST(Builders, BinaryTreeStructure) {
  const Graph g = binary_tree(7);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.degree(6), 1u);
}

TEST(Builders, LollipopStructure) {
  const Graph g = lollipop(4, 3);
  EXPECT_EQ(g.node_count(), 7u);
  EXPECT_EQ(g.edge_count(), 6u + 3u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(6), 1u);  // tail end
}

TEST(Builders, RandomTreeIsTree) {
  Rng rng(101);
  for (std::size_t n : {1u, 2u, 3u, 5u, 17u, 64u}) {
    const Graph g = random_tree(n, rng);
    EXPECT_EQ(g.node_count(), n);
    EXPECT_TRUE(is_tree(g)) << "n=" << n;
  }
}

TEST(Builders, RandomTreesVary) {
  Rng rng(5);
  const Graph a = random_tree(12, rng);
  const Graph b = random_tree(12, rng);
  EXPECT_FALSE(a == b);  // overwhelmingly likely distinct
}

TEST(Builders, RandomConnectedEdgeBudget) {
  Rng rng(7);
  const Graph g = random_connected(20, 15, rng);
  EXPECT_EQ(g.edge_count(), 19u + 15u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(g.validate().empty());
}

TEST(Builders, RandomConnectedClampsToCompleteGraph) {
  Rng rng(7);
  const Graph g = random_connected(5, 1000, rng);
  EXPECT_EQ(g.edge_count(), 10u);  // K_5
}

TEST(Builders, RandomConnectedPPointMasses) {
  Rng rng(9);
  const Graph tree_only = random_connected_p(15, 0.0, rng);
  EXPECT_TRUE(is_tree(tree_only));
  const Graph full = random_connected_p(8, 1.0, rng);
  EXPECT_EQ(full.edge_count(), 28u);  // K_8
}

// ---- Parameterized sweep: every family yields valid connected graphs ----

struct FamilyCase {
  const char* name;
  std::size_t n_expected;
  Graph (*make)();
};

Graph make_path() { return path(9); }
Graph make_cycle() { return cycle(9); }
Graph make_star() { return star(9); }
Graph make_complete() { return complete(9); }
Graph make_bipartite() { return complete_bipartite(4, 5); }
Graph make_grid() { return grid(3, 3); }
Graph make_torus() { return torus(3, 3); }
Graph make_hypercube() { return hypercube(3); }  // n = 8
Graph make_btree() { return binary_tree(9); }
Graph make_lollipop() { return lollipop(5, 4); }

class BuilderFamilyTest : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(BuilderFamilyTest, ValidAndConnected) {
  const Graph g = GetParam().make();
  EXPECT_EQ(g.node_count(), GetParam().n_expected);
  EXPECT_TRUE(g.validate().empty()) << g.validate();
  EXPECT_TRUE(is_connected(g));
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, BuilderFamilyTest,
    ::testing::Values(FamilyCase{"path", 9, make_path},
                      FamilyCase{"cycle", 9, make_cycle},
                      FamilyCase{"star", 9, make_star},
                      FamilyCase{"complete", 9, make_complete},
                      FamilyCase{"bipartite", 9, make_bipartite},
                      FamilyCase{"grid", 9, make_grid},
                      FamilyCase{"torus", 9, make_torus},
                      FamilyCase{"hypercube", 8, make_hypercube},
                      FamilyCase{"btree", 9, make_btree},
                      FamilyCase{"lollipop", 9, make_lollipop}),
    [](const ::testing::TestParamInfo<FamilyCase>& param_info) {
      return param_info.param.name;
    });

// Random families across sizes: validity + connectivity + determinism.
class RandomGraphSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomGraphSweep, ValidConnectedDeterministic) {
  const std::size_t n = GetParam();
  Rng rng1(n), rng2(n);
  const Graph a = random_connected(n, n / 2, rng1);
  const Graph b = random_connected(n, n / 2, rng2);
  EXPECT_TRUE(a.validate().empty());
  EXPECT_TRUE(is_connected(a));
  EXPECT_EQ(a, b);  // same seed, same graph
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomGraphSweep,
                         ::testing::Values(2, 3, 4, 8, 16, 33, 64, 100));

}  // namespace
}  // namespace dyndisp
