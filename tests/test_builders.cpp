// Tests for the graph family builders, including parameterized sweeps over
// sizes checking structural invariants of every family.
#include <gtest/gtest.h>

#include <queue>
#include <set>
#include <utility>
#include <vector>

#include "graph/algorithms.h"
#include "graph/builders.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace dyndisp {
namespace {

using builders::binary_tree;
using builders::complete;
using builders::complete_bipartite;
using builders::cycle;
using builders::grid;
using builders::hypercube;
using builders::lollipop;
using builders::path;
using builders::random_connected;
using builders::random_connected_p;
using builders::random_tree;
using builders::star;
using builders::torus;

TEST(Builders, PathStructure) {
  const Graph g = path(5);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.degree(4), 1u);
  EXPECT_EQ(diameter(g), 4u);
  EXPECT_TRUE(is_tree(g));
}

TEST(Builders, SingleNodePath) {
  const Graph g = path(1);
  EXPECT_EQ(g.node_count(), 1u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Builders, CycleStructure) {
  const Graph g = cycle(6);
  EXPECT_EQ(g.edge_count(), 6u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_EQ(diameter(g), 3u);
}

TEST(Builders, StarStructure) {
  const Graph g = star(7);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  for (NodeId v = 1; v < 7; ++v) EXPECT_EQ(g.degree(v), 1u);
  EXPECT_EQ(diameter(g), 2u);
}

TEST(Builders, CompleteStructure) {
  const Graph g = complete(5);
  EXPECT_EQ(g.edge_count(), 10u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(diameter(g), 1u);
}

TEST(Builders, CompleteBipartiteStructure) {
  const Graph g = complete_bipartite(2, 3);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(4), 2u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(Builders, GridStructure) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.edge_count(), 3u * 3 + 4u * 2);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(5), 4u);   // interior (1,1)
  EXPECT_EQ(diameter(g), 5u);   // (3-1)+(4-1)
}

TEST(Builders, TorusStructure) {
  const Graph g = torus(3, 3);
  EXPECT_EQ(g.node_count(), 9u);
  EXPECT_EQ(g.edge_count(), 18u);
  for (NodeId v = 0; v < 9; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Builders, HypercubeStructure) {
  const Graph g = hypercube(3);
  EXPECT_EQ(g.node_count(), 8u);
  EXPECT_EQ(g.edge_count(), 12u);
  for (NodeId v = 0; v < 8; ++v) EXPECT_EQ(g.degree(v), 3u);
  EXPECT_EQ(diameter(g), 3u);
}

TEST(Builders, BinaryTreeStructure) {
  const Graph g = binary_tree(7);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.degree(6), 1u);
}

TEST(Builders, LollipopStructure) {
  const Graph g = lollipop(4, 3);
  EXPECT_EQ(g.node_count(), 7u);
  EXPECT_EQ(g.edge_count(), 6u + 3u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(6), 1u);  // tail end
}

TEST(Builders, RandomTreeIsTree) {
  Rng rng(101);
  for (std::size_t n : {1u, 2u, 3u, 5u, 17u, 64u}) {
    const Graph g = random_tree(n, rng);
    EXPECT_EQ(g.node_count(), n);
    EXPECT_TRUE(is_tree(g)) << "n=" << n;
  }
}

TEST(Builders, RandomTreesVary) {
  Rng rng(5);
  const Graph a = random_tree(12, rng);
  const Graph b = random_tree(12, rng);
  EXPECT_FALSE(a == b);  // overwhelmingly likely distinct
}

TEST(Builders, RandomConnectedEdgeBudget) {
  Rng rng(7);
  const Graph g = random_connected(20, 15, rng);
  EXPECT_EQ(g.edge_count(), 19u + 15u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(g.validate().empty());
}

TEST(Builders, RandomConnectedClampsToCompleteGraph) {
  Rng rng(7);
  const Graph g = random_connected(5, 1000, rng);
  EXPECT_EQ(g.edge_count(), 10u);  // K_5
}

TEST(Builders, RandomConnectedPPointMasses) {
  Rng rng(9);
  const Graph tree_only = random_connected_p(15, 0.0, rng);
  EXPECT_TRUE(is_tree(tree_only));
  const Graph full = random_connected_p(8, 1.0, rng);
  EXPECT_EQ(full.edge_count(), 28u);  // K_8
}

// ---- Parameterized sweep: every family yields valid connected graphs ----

struct FamilyCase {
  const char* name;
  std::size_t n_expected;
  Graph (*make)();
};

Graph make_path() { return path(9); }
Graph make_cycle() { return cycle(9); }
Graph make_star() { return star(9); }
Graph make_complete() { return complete(9); }
Graph make_bipartite() { return complete_bipartite(4, 5); }
Graph make_grid() { return grid(3, 3); }
Graph make_torus() { return torus(3, 3); }
Graph make_hypercube() { return hypercube(3); }  // n = 8
Graph make_btree() { return binary_tree(9); }
Graph make_lollipop() { return lollipop(5, 4); }

class BuilderFamilyTest : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(BuilderFamilyTest, ValidAndConnected) {
  const Graph g = GetParam().make();
  EXPECT_EQ(g.node_count(), GetParam().n_expected);
  EXPECT_TRUE(g.validate().empty()) << g.validate();
  EXPECT_TRUE(is_connected(g));
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, BuilderFamilyTest,
    ::testing::Values(FamilyCase{"path", 9, make_path},
                      FamilyCase{"cycle", 9, make_cycle},
                      FamilyCase{"star", 9, make_star},
                      FamilyCase{"complete", 9, make_complete},
                      FamilyCase{"bipartite", 9, make_bipartite},
                      FamilyCase{"grid", 9, make_grid},
                      FamilyCase{"torus", 9, make_torus},
                      FamilyCase{"hypercube", 8, make_hypercube},
                      FamilyCase{"btree", 9, make_btree},
                      FamilyCase{"lollipop", 9, make_lollipop}),
    [](const ::testing::TestParamInfo<FamilyCase>& param_info) {
      return param_info.param.name;
    });

// Random families across sizes: validity + connectivity + determinism.
class RandomGraphSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomGraphSweep, ValidConnectedDeterministic) {
  const std::size_t n = GetParam();
  Rng rng1(n), rng2(n);
  const Graph a = random_connected(n, n / 2, rng1);
  const Graph b = random_connected(n, n / 2, rng2);
  EXPECT_TRUE(a.validate().empty());
  EXPECT_TRUE(is_connected(a));
  EXPECT_EQ(a, b);  // same seed, same graph
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomGraphSweep,
                         ::testing::Values(2, 3, 4, 8, 16, 33, 64, 100));

// ---------------------------------------------------------------------------
// CounterRng: the stateless indexed generator behind the flat builders.

TEST(CounterRng, IndexedDrawsAreStatelessAndOrderIndependent) {
  const CounterRng a(42, 7);
  const CounterRng b(42, 7);
  // Same (seed, stream, index) -> same value, regardless of query order.
  EXPECT_EQ(a.at(100), b.at(100));
  EXPECT_EQ(a.at(0), b.at(0));
  const std::uint64_t late = a.at(100);
  (void)a.at(3);
  (void)a.at(99);
  EXPECT_EQ(a.at(100), late);
}

TEST(CounterRng, DistinctSeedsStreamsAndForksDiverge) {
  const CounterRng base(42, 7);
  EXPECT_NE(base.at(5), CounterRng(43, 7).at(5));
  EXPECT_NE(base.at(5), CounterRng(42, 8).at(5));
  EXPECT_NE(base.fork(0).at(5), base.fork(1).at(5));
  EXPECT_EQ(base.fork(3).at(5), base.fork(3).at(5));
}

TEST(CounterRng, BelowStaysInRangeAndLooksUniform) {
  const CounterRng rng(9, 1);
  std::vector<std::size_t> buckets(10, 0);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const std::uint64_t x = rng.below(10, i);
    ASSERT_LT(x, 10u);
    ++buckets[x];
  }
  for (const std::size_t c : buckets) {
    EXPECT_GT(c, 800u);  // expectation 1000; crude 20% uniformity band
    EXPECT_LT(c, 1200u);
  }
}

// ---------------------------------------------------------------------------
// random_connected_counter vs an independently written reference: the
// builder uses a linear smallest-leaf Prufer decode, an open-addressing
// chord table, and fused CSR/port passes; the reference below re-derives the
// same graph from the same CounterRng streams with the textbook structures
// (priority-queue decode as in random_tree, std::set membership, direct
// port placement via from_port_edges). Byte equality of the two pins every
// stage of the flat builder against the simple semantics.

Graph reference_counter_build(std::size_t n, std::size_t extra_edges,
                              std::uint64_t seed, std::uint64_t draw) {
  const CounterRng base(seed, draw);
  const CounterRng prufer_rng = base.fork(0);
  const CounterRng chord_rng = base.fork(1);
  const CounterRng port_rng = base.fork(2);

  // Tree: priority-queue smallest-leaf Prufer decode (random_tree's shape).
  std::vector<std::uint32_t> prufer(n - 2);
  for (std::size_t i = 0; i < n - 2; ++i)
    prufer[i] = static_cast<std::uint32_t>(prufer_rng.below(n, i));
  std::vector<std::size_t> deg(n, 1);
  for (const std::uint32_t x : prufer) ++deg[x];
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<>> leaves;
  for (std::uint32_t v = 0; v < n; ++v)
    if (deg[v] == 1) leaves.push(v);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_list;
  for (const std::uint32_t x : prufer) {
    const std::uint32_t leaf = leaves.top();
    leaves.pop();
    edge_list.emplace_back(leaf, x);
    if (--deg[x] == 1) leaves.push(x);
  }
  const std::uint32_t a = leaves.top();
  leaves.pop();
  edge_list.emplace_back(a, leaves.top());

  // Chords: identical draw schedule (two indexed draws per attempt, counted
  // whether accepted or not), std::set membership.
  auto key = [](std::uint32_t u, std::uint32_t v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  };
  std::set<std::uint64_t> seen;
  for (const auto& [u, v] : edge_list) seen.insert(key(u, v));
  std::size_t budget =
      std::min(extra_edges, n * (n - 1) / 2 - (n - 1));
  std::size_t attempts = 0;
  const std::size_t attempt_cap = 50 * (budget + 1) + 100;
  std::uint64_t t = 0;
  while (budget > 0 && attempts++ < attempt_cap) {
    const auto u = static_cast<std::uint32_t>(chord_rng.below(n, 2 * t));
    const auto v = static_cast<std::uint32_t>(chord_rng.below(n, 2 * t + 1));
    ++t;
    if (u == v || !seen.insert(key(u, v)).second) continue;
    edge_list.emplace_back(u, v);
    --budget;
  }
  for (std::uint32_t u = 0; u < n && budget > 0; ++u)
    for (std::uint32_t v = u + 1; v < n && budget > 0; ++v)
      if (seen.insert(key(u, v)).second) {
        edge_list.emplace_back(u, v);
        --budget;
      }

  // Ports: per node, slots in edge-id order carry a Fisher-Yates permutation
  // of 1..degree drawn from the node's forked stream.
  const std::size_t m = edge_list.size();
  std::vector<std::vector<std::uint32_t>> slots(n);  // node -> edge ids
  for (std::uint32_t e = 0; e < m; ++e) {
    slots[edge_list[e].first].push_back(e);
    slots[edge_list[e].second].push_back(e);
  }
  std::vector<Port> pu(m), pv(m);
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::size_t d = slots[v].size();
    std::vector<Port> seg(d);
    for (std::size_t i = 0; i < d; ++i) seg[i] = static_cast<Port>(i + 1);
    const CounterRng node = port_rng.fork(v);
    for (std::size_t j = d; j > 1; --j)
      std::swap(seg[j - 1], seg[node.below(j, j)]);
    for (std::size_t i = 0; i < d; ++i) {
      const std::uint32_t e = slots[v][i];
      if (edge_list[e].first == v)
        pu[e] = seg[i];
      else
        pv[e] = seg[i];
    }
  }
  std::vector<Graph::Edge> port_edges(m);
  for (std::uint32_t e = 0; e < m; ++e)
    port_edges[e] = Graph::Edge{edge_list[e].first, edge_list[e].second,
                                pu[e], pv[e]};
  return Graph::from_port_edges(n, port_edges);
}

class CounterBuilderDifferential
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CounterBuilderDifferential, MatchesReferenceByteForByte) {
  const std::size_t n = GetParam();
  builders::CounterBuildScratch scratch;
  for (const std::uint64_t seed : {1ull, 77ull}) {
    for (const std::uint64_t draw : {0ull, 3ull}) {
      Graph out;
      builders::random_connected_counter(n, n / 3, seed, draw,
                                         /*pool=*/nullptr, scratch, out);
      ASSERT_TRUE(out.validate().empty()) << "n=" << n << " seed=" << seed;
      EXPECT_TRUE(is_connected(out));
      const Graph ref = reference_counter_build(n, n / 3, seed, draw);
      ASSERT_EQ(out.fingerprint(), ref.fingerprint())
          << "n=" << n << " seed=" << seed << " draw=" << draw;
      ASSERT_TRUE(out == ref)
          << "n=" << n << " seed=" << seed << " draw=" << draw;
    }
  }
}

// Sizes bracket both thresholds: the adversaries' legacy/counter cutoff
// (kCounterBuilderMinNodes = 128 -- the builder itself works below it) and
// the parallel_for serial cutoff (192), plus small/degenerate shapes.
INSTANTIATE_TEST_SUITE_P(Sizes, CounterBuilderDifferential,
                         ::testing::Values(3, 4, 9, 40, 130, 200, 450));

TEST(CounterBuilder, PoolAndSerialOutputsAreByteIdentical) {
  ThreadPool pool(3);
  builders::CounterBuildScratch s1, s2;
  for (const std::size_t n : {150u, 450u}) {  // straddles the 192 cutoff
    Graph serial, threaded;
    builders::random_connected_counter(n, n / 3, 11, 2, nullptr, s1, serial);
    builders::random_connected_counter(n, n / 3, 11, 2, &pool, s2, threaded);
    ASSERT_TRUE(serial == threaded) << "n=" << n;
    ASSERT_EQ(serial.fingerprint(), threaded.fingerprint()) << "n=" << n;
  }
}

TEST(CounterBuilder, ScratchReuseDoesNotLeakAcrossBuilds) {
  // One scratch across different (n, draw) pairs must give the same graphs
  // as fresh scratch per build -- the recycling contract of the adversaries.
  builders::CounterBuildScratch recycled;
  for (const std::size_t n : {300u, 140u, 450u}) {
    for (const std::uint64_t draw : {0ull, 1ull}) {
      Graph reused, fresh_out;
      builders::random_connected_counter(n, n / 3, 5, draw, nullptr,
                                         recycled, reused);
      builders::CounterBuildScratch fresh;
      builders::random_connected_counter(n, n / 3, 5, draw, nullptr, fresh,
                                         fresh_out);
      ASSERT_TRUE(reused == fresh_out) << "n=" << n << " draw=" << draw;
    }
  }
}

}  // namespace
}  // namespace dyndisp
