// Tests for the compute-phase thread pool and the determinism contract of
// EngineOptions::threads: the same run must produce a bitwise-identical
// RunResult at any thread count, for every Table-I model row, including
// probe-driven trap adversaries. Also pins the single-assembly invariant of
// the round pipeline (packets built exactly once per executed round).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "baselines/blind_walk.h"
#include "baselines/dfs_dispersion.h"
#include "baselines/greedy_local.h"
#include "core/dispersion.h"
#include "dynamic/path_trap_adversary.h"
#include "dynamic/random_adversary.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "sim/sensing.h"
#include "util/parallel.h"

namespace dyndisp {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.for_each(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, HandlesCountSmallerThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.for_each(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, CountZeroRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.for_each(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<std::atomic<int>> hits(10);
  pool.for_each(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ReusableAcrossDispatches) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.for_each(100, [&](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(sum.load(), 50L * (99 * 100 / 2));
}

TEST(ThreadPool, RethrowsLowestFaultingIndex) {
  // Indices 5 (caller's chunk) and 700 (a worker's chunk) both throw; the
  // sequential loop would have surfaced index 5 first, so for_each must too.
  ThreadPool pool(4);
  try {
    pool.for_each(1000, [](std::size_t i) {
      if (i == 5 || i == 700) throw std::runtime_error("idx " + std::to_string(i));
    });
    FAIL() << "expected for_each to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "idx 5");
  }
}

TEST(ThreadPool, PropagatesWorkerOnlyException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.for_each(1000,
                             [](std::size_t i) {
                               if (i == 900) throw std::runtime_error("boom");
                             }),
               std::runtime_error);
}

TEST(ThreadPool, SurvivesAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.for_each(100,
                             [](std::size_t i) {
                               if (i == 50) throw std::runtime_error("once");
                             }),
               std::runtime_error);
  std::atomic<int> calls{0};
  pool.for_each(100, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 100);
}

TEST(ParallelFor, NullPoolRunsSequentiallyInOrder) {
  std::vector<std::size_t> order;
  parallel_for(nullptr, 20, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(20);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ParallelFor, SerialBelowCutoffFansOutAtCutoff) {
  // The small-problem guard: one item below the cutoff the whole loop runs
  // on the calling thread; at the cutoff it fans out over the pool. The
  // decision is a pure function of count, so both observations are exact,
  // not flaky.
  ThreadPool pool(4);
  const auto distinct_threads = [&](std::size_t count) {
    std::mutex mu;
    std::set<std::thread::id> ids;
    parallel_for(&pool, count, [&](std::size_t) {
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
    return ids.size();
  };
  EXPECT_EQ(distinct_threads(kParallelForSerialCutoff - 1), 1u);
  EXPECT_GT(distinct_threads(kParallelForSerialCutoff), 1u);
}

TEST(ParallelFor, ForEachIgnoresTheCutoff) {
  // Callers that want the fan-out regardless of size use the pool directly.
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  pool.for_each(kParallelForSerialCutoff / 2, [&](std::size_t) {
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_GT(ids.size(), 1u);
}

// ---- Engine determinism across thread counts ----

void expect_identical(const RunResult& a, const RunResult& b,
                      const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.dispersed, b.dispersed);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_moves, b.total_moves);
  EXPECT_EQ(a.max_memory_bits, b.max_memory_bits);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packet_bits_sent, b.packet_bits_sent);
  EXPECT_EQ(a.stalled_rounds, b.stalled_rounds);
  EXPECT_EQ(a.max_occupied, b.max_occupied);
  EXPECT_EQ(a.explored_nodes, b.explored_nodes);
  EXPECT_EQ(a.exploration_round, b.exploration_round);
  EXPECT_TRUE(a.final_config == b.final_config);
}

struct ModelRow {
  const char* label;
  CommModel comm;
  bool neighborhood;
  AlgorithmFactory factory;
};

RunResult run_row(const ModelRow& row, std::size_t threads) {
  const std::size_t n = 36, k = 24;
  RandomAdversary adv(n, n / 3, 7);
  EngineOptions opt;
  opt.comm = row.comm;
  opt.neighborhood_knowledge = row.neighborhood;
  opt.threads = threads;
  opt.max_rounds = 200;
  Engine engine(adv, placement::rooted(n, k), row.factory, opt);
  return engine.run();
}

TEST(ThreadDeterminism, AllTableOneModelRows) {
  // One algorithm per Table-I model row, each under its native model; the
  // memoized planner additionally exercises the PlanCache mutex from many
  // threads at once.
  const ModelRow rows[] = {
      {"global+nbhd (Algorithm 4, memoized)", CommModel::kGlobal, true,
       core::dispersion_factory_memoized()},
      {"global-only (blind walk)", CommModel::kGlobal, false,
       baselines::blind_walk_factory()},
      {"local-only (DFS dispersion)", CommModel::kLocal, false,
       baselines::dfs_dispersion_factory()},
      {"local+nbhd (greedy)", CommModel::kLocal, true,
       baselines::greedy_local_factory()},
  };
  for (const ModelRow& row : rows) {
    const RunResult serial = run_row(row, 1);
    expect_identical(serial, run_row(row, 2), row.label);
    expect_identical(serial, run_row(row, 8), row.label);
  }
}

TEST(ThreadDeterminism, StraddlesTheSerialCutoff) {
  // The engine's compute phase dispatches one work item per robot, so k
  // relative to kParallelForSerialCutoff decides whether a threaded run
  // actually fans out or silently takes the serial path. Pin bitwise
  // identity on BOTH sides of that edge: k just below the cutoff (serial
  // even with a pool) and k just above it (a real fan-out).
  auto run_sized = [](std::size_t k, std::size_t threads) {
    const std::size_t n = 2 * k;
    RandomAdversary adv(n, n / 3, 13);
    EngineOptions opt;
    opt.threads = threads;
    opt.max_rounds = 4 * k;
    Engine engine(adv, placement::rooted(n, k),
                  core::dispersion_factory_memoized(), opt);
    return engine.run();
  };
  for (const std::size_t k :
       {kParallelForSerialCutoff - 8, kParallelForSerialCutoff + 8}) {
    const RunResult serial = run_sized(k, 1);
    expect_identical(serial, run_sized(k, 4),
                     k < kParallelForSerialCutoff ? "below cutoff"
                                                  : "above cutoff");
  }
}

TEST(ThreadDeterminism, ProbeDrivenTrapAdversary) {
  // The path trap dry-runs cloned robots against candidate graphs through
  // Engine::probe_plan, which shares the round's state snapshots and the
  // pool; its choices (and hence the whole run) must not depend on threads.
  auto run_trap = [](std::size_t threads) {
    const std::size_t n = 12, k = 6;
    PathTrapAdversary adv(n);
    EngineOptions opt;
    opt.comm = CommModel::kLocal;
    opt.neighborhood_knowledge = true;
    opt.threads = threads;
    opt.max_rounds = 120;
    Engine engine(adv, placement::figure1(n, k),
                  baselines::greedy_local_factory(), opt);
    return engine.run();
  };
  const RunResult serial = run_trap(1);
  EXPECT_FALSE(serial.dispersed);  // the trap must still work
  expect_identical(serial, run_trap(2), "path trap, 2 threads");
  expect_identical(serial, run_trap(8), "path trap, 8 threads");
}

// ---- Single-assembly invariant ----

TEST(RoundPipeline, PacketsAssembledExactlyOncePerRound) {
  // RandomAdversary never probes, so the only assemblies are the per-round
  // broadcasts: the global counter must advance by exactly r.rounds. The
  // delta-aware loop replaces some assemblies with reuse/delta rounds, so
  // the exactly-once pin is stated against the loop it describes: cache off.
  const std::size_t n = 36, k = 24;
  RandomAdversary adv(n, n / 3, 7);
  EngineOptions opt;
  opt.max_rounds = 200;
  opt.structure_cache = false;
  Engine engine(adv, placement::rooted(n, k),
                core::dispersion_factory_memoized(), opt);
  const std::size_t before = packet_assembly_count();
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  EXPECT_EQ(packet_assembly_count() - before, r.rounds);
}

}  // namespace
}  // namespace dyndisp
