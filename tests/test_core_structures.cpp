// Tests for Algorithms 1-3 (components, spanning trees, disjoint paths) on a
// hand-computed worked example plus property sweeps over random rounds.
//
// Worked example (8 nodes; ports assigned by insertion order):
//   edges: (0,1) (1,2) (0,2) (2,3) (3,4) (4,5) (5,6) (6,7)
//   robots: {1,4}@0 {2}@1 {3}@2 {5,6}@5 {7}@6 ; nodes 3,4,7 empty
// Two components: A = occupied {0,1,2} (names 1,2,3), B = {5,6} (names 5,7),
// at graph distance >= 2 (Observation 2).
#include <gtest/gtest.h>

#include <set>

#include "core/component.h"
#include "core/disjoint_paths.h"
#include "core/spanning_tree.h"
#include "graph/builders.h"
#include "robots/configuration.h"
#include "robots/placement.h"
#include "sim/sensing.h"
#include "util/rng.h"

namespace dyndisp {
namespace {

using core::build_all_components;
using core::build_component;
using core::build_spanning_tree;
using core::ComponentGraph;
using core::disjoint_paths;
using core::leaf_node_set;
using core::paths_disjoint;
using core::RootPath;
using core::SpanningTree;

struct Worked {
  Graph g = Graph::from_edges(
      8, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}});
  Configuration conf{8, {0, 1, 2, 0, 5, 5, 6}};
  std::vector<InfoPacket> packets = make_all_packets(g, conf, true);
};

TEST(Component, WorkedExampleComponentA) {
  Worked w;
  const ComponentGraph cg = build_component(w.packets, 1);
  ASSERT_EQ(cg.size(), 3u);
  EXPECT_TRUE(cg.contains(1));
  EXPECT_TRUE(cg.contains(2));
  EXPECT_TRUE(cg.contains(3));
  EXPECT_FALSE(cg.contains(5));

  const auto* n1 = cg.find(1);
  ASSERT_NE(n1, nullptr);
  EXPECT_EQ(n1->count, 2u);
  EXPECT_EQ(n1->robots, (std::vector<RobotId>{1, 4}));
  EXPECT_EQ(n1->degree, 2u);
  EXPECT_EQ(n1->edges,
            (std::vector<std::pair<Port, RobotId>>{{1, 2}, {2, 3}}));
  EXPECT_FALSE(n1->has_empty_neighbor());

  const auto* n3 = cg.find(3);
  ASSERT_NE(n3, nullptr);
  EXPECT_EQ(n3->degree, 3u);
  EXPECT_TRUE(n3->has_empty_neighbor());
}

TEST(Component, WorkedExampleComponentB) {
  Worked w;
  const ComponentGraph cg = build_component(w.packets, 7);
  ASSERT_EQ(cg.size(), 2u);
  EXPECT_TRUE(cg.contains(5));
  EXPECT_TRUE(cg.contains(7));
  EXPECT_EQ(cg.root_name(), 5u);
  EXPECT_EQ(cg.robot_count(), 3u);
}

TEST(Component, SameComponentFromAnyStart) {
  // Lemma 1: robots on different nodes of a component build the same CG.
  Worked w;
  const ComponentGraph a = build_component(w.packets, 1);
  const ComponentGraph b = build_component(w.packets, 2);
  const ComponentGraph c = build_component(w.packets, 3);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.nodes()[i].name, b.nodes()[i].name);
    EXPECT_EQ(a.nodes()[i].edges, b.nodes()[i].edges);
    EXPECT_EQ(a.nodes()[i].edges, c.nodes()[i].edges);
    EXPECT_EQ(a.nodes()[i].robots, b.nodes()[i].robots);
  }
}

TEST(Component, BuildAllFindsBothComponents) {
  Worked w;
  const auto components = build_all_components(w.packets);
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0].size(), 3u);
  EXPECT_EQ(components[1].size(), 2u);
}

TEST(Component, UniqueNames) {
  // Observation 1: every node of a component has a unique name.
  Worked w;
  for (const auto& cg : build_all_components(w.packets)) {
    std::set<RobotId> names;
    for (const auto& n : cg.nodes()) names.insert(n.name);
    EXPECT_EQ(names.size(), cg.size());
  }
}

TEST(Component, RootIsSmallestMultiplicityNode) {
  Worked w;
  const ComponentGraph a = build_component(w.packets, 1);
  EXPECT_EQ(a.root_name(), 1u);
  EXPECT_TRUE(a.has_multiplicity());
}

TEST(Component, NoMultiplicityMeansNoRoot) {
  const Graph g = builders::path(4);
  const Configuration conf(4, {0, 1, 2});
  const auto packets = make_all_packets(g, conf, true);
  const ComponentGraph cg = build_component(packets, 1);
  EXPECT_FALSE(cg.has_multiplicity());
  EXPECT_EQ(cg.root_name(), kNoRobot);
}

TEST(SpanningTree, WorkedExampleTreeA) {
  Worked w;
  const ComponentGraph cg = build_component(w.packets, 1);
  const SpanningTree st = build_spanning_tree(cg);
  EXPECT_EQ(st.root(), 1u);
  ASSERT_EQ(st.size(), 3u);

  // DFS explores smallest ports first: 1 -> 2 (port 1), then 2 -> 3.
  const auto* t2 = st.find(2);
  ASSERT_NE(t2, nullptr);
  EXPECT_EQ(t2->parent, 1u);
  EXPECT_EQ(t2->port_from_parent, 1u);
  EXPECT_EQ(t2->port_to_parent, 1u);
  EXPECT_EQ(t2->depth, 1u);

  const auto* t3 = st.find(3);
  ASSERT_NE(t3, nullptr);
  EXPECT_EQ(t3->parent, 2u);
  EXPECT_EQ(t3->port_from_parent, 2u);
  EXPECT_EQ(t3->port_to_parent, 1u);
  EXPECT_EQ(t3->depth, 2u);

  const auto* t1 = st.find(1);
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(t1->parent, kNoRobot);
  ASSERT_EQ(t1->children.size(), 1u);
  EXPECT_EQ(t1->children[0].second, 2u);
}

TEST(SpanningTree, RootPathsRootFirst) {
  Worked w;
  const ComponentGraph cg = build_component(w.packets, 1);
  const SpanningTree st = build_spanning_tree(cg);
  EXPECT_EQ(st.root_path(3), (RootPath{1, 2, 3}));
  EXPECT_EQ(st.root_path(1), (RootPath{1}));
}

TEST(SpanningTree, SameTreeFromAnyRobot) {
  // Lemma 2 via determinism: identical CGs yield identical trees.
  Worked w;
  const SpanningTree a = build_spanning_tree(build_component(w.packets, 2));
  const SpanningTree b = build_spanning_tree(build_component(w.packets, 3));
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.root(), b.root());
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    EXPECT_EQ(a.nodes()[i].name, b.nodes()[i].name);
    EXPECT_EQ(a.nodes()[i].parent, b.nodes()[i].parent);
    EXPECT_EQ(a.nodes()[i].port_to_parent, b.nodes()[i].port_to_parent);
    EXPECT_EQ(a.nodes()[i].children, b.nodes()[i].children);
  }
}

TEST(DisjointPaths, WorkedExampleComponentA) {
  Worked w;
  const ComponentGraph cg = build_component(w.packets, 1);
  const SpanningTree st = build_spanning_tree(cg);
  EXPECT_EQ(leaf_node_set(cg, st), (std::vector<RobotId>{3}));
  const auto paths = disjoint_paths(cg, st);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (RootPath{1, 2, 3}));
}

TEST(DisjointPaths, WorkedExampleComponentB) {
  Worked w;
  const ComponentGraph cg = build_component(w.packets, 5);
  const SpanningTree st = build_spanning_tree(cg);
  // Both nodes border empty nodes; the root's trivial path comes first.
  EXPECT_EQ(leaf_node_set(cg, st), (std::vector<RobotId>{5, 7}));
  const auto paths = disjoint_paths(cg, st);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], (RootPath{5}));
  EXPECT_EQ(paths[1], (RootPath{5, 7}));
}

TEST(DisjointPaths, PairwiseDisjointnessHelper) {
  EXPECT_TRUE(paths_disjoint({1, 2, 3}, {1, 4, 5}));
  EXPECT_FALSE(paths_disjoint({1, 2, 3}, {1, 3}));
  EXPECT_TRUE(paths_disjoint({1}, {1, 2}));  // trivial path conflicts nothing
}

// ---- Property sweep: random rounds, all structural lemmas ----

class CoreStructureSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoreStructureSweep, LemmasHoldOnRandomRounds) {
  Rng rng(GetParam());
  const std::size_t n = 3 + rng.below(20);
  const std::size_t k = 2 + rng.below(n - 1);
  const Graph g = builders::random_connected(n, rng.below(n), rng);
  const Configuration conf = placement::uniform_random(n, k, rng);
  const auto packets = make_all_packets(g, conf, true);
  const auto occ = conf.occupancy();

  const auto components = build_all_components(packets);

  // Every occupied node appears in exactly one component.
  std::set<RobotId> all_names;
  std::size_t total_nodes = 0;
  for (const auto& cg : components) {
    total_nodes += cg.size();
    for (const auto& node : cg.nodes()) all_names.insert(node.name);
  }
  EXPECT_EQ(total_nodes, conf.occupied_count());
  EXPECT_EQ(all_names.size(), total_nodes);

  for (const auto& cg : components) {
    // Lemma 1: every robot in the component reconstructs it identically.
    for (const auto& node : cg.nodes()) {
      const ComponentGraph rebuilt = build_component(packets, node.name);
      ASSERT_EQ(rebuilt.size(), cg.size());
      for (std::size_t i = 0; i < cg.size(); ++i) {
        EXPECT_EQ(rebuilt.nodes()[i].name, cg.nodes()[i].name);
        EXPECT_EQ(rebuilt.nodes()[i].edges, cg.nodes()[i].edges);
      }
    }
    if (!cg.has_multiplicity()) continue;

    const SpanningTree st = build_spanning_tree(cg);
    // Observation 3: the tree spans the component with a distinct root.
    EXPECT_EQ(st.size(), cg.size());
    const auto* root_cn = cg.find(st.root());
    ASSERT_NE(root_cn, nullptr);
    EXPECT_GE(root_cn->count, 2u);

    // Tree edges must be component edges.
    for (const auto& tn : st.nodes()) {
      if (tn.parent == kNoRobot) continue;
      const auto* cn = cg.find(tn.name);
      ASSERT_NE(cn, nullptr);
      bool found = false;
      for (const auto& [port, nb] : cn->edges)
        found |= (nb == tn.parent && port == tn.port_to_parent);
      EXPECT_TRUE(found) << "tree edge missing from component";
    }

    const auto paths = disjoint_paths(cg, st);
    // Lemma 3: at least one path.
    EXPECT_GE(paths.size(), 1u);
    std::set<RobotId> used;
    for (const auto& path : paths) {
      ASSERT_FALSE(path.empty());
      // All paths start at the root.
      EXPECT_EQ(path.front(), st.root());
      // Lemma 5: the path end has an empty neighbor.
      const auto* end_cn = cg.find(path.back());
      ASSERT_NE(end_cn, nullptr);
      EXPECT_TRUE(end_cn->has_empty_neighbor());
      // Observation 4: non-root nodes belong to at most one path.
      for (std::size_t i = 1; i < path.size(); ++i) {
        EXPECT_TRUE(used.insert(path[i]).second)
            << "node " << path[i] << " on two root paths";
      }
    }
  }

  // Observation 2: nodes of different components are >= 2 hops apart in G.
  if (components.size() >= 2) {
    const auto dist_ok = [&](NodeId a, NodeId b) {
      if (g.has_edge(a, b)) return false;
      return true;
    };
    // Map names back to nodes via smallest robot position.
    for (std::size_t i = 0; i < components.size(); ++i) {
      for (std::size_t j = i + 1; j < components.size(); ++j) {
        for (const auto& na : components[i].nodes()) {
          for (const auto& nb : components[j].nodes()) {
            EXPECT_TRUE(dist_ok(conf.position(na.name), conf.position(nb.name)))
                << "components " << i << "," << j << " are adjacent";
          }
        }
      }
    }
  }
  (void)occ;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoreStructureSweep,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace dyndisp
