// Tests reproducing the impossibility results (Theorems 1 and 2): the trap
// adversaries contain every baseline that lacks the respective capability,
// for a horizon far exceeding what a correct algorithm would need, while
// Algorithm 4 (which has both capabilities) escapes the clique trap.
#include <gtest/gtest.h>

#include "baselines/blind_walk.h"
#include "baselines/dfs_dispersion.h"
#include "baselines/greedy_local.h"
#include "baselines/random_walk.h"
#include "core/dispersion.h"
#include "dynamic/clique_trap_adversary.h"
#include "dynamic/path_trap_adversary.h"
#include "dynamic/static_adversary.h"
#include "graph/builders.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace dyndisp {
namespace {

constexpr Round kHorizon = 400;  // >> k for every instance below

EngineOptions local_with_knowledge() {
  EngineOptions opt;
  opt.comm = CommModel::kLocal;
  opt.neighborhood_knowledge = true;
  opt.max_rounds = kHorizon;
  opt.record_progress = true;
  opt.allow_model_mismatch = true;  // baselines run outside their comfort zone
  return opt;
}

EngineOptions global_without_knowledge() {
  EngineOptions opt;
  opt.comm = CommModel::kGlobal;
  opt.neighborhood_knowledge = false;
  opt.max_rounds = kHorizon;
  opt.record_progress = true;
  opt.allow_model_mismatch = true;
  return opt;
}

// ---- Theorem 1: local communication + 1-neighborhood knowledge ----

TEST(Theorem1, PathTrapContainsGreedyFromFigure1) {
  const std::size_t n = 12, k = 6;
  PathTrapAdversary adv(n);
  Engine engine(adv, placement::figure1(n, k),
                baselines::greedy_local_factory(), local_with_knowledge());
  const RunResult r = engine.run();
  EXPECT_FALSE(r.dispersed);
  EXPECT_LT(r.max_occupied, k);  // never reached k occupied nodes
  EXPECT_EQ(adv.failures(), 0u);
}

TEST(Theorem1, PathTrapContainsLocalDfs) {
  const std::size_t n = 12, k = 6;
  PathTrapAdversary adv(n);
  Engine engine(adv, placement::figure1(n, k),
                baselines::dfs_dispersion_factory(), local_with_knowledge());
  const RunResult r = engine.run();
  EXPECT_FALSE(r.dispersed);
  EXPECT_LT(r.max_occupied, k);
}

TEST(Theorem1, PathTrapContainsRandomWalk) {
  // The Theorem 3 remark: the adversary arguments also defeat randomized
  // strategies (the walk is deterministic given its seed, which the
  // adversary -- knowing "the algorithm and the states" -- can predict).
  const std::size_t n = 12, k = 6;
  PathTrapAdversary adv(n);
  Engine engine(adv, placement::figure1(n, k),
                baselines::random_walk_factory(1234),
                local_with_knowledge());
  const RunResult r = engine.run();
  EXPECT_FALSE(r.dispersed);
  EXPECT_LT(r.max_occupied, k);
}

TEST(Theorem1, PathTrapContainsLargerInstances) {
  for (const std::size_t k : {5u, 8u, 10u}) {
    const std::size_t n = k + 6;
    PathTrapAdversary adv(n);
    Engine engine(adv, placement::figure1(n, k),
                  baselines::greedy_local_factory(), local_with_knowledge());
    const RunResult r = engine.run();
    SCOPED_TRACE("k=" + std::to_string(k));
    EXPECT_FALSE(r.dispersed);
    EXPECT_LT(r.max_occupied, k);
  }
}

TEST(Theorem1, ContrastSameAlgorithmDispersesWithoutTheTrap) {
  // Sanity check that the containment is the trap's doing: greedy solves
  // the star instantly when the adversary is benign.
  // greedy on a static star: surplus robots see empty leaves and go.
  const std::size_t n = 8, k = 4;
  StaticAdversary adv(builders::star(n));
  Engine engine(adv, placement::rooted(n, k),
                baselines::greedy_local_factory(), local_with_knowledge());
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  EXPECT_LE(r.rounds, 2u);
}

// ---- Theorem 2: global communication without 1-neighborhood knowledge ----

Configuration theorem2_start(std::size_t n, std::size_t k, std::uint64_t seed) {
  // The proof's configuration: k robots on k-1 nodes (one doubled).
  Rng rng(seed);
  return placement::grouped(n, k, k - 1, rng);
}

TEST(Theorem2, CliqueTrapContainsBlindWalk) {
  const std::size_t n = 14, k = 8;
  CliqueTrapAdversary adv(n);
  Engine engine(adv, theorem2_start(n, k, 3), baselines::blind_walk_factory(),
                global_without_knowledge());
  const RunResult r = engine.run();
  EXPECT_FALSE(r.dispersed);
  EXPECT_LT(r.max_occupied, k);
  EXPECT_EQ(adv.failures(), 0u);
  EXPECT_EQ(adv.degenerate_rounds(), 0u);
}

TEST(Theorem2, CliqueTrapContainsRandomWalkWithoutKnowledge) {
  const std::size_t n = 14, k = 8;
  CliqueTrapAdversary adv(n);
  Engine engine(adv, theorem2_start(n, k, 5),
                baselines::random_walk_factory(42),
                global_without_knowledge());
  const RunResult r = engine.run();
  EXPECT_FALSE(r.dispersed);
  EXPECT_LT(r.max_occupied, k);
  EXPECT_EQ(adv.failures(), 0u);
}

TEST(Theorem2, CliqueTrapAcrossSizes) {
  for (const std::size_t k : {6u, 10u, 14u}) {
    const std::size_t n = k + 8;
    CliqueTrapAdversary adv(n);
    Engine engine(adv, theorem2_start(n, k, k), baselines::blind_walk_factory(),
                  global_without_knowledge());
    const RunResult r = engine.run();
    SCOPED_TRACE("k=" + std::to_string(k));
    EXPECT_FALSE(r.dispersed);
    EXPECT_LT(r.max_occupied, k);
    EXPECT_EQ(adv.failures(), 0u);
  }
}

TEST(Theorem2, AlgorithmFourEscapesTheCliqueTrap) {
  // With 1-neighborhood knowledge the trap has no power: robots SEE which
  // ports lead to empty nodes. The failures() counter must record the
  // escape rounds, and dispersion completes within Theorem 4's bound.
  const std::size_t n = 14, k = 8;
  CliqueTrapAdversary adv(n);
  EngineOptions opt;
  opt.max_rounds = kHorizon;
  opt.record_progress = true;
  Engine engine(adv, theorem2_start(n, k, 7), core::dispersion_factory(), opt);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  EXPECT_LE(r.rounds, k);
  EXPECT_GE(adv.failures(), 1u);
}

TEST(Theorem2, BlindWalkDispersesOnBenignStaticGraph) {
  // Control: the blind walk does disperse when no adversary interferes.
  auto adv = StaticAdversary(builders::complete(10));
  Engine engine(adv, placement::rooted(10, 5), baselines::blind_walk_factory(),
                global_without_knowledge());
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
}

}  // namespace
}  // namespace dyndisp
