// Unit tests for the port-labeled anonymous graph.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/graph.h"
#include "util/rng.h"

namespace dyndisp {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
  EXPECT_TRUE(g.validate().empty());
}

TEST(Graph, AddEdgeAssignsSequentialPorts) {
  Graph g(4);
  const auto [p01u, p01v] = g.add_edge(0, 1);
  EXPECT_EQ(p01u, 1u);
  EXPECT_EQ(p01v, 1u);
  const auto [p02u, p02v] = g.add_edge(0, 2);
  EXPECT_EQ(p02u, 2u);  // second edge at node 0
  EXPECT_EQ(p02v, 1u);  // first edge at node 2
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Graph, ReversePortsConsistent) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  for (NodeId v = 0; v < 3; ++v) {
    for (Port p = 1; p <= g.degree(v); ++p) {
      const HalfEdge& he = g.half_edge(v, p);
      EXPECT_EQ(g.half_edge(he.to, he.reverse_port).to, v);
      EXPECT_EQ(g.half_edge(he.to, he.reverse_port).reverse_port, p);
    }
  }
  EXPECT_TRUE(g.validate().empty());
}

TEST(Graph, HasEdgeAndPortTo) {
  Graph g(4);
  g.add_edge(2, 3);
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_TRUE(g.has_edge(3, 2));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.port_to(2, 3), 1u);
  EXPECT_EQ(g.port_to(0, 1), kInvalidPort);
}

TEST(Graph, NeighborResolvesPort) {
  Graph g(3);
  g.add_edge(0, 2);
  g.add_edge(0, 1);
  EXPECT_EQ(g.neighbor(0, 1), 2u);
  EXPECT_EQ(g.neighbor(0, 2), 1u);
}

TEST(Graph, RemoveEdgeCompactsPorts) {
  Graph g(4);
  g.add_edge(0, 1);  // port 1 at 0
  g.add_edge(0, 2);  // port 2 at 0
  g.add_edge(0, 3);  // port 3 at 0
  ASSERT_TRUE(g.remove_edge(0, 2));
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
  // Former port 3 (to node 3) slid down to port 2.
  EXPECT_EQ(g.neighbor(0, 1), 1u);
  EXPECT_EQ(g.neighbor(0, 2), 3u);
  EXPECT_TRUE(g.validate().empty());
}

TEST(Graph, RemoveMissingEdgeReturnsFalse) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(g.remove_edge(1, 2));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, RemoveEdgeFixesReversePortsAtFarEndpoints) {
  // Build a node with several edges, remove a middle one, and check every
  // remaining half-edge still round-trips.
  Graph g(6);
  for (NodeId v = 1; v < 6; ++v) g.add_edge(0, v);
  g.add_edge(1, 2);
  ASSERT_TRUE(g.remove_edge(0, 3));
  EXPECT_TRUE(g.validate().empty());
}

TEST(Graph, PermutePortsKeepsValidity) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.permute_ports(0, {2, 0, 1});  // old port1 -> new port3, etc.
  EXPECT_EQ(g.neighbor(0, 3), 1u);
  EXPECT_EQ(g.neighbor(0, 1), 2u);
  EXPECT_EQ(g.neighbor(0, 2), 3u);
  EXPECT_TRUE(g.validate().empty());
}

TEST(Graph, ShufflePortsPreservesTopology) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 0);
  Rng rng(99);
  g.shuffle_ports(rng);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(5, 0));
}

TEST(Graph, EdgesListsEachEdgeOnce) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const auto edges = g.edges();
  EXPECT_EQ(edges.size(), 4u);
  for (const auto& e : edges) {
    EXPECT_LT(e.u, e.v);
    EXPECT_EQ(g.neighbor(e.u, e.port_u), e.v);
    EXPECT_EQ(g.neighbor(e.v, e.port_v), e.u);
  }
}

TEST(Graph, RewireEdgePreservesPortLayout) {
  // Clique on {0,1,2,3}; nodes 4,5 isolated targets.
  Graph g(6);
  for (NodeId u = 0; u < 4; ++u)
    for (NodeId v = u + 1; v < 4; ++v) g.add_edge(u, v);
  const Port p01_at0 = g.port_to(0, 1);
  const Port p01_at1 = g.port_to(1, 0);
  const std::size_t deg0 = g.degree(0), deg1 = g.degree(1);

  g.rewire_edge(0, 1, 4, 5);

  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.degree(0), deg0);  // same degree: one edge swapped in place
  EXPECT_EQ(g.degree(1), deg1);
  EXPECT_EQ(g.neighbor(0, p01_at0), 4u);  // the exact port now leads to 4
  EXPECT_EQ(g.neighbor(1, p01_at1), 5u);
  // Other ports at 0 and 1 untouched.
  for (Port p = 1; p <= g.degree(0); ++p) {
    if (p != p01_at0) {
      EXPECT_LT(g.neighbor(0, p), 4u);
    }
  }
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(g.edge_count(), 7u);  // 6 - 1 + 2
}

TEST(Graph, RewireEdgeToSameTarget) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.rewire_edge(0, 1, 3, 3);  // both replacements land on node 3
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_EQ(g.degree(3), 2u);
  EXPECT_TRUE(g.validate().empty());
}

TEST(Graph, FromEdgesMatchesManualConstruction) {
  const Graph a = Graph::from_edges(3, {{0, 1}, {1, 2}});
  Graph b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  EXPECT_EQ(a, b);
}

TEST(Graph, EqualityDetectsPortDifferences) {
  Graph a(3), b(3);
  a.add_edge(0, 1);
  a.add_edge(0, 2);
  b.add_edge(0, 2);
  b.add_edge(0, 1);
  EXPECT_FALSE(a == b);  // same topology, different port labels
}

// Recomputes the fingerprint from scratch via the edges() round-trip; the
// incremental accumulator must agree after any mutation sequence.
std::uint64_t recomputed_fingerprint(const Graph& g) {
  return Graph::from_port_edges(g.node_count(), g.edges()).fingerprint();
}

TEST(GraphFingerprint, EmptyGraphsDifferByNodeCount) {
  EXPECT_NE(Graph(3).fingerprint(), Graph(4).fingerprint());
  EXPECT_EQ(Graph(3).fingerprint(), Graph(3).fingerprint());
}

TEST(GraphFingerprint, EqualGraphsEqualFingerprints) {
  const Graph a = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const Graph b = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(GraphFingerprint, PortLabelsAreFingerprinted) {
  // Same topology, different port order at node 0.
  Graph a(3), b(3);
  a.add_edge(0, 1);
  a.add_edge(0, 2);
  b.add_edge(0, 2);
  b.add_edge(0, 1);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(GraphFingerprint, InsertionOrderIrrelevantWhenPortsMatch) {
  // from_port_edges pins explicit ports, so listing edges in any order must
  // reach the same accumulator value.
  const std::vector<Graph::Edge> fwd = {{0, 1, 1, 1}, {1, 2, 2, 1}};
  const std::vector<Graph::Edge> rev = {{1, 2, 2, 1}, {0, 1, 1, 1}};
  EXPECT_EQ(Graph::from_port_edges(3, fwd).fingerprint(),
            Graph::from_port_edges(3, rev).fingerprint());
}

TEST(GraphFingerprint, IncrementalMatchesRecomputeAcrossMutations) {
  Rng rng(1234);
  Graph g = Graph::from_edges(
      8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}});
  EXPECT_EQ(g.fingerprint(), recomputed_fingerprint(g));

  g.add_edge(0, 4);
  EXPECT_EQ(g.fingerprint(), recomputed_fingerprint(g));
  g.add_edge(1, 5);
  g.add_edge(2, 6);
  EXPECT_EQ(g.fingerprint(), recomputed_fingerprint(g));

  // Remove a middle-port edge so compaction shifts later ports.
  ASSERT_TRUE(g.remove_edge(0, 7));
  EXPECT_EQ(g.fingerprint(), recomputed_fingerprint(g));
  ASSERT_TRUE(g.remove_edge(1, 5));
  EXPECT_EQ(g.fingerprint(), recomputed_fingerprint(g));

  g.permute_ports(0, {1, 0});
  EXPECT_EQ(g.fingerprint(), recomputed_fingerprint(g));
  g.shuffle_ports(rng);
  EXPECT_EQ(g.fingerprint(), recomputed_fingerprint(g));

  g.rewire_edge(2, 3, 7, 0);
  EXPECT_EQ(g.fingerprint(), recomputed_fingerprint(g));
  EXPECT_TRUE(g.validate().empty());
}

TEST(GraphFingerprint, RandomizedMutationChurnStaysInSync) {
  Rng rng(77);
  Graph g(12);
  for (int step = 0; step < 400; ++step) {
    const NodeId u = static_cast<NodeId>(rng.below(12));
    const NodeId v = static_cast<NodeId>(rng.below(12));
    if (u == v) continue;
    if (g.has_edge(u, v)) {
      g.remove_edge(u, v);
    } else {
      g.add_edge(u, v);
    }
    if (step % 7 == 0) g.shuffle_ports(rng);
    ASSERT_EQ(g.fingerprint(), recomputed_fingerprint(g)) << "step " << step;
  }
  EXPECT_TRUE(g.validate().empty());
}

TEST(GraphDelta, IdenticalGraphsAreEmpty) {
  const Graph a = Graph::from_edges(4, {{0, 1}, {1, 2}});
  const Graph b = Graph::from_edges(4, {{0, 1}, {1, 2}});
  const Graph::Delta d = a.delta(b);
  EXPECT_TRUE(d.empty());
  EXPECT_TRUE(d.added.empty());
  EXPECT_TRUE(d.removed.empty());
}

TEST(GraphDelta, NodeCountMismatchShortCircuits) {
  const Graph::Delta d = Graph(3).delta(Graph(4));
  EXPECT_TRUE(d.node_count_changed);
  EXPECT_FALSE(d.empty());
  EXPECT_TRUE(d.changed_nodes.empty());
}

TEST(GraphDelta, AddedEdgeReportsBothEndpoints) {
  const Graph prev = Graph::from_edges(4, {{0, 1}});
  Graph next = prev;
  next.add_edge(2, 3);
  const Graph::Delta d = next.delta(prev);
  EXPECT_EQ(d.changed_nodes, (std::vector<NodeId>{2, 3}));
  ASSERT_EQ(d.added.size(), 1u);
  EXPECT_EQ(d.added[0], (Graph::Edge{2, 3, 1, 1}));
  EXPECT_TRUE(d.removed.empty());
}

TEST(GraphDelta, RemovalWithPortCompactionReportsRelabels) {
  Graph prev(4);
  prev.add_edge(0, 1);
  prev.add_edge(0, 2);
  prev.add_edge(0, 3);
  Graph next = prev;
  next.remove_edge(0, 2);
  const Graph::Delta d = next.delta(prev);
  // Node 0 lost an edge and node 3's edge moved from port 3 to port 2 at 0,
  // which relabels that surviving edge (one removed + one added entry).
  EXPECT_EQ(d.changed_nodes, (std::vector<NodeId>{0, 2, 3}));
  ASSERT_EQ(d.removed.size(), 2u);
  EXPECT_EQ(d.removed[0], (Graph::Edge{0, 2, 2, 1}));
  EXPECT_EQ(d.removed[1], (Graph::Edge{0, 3, 3, 1}));
  ASSERT_EQ(d.added.size(), 1u);
  EXPECT_EQ(d.added[0], (Graph::Edge{0, 3, 2, 1}));
}

TEST(GraphDelta, PortPermutationIsRelabelNotTopologyChange) {
  Graph prev(3);
  prev.add_edge(0, 1);
  prev.add_edge(0, 2);
  Graph next = prev;
  next.permute_ports(0, {1, 0});
  const Graph::Delta d = next.delta(prev);
  // Ports at 0 swapped: both neighbors' reverse ports change too.
  EXPECT_EQ(d.changed_nodes, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(d.added.size(), 2u);
  EXPECT_EQ(d.removed.size(), 2u);
  EXPECT_EQ(next.edge_count(), prev.edge_count());
}

TEST(GraphDelta, DeltaIntoReusesStorage) {
  const Graph prev = Graph::from_edges(4, {{0, 1}});
  Graph next = prev;
  next.add_edge(1, 2);
  Graph::Delta d;
  d.changed_nodes = {9, 9, 9};  // stale contents must be cleared
  d.node_count_changed = true;
  next.delta_into(prev, d);
  EXPECT_FALSE(d.node_count_changed);
  EXPECT_EQ(d.changed_nodes, (std::vector<NodeId>{1, 2}));
  ASSERT_EQ(d.added.size(), 1u);
  EXPECT_EQ(d.added[0], (Graph::Edge{1, 2, 2, 1}));
}

}  // namespace
}  // namespace dyndisp
