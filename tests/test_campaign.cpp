// Campaign engine: spec parsing/validation, deterministic expansion, the
// registry, the JSONL result store (resume + torn lines), the scheduler's
// per-job isolation, and thread-count-independent aggregation.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "campaign/registry.h"
#include "campaign/scheduler.h"
#include "campaign/spec.h"
#include "campaign/store.h"
#include "util/json.h"

namespace dyndisp::campaign {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test case, removed up-front so reruns are
/// clean.
std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("dyndisp_" + name);
  fs::remove_all(dir);
  return dir.string();
}

constexpr const char* kSmallSpec = R"({
  "name": "small",
  "axes": {
    "algorithms": ["alg4"],
    "adversaries": ["random"],
    "n": [12],
    "k": [6]
  },
  "seeds": 4
})";

// ---------------------------------------------------------------------------
// JSON reader

TEST(JsonReader, ParsesDocument) {
  const JsonValue v = JsonValue::parse(
      R"({"a": [1, 2.5, -3], "b": {"x": "he\"llo\n"}, "c": true, "d": null})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members().size(), 4u);
  EXPECT_EQ(v.members()[0].first, "a");  // member order preserved
  EXPECT_EQ(v.members()[3].first, "d");
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(a->items()[1].as_number(), 2.5);
  EXPECT_DOUBLE_EQ(a->items()[2].as_number(), -3.0);
  EXPECT_EQ(a->items()[0].as_uint(), 1u);
  EXPECT_EQ(v.find("b")->find("x")->as_string(), "he\"llo\n");
  EXPECT_TRUE(v.find("c")->as_bool());
  EXPECT_TRUE(v.find("d")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonReader, ParsesEscapesAndUnicode) {
  const JsonValue v = JsonValue::parse(R"("A\t\\é")");
  EXPECT_EQ(v.as_string(), "A\t\\\xC3\xA9");
}

TEST(JsonReader, RejectsMalformed) {
  const char* bad[] = {
      "",           "{",       "[1,]",        "{\"a\": }", "{\"a\" 1}",
      "{'a': 1}",   "tru",     "01x",         "\"unterminated",
      "{\"a\":1} trailing", "[1 2]", "{\"a\":1,}", "\"bad\\q\"",
  };
  for (const char* text : bad) {
    EXPECT_THROW(JsonValue::parse(text), std::invalid_argument)
        << "accepted: " << text;
  }
}

TEST(JsonReader, LargeIntegersRoundTripLosslessly) {
  // Integer tokens must not route through a double: values above 2^53 would
  // silently round, so a seed read back from a store could differ from the
  // one that produced the record.
  EXPECT_EQ(JsonValue::parse("9007199254740993").as_uint(),
            9007199254740993ull);  // 2^53 + 1, not representable as double
  EXPECT_EQ(JsonValue::parse("18446744073709551615").as_uint(),
            18446744073709551615ull);  // UINT64_MAX
  EXPECT_THROW((void)JsonValue::parse("18446744073709551616").as_uint(),
               std::invalid_argument);  // overflows uint64
}

TEST(JsonReader, RejectsTypeMismatch) {
  const JsonValue v = JsonValue::parse("[1, -2]");
  EXPECT_THROW((void)v.as_string(), std::invalid_argument);
  EXPECT_THROW((void)v.members(), std::invalid_argument);
  EXPECT_THROW((void)v.items()[1].as_uint(),
               std::invalid_argument);  // negative
  EXPECT_THROW((void)JsonValue::parse("1.5").as_uint(),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Registry

TEST(Registry, ListsAndResolvesEveryName) {
  const Registry& registry = Registry::instance();
  for (const std::string& name : registry.algorithm_names()) {
    EXPECT_TRUE(registry.has_algorithm(name));
    EXPECT_NE(registry.algorithm(name, 1).factory, nullptr);
  }
  for (const std::string& name : registry.adversary_names())
    EXPECT_NE(registry.adversary(name, "random", 10, 1), nullptr);
  for (const std::string& name : registry.family_names())
    EXPECT_GT(registry.family(name, 10, 1).node_count(), 0u);
  for (const std::string& name : registry.placement_names()) {
    if (name == "grouped") continue;  // needs groups <= k
    EXPECT_EQ(registry.placement(name, 12, 6, 3, 1).robot_count(), 6u);
  }
  // The names dyndisp_sim documents are all present.
  EXPECT_TRUE(registry.has_algorithm("alg4"));
  EXPECT_TRUE(registry.has_algorithm("dfs"));
  EXPECT_TRUE(registry.has_adversary("star-star"));
  EXPECT_TRUE(registry.has_family("grid"));
  EXPECT_TRUE(registry.has_placement("rooted"));
}

TEST(Registry, ThrowsOnUnknownNames) {
  const Registry& registry = Registry::instance();
  EXPECT_THROW(registry.algorithm("nope", 1), std::invalid_argument);
  EXPECT_THROW(registry.adversary("nope", "random", 10, 1),
               std::invalid_argument);
  EXPECT_THROW(registry.family("nope", 10, 1), std::invalid_argument);
  EXPECT_THROW(registry.placement("nope", 10, 5, 3, 1),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Spec parsing + expansion

TEST(CampaignSpec, ParsesAxesAndCountsJobs) {
  const CampaignSpec spec = CampaignSpec::parse_json(R"({
    "name": "grid",
    "axes": {
      "algorithms": ["alg4", "dfs"],
      "adversaries": ["random", "static"],
      "n": [12],
      "k": [6, 8],
      "faults": [0, 2]
    },
    "seeds": 3,
    "base_seed": 5
  })");
  EXPECT_EQ(spec.name(), "grid");
  EXPECT_EQ(spec.job_count(), 2u * 2u * 1u * 2u * 2u * 3u);
  EXPECT_EQ(spec.expand().size(), spec.job_count());
}

TEST(CampaignSpec, ExpansionIsDeterministicAndOrdered) {
  const CampaignSpec spec = CampaignSpec::parse_json(R"({
    "name": "order",
    "axes": {
      "algorithms": ["alg4", "dfs"],
      "adversaries": ["random"],
      "n": [10],
      "k": [5],
      "faults": [0, 1]
    },
    "seeds": 2
  })");
  const std::vector<JobSpec> a = spec.expand();
  const std::vector<JobSpec> b = spec.expand();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id(), b[i].id());
    EXPECT_EQ(a[i].index, i);
  }
  // Fixed nesting: algorithm > adversary > n > k > comm > faults > seed.
  EXPECT_EQ(a[0].id(), "alg4|random|n=10|k=5|comm=default|f=0|seed=1");
  EXPECT_EQ(a[1].id(), "alg4|random|n=10|k=5|comm=default|f=0|seed=2");
  EXPECT_EQ(a[2].id(), "alg4|random|n=10|k=5|comm=default|f=1|seed=1");
  EXPECT_EQ(a[4].id(), "dfs|random|n=10|k=5|comm=default|f=0|seed=1");
}

TEST(CampaignSpec, DerivesKFromNWhenOmitted) {
  const CampaignSpec spec = CampaignSpec::parse_json(
      R"({"name": "defk", "axes": {"n": [20]}})");
  const std::vector<JobSpec> jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].k, 13u);  // max(2, 2*20/3), the dyndisp_sim default
  EXPECT_EQ(jobs[0].effective_max_rounds(), 100u * 13u);
}

TEST(CampaignSpec, RejectsUnknownNamesAndMalformedInput) {
  EXPECT_THROW(CampaignSpec::parse_json("{\"axes\": {}}"),
               std::invalid_argument);  // no name
  EXPECT_THROW(CampaignSpec::parse_json("not json at all"),
               std::invalid_argument);
  EXPECT_THROW(CampaignSpec::parse_json("[1, 2]"), std::invalid_argument);
  EXPECT_THROW(
      CampaignSpec::parse_json(
          R"({"name": "x", "axes": {"algorithms": ["alg9000"]}})"),
      std::invalid_argument);
  EXPECT_THROW(
      CampaignSpec::parse_json(
          R"({"name": "x", "axes": {"adversaries": ["nope"]}})"),
      std::invalid_argument);
  EXPECT_THROW(
      CampaignSpec::parse_json(R"({"name": "x", "family": "nope"})"),
      std::invalid_argument);
  EXPECT_THROW(
      CampaignSpec::parse_json(R"({"name": "x", "placement": "nope"})"),
      std::invalid_argument);
  EXPECT_THROW(
      CampaignSpec::parse_json(
          R"({"name": "x", "axes": {"comm": ["telepathy"]}})"),
      std::invalid_argument);
  EXPECT_THROW(CampaignSpec::parse_json(R"({"name": "x", "typo_key": 1})"),
               std::invalid_argument);
  EXPECT_THROW(
      CampaignSpec::parse_json(R"({"name": "x", "axes": {"typo_axis": []}})"),
      std::invalid_argument);
  EXPECT_THROW(CampaignSpec::parse_json(R"({"name": "x", "seeds": 0})"),
               std::invalid_argument);
  EXPECT_THROW(
      CampaignSpec::parse_json(R"({"name": "x", "axes": {"n": [-4]}})"),
      std::invalid_argument);
}

TEST(CampaignSpec, HashIgnoresSeedRangeButNotAxes) {
  const CampaignSpec a =
      CampaignSpec::parse_json(R"({"name": "h", "seeds": 2})");
  const CampaignSpec b =
      CampaignSpec::parse_json(R"({"name": "h", "seeds": 9})");
  const CampaignSpec c = CampaignSpec::parse_json(
      R"({"name": "h", "axes": {"faults": [1]}, "seeds": 2})");
  EXPECT_EQ(a.hash(), b.hash());  // extending seeds resumes the same store
  EXPECT_NE(a.hash(), c.hash());
}

// ---------------------------------------------------------------------------
// Store + scheduler

TEST(Campaign, RunPersistsOneRecordPerTrial) {
  const CampaignSpec spec = CampaignSpec::parse_json(kSmallSpec);
  ResultStore store(scratch_dir("run"));
  const CampaignOutcome outcome = run_campaign(spec, store, 1);
  EXPECT_EQ(outcome.total, 4u);
  EXPECT_EQ(outcome.executed, 4u);
  EXPECT_EQ(outcome.skipped, 0u);
  EXPECT_EQ(outcome.failed, 0u);

  const std::vector<TrialRecord> records = store.load();
  ASSERT_EQ(records.size(), 4u);
  for (const TrialRecord& r : records) {
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.dispersed);
    EXPECT_EQ(r.spec_hash, spec.hash());
    EXPECT_GT(r.rounds, 0u);
    EXPECT_GE(r.wall_ms, 0.0);
  }
  // The spec copy and manifest exist and parse.
  EXPECT_TRUE(std::filesystem::exists(store.spec_path()));
  const std::vector<RunCounters> runs = store.run_history();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].executed, 4u);
  EXPECT_GT(runs[0].wall_ms, 0.0);
}

TEST(Campaign, RecordsMatchDirectTrialRuns) {
  const CampaignSpec spec = CampaignSpec::parse_json(kSmallSpec);
  ResultStore store(scratch_dir("direct"));
  run_campaign(spec, store, 2);
  for (const TrialRecord& r : store.load()) {
    const RunResult direct =
        analysis::run_trial(make_trial_spec(r.job), r.job.seed);
    EXPECT_EQ(r.dispersed, direct.dispersed) << r.job.id();
    EXPECT_EQ(r.rounds, direct.rounds) << r.job.id();
    EXPECT_EQ(r.moves, direct.total_moves) << r.job.id();
    EXPECT_EQ(r.memory_bits, direct.max_memory_bits) << r.job.id();
  }
}

TEST(Campaign, AggregateIsIdenticalAtAnyThreadCount) {
  const CampaignSpec spec = CampaignSpec::parse_json(R"({
    "name": "threads",
    "axes": {
      "algorithms": ["alg4", "dfs"],
      "adversaries": ["random", "static"],
      "n": [12],
      "k": [6],
      "faults": [0, 2]
    },
    "seeds": 3
  })");
  ResultStore serial(scratch_dir("threads1"));
  ResultStore parallel(scratch_dir("threads4"));
  run_campaign(spec, serial, 1);
  run_campaign(spec, parallel, 4);

  const auto groups1 = aggregate(serial.load());
  const auto groups4 = aggregate(parallel.load());
  // Bitwise-identical aggregates: the rendered report and every sample
  // sequence agree exactly.
  EXPECT_EQ(render_report("threads", groups1),
            render_report("threads", groups4));
  ASSERT_EQ(groups1.size(), groups4.size());
  for (std::size_t g = 0; g < groups1.size(); ++g) {
    EXPECT_EQ(groups1[g].rounds.samples(), groups4[g].rounds.samples());
    EXPECT_EQ(groups1[g].moves.samples(), groups4[g].moves.samples());
    EXPECT_EQ(groups1[g].dispersed, groups4[g].dispersed);
  }
}

TEST(Campaign, ResumeSkipsCompletedRecords) {
  const CampaignSpec spec = CampaignSpec::parse_json(kSmallSpec);
  const std::string dir = scratch_dir("resume");
  {
    ResultStore store(dir);
    run_campaign(spec, store, 1);
  }
  // Simulate a kill after two finished trials: truncate the JSONL.
  {
    std::ifstream in(dir + "/results.jsonl");
    std::string line, kept;
    for (int i = 0; i < 2 && std::getline(in, line); ++i) kept += line + "\n";
    in.close();
    std::ofstream out(dir + "/results.jsonl", std::ios::trunc);
    out << kept;
  }
  ResultStore store(dir);
  ASSERT_EQ(store.load().size(), 2u);
  const CampaignOutcome outcome = run_campaign(spec, store, 1);
  EXPECT_EQ(outcome.executed, 2u);  // only the missing trials re-ran
  EXPECT_EQ(outcome.skipped, 2u);
  EXPECT_EQ(outcome.completed, 4u);
  EXPECT_EQ(store.load().size(), 4u);  // no duplicates
  // The manifest's run history shows both invocations.
  const std::vector<RunCounters> runs = store.run_history();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs.back().executed, 2u);
  EXPECT_EQ(runs.back().skipped, 2u);

  // A fully complete store resumes to a no-op.
  const CampaignOutcome noop = run_campaign(spec, store, 1);
  EXPECT_EQ(noop.executed, 0u);
  EXPECT_EQ(noop.skipped, 4u);
}

TEST(Campaign, TornFinalLineIsDiscardedAndReRun) {
  const CampaignSpec spec = CampaignSpec::parse_json(kSmallSpec);
  const std::string dir = scratch_dir("torn");
  {
    ResultStore store(dir);
    run_campaign(spec, store, 1);
  }
  {
    // Keep 3 complete lines, then a torn fourth (killed mid-write).
    std::ifstream in(dir + "/results.jsonl");
    std::string line, kept;
    for (int i = 0; i < 3 && std::getline(in, line); ++i) kept += line + "\n";
    in.close();
    std::ofstream out(dir + "/results.jsonl", std::ios::trunc);
    out << kept << R"({"job": 3, "id": "alg4|random|n=12|k=6)";
  }
  ResultStore store(dir);
  EXPECT_EQ(store.load().size(), 3u);
  const CampaignOutcome outcome = run_campaign(spec, store, 1);
  EXPECT_EQ(outcome.executed, 1u);
  EXPECT_EQ(outcome.skipped, 3u);
  // The re-run record must not be fused onto the torn fragment: the store
  // holds exactly the 4 complete records and every one parses back.
  EXPECT_EQ(store.load().size(), 4u);
}

TEST(Campaign, MidFileCorruptionFailsLoudly) {
  const CampaignSpec spec = CampaignSpec::parse_json(kSmallSpec);
  const std::string dir = scratch_dir("midcorrupt");
  {
    ResultStore store(dir);
    run_campaign(spec, store, 1);
  }
  {
    // Corrupt a record in the *middle* of the file. Unlike a torn final
    // line this is not a kill signature; silently truncating at it would
    // under-count trials.
    std::ifstream in(dir + "/results.jsonl");
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    in.close();
    ASSERT_EQ(lines.size(), 4u);
    lines[1] = R"({"job": gar)";
    std::ofstream out(dir + "/results.jsonl", std::ios::trunc);
    for (const std::string& l : lines) out << l << "\n";
  }
  ResultStore store(dir);
  EXPECT_THROW(store.load(), std::runtime_error);
}

TEST(Campaign, RecordsRoundTripExactly) {
  ResultStore store(scratch_dir("roundtrip"));
  TrialRecord r;
  r.job.index = 7;
  r.job.algorithm = "alg4";
  r.job.adversary = "random";
  r.job.family = "random";
  r.job.placement = "rooted";
  r.job.comm = "default";
  r.job.n = 12;
  r.job.k = 6;
  r.job.seed = 3;
  r.spec_hash = "abc";
  r.rounds = 41;
  r.wall_ms = 123.0 / 7.0;  // needs more than 6 significant digits
  store.append(r);
  const std::vector<TrialRecord> loaded = store.load();
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].wall_ms, r.wall_ms);  // bitwise, not approximate
  EXPECT_EQ(loaded[0].job.id(), r.job.id());
}

TEST(Campaign, ProgressCountsOnlyCurrentExpansion) {
  // A store built with more seeds is a valid resume target for the same spec
  // at fewer seeds (the hash ignores the seed count); the progress counter
  // must count against the current expansion, never exceeding [total/total].
  CampaignSpec six = CampaignSpec::parse_json(kSmallSpec);
  six.set_seeds(6);
  const std::string dir = scratch_dir("progress");
  {
    ResultStore store(dir);
    run_campaign(six, store, 1);
  }
  {
    // Drop the seed-2 record: 5 remain, two outside a 4-seed expansion.
    std::ifstream in(dir + "/results.jsonl");
    std::string line, kept;
    while (std::getline(in, line))
      if (line.find("seed=2") == std::string::npos) kept += line + "\n";
    in.close();
    std::ofstream out(dir + "/results.jsonl", std::ios::trunc);
    out << kept;
  }
  const CampaignSpec four = CampaignSpec::parse_json(kSmallSpec);  // seeds: 4
  ResultStore store(dir);
  std::ostringstream progress;
  const CampaignOutcome outcome = run_campaign(four, store, 1, &progress);
  EXPECT_EQ(outcome.executed, 1u);
  EXPECT_EQ(outcome.skipped, 3u);
  EXPECT_NE(progress.str().find("[4/4]"), std::string::npos) << progress.str();
}

TEST(Campaign, TrialFailureIsRecordedNotFatal) {
  // grouped placement with groups > k throws inside the trial; the job must
  // produce a failure record while the rest of the campaign completes.
  const CampaignSpec spec = CampaignSpec::parse_json(R"({
    "name": "isolation",
    "axes": {
      "algorithms": ["alg4"],
      "adversaries": ["random"],
      "n": [12],
      "k": [6]
    },
    "placement": "grouped",
    "groups": 30,
    "seeds": 2
  })");
  ResultStore store(scratch_dir("isolation"));
  const CampaignOutcome outcome = run_campaign(spec, store, 2);
  EXPECT_EQ(outcome.executed, 2u);
  EXPECT_EQ(outcome.failed, 2u);
  for (const TrialRecord& r : store.load()) {
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.error.empty());
  }
  const auto groups = aggregate(store.load());
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].failed, 2u);
  EXPECT_EQ(groups[0].trials, 2u);
}

TEST(Campaign, RefusesStoreOfDifferentCampaign) {
  const CampaignSpec spec = CampaignSpec::parse_json(kSmallSpec);
  const std::string dir = scratch_dir("mismatch");
  {
    ResultStore store(dir);
    run_campaign(spec, store, 1);
  }
  const CampaignSpec other = CampaignSpec::parse_json(R"({
    "name": "small",
    "axes": {
      "algorithms": ["alg4"],
      "adversaries": ["random"],
      "n": [12],
      "k": [6],
      "faults": [1]
    },
    "seeds": 4
  })");
  ResultStore store(dir);
  EXPECT_THROW(run_campaign(other, store, 1), std::invalid_argument);
}

TEST(Campaign, ReportCsvRoundTrips) {
  const CampaignSpec spec = CampaignSpec::parse_json(kSmallSpec);
  const std::string dir = scratch_dir("csv");
  ResultStore store(dir);
  run_campaign(spec, store, 1);
  const auto groups = aggregate(store.load());
  const std::string csv_path = dir + "/report.csv";
  write_report_csv(csv_path, groups);
  std::ifstream in(csv_path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("algorithm"), std::string::npos);
  std::string row;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, row)));
  EXPECT_NE(row.find("alg4"), std::string::npos);
}

}  // namespace
}  // namespace dyndisp::campaign
