// Tests for the baseline algorithms on their home turf (static graphs) and
// their documented failure modes on dynamic inputs.
#include <gtest/gtest.h>

#include "baselines/blind_walk.h"
#include "baselines/dfs_dispersion.h"
#include "baselines/greedy_local.h"
#include "baselines/random_walk.h"
#include "dynamic/random_adversary.h"
#include "dynamic/star_star_adversary.h"
#include "dynamic/static_adversary.h"
#include "graph/builders.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace dyndisp {
namespace {

EngineOptions local_options(Round horizon = 5000) {
  EngineOptions opt;
  opt.comm = CommModel::kLocal;
  opt.neighborhood_knowledge = false;
  opt.max_rounds = horizon;
  opt.record_progress = true;
  opt.allow_model_mismatch = true;
  return opt;
}

RunResult run_static(const Graph& g, Configuration conf,
                     const AlgorithmFactory& factory,
                     EngineOptions opt = local_options()) {
  StaticAdversary adv(g);
  Engine engine(adv, std::move(conf), factory, opt);
  return engine.run();
}

// ---- DFS dispersion on static graphs (its home setting) ----

struct DfsCase {
  const char* name;
  Graph (*make)();
  std::size_t k;
};

Graph g_path() { return builders::path(10); }
Graph g_cycle() { return builders::cycle(10); }
Graph g_star() { return builders::star(10); }
Graph g_grid() { return builders::grid(3, 4); }
Graph g_complete() { return builders::complete(8); }
Graph g_btree() { return builders::binary_tree(11); }
Graph g_random() {
  Rng rng(4);
  return builders::random_connected(12, 6, rng);
}
Graph g_lollipop() { return builders::lollipop(5, 5); }

class DfsStaticSweep : public ::testing::TestWithParam<DfsCase> {};

TEST_P(DfsStaticSweep, DispersesFromRootedConfig) {
  const DfsCase& c = GetParam();
  const Graph g = c.make();
  const RunResult r =
      run_static(g, placement::rooted(g.node_count(), c.k),
                 baselines::dfs_dispersion_factory());
  EXPECT_TRUE(r.dispersed) << "stalled at " << r.max_occupied << "/" << c.k;
  // DFS dispersion runs in O(m) rounds on static graphs.
  EXPECT_LE(r.rounds, 4 * g.edge_count() + 2);
}

INSTANTIATE_TEST_SUITE_P(
    Families, DfsStaticSweep,
    ::testing::Values(DfsCase{"path", g_path, 10}, DfsCase{"cycle", g_cycle, 7},
                      DfsCase{"star", g_star, 10}, DfsCase{"grid", g_grid, 9},
                      DfsCase{"complete", g_complete, 8},
                      DfsCase{"btree", g_btree, 11},
                      DfsCase{"random", g_random, 10},
                      DfsCase{"lollipop", g_lollipop, 8}),
    [](const ::testing::TestParamInfo<DfsCase>& param_info) {
      return param_info.param.name;
    });

TEST(DfsDispersion, RootedMidPathDisperses) {
  const Graph g = builders::path(9);
  const RunResult r = run_static(g, placement::rooted(9, 9, 4),
                                 baselines::dfs_dispersion_factory());
  EXPECT_TRUE(r.dispersed);
}

TEST(DfsDispersion, TwoGroupsOnStaticPath) {
  const Graph g = builders::path(12);
  const Configuration conf(12, {2, 2, 2, 9, 9, 9});
  const RunResult r =
      run_static(g, conf, baselines::dfs_dispersion_factory());
  EXPECT_TRUE(r.dispersed);
}

TEST(DfsDispersion, MemoryIncludesPortFields) {
  const Graph g = builders::star(6);
  const RunResult r = run_static(g, placement::rooted(6, 4),
                                 baselines::dfs_dispersion_factory());
  // id + 2 flags + two 16-bit port fields: strictly more than log k.
  EXPECT_GT(r.max_memory_bits, 32u);
}

// ---- Greedy local ----

TEST(GreedyLocal, SolvesStarInstantly) {
  EngineOptions opt = local_options();
  opt.neighborhood_knowledge = true;
  const RunResult r = run_static(builders::star(8), placement::rooted(8, 6, 0),
                                 baselines::greedy_local_factory(), opt);
  EXPECT_TRUE(r.dispersed);
  EXPECT_LE(r.rounds, 2u);
}

TEST(GreedyLocal, SurplusRobotsFanOutToDistinctEmptyPorts) {
  EngineOptions opt = local_options();
  opt.neighborhood_knowledge = true;
  const RunResult r = run_static(builders::star(9), placement::rooted(9, 8, 0),
                                 baselines::greedy_local_factory(), opt);
  EXPECT_TRUE(r.dispersed);
  EXPECT_EQ(r.rounds, 1u);  // 7 surplus robots, 8 leaves, one round
}

TEST(GreedyLocal, StallsOnPathWithInteriorMultiplicity) {
  // The Theorem 1 geometry, static: surplus robot at one end cannot see
  // the far-away empty node, and greedy never moves "sideways".
  EngineOptions opt = local_options(300);
  opt.neighborhood_knowledge = true;
  const Graph g = builders::path(8);
  const Configuration conf(8, {0, 0, 1, 2, 3, 4});  // fig-1-like, empty 5..7
  const RunResult r =
      run_static(g, conf, baselines::greedy_local_factory(), opt);
  EXPECT_FALSE(r.dispersed);  // its documented failure mode
}

TEST(GreedyLocal, RequiresNeighborhoodKnowledge) {
  StaticAdversary adv(builders::star(5));
  EngineOptions opt;
  opt.comm = CommModel::kLocal;
  opt.neighborhood_knowledge = false;
  EXPECT_THROW(Engine(adv, placement::rooted(5, 3),
                      baselines::greedy_local_factory(), opt),
               std::invalid_argument);
}

// ---- Random walk ----

TEST(RandomWalk, EventuallyDispersesOnStaticGraphs) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Graph g = builders::cycle(8);
    const RunResult r = run_static(g, placement::rooted(8, 5),
                                   baselines::random_walk_factory(seed));
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_TRUE(r.dispersed);
  }
}

TEST(RandomWalk, MemoryDominatedByPrngState) {
  const RunResult r = run_static(builders::cycle(6), placement::rooted(6, 3),
                                 baselines::random_walk_factory(9));
  EXPECT_GE(r.max_memory_bits, 256u);  // the PRNG state is persistent memory
}

TEST(RandomWalk, DeterministicGivenSeed) {
  const Graph g = builders::grid(3, 3);
  const RunResult a = run_static(g, placement::rooted(9, 6),
                                 baselines::random_walk_factory(5));
  const RunResult b = run_static(g, placement::rooted(9, 6),
                                 baselines::random_walk_factory(5));
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_TRUE(a.final_config == b.final_config);
}

// ---- Blind walk ----

TEST(BlindWalk, DispersesOnCompleteStaticGraph) {
  EngineOptions opt;
  opt.comm = CommModel::kGlobal;
  opt.neighborhood_knowledge = false;
  opt.max_rounds = 5000;
  StaticAdversary adv(builders::complete(9));
  Engine engine(adv, placement::rooted(9, 6), baselines::blind_walk_factory(),
                opt);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
}

TEST(BlindWalk, RequiresGlobalComm) {
  StaticAdversary adv(builders::path(4));
  EngineOptions opt;
  opt.comm = CommModel::kLocal;
  EXPECT_THROW(Engine(adv, placement::rooted(4, 2),
                      baselines::blind_walk_factory(), opt),
               std::invalid_argument);
}

// ---- Static-algorithm-on-dynamic-graph failure mode ----

TEST(Baselines, DfsStallsUnderAdversarialDynamics) {
  // Under the star-star adversary (the Theorem 3 construction) the DFS
  // baseline's settled-robot markers and rotors refer to edges that vanish
  // every round: measured behaviour is a hard stall far below dispersion,
  // for every seed, even with a 100x round budget.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::size_t n = 16, k = 12;
    StarStarAdversary adv(n, true, seed);
    EngineOptions opt = local_options(/*horizon=*/100 * k);
    Engine engine(adv, placement::rooted(n, k),
                  baselines::dfs_dispersion_factory(), opt);
    const RunResult r = engine.run();
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_FALSE(r.dispersed);
    EXPECT_LE(r.max_occupied, k / 2);  // measured: never above 5 of 12
  }
}

TEST(Baselines, DfsToleratesBenignRandomDynamics) {
  // Counterpoint recorded in EXPERIMENTS.md: full random rewiring is not
  // adversarial -- it effectively randomizes the walk, and the DFS group
  // happens to scatter quickly. Only adversarial dynamics defeat it.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RandomAdversary adv(12, 5, seed);
    EngineOptions opt = local_options(/*horizon=*/2000);
    Engine engine(adv, placement::rooted(12, 9),
                  baselines::dfs_dispersion_factory(), opt);
    const RunResult r = engine.run();
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_TRUE(r.dispersed);
  }
}

}  // namespace
}  // namespace dyndisp
