// Tests for the dyndisp_lint static-analysis pass (src/lint/): tokenizer,
// suppression contract, every rule's positive/negative fixtures (both
// embedded snippets and the on-disk tests/lint_fixtures/ files), the
// driver's tree walk, and the planted-violation self-check.
//
// The on-disk fixture directory is injected by CMake as
// DYNDISP_LINT_FIXTURES; the repo source root as DYNDISP_REPO_ROOT.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint/driver.h"
#include "lint/index.h"
#include "lint/registry.h"
#include "lint/selfcheck.h"
#include "lint/source_file.h"
#include "lint/token.h"

namespace dyndisp::lint {
namespace {

std::string fixtures_dir() { return DYNDISP_LINT_FIXTURES; }
std::string repo_root() { return DYNDISP_REPO_ROOT; }

LintReport lint_snippet(const std::string& path, const std::string& text,
                        const std::vector<std::string>& rules = {}) {
  std::vector<SourceFile> files;
  files.push_back(SourceFile::from_string(path, text));
  return lint_files(files, rules);
}

std::vector<std::string> rules_hit(const LintReport& report) {
  std::vector<std::string> rules;
  for (const Diagnostic& d : report.diagnostics) rules.push_back(d.rule);
  return rules;
}

bool hit(const LintReport& report, const std::string& rule) {
  const std::vector<std::string> rules = rules_hit(report);
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

// ---------------------------------------------------------------- tokenizer

TEST(LintTokenizer, SplitsIdentifiersNumbersPuncts) {
  const TokenStream s = tokenize("int x_ = 42 + 0x1Fu;");
  ASSERT_EQ(s.tokens.size(), 7u);
  EXPECT_EQ(s.tokens[0].text, "int");
  EXPECT_EQ(s.tokens[1].text, "x_");
  EXPECT_EQ(s.tokens[2].text, "=");
  EXPECT_EQ(s.tokens[3].text, "42");
  EXPECT_EQ(s.tokens[3].kind, TokenKind::kNumber);
  EXPECT_EQ(s.tokens[4].text, "+");
  EXPECT_EQ(s.tokens[5].text, "0x1Fu");
  EXPECT_EQ(s.tokens[6].text, ";");
}

TEST(LintTokenizer, TracksLineNumbers) {
  const TokenStream s = tokenize("a\nb\n\nc\n");
  ASSERT_EQ(s.tokens.size(), 3u);
  EXPECT_EQ(s.tokens[0].line, 1);
  EXPECT_EQ(s.tokens[1].line, 2);
  EXPECT_EQ(s.tokens[2].line, 4);
}

TEST(LintTokenizer, CodeInsideCommentsIsNotCode) {
  const TokenStream s =
      tokenize("// std::rand() here\n/* rand() there\n rand() */\nint x;\n");
  for (const Token& t : s.tokens) EXPECT_NE(t.text, "rand");
  ASSERT_EQ(s.comments.size(), 2u);
  EXPECT_EQ(s.comments[0].line, 1);
  EXPECT_EQ(s.comments[1].line, 2);
}

TEST(LintTokenizer, CodeInsideStringLiteralsIsNotCode) {
  const TokenStream s =
      tokenize("const char* a = \"rand()\";\nconst char c = 'r';\n");
  for (const Token& t : s.tokens)
    if (t.kind == TokenKind::kIdentifier) EXPECT_NE(t.text, "rand");
}

TEST(LintTokenizer, RawStringsAreOpaque) {
  const TokenStream s =
      tokenize("const char* u = R\"(rand() \" unbalanced)\";\nint after;\n");
  for (const Token& t : s.tokens)
    if (t.kind == TokenKind::kIdentifier) EXPECT_NE(t.text, "rand");
  // The tokenizer recovered and still saw the code after the raw string.
  const std::vector<Token>& tokens = s.tokens;
  EXPECT_TRUE(std::any_of(tokens.begin(), tokens.end(), [](const Token& t) {
    return t.text == "after";
  }));
}

TEST(LintTokenizer, CapturesIncludeDirectives) {
  const TokenStream s = tokenize(
      "#include \"campaign/registry.h\"\n#include <vector>\n#define X 1\n");
  ASSERT_EQ(s.includes.size(), 2u);
  EXPECT_EQ(s.includes[0].path, "campaign/registry.h");
  EXPECT_FALSE(s.includes[0].angled);
  EXPECT_EQ(s.includes[1].path, "vector");
  EXPECT_TRUE(s.includes[1].angled);
}

TEST(LintTokenizer, ScopeResolutionIsOneToken) {
  const TokenStream s = tokenize("std::chrono::steady_clock::now()");
  std::size_t colons = 0;
  for (const Token& t : s.tokens)
    if (t.text == "::") ++colons;
  EXPECT_EQ(colons, 3u);
}

// ------------------------------------------------------------- suppressions

TEST(LintSuppression, ParsesJustifiedDirective) {
  const SourceFile f = SourceFile::from_string(
      "a.cpp", "int x = std::rand();  // NOLINT-dyndisp(determinism-random): "
               "seeded upstream\n");
  ASSERT_EQ(f.suppressions().size(), 1u);
  EXPECT_TRUE(f.suppressions()[0].well_formed);
  EXPECT_EQ(f.suppressions()[0].rule, "determinism-random");
  EXPECT_EQ(f.suppressions()[0].reason, "seeded upstream");
  EXPECT_TRUE(f.suppressed("determinism-random", 1));
}

TEST(LintSuppression, NextLineTargetsFirstCodeTokenAfterComment) {
  const SourceFile f = SourceFile::from_string(
      "a.cpp",
      "// NOLINTNEXTLINE-dyndisp(determinism-random): a justification\n"
      "// that wraps over two comment lines\n"
      "int x = std::rand();\n");
  ASSERT_EQ(f.suppressions().size(), 1u);
  EXPECT_EQ(f.suppressions()[0].target_line, 3);
  EXPECT_TRUE(f.suppressed("determinism-random", 3));
}

TEST(LintSuppression, MissingReasonIsMalformed) {
  const SourceFile f = SourceFile::from_string(
      "a.cpp", "int x = 1;  // NOLINT-dyndisp(determinism-random)\n");
  ASSERT_EQ(f.suppressions().size(), 1u);
  EXPECT_FALSE(f.suppressions()[0].well_formed);
  EXPECT_FALSE(f.suppressed("determinism-random", 1));
}

TEST(LintSuppression, MissingRuleListIsMalformed) {
  const SourceFile f = SourceFile::from_string(
      "a.cpp", "int x = 1;  // NOLINT-dyndisp: because\n");
  ASSERT_EQ(f.suppressions().size(), 1u);
  EXPECT_FALSE(f.suppressions()[0].well_formed);
}

TEST(LintSuppression, MultiRuleDirectiveCoversEachRule) {
  const SourceFile f = SourceFile::from_string(
      "a.cpp",
      "// NOLINTNEXTLINE-dyndisp(determinism-random, "
      "determinism-wallclock): fixture\n"
      "int x;\n");
  ASSERT_EQ(f.suppressions().size(), 2u);
  EXPECT_TRUE(f.suppressed("determinism-random", 2));
  EXPECT_TRUE(f.suppressed("determinism-wallclock", 2));
}

TEST(LintSuppression, ProseMentionsAreNotDirectives) {
  const SourceFile f = SourceFile::from_string(
      "a.cpp",
      "// Docs may mention that NOLINT-dyndisp(rule): reason is the "
      "syntax.\nint x;\n");
  EXPECT_TRUE(f.suppressions().empty());
}

// ------------------------------------------------------------------- rules

TEST(LintRuleRandom, FlagsBannedSourcesAndAcceptsRng) {
  EXPECT_TRUE(hit(lint_snippet("src/a.cpp",
                               "#include <cstdlib>\n"
                               "int f() { return std::rand(); }\n"),
                  "determinism-random"));
  EXPECT_TRUE(hit(lint_snippet("src/a.cpp",
                               "#include <random>\n"
                               "std::random_device rd;\n"),
                  "determinism-random"));
  EXPECT_FALSE(hit(lint_snippet("src/a.cpp",
                                "#include \"util/rng.h\"\n"
                                "int f(dyndisp::Rng& r) { "
                                "return static_cast<int>(r.below(6)); }\n"),
                   "determinism-random"));
  // A member merely NAMED rand is not a call of ::rand.
  EXPECT_FALSE(hit(lint_snippet("src/a.cpp", "struct S { int rand; };\n"),
                   "determinism-random"));
}

TEST(LintRuleWallclock, FlagsClockReadsOutsideBench) {
  const char* now_src =
      "#include <chrono>\n"
      "auto f() { return std::chrono::steady_clock::now(); }\n";
  EXPECT_TRUE(hit(lint_snippet("src/a.cpp", now_src),
                  "determinism-wallclock"));
  // The bench/ allowlist: same code, timer path.
  EXPECT_FALSE(hit(lint_snippet("bench/bench_a.cpp", now_src),
                   "determinism-wallclock"));
  EXPECT_TRUE(hit(lint_snippet("src/a.cpp",
                               "#include <ctime>\n"
                               "long f() { return time(nullptr); }\n"),
                  "determinism-wallclock"));
  // Member access spelled .time( / ->time( is not the C API.
  EXPECT_FALSE(hit(lint_snippet("src/a.cpp",
                                "double f(const R& r) { return r.time(); }\n"),
                   "determinism-wallclock"));
}

TEST(LintRuleUnorderedIter, FlagsIterationButNotMembership) {
  EXPECT_TRUE(hit(
      lint_snippet("src/a.cpp",
                   "#include <unordered_map>\n"
                   "int f(const std::unordered_map<int, int>& m) {\n"
                   "  int s = 0;\n"
                   "  for (const auto& [k, v] : m) s += v;\n"
                   "  return s;\n"
                   "}\n"),
      "determinism-unordered-iter"));
  EXPECT_TRUE(hit(lint_snippet("src/a.cpp",
                               "#include <unordered_set>\n"
                               "auto f(const std::unordered_set<int>& s) {\n"
                               "  return s.begin();\n"
                               "}\n"),
                  "determinism-unordered-iter"));
  EXPECT_FALSE(hit(lint_snippet("src/a.cpp",
                                "#include <unordered_set>\n"
                                "bool f(const std::unordered_set<int>& s) {\n"
                                "  return s.count(3) != 0;\n"
                                "}\n"),
                   "determinism-unordered-iter"));
  // Ordered containers iterate freely.
  EXPECT_FALSE(hit(lint_snippet("src/a.cpp",
                                "#include <map>\n"
                                "int f(const std::map<int, int>& m) {\n"
                                "  int s = 0;\n"
                                "  for (const auto& [k, v] : m) s += v;\n"
                                "  return s;\n"
                                "}\n"),
                   "determinism-unordered-iter"));
}

TEST(LintRuleMetering, FlagsUnserializedFieldAcrossHeaderAndImpl) {
  // Header declares; impl serializes only id_ -- k_ leaks past the meter.
  std::vector<SourceFile> files;
  files.push_back(SourceFile::from_string(
      "src/fake/robot.h",
      "class Robot {\n"
      " public:\n"
      "  void serialize(BitWriter& out) const;\n"
      " private:\n"
      "  unsigned id_ = 0;\n"
      "  unsigned k_ = 0;\n"
      "};\n"));
  files.push_back(SourceFile::from_string(
      "src/fake/robot.cpp",
      "#include \"fake/robot.h\"\n"
      "void Robot::serialize(BitWriter& out) const { out.write(id_, 8); }\n"));
  const LintReport report = lint_files(files, {});
  ASSERT_TRUE(hit(report, "metering-serialize-fields"));
  bool flagged_k = false;
  for (const Diagnostic& d : report.diagnostics)
    if (d.rule == "metering-serialize-fields")
      flagged_k = flagged_k || d.message.find("'k_'") != std::string::npos;
  EXPECT_TRUE(flagged_k);
}

TEST(LintRuleMetering, HeaderAloneWithoutImplMakesNoClaim) {
  const LintReport report =
      lint_snippet("src/fake/robot.h",
                   "class Robot {\n"
                   " public:\n"
                   "  void serialize(BitWriter& out) const;\n"
                   " private:\n"
                   "  unsigned id_ = 0;\n"
                   "};\n");
  EXPECT_FALSE(hit(report, "metering-serialize-fields"));
}

TEST(LintRuleMetering, ClassWithoutSerializeIsOutOfScope) {
  EXPECT_FALSE(hit(lint_snippet("src/a.h",
                                "class Config {\n"
                                " private:\n"
                                "  int knob_ = 0;\n"
                                "};\n"),
                   "metering-serialize-fields"));
}

TEST(LintRuleIncludeCycle, ReportsCycleOnce) {
  std::vector<SourceFile> files;
  files.push_back(
      SourceFile::from_string("src/x/a.h", "#include \"x/b.h\"\n"));
  files.push_back(
      SourceFile::from_string("src/x/b.h", "#include \"x/c.h\"\n"));
  files.push_back(
      SourceFile::from_string("src/x/c.h", "#include \"x/a.h\"\n"));
  const LintReport report = lint_files(files, {"hygiene-include-cycle"});
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_NE(report.diagnostics[0].message.find("src/x/a.h"),
            std::string::npos);
  EXPECT_NE(report.diagnostics[0].message.find("src/x/c.h"),
            std::string::npos);
}

TEST(LintRuleIncludeCycle, AcyclicTreeIsClean) {
  std::vector<SourceFile> files;
  files.push_back(
      SourceFile::from_string("src/x/a.h", "#include \"x/b.h\"\n"));
  files.push_back(SourceFile::from_string("src/x/b.h", "int b;\n"));
  files.push_back(SourceFile::from_string(
      "src/x/c.cpp", "#include \"x/a.h\"\n#include \"x/b.h\"\n"));
  EXPECT_TRUE(lint_files(files, {"hygiene-include-cycle"}).clean());
}

TEST(LintRuleSuppressionContract, UnknownRuleNameIsReported) {
  const LintReport report = lint_snippet(
      "src/a.cpp",
      "// NOLINTNEXTLINE-dyndisp(no-such-rule): typo goes unnoticed\n"
      "int x;\n");
  EXPECT_TRUE(hit(report, "suppression-contract"));
}


// ----------------------------------------------------- hot-path contracts

TEST(LintRuleHotpathAlloc, FlagsTransitiveAllocationFromHotRoot) {
  EXPECT_TRUE(hit(lint_snippet("src/a.cpp",
                               "int* helper() { return new int(1); }\n"
                               "DYNDISP_HOT\n"
                               "int tick() { return *helper(); }\n"),
                  "hotpath-alloc"));
  // The same allocation with no hot root anywhere: out of scope.
  EXPECT_FALSE(hit(lint_snippet("src/a.cpp",
                                "int* helper() { return new int(1); }\n"
                                "int setup() { return *helper(); }\n"),
                   "hotpath-alloc"));
  // DYNDISP_COLD is a reachability boundary: a hot root may call into an
  // explicitly-cold slow path without dragging its allocations onto the
  // hot path.
  EXPECT_FALSE(hit(lint_snippet("src/a.cpp",
                                "DYNDISP_COLD\n"
                                "int* rebuild() { return new int(1); }\n"
                                "DYNDISP_HOT\n"
                                "int tick() { return *rebuild(); }\n"),
                   "hotpath-alloc"));
}

TEST(LintRuleHotpathAlloc, RetainedMemberGrowthIsExempt) {
  // Growth into a trailing-underscore member is the retained-buffer idiom
  // (amortized away in steady state, which the memprobe test pins); growth
  // into anything else on the hot path is a per-round allocation.
  EXPECT_FALSE(hit(lint_snippet("src/a.cpp",
                                "struct R {\n"
                                "  DYNDISP_HOT\n"
                                "  void tick(int x) { buf_.push_back(x); }\n"
                                "  std::vector<int> buf_;\n"
                                "};\n"),
                   "hotpath-alloc"));
  EXPECT_TRUE(hit(
      lint_snippet("src/a.cpp",
                   "DYNDISP_HOT\n"
                   "void tick(std::vector<int>& out) { out.push_back(1); }\n"),
      "hotpath-alloc"));
}

TEST(LintRuleHotpathBlocking, FlagsLocksAndIoTransitively) {
  EXPECT_TRUE(hit(lint_snippet("src/a.cpp",
                               "void log_it(int x) { std::printf(\"%d\", x); }\n"
                               "DYNDISP_HOT\n"
                               "void tick(int x) { log_it(x); }\n"),
                  "hotpath-blocking"));
  EXPECT_TRUE(hit(lint_snippet(
                      "src/a.cpp",
                      "void guarded() { std::lock_guard<std::mutex> l(mu); }\n"
                      "DYNDISP_HOT\n"
                      "void tick() { guarded(); }\n"),
                  "hotpath-blocking"));
  // An explicitly-cold reporting path may lock and print.
  EXPECT_FALSE(hit(lint_snippet("src/a.cpp",
                                "DYNDISP_COLD\n"
                                "void report(int x) { std::printf(\"%d\", x); }\n"
                                "DYNDISP_HOT\n"
                                "void tick() {}\n"),
                   "hotpath-blocking"));
}

TEST(LintRuleDigestExclusion, FlagsStatsFieldsInDigestCodeOnly) {
  const std::string tagged =
      "struct DYNDISP_STATS Stats { int reuses = 0; };\n"
      "struct Res { Stats stats; int rounds = 0; };\n";
  EXPECT_TRUE(hit(
      lint_snippet("src/a.cpp",
                   tagged +
                       "int result_digest(const Res& r) "
                       "{ return r.stats.reuses; }\n"),
      "digest-exclusion"));
  // The same field read outside digest/serialize code: observability is
  // exactly what the counters are FOR.
  EXPECT_FALSE(hit(lint_snippet("src/a.cpp",
                                tagged +
                                    "int report(const Res& r) "
                                    "{ return r.stats.reuses; }\n"),
                   "digest-exclusion"));
  // A digest over untagged fields: fine.
  EXPECT_FALSE(hit(lint_snippet("src/a.cpp",
                                tagged +
                                    "int result_digest(const Res& r) "
                                    "{ return r.rounds; }\n"),
                   "digest-exclusion"));
}

// ----------------------------------------------------------------- indexer

TEST(LintIndex, RawStringWithParenDoesNotFabricateCalls) {
  const SourceFile f = SourceFile::from_string(
      "src/a.cpp",
      "int parse() {\n"
      "  const char* re = R\"(evil( [a-z]+ x))\";\n"
      "  return helper(re);\n"
      "}\n");
  const SymbolIndex idx = build_index({&f});
  ASSERT_EQ(idx.defs.size(), 1u);
  EXPECT_EQ(idx.defs[0].qualified, "parse");
  // Exactly one call: 'evil(' lives inside the raw string and is opaque.
  ASSERT_EQ(idx.defs[0].calls.size(), 1u);
  EXPECT_EQ(idx.defs[0].calls[0].callee, "helper");
}

TEST(LintIndex, LineContinuationInsideCallExpression) {
  const SourceFile f = SourceFile::from_string("src/a.cpp",
                                               "int wrap() {\n"
                                               "  return helper(1, \\\n"
                                               "                2);\n"
                                               "}\n"
                                               "int after() { return 0; }\n");
  const SymbolIndex idx = build_index({&f});
  ASSERT_EQ(idx.defs.size(), 2u);
  EXPECT_EQ(idx.defs[0].qualified, "wrap");
  ASSERT_EQ(idx.defs[0].calls.size(), 1u);
  EXPECT_EQ(idx.defs[0].calls[0].callee, "helper");
  // The spliced call did not swallow the following definition.
  EXPECT_EQ(idx.defs[1].qualified, "after");
}

TEST(LintIndex, OutOfLineMemberDefGetsNestedQualifiedName) {
  const SourceFile f = SourceFile::from_string(
      "src/a.cpp", "void sim::core::Engine::tick() { helper(); }\n");
  const SymbolIndex idx = build_index({&f});
  ASSERT_EQ(idx.defs.size(), 1u);
  EXPECT_EQ(idx.defs[0].name, "tick");
  EXPECT_EQ(idx.defs[0].qualified, "sim::core::Engine::tick");
  ASSERT_EQ(idx.defs[0].calls.size(), 1u);
  EXPECT_EQ(idx.defs[0].calls[0].callee, "helper");
}

TEST(LintIndex, HotReachabilityStopsAtColdBoundaries) {
  const SourceFile f =
      SourceFile::from_string("src/a.cpp",
                              "void leaf() {}\n"
                              "DYNDISP_COLD\n"
                              "void rebuild() { leaf(); }\n"
                              "DYNDISP_HOT\n"
                              "void tick() { rebuild(); leaf(); }\n");
  const SymbolIndex idx = build_index({&f});
  ASSERT_EQ(idx.defs.size(), 3u);
  const std::vector<HotReach> reach = hot_reachability(idx);
  ASSERT_EQ(reach.size(), 3u);
  EXPECT_TRUE(reach[2].reachable);   // tick: the root itself
  EXPECT_FALSE(reach[1].reachable);  // rebuild: cold boundary
  EXPECT_TRUE(reach[0].reachable);   // leaf: called directly from tick
}

// ---------------------------------------------------------------- registry

TEST(LintRegistryTest, NamesAreSortedAndConstructible) {
  const std::vector<std::string> names = LintRegistry::instance().names();
  ASSERT_GE(names.size(), 6u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const std::string& name : names) {
    EXPECT_TRUE(LintRegistry::instance().has(name));
    EXPECT_EQ(LintRegistry::instance().make(name)->name(), name);
    EXPECT_FALSE(LintRegistry::instance().description(name).empty());
  }
}

TEST(LintRegistryTest, UnknownRuleThrowsNamingTheKey) {
  try {
    (void)LintRegistry::instance().make("no-such-rule");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("no-such-rule"), std::string::npos);
  }
}

// ---------------------------------------------------------------- fixtures

struct PlantedFixture {
  const char* file;
  const char* rule;
};

TEST(LintFixtures, EachPlantedFixtureIsCaughtByItsRule) {
  const PlantedFixture planted[] = {
      {"planted_random.cpp", "determinism-random"},
      {"planted_wallclock.cpp", "determinism-wallclock"},
      {"planted_unordered_iter.cpp", "determinism-unordered-iter"},
      {"planted_metering.h", "metering-serialize-fields"},
      {"planted_bare_suppression.cpp", "suppression-contract"},
      {"planted_hotpath_alloc.cpp", "hotpath-alloc"},
      {"planted_hotpath_blocking.cpp", "hotpath-blocking"},
      {"planted_digest_exclusion.cpp", "digest-exclusion"},
  };
  for (const PlantedFixture& p : planted) {
    LintOptions options;
    options.paths = {fixtures_dir() + "/" + p.file};
    const LintReport report = lint_paths(options);
    EXPECT_TRUE(hit(report, p.rule))
        << p.file << " was not caught by " << p.rule;
  }
}

TEST(LintFixtures, BareSuppressionDoesNotSuppress) {
  LintOptions options;
  options.paths = {fixtures_dir() + "/planted_bare_suppression.cpp"};
  const LintReport report = lint_paths(options);
  // The underlying finding survives AND the bare directive is reported.
  EXPECT_TRUE(hit(report, "determinism-random"));
  EXPECT_TRUE(hit(report, "suppression-contract"));
  EXPECT_EQ(report.suppressed, 0u);
}

TEST(LintFixtures, PlantedIncludeCycleIsCaught) {
  LintOptions options;
  options.paths = {fixtures_dir() + "/planted_cycle_a.h",
                   fixtures_dir() + "/planted_cycle_b.h"};
  EXPECT_TRUE(hit(lint_paths(options), "hygiene-include-cycle"));
}

TEST(LintFixtures, JustifiedSuppressionsPass) {
  LintOptions options;
  options.paths = {fixtures_dir() + "/suppressed_ok.cpp"};
  const LintReport report = lint_paths(options);
  EXPECT_TRUE(report.clean()) << "unexpected findings in suppressed_ok.cpp";
  EXPECT_GT(report.suppressed, 0u);
}

TEST(LintFixtures, CleanFixturePassesWithZeroSuppressions) {
  LintOptions options;
  options.paths = {fixtures_dir() + "/clean.cpp"};
  const LintReport report = lint_paths(options);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.suppressed, 0u);
}

// ------------------------------------------------------------------ driver

TEST(LintDriver, TreeWalkSkipsFixturesButExplicitRootsDoNot) {
  // Walking tests/ must not pick up the planted fixtures (they exist to
  // fail); naming the fixture dir as a root must.
  const std::vector<std::string> via_tree =
      collect_sources({repo_root() + "/tests"});
  for (const std::string& path : via_tree)
    EXPECT_EQ(path.find("lint_fixtures"), std::string::npos) << path;
  const std::vector<std::string> via_root =
      collect_sources({fixtures_dir()});
  EXPECT_GE(via_root.size(), 8u);
}

TEST(LintDriver, CollectIsSortedAndDeduplicated) {
  const std::vector<std::string> files =
      collect_sources({fixtures_dir(), fixtures_dir() + "/clean.cpp"});
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
  EXPECT_EQ(std::adjacent_find(files.begin(), files.end()), files.end());
}

TEST(LintDriver, MissingPathThrows) {
  EXPECT_THROW((void)collect_sources({"no/such/path"}), std::runtime_error);
}

TEST(LintDriver, RepoTreeIsCleanUnderEveryRule) {
  // The acceptance gate, in-process: every rule over src + tests + tools.
  LintOptions options;
  options.paths = {repo_root() + "/src", repo_root() + "/tests",
                   repo_root() + "/tools"};
  const LintReport report = lint_paths(options);
  std::string detail;
  for (const Diagnostic& d : report.diagnostics)
    detail += d.file + ":" + std::to_string(d.line) + " [" + d.rule + "] " +
              d.message + "\n";
  EXPECT_TRUE(report.clean()) << detail;
  EXPECT_GT(report.files_scanned, 100u);
}

TEST(LintDriver, JustifiedSuppressionTotalIsPinned) {
  // The suppression audit, as a regression pin: every NOLINT-dyndisp
  // directive in the tree was reviewed when this number was set, so a new
  // suppression (or a rule change that re-fires one) must update this
  // count DELIBERATELY -- the diff review is the audit.
  LintOptions options;
  options.paths = {repo_root() + "/src", repo_root() + "/tests",
                   repo_root() + "/tools"};
  const LintReport report = lint_paths(options);
  EXPECT_EQ(report.suppressed, 34u)
      << "justified-suppression total changed; re-audit the directives and "
         "update the pin";
}

// -------------------------------------------------------------- self-check

TEST(LintSelfCheck, AllRulesProveTheirPlantedViolations) {
  const SelfCheckResult result = run_self_check();
  EXPECT_TRUE(result.ok) << result.detail;
}

}  // namespace
}  // namespace dyndisp::lint
