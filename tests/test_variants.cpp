// Tests for the design-variant knobs: the BFS spanning-tree alternative the
// paper mentions in Algorithm 2, the per-round path cap, and the
// semi-synchronous activation model (the paper's future-work direction).
// All variants must preserve the correctness lemmas; only constants change.
#include <gtest/gtest.h>

#include <set>

#include "analysis/verify.h"
#include "core/component.h"
#include "core/disjoint_paths.h"
#include "core/dispersion.h"
#include "core/planner.h"
#include "core/spanning_tree.h"
#include "dynamic/random_adversary.h"
#include "dynamic/star_star_adversary.h"
#include "dynamic/static_adversary.h"
#include "graph/builders.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "sim/sensing.h"
#include "util/rng.h"
#include "util/stats.h"

namespace dyndisp {
namespace {

using core::build_all_components;
using core::build_spanning_tree;
using core::build_spanning_tree_bfs;
using core::PlannerConfig;

// ---- BFS spanning tree ----

TEST(BfsTree, SpansComponentWithSameRoot) {
  Rng rng(31);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 4 + rng.below(20);
    const std::size_t k = 2 + rng.below(n - 1);
    const Graph g = builders::random_connected(n, rng.below(2 * n), rng);
    const Configuration conf = placement::uniform_random(n, k, rng);
    const auto packets = make_all_packets(g, conf, true);
    for (const auto& cg : build_all_components(packets)) {
      if (!cg.has_multiplicity()) continue;
      const auto dfs = build_spanning_tree(cg);
      const auto bfs = build_spanning_tree_bfs(cg);
      EXPECT_EQ(bfs.root(), dfs.root());
      EXPECT_EQ(bfs.size(), cg.size());
      // Every BFS tree edge is a component edge.
      for (const auto& tn : bfs.nodes()) {
        if (tn.parent == kNoRobot) continue;
        const auto* cn = cg.find(tn.name);
        ASSERT_NE(cn, nullptr);
        bool found = false;
        for (const auto& [port, nb] : cn->edges)
          found |= nb == tn.parent && port == tn.port_to_parent;
        EXPECT_TRUE(found);
      }
    }
  }
}

TEST(BfsTree, DepthsAreMinimal) {
  // BFS depth == hop distance in the component graph; DFS depth >= it.
  Rng rng(37);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 5 + rng.below(15);
    const std::size_t k = 3 + rng.below(n - 2);
    const Graph g = builders::random_connected(n, n, rng);
    const Configuration conf = placement::uniform_random(n, k, rng);
    const auto packets = make_all_packets(g, conf, true);
    for (const auto& cg : build_all_components(packets)) {
      if (!cg.has_multiplicity()) continue;
      const auto dfs = build_spanning_tree(cg);
      const auto bfs = build_spanning_tree_bfs(cg);
      for (const auto& tn : bfs.nodes()) {
        const auto* dfs_node = dfs.find(tn.name);
        ASSERT_NE(dfs_node, nullptr);
        EXPECT_LE(tn.depth, dfs_node->depth) << "BFS deeper than DFS";
      }
    }
  }
}

TEST(BfsTree, DisjointPathLemmasHold) {
  Rng rng(41);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 5 + rng.below(15);
    const std::size_t k = 3 + rng.below(n - 2);
    const Graph g = builders::random_connected(n, rng.below(n), rng);
    const Configuration conf = placement::uniform_random(n, k, rng);
    const auto packets = make_all_packets(g, conf, true);
    for (const auto& cg : build_all_components(packets)) {
      if (!cg.has_multiplicity()) continue;
      const auto bfs = build_spanning_tree_bfs(cg);
      const auto paths = core::disjoint_paths(cg, bfs);
      EXPECT_GE(paths.size(), 1u);  // Lemma 3 under BFS trees too
      std::set<RobotId> used;
      for (const auto& path : paths) {
        EXPECT_EQ(path.front(), bfs.root());
        for (std::size_t i = 1; i < path.size(); ++i)
          EXPECT_TRUE(used.insert(path[i]).second);
      }
    }
  }
}

// ---- End-to-end with variant configs ----

EngineOptions progress_options(Round max_rounds) {
  EngineOptions opt;
  opt.max_rounds = max_rounds;
  opt.record_progress = true;
  return opt;
}

class VariantSweep : public ::testing::TestWithParam<PlannerConfig> {};

TEST_P(VariantSweep, Theorem4BoundsHoldForEveryVariant) {
  const PlannerConfig config = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::size_t n = 18, k = 14;
    RandomAdversary adv(n, 6, seed);
    Rng rng(seed);
    Engine engine(adv, placement::uniform_random(n, k, rng),
                  core::dispersion_factory_with_config(config),
                  progress_options(10 * k));
    const RunResult r = engine.run();
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_TRUE(r.dispersed);
    EXPECT_TRUE(analysis::check_round_bound(r).empty())
        << analysis::check_round_bound(r);
    EXPECT_TRUE(analysis::check_progress_every_round(r).empty())
        << analysis::check_progress_every_round(r);
    EXPECT_TRUE(analysis::check_memory_bound(r).empty())
        << analysis::check_memory_bound(r);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, VariantSweep,
    ::testing::Values(
        PlannerConfig{PlannerConfig::Tree::kDfs, 0},   // the paper
        PlannerConfig{PlannerConfig::Tree::kBfs, 0},   // BFS trees
        PlannerConfig{PlannerConfig::Tree::kDfs, 1},   // one path per round
        PlannerConfig{PlannerConfig::Tree::kBfs, 1},
        PlannerConfig{PlannerConfig::Tree::kBfs, 2}),
    [](const ::testing::TestParamInfo<PlannerConfig>& param_info) {
      return std::string(param_info.param.tree == PlannerConfig::Tree::kBfs
                             ? "bfs"
                             : "dfs") +
             "_cap" + std::to_string(param_info.param.max_paths);
    });

TEST(Variants, BfsMeetsLowerBoundExactlyToo) {
  const std::size_t n = 15, k = 11;
  StarStarAdversary adv(n);
  Engine engine(adv, placement::rooted(n, k),
                core::dispersion_factory_with_config(
                    {PlannerConfig::Tree::kBfs, 0}),
                progress_options(10 * k));
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  EXPECT_EQ(r.rounds, k - 1);
}

TEST(Variants, PathCapIsSlowerOnBushyComponents) {
  // Star topology with many robots on the hub: multi-path serves several
  // robots per round, the cap-1 ablation serves one.
  const std::size_t n = 12, k = 9;
  StaticAdversary adv1(builders::star(n)), adv2(builders::star(n));
  Engine multi(adv1, placement::rooted(n, k, 0),
               core::dispersion_factory_with_config({}),
               progress_options(10 * k));
  Engine capped(adv2, placement::rooted(n, k, 0),
                core::dispersion_factory_with_config(
                    {PlannerConfig::Tree::kDfs, 1}),
                progress_options(10 * k));
  const RunResult rm = multi.run();
  const RunResult rc = capped.run();
  EXPECT_TRUE(rm.dispersed);
  EXPECT_TRUE(rc.dispersed);
  EXPECT_EQ(rc.rounds, k - 1);     // one robot placed per round
  EXPECT_LE(rm.rounds, rc.rounds); // multi-path can only be faster
}

// ---- Semi-synchronous activation ----

TEST(SemiSync, FullProbabilityMatchesSynchronous) {
  const std::size_t n = 14, k = 10;
  RandomAdversary adv1(n, 5, 3), adv2(n, 5, 3);
  EngineOptions sync = progress_options(10 * k);
  EngineOptions semi = progress_options(10 * k);
  semi.activation = Activation::kRandomSubset;
  semi.activation_probability = 1.0;
  Engine a(adv1, placement::rooted(n, k), core::dispersion_factory(), sync);
  Engine b(adv2, placement::rooted(n, k), core::dispersion_factory(), semi);
  const RunResult ra = a.run(), rb = b.run();
  EXPECT_EQ(ra.rounds, rb.rounds);
  EXPECT_TRUE(ra.final_config == rb.final_config);
}

class SemiSyncSweep : public ::testing::TestWithParam<double> {};

TEST_P(SemiSyncSweep, StillDispersesWithPartialActivation) {
  const double p = GetParam();
  const std::size_t n = 15, k = 11;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    RandomAdversary adv(n, 5, seed);
    EngineOptions opt = progress_options(
        static_cast<Round>(40.0 * static_cast<double>(k) / p));
    opt.activation = Activation::kRandomSubset;
    opt.activation_probability = p;
    opt.activation_seed = seed * 7;
    Engine engine(adv, placement::rooted(n, k), core::dispersion_factory(),
                  opt);
    const RunResult r = engine.run();
    SCOPED_TRACE("p=" + std::to_string(p) + " seed=" + std::to_string(seed));
    EXPECT_TRUE(r.dispersed);
    // Note: partial slides CAN transiently vacate singleton path nodes, so
    // the per-round progress lemma does not carry over -- only eventual
    // dispersion (asserted above) and the memory bound do:
    EXPECT_TRUE(analysis::check_memory_bound(r).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Probabilities, SemiSyncSweep,
                         ::testing::Values(0.9, 0.7, 0.5, 0.3));

TEST(SemiSync, RoundRobinSequentialSchedulerStillDisperses) {
  // The harshest classical weakening: exactly one robot acts per round.
  // Algorithm 4 still disperses: each designated mover eventually gets its
  // turn and plans are rebuilt from the live configuration every round.
  // (From a rooted start the ascending activation order even happens to
  // coincide with the planner's ascending mover choice, so rooted runs land
  // near k rounds; grouped starts pay the real sequential penalty.)
  const std::size_t n = 12, k = 8;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    RandomAdversary adv(n, 5, seed);
    Rng rng(seed);
    EngineOptions opt = progress_options(200 * k);
    opt.activation = Activation::kRoundRobin;
    Engine engine(adv, placement::grouped(n, k, 3, rng),
                  core::dispersion_factory(), opt);
    const RunResult r = engine.run();
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_TRUE(r.dispersed);
    EXPECT_GE(r.rounds, k - 1);
    EXPECT_TRUE(analysis::check_memory_bound(r).empty());
  }
}

TEST(SemiSync, RoundRobinSkipsDeadRobots) {
  const std::size_t n = 10, k = 6;
  RandomAdversary adv(n, 4, 2);
  EngineOptions opt = progress_options(500);
  opt.activation = Activation::kRoundRobin;
  Engine engine(adv, placement::rooted(n, k), core::dispersion_factory(),
                opt, FaultSchedule({{3, 2, CrashPhase::kBeforeCommunicate},
                                    {5, 4, CrashPhase::kBeforeCommunicate}}));
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  EXPECT_EQ(r.crashed, 2u);
}

TEST(SemiSync, LowActivationIsSlowerThanSynchronous) {
  const std::size_t n = 15, k = 11;
  Summary sync_rounds, semi_rounds;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    {
      RandomAdversary adv(n, 5, seed);
      Engine e(adv, placement::rooted(n, k), core::dispersion_factory(),
               progress_options(100 * k));
      sync_rounds.add(static_cast<double>(e.run().rounds));
    }
    {
      RandomAdversary adv(n, 5, seed);
      EngineOptions opt = progress_options(100 * k);
      opt.activation = Activation::kRandomSubset;
      opt.activation_probability = 0.3;
      opt.activation_seed = seed;
      Engine e(adv, placement::rooted(n, k), core::dispersion_factory(), opt);
      semi_rounds.add(static_cast<double>(e.run().rounds));
    }
  }
  EXPECT_LT(sync_rounds.mean(), semi_rounds.mean());
}

}  // namespace
}  // namespace dyndisp
