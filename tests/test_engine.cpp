// Tests for engine mechanics: model-requirement enforcement, arrival ports,
// state exchange, round accounting, invalid-port rejection, traces, and the
// adversary plan probe.
#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "core/dispersion.h"
#include "dynamic/random_adversary.h"
#include "dynamic/static_adversary.h"
#include "graph/builders.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace dyndisp {
namespace {

// A probe-ready scripted robot for engine mechanics tests: takes the exit
// ports it was constructed with, one per round, then stays.
class ScriptedRobot final : public RobotAlgorithm {
 public:
  ScriptedRobot(RobotId id, std::vector<Port> moves)
      : id_(id), moves_(std::move(moves)) {}

  std::unique_ptr<RobotAlgorithm> clone() const override {
    return std::make_unique<ScriptedRobot>(*this);
  }
  Port step(const RobotView& view) override {
    last_view_degree_ = view.degree;
    last_arrival_ = view.arrival_port;
    const std::size_t i = next_++;
    return i < moves_.size() ? moves_[i] : kInvalidPort;
  }
  void serialize(BitWriter& out) const override {
    out.write(next_, 16);  // the cursor is the persistent state
  }
  std::string name() const override { return "scripted"; }
  bool requires_global_comm() const override { return false; }
  bool requires_neighborhood() const override { return false; }

  Port last_arrival() const { return last_arrival_; }

 private:
  // NOLINTNEXTLINE-dyndisp(metering-serialize-fields): test probe identity,
  // fixed at construction; the metered state is only the cursor.
  RobotId id_;
  // NOLINTNEXTLINE-dyndisp(metering-serialize-fields): the immutable test
  // script (program, not state); the cursor next_ is what is metered.
  std::vector<Port> moves_;
  std::size_t next_ = 0;
  // NOLINTNEXTLINE-dyndisp(metering-serialize-fields): engine-observation
  // scratch read back by assertions, not robot memory.
  std::size_t last_view_degree_ = 0;
  // NOLINTNEXTLINE-dyndisp(metering-serialize-fields): engine-observation
  // scratch read back by assertions, not robot memory.
  Port last_arrival_ = kInvalidPort;
};

TEST(Engine, RejectsNodeCountMismatch) {
  StaticAdversary adv(builders::path(4));
  EXPECT_THROW(Engine(adv, placement::rooted(5, 2), core::dispersion_factory(),
                      EngineOptions{}),
               std::invalid_argument);
}

TEST(Engine, EnforcesGlobalCommRequirement) {
  StaticAdversary adv(builders::path(4));
  EngineOptions opt;
  opt.comm = CommModel::kLocal;
  EXPECT_THROW(
      Engine(adv, placement::rooted(4, 2), core::dispersion_factory(), opt),
      std::invalid_argument);
}

TEST(Engine, EnforcesNeighborhoodRequirement) {
  StaticAdversary adv(builders::path(4));
  EngineOptions opt;
  opt.neighborhood_knowledge = false;
  EXPECT_THROW(
      Engine(adv, placement::rooted(4, 2), core::dispersion_factory(), opt),
      std::invalid_argument);
}

TEST(Engine, AllowModelMismatchOverrides) {
  StaticAdversary adv(builders::path(4));
  EngineOptions opt;
  opt.neighborhood_knowledge = false;
  opt.allow_model_mismatch = true;
  opt.max_rounds = 1;
  // Construction succeeds; the algorithm itself asserts on mismatched views,
  // so do not run it -- construction is what this test covers.
  EXPECT_NO_THROW(
      Engine(adv, placement::rooted(4, 2), core::dispersion_factory(), opt));
}

TEST(Engine, RejectsInvalidPortFromRobot) {
  StaticAdversary adv(builders::path(3));
  const AlgorithmFactory factory = [](RobotId id, std::size_t) {
    return std::make_unique<ScriptedRobot>(id, std::vector<Port>{7});
  };
  EngineOptions opt;
  opt.max_rounds = 3;
  Engine engine(adv, placement::rooted(3, 2), factory, opt);
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(Engine, ArrivalPortReportedNextRound) {
  // Path 0-1-2: robot 3 moves 0->1 in round 0 (via port 1); robots 1 and 2
  // keep a multiplicity at node 0, so round 1 still runs and robot 3
  // observes the port of node 1 through which it entered (port 1, the edge
  // back to node 0).
  StaticAdversary adv(builders::path(3));
  std::vector<ScriptedRobot*> instances;
  const AlgorithmFactory factory = [&](RobotId id, std::size_t) {
    auto robot = std::make_unique<ScriptedRobot>(
        id, id == 3 ? std::vector<Port>{1} : std::vector<Port>{});
    instances.push_back(robot.get());
    return robot;
  };
  EngineOptions opt;
  opt.max_rounds = 2;
  Engine engine(adv, placement::rooted(3, 3), factory, opt);
  const RunResult r = engine.run();
  EXPECT_FALSE(r.dispersed);  // robots 1,2 never separate (by script)
  ASSERT_EQ(instances.size(), 3u);
  EXPECT_EQ(instances[2]->last_arrival(), 1u);
}

TEST(Engine, TraceRecordsMovesAndProgress) {
  StaticAdversary adv(builders::path(4));
  EngineOptions opt;
  opt.record_trace = true;
  opt.max_rounds = 100;
  Engine engine(adv, placement::rooted(4, 3), core::dispersion_factory(), opt);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  ASSERT_EQ(r.trace.size(), r.rounds);
  std::size_t total_new = 0;
  for (const auto& rec : r.trace.records()) {
    EXPECT_EQ(rec.graph.node_count(), 4u);
    total_new += rec.newly_occupied;
    EXPECT_GE(rec.newly_occupied, 1u);  // Lemma 7 visible in the trace
  }
  EXPECT_EQ(total_new, 3u - 1u);  // from 1 occupied to 3 occupied
  EXPECT_FALSE(r.trace.describe_round(0).empty());
}

TEST(Engine, PacketsCountedPerOccupiedNode) {
  StaticAdversary adv(builders::path(5));
  EngineOptions opt;
  opt.max_rounds = 100;
  Engine engine(adv, placement::rooted(5, 3), core::dispersion_factory(), opt);
  const RunResult r = engine.run();
  // Round 0: 1 occupied node -> 1 packet; round 1: 2 -> 2 packets.
  EXPECT_EQ(r.packets_sent, 1u + 2u);
}

TEST(Engine, MaxRoundsStopsNonTerminatingRun) {
  // A robot that never moves on a multiplicity node never disperses.
  StaticAdversary adv(builders::path(3));
  const AlgorithmFactory factory = [](RobotId id, std::size_t) {
    return std::make_unique<ScriptedRobot>(id, std::vector<Port>{});
  };
  EngineOptions opt;
  opt.max_rounds = 17;
  Engine engine(adv, placement::rooted(3, 2), factory, opt);
  const RunResult r = engine.run();
  EXPECT_FALSE(r.dispersed);
  EXPECT_EQ(r.rounds, 17u);
  EXPECT_EQ(r.stalled_rounds, 17u);
}

TEST(Engine, StalledRoundsZeroForAlgorithmFour) {
  RandomAdversary adv(10, 4, 3);
  EngineOptions opt;
  opt.max_rounds = 100;
  Engine engine(adv, placement::rooted(10, 8), core::dispersion_factory(),
                opt);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  EXPECT_EQ(r.stalled_rounds, 0u);
}

TEST(Engine, AlgorithmNameExposed) {
  StaticAdversary adv(builders::path(3));
  Engine engine(adv, placement::rooted(3, 2), core::dispersion_factory(),
                EngineOptions{});
  EXPECT_EQ(engine.algorithm_name(), "Dispersion_Dynamic(Alg4)");
}

// ---- experiment harness ----

TEST(Experiment, SweepAggregatesTrials) {
  analysis::TrialSpec spec;
  spec.adversary = [](std::uint64_t seed) -> std::unique_ptr<Adversary> {
    return std::make_unique<RandomAdversary>(12, 4, seed);
  };
  spec.placement = [](std::uint64_t seed) {
    Rng rng(seed);
    return placement::uniform_random(12, 9, rng);
  };
  spec.algorithm = core::dispersion_factory();
  spec.options.max_rounds = 1000;
  const analysis::SweepSummary s = analysis::run_sweep(spec, 10);
  EXPECT_EQ(s.trials, 10u);
  EXPECT_EQ(s.dispersed_count, 10u);
  EXPECT_EQ(s.rounds.count(), 10u);
  EXPECT_LE(s.rounds.max(), 9.0);  // k = 9: Theorem 4
}

TEST(Experiment, TrialsAreSeedDeterministic) {
  analysis::TrialSpec spec;
  spec.adversary = [](std::uint64_t seed) -> std::unique_ptr<Adversary> {
    return std::make_unique<RandomAdversary>(10, 3, seed);
  };
  spec.placement = [](std::uint64_t seed) {
    Rng rng(seed);
    return placement::uniform_random(10, 7, rng);
  };
  spec.algorithm = core::dispersion_factory();
  spec.options.max_rounds = 1000;
  const RunResult a = analysis::run_trial(spec, 42);
  const RunResult b = analysis::run_trial(spec, 42);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_TRUE(a.final_config == b.final_config);
}

}  // namespace
}  // namespace dyndisp
