// Chaos/property suite: random combinations of adversary, placement,
// planner variant, crash schedule, and activation model. Whatever the
// combination, the invariants that survive by design must hold:
//   * every adversary-emitted graph is valid (engine validates),
//   * the run disperses within a generous horizon,
//   * alive robots end on distinct nodes,
//   * metered memory stays at ceil(log2(k+1)) bits for Algorithm 4,
//   * under synchronous fault-free execution, rounds <= k (Theorem 4) and
//     the trace shows >= 1 newly occupied node per round (Lemma 7),
//   * the dynamic diameter and max degree of the emitted sequence are
//     consistent with the recorded trace.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/verify.h"
#include "campaign/registry.h"
#include "core/dispersion.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "util/bits.h"
#include "util/rng.h"

namespace dyndisp {
namespace {

/// The sweep draws adversaries from the campaign registry instead of a
/// hand-enumerated switch, so a newly registered adversary is chaos-tested
/// automatically. The impossibility traps are excluded: they exist to
/// PREVENT dispersion, which this suite asserts (their graph validity is
/// covered by test_conformance.cpp).
std::unique_ptr<Adversary> random_adversary(std::size_t n, Rng& rng) {
  static const std::vector<std::string> pool = [] {
    std::vector<std::string> names;
    for (const std::string& name :
         campaign::Registry::instance().adversary_names()) {
      if (name != "path-trap" && name != "clique-trap") names.push_back(name);
    }
    return names;
  }();
  // Consulted by the static adversaries only; torus is omitted because it
  // needs n >= 7 and the sweep goes down to n = 4.
  static const char* const kFamilies[] = {"path",   "cycle", "complete",
                                          "grid",   "btree", "random"};
  const std::string& name = pool[rng.below(pool.size())];
  const char* family = kFamilies[rng.below(6)];
  return campaign::Registry::instance().adversary(name, family, n,
                                                  rng.next_u64());
}

Configuration random_placement(std::size_t n, std::size_t k, Rng& rng) {
  switch (rng.below(3)) {
    case 0:
      return placement::rooted(n, k, static_cast<NodeId>(rng.below(n)));
    case 1:
      return placement::uniform_random(n, k, rng);
    default:
      return placement::grouped(
          n, k, 1 + rng.below(std::min(k, n) - 1 ? std::min(k, n) - 1 : 1),
          rng);
  }
}

core::PlannerConfig random_config(Rng& rng) {
  core::PlannerConfig config;
  config.tree = rng.chance(0.5) ? core::PlannerConfig::Tree::kBfs
                                : core::PlannerConfig::Tree::kDfs;
  config.max_paths = rng.below(3);  // 0 = unlimited, 1, 2
  return config;
}

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, InvariantsSurviveArbitraryCombinations) {
  Rng rng(GetParam() * 7919 + 13);
  const std::size_t requested_n = 4 + rng.below(28);

  auto adversary = random_adversary(requested_n, rng);
  // Families may round the requested size (grid, hypercube, torus); k and
  // the placement must fit the graphs the adversary actually emits.
  const std::size_t n = adversary->node_count();
  const std::size_t k = 2 + rng.below(n - 1);
  Configuration initial = random_placement(n, k, rng);

  const bool with_faults = rng.chance(0.4);
  const bool semi_sync = rng.chance(0.3);
  FaultSchedule faults = FaultSchedule::none();
  std::size_t f = 0;
  if (with_faults) {
    f = rng.below(k);
    Rng fr(rng.next_u64());
    faults = FaultSchedule::random(k, f, 2 * k + 1, fr);
  }

  EngineOptions opt;
  opt.record_progress = true;
  opt.record_trace = true;
  // Semi-synchronous runs have no theorem-backed round bound; the worst
  // registry combination observed (per-round port shuffle, DFS tree,
  // max_paths=1, activation ~0.5) needs ~500k rounds, so give them room.
  opt.max_rounds = semi_sync ? 1000 * k + 200 : 200 * k + 200;
  if (semi_sync) {
    opt.activation = Activation::kRandomSubset;
    opt.activation_probability = 0.4 + rng.uniform01() * 0.6;
    opt.activation_seed = rng.next_u64();
  }

  Engine engine(*adversary, initial,
                core::dispersion_factory_with_config(random_config(rng),
                                                     rng.chance(0.5)),
                opt, faults);
  const RunResult r = engine.run();

  SCOPED_TRACE("n=" + std::to_string(n) + " k=" + std::to_string(k) +
               " adversary=" + adversary->name() +
               " faults=" + std::to_string(f) +
               " semi_sync=" + std::to_string(semi_sync));

  // Eventual dispersion, always.
  EXPECT_TRUE(r.dispersed);
  EXPECT_TRUE(r.final_config.is_dispersed());

  // Memory: the robot ID, nothing else, under every combination.
  EXPECT_LE(r.max_memory_bits, bit_width_for(k + 1));

  // Synchronous fault-free runs obey the hard Theorem 4 bound and Lemma 7.
  if (!with_faults && !semi_sync) {
    EXPECT_LE(r.rounds, k);
    EXPECT_EQ(r.stalled_rounds, 0u);
    EXPECT_TRUE(analysis::check_progress_every_round(r).empty())
        << analysis::check_progress_every_round(r);
  }

  // Trace-derived dynamic quantities are well defined.
  DynamicGraphLog log;
  for (const auto& rec : r.trace.records()) log.record(rec.graph);
  if (log.rounds() > 0) {
    EXPECT_GE(log.dynamic_max_degree(), 1u);
    EXPECT_LT(log.dynamic_diameter(), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Range<std::uint64_t>(1, 121));

}  // namespace
}  // namespace dyndisp
