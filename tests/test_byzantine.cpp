// Tests for the Byzantine exploration (paper future-work #3, negative
// result): lying packets deadlock or degrade Algorithm 4 in measurable,
// specific ways -- and honest runs are bit-identical with the Byzantine
// machinery wired in but no liars configured.
#include <gtest/gtest.h>

#include <memory>

#include "core/dispersion.h"
#include "dynamic/random_adversary.h"
#include "dynamic/static_adversary.h"
#include "graph/builders.h"
#include "robots/placement.h"
#include "sim/byzantine.h"
#include "sim/engine.h"

namespace dyndisp {
namespace {

EngineOptions options_with(std::shared_ptr<const ByzantineModel> model,
                           Round horizon) {
  EngineOptions opt;
  opt.max_rounds = horizon;
  opt.record_progress = true;
  opt.byzantine = std::move(model);
  return opt;
}

TEST(Byzantine, NoLiarsIsExactlyHonest) {
  const std::size_t n = 14, k = 10;
  RandomAdversary adv1(n, 5, 9), adv2(n, 5, 9);
  Engine honest(adv1, placement::rooted(n, k), core::dispersion_factory(),
                options_with(nullptr, 10 * k));
  Engine wired(adv2, placement::rooted(n, k), core::dispersion_factory(),
               options_with(std::make_shared<ByzantineModel>(
                                std::set<RobotId>{},
                                ByzantineLie::kHideMultiplicity),
                            10 * k));
  const RunResult a = honest.run(), b = wired.run();
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_TRUE(a.final_config == b.final_config);
}

TEST(Byzantine, TamperRewritesOnlyLiarPackets) {
  const Graph g = builders::path(4);
  const Configuration conf(4, {0, 0, 1});
  auto packets = make_all_packets(g, conf, true);
  const auto original = packets;
  const ByzantineModel model({1}, ByzantineLie::kHideMultiplicity);
  model.tamper(packets);
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_EQ(packets[0].sender, 1u);
  EXPECT_EQ(packets[0].count, 1u);  // lied: really 2
  EXPECT_EQ(packets[0].robots, std::vector<RobotId>{1});
  EXPECT_EQ(packets[1], original[1]);  // honest packet untouched
}

TEST(Byzantine, HideMultiplicityDeadlocksItsNode) {
  // Robot 1 (the broadcaster of the rooted pile) lies "I am alone": the
  // node never looks like a multiplicity node, no spanning tree is ever
  // rooted there, and nobody ever leaves. A single liar defeats the
  // protocol outright -- the negative result.
  const std::size_t n = 10, k = 6;
  StaticAdversary adv(builders::path(n));
  auto model = std::make_shared<ByzantineModel>(
      std::set<RobotId>{1}, ByzantineLie::kHideMultiplicity);
  Engine engine(adv, placement::rooted(n, k), core::dispersion_factory(),
                options_with(model, 100 * k));
  const RunResult r = engine.run();
  EXPECT_FALSE(r.dispersed);
  EXPECT_EQ(r.max_occupied, 1u);  // literally nothing ever moved
  EXPECT_EQ(r.total_moves, 0u);
}

TEST(Byzantine, HideMultiplicityOffTheBroadcasterIsHarmless) {
  // A liar that is not its node's smallest robot never broadcasts, so the
  // same lie has no effect: dispersion completes within Theorem 4's bound.
  const std::size_t n = 10, k = 6;
  StaticAdversary adv(builders::path(n));
  auto model = std::make_shared<ByzantineModel>(
      std::set<RobotId>{k}, ByzantineLie::kHideMultiplicity);
  Engine engine(adv, placement::rooted(n, k), core::dispersion_factory(),
                options_with(model, 10 * k));
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  EXPECT_LE(r.rounds, k);
}

TEST(Byzantine, HideEmptyNeighborsStallsNarrowFrontiers) {
  // Path graph, robots piled behind the liar: the only LeafNodeSet
  // candidate is the liar's node, and it claims to have no empty neighbor.
  // Algorithm 3 returns no paths; the component freezes (the graceful
  // degradation path in plan_component).
  const std::size_t n = 8;
  StaticAdversary adv(builders::path(n));
  // Robots {2,3}@0 and liar 1@1: component = nodes 0,1; node 1 is the only
  // node bordering an empty node (node 2), and robot 1 is its broadcaster.
  const Configuration conf = placement::explicit_positions(n, {1, 0, 0});
  auto model = std::make_shared<ByzantineModel>(
      std::set<RobotId>{1}, ByzantineLie::kHideEmptyNeighbors);
  Engine engine(adv, conf, core::dispersion_factory(),
                options_with(model, 200));
  const RunResult r = engine.run();
  EXPECT_FALSE(r.dispersed);
  EXPECT_EQ(r.total_moves, 0u);
}

TEST(Byzantine, ErraticMoverCannotStopOthersButBreaksItself) {
  // The erratic liar keeps wandering: the honest robots still spread out
  // (plans adapt every round), but dispersion as a stable configuration
  // can be broken indefinitely because the liar keeps crashing into
  // settled robots. We assert the honest robots' resilience -- max
  // occupied reaches at least k-1 -- without requiring termination.
  const std::size_t n = 14, k = 8;
  RandomAdversary adv(n, 5, 4);
  auto model = std::make_shared<ByzantineModel>(std::set<RobotId>{k},
                                                ByzantineLie::kErraticMoves);
  Engine engine(adv, placement::rooted(n, k), core::dispersion_factory(),
                options_with(model, 50 * k));
  const RunResult r = engine.run();
  EXPECT_GE(r.max_occupied, k - 1);
}

TEST(Byzantine, CrashToleranceIsNotByzantineTolerance) {
  // Contrast fixture for EXPERIMENTS.md: the same scenario where a CRASH
  // of robot 1 is tolerated perfectly (Theorem 5) deadlocks under a LIE by
  // robot 1.
  const std::size_t n = 10, k = 6;
  StaticAdversary adv1(builders::path(n)), adv2(builders::path(n));

  Engine crash_engine(adv1, placement::rooted(n, k),
                      core::dispersion_factory(), options_with(nullptr, 100),
                      FaultSchedule({{0, 1, CrashPhase::kBeforeCommunicate}}));
  const RunResult crashed = crash_engine.run();
  EXPECT_TRUE(crashed.dispersed);

  auto model = std::make_shared<ByzantineModel>(
      std::set<RobotId>{1}, ByzantineLie::kHideMultiplicity);
  Engine liar_engine(adv2, placement::rooted(n, k),
                     core::dispersion_factory(), options_with(model, 100));
  const RunResult lied = liar_engine.run();
  EXPECT_FALSE(lied.dispersed);
}

}  // namespace
}  // namespace dyndisp
