// Tests for packet assembly and robot views under the four model settings.
#include <gtest/gtest.h>

#include "graph/builders.h"
#include "robots/configuration.h"
#include "sim/sensing.h"

namespace dyndisp {
namespace {

// Path 0-1-2-3-4; robots: {1,2}@0, {3}@1, {4}@3.
struct Fixture {
  Graph g = builders::path(5);
  Configuration conf{5, {0, 0, 1, 3}};
};

TEST(Packets, FromMultiplicityNode) {
  Fixture f;
  const InfoPacket pkt = make_packet(f.g, f.conf, 0, true);
  EXPECT_EQ(pkt.sender, 1u);
  EXPECT_EQ(pkt.count, 2u);
  EXPECT_EQ(pkt.robots, (std::vector<RobotId>{1, 2}));
  EXPECT_EQ(pkt.degree, 1u);
  ASSERT_EQ(pkt.occupied_neighbors.size(), 1u);
  EXPECT_EQ(pkt.occupied_neighbors[0].min_robot, 3u);
  EXPECT_EQ(pkt.occupied_neighbors[0].count, 1u);
  EXPECT_EQ(pkt.occupied_neighbors[0].port, f.g.port_to(0, 1));
}

TEST(Packets, MiddleNodeSeesBothSides) {
  Fixture f;
  const InfoPacket pkt = make_packet(f.g, f.conf, 1, true);
  EXPECT_EQ(pkt.sender, 3u);
  EXPECT_EQ(pkt.degree, 2u);
  ASSERT_EQ(pkt.occupied_neighbors.size(), 1u);  // node 2 is empty
  EXPECT_EQ(pkt.occupied_neighbors[0].min_robot, 1u);
}

TEST(Packets, NoNeighborhoodSuppressesNeighborInfo) {
  Fixture f;
  const InfoPacket pkt = make_packet(f.g, f.conf, 0, false);
  EXPECT_EQ(pkt.sender, 1u);
  EXPECT_TRUE(pkt.occupied_neighbors.empty());
  EXPECT_EQ(pkt.degree, 1u);
}

TEST(Packets, AllPacketsOnePerOccupiedNodeSortedBySender) {
  Fixture f;
  const auto packets = make_all_packets(f.g, f.conf, true);
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0].sender, 1u);
  EXPECT_EQ(packets[1].sender, 3u);
  EXPECT_EQ(packets[2].sender, 4u);
}

TEST(Packets, DeadRobotsLeaveNoFootprint) {
  Fixture f;
  f.conf.kill(3);  // vacates node 1
  const auto packets = make_all_packets(f.g, f.conf, true);
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_EQ(packets[0].sender, 1u);
  EXPECT_EQ(packets[1].sender, 4u);
  // Node 0's packet no longer lists node 1 as occupied.
  EXPECT_TRUE(packets[0].occupied_neighbors.empty());
}

TEST(Views, GlobalWithNeighborhood) {
  Fixture f;
  const auto packets = make_all_packets(f.g, f.conf, true);
  const RobotView v =
      make_view(f.g, f.conf, 2, 7, CommModel::kGlobal, true, packets);
  EXPECT_EQ(v.self, 2u);
  EXPECT_EQ(v.round, 7u);
  EXPECT_EQ(v.k, 4u);
  EXPECT_EQ(v.degree, 1u);
  EXPECT_EQ(v.colocated, (std::vector<RobotId>{1, 2}));
  EXPECT_TRUE(v.global_comm);
  EXPECT_EQ(v.packets().size(), 3u);
  EXPECT_TRUE(v.neighborhood_knowledge);
  EXPECT_EQ(v.empty_neighbor_count, 0u);  // node 0's only neighbor occupied
}

TEST(Views, EmptyPortsListedAscending) {
  Fixture f;
  const RobotView v =
      make_view(f.g, f.conf, 4, 0, CommModel::kGlobal, true,
                make_all_packets(f.g, f.conf, true));
  // Node 3 neighbors: 2 (empty) and 4 (empty).
  EXPECT_EQ(v.empty_neighbor_count, 2u);
  ASSERT_EQ(v.empty_ports.size(), 2u);
  EXPECT_LT(v.empty_ports[0], v.empty_ports[1]);
  EXPECT_TRUE(v.occupied_neighbors.empty());
}

TEST(Views, LocalModelGetsNoPackets) {
  Fixture f;
  const RobotView v =
      make_view(f.g, f.conf, 3, 0, CommModel::kLocal, true, nullptr);
  EXPECT_FALSE(v.global_comm);
  EXPECT_TRUE(v.packets().empty());
  EXPECT_TRUE(v.neighborhood_knowledge);
  EXPECT_EQ(v.occupied_neighbors.size(), 1u);
}

TEST(Views, NoNeighborhoodHidesOccupancy) {
  Fixture f;
  const auto packets = make_all_packets(f.g, f.conf, false);
  const RobotView v =
      make_view(f.g, f.conf, 3, 0, CommModel::kGlobal, false, packets);
  EXPECT_FALSE(v.neighborhood_knowledge);
  EXPECT_TRUE(v.occupied_neighbors.empty());
  EXPECT_TRUE(v.empty_ports.empty());
  EXPECT_EQ(v.degree, 2u);  // own degree is observable (ports 1..deg exist)
}

}  // namespace
}  // namespace dyndisp
