// Tests for configurations and initial placements.
#include <gtest/gtest.h>

#include "robots/configuration.h"
#include "robots/placement.h"
#include "util/rng.h"

namespace dyndisp {
namespace {

TEST(Configuration, BasicAccessors) {
  Configuration c(5, {0, 0, 3});
  EXPECT_EQ(c.robot_count(), 3u);
  EXPECT_EQ(c.node_count(), 5u);
  EXPECT_EQ(c.position(1), 0u);
  EXPECT_EQ(c.position(3), 3u);
  EXPECT_EQ(c.alive_count(), 3u);
}

TEST(Configuration, OccupancyAndMultiplicity) {
  Configuration c(6, {0, 0, 2, 2, 2});
  const auto occ = c.occupancy();
  EXPECT_EQ(occ, (std::vector<std::size_t>{2, 0, 3, 0, 0, 0}));
  EXPECT_EQ(c.occupied_nodes(), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(c.multiplicity_nodes(), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(c.occupied_count(), 2u);
  EXPECT_FALSE(c.is_dispersed());
}

TEST(Configuration, RobotsAtSorted) {
  Configuration c(5, {1, 0, 1, 1});
  EXPECT_EQ(c.robots_at(1), (std::vector<RobotId>{1, 3, 4}));
  EXPECT_EQ(c.robots_at(2), std::vector<RobotId>{});
}

TEST(Configuration, DispersedDetection) {
  Configuration c(4, {0, 1, 2});
  EXPECT_TRUE(c.is_dispersed());
  c.set_position(3, 1);
  EXPECT_FALSE(c.is_dispersed());
}

TEST(Configuration, KillRemovesFromEverything) {
  Configuration c(3, {0, 0, 1});
  c.kill(2);
  EXPECT_EQ(c.alive_count(), 2u);
  EXPECT_FALSE(c.alive(2));
  EXPECT_EQ(c.robots_at(0), std::vector<RobotId>{1});
  EXPECT_TRUE(c.is_dispersed());  // remaining robots are alone
  EXPECT_EQ(c.occupancy()[0], 1u);
}

TEST(Configuration, KillIdempotent) {
  Configuration c(3, {0, 1});
  c.kill(1);
  c.kill(1);
  EXPECT_EQ(c.alive_count(), 1u);
}

TEST(Configuration, EmptyOfRobotsIsVacuouslyDispersed) {
  Configuration c(3, {0, 0});
  c.kill(1);
  c.kill(2);
  EXPECT_TRUE(c.is_dispersed());
  EXPECT_EQ(c.occupied_count(), 0u);
}

TEST(Placement, Rooted) {
  const Configuration c = placement::rooted(10, 6, 4);
  EXPECT_EQ(c.occupied_nodes(), std::vector<NodeId>{4});
  EXPECT_EQ(c.robots_at(4).size(), 6u);
}

TEST(Placement, UniformRandomInRange) {
  Rng rng(3);
  const Configuration c = placement::uniform_random(12, 12, rng);
  for (RobotId id = 1; id <= 12; ++id) EXPECT_LT(c.position(id), 12u);
}

TEST(Placement, UniformRandomDeterministic) {
  Rng a(5), b(5);
  const Configuration x = placement::uniform_random(20, 10, a);
  const Configuration y = placement::uniform_random(20, 10, b);
  EXPECT_EQ(x, y);
}

TEST(Placement, GroupedSpreadsEvenly) {
  Rng rng(7);
  const Configuration c = placement::grouped(20, 10, 4, rng);
  EXPECT_EQ(c.occupied_count(), 4u);
  for (const NodeId v : c.occupied_nodes()) {
    const auto count = c.robots_at(v).size();
    EXPECT_GE(count, 2u);
    EXPECT_LE(count, 3u);
  }
}

TEST(Placement, GroupedSingleGroupIsRooted) {
  Rng rng(7);
  const Configuration c = placement::grouped(10, 5, 1, rng);
  EXPECT_EQ(c.occupied_count(), 1u);
}

TEST(Placement, Figure1Shape) {
  const Configuration c = placement::figure1(10, 6);
  EXPECT_EQ(c.robots_at(0), (std::vector<RobotId>{1, 2}));  // doubled end v
  for (NodeId v = 1; v <= 4; ++v) EXPECT_EQ(c.robots_at(v).size(), 1u);
  EXPECT_EQ(c.occupied_count(), 5u);  // k - 1 occupied nodes
}

TEST(Placement, ExplicitPositions) {
  const Configuration c = placement::explicit_positions(4, {3, 3, 0});
  EXPECT_EQ(c.position(1), 3u);
  EXPECT_EQ(c.multiplicity_nodes(), std::vector<NodeId>{3});
}

}  // namespace
}  // namespace dyndisp
