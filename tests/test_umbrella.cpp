// The umbrella header must compile standalone and expose the full API.
#include "dyndisp.h"

#include <gtest/gtest.h>

namespace dyndisp {
namespace {

TEST(Umbrella, EndToEndThroughSingleInclude) {
  RandomAdversary adversary(10, 4, 1);
  Engine engine(adversary, placement::rooted(10, 6),
                core::dispersion_factory(), EngineOptions{});
  const RunResult result = engine.run();
  EXPECT_TRUE(result.dispersed);
  EXPECT_LE(result.rounds, 6u);
}

}  // namespace
}  // namespace dyndisp
