// Golden packet-trace fixtures: the wire format is an observable.
//
// EngineOptions::packet_observer reports, for every executed global-comm
// round, the broadcast's (packet count, total wire bits, packet digest).
// This file replays one Table-I tuple per comm model against checked-in
// per-round traces (tests/golden/), on BOTH packet backends
// (flat_packets on and off), so any future drift in packet contents, bit
// metering, or the digest itself fails loudly with a per-round diff
// instead of a silent digest change rippling through the differential
// oracles.
//
// Regenerating (only when the wire format changes ON PURPOSE):
//   DYNDISP_REGEN_GOLDEN=1 ./build/tests/test_packet_golden
// rewrites the fixtures in the source tree; the diff is the review
// artifact.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/dfs_dispersion.h"
#include "check/trial.h"
#include "core/dispersion.h"
#include "dynamic/random_adversary.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "sim/packet_arena.h"

#ifndef DYNDISP_GOLDEN_DIR
#error "DYNDISP_GOLDEN_DIR must point at tests/golden (set by CMake)"
#endif

namespace dyndisp {
namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

/// One pinned tuple: the fixture file plus everything needed to re-run it.
struct GoldenTuple {
  const char* file;
  const char* label;
  CommModel comm;
  bool neighborhood;
  AlgorithmFactory factory;
};

// One Table-I tuple per comm model, both on the n=36/k=24 random-adversary
// instance the SoA determinism suite already pins. The local tuple's
// per-round trace is empty BY CONTRACT -- local comm never broadcasts --
// so its fixture pins exactly that, plus the run totals.
const GoldenTuple kTuples[] = {
    {"packets_global_alg4_n36_k24.txt", "global+nbhd (Algorithm 4, memoized)",
     CommModel::kGlobal, true, core::dispersion_factory_memoized()},
    {"packets_local_dfs_n36_k24.txt", "local-only (DFS dispersion)",
     CommModel::kLocal, false, baselines::dfs_dispersion_factory()},
};

/// Runs the tuple with the observer recording and renders the trace: one
/// "round R packets P bits B digest X" line per executed global-comm round
/// and a final "total ..." line covering the whole run.
std::string render_trace(const GoldenTuple& t, bool flat_packets) {
  const std::size_t n = 36, k = 24;
  RandomAdversary adv(n, n / 3, 7);
  std::ostringstream os;
  EngineOptions opt;
  opt.comm = t.comm;
  opt.neighborhood_knowledge = t.neighborhood;
  opt.max_rounds = 200;
  opt.flat_packets = flat_packets;
  opt.packet_observer = [&os](Round r, std::size_t packets, std::size_t bits,
                              std::uint64_t digest) {
    os << "round " << r << " packets " << packets << " bits " << bits
       << " digest " << hex64(digest) << '\n';
  };
  Engine engine(adv, placement::rooted(n, k), t.factory, opt);
  const RunResult res = engine.run();
  os << "total rounds " << res.rounds << " packets " << res.packets_sent
     << " bits " << res.packet_bits_sent << " run-digest "
     << hex64(check::digest_run(res)) << '\n';
  return os.str();
}

std::string fixture_path(const GoldenTuple& t) {
  return std::string(DYNDISP_GOLDEN_DIR) + "/" + t.file;
}

/// Fixture body with comment lines stripped (the header documents the
/// tuple for humans; the trace is what is pinned).
std::string read_fixture(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden fixture " << path
                         << " (regenerate with DYNDISP_REGEN_GOLDEN=1)";
  std::ostringstream body;
  std::string line;
  while (std::getline(in, line))
    if (line.empty() || line[0] != '#') body << line << '\n';
  return body.str();
}

/// Line-by-line comparison so a drift names the first diverging round.
void expect_trace_equal(const std::string& expected, const std::string& got,
                        const std::string& what) {
  SCOPED_TRACE(what);
  std::istringstream a(expected), b(got);
  std::string la, lb;
  std::size_t lineno = 0;
  while (true) {
    const bool ha = static_cast<bool>(std::getline(a, la));
    const bool hb = static_cast<bool>(std::getline(b, lb));
    ++lineno;
    if (!ha && !hb) break;
    ASSERT_EQ(ha, hb) << "trace length differs at line " << lineno
                      << " (fixture vs run)";
    ASSERT_EQ(la, lb) << "wire-format drift at line " << lineno;
  }
}

bool regen_requested() {
  const char* env = std::getenv("DYNDISP_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

TEST(PacketGolden, TracesMatchFixturesOnBothBackends) {
  for (const GoldenTuple& t : kTuples) {
    const std::string flat = render_trace(t, /*flat_packets=*/true);
    const std::string legacy = render_trace(t, /*flat_packets=*/false);
    // Both backends must render the identical trace before either is
    // compared to the fixture: the fixture pins the FORMAT, this pins
    // that the backends cannot drift apart between regenerations.
    expect_trace_equal(flat, legacy,
                       std::string(t.label) + " flat vs legacy");

    if (regen_requested()) {
      std::ofstream out(fixture_path(t));
      ASSERT_TRUE(out.good()) << "cannot write " << fixture_path(t);
      out << "# golden packet trace: " << t.label << '\n'
          << "# tuple: n=36 k=24 rooted placement, RandomAdversary(36, 12, "
             "seed 7), max_rounds=200\n"
          << "# format: one line per executed global-comm round, then run "
             "totals\n"
          << "# regenerate: DYNDISP_REGEN_GOLDEN=1 ./test_packet_golden\n"
          << flat;
      continue;
    }
    const std::string fixture = read_fixture(fixture_path(t));
    if (fixture.empty()) continue;  // read_fixture already failed the test
    expect_trace_equal(fixture, flat, std::string(t.label) + " vs fixture");
  }
}

TEST(PacketGolden, LocalCommNeverBroadcasts) {
  // The local fixture's empty per-round section is a real pin: if the
  // engine ever starts assembling broadcasts for local comm, this fails
  // before the fixture diff does.
  const std::string trace = render_trace(kTuples[1], true);
  // The whole trace is the totals line: no per-round broadcast ever fired.
  EXPECT_EQ(trace.rfind("total rounds ", 0), 0u) << trace;
  EXPECT_NE(trace.find(" packets 0 bits 0 "), std::string::npos) << trace;
}

}  // namespace
}  // namespace dyndisp
