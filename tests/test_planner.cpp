// Tests for the per-round sliding plan (Algorithm 4's compute phase) and
// the plan cache.
#include <gtest/gtest.h>

#include "core/planner.h"
#include "graph/builders.h"
#include "robots/configuration.h"
#include "robots/placement.h"
#include "sim/sensing.h"
#include "util/rng.h"

namespace dyndisp {
namespace {

using core::MoveDirective;
using core::plan_round;
using core::PlanCache;
using core::SlidePlan;

// The worked example of test_core_structures.cpp.
struct Worked {
  Graph g = Graph::from_edges(
      8, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}});
  Configuration conf{8, {0, 1, 2, 0, 5, 5, 6}};
  std::vector<InfoPacket> packets = make_all_packets(g, conf, true);
};

TEST(Planner, WorkedExampleExactPlan) {
  Worked w;
  const SlidePlan plan = plan_round(w.packets);
  // Component A: path 1->2->3 slides robots 4 (from root via port 1),
  // 2 (interior via port 2), 3 (leaf exits to an empty neighbor).
  // Component B: root's trivial path sends robot 6 to an empty neighbor.
  ASSERT_EQ(plan.movers.size(), 4u);
  EXPECT_EQ(plan.movers.at(4), (MoveDirective{1, false}));
  EXPECT_EQ(plan.movers.at(2), (MoveDirective{2, false}));
  EXPECT_EQ(plan.movers.at(3), (MoveDirective{kInvalidPort, true}));
  EXPECT_EQ(plan.movers.at(6), (MoveDirective{kInvalidPort, true}));
  EXPECT_FALSE(plan.movers.count(1));  // settled smallest IDs stay
  EXPECT_FALSE(plan.movers.count(5));
  EXPECT_FALSE(plan.movers.count(7));
}

TEST(Planner, DispersedRoundPlansNothing) {
  const Graph g = builders::cycle(5);
  const Configuration conf(5, {0, 2, 4});
  const SlidePlan plan = plan_round(make_all_packets(g, conf, true));
  EXPECT_TRUE(plan.movers.empty());
}

TEST(Planner, RootedConfigurationUsesTrivialPath) {
  const Graph g = builders::star(6);
  const Configuration conf = placement::rooted(6, 4, 0);
  const SlidePlan plan = plan_round(make_all_packets(g, conf, true));
  // Single component, single node: exactly one robot exits per round.
  ASSERT_EQ(plan.movers.size(), 1u);
  const auto& [mover, directive] = *plan.movers.begin();
  EXPECT_EQ(mover, 2u);  // robots at the root are {1,2,3,4}; robot 2 moves
  EXPECT_TRUE(directive.exit_via_smallest_empty);
}

TEST(Planner, TrimsToRootCount) {
  // Root with 2 robots adjacent to many singleton leaves bordering empty
  // nodes: only count(root)-1 = 1 path may be served.
  //   star: center 0 with leaves 1..4; extra empty nodes 5..8 hang off the
  //   leaves so the leaves (not the center) border empty nodes.
  Graph g(9);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(0, 4);
  g.add_edge(1, 5);
  g.add_edge(2, 6);
  g.add_edge(3, 7);
  g.add_edge(4, 8);
  const Configuration conf(9, {0, 0, 1, 2, 3, 4});
  const SlidePlan plan = plan_round(make_all_packets(g, conf, true));
  // One path kept (to the smallest-name leaf, robot 3 on node 1):
  // movers = robot 2 from the root + robot 3 exiting to empty node 5.
  ASSERT_EQ(plan.movers.size(), 2u);
  EXPECT_EQ(plan.movers.at(2).port, g.port_to(0, 1));
  EXPECT_TRUE(plan.movers.at(3).exit_via_smallest_empty);
}

TEST(Planner, ServesMultiplePathsWhenRootHasRobots) {
  // Same topology but 4 robots on the root: 3 paths can be served.
  Graph g(9);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(0, 4);
  g.add_edge(1, 5);
  g.add_edge(2, 6);
  g.add_edge(3, 7);
  g.add_edge(4, 8);
  const Configuration conf(9, {0, 0, 0, 0, 1, 2, 3, 4});
  const SlidePlan plan = plan_round(make_all_packets(g, conf, true));
  // Paths to leaves named 5,6,7 kept (3 = count(root)-1), each with a root
  // mover and a leaf mover; the path to leaf 8 is trimmed.
  EXPECT_EQ(plan.movers.size(), 6u);
  EXPECT_TRUE(plan.movers.count(2));
  EXPECT_TRUE(plan.movers.count(3));
  EXPECT_TRUE(plan.movers.count(4));
  EXPECT_TRUE(plan.movers.at(5).exit_via_smallest_empty);
  EXPECT_TRUE(plan.movers.at(6).exit_via_smallest_empty);
  EXPECT_TRUE(plan.movers.at(7).exit_via_smallest_empty);
  EXPECT_FALSE(plan.movers.count(8));
}

TEST(Planner, MultiplicityOffRootStillSlides) {
  // Multiplicity at a non-root... the smallest-name multiplicity node IS
  // the root by definition; verify a second multiplicity node (larger name)
  // is left for later rounds while the root's path slides.
  const Graph g = builders::path(7);
  const Configuration conf(7, {1, 1, 3, 3, 2});  // mults on nodes 1 and 3
  const SlidePlan plan = plan_round(make_all_packets(g, conf, true));
  // Component spans nodes 1..3 (names 1, 5, 3). Root = name 1 (node 1).
  // Node 1 borders empty node 0: the root path is trivial.
  ASSERT_GE(plan.movers.size(), 1u);
  EXPECT_TRUE(plan.movers.count(2));
  EXPECT_TRUE(plan.movers.at(2).exit_via_smallest_empty);
}

TEST(Planner, IdenticalAcrossRobotsAndCache) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 4 + rng.below(16);
    const std::size_t k = 2 + rng.below(n - 1);
    const Graph g = builders::random_connected(n, rng.below(n), rng);
    const Configuration conf = placement::uniform_random(n, k, rng);
    const auto packets = make_all_packets(g, conf, true);

    const SlidePlan direct = plan_round(packets);
    PlanCache cache;
    EXPECT_TRUE(cache.get(packets) == direct);
    EXPECT_TRUE(cache.get(packets) == direct);  // hit path
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
  }
}

TEST(PlanCache, InvalidatesOnDifferentPackets) {
  const Graph g = builders::path(4);
  const Configuration c1(4, {0, 0});       // trivial-path plan: robot 2 exits
  const Configuration c2(4, {0, 0, 1});    // sliding plan with a port move
  PlanCache cache;
  const SlidePlan p1 = cache.get(make_all_packets(g, c1, true));
  const SlidePlan p2 = cache.get(make_all_packets(g, c2, true));
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_FALSE(p1 == p2);  // different movers (different sliding ports)
}

// Property sweep: the plan always respects the paper's structural rules.
class PlannerSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlannerSweep, PlanIsWellFormed) {
  Rng rng(GetParam() * 1337);
  const std::size_t n = 3 + rng.below(24);
  const std::size_t k = 2 + rng.below(n - 1);
  const Graph g = builders::random_connected(n, rng.below(2 * n), rng);
  const Configuration conf = placement::uniform_random(n, k, rng);
  const auto packets = make_all_packets(g, conf, true);
  const SlidePlan plan = plan_round(packets);
  const auto occ = conf.occupancy();

  if (conf.is_dispersed()) {
    EXPECT_TRUE(plan.movers.empty());
    return;
  }
  // At least one mover whenever a multiplicity exists (Lemma 3).
  EXPECT_GE(plan.movers.size(), 1u);

  for (const auto& [mover, directive] : plan.movers) {
    const NodeId pos = conf.position(mover);
    // On multi-robot nodes the smallest robot stays settled. (A singleton
    // interior path node's only robot does move -- the path shifts and the
    // predecessor refills the node.)
    if (conf.robots_at(pos).size() >= 2) {
      EXPECT_NE(conf.robots_at(pos).front(), mover);
    }
    if (directive.exit_via_smallest_empty) {
      // The node must actually border an empty node (Lemma 5).
      bool has_empty = false;
      for (const HalfEdge& he : g.incident(pos)) has_empty |= occ[he.to] == 0;
      EXPECT_TRUE(has_empty);
    } else {
      // Sliding along an occupied tree edge.
      ASSERT_GE(directive.port, 1u);
      ASSERT_LE(directive.port, g.degree(pos));
      EXPECT_GT(occ[g.neighbor(pos, directive.port)], 0u);
    }
  }

  // Applying the plan occupies at least one previously-empty node and
  // leaves every previously-occupied node occupied (Lemmas 6/7).
  Configuration next = conf;
  for (const auto& [mover, directive] : plan.movers) {
    const NodeId pos = conf.position(mover);
    Port port = directive.port;
    if (directive.exit_via_smallest_empty) {
      for (Port p = 1; p <= g.degree(pos); ++p) {
        if (occ[g.neighbor(pos, p)] == 0) {
          port = p;
          break;
        }
      }
    }
    ASSERT_NE(port, kInvalidPort);
    next.set_position(mover, g.neighbor(pos, port));
  }
  const auto occ_next = next.occupancy();
  for (NodeId v = 0; v < n; ++v) {
    if (occ[v] > 0) {
      EXPECT_GT(occ_next[v], 0u) << "node " << v << " vacated";
    }
  }
  EXPECT_GE(next.occupied_count(), conf.occupied_count() + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerSweep,
                         ::testing::Range<std::uint64_t>(1, 61));

}  // namespace
}  // namespace dyndisp
