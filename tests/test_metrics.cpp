// Tests for the run metrics: packet wire-size accounting and the
// exploration metric (the paper's related problem).
#include <gtest/gtest.h>

#include "core/dispersion.h"
#include "dynamic/static_adversary.h"
#include "graph/builders.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "sim/sensing.h"
#include "util/bits.h"

namespace dyndisp {
namespace {

TEST(PacketBits, HandComputedExample) {
  // Path 0-1-2-3, robots {1,2}@0, {3}@1, k=3, n=4.
  // id_bits = ceil(log2(4)) = 2, port_bits = ceil(log2(4)) = 2.
  const Graph g = builders::path(4);
  const Configuration conf(4, {0, 0, 1});
  const auto packets = make_all_packets(g, conf, true);
  ASSERT_EQ(packets.size(), 2u);
  // Node 0's packet: sender(2) + count(2) + degree(2) + 2 robot IDs (4)
  //   + one occupied neighbor: port(2) + min(2) + count(2) + 1 ID (2) = 18.
  EXPECT_EQ(packet_bit_size(packets[0], 3, 4), 18u);
  // Node 1's packet: sender + count + degree + 1 ID + one neighbor with
  //   2 IDs: 2+2+2+2 + (2+2+2+4) = 18.
  EXPECT_EQ(packet_bit_size(packets[1], 3, 4), 18u);
}

TEST(PacketBits, NoNeighborhoodIsCheaper) {
  const Graph g = builders::path(4);
  const Configuration conf(4, {0, 0, 1});
  const auto rich = make_all_packets(g, conf, true);
  const auto lean = make_all_packets(g, conf, false);
  EXPECT_LT(packet_bit_size(lean[0], 3, 4), packet_bit_size(rich[0], 3, 4));
}

TEST(PacketBits, EngineAccumulatesAcrossRounds) {
  StaticAdversary adv(builders::path(5));
  EngineOptions opt;
  opt.max_rounds = 100;
  Engine engine(adv, placement::rooted(5, 3), core::dispersion_factory(), opt);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  EXPECT_GT(r.packet_bits_sent, 0u);
  // At least id+count+degree bits per packet sent.
  EXPECT_GE(r.packet_bits_sent, r.packets_sent * 3);
}

TEST(Exploration, FullWhenKEqualsN) {
  StaticAdversary adv(builders::cycle(8));
  EngineOptions opt;
  opt.max_rounds = 100;
  Engine engine(adv, placement::rooted(8, 8), core::dispersion_factory(), opt);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  EXPECT_EQ(r.explored_nodes, 8u);
  EXPECT_NE(r.exploration_round, RunResult::kNeverExplored);
  EXPECT_LE(r.exploration_round, r.rounds);
}

TEST(Exploration, PartialWhenKLessThanN) {
  // The paper's remark: dispersion does not imply exploration. From a
  // rooted start on a long path with few robots, most nodes are never
  // visited.
  StaticAdversary adv(builders::path(20));
  EngineOptions opt;
  opt.max_rounds = 1000;
  Engine engine(adv, placement::rooted(20, 4, 0), core::dispersion_factory(),
                opt);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  EXPECT_LT(r.explored_nodes, 20u);
  EXPECT_EQ(r.exploration_round, RunResult::kNeverExplored);
  EXPECT_GE(r.explored_nodes, 4u);  // at least the k final nodes
}

TEST(Exploration, InitialFullCoverageIsRoundZero) {
  StaticAdversary adv(builders::path(3));
  Configuration conf(3, {0, 1, 2});
  EngineOptions opt;
  Engine engine(adv, conf, core::dispersion_factory(), opt);
  const RunResult r = engine.run();
  EXPECT_EQ(r.exploration_round, 0u);
  EXPECT_EQ(r.explored_nodes, 3u);
}

}  // namespace
}  // namespace dyndisp
