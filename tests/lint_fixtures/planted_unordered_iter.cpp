// Planted violation: determinism-unordered-iter must flag both the
// range-for and the explicit begin() walk; the membership probe must NOT
// be flagged. NOT part of the build; linted explicitly by tests.
#include <string>
#include <unordered_map>
#include <unordered_set>

int planted_range_for(const std::unordered_map<std::string, int>& counts) {
  int total = 0;
  for (const auto& [key, value] : counts) total += value;  // violation
  return total;
}

std::size_t planted_begin(const std::unordered_set<int>& seen) {
  std::size_t walked = 0;
  for (auto it = seen.begin(); it != seen.end(); ++it) ++walked;  // violation
  return walked;
}

bool membership_is_fine(const std::unordered_set<int>& seen, int id) {
  return seen.count(id) != 0;  // no violation: order-free probe
}
