// Planted violation: a suppression without a justification must (a) fail
// to suppress the underlying finding and (b) be reported by
// suppression-contract itself. NOT part of the build; linted explicitly by
// tests.
#include <cstdlib>

// NOLINTNEXTLINE-dyndisp(determinism-random)
int planted_bare() { return std::rand(); }

int planted_trailing() {
  return std::rand();  // NOLINT-dyndisp(determinism-random)
}
