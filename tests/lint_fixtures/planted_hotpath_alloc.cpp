// Planted violation: hotpath-alloc must flag allocating calls reachable
// from a DYNDISP_HOT root -- both directly and through a call chain. NOT
// part of the build; linted explicitly by tests (the driver skips
// lint_fixtures/ during tree scans). The annotation macros are spelled
// bare (no contract.h include): the rule keys on the identifier tokens.
#include <memory>
#include <vector>

namespace planted {

int* deep_helper() {
  return new int(7);  // violation: operator new, two hops from the root
}

int mid_helper() {
  auto p = std::make_unique<int>(*deep_helper());  // violation: make_unique
  return *p;
}

DYNDISP_HOT
int round_tick(std::vector<int>& scratch) {
  scratch.push_back(mid_helper());  // violation: container growth on a
                                    // non-retained (no trailing _) receiver
  return scratch.back();
}

}  // namespace planted
