// Planted violation: hotpath-blocking must flag locks, I/O, and sleeps
// reachable from a DYNDISP_HOT root. NOT part of the build; linted
// explicitly by tests (the driver skips lint_fixtures/ during tree
// scans). The annotation macro is spelled bare (no contract.h include):
// the rule keys on the identifier tokens.
#include <cstdio>
#include <mutex>

namespace planted {

std::mutex g_mu;  // the declaration alone is not reachable code

void guarded_helper(int x) {
  std::lock_guard<std::mutex> lock(g_mu);  // violation: lock on the hot path
  std::printf("%d\n", x);                  // violation: I/O on the hot path
}

DYNDISP_HOT
void round_tick(int x) { guarded_helper(x); }

}  // namespace planted
