// The other half of the planted include cycle; see planted_cycle_a.h.
#pragma once

#include "planted_cycle_a.h"

struct PlantedCycleB {};
