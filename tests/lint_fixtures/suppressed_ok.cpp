// Negative fixture: every hazard here carries a justified suppression, so
// dyndisp_lint must exit 0 on this file. NOT part of the build; linted
// explicitly by tests.
#include <chrono>
#include <cstdlib>

// NOLINTNEXTLINE-dyndisp(determinism-random): fixture proving a justified
// suppression (with a wrapped, multi-line justification) silences the
// finding on the next code line.
int suppressed_rand() { return std::rand(); }

double suppressed_clock() {
  // NOLINTNEXTLINE-dyndisp(determinism-wallclock): fixture timer; the
  // value is discarded by the caller.
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long suppressed_trailing() {
  return time(nullptr);  // NOLINT-dyndisp(determinism-wallclock): fixture
}
