// Planted violation: determinism-random must flag every non-deterministic
// randomness source in this file. NOT part of the build; linted explicitly
// by tests (the driver skips lint_fixtures/ during tree scans).
#include <cstdlib>
#include <random>

int planted_rand() {
  return std::rand();  // violation: std::rand
}

unsigned planted_device() {
  std::random_device rd;  // violation: std::random_device
  return rd();
}

void planted_srand(unsigned seed) {
  srand(seed);  // violation: srand
}
