// Planted violation: digest-exclusion must flag a DYNDISP_STATS-tagged
// struct's fields leaking into digest/serialization code -- observability
// counters must never feed result digests. NOT part of the build; linted
// explicitly by tests (the driver skips lint_fixtures/ during tree
// scans). The annotation macro is spelled bare (no contract.h include):
// the rule keys on the identifier tokens.
#include <cstdint>

namespace planted {

struct DYNDISP_STATS RunStats {
  std::uint64_t cache_reuses = 0;
  std::uint64_t arena_refills = 0;
};

struct Result {
  RunStats stats;
  std::uint64_t rounds = 0;
};

std::uint64_t result_digest(const Result& r) {
  std::uint64_t d = r.rounds * 0x9e3779b97f4a7c15ull;
  d ^= r.stats.cache_reuses;   // violation: stats field in a digest
  d ^= r.stats.arena_refills;  // violation: stats field in a digest
  return d;
}

}  // namespace planted
