// Planted violation: metering-serialize-fields must flag hoarded_ -- a
// between-round member that never reaches serialize(BitWriter&), i.e.
// persistent memory the Lemma 8 meter would undercount. NOT part of the
// build; linted explicitly by tests.
#pragma once

#include "util/bits.h"

namespace planted {

class HoardingRobot {
 public:
  void serialize(dyndisp::BitWriter& out) const {
    out.write(id_, bits_for_id_);
  }

 private:
  unsigned id_ = 0;
  unsigned bits_for_id_ = 8;
  unsigned hoarded_ = 0;  // violation: persistent but unmetered
};

}  // namespace planted
