// Planted violation (with planted_cycle_b.h): hygiene-include-cycle must
// report the a -> b -> a cycle. NOT part of the build; linted explicitly
// by tests.
#pragma once

#include "planted_cycle_b.h"

struct PlantedCycleA {};
