// Negative fixture: production-shaped code with zero hazards; dyndisp_lint
// must exit 0 with zero suppressions used. NOT part of the build; linted
// explicitly by tests.
#include <map>
#include <string>
#include <vector>

#include "util/bits.h"

namespace clean_fixture {

// Ordered iteration: deterministic by construction.
inline int sum(const std::map<std::string, int>& counts) {
  int total = 0;
  for (const auto& [key, value] : counts) total += value;
  return total;
}

// Every persistent field routed through the serializer.
class MeteredRobot {
 public:
  void serialize(dyndisp::BitWriter& out) const {
    out.write(id_, 8);
    out.write_bool(settled_);
  }

 private:
  unsigned id_ = 0;
  bool settled_ = false;
};

}  // namespace clean_fixture
