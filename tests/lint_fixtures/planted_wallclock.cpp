// Planted violation: determinism-wallclock must flag both the chrono and
// the C clock reads (this fixture is not under bench/, so no allowlist
// applies). NOT part of the build; linted explicitly by tests.
#include <chrono>
#include <ctime>

double planted_chrono_now() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long planted_c_time() {
  return time(nullptr);  // violation: C time API
}
