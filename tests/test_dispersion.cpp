// End-to-end tests of Algorithm 4 under the engine: Theorem 4's round and
// memory bounds across graph families, adversaries, and placements.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/verify.h"
#include "core/dispersion.h"
#include "dynamic/churn_adversary.h"
#include "dynamic/random_adversary.h"
#include "dynamic/star_star_adversary.h"
#include "dynamic/static_adversary.h"
#include "dynamic/t_interval_adversary.h"
#include "graph/builders.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "util/bits.h"
#include "util/rng.h"

namespace dyndisp {
namespace {

EngineOptions standard_options() {
  EngineOptions opt;
  opt.comm = CommModel::kGlobal;
  opt.neighborhood_knowledge = true;
  opt.max_rounds = 10000;
  opt.record_progress = true;
  return opt;
}

RunResult run(Adversary& adv, Configuration conf,
              const AlgorithmFactory& factory = core::dispersion_factory(),
              EngineOptions opt = standard_options()) {
  Engine engine(adv, std::move(conf), factory, opt);
  return engine.run();
}

void expect_theorem4(const RunResult& r) {
  EXPECT_TRUE(r.dispersed);
  EXPECT_TRUE(analysis::check_round_bound(r).empty())
      << analysis::check_round_bound(r);
  EXPECT_TRUE(analysis::check_memory_bound(r).empty())
      << analysis::check_memory_bound(r);
  EXPECT_TRUE(analysis::check_progress_every_round(r).empty())
      << analysis::check_progress_every_round(r);
  EXPECT_TRUE(analysis::check_occupied_monotone(r).empty())
      << analysis::check_occupied_monotone(r);
}

TEST(Dispersion, AlreadyDispersedStopsImmediately) {
  StaticAdversary adv(builders::cycle(5));
  const RunResult r = run(adv, Configuration(5, {0, 2, 4}));
  EXPECT_TRUE(r.dispersed);
  EXPECT_EQ(r.rounds, 0u);
  EXPECT_EQ(r.total_moves, 0u);
}

TEST(Dispersion, TwoRobotsOneEdge) {
  StaticAdversary adv(builders::path(2));
  const RunResult r = run(adv, placement::rooted(2, 2));
  EXPECT_TRUE(r.dispersed);
  EXPECT_EQ(r.rounds, 1u);
}

TEST(Dispersion, RootedOnStaticPathTakesExactlyKMinusOneRounds) {
  // Rooted at one end of a path: exactly one robot exits per round.
  StaticAdversary adv(builders::path(8));
  const RunResult r = run(adv, placement::rooted(8, 8, 0));
  EXPECT_TRUE(r.dispersed);
  EXPECT_EQ(r.rounds, 7u);  // k - initial_occupied
}

TEST(Dispersion, KEqualsNFillsEveryNode) {
  StaticAdversary adv(builders::cycle(9));
  const RunResult r = run(adv, placement::rooted(9, 9));
  EXPECT_TRUE(r.dispersed);
  EXPECT_EQ(r.final_config.occupied_count(), 9u);
}

TEST(Dispersion, MemoryIsExactlyCeilLog2K) {
  StaticAdversary adv(builders::complete(20));
  const RunResult r = run(adv, placement::rooted(20, 17));
  EXPECT_EQ(r.max_memory_bits, bit_width_for(18));  // IDs in [1,17]
}

TEST(Dispersion, SingleRobotIsTriviallyDispersed) {
  StaticAdversary adv(builders::path(3));
  const RunResult r = run(adv, Configuration(3, {1}));
  EXPECT_TRUE(r.dispersed);
  EXPECT_EQ(r.rounds, 0u);
}

TEST(Dispersion, UnderStarStarAdversaryRooted) {
  // The lower-bound adversary: Algorithm 4 still meets its O(k) bound
  // exactly (one new node per round), demonstrating Theta(k) tightness.
  const std::size_t n = 16, k = 12;
  StarStarAdversary adv(n);
  const RunResult r = run(adv, placement::rooted(n, k));
  expect_theorem4(r);
  EXPECT_EQ(r.rounds, k - 1);
}

TEST(Dispersion, UnderStarStarWithShuffledPorts) {
  const std::size_t n = 14, k = 10;
  StarStarAdversary adv(n, true, 99);
  const RunResult r = run(adv, placement::rooted(n, k));
  expect_theorem4(r);
  EXPECT_EQ(r.rounds, k - 1);
}

TEST(Dispersion, MemoizedModeIdenticalToFaithful) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RandomAdversary adv1(12, 5, seed), adv2(12, 5, seed);
    Rng r1(seed), r2(seed);
    const Configuration conf1 = placement::uniform_random(12, 9, r1);
    const Configuration conf2 = placement::uniform_random(12, 9, r2);
    const RunResult a = run(adv1, conf1, core::dispersion_factory());
    const RunResult b = run(adv2, conf2, core::dispersion_factory_memoized());
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.total_moves, b.total_moves);
    EXPECT_TRUE(a.final_config == b.final_config);
  }
}

struct SweepCase {
  const char* name;
  std::size_t n, k;
  std::unique_ptr<Adversary> (*adversary)(std::size_t n, std::uint64_t seed);
  Configuration (*placement)(std::size_t n, std::size_t k, std::uint64_t seed);
};

std::unique_ptr<Adversary> adv_static_path(std::size_t n, std::uint64_t) {
  return std::make_unique<StaticAdversary>(builders::path(n));
}
std::unique_ptr<Adversary> adv_static_grid(std::size_t n, std::uint64_t) {
  return std::make_unique<StaticAdversary>(builders::grid(n / 4, 4));
}
std::unique_ptr<Adversary> adv_static_complete(std::size_t n, std::uint64_t) {
  return std::make_unique<StaticAdversary>(builders::complete(n));
}
std::unique_ptr<Adversary> adv_static_shuffled(std::size_t n,
                                               std::uint64_t seed) {
  return std::make_unique<StaticAdversary>(builders::cycle(n), true, seed);
}
std::unique_ptr<Adversary> adv_random(std::size_t n, std::uint64_t seed) {
  return std::make_unique<RandomAdversary>(n, n / 3, seed);
}
std::unique_ptr<Adversary> adv_random_tree(std::size_t n, std::uint64_t seed) {
  return std::make_unique<RandomAdversary>(n, 0, seed);
}
std::unique_ptr<Adversary> adv_churn(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return std::make_unique<ChurnAdversary>(
      builders::random_connected(n, n / 2, rng), 2, seed);
}
std::unique_ptr<Adversary> adv_star_star(std::size_t n, std::uint64_t) {
  return std::make_unique<StarStarAdversary>(n);
}
std::unique_ptr<Adversary> adv_t_interval(std::size_t n, std::uint64_t seed) {
  return std::make_unique<TIntervalAdversary>(
      std::make_unique<RandomAdversary>(n, n / 4, seed), 3);
}

Configuration place_rooted(std::size_t n, std::size_t k, std::uint64_t) {
  return placement::rooted(n, k);
}
Configuration place_random(std::size_t n, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  return placement::uniform_random(n, k, rng);
}
Configuration place_grouped(std::size_t n, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  return placement::grouped(n, k, std::max<std::size_t>(2, k / 3), rng);
}

class DispersionSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(DispersionSweep, Theorem4HoldsOverSeeds) {
  const SweepCase& c = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto adversary = c.adversary(c.n, seed);
    const RunResult r = run(*adversary, c.placement(c.n, c.k, seed));
    SCOPED_TRACE(std::string(c.name) + " seed " + std::to_string(seed));
    expect_theorem4(r);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DispersionSweep,
    ::testing::Values(
        SweepCase{"path_rooted", 16, 16, adv_static_path, place_rooted},
        SweepCase{"path_random", 16, 12, adv_static_path, place_random},
        SweepCase{"grid_rooted", 16, 14, adv_static_grid, place_rooted},
        SweepCase{"grid_grouped", 16, 12, adv_static_grid, place_grouped},
        SweepCase{"complete_rooted", 12, 12, adv_static_complete,
                  place_rooted},
        SweepCase{"shuffled_cycle", 14, 11, adv_static_shuffled, place_random},
        SweepCase{"random_rooted", 18, 14, adv_random, place_rooted},
        SweepCase{"random_random", 18, 13, adv_random, place_random},
        SweepCase{"random_grouped", 18, 15, adv_random, place_grouped},
        SweepCase{"tree_rooted", 15, 12, adv_random_tree, place_rooted},
        SweepCase{"tree_random", 15, 11, adv_random_tree, place_random},
        SweepCase{"churn_rooted", 16, 13, adv_churn, place_rooted},
        SweepCase{"churn_grouped", 16, 12, adv_churn, place_grouped},
        SweepCase{"star_star_rooted", 14, 11, adv_star_star, place_rooted},
        SweepCase{"star_star_random", 14, 10, adv_star_star, place_random},
        SweepCase{"t_interval_random", 15, 12, adv_t_interval, place_random}),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      return param_info.param.name;
    });

// Larger scale smoke: k = n = 64 on a fully dynamic random graph.
TEST(DispersionScale, SixtyFourRobotsFullyDynamic) {
  RandomAdversary adv(64, 30, 5);
  const RunResult r = run(adv, placement::rooted(64, 64),
                          core::dispersion_factory_memoized());
  expect_theorem4(r);
  EXPECT_LE(r.rounds, 63u);  // at least one new node per round from rooted
}

}  // namespace
}  // namespace dyndisp
