// Tests for the struct-of-arrays round core (EngineOptions::soa): the
// persistent view arena, ViewNeeds-gated state lists, and before-copy
// elision are pure optimizations, so a run with the SoA core on must be
// bitwise identical -- digest_run() equality -- to the legacy
// allocate-per-round engine for every Table-I model row, every registered
// adversary, and with crash faults in play. The fuzzer repeats this
// differential over random configurations (check/fuzzer.cpp draws the soa
// axis); this file pins the canonical rows.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/blind_walk.h"
#include "baselines/dfs_dispersion.h"
#include "baselines/greedy_local.h"
#include "campaign/registry.h"
#include "check/differential.h"
#include "check/trial.h"
#include "core/dispersion.h"
#include "dynamic/random_adversary.h"
#include "robots/placement.h"
#include "sim/engine.h"

namespace dyndisp {
namespace {

using check::diff_soa;
using check::digest_run;
using check::Toolbox;
using check::TrialConfig;

// ---- Engine-level bitwise identity: SoA vs legacy ----

void expect_identical(const RunResult& a, const RunResult& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(digest_run(a), digest_run(b));
  // Digest equality implies all of these; spelled out so a failure names
  // the first field that diverged instead of just two hashes.
  EXPECT_EQ(a.dispersed, b.dispersed);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_moves, b.total_moves);
  EXPECT_EQ(a.max_memory_bits, b.max_memory_bits);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packet_bits_sent, b.packet_bits_sent);
  EXPECT_EQ(a.stalled_rounds, b.stalled_rounds);
  EXPECT_EQ(a.max_occupied, b.max_occupied);
  EXPECT_TRUE(a.final_config == b.final_config);
}

struct ModelRow {
  const char* label;
  CommModel comm;
  bool neighborhood;
  AlgorithmFactory factory;
};

RunResult run_row(const ModelRow& row, bool soa, bool structure_cache = true) {
  const std::size_t n = 36, k = 24;
  RandomAdversary adv(n, n / 3, 7);
  EngineOptions opt;
  opt.comm = row.comm;
  opt.neighborhood_knowledge = row.neighborhood;
  opt.max_rounds = 200;
  opt.soa = soa;
  opt.structure_cache = structure_cache;
  Engine engine(adv, placement::rooted(n, k), row.factory, opt);
  return engine.run();
}

const ModelRow kRows[] = {
    {"global+nbhd (Algorithm 4, memoized)", CommModel::kGlobal, true,
     core::dispersion_factory_memoized()},
    {"global-only (blind walk)", CommModel::kGlobal, false,
     baselines::blind_walk_factory()},
    {"local-only (DFS dispersion)", CommModel::kLocal, false,
     baselines::dfs_dispersion_factory()},
    {"local+nbhd (greedy)", CommModel::kLocal, true,
     baselines::greedy_local_factory()},
};

TEST(SoaDeterminism, AllTableOneModelRows) {
  for (const ModelRow& row : kRows)
    expect_identical(run_row(row, true), run_row(row, false), row.label);
}

TEST(SoaDeterminism, ComposesWithStructureCacheOff) {
  // The two engine toggles are independent; all four corners of the
  // (soa, structure_cache) square must agree.
  for (const ModelRow& row : kRows) {
    const RunResult base = run_row(row, true, true);
    expect_identical(base, run_row(row, false, true),
                     std::string(row.label) + " sc=on");
    expect_identical(base, run_row(row, true, false),
                     std::string(row.label) + " sc=off");
    expect_identical(base, run_row(row, false, false),
                     std::string(row.label) + " sc=off soa=off");
  }
}

TEST(SoaDeterminism, ObservabilityCountersTrackTheActivePath) {
  // The SoA run must say it ran SoA; the legacy run must not claim arena
  // work it never performed (the counters feed bench analysis).
  const RunResult flat = run_row(kRows[0], true);
  EXPECT_GT(flat.stats.soa_rounds, 0u);
  EXPECT_GT(flat.stats.arena_views, 0u);
  // Algorithm 4 declares it only reads empty_ports, so the gated paths
  // must actually fire for it.
  EXPECT_GT(flat.stats.state_list_rounds_skipped, 0u);

  const RunResult legacy = run_row(kRows[0], false);
  EXPECT_EQ(legacy.stats.soa_rounds, 0u);
  EXPECT_EQ(legacy.stats.arena_views, 0u);
  EXPECT_EQ(legacy.stats.state_list_rounds_skipped, 0u);
  EXPECT_EQ(legacy.stats.before_copies_skipped, 0u);
}

// ---- Registry-wide differential, with and without faults ----

TEST(SoaDeterminism, EveryRegisteredAdversary) {
  // diff_soa runs the trial twice (soa forced on, then off) through the
  // exact construction path dyndisp_sim and the campaigns use, so this
  // covers adversary-specific reuse hints (static replay, t-interval
  // stability, churn deltas) against the arena path.
  const Toolbox toolbox;
  for (const std::string& adversary :
       campaign::Registry::instance().adversary_names()) {
    TrialConfig c;
    c.adversary = adversary;
    c.n = 24;
    c.k = 16;
    c.seed = 11;
    const auto report = diff_soa(c, toolbox);
    EXPECT_TRUE(report.ok) << adversary << ": " << report.detail;
  }
}

TEST(SoaDeterminism, SurvivesCrashFaults) {
  // Crashes change which robots sense and move mid-run; dead robots' arena
  // slots must not leak stale views into the packet stream.
  const Toolbox toolbox;
  for (const std::uint64_t seed : {3u, 19u}) {
    TrialConfig c;
    c.n = 30;
    c.k = 20;
    c.faults = 5;
    c.seed = seed;
    const auto report = diff_soa(c, toolbox);
    EXPECT_TRUE(report.ok) << "seed " << seed << ": " << report.detail;
  }
}

// ---- Config plumbing ----

TEST(SoaTrialConfig, JsonRoundTripAndSummarySuffix) {
  TrialConfig c;
  c.soa = false;
  const TrialConfig back = TrialConfig::parse_json(c.to_json());
  EXPECT_FALSE(back.soa);
  EXPECT_NE(c.summary().find("|soa=off"), std::string::npos);
  // On is the default and stays out of the summary (ids of pre-existing
  // repro artifacts must not change).
  c.soa = true;
  EXPECT_EQ(c.summary().find("soa"), std::string::npos);
  EXPECT_TRUE(TrialConfig::parse_json(c.to_json()).soa);
}

}  // namespace
}  // namespace dyndisp
