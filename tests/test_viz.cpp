// Tests for the SVG renderer: structural well-formedness, occupancy
// coloring, and animation layering.
#include <gtest/gtest.h>

#include "core/dispersion.h"
#include "dynamic/static_adversary.h"
#include "graph/builders.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "viz/svg.h"

namespace dyndisp {
namespace {

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0, pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST(SvgFrame, ContainsAllNodesAndEdges) {
  const Graph g = builders::cycle(6);
  const Configuration conf(6, {0, 0, 3});
  const std::string svg = viz::render_frame(g, conf);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_EQ(count_occurrences(svg, "<circle"), 6u);
  EXPECT_EQ(count_occurrences(svg, "<line"), 6u);
}

TEST(SvgFrame, ColorsEncodeOccupancy) {
  const Graph g = builders::path(3);
  const Configuration conf(3, {0, 0, 1});
  const std::string svg = viz::render_frame(g, conf);
  EXPECT_NE(svg.find("#ff9b8f"), std::string::npos);  // multiplicity node
  EXPECT_NE(svg.find("#8fc7ff"), std::string::npos);  // single robot
  EXPECT_NE(svg.find("#f4f4f4"), std::string::npos);  // empty node
}

TEST(SvgFrame, LabelsShowSmallestRobotAndSurplus) {
  const Graph g = builders::path(4);
  const Configuration conf(4, {0, 0, 0, 1});
  const std::string svg = viz::render_frame(g, conf);
  EXPECT_NE(svg.find(">r1+2<"), std::string::npos);  // 3 robots on node 0
  EXPECT_NE(svg.find(">r4<"), std::string::npos);
}

TEST(SvgAnimation, OneLayerPerRound) {
  StaticAdversary adv(builders::path(5));
  EngineOptions opt;
  opt.record_trace = true;
  opt.max_rounds = 100;
  Engine engine(adv, placement::rooted(5, 4), core::dispersion_factory(),
                opt);
  const RunResult r = engine.run();
  ASSERT_GE(r.trace.size(), 2u);
  const std::string svg = viz::render_animation(r.trace);
  EXPECT_EQ(count_occurrences(svg, "<g opacity="), r.trace.size());
  EXPECT_EQ(count_occurrences(svg, "<animate"), r.trace.size());
  EXPECT_EQ(count_occurrences(svg, "round "), r.trace.size());
  // Balanced tags.
  EXPECT_EQ(count_occurrences(svg, "<g "), count_occurrences(svg, "</g>"));
}

TEST(SvgAnimation, EmptyTraceRendersNothing) {
  EXPECT_TRUE(viz::render_animation(Trace{}).empty());
}

}  // namespace
}  // namespace dyndisp
