// Unit tests for util: rng, bit io, stats, table, csv.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>
#include <set>

#include "util/bits.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace dyndisp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInclusiveBounds) {
  Rng rng(3);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    hit_lo |= v == -2;
    hit_hi |= v == 2;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(13);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // probability of identity is astronomically small
}

TEST(Rng, SplitIndependence) {
  Rng parent(17);
  Rng child = parent.split();
  // Child and parent produce different streams.
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

TEST(BitWidth, KnownValues) {
  EXPECT_EQ(bit_width_for(1), 1u);
  EXPECT_EQ(bit_width_for(2), 1u);
  EXPECT_EQ(bit_width_for(3), 2u);
  EXPECT_EQ(bit_width_for(4), 2u);
  EXPECT_EQ(bit_width_for(5), 3u);
  EXPECT_EQ(bit_width_for(256), 8u);
  EXPECT_EQ(bit_width_for(257), 9u);
}

TEST(Bits, RoundTripSingleField) {
  BitWriter w;
  w.write(0b1011, 4);
  BitReader r(w);
  EXPECT_EQ(r.read(4), 0b1011u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bits, RoundTripMixedFields) {
  BitWriter w;
  w.write(5, 3);
  w.write_bool(true);
  w.write(1023, 10);
  w.write_bool(false);
  w.write(0xDEADBEEF, 32);
  EXPECT_EQ(w.bit_count(), 3u + 1 + 10 + 1 + 32);
  BitReader r(w);
  EXPECT_EQ(r.read(3), 5u);
  EXPECT_TRUE(r.read_bool());
  EXPECT_EQ(r.read(10), 1023u);
  EXPECT_FALSE(r.read_bool());
  EXPECT_EQ(r.read(32), 0xDEADBEEFu);
}

TEST(Bits, SixtyFourBitValue) {
  BitWriter w;
  const std::uint64_t v = 0x0123456789ABCDEFULL;
  w.write(v, 64);
  BitReader r(w);
  EXPECT_EQ(r.read(64), v);
}

TEST(Bits, ByteBoundaryCrossing) {
  BitWriter w;
  for (unsigned i = 0; i < 13; ++i) w.write(i & 1, 1);
  w.write(0x7F, 7);
  BitReader r(w);
  for (unsigned i = 0; i < 13; ++i) EXPECT_EQ(r.read(1), (i & 1));
  EXPECT_EQ(r.read(7), 0x7Fu);
}

TEST(Bits, RawByteReader) {
  BitWriter w;
  w.write(0xAB, 8);
  w.write(0xCD, 8);
  BitReader r(w.bytes());
  EXPECT_EQ(r.read(8), 0xABu);
  EXPECT_EQ(r.read(8), 0xCDu);
}

TEST(Summary, BasicStatistics) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Summary, Percentiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.median(), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(90), 90.0);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.5);
}

TEST(Summary, AddAfterQueryKeepsCorrectOrder) {
  Summary s;
  s.add(5);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  s.add(1);  // forces re-sort on next query
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(LinearSlope, ExactLine) {
  std::vector<double> x{1, 2, 3, 4}, y{3, 5, 7, 9};
  EXPECT_NEAR(linear_slope(x, y), 2.0, 1e-12);
}

TEST(LinearSlope, FlatLine) {
  std::vector<double> x{1, 2, 3}, y{4, 4, 4};
  EXPECT_NEAR(linear_slope(x, y), 0.0, 1e-12);
}

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t({"k", "rounds"});
  t.add_row({"8", "7"});
  t.add_row({"16", "15"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| k "), std::string::npos);
  EXPECT_NE(out.find("| 16"), std::string::npos);
  EXPECT_NE(out.find("| 7 "), std::string::npos);
}

TEST(AsciiTable, PadsShortRows) {
  AsciiTable t({"a", "b", "c"});
  t.add_row({"1"});
  const std::string out = t.render();
  // Three columns rendered even though the row had one cell.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);  // 3 rules + 2 rows
  EXPECT_NE(out.find("| 1 |"), std::string::npos);
}

TEST(AsciiTable, TitleShownWhenSet) {
  AsciiTable t({"x"});
  t.set_title("Table I");
  EXPECT_EQ(t.render().rfind("Table I\n", 0), 0u);
}

TEST(FmtDouble, RespectsDigits) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesFile) {
  const std::string path = ::testing::TempDir() + "dyndisp_csv_test.csv";
  {
    CsvWriter w(path, {"k", "rounds"});
    ASSERT_TRUE(w.ok());
    w.add_row({"4", "3"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,rounds");
  std::getline(in, line);
  EXPECT_EQ(line, "4,3");
}

}  // namespace
}  // namespace dyndisp
