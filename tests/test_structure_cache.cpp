// Tests for the cross-round StructureCache and the engine's delta-aware
// round loop built on it: exact hits, delta rebuilds, LRU eviction, and --
// the load-bearing property -- bitwise identity between cached and uncached
// runs for every Table-I model row and for the replay-heavy adversaries the
// cache targets.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/blind_walk.h"
#include "baselines/dfs_dispersion.h"
#include "baselines/greedy_local.h"
#include "core/dispersion.h"
#include "core/planner.h"
#include "core/structure_cache.h"
#include "dynamic/random_adversary.h"
#include "dynamic/scripted_adversary.h"
#include "dynamic/static_adversary.h"
#include "dynamic/t_interval_adversary.h"
#include "graph/builders.h"
#include "graph/fingerprint.h"
#include "robots/configuration.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "sim/reuse_hints.h"
#include "sim/sensing.h"
#include "util/rng.h"

namespace dyndisp {
namespace {

using core::plan_round;
using core::PlannerConfig;
using core::SlidePlan;
using core::StructureCache;

using PacketsHandle = std::shared_ptr<const std::vector<InfoPacket>>;

PacketsHandle packets_for(const Graph& g, const Configuration& conf,
                          bool neighborhood = true) {
  return std::make_shared<const std::vector<InfoPacket>>(
      make_all_packets(g, conf, neighborhood));
}

/// The (graph, configuration, sensing) triple digest the engine attaches to
/// RobotViews; the cache only requires internal consistency, so computing it
/// the same way here suffices.
ReuseHints hints_for(const Graph& g, const Configuration& conf,
                     bool neighborhood = true) {
  ReuseHints h;
  h.valid = true;
  h.neighborhood = neighborhood;
  h.graph_fp = g.fingerprint();
  h.conf_digest = 0;
  for (RobotId id = 1; id <= conf.robot_count(); ++id) {
    if (!conf.alive(id)) continue;
    h.conf_digest ^= fp_mix((static_cast<std::uint64_t>(id) << 32) |
                            static_cast<std::uint64_t>(conf.position(id)));
  }
  return h;
}

// ---- StructureCache unit tests ----

TEST(StructureCache, ExactHitSharesThePlanUntouched) {
  const Graph g = builders::grid(4, 4);
  const Configuration conf(16, {0, 0, 0, 5, 9});
  StructureCache cache;
  const PacketsHandle packets = packets_for(g, conf);
  const auto first = cache.plan(packets, hints_for(g, conf), {});
  const auto again = cache.plan(packets, hints_for(g, conf), {});
  EXPECT_EQ(first.get(), again.get());  // shared, not recomputed
  EXPECT_EQ(*first, plan_round(*packets));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.full_builds, 1u);
  EXPECT_EQ(stats.exact_hits, 1u);
  EXPECT_EQ(stats.delta_rounds, 0u);
}

TEST(StructureCache, ExactHitSurvivesAFreshHandle) {
  // Digests select the entry, contents confirm it: a byte-identical packet
  // set under a brand-new allocation must still hit (this is how trap
  // probes and repeated scripted rounds reuse structures).
  const Graph g = builders::lollipop(5, 4);
  const Configuration conf(9, {0, 0, 2, 7});
  StructureCache cache;
  const auto first = cache.plan(packets_for(g, conf), hints_for(g, conf), {});
  const auto again = cache.plan(packets_for(g, conf), hints_for(g, conf), {});
  EXPECT_EQ(first.get(), again.get());
  EXPECT_EQ(cache.stats().exact_hits, 1u);
}

TEST(StructureCache, DeltaRebuildReusesUntouchedComponents) {
  // Two far-apart components on a path; moving one robot inside the right
  // component must rebuild only that component and share the left one. The
  // left component is deliberately large: the delta path bails out to a
  // full build when more than half the senders are dirty, so the clean
  // majority is what keeps this a delta round.
  const Graph g = builders::path(16);
  Configuration conf(16, {0, 0, 1, 2, 3, 4, 12, 12});
  StructureCache cache;
  (void)cache.plan(packets_for(g, conf), hints_for(g, conf), {});
  conf.set_position(8, 14);  // robot 8: node 12 -> 14, away from the rest
  const auto plan = cache.plan(packets_for(g, conf), hints_for(g, conf), {});
  EXPECT_EQ(*plan, plan_round(make_all_packets(g, conf, true)));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.full_builds, 1u);
  EXPECT_EQ(stats.delta_rounds, 1u);
  EXPECT_GE(stats.components_reused, 1u);
  EXPECT_GE(stats.components_rebuilt, 1u);
}

TEST(StructureCache, MatchesPlanRoundOnRandomRounds) {
  // Property check: whatever mix of hits, deltas, and full builds a random
  // walk of configurations produces, every returned plan equals plan_round.
  Rng rng(1234);
  const Graph g = builders::random_connected(20, 8, rng);
  Configuration conf(20, {0, 0, 0, 0, 4, 4, 9, 13, 13, 17});
  StructureCache cache;
  for (int step = 0; step < 40; ++step) {
    const RobotId id = static_cast<RobotId>(1 + rng.below(10));
    conf.set_position(id, static_cast<NodeId>(rng.below(20)));
    const PacketsHandle packets = packets_for(g, conf);
    const auto plan = cache.plan(packets, hints_for(g, conf), {});
    EXPECT_EQ(*plan, plan_round(*packets)) << "step " << step;
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.exact_hits + stats.delta_rounds + stats.full_builds, 40u);
}

TEST(StructureCache, NeighborhoodIsPartOfTheKey) {
  // Same graph and configuration, different sensing model: the packet sets
  // differ, so the entries must not be confused for one another.
  const Graph g = builders::cycle(8);
  const Configuration conf(8, {0, 0, 3});
  StructureCache cache;
  const auto with = cache.plan(packets_for(g, conf, true),
                               hints_for(g, conf, true), {});
  const auto without = cache.plan(packets_for(g, conf, false),
                                  hints_for(g, conf, false), {});
  EXPECT_EQ(cache.stats().exact_hits, 0u);
  EXPECT_EQ(*with, plan_round(make_all_packets(g, conf, true)));
  EXPECT_EQ(*without, plan_round(make_all_packets(g, conf, false)));
}

TEST(StructureCache, EvictsLeastRecentlyUsedBeyondCapacity) {
  StructureCache cache(/*capacity=*/2);
  const Configuration conf(10, {0, 0, 4});
  const Graph graphs[] = {builders::path(10), builders::cycle(10),
                          builders::star(10)};
  for (const Graph& g : graphs)
    (void)cache.plan(packets_for(g, conf), hints_for(g, conf), {});
  EXPECT_EQ(cache.stats().evictions, 1u);
  // The oldest entry (path) is gone: replaying it is a rebuild, while the
  // newest (star) still hits. "Rebuild" may be served as a delta off a
  // retained entry; either way it is not an exact hit.
  const std::uint64_t hits_before = cache.stats().exact_hits;
  (void)cache.plan(packets_for(graphs[2], conf),
                   hints_for(graphs[2], conf), {});
  EXPECT_EQ(cache.stats().exact_hits, hits_before + 1);
  (void)cache.plan(packets_for(graphs[0], conf),
                   hints_for(graphs[0], conf), {});
  EXPECT_EQ(cache.stats().exact_hits, hits_before + 1);
}

// ---- Engine-level bitwise identity: cached vs uncached ----

void expect_identical(const RunResult& a, const RunResult& b,
                      const char* what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.dispersed, b.dispersed);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_moves, b.total_moves);
  EXPECT_EQ(a.max_memory_bits, b.max_memory_bits);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packet_bits_sent, b.packet_bits_sent);
  EXPECT_EQ(a.stalled_rounds, b.stalled_rounds);
  EXPECT_EQ(a.max_occupied, b.max_occupied);
  EXPECT_EQ(a.explored_nodes, b.explored_nodes);
  EXPECT_EQ(a.exploration_round, b.exploration_round);
  EXPECT_TRUE(a.final_config == b.final_config);
}

struct ModelRow {
  const char* label;
  CommModel comm;
  bool neighborhood;
  AlgorithmFactory factory;
};

RunResult run_row(const ModelRow& row, bool structure_cache) {
  const std::size_t n = 36, k = 24;
  RandomAdversary adv(n, n / 3, 7);
  EngineOptions opt;
  opt.comm = row.comm;
  opt.neighborhood_knowledge = row.neighborhood;
  opt.max_rounds = 200;
  opt.structure_cache = structure_cache;
  Engine engine(adv, placement::rooted(n, k), row.factory, opt);
  return engine.run();
}

TEST(CacheDeterminism, AllTableOneModelRows) {
  // The delta-aware loop is a pure optimization: with the cache on or off,
  // every observable of the run is identical, for each Table-I model row
  // under its native model (the fuzzer repeats this differential over
  // random configurations; this pins the canonical rows).
  const ModelRow rows[] = {
      {"global+nbhd (Algorithm 4, memoized)", CommModel::kGlobal, true,
       core::dispersion_factory_memoized()},
      {"global-only (blind walk)", CommModel::kGlobal, false,
       baselines::blind_walk_factory()},
      {"local-only (DFS dispersion)", CommModel::kLocal, false,
       baselines::dfs_dispersion_factory()},
      {"local+nbhd (greedy)", CommModel::kLocal, true,
       baselines::greedy_local_factory()},
  };
  for (const ModelRow& row : rows)
    expect_identical(run_row(row, true), run_row(row, false), row.label);
}

RunResult run_replay(Adversary& adv, std::size_t n, std::size_t k,
                     bool structure_cache) {
  EngineOptions opt;
  opt.max_rounds = 20 * k;
  opt.structure_cache = structure_cache;
  Engine engine(adv, placement::rooted(n, k),
                core::dispersion_factory_memoized(), opt);
  return engine.run();
}

TEST(CacheDeterminism, ReplayHeavyAdversaries) {
  // The adversaries the cache actually accelerates -- identical results
  // with it on and off, and the cached run visibly reused work.
  const std::size_t n = 30, k = 20;
  {
    StaticAdversary on(builders::torus(5, 6)), off(builders::torus(5, 6));
    const RunResult cached = run_replay(on, n, k, true);
    expect_identical(cached, run_replay(off, n, k, false), "static torus");
    EXPECT_TRUE(cached.dispersed);
    EXPECT_GT(cached.stats.graph_reuses, 0u);
    EXPECT_GT(cached.stats.broadcasts_reused + cached.stats.broadcast_deltas,
              0u);
    EXPECT_GT(cached.stats.validations_skipped, 0u);
    // The planner consulted the cross-round cache (whether a given round is
    // an exact hit, a delta, or a full build depends on how much occupancy
    // moved -- the unit tests above pin each mode individually).
    EXPECT_GT(cached.stats.sc_exact_hits + cached.stats.sc_delta_rounds +
                  cached.stats.sc_full_builds,
              0u);
  }
  {
    const auto make = [&] {
      return TIntervalAdversary(
          std::make_unique<RandomAdversary>(n, n / 4, 3), 5);
    };
    TIntervalAdversary on = make(), off = make();
    const RunResult cached = run_replay(on, n, k, true);
    expect_identical(cached, run_replay(off, n, k, false), "t-interval");
    EXPECT_GT(cached.stats.graph_reuses, 0u);
  }
  {
    Rng rng(9);
    std::vector<Graph> script;
    for (int i = 0; i < 3; ++i)
      script.push_back(builders::random_connected(n, n / 2, rng));
    ScriptedAdversary on(script), off(script);
    const RunResult cached = run_replay(on, n, k, true);
    expect_identical(cached, run_replay(off, n, k, false),
                     "scripted, repeat-last horizon");
    EXPECT_GT(cached.stats.graph_reuses, 0u);
  }
}

TEST(CacheDeterminism, UncachedRunReportsNoReuse) {
  // --no-structure-cache must reproduce the rebuild-everything loop, and
  // its stats must say so: reporting reuse it cannot perform would poison
  // any analysis built on the counters.
  StaticAdversary adv(builders::torus(5, 6));
  const RunResult r = run_replay(adv, 30, 20, false);
  EXPECT_EQ(r.stats.graph_reuses, 0u);
  EXPECT_EQ(r.stats.same_graph_rounds, 0u);
  EXPECT_EQ(r.stats.validations_skipped, 0u);
  EXPECT_EQ(r.stats.broadcasts_reused, 0u);
  EXPECT_EQ(r.stats.broadcast_deltas, 0u);
  EXPECT_EQ(r.stats.sc_exact_hits, 0u);
  EXPECT_EQ(r.stats.sc_delta_rounds, 0u);
  EXPECT_EQ(r.stats.sc_full_builds, 0u);
}

}  // namespace
}  // namespace dyndisp
