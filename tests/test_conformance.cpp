// Registry-driven adversary conformance suite: EVERY adversary registered
// in the campaign registry -- including ones added after this file was
// written -- must emit valid 1-interval connected round graphs for many
// rounds, several seeds, and evolving robot configurations. The suite is
// parameterized over Registry::adversary_names(), so registering a new
// adversary automatically enrolls it here (and in the dyndisp_check
// fuzzer), with no hand-enumerated switch to keep in sync.
//
// The adversaries run inside the real Engine (not a bare next_graph loop)
// so plan-probing adversaries (path-trap, clique-trap) get the probe they
// need, and the graphs checked are exactly the graphs an execution sees.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "campaign/registry.h"
#include "dynamic/dynamic_graph.h"
#include "dynamic/validator.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace dyndisp {
namespace {

class AdversaryConformance : public ::testing::TestWithParam<std::string> {};

TEST_P(AdversaryConformance, EveryEmittedGraphIsValid) {
  const auto& registry = campaign::Registry::instance();
  const std::string& name = GetParam();

  for (const std::uint64_t seed : {1ull, 5ull, 12ull}) {
    // Families may round the requested size (hypercube to a power of two,
    // grid/torus to their grid): always work with the adversary's actual
    // node count, never the requested one.
    auto adversary = registry.adversary(name, "random", 12, seed);
    const std::size_t n = adversary->node_count();
    ASSERT_GE(n, 2u) << name;
    const std::size_t k = std::max<std::size_t>(2, n / 2);

    Rng rng(seed * 31 + 7);
    const Configuration initial = placement::uniform_random(n, k, rng);
    const campaign::AlgorithmChoice algo = registry.algorithm("alg4", seed);

    EngineOptions options;
    options.record_trace = true;
    options.max_rounds = 40;  // traps never disperse; bound the run

    Engine engine(*adversary, initial, algo.factory, options);
    const RunResult result = engine.run();

    ASSERT_FALSE(result.trace.records().empty()) << name;
    for (const auto& rec : result.trace.records()) {
      ASSERT_EQ(rec.graph.node_count(), n)
          << name << " seed " << seed << " round " << rec.round;
      const std::string diag = validate_round_graph(rec.graph, n);
      ASSERT_TRUE(diag.empty())
          << name << " seed " << seed << " round " << rec.round << ": "
          << diag;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AdversaryConformance,
    ::testing::ValuesIn(campaign::Registry::instance().adversary_names()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string id = param_info.param;
      std::replace(id.begin(), id.end(), '-', '_');
      return id;
    });

TEST(AdversaryConformanceSuite, CoversTheWholeRegistry) {
  // Guard against the suite silently becoming vacuous: the registry ships
  // at least the adversaries the paper's experiments use.
  const auto names = campaign::Registry::instance().adversary_names();
  EXPECT_GE(names.size(), 11u);
  for (const char* required :
       {"random", "star-star", "static", "ring", "path-trap", "clique-trap"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << required;
  }
}

}  // namespace
}  // namespace dyndisp
