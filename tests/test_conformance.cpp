// Registry-driven adversary conformance suite: EVERY adversary registered
// in the campaign registry -- including ones added after this file was
// written -- must emit valid 1-interval connected round graphs for many
// rounds, several seeds, and evolving robot configurations. The suite is
// parameterized over Registry::adversary_names(), so registering a new
// adversary automatically enrolls it here (and in the dyndisp_check
// fuzzer), with no hand-enumerated switch to keep in sync.
//
// The adversaries run inside the real Engine (not a bare next_graph loop)
// so plan-probing adversaries (path-trap, clique-trap) get the probe they
// need, and the graphs checked are exactly the graphs an execution sees.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "campaign/registry.h"
#include "dynamic/dynamic_graph.h"
#include "dynamic/scripted_adversary.h"
#include "dynamic/static_adversary.h"
#include "dynamic/t_interval_adversary.h"
#include "dynamic/validator.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace dyndisp {
namespace {

class AdversaryConformance : public ::testing::TestWithParam<std::string> {};

TEST_P(AdversaryConformance, EveryEmittedGraphIsValid) {
  const auto& registry = campaign::Registry::instance();
  const std::string& name = GetParam();

  for (const std::uint64_t seed : {1ull, 5ull, 12ull}) {
    // Families may round the requested size (hypercube to a power of two,
    // grid/torus to their grid): always work with the adversary's actual
    // node count, never the requested one.
    auto adversary = registry.adversary(name, "random", 12, seed);
    const std::size_t n = adversary->node_count();
    ASSERT_GE(n, 2u) << name;
    const std::size_t k = std::max<std::size_t>(2, n / 2);

    Rng rng(seed * 31 + 7);
    const Configuration initial = placement::uniform_random(n, k, rng);
    const campaign::AlgorithmChoice algo = registry.algorithm("alg4", seed);

    EngineOptions options;
    options.record_trace = true;
    options.max_rounds = 40;  // traps never disperse; bound the run

    Engine engine(*adversary, initial, algo.factory, options);
    const RunResult result = engine.run();

    ASSERT_FALSE(result.trace.records().empty()) << name;
    for (const auto& rec : result.trace.records()) {
      ASSERT_EQ(rec.graph.node_count(), n)
          << name << " seed " << seed << " round " << rec.round;
      const std::string diag = validate_round_graph(rec.graph, n);
      ASSERT_TRUE(diag.empty())
          << name << " seed " << seed << " round " << rec.round << ": "
          << diag;
    }
  }
}

// Pins the same_as_last() reuse-hint contract for every registered
// adversary, in both modes the engine can operate in:
//  - always-call mode: whenever the hint is true, the graph next_graph then
//    returns must be operator==-equal (and fingerprint-equal) to the
//    previous round's graph;
//  - skip mode: a second instance with identical seed never calls
//    next_graph while the hint is true, and the graph it holds must still
//    track the always-call instance's emissions bit-for-bit (the hint must
//    survive skipped calls -- the staleness half of the contract).
TEST_P(AdversaryConformance, SameAsLastHintIsHonest) {
  const auto& registry = campaign::Registry::instance();
  const std::string& name = GetParam();

  for (const std::uint64_t seed : {2ull, 9ull}) {
    auto reference = registry.adversary(name, "random", 12, seed);
    auto skipper = registry.adversary(name, "random", 12, seed);
    const std::size_t n = reference->node_count();
    const std::size_t k = std::max<std::size_t>(2, n / 2);
    Rng rng(seed * 17 + 3);
    const Configuration conf = placement::uniform_random(n, k, rng);
    for (Adversary* adv : {reference.get(), skipper.get()}) {
      if (adv->wants_plan_probe()) {
        adv->set_plan_probe(
            [k](const Graph&) { return MovePlan(k, kInvalidPort); });
      }
    }

    Graph prev, held;
    bool have_prev = false, have_held = false;
    for (Round r = 0; r < 32; ++r) {
      const bool hint = reference->same_as_last(r, conf);
      const Graph emitted = reference->next_graph(r, conf);
      if (hint) {
        ASSERT_TRUE(have_prev) << name << " claimed reuse before emitting";
        ASSERT_EQ(emitted.fingerprint(), prev.fingerprint())
            << name << " seed " << seed << " round " << r;
        ASSERT_TRUE(emitted == prev)
            << name << " seed " << seed << " round " << r;
      }
      prev = emitted;
      have_prev = true;

      if (skipper->same_as_last(r, conf)) {
        ASSERT_TRUE(have_held) << name << " claimed reuse before emitting";
      } else {
        held = skipper->next_graph(r, conf);
        have_held = true;
      }
      ASSERT_EQ(held.fingerprint(), emitted.fingerprint())
          << name << " seed " << seed << " round " << r
          << ": skip-mode graph diverged";
      ASSERT_TRUE(held == emitted)
          << name << " seed " << seed << " round " << r
          << ": skip-mode graph diverged";
    }
  }
}

TEST(SameAsLast, StaticClaimsReuseOnlyAfterFirstEmission) {
  StaticAdversary adv(Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}}));
  const Configuration conf(4, {0, 1});
  EXPECT_FALSE(adv.same_as_last(0, conf));
  adv.next_graph(0, conf);
  EXPECT_TRUE(adv.same_as_last(1, conf));
  EXPECT_TRUE(adv.same_as_last(100, conf));
}

TEST(SameAsLast, StaticPortShuffleNeverClaimsReuse) {
  StaticAdversary adv(Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}}),
                      /*reshuffle_ports=*/true, /*seed=*/5);
  const Configuration conf(4, {0, 1});
  adv.next_graph(0, conf);
  EXPECT_FALSE(adv.same_as_last(1, conf));
}

TEST(SameAsLast, TIntervalClaimsInsideWindowOnly) {
  auto inner = std::make_unique<StaticAdversary>(
      Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}}));
  TIntervalAdversary adv(std::move(inner), /*t=*/3);
  const Configuration conf(4, {0, 1});
  EXPECT_FALSE(adv.same_as_last(0, conf));
  adv.next_graph(0, conf);
  EXPECT_TRUE(adv.same_as_last(1, conf));
  EXPECT_TRUE(adv.same_as_last(2, conf));
  EXPECT_FALSE(adv.same_as_last(3, conf));  // window boundary: consult inner
}

TEST(SameAsLast, ScriptedHonorsRepeatedLinesAndHorizon) {
  const Graph a = Graph::from_edges(3, {{0, 1}, {1, 2}});
  const Graph b = Graph::from_edges(3, {{0, 2}, {1, 2}});
  ScriptedAdversary adv({a, a, b, b});
  const Configuration conf(3, {0, 1});
  EXPECT_FALSE(adv.same_as_last(0, conf));
  adv.next_graph(0, conf);
  EXPECT_TRUE(adv.same_as_last(1, conf));   // identical script line
  EXPECT_FALSE(adv.same_as_last(2, conf));  // a -> b
  adv.next_graph(2, conf);
  EXPECT_TRUE(adv.same_as_last(3, conf));
  // Past the horizon the script repeats its last graph forever -- even when
  // the engine skipped the intermediate calls (stale last_idx_).
  EXPECT_TRUE(adv.same_as_last(1000, conf));
}

// Pins the set_thread_pool()/next_graph_into() contract for every
// registered adversary: the emitted graph sequence must be byte-identical
// (operator== compares full port-labeled adjacency) across
//  - the legacy next_graph() path with no pool,
//  - next_graph_into() with no pool, and
//  - next_graph_into() with a multi-lane ThreadPool attached,
// at sizes straddling both the adversaries' counter-builder cutoff
// (kCounterBuilderMinNodes = 128) and parallel_for's serial cutoff (192):
// n=96 exercises the legacy small-n generators, n=150 the counter path run
// serially even under a pool, n=400 the genuinely fanned-out path. Every
// emission is also structurally validated -- the small-n EveryEmittedGraphIsValid
// sweep never reaches the counter builders.
TEST_P(AdversaryConformance, SerialAndParallelEmissionsAreByteIdentical) {
  const auto& registry = campaign::Registry::instance();
  const std::string& name = GetParam();

  for (const std::size_t requested : {96u, 150u, 400u}) {
    const std::uint64_t seed = 21 + requested;
    auto legacy = registry.adversary(name, "random", requested, seed);
    auto serial = registry.adversary(name, "random", requested, seed);
    auto threaded = registry.adversary(name, "random", requested, seed);
    const std::size_t n = legacy->node_count();
    const std::size_t k = std::max<std::size_t>(2, n / 2);
    Rng rng(seed * 13 + 1);
    const Configuration conf = placement::uniform_random(n, k, rng);
    ThreadPool pool(3);
    threaded->set_thread_pool(&pool);
    for (Adversary* adv : {legacy.get(), serial.get(), threaded.get()}) {
      if (adv->wants_plan_probe()) {
        adv->set_plan_probe(
            [k](const Graph&) { return MovePlan(k, kInvalidPort); });
      }
    }

    Graph from_serial, from_pool;
    for (Round r = 0; r < 8; ++r) {
      const Graph reference = legacy->next_graph(r, conf);
      serial->next_graph_into(r, conf, from_serial);
      threaded->next_graph_into(r, conf, from_pool);
      ASSERT_EQ(reference.fingerprint(), from_serial.fingerprint())
          << name << " n=" << n << " round " << r << ": next_graph_into"
          << " diverged from next_graph";
      ASSERT_TRUE(reference == from_serial)
          << name << " n=" << n << " round " << r;
      ASSERT_EQ(reference.fingerprint(), from_pool.fingerprint())
          << name << " n=" << n << " round " << r << ": pooled emission"
          << " diverged from serial";
      ASSERT_TRUE(reference == from_pool)
          << name << " n=" << n << " round " << r;
      const std::string diag = validate_round_graph(from_pool, n);
      ASSERT_TRUE(diag.empty())
          << name << " n=" << n << " round " << r << ": " << diag;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AdversaryConformance,
    ::testing::ValuesIn(campaign::Registry::instance().adversary_names()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string id = param_info.param;
      std::replace(id.begin(), id.end(), '-', '_');
      return id;
    });

TEST(AdversaryConformanceSuite, CoversTheWholeRegistry) {
  // Guard against the suite silently becoming vacuous: the registry ships
  // at least the adversaries the paper's experiments use.
  const auto names = campaign::Registry::instance().adversary_names();
  EXPECT_GE(names.size(), 11u);
  for (const char* required :
       {"random", "star-star", "static", "ring", "path-trap", "clique-trap"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << required;
  }
}

}  // namespace
}  // namespace dyndisp
