// Tests for the flat PacketArena broadcast backend
// (EngineOptions::flat_packets): the CSR pool + offset tables are pure
// storage, so a run with the arena on must be bitwise identical --
// digest_run() equality -- to the legacy per-round vector<InfoPacket>
// broadcast on every engine-path corner (flat x soa x structure_cache),
// for every registered adversary, with crash faults, and with Byzantine
// tampering in play. The fuzzer repeats this differential over random
// configurations (check/fuzzer.cpp draws the flat_packets axis and the
// differential-packets oracle); this file pins the canonical rows and the
// arena's record-level equivalence to the legacy structs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <set>
#include <string>
#include <vector>

#include "baselines/blind_walk.h"
#include "baselines/dfs_dispersion.h"
#include "baselines/greedy_local.h"
#include "campaign/registry.h"
#include "check/differential.h"
#include "check/trial.h"
#include "core/dispersion.h"
#include "dynamic/random_adversary.h"
#include "dynamic/static_adversary.h"
#include "graph/builders.h"
#include "robots/placement.h"
#include "sim/byzantine.h"
#include "sim/engine.h"
#include "sim/packet_arena.h"
#include "sim/sensing.h"
#include "util/rng.h"

/// Process-global operator-new counter, mirroring bench_roundtime's: the
/// arena's whole point is fewer broadcast allocations, so this binary
/// counts them and BroadcastAllocationsCollapseAtScale asserts the >= 5x
/// acceptance claim directly. TU-local replacement -- the library never
/// pays for it.
std::atomic<std::uint64_t> g_heap_allocs{0};

// GCC's inliner pairs the replaceable operator new below with the default
// allocator in some expansions and flags the std::free as mismatched; the
// replacement is internally consistent (new -> malloc, delete -> free).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = ((size ? size : 1) + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace dyndisp {
namespace {

using check::diff_flat_packets;
using check::digest_run;
using check::Toolbox;
using check::TrialConfig;

// ---- Record-level equivalence: arena assembly vs legacy structs ----

TEST(PacketArena, AssemblyMatchesLegacyRecordForRecord) {
  const Graph g = builders::path(5);
  const Configuration conf(5, {0, 0, 1, 3, 3});
  const std::vector<InfoPacket> legacy = make_all_packets(g, conf, true);

  NodeIndex index;
  index.build(conf);
  PacketArena arena;
  std::size_t arena_bits = 0;
  assemble_arena_metered(arena, g, conf, true, index, &arena_bits);

  ASSERT_EQ(arena.headers.size(), legacy.size());
  const PacketSet flat{std::make_shared<const PacketArena>(std::move(arena))};
  const PacketSet vec = PacketSet::borrow(legacy);
  for (std::size_t i = 0; i < vec.size(); ++i) {
    SCOPED_TRACE("packet " + std::to_string(i));
    EXPECT_EQ(flat[i].sender(), vec[i].sender());
    EXPECT_EQ(flat[i].count(), vec[i].count());
    EXPECT_EQ(flat[i].degree(), vec[i].degree());
    EXPECT_TRUE(flat[i] == vec[i]);
  }
  EXPECT_TRUE(flat == vec);
  EXPECT_EQ(packet_set_digest(flat), packet_set_digest(vec));

  // Metering is part of the wire format: both backends report the same
  // total and the same per-packet sizes.
  const std::size_t k = conf.robot_count(), n = conf.node_count();
  std::size_t legacy_bits = 0;
  for (const InfoPacket& p : legacy) legacy_bits += packet_bit_size(p, k, n);
  EXPECT_EQ(arena_bits, legacy_bits);
  for (std::size_t i = 0; i < vec.size(); ++i)
    EXPECT_EQ(packet_bit_size(flat[i], k, n), packet_bit_size(vec[i], k, n));
}

TEST(PacketArena, TamperRewritesOnlyLiarPackets) {
  // The arena twin of the legacy tamper test: the lie rewrites the liar's
  // header in place and leaves every honest packet untouched.
  const Graph g = builders::path(4);
  const Configuration conf(4, {0, 0, 1});
  const std::vector<InfoPacket> honest = make_all_packets(g, conf, true);

  NodeIndex index;
  index.build(conf);
  PacketArena arena;
  assemble_arena_metered(arena, g, conf, true, index, nullptr);
  const ByzantineModel model({1}, ByzantineLie::kHideMultiplicity);
  model.tamper(arena);

  ASSERT_EQ(arena.headers.size(), 2u);
  const PacketView lied(arena, 0);
  EXPECT_EQ(lied.sender(), 1u);
  EXPECT_EQ(lied.count(), 1u);  // lied: really 2
  ASSERT_EQ(lied.robot_count(), 1u);
  EXPECT_EQ(lied.robot(0), 1u);
  EXPECT_TRUE(PacketView(arena, 1) == PacketView(honest[1]));
}

// ---- The acceptance claim: >= 5x fewer broadcast allocations at scale ----

TEST(PacketArena, BroadcastAllocationsCollapseAtScale) {
  // The mega-row regime: k = 10^5 robots, n = 1.5k, random placement,
  // random adversary. Assemble the same broadcasts through both backends
  // and count operator-new calls (replacement above). The legacy path pays
  // one vector per packet plus one per occupied neighbor, every round; the
  // warmed-up arena refills in place, so its steady-state count is near
  // zero and the >= 5x bound of the issue's acceptance criterion holds
  // with orders of magnitude to spare. (bench_roundtime's per-row
  // heap_allocs shows the same collapse diluted by graph construction and
  // planning -- this isolates the broadcast itself.)
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  const std::size_t k = 10000;  // sanitizer runs: same claim, smaller bill
#else
  const std::size_t k = 100000;
#endif
  const std::size_t n = k + k / 2, rounds = 3;
  RandomAdversary adv(n, n / 10, 3);
  Rng rng(1234);
  const Configuration conf = placement::uniform_random(n, k, rng);
  NodeIndex index;
  index.build(conf);

  std::vector<Graph> graphs;
  graphs.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r)
    graphs.push_back(adv.next_graph(static_cast<Round>(r), conf));

  // Warm-up grows the arena to the high-water capacity of the instance
  // (assemble_arena_metered clears and refills in place).
  PacketArena arena;
  for (const Graph& g : graphs)
    assemble_arena_metered(arena, g, conf, true, index, nullptr);

  const std::uint64_t before_flat = g_heap_allocs.load();
  for (const Graph& g : graphs)
    assemble_arena_metered(arena, g, conf, true, index, nullptr);
  const std::uint64_t flat_allocs = g_heap_allocs.load() - before_flat;

  std::uint64_t packets_assembled = 0;
  const std::uint64_t before_legacy = g_heap_allocs.load();
  for (const Graph& g : graphs)
    packets_assembled += make_all_packets(g, conf, true).size();
  const std::uint64_t legacy_allocs = g_heap_allocs.load() - before_legacy;

  RecordProperty("flat_allocs", static_cast<int>(flat_allocs));
  RecordProperty("legacy_allocs", static_cast<int>(legacy_allocs));
  std::printf("[          ] %llu packets: %llu legacy vs %llu arena allocs\n",
              static_cast<unsigned long long>(packets_assembled),
              static_cast<unsigned long long>(legacy_allocs),
              static_cast<unsigned long long>(flat_allocs));

  // Uniform placement occupies ~n(1 - e^(-k/n)) ~ 0.49n nodes; one packet
  // per occupied node per round.
  ASSERT_GT(packets_assembled, rounds * k / 2);
  EXPECT_GE(legacy_allocs, packets_assembled);
  EXPECT_GE(legacy_allocs, 5 * (flat_allocs + 1))
      << "legacy " << legacy_allocs << " vs flat " << flat_allocs
      << " allocations over " << rounds << " rounds";
}

// ---- Engine-level bitwise identity: flat vs legacy ----

void expect_identical(const RunResult& a, const RunResult& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(digest_run(a), digest_run(b));
  // Digest equality implies all of these; spelled out so a failure names
  // the first field that diverged instead of just two hashes.
  EXPECT_EQ(a.dispersed, b.dispersed);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_moves, b.total_moves);
  EXPECT_EQ(a.max_memory_bits, b.max_memory_bits);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packet_bits_sent, b.packet_bits_sent);
  EXPECT_EQ(a.stalled_rounds, b.stalled_rounds);
  EXPECT_EQ(a.max_occupied, b.max_occupied);
  EXPECT_TRUE(a.final_config == b.final_config);
}

struct ModelRow {
  const char* label;
  CommModel comm;
  bool neighborhood;
  AlgorithmFactory factory;
};

const ModelRow kRows[] = {
    {"global+nbhd (Algorithm 4, memoized)", CommModel::kGlobal, true,
     core::dispersion_factory_memoized()},
    {"global-only (blind walk)", CommModel::kGlobal, false,
     baselines::blind_walk_factory()},
    {"local-only (DFS dispersion)", CommModel::kLocal, false,
     baselines::dfs_dispersion_factory()},
    {"local+nbhd (greedy)", CommModel::kLocal, true,
     baselines::greedy_local_factory()},
};

RunResult run_row(const ModelRow& row, bool flat, bool soa = true,
                  bool structure_cache = true) {
  const std::size_t n = 36, k = 24;
  RandomAdversary adv(n, n / 3, 7);
  EngineOptions opt;
  opt.comm = row.comm;
  opt.neighborhood_knowledge = row.neighborhood;
  opt.max_rounds = 200;
  opt.flat_packets = flat;
  opt.soa = soa;
  opt.structure_cache = structure_cache;
  Engine engine(adv, placement::rooted(n, k), row.factory, opt);
  return engine.run();
}

TEST(FlatPacketDeterminism, AllTableOneModelRows) {
  for (const ModelRow& row : kRows)
    expect_identical(run_row(row, true), run_row(row, false), row.label);
}

TEST(FlatPacketDeterminism, AllEnginePathCorners) {
  // flat is a third independent toggle next to soa and structure_cache:
  // every corner of the cube must agree (the issue's acceptance corner set
  // is the quartet where at most one toggle is off; the full cube is
  // cheaper to spell than to argue about).
  for (const ModelRow& row : kRows) {
    const RunResult base = run_row(row, true, true, true);
    for (const bool flat : {true, false})
      for (const bool soa : {true, false})
        for (const bool sc : {true, false}) {
          if (flat && soa && sc) continue;
          expect_identical(base, run_row(row, flat, soa, sc),
                           std::string(row.label) + " flat=" +
                               (flat ? "on" : "off") + " soa=" +
                               (soa ? "on" : "off") + " sc=" +
                               (sc ? "on" : "off"));
        }
  }
}

TEST(FlatPacketDeterminism, ObservabilityCountersTrackTheActivePath) {
  // The flat run must say it ran flat; the legacy run must not claim arena
  // rounds it never performed (the counters feed bench analysis). Local
  // comm never broadcasts, so neither path counts flat rounds there.
  const RunResult flat = run_row(kRows[0], true);
  EXPECT_EQ(flat.stats.flat_rounds, flat.rounds);
  const RunResult legacy = run_row(kRows[0], false);
  EXPECT_EQ(legacy.stats.flat_rounds, 0u);
  const RunResult local = run_row(kRows[2], true);
  EXPECT_EQ(local.stats.flat_rounds, 0u);
  EXPECT_EQ(local.packets_sent, 0u);
}

// ---- Byzantine tamper: cross-path determinism ----

TEST(FlatPacketDeterminism, ByzantineTamperAgreesAcrossBackends) {
  // Tampered packets flow through the full-assembly path on both backends
  // (a tampered broadcast is never a delta source); the lie must land
  // identically -- including the deadlock the HideMultiplicity negative
  // result pins -- whichever structure carries it.
  const std::size_t n = 12, k = 8;
  for (const ByzantineLie lie :
       {ByzantineLie::kHideMultiplicity, ByzantineLie::kHideEmptyNeighbors}) {
    for (const bool dynamic : {false, true}) {
      SCOPED_TRACE(std::string("lie=") +
                   (lie == ByzantineLie::kHideMultiplicity ? "multiplicity"
                                                           : "empty-nbrs") +
                   (dynamic ? " dynamic" : " static"));
      RunResult results[2];
      for (const bool flat : {true, false}) {
        EngineOptions opt;
        opt.max_rounds = 20 * k;
        opt.record_progress = true;
        opt.flat_packets = flat;
        opt.byzantine =
            std::make_shared<ByzantineModel>(std::set<RobotId>{1, 2}, lie);
        if (dynamic) {
          RandomAdversary adv(n, 4, 5);
          Engine engine(adv, placement::rooted(n, k),
                        core::dispersion_factory(), opt);
          results[flat ? 0 : 1] = engine.run();
        } else {
          StaticAdversary adv(builders::path(n));
          Engine engine(adv, placement::rooted(n, k),
                        core::dispersion_factory(), opt);
          results[flat ? 0 : 1] = engine.run();
        }
      }
      expect_identical(results[0], results[1], "byzantine cross-backend");
    }
  }
}

// ---- Registry-wide differential, with and without faults ----

TEST(FlatPacketDeterminism, EveryRegisteredAdversary) {
  // diff_flat_packets runs the trial twice (flat forced on, then off)
  // through the exact construction path dyndisp_sim and the campaigns use,
  // so this covers adversary-specific broadcast reuse and delta paths
  // (static replay, t-interval stability, churn deltas) on both backends.
  const Toolbox toolbox;
  for (const std::string& adversary :
       campaign::Registry::instance().adversary_names()) {
    TrialConfig c;
    c.adversary = adversary;
    c.n = 24;
    c.k = 16;
    c.seed = 11;
    const auto report = diff_flat_packets(c, toolbox);
    EXPECT_TRUE(report.ok) << adversary << ": " << report.detail;
  }
}

TEST(FlatPacketDeterminism, SurvivesCrashFaults) {
  // Crashes shrink packets mid-run; dead robots must vanish from the pool
  // slices exactly as they vanish from the legacy vectors.
  const Toolbox toolbox;
  for (const std::uint64_t seed : {3u, 19u}) {
    TrialConfig c;
    c.n = 30;
    c.k = 20;
    c.faults = 5;
    c.seed = seed;
    const auto report = diff_flat_packets(c, toolbox);
    EXPECT_TRUE(report.ok) << "seed " << seed << ": " << report.detail;
  }
}

// ---- Config plumbing ----

TEST(FlatPacketTrialConfig, JsonRoundTripAndSummarySuffix) {
  TrialConfig c;
  c.flat_packets = false;
  const TrialConfig back = TrialConfig::parse_json(c.to_json());
  EXPECT_FALSE(back.flat_packets);
  EXPECT_NE(c.summary().find("|flat=off"), std::string::npos);
  // On is the default and stays out of the summary (ids of pre-existing
  // repro artifacts must not change).
  c.flat_packets = true;
  EXPECT_EQ(c.summary().find("flat"), std::string::npos);
  EXPECT_TRUE(TrialConfig::parse_json(c.to_json()).flat_packets);
}

}  // namespace
}  // namespace dyndisp
