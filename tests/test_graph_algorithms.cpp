// Tests for BFS/diameter/components/path utilities and graph IO/local views.
#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/builders.h"
#include "graph/io.h"
#include "graph/local_view.h"
#include "util/rng.h"

namespace dyndisp {
namespace {

TEST(BfsDistances, OnPath) {
  const Graph g = builders::path(5);
  const auto d = bfs_distances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(BfsDistances, UnreachableMarked) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(IsConnected, DetectsBothCases) {
  EXPECT_TRUE(is_connected(builders::cycle(5)));
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(is_connected(g));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_TRUE(is_connected(Graph(0)));
}

TEST(ConnectedComponents, TwoComponents) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(Diameter, KnownGraphs) {
  EXPECT_EQ(diameter(builders::path(7)), 6u);
  EXPECT_EQ(diameter(builders::star(10)), 2u);
  EXPECT_EQ(diameter(builders::complete(6)), 1u);
  EXPECT_EQ(diameter(builders::cycle(8)), 4u);
  EXPECT_EQ(diameter(Graph(1)), 0u);
}

TEST(Eccentricity, CenterVsLeafOfStar) {
  const Graph g = builders::star(6);
  EXPECT_EQ(eccentricity(g, 0), 1u);
  EXPECT_EQ(eccentricity(g, 3), 2u);
}

TEST(BfsTree, ParentPointersValid) {
  const Graph g = builders::grid(3, 3);
  const auto parent = bfs_tree(g, 4);
  EXPECT_EQ(parent[4], 4u);
  for (NodeId v = 0; v < 9; ++v) {
    if (v == 4) continue;
    EXPECT_TRUE(g.has_edge(v, parent[v])) << "node " << v;
  }
}

TEST(ShortestPath, EndpointsInclusive) {
  const Graph g = builders::path(6);
  const auto p = shortest_path(g, 1, 4);
  EXPECT_EQ(p, (std::vector<NodeId>{1, 2, 3, 4}));
}

TEST(ShortestPath, SameNode) {
  const Graph g = builders::path(3);
  EXPECT_EQ(shortest_path(g, 2, 2), std::vector<NodeId>{2});
}

TEST(ShortestPath, Unreachable) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(shortest_path(g, 0, 2).empty());
}

TEST(IsTree, Classification) {
  EXPECT_TRUE(is_tree(builders::path(4)));
  EXPECT_TRUE(is_tree(builders::star(5)));
  EXPECT_FALSE(is_tree(builders::cycle(4)));
  Rng rng(3);
  EXPECT_TRUE(is_tree(builders::random_tree(30, rng)));
}

// ---- IO ----

TEST(GraphIo, EdgeListRoundTrip) {
  const Graph g = builders::grid(2, 3);
  const Graph h = from_edge_list(to_edge_list(g));
  EXPECT_EQ(g, h);  // builders insert edges deterministically, ports match
}

TEST(GraphIo, EdgeListRejectsMalformed) {
  EXPECT_THROW(from_edge_list(""), std::invalid_argument);
  EXPECT_THROW(from_edge_list("2 1\n"), std::invalid_argument);       // truncated
  EXPECT_THROW(from_edge_list("2 1\n0 5\n"), std::invalid_argument);  // range
  EXPECT_THROW(from_edge_list("2 1\n1 1\n"), std::invalid_argument);  // loop
  EXPECT_THROW(from_edge_list("2 2\n0 1\n0 1\n"), std::invalid_argument);
}

TEST(GraphIo, DotContainsNodesAndEdges) {
  const Graph g = builders::path(3);
  const std::string dot = to_dot(g, {2, 0, 1});
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("salmon"), std::string::npos);     // multiplicity node
  EXPECT_NE(dot.find("lightblue"), std::string::npos);  // single-robot node
}

// ---- Local views (Theorem 1 symmetry machinery) ----

TEST(LocalView, ExtractsOwnAndNeighborCounts) {
  const Graph g = builders::path(4);  // 0-1-2-3
  const std::vector<std::size_t> occ{2, 1, 1, 0};
  const LocalView v = local_view(g, 1, occ);
  EXPECT_EQ(v.own_count, 1u);
  EXPECT_EQ(v.degree, 2u);
  EXPECT_EQ(v.neighbor_counts.size(), 2u);
}

TEST(LocalView, CanonicalEncodingIgnoresPortOrder) {
  Graph g(3);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  const std::vector<std::size_t> occ{3, 1, 0};
  const LocalView v = local_view(g, 1, occ);
  LocalView flipped = v;
  std::swap(flipped.neighbor_counts[0], flipped.neighbor_counts[1]);
  EXPECT_NE(encode_view(v), encode_view(flipped));
  EXPECT_EQ(encode_view_canonical(v), encode_view_canonical(flipped));
}

TEST(LocalView, Figure1InteriorNodesSymmetric) {
  // Fig. 1 with k = 6: path v-u-w-x-y plus an empty blob past y.
  // Nodes: 0=v(2 robots) 1=u 2=w 3=x 4=y, 5..7 empty blob.
  Graph g(8);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 6);
  g.add_edge(5, 7);
  const std::vector<std::size_t> occ{2, 1, 1, 1, 1, 0, 0, 0};
  // The paper's argument: w and x have identical local information (one
  // occupied singleton neighbor on each side), so no deterministic
  // port-oblivious rule can orient them both toward y.
  EXPECT_TRUE(views_symmetric(g, 2, 3, occ));
  // Whereas y sees an empty neighbor and is NOT symmetric to w.
  EXPECT_FALSE(views_symmetric(g, 2, 4, occ));
  // And the doubled end v is distinguishable from everything on the path.
  EXPECT_FALSE(views_symmetric(g, 0, 2, occ));
}

}  // namespace
}  // namespace dyndisp
