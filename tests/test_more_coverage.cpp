// Additional coverage: the per-round robot index, packet equality, trap
// adversaries from arbitrary starting configurations, degenerate adversary
// cases, and engine/metric interactions not covered elsewhere.
#include <gtest/gtest.h>

#include <map>

#include "baselines/greedy_local.h"
#include "core/dispersion.h"
#include "dynamic/clique_trap_adversary.h"
#include "dynamic/path_trap_adversary.h"
#include "dynamic/ring_adversary.h"
#include "dynamic/star_star_adversary.h"
#include "dynamic/static_adversary.h"
#include "dynamic/random_adversary.h"
#include "graph/builders.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "sim/sensing.h"
#include "util/rng.h"

namespace dyndisp {
namespace {

// ---- robots_by_node index ----

TEST(NodeIndex, MatchesRobotsAt) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.below(15);
    const std::size_t k = 1 + rng.below(n);
    Configuration conf = placement::uniform_random(n, k, rng);
    if (k > 2) conf.kill(static_cast<RobotId>(1 + rng.below(k)));
    const NodeRobots index = robots_by_node(conf);
    ASSERT_EQ(index.size(), n);
    for (NodeId v = 0; v < n; ++v) EXPECT_EQ(index[v], conf.robots_at(v));
  }
}

TEST(NodeIndex, PacketAssemblyIdenticalWithAndWithoutIndex) {
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 4 + rng.below(12);
    const std::size_t k = 2 + rng.below(n - 1);
    const Graph g = builders::random_connected(n, rng.below(n), rng);
    const Configuration conf = placement::uniform_random(n, k, rng);
    const NodeRobots index = robots_by_node(conf);
    EXPECT_EQ(make_all_packets(g, conf, true),
              make_all_packets(g, conf, true, &index));
    EXPECT_EQ(make_all_packets(g, conf, false),
              make_all_packets(g, conf, false, &index));
  }
}

TEST(InfoPacketEquality, DistinguishesEveryField) {
  InfoPacket a;
  a.sender = 1;
  a.count = 2;
  a.degree = 3;
  a.robots = {1, 4};
  a.occupied_neighbors = {{2, 5, 1, {5}}};
  InfoPacket b = a;
  EXPECT_EQ(a, b);
  b.degree = 4;
  EXPECT_NE(a, b);
  b = a;
  b.occupied_neighbors[0].port = 1;
  EXPECT_NE(a, b);
}

// ---- traps from arbitrary starting configurations ----

TEST(PathTrap, ContainsGreedyFromArbitraryStarts) {
  // The theorem's adversary herds ANY configuration into the Fig. 1 shape;
  // the implementation rebuilds the trap from whatever the robots did, so
  // containment must not depend on starting from the canonical picture.
  const std::size_t n = 13, k = 7;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    PathTrapAdversary adv(n);
    Rng rng(seed);
    EngineOptions opt;
    opt.comm = CommModel::kLocal;
    opt.neighborhood_knowledge = true;
    opt.allow_model_mismatch = true;
    opt.max_rounds = 60 * k;
    // Arbitrary shapes with at least one multiplicity (an already-dispersed
    // Conf_0 needs no solving and is outside the theorem's scope).
    const std::size_t groups = 2 + seed % (k - 2);
    Engine engine(adv, placement::grouped(n, k, groups, rng),
                  baselines::greedy_local_factory(), opt);
    const RunResult r = engine.run();
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_FALSE(r.dispersed);
    EXPECT_LT(r.max_occupied, k);
  }
}

TEST(CliqueTrap, DegenerateRoundsCountedWhenAlphaTooSmall) {
  // With alpha < 3 occupied nodes the clique construction is impossible;
  // the adversary must fall back gracefully and count the round.
  const std::size_t n = 8;
  CliqueTrapAdversary adv(n);
  const Configuration rooted = placement::rooted(n, 4);  // alpha = 1
  const Graph g = adv.next_graph(0, rooted);
  EXPECT_TRUE(g.validate().empty());
  EXPECT_EQ(adv.degenerate_rounds(), 1u);
}

TEST(StarStar, NameAndDegenerateEmptySide) {
  StarStarAdversary adv(5);
  EXPECT_EQ(adv.name(), "star-star-lower-bound");
  // k = n: no empty nodes; the adversary must still emit a connected graph.
  Configuration full(5, {0, 1, 2, 3, 4});
  EXPECT_TRUE(adv.next_graph(0, full).validate().empty());
}

TEST(RingAdversary, MinimumRingSize) {
  RingAdversary adv(3, RingAdversary::Strategy::kRandomEdge, 1);
  const Configuration conf = placement::rooted(3, 2);
  for (Round r = 0; r < 10; ++r) {
    const Graph g = adv.next_graph(r, conf);
    EXPECT_TRUE(g.validate().empty());
    EXPECT_GE(g.edge_count(), 2u);
  }
}

// ---- engine details ----

TEST(Engine, PacketBitsZeroUnderLocalComm) {
  StaticAdversary adv(builders::star(6));
  EngineOptions opt;
  opt.comm = CommModel::kLocal;
  opt.neighborhood_knowledge = true;
  opt.max_rounds = 50;
  opt.allow_model_mismatch = true;
  Engine engine(adv, placement::rooted(6, 4),
                baselines::greedy_local_factory(), opt);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  EXPECT_EQ(r.packets_sent, 0u);
  EXPECT_EQ(r.packet_bits_sent, 0u);
}

TEST(Engine, StarStarPacketBitsGrowQuadraticallyInK) {
  // Under star-star the component is one big star: each packet lists up to
  // alpha neighbors, so per-round volume is Theta(k^2) bits near the end.
  auto run_k = [](std::size_t k) {
    const std::size_t n = k + 4;
    StarStarAdversary adv(n);
    EngineOptions opt;
    opt.max_rounds = 10 * k;
    Engine engine(adv, placement::rooted(n, k), core::dispersion_factory(),
                  opt);
    return engine.run().packet_bits_sent;
  };
  const std::size_t b8 = run_k(8), b16 = run_k(16);
  EXPECT_GT(b16, 4 * b8);  // super-linear growth in k
}

TEST(Engine, ValidatorOptionCatchesBadAdversary) {
  // An adversary emitting a disconnected graph must be rejected when
  // validation is on (the default).
  class BadAdversary final : public Adversary {
   public:
    std::string name() const override { return "bad"; }
    std::size_t node_count() const override { return 4; }
    Graph next_graph(Round, const Configuration&) override {
      Graph g(4);
      g.add_edge(0, 1);  // nodes 2, 3 disconnected
      return g;
    }
  };
  BadAdversary adv;
  EngineOptions opt;
  Engine engine(adv, placement::rooted(4, 2), core::dispersion_factory(),
                opt);
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(Dispersion, AtMostOneRobotPerEdgePerRound) {
  // Section II: "Any number of robots are allowed to move along an edge at
  // any round although limiting it to one is sufficient in our algorithm."
  // Verify the sufficiency claim: under Algorithm 4 (fault-free,
  // synchronous) no edge ever carries two robots in the same round --
  // sliding paths are node-disjoint and exits to empty nodes leave from
  // distinct endpoints.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const std::size_t n = 16, k = 12;
    RandomAdversary adv(n, 6, seed);
    Rng rng(seed);
    EngineOptions opt;
    opt.max_rounds = 10 * k;
    opt.record_trace = true;
    Engine engine(adv, placement::grouped(n, k, 3, rng),
                  core::dispersion_factory(), opt);
    const RunResult r = engine.run();
    ASSERT_TRUE(r.dispersed);
    for (const auto& rec : r.trace.records()) {
      std::map<std::pair<NodeId, NodeId>, int> edge_use;
      for (RobotId id = 1; id <= k; ++id) {
        if (rec.moves[id - 1] == kInvalidPort) continue;
        const NodeId from = rec.before.position(id);
        const NodeId to = rec.after.position(id);
        ++edge_use[{std::min(from, to), std::max(from, to)}];
      }
      for (const auto& [edge, uses] : edge_use) {
        EXPECT_EQ(uses, 1) << "edge {" << edge.first << "," << edge.second
                           << "} carried " << uses << " robots in round "
                           << rec.round;
      }
    }
  }
}

TEST(Dispersion, ScaleSmokeK96) {
  RandomAdversary adv(144, 48, 3);
  EngineOptions opt;
  opt.max_rounds = 960;
  opt.record_progress = true;
  Engine engine(adv, placement::rooted(144, 96),
                core::dispersion_factory_memoized(), opt);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  EXPECT_LE(r.rounds, 96u);
  EXPECT_EQ(r.stalled_rounds, 0u);
}

}  // namespace
}  // namespace dyndisp
