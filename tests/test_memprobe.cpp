// Tests for the heap-allocation probe (util/memprobe.h): the counter and
// AllocGuard mechanics, and -- the reason the probe exists -- the runtime
// twin of the hotpath-alloc lint rule: a warmed-up engine round under the
// retained arena/SoA/flat-packet layout performs ZERO heap allocations.
// The lint rule proves no allocating call is statically reachable from a
// DYNDISP_HOT root outside suppressed slow paths; this binary installs the
// operator-new hook and proves the slow paths actually stop firing once
// every retained buffer is warm.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "dynamic/static_adversary.h"
#include "graph/builders.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "util/memprobe.h"

// This test binary measures real allocations: install the program-wide
// operator-new hook (exactly one TU per binary may do this).
DYNDISP_MEMPROBE_DEFINE_GLOBAL_NEW

namespace dyndisp {
namespace {

TEST(Memprobe, CounterIsMonotonic) {
  const std::uint64_t before = memprobe::allocation_count();
  memprobe::count_allocation();
  EXPECT_GE(memprobe::allocation_count(), before + 1);
}

TEST(Memprobe, HookFeedsCounter) {
  const std::uint64_t before = memprobe::allocation_count();
  std::vector<int> v(1024);
  std::iota(v.begin(), v.end(), 0);
  ASSERT_EQ(v[1023], 1023);
  EXPECT_GE(memprobe::allocation_count(), before + 1);
}

TEST(Memprobe, AllocGuardWindowsDeltas) {
  memprobe::AllocGuard outer;
  auto a = std::make_unique<int>(1);
  ASSERT_NE(a, nullptr);
  const std::uint64_t after_one = outer.delta();
  EXPECT_GE(after_one, 1u);

  memprobe::AllocGuard inner;
  EXPECT_EQ(inner.delta(), 0u);  // fresh window excludes prior allocations
  auto b = std::make_unique<int>(2);
  ASSERT_NE(b, nullptr);
  EXPECT_GE(inner.delta(), 1u);
  EXPECT_GE(outer.delta(), after_one + 1);
}

// The steady-state algorithm: every robot stays put forever, serializes no
// state, and declares no optional view field. This pins the engine's OWN
// per-round machinery -- index rebuild, broadcast reuse, view fill, plan
// buffer, state refresh -- with no algorithm-side allocations mixed in.
class StayRobot final : public RobotAlgorithm {
 public:
  std::unique_ptr<RobotAlgorithm> clone() const override {
    return std::make_unique<StayRobot>(*this);
  }
  Port step(const RobotView&) override { return kInvalidPort; }
  void serialize(BitWriter&) const override {}
  std::string name() const override { return "stay"; }
  bool requires_global_comm() const override { return false; }
  bool requires_neighborhood() const override { return false; }
  ViewNeeds view_needs() const override {
    ViewNeeds needs;
    needs.colocated = false;
    needs.colocated_states = false;
    needs.occupied_neighbors = false;
    needs.empty_ports = false;
    return needs;
  }
};

// The acceptance pin: at k = 10^4 on a static graph with the retained
// layouts on (structure_cache + soa + flat_packets, the defaults) and one
// thread, every warmed-up round performs exactly zero heap allocations.
// The first rounds grow the retained buffers (index, arena, state table,
// plan buffer) and MUST allocate; the tail must be allocation-free.
TEST(Memprobe, SteadyStateRoundsAreAllocationFree) {
  constexpr std::size_t kRobots = 10000;
  constexpr Round kRounds = 40;
  constexpr Round kWarmup = 10;

  StaticAdversary adv(builders::path(kRobots));
  EngineOptions opt;
  opt.max_rounds = kRounds;
  opt.threads = 1;
  opt.alloc_probe = true;
  Engine engine(
      adv, placement::rooted(kRobots, kRobots),
      [](RobotId, std::size_t) { return std::make_unique<StayRobot>(); },
      opt);

  const RunResult res = engine.run();
  ASSERT_FALSE(res.dispersed);  // all robots stayed home
  ASSERT_EQ(res.allocs_per_round.size(), static_cast<std::size_t>(kRounds));
  EXPECT_GT(res.allocs_per_round.front(), 0u);  // the hook is really live
  for (Round r = kWarmup; r < kRounds; ++r) {
    EXPECT_EQ(res.allocs_per_round[r], 0u) << "allocation in round " << r;
  }
}

// Without the option the probe records nothing (and the golden suites pin
// that enabling it changes no run observable).
TEST(Memprobe, ProbeOffRecordsNothing) {
  StaticAdversary adv(builders::path(8));
  EngineOptions opt;
  opt.max_rounds = 4;
  Engine engine(adv, placement::rooted(8, 4),
                [](RobotId, std::size_t) { return std::make_unique<StayRobot>(); },
                opt);
  EXPECT_TRUE(engine.run().allocs_per_round.empty());
}

}  // namespace
}  // namespace dyndisp
