// The correctness harness's own test suite (src/check): config round-trips,
// oracle gating, the differential oracles, and -- the load-bearing part --
// proof that the harness catches what it claims to catch: each planted bug
// (check/planted.h) is convicted by the right oracle at the right round,
// shrunk to a strictly smaller scripted repro, and the dumped artifact
// replays to the same violation.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "check/differential.h"
#include "check/fuzzer.h"
#include "check/oracles.h"
#include "check/planted.h"
#include "check/repro.h"
#include "check/shrinker.h"
#include "check/trial.h"
#include "graph/builders.h"
#include "util/rng.h"

namespace dyndisp::check {
namespace {

// ---- TrialConfig ----

TEST(TrialConfig, JsonRoundTripsEveryFieldIncludingScript) {
  TrialConfig c;
  c.algorithm = "dfs";
  c.adversary = "churn";
  c.family = "cycle";
  c.placement = "grouped";
  c.comm = "global";
  c.n = 9;
  c.k = 5;
  c.groups = 2;
  c.faults = 1;
  c.max_rounds = 44;
  c.seed = 123;
  c.script = {builders::path(9), builders::cycle(9)};

  const TrialConfig back = TrialConfig::parse_json(c.to_json());
  EXPECT_EQ(back.summary(), c.summary());
  EXPECT_EQ(back.algorithm, c.algorithm);
  EXPECT_EQ(back.comm, c.comm);
  EXPECT_EQ(back.n, c.n);
  EXPECT_EQ(back.k, c.k);
  EXPECT_EQ(back.groups, c.groups);
  EXPECT_EQ(back.faults, c.faults);
  EXPECT_EQ(back.max_rounds, c.max_rounds);
  EXPECT_EQ(back.seed, c.seed);
  ASSERT_EQ(back.script.size(), 2u);
  EXPECT_EQ(back.script[0], c.script[0]);
  EXPECT_EQ(back.script[1], c.script[1]);
}

TEST(TrialConfig, ParseRejectsUnknownKeysAndGarbage) {
  EXPECT_THROW(TrialConfig::parse_json("{\"algorithm\": \"alg4\", \"nope\": 1}"),
               std::exception);
  EXPECT_THROW(TrialConfig::parse_json("not json at all"), std::exception);
}

TEST(TrialConfig, MinimumNReflectsComponentFloors) {
  TrialConfig c;
  c.adversary = "ring";
  EXPECT_EQ(minimum_n(c), 3u);
  c.adversary = "ring-worst";
  EXPECT_EQ(minimum_n(c), 3u);
  c.adversary = "static";
  c.family = "torus";
  EXPECT_EQ(minimum_n(c), 7u);
  c.family = "cycle";
  EXPECT_EQ(minimum_n(c), 3u);
  c.adversary = "random";
  c.family = "random";
  EXPECT_EQ(minimum_n(c), 2u);
}

// ---- oracle gating ----

TEST(Oracles, LemmaClaimsFollowNamesAndRegistrations) {
  const Toolbox toolbox;
  EXPECT_TRUE(toolbox.claims_lemmas("alg4"));
  EXPECT_TRUE(toolbox.claims_lemmas("alg4-bfs"));
  EXPECT_FALSE(toolbox.claims_lemmas("dfs"));
  EXPECT_FALSE(toolbox.claims_lemmas("random-walk"));

  const Toolbox lazy = planted_toolbox("lazy");
  EXPECT_TRUE(lazy.claims_lemmas(kPlantedLazyAlgorithm));
  EXPECT_TRUE(lazy.is_extension(kPlantedLazyAlgorithm));
  EXPECT_FALSE(lazy.is_extension("alg4"));
}

TEST(Oracles, ProfileGatesOnClaimsCommAndFaults) {
  TrialConfig c;
  c.faults = 0;

  OracleProfile p = oracle_profile(c, /*claims_lemmas=*/true);
  EXPECT_TRUE(p.occupied_monotone);
  EXPECT_TRUE(p.progress);
  EXPECT_TRUE(p.memory);
  EXPECT_TRUE(p.dispersal);
  EXPECT_TRUE(p.round_bound);
  EXPECT_FALSE(p.faulty_round_bound);

  c.faults = 2;  // fault-free-only oracles drop out, Theorem 5 binds
  p = oracle_profile(c, true);
  EXPECT_FALSE(p.progress);
  EXPECT_FALSE(p.occupied_monotone);
  EXPECT_FALSE(p.round_bound);
  EXPECT_TRUE(p.faulty_round_bound);
  EXPECT_TRUE(p.dispersal);

  c.comm = "local";  // outside the model the paper proves the lemmas in
  p = oracle_profile(c, true);
  EXPECT_FALSE(p.memory);
  EXPECT_FALSE(p.dispersal);
  EXPECT_FALSE(p.faulty_round_bound);

  // No claims: only the engine's always-on round-graph safety applies.
  c.comm = "default";
  p = oracle_profile(c, /*claims_lemmas=*/false);
  EXPECT_FALSE(p.dispersal);
  EXPECT_FALSE(p.memory);
}

// ---- run_checked on healthy components ----

TEST(RunChecked, Alg4PassesAllOraclesOnRegistryAdversaries) {
  for (const char* adversary : {"random", "star-star", "static", "tree"}) {
    TrialConfig c;
    c.algorithm = "alg4";
    c.adversary = adversary;
    c.family = "cycle";
    c.placement = "rooted";
    c.n = 10;
    c.k = 7;
    c.seed = 2;
    const CheckedOutcome out = run_checked(c, Toolbox{});
    ASSERT_TRUE(out.completed) << adversary;
    EXPECT_FALSE(out.violation.has_value())
        << adversary << ": " << (out.violation ? out.violation->message : "");
    EXPECT_TRUE(out.result.dispersed) << adversary;
  }
}

TEST(RunChecked, BaselinesAreNotHeldToTheLemmas) {
  // random-walk stalls and regresses freely; with no lemma claims the only
  // oracle is graph safety, so a short undispersed run is still clean.
  TrialConfig c;
  c.algorithm = "random-walk";
  c.adversary = "random";
  c.n = 8;
  c.k = 6;
  c.max_rounds = 20;
  c.seed = 3;
  const CheckedOutcome out = run_checked(c, Toolbox{});
  ASSERT_TRUE(out.completed);
  EXPECT_FALSE(out.violation.has_value())
      << (out.violation ? out.violation->message : "");
}

TEST(RunChecked, DispersalOracleFiresWhenTheHorizonIsTooShort) {
  TrialConfig c;
  c.algorithm = "alg4";
  c.adversary = "static";
  c.family = "path";
  c.placement = "rooted";
  c.n = 12;
  c.k = 10;
  c.max_rounds = 2;  // a rooted path run cannot disperse 10 robots by then
  c.seed = 1;
  const CheckedOutcome out = run_checked(c, Toolbox{});
  ASSERT_TRUE(out.violation.has_value());
  EXPECT_EQ(out.violation->oracle, "dispersal");
}

// ---- planted bugs: the acceptance criteria of the harness ----

TEST(PlantedDisconnect, CaughtAtTheExactRoundShrunkAndReplayed) {
  const Toolbox toolbox = planted_toolbox("disconnect");
  TrialConfig c;
  c.algorithm = "random-walk";  // never disperses this fast: the run is
  c.adversary = kPlantedDisconnectAdversary;  // guaranteed alive at round 6
  c.placement = "rooted";
  c.n = 14;
  c.k = 14;
  c.seed = 5;

  const CheckedOutcome out = run_checked(c, toolbox);
  ASSERT_TRUE(out.violation.has_value());
  EXPECT_EQ(out.violation->oracle, "round-graph");
  EXPECT_EQ(out.violation->round, kDisconnectRound);
  EXPECT_NE(out.violation->message.find("not connected"), std::string::npos)
      << out.violation->message;

  const ShrinkResult shrunk = shrink(c, *out.violation, toolbox);
  EXPECT_EQ(shrunk.violation.oracle, "round-graph");
  // The shrinker must strictly reduce n and capture + strictly reduce the
  // adversary's round script.
  EXPECT_LT(shrunk.config.n, c.n);
  ASSERT_GT(shrunk.captured_script_length, 0u);
  ASSERT_FALSE(shrunk.config.script.empty());
  EXPECT_LT(shrunk.config.script.size(), shrunk.captured_script_length);
  // Dropping script prefixes pulls the violation toward round 0.
  EXPECT_LE(shrunk.violation.round, out.violation->round);

  // The artifact must replay to the same violation after a disk round-trip.
  ReproArtifact artifact;
  artifact.config = shrunk.config;
  artifact.expected = shrunk.violation;
  artifact.note = "planted disconnect (test)";
  const std::string path =
      ::testing::TempDir() + "dyndisp_planted_disconnect_repro.json";
  write_artifact(artifact, path);
  const ReproArtifact loaded = load_artifact(path);
  EXPECT_EQ(loaded.config.summary(), shrunk.config.summary());
  const ReplayOutcome replayed = replay(loaded, toolbox);
  EXPECT_TRUE(replayed.reproduced);
  ASSERT_TRUE(replayed.violation.has_value());
  EXPECT_EQ(replayed.violation->oracle, "round-graph");
}

TEST(PlantedLazy, ProgressOracleConvictsAtTheLazyRound) {
  const Toolbox toolbox = planted_toolbox("lazy");
  TrialConfig c;
  c.algorithm = kPlantedLazyAlgorithm;
  c.adversary = "static";
  c.family = "path";  // rooted path: exactly one new node per round, so the
  c.placement = "rooted";  // run cannot disperse before the plant triggers
  c.n = 12;
  c.k = 10;
  c.seed = 4;

  const CheckedOutcome out = run_checked(c, toolbox);
  ASSERT_TRUE(out.violation.has_value());
  EXPECT_EQ(out.violation->oracle, "progress");
  EXPECT_EQ(out.violation->round, kLazyRound);

  const ShrinkResult shrunk = shrink(c, *out.violation, toolbox);
  EXPECT_EQ(shrunk.violation.oracle, "progress");
  EXPECT_LT(shrunk.config.n, c.n);
  EXPECT_LE(shrunk.config.k, c.k);
  ASSERT_GT(shrunk.captured_script_length, 0u);
  ASSERT_FALSE(shrunk.config.script.empty());
  EXPECT_LT(shrunk.config.script.size(), shrunk.captured_script_length);
  // Replaying the minimized scripted config still convicts the plant.
  const CheckedOutcome again = run_checked(shrunk.config, toolbox);
  ASSERT_TRUE(again.violation.has_value());
  EXPECT_EQ(again.violation->oracle, "progress");
}

// ---- repro artifacts ----

TEST(Repro, ArtifactJsonRoundTrips) {
  ReproArtifact artifact;
  artifact.config.algorithm = "alg4";
  artifact.config.n = 7;
  artifact.config.k = 4;
  artifact.config.script = {builders::cycle(7)};
  artifact.expected = Violation{"round-graph", 3, "graph is not connected"};
  artifact.note = "hand-written";

  const ReproArtifact back = parse_artifact(artifact_json(artifact));
  EXPECT_EQ(back.config.summary(), artifact.config.summary());
  EXPECT_EQ(back.expected.oracle, "round-graph");
  EXPECT_EQ(back.expected.round, 3u);
  EXPECT_EQ(back.expected.message, "graph is not connected");
  EXPECT_EQ(back.note, "hand-written");
  ASSERT_EQ(back.config.script.size(), 1u);
  EXPECT_EQ(back.config.script[0], artifact.config.script[0]);
}

TEST(Repro, ParseRejectsMalformedArtifacts) {
  EXPECT_THROW(parse_artifact("not json"), std::exception);
  EXPECT_THROW(parse_artifact("{}"), std::invalid_argument);
  EXPECT_THROW(parse_artifact("{\"dyndisp_check_repro\": 99}"),
               std::invalid_argument);
}

// ---- differential oracles ----

TEST(Differential, DigestIsDeterministicAndDiscriminating) {
  TrialConfig c;
  c.algorithm = "alg4";
  c.adversary = "random";
  c.n = 12;
  c.k = 8;
  c.seed = 7;
  const Toolbox toolbox;
  const std::uint64_t a = digest_run(run_plain(c, toolbox, 1));
  const std::uint64_t b = digest_run(run_plain(c, toolbox, 1));
  EXPECT_EQ(a, b);  // same trial, same digest
  c.seed = 8;
  EXPECT_NE(digest_run(run_plain(c, toolbox, 1)), a);  // different run
}

TEST(Differential, ThreadsAndConstructionAgreeOnTypicalTrials) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    TrialConfig c;
    c.algorithm = "alg4";
    c.adversary = "random";
    c.family = "random";
    c.placement = "random";
    c.n = 14;
    c.k = 9;
    c.seed = seed;
    const DiffReport threads = diff_threads(c, Toolbox{}, 4);
    EXPECT_TRUE(threads.ok) << threads.detail;
    const DiffReport construction = diff_construction(c);
    EXPECT_TRUE(construction.ok) << construction.detail;
  }
}

// ---- the fuzzer itself ----

TEST(Fuzzer, RandomTrialsAreWellFormed) {
  Rng rng(99);
  FuzzOptions options;
  options.max_n = 20;
  const Toolbox toolbox;
  for (int i = 0; i < 50; ++i) {
    const TrialConfig c = random_trial(rng, toolbox, options);
    // n is normalized to the adversary's actual node count, so k, groups,
    // and the placement always fit the emitted graphs.
    const auto adversary =
        toolbox.adversary(c.adversary, c.family, c.n, c.seed);
    EXPECT_EQ(adversary->node_count(), c.n) << c.summary();
    EXPECT_GE(c.k, 2u);
    EXPECT_LE(c.k, c.n);
    EXPECT_GE(c.groups, 1u);
    EXPECT_LE(c.groups, c.k);
    EXPECT_LT(c.faults, c.k);
    EXPECT_GE(c.n, minimum_n(c));
  }
}

TEST(Fuzzer, HundredRegistryTrialsAreCleanUnderBothDifferentials) {
  // The acceptance run: >= 100 fuzzed trials over the real registry, every
  // clean trial differential-checked (threads 1 vs 4, and campaign-path vs
  // sim-path construction). Any oracle or differential failure here is a
  // real bug in the library, not in the harness.
  FuzzOptions options;
  options.trials = 100;
  options.max_n = 16;
  options.base_seed = 20260806;
  options.differential = true;
  options.diff_threads = 4;
  options.max_failures = 1;
  const FuzzReport report = fuzz(options, Toolbox{});
  EXPECT_EQ(report.trials_run, 100u);
  EXPECT_EQ(report.differential_trials, 100u);
  ASSERT_TRUE(report.clean())
      << "[" << report.failures.front().violation.oracle << "] "
      << report.failures.front().violation.message << " in "
      << report.failures.front().original.summary();
}

TEST(Fuzzer, PlantedToolboxesConvictThroughTheFullPipeline) {
  // End-to-end: fuzz the planted pool, expect a shrunk failure with the
  // right oracle (the CLI's --plant self-tests run the same path).
  FuzzOptions options;
  options.trials = 25;
  options.max_n = 14;
  options.base_seed = 3;
  options.differential = false;
  options.max_failures = 1;

  const FuzzReport disconnect = fuzz(options, planted_toolbox("disconnect"));
  ASSERT_FALSE(disconnect.clean());
  EXPECT_EQ(disconnect.failures.front().violation.oracle, "round-graph");

  // Fault-free, so the convicting oracle is Lemma 7's progress check (under
  // faults that oracle is gated off and the plant is instead convicted
  // post-run by the dispersal oracle).
  options.fault_probability = 0.0;
  const FuzzReport lazy = fuzz(options, planted_toolbox("lazy"));
  ASSERT_FALSE(lazy.clean());
  EXPECT_EQ(lazy.failures.front().violation.oracle, "progress");
}

}  // namespace
}  // namespace dyndisp::check
