// Tests for the dynamic-graph layer: every adversary must emit valid
// 1-interval connected round graphs, and the paper-specific adversaries must
// realize their defining structural properties.
#include <gtest/gtest.h>

#include <memory>

#include "dynamic/churn_adversary.h"
#include "dynamic/clique_trap_adversary.h"
#include "dynamic/dynamic_graph.h"
#include "dynamic/path_trap_adversary.h"
#include "dynamic/random_adversary.h"
#include "dynamic/scripted_adversary.h"
#include "dynamic/star_star_adversary.h"
#include "dynamic/static_adversary.h"
#include "dynamic/t_interval_adversary.h"
#include "dynamic/validator.h"
#include "graph/algorithms.h"
#include "graph/builders.h"
#include "robots/placement.h"
#include "util/rng.h"

namespace dyndisp {
namespace {

Configuration some_config(std::size_t n, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  return placement::uniform_random(n, k, rng);
}

// ---- validator ----

TEST(Validator, AcceptsConnectedGraph) {
  EXPECT_TRUE(validate_round_graph(builders::cycle(5), 5).empty());
}

TEST(Validator, RejectsWrongNodeCount) {
  EXPECT_FALSE(validate_round_graph(builders::cycle(5), 6).empty());
}

TEST(Validator, RejectsDisconnected) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_NE(validate_round_graph(g, 4).find("not connected"),
            std::string::npos);
}

// ---- apply_plan ----

TEST(ApplyPlan, MovesAliveRobotsOnly) {
  const Graph g = builders::path(4);
  Configuration conf(4, {0, 0, 2});
  conf.kill(3);
  MovePlan plan{1, kInvalidPort, 1};  // robot1 via port1, robot3 (dead) via 1
  const Configuration next = apply_plan(g, conf, plan);
  EXPECT_EQ(next.position(1), 1u);
  EXPECT_EQ(next.position(2), 0u);
  EXPECT_EQ(next.position(3), 2u);  // unchanged: dead robots never move
}

// ---- generic adversary validity sweep ----

using AdversaryMaker = std::unique_ptr<Adversary> (*)(std::size_t n);

std::unique_ptr<Adversary> make_static(std::size_t n) {
  return std::make_unique<StaticAdversary>(builders::cycle(n));
}
std::unique_ptr<Adversary> make_static_shuffle(std::size_t n) {
  return std::make_unique<StaticAdversary>(builders::grid(2, n / 2), true, 3);
}
std::unique_ptr<Adversary> make_random(std::size_t n) {
  return std::make_unique<RandomAdversary>(n, n / 3, 5);
}
std::unique_ptr<Adversary> make_churn(std::size_t n) {
  Rng rng(11);
  return std::make_unique<ChurnAdversary>(
      builders::random_connected(n, n / 2, rng), 2, 7);
}
std::unique_ptr<Adversary> make_star_star(std::size_t n) {
  return std::make_unique<StarStarAdversary>(n);
}
std::unique_ptr<Adversary> make_star_star_shuffled(std::size_t n) {
  return std::make_unique<StarStarAdversary>(n, true, 23);
}
std::unique_ptr<Adversary> make_t_interval(std::size_t n) {
  return std::make_unique<TIntervalAdversary>(
      std::make_unique<RandomAdversary>(n, n / 4, 9), 3);
}
std::unique_ptr<Adversary> make_path_trap(std::size_t n) {
  return std::make_unique<PathTrapAdversary>(n);
}
std::unique_ptr<Adversary> make_clique_trap(std::size_t n) {
  return std::make_unique<CliqueTrapAdversary>(n);
}

struct AdversaryCase {
  const char* name;
  AdversaryMaker make;
};

class AdversaryValidity : public ::testing::TestWithParam<AdversaryCase> {};

TEST_P(AdversaryValidity, EmitsValidGraphsForManyRoundsAndConfigs) {
  const std::size_t n = 12;
  auto adversary = GetParam().make(n);
  EXPECT_EQ(adversary->node_count(), n);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Configuration conf = some_config(n, 8, seed);
    for (Round r = 0; r < 25; ++r) {
      const Graph g = adversary->next_graph(r, conf);
      ASSERT_TRUE(validate_round_graph(g, n).empty())
          << GetParam().name << " round " << r << ": "
          << validate_round_graph(g, n);
      // Walk some robots around so subsequent rounds see fresh configs.
      Rng rng(seed * 100 + r);
      for (RobotId id = 1; id <= conf.robot_count(); ++id) {
        const NodeId pos = conf.position(id);
        if (g.degree(pos) > 0 && rng.chance(0.5)) {
          conf.set_position(
              id, g.neighbor(pos, static_cast<Port>(
                                      rng.below(g.degree(pos)) + 1)));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAdversaries, AdversaryValidity,
    ::testing::Values(AdversaryCase{"static", make_static},
                      AdversaryCase{"static_shuffle", make_static_shuffle},
                      AdversaryCase{"random", make_random},
                      AdversaryCase{"churn", make_churn},
                      AdversaryCase{"star_star", make_star_star},
                      AdversaryCase{"star_star_shuffled",
                                    make_star_star_shuffled},
                      AdversaryCase{"t_interval", make_t_interval},
                      AdversaryCase{"path_trap", make_path_trap},
                      AdversaryCase{"clique_trap", make_clique_trap}),
    [](const ::testing::TestParamInfo<AdversaryCase>& param_info) {
      return param_info.param.name;
    });

// ---- specific adversaries ----

TEST(StaticAdversary, ReplaysSameGraph) {
  StaticAdversary adv(builders::cycle(6));
  const Configuration conf = some_config(6, 3, 1);
  const Graph g0 = adv.next_graph(0, conf);
  const Graph g1 = adv.next_graph(1, conf);
  EXPECT_EQ(g0, g1);
}

TEST(StaticAdversary, ShuffleChangesPortsNotTopology) {
  StaticAdversary adv(builders::complete(5), true, 17);
  const Configuration conf = some_config(5, 3, 1);
  const Graph g0 = adv.next_graph(0, conf);
  const Graph g1 = adv.next_graph(1, conf);
  EXPECT_EQ(g1.edge_count(), 10u);
  EXPECT_FALSE(g0 == g1);  // port labels differ (overwhelmingly likely)
}

TEST(ScriptedAdversary, PlaysScriptThenRepeatsLast) {
  std::vector<Graph> script{builders::path(4), builders::cycle(4)};
  ScriptedAdversary adv(std::move(script));
  const Configuration conf = some_config(4, 2, 1);
  EXPECT_EQ(adv.next_graph(0, conf).edge_count(), 3u);
  EXPECT_EQ(adv.next_graph(1, conf).edge_count(), 4u);
  EXPECT_EQ(adv.next_graph(5, conf).edge_count(), 4u);
}

TEST(ScriptedAdversary, RepeatsExactlyTheLastGraphForever) {
  // Pins the documented horizon contract: round r < script_length() plays
  // script[r]; every later round repeats the LAST graph bit-identically.
  // The shrinker's script truncation depends on this being a guarantee.
  const Graph a = builders::path(5);
  const Graph b = builders::cycle(5);
  ScriptedAdversary adv(std::vector<Graph>{a, b});
  const Configuration conf = some_config(5, 3, 1);
  EXPECT_EQ(adv.script_length(), 2u);
  EXPECT_EQ(adv.next_graph(0, conf), a);
  EXPECT_EQ(adv.next_graph(1, conf), b);
  EXPECT_EQ(adv.next_graph(2, conf), b);
  EXPECT_EQ(adv.next_graph(1000, conf), b);
  // A one-graph prefix is itself a complete (static) execution.
  ScriptedAdversary prefix(std::vector<Graph>{a});
  EXPECT_EQ(prefix.next_graph(0, conf), a);
  EXPECT_EQ(prefix.next_graph(7, conf), a);
}

TEST(ScriptedAdversary, RejectsEmptyAndMixedSizeScripts) {
  EXPECT_THROW(ScriptedAdversary(std::vector<Graph>{}), std::invalid_argument);
  EXPECT_THROW(
      ScriptedAdversary(std::vector<Graph>{builders::path(4),
                                           builders::path(5)}),
      std::invalid_argument);
}

TEST(ScriptedAdversary, SerializeParseRoundTripsShuffledPorts) {
  // Repro artifacts embed scripts as text; a shuffled port labeling must
  // survive the round-trip exactly (ports are the robots' entire interface
  // to the graph, so "same topology" is not enough).
  StaticAdversary shuffler(builders::complete(6), true, 17);
  const Configuration conf = some_config(6, 3, 1);
  const std::vector<Graph> script{shuffler.next_graph(0, conf),
                                  shuffler.next_graph(1, conf),
                                  builders::path(6)};
  const std::string text = ScriptedAdversary::serialize_script(script);
  const std::vector<Graph> parsed = ScriptedAdversary::parse_script(text);
  ASSERT_EQ(parsed.size(), script.size());
  for (std::size_t i = 0; i < script.size(); ++i)
    EXPECT_EQ(parsed[i], script[i]) << "graph " << i;
}

TEST(ScriptedAdversary, ParseRejectsMalformedText) {
  EXPECT_THROW(ScriptedAdversary::parse_script("garbage"),
               std::invalid_argument);
  EXPECT_THROW(ScriptedAdversary::parse_script("g 4 2\n0 1 1 1\n"),
               std::invalid_argument);  // truncated edge list
}

TEST(ChurnAdversary, PreservesEdgeCountApproximately) {
  Rng rng(3);
  const Graph initial = builders::random_connected(15, 10, rng);
  const std::size_t m0 = initial.edge_count();
  ChurnAdversary adv(initial, 2, 5);
  const Configuration conf = some_config(15, 6, 2);
  for (Round r = 0; r < 20; ++r) {
    const Graph g = adv.next_graph(r, conf);
    EXPECT_LE(g.edge_count(), m0);
    EXPECT_GE(g.edge_count() + 2 * 20, m0);  // bounded drift
  }
}

TEST(ChurnAdversary, ActuallyChangesEdges) {
  Rng rng(3);
  ChurnAdversary adv(builders::random_connected(12, 8, rng), 3, 5);
  const Configuration conf = some_config(12, 4, 2);
  const Graph g0 = adv.next_graph(0, conf);
  const Graph g1 = adv.next_graph(1, conf);
  EXPECT_FALSE(g0 == g1);
}

TEST(TIntervalAdversary, HoldsGraphForTRounds) {
  TIntervalAdversary adv(std::make_unique<RandomAdversary>(10, 4, 9), 4);
  const Configuration conf = some_config(10, 5, 1);
  const Graph g0 = adv.next_graph(0, conf);
  EXPECT_EQ(g0, adv.next_graph(1, conf));
  EXPECT_EQ(g0, adv.next_graph(2, conf));
  EXPECT_EQ(g0, adv.next_graph(3, conf));
  EXPECT_FALSE(g0 == adv.next_graph(4, conf));
}

TEST(StarStarAdversary, DiameterAtMostThree) {
  StarStarAdversary adv(20);
  const Configuration conf = placement::rooted(20, 10);
  const Graph g = adv.next_graph(0, conf);
  EXPECT_LE(diameter(g), 3u);
}

TEST(StarStarAdversary, OnlyOneEmptyNodeAdjacentToOccupied) {
  // The defining property behind Theorem 3: at most one new node reachable.
  StarStarAdversary adv(15);
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Configuration conf = placement::uniform_random(15, 9, rng);
    const Graph g = adv.next_graph(0, conf);
    const auto occ = conf.occupancy();
    std::size_t reachable_empty = 0;
    for (NodeId v = 0; v < 15; ++v) {
      if (occ[v] != 0) continue;
      bool adjacent_to_occupied = false;
      for (const HalfEdge& he : g.incident(v))
        adjacent_to_occupied |= occ[he.to] > 0;
      if (adjacent_to_occupied) ++reachable_empty;
    }
    EXPECT_LE(reachable_empty, 1u);
  }
}

TEST(StarStarAdversary, HandlesAllNodesOccupied) {
  StarStarAdversary adv(6);
  Configuration conf(6, {0, 1, 2, 3, 4, 5});
  EXPECT_TRUE(validate_round_graph(adv.next_graph(0, conf), 6).empty());
}

TEST(PathTrapAdversary, WithoutProbeEmitsCanonicalTrap) {
  // No probe installed: the adversary emits the Fig. 1 shape directly.
  const std::size_t n = 10, k = 6;
  PathTrapAdversary adv(n);
  const Configuration conf = placement::figure1(n, k);
  const Graph g = adv.next_graph(0, conf);
  ASSERT_TRUE(validate_round_graph(g, n).empty());
  const auto occ = conf.occupancy();
  // Exactly one empty node is adjacent to an occupied node (the blob
  // center next to the path end).
  std::size_t frontier = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (occ[v] != 0) continue;
    for (const HalfEdge& he : g.incident(v)) {
      if (occ[he.to] > 0) {
        ++frontier;
        break;
      }
    }
  }
  EXPECT_EQ(frontier, 1u);
  // The doubled node has degree 1 (it sits at the far end of the path).
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(CliqueTrapAdversary, WithoutProbeBuildsCliquePlusPath) {
  const std::size_t n = 12, k = 8;
  CliqueTrapAdversary adv(n);
  Rng rng(2);
  const Configuration conf = placement::grouped(n, k, k - 1, rng);
  const Graph g = adv.next_graph(0, conf);
  ASSERT_TRUE(validate_round_graph(g, n).empty());
  // Occupied nodes all have degree alpha-1 (uniform clique views).
  const auto occ = conf.occupancy();
  const std::size_t alpha = conf.occupied_count();
  for (NodeId v = 0; v < n; ++v) {
    if (occ[v] > 0) {
      EXPECT_EQ(g.degree(v), alpha - 1) << "node " << v;
    }
  }
}

}  // namespace
}  // namespace dyndisp
