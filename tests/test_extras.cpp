// Tests for the auxiliary surfaces: the CLI flag parser, JSON trace export,
// the dynamic-ring adversary (the related-work setting), and the analysis
// checkers' failure paths.
#include <gtest/gtest.h>

#include "analysis/verify.h"
#include "core/dispersion.h"
#include "dynamic/ring_adversary.h"
#include "dynamic/static_adversary.h"
#include "dynamic/validator.h"
#include "graph/builders.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "sim/trace.h"
#include "util/cli.h"

namespace dyndisp {
namespace {

// ---- CLI ----

CliArgs parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(Cli, KeyEqualsValueForm) {
  const CliArgs args = parse({"--n=12", "--algorithm=alg4"});
  EXPECT_EQ(args.get_int("n", 0), 12);
  EXPECT_EQ(args.get("algorithm", ""), "alg4");
}

TEST(Cli, KeySpaceValueForm) {
  const CliArgs args = parse({"--n", "7", "--family", "grid"});
  EXPECT_EQ(args.get_uint("n", 0), 7u);
  EXPECT_EQ(args.get("family", ""), "grid");
}

TEST(Cli, BareSwitch) {
  const CliArgs args = parse({"--help", "--n", "3"});
  EXPECT_TRUE(args.has("help"));
  EXPECT_TRUE(args.get_bool("help", false));
}

TEST(Cli, DefaultsWhenAbsent) {
  const CliArgs args = parse({});
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_EQ(args.get("x", "dft"), "dft");
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.5), 0.5);
  EXPECT_FALSE(args.get_bool("flag", false));
}

TEST(Cli, TypedParseErrors) {
  const CliArgs args = parse({"--n", "abc", "--p", "zz", "--b", "maybe"});
  EXPECT_THROW(args.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double("p", 0), std::invalid_argument);
  EXPECT_THROW(args.get_bool("b", false), std::invalid_argument);
}

TEST(Cli, NegativeRejectedByUint) {
  const CliArgs args = parse({"--n", "-3"});
  EXPECT_THROW(args.get_uint("n", 0), std::invalid_argument);
  EXPECT_EQ(args.get_int("n", 0), -3);
}

TEST(Cli, RejectsPositionalArguments) {
  EXPECT_THROW(parse({"oops"}), std::invalid_argument);
}

TEST(Cli, UnusedTracksTypos) {
  const CliArgs args = parse({"--good", "1", "--typo", "2"});
  EXPECT_EQ(args.get_int("good", 0), 1);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

// ---- trace JSON ----

TEST(TraceJson, WellFormedAndComplete) {
  StaticAdversary adv(builders::path(4));
  EngineOptions opt;
  opt.record_trace = true;
  opt.max_rounds = 10;
  Engine engine(adv, placement::rooted(4, 3), core::dispersion_factory(),
                opt);
  const RunResult r = engine.run();
  ASSERT_GE(r.trace.size(), 1u);
  const std::string json = trace_to_json(r.trace);
  // Structural smoke checks without a JSON dependency.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"rounds\":["), std::string::npos);
  EXPECT_NE(json.find("\"graph\":{\"n\":4"), std::string::npos);
  EXPECT_NE(json.find("\"newly_occupied\":"), std::string::npos);
  // Balanced brackets.
  long depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceJson, DeadRobotsSerializeAsNull) {
  // Crash a robot in round 1 while a multiplicity remains, so a recorded
  // round's configuration contains a dead robot.
  StaticAdversary adv(builders::path(5));
  EngineOptions opt;
  opt.record_trace = true;
  opt.max_rounds = 20;
  Engine engine(adv, placement::rooted(5, 4), core::dispersion_factory(), opt,
                FaultSchedule({{1, 3, CrashPhase::kBeforeCommunicate}}));
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  EXPECT_NE(trace_to_json(r.trace).find("null"), std::string::npos);
}

// ---- ring adversary ----

TEST(RingAdversary, EmitsValidConnectedGraphs) {
  for (const auto strategy :
       {RingAdversary::Strategy::kRandomEdge,
        RingAdversary::Strategy::kWorstEdge,
        RingAdversary::Strategy::kFixedRing}) {
    RingAdversary adv(9, strategy);
    Rng rng(4);
    Configuration conf = placement::uniform_random(9, 6, rng);
    for (Round r = 0; r < 15; ++r) {
      const Graph g = adv.next_graph(r, conf);
      ASSERT_TRUE(validate_round_graph(g, 9).empty());
      // A ring minus at most one edge.
      EXPECT_GE(g.edge_count(), 8u);
      EXPECT_LE(g.edge_count(), 9u);
      for (NodeId v = 0; v < 9; ++v) EXPECT_LE(g.degree(v), 2u);
    }
  }
}

TEST(RingAdversary, FixedRingKeepsAllEdges) {
  RingAdversary adv(6, RingAdversary::Strategy::kFixedRing);
  const Configuration conf = placement::rooted(6, 3);
  EXPECT_EQ(adv.next_graph(0, conf).edge_count(), 6u);
}

TEST(RingAdversary, WorstEdgeCutsBetweenMultAndNearestEmpty) {
  // Robots {1,2}@0, 3@1, 4@2: nearest empty from node 0 in the full ring is
  // node 5 (one hop counterclockwise). The worst edge to remove is (5,0),
  // forcing travel through the occupied side.
  RingAdversary adv(6, RingAdversary::Strategy::kWorstEdge);
  const Configuration conf = placement::explicit_positions(6, {0, 0, 1, 2});
  const Graph g = adv.next_graph(0, conf);
  EXPECT_FALSE(g.has_edge(5, 0));
  EXPECT_EQ(g.edge_count(), 5u);
}

TEST(RingAdversary, AlgorithmFourDispersesOnDynamicRings) {
  for (const auto strategy : {RingAdversary::Strategy::kRandomEdge,
                              RingAdversary::Strategy::kWorstEdge}) {
    const std::size_t n = 12, k = 9;
    RingAdversary adv(n, strategy, 7);
    EngineOptions opt;
    opt.max_rounds = 10 * k;
    opt.record_progress = true;
    Engine engine(adv, placement::rooted(n, k), core::dispersion_factory(),
                  opt);
    const RunResult r = engine.run();
    EXPECT_TRUE(r.dispersed);
    EXPECT_TRUE(analysis::check_round_bound(r).empty())
        << analysis::check_round_bound(r);
    EXPECT_TRUE(analysis::check_progress_every_round(r).empty());
  }
}

// ---- analysis checkers: failure paths ----

RunResult fake_result(std::size_t k, std::vector<std::size_t> occ,
                      bool dispersed, Round rounds, std::size_t bits) {
  RunResult r;
  r.k = k;
  r.occupied_per_round = std::move(occ);
  r.initial_occupied = r.occupied_per_round.empty()
                           ? 1
                           : r.occupied_per_round.front();
  r.dispersed = dispersed;
  r.rounds = rounds;
  r.max_memory_bits = bits;
  return r;
}

TEST(Verify, ProgressCheckerFlagsStalls) {
  const RunResult bad = fake_result(5, {2, 3, 3, 5}, true, 3, 3);
  EXPECT_NE(analysis::check_progress_every_round(bad).find("round 1"),
            std::string::npos);
  const RunResult good = fake_result(5, {2, 3, 4, 5}, true, 3, 3);
  EXPECT_TRUE(analysis::check_progress_every_round(good).empty());
}

TEST(Verify, ProgressCheckerNeedsRecording) {
  const RunResult r = fake_result(5, {}, true, 3, 3);
  EXPECT_FALSE(analysis::check_progress_every_round(r).empty());
}

TEST(Verify, MonotoneCheckerFlagsDrops) {
  const RunResult bad = fake_result(5, {3, 4, 2}, true, 2, 3);
  EXPECT_FALSE(analysis::check_occupied_monotone(bad).empty());
}

TEST(Verify, RoundBoundFlagsSlowRuns) {
  RunResult r = fake_result(8, {1, 2}, true, 20, 4);
  EXPECT_NE(analysis::check_round_bound(r).find("bound"), std::string::npos);
  r.rounds = 7;
  EXPECT_TRUE(analysis::check_round_bound(r).empty());
  r.dispersed = false;
  EXPECT_FALSE(analysis::check_round_bound(r).empty());
}

TEST(Verify, MemoryBoundRespectsSlack) {
  RunResult r = fake_result(8, {1}, true, 1, 6);
  EXPECT_FALSE(analysis::check_memory_bound(r).empty());  // bound is 4
  EXPECT_TRUE(analysis::check_memory_bound(r, 2).empty());
}

TEST(Verify, FaultyBoundChecksFinalConfig) {
  RunResult r = fake_result(6, {1}, true, 3, 3);
  r.crashed = 2;
  r.final_config = Configuration(8, {0, 1, 2, 3, 4, 5});
  EXPECT_TRUE(analysis::check_faulty_round_bound(r).empty());
  r.final_config = Configuration(8, {0, 0, 2, 3, 4, 5});
  EXPECT_NE(analysis::check_faulty_round_bound(r).find("multiplicity"),
            std::string::npos);
}

}  // namespace
}  // namespace dyndisp
