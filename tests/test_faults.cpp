// Tests for the crash-fault extension (Section VII / Theorem 5):
// FaultSchedule mechanics, engine crash handling, and the O(k-f) bound.
#include <gtest/gtest.h>

#include "analysis/verify.h"
#include "core/dispersion.h"
#include "dynamic/random_adversary.h"
#include "dynamic/star_star_adversary.h"
#include "dynamic/static_adversary.h"
#include "graph/builders.h"
#include "robots/placement.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "util/rng.h"

namespace dyndisp {
namespace {

EngineOptions standard_options() {
  EngineOptions opt;
  opt.max_rounds = 10000;
  opt.record_progress = true;
  return opt;
}

TEST(FaultSchedule, CrashesAtFiltersByRoundAndPhase) {
  FaultSchedule s({{3, 1, CrashPhase::kBeforeCommunicate},
                   {3, 2, CrashPhase::kAfterCommunicate},
                   {5, 3, CrashPhase::kBeforeCommunicate}});
  EXPECT_EQ(s.crashes_at(3, CrashPhase::kBeforeCommunicate),
            std::vector<RobotId>{1});
  EXPECT_EQ(s.crashes_at(3, CrashPhase::kAfterCommunicate),
            std::vector<RobotId>{2});
  EXPECT_EQ(s.crashes_at(5, CrashPhase::kBeforeCommunicate),
            std::vector<RobotId>{3});
  EXPECT_TRUE(s.crashes_at(4, CrashPhase::kBeforeCommunicate).empty());
  EXPECT_EQ(s.fault_count(), 3u);
}

TEST(FaultSchedule, RandomSchedulePicksDistinctRobots) {
  Rng rng(9);
  const FaultSchedule s = FaultSchedule::random(10, 6, 20, rng);
  EXPECT_EQ(s.fault_count(), 6u);
  std::set<RobotId> robots;
  for (const CrashEvent& e : s.events()) {
    EXPECT_GE(e.robot, 1u);
    EXPECT_LE(e.robot, 10u);
    EXPECT_LT(e.round, 20u);
    robots.insert(e.robot);
  }
  EXPECT_EQ(robots.size(), 6u);
}

TEST(Faults, CrashBeforeCommunicateVacatesNode) {
  // Two robots on one node; one crashes before round 0's communicate: the
  // survivor is alone -> dispersed in 0 rounds with no move.
  StaticAdversary adv(builders::path(3));
  Engine engine(adv, placement::rooted(3, 2), core::dispersion_factory(),
                standard_options(),
                FaultSchedule({{0, 2, CrashPhase::kBeforeCommunicate}}));
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  EXPECT_EQ(r.rounds, 0u);
  EXPECT_EQ(r.crashed, 1u);
  EXPECT_EQ(r.total_moves, 0u);
}

TEST(Faults, CrashAfterCommunicateCancelsTheMove) {
  // Robot 2 is the designated mover out of the rooted pair; it crashes
  // after communicate, so nobody moves this round, and the survivor is
  // dispersed from the next round's viewpoint.
  StaticAdversary adv(builders::path(3));
  Engine engine(adv, placement::rooted(3, 2), core::dispersion_factory(),
                standard_options(),
                FaultSchedule({{0, 2, CrashPhase::kAfterCommunicate}}));
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  EXPECT_EQ(r.total_moves, 0u);
  EXPECT_EQ(r.crashed, 1u);
  EXPECT_EQ(r.rounds, 1u);  // round 0 ran (and was wasted by the crash)
}

TEST(Faults, CrashOfSettledRobotReopensNode) {
  // A settled robot crashing turns its node into a reusable empty node
  // (Section VII): the algorithm proceeds as if it were never occupied.
  StaticAdversary adv(builders::path(4));
  // Robots 1,2,3 rooted on node 0; robot 1 (which settles node 0 as the
  // smallest ID) crashes later.
  Engine engine(adv, placement::rooted(4, 3), core::dispersion_factory(),
                standard_options(),
                FaultSchedule({{1, 1, CrashPhase::kBeforeCommunicate}}));
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  EXPECT_TRUE(r.final_config.is_dispersed());
  EXPECT_EQ(r.crashed, 1u);
}

TEST(Faults, AllRobotsCrashIsVacuousDispersion) {
  StaticAdversary adv(builders::path(4));
  Engine engine(adv, placement::rooted(4, 2), core::dispersion_factory(),
                standard_options(),
                FaultSchedule({{0, 1, CrashPhase::kBeforeCommunicate},
                               {0, 2, CrashPhase::kBeforeCommunicate}}));
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  EXPECT_EQ(r.crashed, 2u);
  EXPECT_EQ(r.final_config.alive_count(), 0u);
}

TEST(Faults, ComponentSplitByCrashStillProgresses) {
  // Crash the middle robot of an occupied path so the component splits in
  // two; both halves keep sliding independently.
  StaticAdversary adv(builders::path(9));
  Configuration conf(9, {2, 2, 3, 4, 5, 6, 6});  // occupied 2..6, mults at 2,6
  Engine engine(adv, std::move(conf), core::dispersion_factory(),
                standard_options(),
                FaultSchedule({{0, 4, CrashPhase::kBeforeCommunicate}}));
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  EXPECT_TRUE(r.final_config.is_dispersed());
}

// Theorem 5 sweep: random crash schedules; rounds <= k - f + slack, memory
// stays Theta(log k).
class FaultSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FaultSweep, Theorem5BoundHolds) {
  const std::size_t f = GetParam();
  const std::size_t n = 20, k = 16;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RandomAdversary adv(n, 6, seed);
    Rng rng(seed * 31 + f);
    // Crashes land within the first k rounds, the window where they can
    // actually affect the run.
    const FaultSchedule faults = FaultSchedule::random(k, f, k, rng);
    Engine engine(adv, placement::rooted(n, k), core::dispersion_factory(),
                  standard_options(), faults);
    const RunResult r = engine.run();
    SCOPED_TRACE("f=" + std::to_string(f) + " seed=" + std::to_string(seed));
    EXPECT_TRUE(r.dispersed);
    EXPECT_TRUE(r.final_config.is_dispersed());
    // O(k - f): every crash removes at least one robot that no longer needs
    // a node. Crashes can happen only up to round k, so allow the slack of
    // crashes scheduled after dispersion completed.
    EXPECT_LE(r.rounds, k - r.crashed + 1 + f);
    EXPECT_TRUE(analysis::check_memory_bound(r).empty())
        << analysis::check_memory_bound(r);
  }
}

INSTANTIATE_TEST_SUITE_P(FaultCounts, FaultSweep,
                         ::testing::Values(0, 1, 2, 4, 8, 12, 16));

TEST(Faults, StarStarWithCrashesStillWithinBound) {
  const std::size_t n = 18, k = 14, f = 4;
  StarStarAdversary adv(n);
  Rng rng(77);
  const FaultSchedule faults = FaultSchedule::random(k, f, k / 2, rng);
  Engine engine(adv, placement::rooted(n, k), core::dispersion_factory(),
                standard_options(), faults);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  EXPECT_LE(r.rounds, k);
}

}  // namespace
}  // namespace dyndisp
