// Campaign service: the worker protocol, the coordinator's multi-process
// scheduling (bitwise-identical merged stores at any worker count, crash
// recovery, shard resume, poisoned-job handling), the durable store, the
// auto-thread manifest echo, and the serve queue's spool contract.
//
// Process-spawning cases exec the real dyndisp_campaign binary; its path
// arrives via the DYNDISP_CAMPAIGN_BIN compile definition and the cases
// skip if the binary is not built.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/scheduler.h"
#include "campaign/service/coordinator.h"
#include "campaign/service/queue.h"
#include "campaign/service/shard.h"
#include "campaign/service/worker.h"
#include "campaign/spec.h"
#include "campaign/store.h"

namespace dyndisp::campaign {
namespace {

namespace fs = std::filesystem;
using service::CoordinatorOptions;
using service::ServeOptions;
using service::ServiceOutcome;
using service::WorkerOptions;

/// Fresh scratch directory per test case, removed up-front so reruns are
/// clean.
std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("dyndisp_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string campaign_binary() {
#ifdef DYNDISP_CAMPAIGN_BIN
  return DYNDISP_CAMPAIGN_BIN;
#else
  return "";
#endif
}

bool have_binary() {
  const std::string bin = campaign_binary();
  return !bin.empty() && fs::exists(bin);
}

constexpr const char* kSpec = R"({
  "name": "service_small",
  "axes": {
    "algorithms": ["alg4", "dfs"],
    "adversaries": ["random"],
    "n": [12],
    "k": [6]
  },
  "seeds": 4
})";

std::string write_spec(const std::string& dir, const char* text = kSpec) {
  const std::string path = dir + "/spec_input.json";
  std::ofstream out(path);
  out << text;
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The single-process threads=1 reference store every coordinator result
/// must match byte for byte (timing zeroed: wall_ms is the one
/// nondeterministic field).
std::string reference_results(const CampaignSpec& spec,
                              const std::string& dir) {
  ResultStore store(dir + "/reference");
  run_campaign(spec, store, 1, nullptr, /*record_timing=*/false);
  return read_file(store.results_path());
}

CoordinatorOptions coordinator_options(std::size_t workers) {
  CoordinatorOptions opts;
  opts.workers = workers;
  opts.worker_binary = campaign_binary();
  opts.record_timing = false;
  return opts;
}

// ---------------------------------------------------------------------------
// Worker protocol (in-process: run_worker is a plain function over streams)

TEST(ServiceWorker, RunsJobsFromStreamAndAcksDurably) {
  const std::string dir = scratch_dir("svc_worker");
  const std::string spec_path = write_spec(dir);
  WorkerOptions opts;
  opts.spec_path = spec_path;
  opts.store_dir = dir + "/shard";
  opts.record_timing = false;
  std::istringstream in("0\n3\n");
  std::ostringstream out;
  EXPECT_EQ(service::run_worker(opts, in, out), 0);

  ResultStore shard(dir + "/shard");
  const std::vector<TrialRecord> records = shard.load();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].job.index, 0u);
  EXPECT_EQ(records[1].job.index, 3u);

  // Ack format: "done <index> <ok|fail> <dispersed> <rounds>".
  std::istringstream acks(out.str());
  std::string tag, okword;
  std::size_t index = 0;
  int dispersed = 0;
  std::uint64_t rounds = 0;
  acks >> tag >> index >> okword >> dispersed >> rounds;
  EXPECT_EQ(tag, "done");
  EXPECT_EQ(index, 0u);
  EXPECT_EQ(okword, "ok");
  EXPECT_EQ(records[0].rounds, rounds);
}

TEST(ServiceWorker, RejectsOutOfRangeIndex) {
  const std::string dir = scratch_dir("svc_worker_oob");
  WorkerOptions opts;
  opts.spec_path = write_spec(dir);
  opts.store_dir = dir + "/shard";
  std::istringstream in("999\n");
  std::ostringstream out;
  EXPECT_THROW(service::run_worker(opts, in, out), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Store satellites: durable appends, atomic ordered merge

TEST(ServiceStore, DurableAppendRoundTrips) {
  const std::string dir = scratch_dir("svc_durable");
  const CampaignSpec spec = CampaignSpec::parse_json(kSpec);
  const std::vector<JobSpec> jobs = spec.expand();
  ResultStore store(dir);
  store.set_durable(true);
  TrialRecord record;
  record.job = jobs[0];
  record.spec_hash = spec.hash();
  record.rounds = 7;
  store.append(record);
  store.append(record);  // second append exercises the open handle path
  const std::vector<TrialRecord> loaded = store.load();
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].rounds, 7u);
}

TEST(ServiceStore, ReplaceAllSortsAndDedupes) {
  const std::string dir = scratch_dir("svc_replace");
  const CampaignSpec spec = CampaignSpec::parse_json(kSpec);
  const std::vector<JobSpec> jobs = spec.expand();
  ASSERT_GE(jobs.size(), 3u);

  std::vector<TrialRecord> records;
  for (const std::size_t i : {2u, 0u, 1u, 2u}) {  // out of order + duplicate
    TrialRecord r;
    r.job = jobs[i];
    r.spec_hash = spec.hash();
    r.rounds = 10 + i;
    records.push_back(r);
  }
  records[3].rounds = 99;  // the duplicate differs; first occurrence wins

  ResultStore store(dir);
  EXPECT_EQ(store.replace_all(records), 3u);
  const std::vector<TrialRecord> loaded = store.load();
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[0].job.index, 0u);
  EXPECT_EQ(loaded[1].job.index, 1u);
  EXPECT_EQ(loaded[2].job.index, 2u);
  EXPECT_EQ(loaded[2].rounds, 12u);  // not the 99 duplicate

  // The file is byte-for-byte the append serialization in job order.
  std::string expected;
  for (const TrialRecord& r : {records[1], records[2], records[0]})
    expected += record_to_jsonl(r) + "\n";
  EXPECT_EQ(read_file(store.results_path()), expected);
}

// ---------------------------------------------------------------------------
// Scheduler satellite: auto thread default echoed in the manifest

TEST(SchedulerThreads, AutoResolvesToHardwareConcurrencyAndEchoes) {
  const std::string dir = scratch_dir("svc_auto_threads");
  const CampaignSpec spec = CampaignSpec::parse_json(kSpec);
  ResultStore store(dir);
  const CampaignOutcome outcome =
      run_campaign(spec, store, /*threads=*/0, nullptr, false);
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(outcome.threads, hw == 0 ? 1u : hw);
  const std::vector<RunCounters> runs = store.run_history();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].threads, outcome.threads);
  EXPECT_EQ(runs[0].workers, 0u);  // in-process run
}

// ---------------------------------------------------------------------------
// Coordinator: bitwise-identical merged stores, crash tolerance, resume

TEST(ServiceCoordinator, MergedStoreBitwiseIdenticalAtAnyWorkerCount) {
  if (!have_binary()) GTEST_SKIP() << "dyndisp_campaign binary not built";
  const std::string dir = scratch_dir("svc_bitwise");
  const CampaignSpec spec = CampaignSpec::parse_json(kSpec);
  const std::string reference = reference_results(spec, dir);
  ASSERT_FALSE(reference.empty());

  for (const std::size_t workers : {1u, 2u, 4u}) {
    ResultStore store(dir + "/w" + std::to_string(workers));
    const ServiceOutcome outcome =
        service::run_coordinator(spec, store, coordinator_options(workers));
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.workers, workers);
    EXPECT_EQ(outcome.campaign.executed, spec.job_count());
    EXPECT_EQ(read_file(store.results_path()), reference)
        << "workers=" << workers;
    // Shards are merged away; the manifest echoes the fleet size.
    EXPECT_TRUE(service::list_shard_dirs(store.dir()).empty());
    const std::vector<RunCounters> runs = store.run_history();
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].workers, workers);
  }
}

TEST(ServiceCoordinator, SigkilledWorkerIsRecoveredBitwise) {
  if (!have_binary()) GTEST_SKIP() << "dyndisp_campaign binary not built";
  const std::string dir = scratch_dir("svc_kill");
  const CampaignSpec spec = CampaignSpec::parse_json(kSpec);
  const std::string reference = reference_results(spec, dir);

  // Worker 0's first incarnation SIGKILLs itself after appending its second
  // record, before acking it: the coordinator must recover that record from
  // the shard store (not re-run the job) and finish the rest with a
  // replacement worker.
  CoordinatorOptions opts = coordinator_options(2);
  opts.kill_after = 2;
  ResultStore store(dir + "/killed");
  const ServiceOutcome outcome = service::run_coordinator(spec, store, opts);
  EXPECT_TRUE(outcome.ok());
  EXPECT_GE(outcome.worker_crashes, 1u);
  EXPECT_EQ(outcome.campaign.executed, spec.job_count());
  EXPECT_EQ(read_file(store.results_path()), reference);
}

TEST(ServiceCoordinator, ResumesLeftoverShardsWithoutRerunning) {
  if (!have_binary()) GTEST_SKIP() << "dyndisp_campaign binary not built";
  const std::string dir = scratch_dir("svc_resume");
  const CampaignSpec spec = CampaignSpec::parse_json(kSpec);
  const std::string reference = reference_results(spec, dir);

  // Simulate a killed coordinator: a shard store holding two finished jobs,
  // never merged into the root results.jsonl.
  const std::string root = dir + "/resumed";
  fs::create_directories(root);
  {
    WorkerOptions wopts;
    wopts.spec_path = write_spec(dir);
    wopts.store_dir = service::shard_dir(root, 0);
    wopts.record_timing = false;
    std::istringstream in("0\n1\n");
    std::ostringstream out;
    ASSERT_EQ(service::run_worker(wopts, in, out), 0);
  }

  ResultStore store(root);
  const ServiceOutcome outcome =
      service::run_coordinator(spec, store, coordinator_options(2));
  EXPECT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.campaign.skipped, 2u) << "shard jobs must not re-run";
  EXPECT_EQ(outcome.campaign.executed, spec.job_count() - 2);
  EXPECT_EQ(read_file(store.results_path()), reference);
}

TEST(ServiceCoordinator, JobThatCrashesTwiceIsPoisonedOthersComplete) {
  if (!have_binary()) GTEST_SKIP() << "dyndisp_campaign binary not built";
  const std::string dir = scratch_dir("svc_poison");
  const CampaignSpec spec = CampaignSpec::parse_json(kSpec);
  const std::vector<JobSpec> jobs = spec.expand();

  // Every worker SIGKILLs itself when handed job 1: a deterministic
  // crasher. After max_attempts (2) the coordinator drops it, finishes
  // everything else, and reports the poison.
  CoordinatorOptions opts = coordinator_options(2);
  opts.die_on_index = 1;
  ResultStore store(dir + "/poisoned");
  const ServiceOutcome outcome = service::run_coordinator(spec, store, opts);
  EXPECT_FALSE(outcome.ok());
  ASSERT_EQ(outcome.poisoned_jobs.size(), 1u);
  EXPECT_EQ(outcome.poisoned_jobs[0], jobs[1].id());
  EXPECT_GE(outcome.worker_crashes, 2u);
  EXPECT_EQ(outcome.campaign.executed, spec.job_count() - 1);
  // Every record except the poisoned job made it into the merged store.
  const std::vector<TrialRecord> records = store.load();
  EXPECT_EQ(records.size(), spec.job_count() - 1);
  for (const TrialRecord& r : records) EXPECT_NE(r.job.id(), jobs[1].id());

  // A later resume without the crasher completes the campaign.
  const ServiceOutcome healed =
      service::run_coordinator(spec, store, coordinator_options(2));
  EXPECT_TRUE(healed.ok());
  EXPECT_EQ(healed.campaign.skipped, spec.job_count() - 1);
  EXPECT_EQ(healed.campaign.executed, 1u);
  EXPECT_EQ(read_file(store.results_path()), reference_results(spec, dir));
}

// ---------------------------------------------------------------------------
// Serve queue mode: spool contract, admission control, backpressure

TEST(ServiceQueue, DrainsSpoolRejectsBadSpecsWritesStatus) {
  if (!have_binary()) GTEST_SKIP() << "dyndisp_campaign binary not built";
  const std::string dir = scratch_dir("svc_spool");
  const std::string spool = dir + "/spool";
  fs::create_directories(spool + "/incoming");
  {
    std::ofstream good(spool + "/incoming/good.json");
    good << kSpec;
    std::ofstream bad(spool + "/incoming/zbad.json");
    bad << "{ not json";
  }

  ServeOptions opts;
  opts.spool_dir = spool;
  opts.workers = 2;
  opts.once = true;
  opts.record_timing = false;
  opts.worker_binary = campaign_binary();
  const service::ServeReport report = service::run_serve(opts);
  EXPECT_EQ(report.specs_completed, 1u);
  EXPECT_EQ(report.specs_failed, 0u);
  EXPECT_EQ(report.specs_rejected, 1u);

  EXPECT_TRUE(fs::exists(spool + "/done/good.json"));
  EXPECT_TRUE(fs::exists(spool + "/rejected/zbad.json"));
  EXPECT_TRUE(fs::exists(spool + "/rejected/zbad.json.error"));
  EXPECT_TRUE(fs::exists(spool + "/status.json"));

  // The result store is the coordinator merge: bitwise reference bytes.
  const CampaignSpec spec = CampaignSpec::parse_json(kSpec);
  EXPECT_EQ(read_file(spool + "/out/good/results.jsonl"),
            reference_results(spec, dir));

  const std::string status = service::render_spool_status(spool);
  EXPECT_NE(status.find("done: 1"), std::string::npos);
  EXPECT_NE(status.find("rejected: 1"), std::string::npos);
}

TEST(ServiceQueue, BackpressureDefersUntilBudgetFrees) {
  if (!have_binary()) GTEST_SKIP() << "dyndisp_campaign binary not built";
  const std::string dir = scratch_dir("svc_backpressure");
  const std::string spool = dir + "/spool";
  fs::create_directories(spool + "/incoming");
  {
    std::ofstream a(spool + "/incoming/a.json");
    a << kSpec;
    std::ofstream b(spool + "/incoming/b.json");
    b << kSpec;
  }

  ServeOptions opts;
  opts.spool_dir = spool;
  opts.workers = 2;
  opts.once = true;
  opts.record_timing = false;
  opts.worker_binary = campaign_binary();
  // Budget fits exactly one spec (8 jobs each): b must defer, then run.
  opts.max_queued_jobs = 10;
  const service::ServeReport report = service::run_serve(opts);
  EXPECT_EQ(report.specs_completed, 2u);
  EXPECT_GE(report.deferrals, 1u);
  EXPECT_TRUE(fs::exists(spool + "/done/a.json"));
  EXPECT_TRUE(fs::exists(spool + "/done/b.json"));
}

TEST(ServiceQueue, OverBudgetSpecIsRejectedNotDeferred) {
  if (!have_binary()) GTEST_SKIP() << "dyndisp_campaign binary not built";
  const std::string dir = scratch_dir("svc_overbudget");
  const std::string spool = dir + "/spool";
  fs::create_directories(spool + "/incoming");
  {
    std::ofstream a(spool + "/incoming/huge.json");
    a << kSpec;  // 8 jobs > budget of 4: can never fit
  }
  ServeOptions opts;
  opts.spool_dir = spool;
  opts.once = true;
  opts.record_timing = false;
  opts.worker_binary = campaign_binary();
  opts.max_queued_jobs = 4;
  const service::ServeReport report = service::run_serve(opts);
  EXPECT_EQ(report.specs_completed, 0u);
  EXPECT_EQ(report.specs_rejected, 1u);
  EXPECT_TRUE(fs::exists(spool + "/rejected/huge.json.error"));
}

}  // namespace
}  // namespace dyndisp::campaign
