// Fuzz-style property tests: random operation sequences on the Graph class
// must never break its invariants (reverse-port consistency, contiguous
// labels, simplicity), and the engine must handle boundary robot counts.
#include <gtest/gtest.h>

#include <numeric>

#include "core/dispersion.h"
#include "dynamic/static_adversary.h"
#include "graph/algorithms.h"
#include "graph/builders.h"
#include "graph/graph.h"
#include "robots/configuration.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace dyndisp {
namespace {

class GraphFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphFuzz, RandomOperationSequencesPreserveInvariants) {
  Rng rng(GetParam() * 2654435761ULL + 7);
  const std::size_t n = 4 + rng.below(20);
  Graph g(n);

  for (int op = 0; op < 300; ++op) {
    const auto choice = rng.below(100);
    if (choice < 45) {
      // add a random missing edge
      const NodeId u = static_cast<NodeId>(rng.below(n));
      const NodeId v = static_cast<NodeId>(rng.below(n));
      if (u != v && !g.has_edge(u, v)) {
        const auto [pu, pv] = g.add_edge(u, v);
        EXPECT_EQ(g.neighbor(u, pu), v);
        EXPECT_EQ(g.neighbor(v, pv), u);
      }
    } else if (choice < 75) {
      // remove a random present edge
      const auto edges = g.edges();
      if (!edges.empty()) {
        const auto& e = edges[rng.below(edges.size())];
        EXPECT_TRUE(g.remove_edge(e.u, e.v));
        EXPECT_FALSE(g.has_edge(e.u, e.v));
      }
    } else if (choice < 90) {
      // permute ports of a random node
      const NodeId v = static_cast<NodeId>(rng.below(n));
      std::vector<std::size_t> perm(g.degree(v));
      std::iota(perm.begin(), perm.end(), std::size_t{0});
      rng.shuffle(perm);
      g.permute_ports(v, perm);
    } else if (choice < 95) {
      g.shuffle_ports(rng);
    } else {
      // rewire a random edge into two randomly chosen replacements
      const auto edges = g.edges();
      if (!edges.empty()) {
        const auto& e = edges[rng.below(edges.size())];
        const NodeId x = static_cast<NodeId>(rng.below(n));
        const NodeId y = static_cast<NodeId>(rng.below(n));
        if (x != e.u && y != e.v && !g.has_edge(e.u, x) &&
            !g.has_edge(e.v, y)) {
          g.rewire_edge(e.u, e.v, x, y);
        }
      }
    }
    ASSERT_TRUE(g.validate().empty())
        << "op " << op << ": " << g.validate();
  }
  // Cross-check edge_count against the edge list.
  EXPECT_EQ(g.edges().size(), g.edge_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(EngineBoundary, ZeroRobots) {
  StaticAdversary adv(builders::path(3));
  Engine engine(adv, Configuration(3, {}), core::dispersion_factory(),
                EngineOptions{});
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);  // vacuously
  EXPECT_EQ(r.rounds, 0u);
  EXPECT_EQ(r.k, 0u);
}

TEST(EngineBoundary, SingleNodeGraphSingleRobot) {
  StaticAdversary adv(Graph(1));
  Engine engine(adv, Configuration(1, {0}), core::dispersion_factory(),
                EngineOptions{});
  const RunResult r = engine.run();
  EXPECT_TRUE(r.dispersed);
  EXPECT_EQ(r.rounds, 0u);
}

TEST(EngineBoundary, TwoRobotsTwoNodesEveryPlacement) {
  const std::vector<std::vector<NodeId>> placements{{0, 0}, {0, 1}, {1, 1}};
  for (const std::vector<NodeId>& placement : placements) {
    StaticAdversary adv(builders::path(2));
    EngineOptions opt;
    opt.max_rounds = 10;
    Engine engine(adv, Configuration(2, placement),
                  core::dispersion_factory(), opt);
    const RunResult r = engine.run();
    EXPECT_TRUE(r.dispersed);
    EXPECT_LE(r.rounds, 1u);
  }
}

}  // namespace
}  // namespace dyndisp
