// Negative-path coverage for analysis/verify.cpp: every check_* must
// actually convict when handed a violating run, and its diagnostic must
// name the offending round and quantities (the fuzzer's shrink reports and
// CI logs are only as good as these messages). The fixtures are
// hand-crafted RunResults -- no engine involved -- so each test isolates
// exactly one checker branch.
#include <gtest/gtest.h>

#include <string>

#include "analysis/verify.h"
#include "robots/configuration.h"
#include "sim/engine.h"
#include "util/bits.h"

namespace dyndisp {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// A run every checker accepts: k=5 rooted robots dispersing in 5 rounds
/// with one new node per round and minimal memory.
RunResult clean_run() {
  RunResult r;
  r.dispersed = true;
  r.k = 5;
  r.initial_occupied = 1;
  r.rounds = 5;
  r.crashed = 0;
  r.max_memory_bits = bit_width_for(5 + 1);
  r.occupied_per_round = {1, 2, 3, 4, 5, 5};
  r.final_config = Configuration(6, {0, 1, 2, 3, 4});
  return r;
}

TEST(VerifyNegative, CleanRunPassesEveryChecker) {
  const RunResult r = clean_run();
  EXPECT_EQ(analysis::check_progress_every_round(r), "");
  EXPECT_EQ(analysis::check_occupied_monotone(r), "");
  EXPECT_EQ(analysis::check_round_bound(r), "");
  EXPECT_EQ(analysis::check_memory_bound(r), "");
  EXPECT_EQ(analysis::check_faulty_round_bound(r), "");
}

// ---- check_progress_every_round (Lemma 7) ----

TEST(VerifyNegative, ProgressNamesTheStalledRound) {
  RunResult r = clean_run();
  r.occupied_per_round = {1, 2, 2, 3, 4, 5};  // stalls between rounds 1 and 2
  const std::string diag = analysis::check_progress_every_round(r);
  ASSERT_FALSE(diag.empty());
  EXPECT_TRUE(contains(diag, "no progress in round 1")) << diag;
  EXPECT_TRUE(contains(diag, "2 -> 2")) << diag;
  EXPECT_TRUE(contains(diag, "k=5")) << diag;
}

TEST(VerifyNegative, ProgressReportsTheFirstStalledRound) {
  RunResult r = clean_run();
  r.occupied_per_round = {1, 1, 2, 2, 3, 5};  // stalls at rounds 0 and 3
  EXPECT_TRUE(contains(analysis::check_progress_every_round(r),
                       "no progress in round 0"));
}

TEST(VerifyNegative, ProgressRequiresRecording) {
  RunResult r = clean_run();
  r.occupied_per_round.clear();
  EXPECT_TRUE(
      contains(analysis::check_progress_every_round(r), "record_progress"));
}

TEST(VerifyNegative, ProgressAllowsStallOnceEveryRobotIsSettled) {
  RunResult r = clean_run();
  // After occupied == k the count may plateau: not a violation.
  r.occupied_per_round = {1, 2, 3, 4, 5, 5, 5};
  EXPECT_EQ(analysis::check_progress_every_round(r), "");
}

// ---- check_occupied_monotone (Lemma 6 corollary) ----

TEST(VerifyNegative, MonotoneNamesRoundAndCounts) {
  RunResult r = clean_run();
  r.occupied_per_round = {1, 2, 4, 3, 4, 5};  // drops between rounds 2 and 3
  const std::string diag = analysis::check_occupied_monotone(r);
  ASSERT_FALSE(diag.empty());
  EXPECT_TRUE(contains(diag, "occupied count dropped in round 2")) << diag;
  EXPECT_TRUE(contains(diag, "4 -> 3")) << diag;
}

TEST(VerifyNegative, MonotoneRequiresRecording) {
  RunResult r = clean_run();
  r.occupied_per_round.clear();
  EXPECT_TRUE(
      contains(analysis::check_occupied_monotone(r), "record_progress"));
}

// ---- check_round_bound (Theorem 4) ----

TEST(VerifyNegative, RoundBoundNamesRoundsAndBound) {
  RunResult r = clean_run();
  r.rounds = 9;  // bound is k - initial_occupied + 1 = 5
  const std::string diag = analysis::check_round_bound(r);
  ASSERT_FALSE(diag.empty());
  EXPECT_TRUE(contains(diag, "dispersion took 9 rounds")) << diag;
  EXPECT_TRUE(contains(diag, "bound is 5")) << diag;
  EXPECT_TRUE(contains(diag, "k=5")) << diag;
  EXPECT_TRUE(contains(diag, "initially occupied 1")) << diag;
}

TEST(VerifyNegative, RoundBoundAccountsForInitialOccupancy) {
  RunResult r = clean_run();
  r.initial_occupied = 3;  // bound tightens to 5 - 3 + 1 = 3
  r.rounds = 4;
  EXPECT_TRUE(contains(analysis::check_round_bound(r), "bound is 3"));
  r.rounds = 3;
  EXPECT_EQ(analysis::check_round_bound(r), "");
}

TEST(VerifyNegative, RoundBoundRequiresDispersal) {
  RunResult r = clean_run();
  r.dispersed = false;
  EXPECT_TRUE(contains(analysis::check_round_bound(r), "did not disperse"));
}

// ---- check_memory_bound (Lemma 8) ----

TEST(VerifyNegative, MemoryBoundNamesPeakAndBound) {
  RunResult r = clean_run();
  r.max_memory_bits = 10;  // bound is ceil(log2(5+1)) = 3
  const std::string diag = analysis::check_memory_bound(r);
  ASSERT_FALSE(diag.empty());
  EXPECT_TRUE(contains(diag, "memory peaked at 10 bits")) << diag;
  EXPECT_TRUE(contains(diag, "bound is 3")) << diag;
  EXPECT_TRUE(contains(diag, "k=5")) << diag;
}

TEST(VerifyNegative, MemoryBoundHonorsSlack) {
  RunResult r = clean_run();
  r.max_memory_bits = 10;
  EXPECT_FALSE(analysis::check_memory_bound(r, 6).empty());  // bound 9
  EXPECT_EQ(analysis::check_memory_bound(r, 7), "");         // bound 10
}

// ---- check_faulty_round_bound (Theorem 5) ----

TEST(VerifyNegative, FaultyRoundBoundNamesRoundsBoundAndF) {
  RunResult r = clean_run();
  r.crashed = 2;
  r.rounds = 6;  // bound is k - f + slack = 5 - 2 + 1 = 4
  const std::string diag = analysis::check_faulty_round_bound(r);
  ASSERT_FALSE(diag.empty());
  EXPECT_TRUE(contains(diag, "faulty dispersion took 6 rounds")) << diag;
  EXPECT_TRUE(contains(diag, "bound is 4")) << diag;
  EXPECT_TRUE(contains(diag, "k=5")) << diag;
  EXPECT_TRUE(contains(diag, "f=2")) << diag;
}

TEST(VerifyNegative, FaultyRoundBoundRequiresDispersal) {
  RunResult r = clean_run();
  r.dispersed = false;
  EXPECT_TRUE(
      contains(analysis::check_faulty_round_bound(r), "did not disperse"));
}

TEST(VerifyNegative, FaultyRoundBoundDetectsMultiplicity) {
  RunResult r = clean_run();
  // Robots 1 and 2 share node 0: dispersed flag lies about the config.
  r.final_config = Configuration(6, {0, 0, 2, 3, 4});
  EXPECT_TRUE(
      contains(analysis::check_faulty_round_bound(r), "multiplicity"));
}

}  // namespace
}  // namespace dyndisp
