// A lightweight C++ tokenizer for the dyndisp_lint static-analysis pass.
//
// This is not a compiler front end: it produces a flat token stream with
// line numbers, plus the two side channels the lint rules need -- comments
// (for `NOLINT-dyndisp` suppressions) and `#include` directives (for the
// include-cycle rule). It understands exactly enough C++ lexing to never
// misread source as code: line/block comments, string/char literals
// (including raw strings), digit separators, and preprocessor lines with
// backslash continuations are all consumed correctly.
#pragma once

#include <string>
#include <vector>

namespace dyndisp::lint {

enum class TokenKind {
  kIdentifier,  ///< identifiers and keywords (rules match on text)
  kNumber,
  kString,  ///< string literal, text excludes the quotes
  kChar,    ///< character literal
  kPunct,   ///< single punctuation char, except "::" which is one token
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;  ///< 1-based line of the token's first character
};

/// A comment with its delimiters stripped. Block comments keep interior
/// newlines; `line` is where the comment starts.
struct CommentText {
  std::string text;
  int line = 0;
};

/// One `#include` directive.
struct IncludeDirective {
  std::string path;
  bool angled = false;  ///< <...> rather than "..."
  int line = 0;
};

/// The full lexing result for one translation unit.
struct TokenStream {
  std::vector<Token> tokens;
  std::vector<CommentText> comments;
  std::vector<IncludeDirective> includes;
};

/// Lexes `text`. Never throws on malformed input: an unterminated literal
/// or comment simply ends at end-of-file (lint must not die on the code it
/// is criticizing).
TokenStream tokenize(const std::string& text);

}  // namespace dyndisp::lint
