// The hot-path contract rules: transitive whole-tree analysis over the
// symbol index (lint/index.h) rooted at DYNDISP_HOT annotations
// (util/contract.h), plus the digest-exclusion dual of the Lemma-8
// metering rule. All three are scoped to src/ (and tests/lint_fixtures/,
// so the planted fixtures fire): tests and tools may allocate, print, and
// lock freely -- the contract is about the engine's round loop.
#include <cstddef>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lint/index.h"
#include "lint/rule.h"
#include "lint/rules.h"

namespace dyndisp::lint {
namespace {

bool in_scope(const SourceFile& file) {
  if (file.in_dir("lint_fixtures")) return true;
  return file.in_dir("src") && !file.in_dir("tests") && !file.in_dir("tools");
}

std::vector<const SourceFile*> scoped(const std::vector<SourceFile>& files) {
  std::vector<const SourceFile*> out;
  for (const SourceFile& f : files)
    if (in_scope(f)) out.push_back(&f);
  return out;
}

/// "in DYNDISP_HOT function 'root'" or "reachable from DYNDISP_HOT root
/// via root -> a -> b" -- the part of the message that says WHY the body
/// is on the hot path.
std::string hot_context(const FunctionDef& def, const HotReach& reach) {
  if (reach.path.empty())
    return "in DYNDISP_HOT function '" + def.qualified + "'";
  return "in '" + def.qualified + "', reachable from a DYNDISP_HOT root via " +
         reach.path;
}

bool in_set(const std::string& text, const char* const* names,
            std::size_t count) {
  for (std::size_t i = 0; i < count; ++i)
    if (text == names[i]) return true;
  return false;
}

/// Shared driver for the two hot-path rules: builds the index over the
/// scoped files, closes over the DYNDISP_HOT roots, and hands every
/// hot-reachable definition to `scan`.
template <typename ScanBody>
void for_each_hot_def(const std::vector<SourceFile>& files,
                      const ScanBody& scan) {
  const std::vector<const SourceFile*> in = scoped(files);
  if (in.empty()) return;
  const SymbolIndex index = build_index(in);
  const std::vector<HotReach> reach = hot_reachability(index);
  for (std::size_t d = 0; d < index.defs.size(); ++d) {
    if (!reach[d].reachable) continue;
    scan(index, index.defs[d], reach[d]);
  }
}

/// Container-growth member calls that (re)allocate when capacity is
/// exceeded. resize/reserve/assign are deliberately absent: they are the
/// in-place steady-state sizing idiom this codebase uses, and receivers
/// with a trailing underscore (retained members, refilled in place once
/// warmed up) are exempt -- that retained-buffer contract is exactly what
/// the runtime AllocGuard twin (util/memprobe.h) verifies.
const char* const kGrowthCalls[] = {"push_back", "emplace_back", "emplace",
                                    "insert",    "append",       "append_all"};

class HotpathAllocRule : public Rule {
 public:
  std::string name() const override { return "hotpath-alloc"; }

  std::string description() const override {
    return "heap allocation (new/make_unique/make_shared/container growth) "
           "reachable from a DYNDISP_HOT round-loop root";
  }

  void check_tree(const std::vector<SourceFile>& files,
                  std::vector<Diagnostic>& out) const override {
    for_each_hot_def(files, [&](const SymbolIndex& index,
                                const FunctionDef& def, const HotReach& reach) {
      const SourceFile& file = *index.files[def.file];
      const std::vector<Token>& toks = file.tokens();
      for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
        const Token& t = toks[i];
        if (t.kind != TokenKind::kIdentifier) continue;
        const bool op_new =
            t.text == "new" &&
            !(i >= 1 && toks[i - 1].kind == TokenKind::kIdentifier &&
              toks[i - 1].text == "operator");
        const bool maker = t.text == "make_unique" || t.text == "make_shared";
        if (!op_new && !maker) continue;
        out.push_back({file.path(), t.line, name(),
                       "'" + t.text + "' allocates " +
                           hot_context(def, reach)});
      }
      for (const CallSite& call : def.calls) {
        if (!call.member_access) continue;
        if (!in_set(call.callee, kGrowthCalls, std::size(kGrowthCalls)))
          continue;
        // Trailing-underscore receivers are retained members: their
        // growth calls refill capacity reached in warm-up, which the
        // zero-alloc runtime probe pins.
        if (!call.receiver.empty() && call.receiver.back() == '_') continue;
        out.push_back({file.path(), call.line, name(),
                       "container growth '" + call.callee + "' " +
                           hot_context(def, reach)});
      }
    });
  }
};

/// Identifiers whose mere appearance in a hot-reachable body means
/// blocking or I/O machinery is in play.
const char* const kBlockingIdents[] = {
    "mutex",       "timed_mutex",    "recursive_mutex", "shared_mutex",
    "lock_guard",  "unique_lock",    "scoped_lock",     "shared_lock",
    "condition_variable", "condition_variable_any",
    "cout",        "cerr",           "clog",            "printf",
    "fprintf",     "puts",           "fputs",           "fopen",
    "fclose",      "fwrite",         "fread",           "fgets",
    "system",      "sleep",          "usleep",          "nanosleep",
    "sleep_for",   "sleep_until",    "ofstream",        "ifstream",
    "fstream"};

/// Member calls that block (taken with `.`/`->`, so BitWriter::write-style
/// names stay out of scope).
const char* const kBlockingMembers[] = {"lock",       "unlock", "try_lock",
                                        "wait",       "notify_one",
                                        "notify_all"};

class HotpathBlockingRule : public Rule {
 public:
  std::string name() const override { return "hotpath-blocking"; }

  std::string description() const override {
    return "blocking or I/O call (locks, condition variables, streams, "
           "stdio, sleeps) reachable from a DYNDISP_HOT round-loop root";
  }

  void check_tree(const std::vector<SourceFile>& files,
                  std::vector<Diagnostic>& out) const override {
    for_each_hot_def(files, [&](const SymbolIndex& index,
                                const FunctionDef& def, const HotReach& reach) {
      const SourceFile& file = *index.files[def.file];
      const std::vector<Token>& toks = file.tokens();
      for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
        const Token& t = toks[i];
        if (t.kind != TokenKind::kIdentifier) continue;
        if (!in_set(t.text, kBlockingIdents, std::size(kBlockingIdents)))
          continue;
        out.push_back({file.path(), t.line, name(),
                       "'" + t.text + "' blocks " + hot_context(def, reach)});
      }
      for (const CallSite& call : def.calls) {
        if (!call.member_access) continue;
        if (!in_set(call.callee, kBlockingMembers, std::size(kBlockingMembers)))
          continue;
        out.push_back({file.path(), call.line, name(),
                       "blocking call '" + call.callee + "' " +
                           hot_context(def, reach)});
      }
    });
  }
};

class DigestExclusionRule : public Rule {
 public:
  std::string name() const override { return "digest-exclusion"; }

  std::string description() const override {
    return "field of a DYNDISP_STATS observability struct feeding a "
           "digest/serialize function (the dual of "
           "metering-serialize-fields)";
  }

  void check_tree(const std::vector<SourceFile>& files,
                  std::vector<Diagnostic>& out) const override {
    const std::vector<const SourceFile*> in = scoped(files);
    if (in.empty()) return;
    const SymbolIndex index = build_index(in);
    if (index.stats.empty()) return;
    // Field -> owning struct, plus the struct names themselves.
    std::map<std::string, std::string> tagged;
    for (const StatsStruct& s : index.stats) {
      tagged[s.name] = s.name;
      for (const std::string& field : s.fields) tagged[field] = s.name;
    }
    for (const FunctionDef& def : index.defs) {
      const bool is_digest =
          def.name.find("digest") != std::string::npos ||
          def.name == "serialize";
      if (!is_digest) continue;
      const SourceFile& file = *index.files[def.file];
      const std::vector<Token>& toks = file.tokens();
      for (std::size_t i = def.body_begin; i < def.body_end; ++i) {
        const Token& t = toks[i];
        if (t.kind != TokenKind::kIdentifier) continue;
        const auto it = tagged.find(t.text);
        if (it == tagged.end()) continue;
        out.push_back({file.path(), t.line, name(),
                       "'" + t.text + "' (DYNDISP_STATS struct " +
                           it->second + ") read inside digest/serialize "
                           "function '" + def.qualified +
                           "' -- observability counters must stay out of "
                           "result digests"});
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_hotpath_alloc_rule() {
  return std::make_unique<HotpathAllocRule>();
}

std::unique_ptr<Rule> make_hotpath_blocking_rule() {
  return std::make_unique<HotpathBlockingRule>();
}

std::unique_ptr<Rule> make_digest_exclusion_rule() {
  return std::make_unique<DigestExclusionRule>();
}

}  // namespace dyndisp::lint
