// Factories for the project-specific lint rules (docs/STATIC_ANALYSIS.md
// catalogues each one). Construction goes through registry.cpp's name ->
// factory map; these are the factories it binds.
#pragma once

#include <memory>

#include "lint/rule.h"

namespace dyndisp::lint {

/// determinism-random: bans non-deterministic / platform-dependent RNG
/// sources (std::rand, std::random_device, drand48, ...). Every random
/// draw in this repo must come from util/rng.h's seeded Rng, or trials
/// stop being replayable.
std::unique_ptr<Rule> make_random_rule();

/// determinism-wallclock: flags clock reads (any `::now()`, C time APIs).
/// Wall-clock values that leak into recorded output break bitwise
/// determinism; the sanctioned sites (scheduler wall_ms, fuzz budget)
/// carry NOLINT-dyndisp justifications, and bench/ timers are allowlisted
/// by path.
std::unique_ptr<Rule> make_wallclock_rule();

/// determinism-unordered-iter: flags iteration (range-for, begin/end) over
/// std::unordered_map/unordered_set variables. Hash-order iteration makes
/// output order depend on the standard library's hash seed; membership
/// tests and lookups are fine.
std::unique_ptr<Rule> make_unordered_iter_rule();

/// metering-serialize-fields: every persistent field (trailing-underscore
/// member) of a class that implements serialize(BitWriter&) must be routed
/// through that serializer, or the Lemma 8 memory meter undercounts.
/// Fields that are genuinely not between-round state carry a
/// NOLINT-dyndisp justification.
std::unique_ptr<Rule> make_serialize_fields_rule();

/// hygiene-include-cycle: detects #include cycles among the scanned files.
std::unique_ptr<Rule> make_include_cycle_rule();

/// suppression-contract: validates every NOLINT-dyndisp directive -- a
/// rule list is mandatory, the justification is mandatory, and the named
/// rules must exist.
std::unique_ptr<Rule> make_suppression_contract_rule();

/// hotpath-alloc: heap allocation (new, make_unique/make_shared, growing
/// container calls) in any function reachable from a DYNDISP_HOT round-
/// loop root (util/contract.h), transitively over the call graph, with
/// DYNDISP_COLD definitions as acknowledged boundaries. src/-scoped.
std::unique_ptr<Rule> make_hotpath_alloc_rule();

/// hotpath-blocking: locks, condition variables, iostream/stdio, and
/// sleep-ish calls reachable from a DYNDISP_HOT root. Same scoping and
/// cold boundaries as hotpath-alloc.
std::unique_ptr<Rule> make_hotpath_blocking_rule();

/// digest-exclusion: fields of DYNDISP_STATS-tagged observability structs
/// must never appear in digest/serialize functions -- reuse counters vary
/// with caching configuration, results must not (the dual of
/// metering-serialize-fields).
std::unique_ptr<Rule> make_digest_exclusion_rule();

}  // namespace dyndisp::lint
