#include "lint/rule.h"

namespace dyndisp::lint {

void Rule::check(const SourceFile&, std::vector<Diagnostic>&) const {}

void Rule::check_tree(const std::vector<SourceFile>&,
                      std::vector<Diagnostic>&) const {}

}  // namespace dyndisp::lint
