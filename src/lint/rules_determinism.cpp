// The determinism rules. The repo's core claim -- bitwise-identical runs
// at any --threads, across processes, replayable from a seed -- dies the
// moment an unseeded RNG, a wall-clock read, or a hash-order iteration
// reaches an output path. These rules reject the hazards at lint time; the
// runtime differential oracles (src/check/differential.h) only sample them.
#include <set>
#include <string>
#include <vector>

#include "lint/rules.h"

namespace dyndisp::lint {

namespace {

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

bool followed_by_open_paren(const std::vector<Token>& tokens,
                            std::size_t i) {
  return i + 1 < tokens.size() && tokens[i + 1].kind == TokenKind::kPunct &&
         tokens[i + 1].text == "(";
}

// ---------------------------------------------------------------------------

class RandomRule final : public Rule {
 public:
  std::string name() const override { return "determinism-random"; }
  std::string description() const override {
    return "ban non-deterministic RNG sources; all randomness must come "
           "from util/rng.h's seeded Rng";
  }

  void check(const SourceFile& file,
             std::vector<Diagnostic>& out) const override {
    static const std::set<std::string> kBanned = {
        "rand",         "srand",   "rand_r",        "drand48",
        "lrand48",      "mrand48", "random_device", "random_shuffle",
        "default_random_engine"};
    const std::vector<Token>& tokens = file.tokens();
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier || !kBanned.count(t.text))
        continue;
      // `rand` etc. must look like a use, not a member/field name: require
      // a call or a type position (random_device/default_random_engine are
      // flagged on sight -- declaring one is already the hazard).
      const bool type_like =
          t.text == "random_device" || t.text == "default_random_engine";
      if (!type_like && !followed_by_open_paren(tokens, i)) continue;
      out.push_back(Diagnostic{
          file.path(), t.line, name(),
          "'" + t.text +
              "' is a non-deterministic randomness source; draw from a "
              "seeded util/rng.h Rng instead so trials stay replayable"});
    }
  }
};

// ---------------------------------------------------------------------------

class WallclockRule final : public Rule {
 public:
  std::string name() const override { return "determinism-wallclock"; }
  std::string description() const override {
    return "flag clock reads (chrono ::now(), C time APIs); timing must "
           "not leak into deterministic output paths (bench/ timers are "
           "allowlisted)";
  }

  void check(const SourceFile& file,
             std::vector<Diagnostic>& out) const override {
    // The allowlist: bench timers measure wall time on purpose, and their
    // output is explicitly a measurement, never an input to a result
    // digest or a store record.
    if (file.in_dir("bench")) return;
    static const std::set<std::string> kCTimeApis = {
        "time",      "clock",        "clock_gettime", "gettimeofday",
        "localtime", "gmtime",       "ctime",         "mktime",
        "asctime",   "timespec_get", "ftime"};
    const std::vector<Token>& tokens = file.tokens();
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      // chrono clock reads: `<clock> :: now (`.
      if (t.text == "now" && i > 0 && tokens[i - 1].kind == TokenKind::kPunct &&
          tokens[i - 1].text == "::" && followed_by_open_paren(tokens, i)) {
        const std::string clock_name =
            i >= 2 && tokens[i - 2].kind == TokenKind::kIdentifier
                ? tokens[i - 2].text
                : "clock";
        out.push_back(Diagnostic{
            file.path(), t.line, name(),
            "clock read '" + clock_name +
                "::now()' in a deterministic path; justify with "
                "NOLINT-dyndisp if the value never reaches replayable "
                "output"});
        continue;
      }
      if (kCTimeApis.count(t.text) && followed_by_open_paren(tokens, i)) {
        // Skip declarations/uses of members literally named `time` etc.:
        // require either a `std::`/`::` qualifier or a bare call that is
        // not preceded by `.` or `->` member access.
        if (i > 0 && tokens[i - 1].kind == TokenKind::kPunct &&
            (tokens[i - 1].text == "." || tokens[i - 1].text == ">"))
          continue;
        out.push_back(Diagnostic{
            file.path(), t.line, name(),
            "C time API '" + t.text +
                "()' reads the wall clock; deterministic paths must not "
                "depend on it"});
      }
    }
  }
};

// ---------------------------------------------------------------------------

class UnorderedIterRule final : public Rule {
 public:
  std::string name() const override { return "determinism-unordered-iter"; }
  std::string description() const override {
    return "flag iteration over unordered containers (hash-order output); "
           "membership tests are fine, ordered output paths need std::map "
           "or a sort";
  }

  void check(const SourceFile& file,
             std::vector<Diagnostic>& out) const override {
    const std::vector<Token>& tokens = file.tokens();
    const std::set<std::string> names = declared_unordered_names(tokens);
    if (names.empty()) return;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      // Range-for: `for ( ... : NAME )` with NAME in the head's range
      // expression (after the ':' at parenthesis depth 1).
      if (is_ident(t, "for") && followed_by_open_paren(tokens, i)) {
        check_range_for(file, tokens, i + 1, names, out);
        continue;
      }
      // Explicit iterator walk: NAME . begin ( / NAME . rbegin ( etc.
      if (t.kind == TokenKind::kIdentifier && names.count(t.text) &&
          i + 2 < tokens.size() && tokens[i + 1].kind == TokenKind::kPunct &&
          tokens[i + 1].text == "." &&
          tokens[i + 2].kind == TokenKind::kIdentifier) {
        static const std::set<std::string> kIterFns = {
            "begin", "end", "cbegin", "cend", "rbegin", "rend"};
        if (kIterFns.count(tokens[i + 2].text) &&
            followed_by_open_paren(tokens, i + 2)) {
          out.push_back(iteration_diag(file, t.line, t.text));
        }
      }
    }
  }

 private:
  Diagnostic iteration_diag(const SourceFile& file, int line,
                            const std::string& var) const {
    return Diagnostic{
        file.path(), line, name(),
        "iteration over unordered container '" + var +
            "' visits elements in hash order; anything derived from this "
            "order (output, records, aggregation) is non-deterministic -- "
            "use std::map / a sorted vector, or justify with "
            "NOLINT-dyndisp"};
  }

  // Collects variable/member names declared with an unordered container
  // type in this file: `unordered_map< ... > [&*]* NAME`.
  static std::set<std::string> declared_unordered_names(
      const std::vector<Token>& tokens) {
    std::set<std::string> names;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (t.text != "unordered_map" && t.text != "unordered_set" &&
          t.text != "unordered_multimap" && t.text != "unordered_multiset")
        continue;
      std::size_t j = i + 1;
      // Balance the template argument list ('>' is always a single-char
      // token, so nested `>>` closers count one level each).
      if (j < tokens.size() && tokens[j].kind == TokenKind::kPunct &&
          tokens[j].text == "<") {
        int depth = 0;
        for (; j < tokens.size(); ++j) {
          if (tokens[j].kind != TokenKind::kPunct) continue;
          if (tokens[j].text == "<") ++depth;
          if (tokens[j].text == ">" && --depth == 0) {
            ++j;
            break;
          }
        }
      }
      while (j < tokens.size() && tokens[j].kind == TokenKind::kPunct &&
             (tokens[j].text == "&" || tokens[j].text == "*"))
        ++j;
      if (j < tokens.size() && tokens[j].kind == TokenKind::kIdentifier)
        names.insert(tokens[j].text);
    }
    return names;
  }

  void check_range_for(const SourceFile& file,
                       const std::vector<Token>& tokens, std::size_t open,
                       const std::set<std::string>& names,
                       std::vector<Diagnostic>& out) const {
    int depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t j = open; j < tokens.size(); ++j) {
      if (tokens[j].kind != TokenKind::kPunct) continue;
      if (tokens[j].text == "(") ++depth;
      if (tokens[j].text == ")" && --depth == 0) {
        close = j;
        break;
      }
      if (tokens[j].text == ":" && depth == 1 && colon == 0) colon = j;
      if (tokens[j].text == ";" && depth == 1) return;  // classic for
    }
    if (colon == 0 || close == 0) return;
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (tokens[j].kind == TokenKind::kIdentifier &&
          names.count(tokens[j].text)) {
        out.push_back(iteration_diag(file, tokens[j].line, tokens[j].text));
        return;
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_random_rule() {
  return std::make_unique<RandomRule>();
}

std::unique_ptr<Rule> make_wallclock_rule() {
  return std::make_unique<WallclockRule>();
}

std::unique_ptr<Rule> make_unordered_iter_rule() {
  return std::make_unique<UnorderedIterRule>();
}

}  // namespace dyndisp::lint
