#include "lint/token.h"

#include <cctype>
#include <cstddef>

namespace dyndisp::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  TokenStream run() {
    while (pos_ < text_.size()) step();
    return std::move(out_);
  }

 private:
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      at_line_start_ = true;
    }
    return c;
  }

  void push(TokenKind kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void step() {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' ||
        c == '\f') {
      advance();
      return;
    }
    if (c == '/' && peek(1) == '/') {
      line_comment();
      return;
    }
    if (c == '/' && peek(1) == '*') {
      block_comment();
      return;
    }
    if (c == '#' && at_line_start_) {
      preprocessor_line();
      return;
    }
    at_line_start_ = false;
    if (c == '"') {
      string_literal();
      return;
    }
    if (c == '\'') {
      char_literal();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      number();
      return;
    }
    if (ident_start(c)) {
      identifier();
      return;
    }
    punct();
  }

  void line_comment() {
    const int line = line_;
    advance();
    advance();  // "//"
    std::string text;
    while (pos_ < text_.size() && peek() != '\n') text += advance();
    out_.comments.push_back(CommentText{std::move(text), line});
  }

  void block_comment() {
    const int line = line_;
    advance();
    advance();  // "/*"
    std::string text;
    while (pos_ < text_.size()) {
      if (peek() == '*' && peek(1) == '/') {
        advance();
        advance();
        break;
      }
      text += advance();
    }
    out_.comments.push_back(CommentText{std::move(text), line});
  }

  // Consumes a whole preprocessor line (honoring backslash continuations
  // and embedded comments) and records #include directives. The directive's
  // tokens deliberately do not reach the main stream: macro bodies are out
  // of scope for the lint heuristics.
  void preprocessor_line() {
    const int line = line_;
    advance();  // '#'
    std::string body;
    while (pos_ < text_.size()) {
      if (peek() == '\\' && (peek(1) == '\n' ||
                             (peek(1) == '\r' && peek(2) == '\n'))) {
        advance();           // backslash
        if (peek() == '\r') advance();
        advance();           // newline (continuation)
        body += ' ';
        continue;
      }
      if (peek() == '/' && peek(1) == '/') {
        line_comment();
        break;
      }
      if (peek() == '/' && peek(1) == '*') {
        block_comment();
        body += ' ';
        continue;
      }
      if (peek() == '\n') {
        advance();
        break;
      }
      body += advance();
    }
    record_include(body, line);
    at_line_start_ = true;
  }

  void record_include(const std::string& body, int line) {
    std::size_t i = 0;
    while (i < body.size() &&
           std::isspace(static_cast<unsigned char>(body[i])))
      ++i;
    static const std::string kInclude = "include";
    if (body.compare(i, kInclude.size(), kInclude) != 0) return;
    i += kInclude.size();
    while (i < body.size() &&
           std::isspace(static_cast<unsigned char>(body[i])))
      ++i;
    if (i >= body.size()) return;
    const char open = body[i];
    const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
    if (close == '\0') return;  // computed include (macro); out of scope
    const std::size_t start = ++i;
    const std::size_t end = body.find(close, start);
    if (end == std::string::npos) return;
    out_.includes.push_back(
        IncludeDirective{body.substr(start, end - start), open == '<', line});
  }

  void string_literal() {
    const int line = line_;
    // Raw string: the previous token must have been lexed as an identifier
    // ending in R (R, u8R, LR, uR, UR) immediately adjacent to the quote.
    if (!out_.tokens.empty()) {
      const Token& prev = out_.tokens.back();
      if (prev.kind == TokenKind::kIdentifier && !prev.text.empty() &&
          prev.text.back() == 'R' && prev.text.size() <= 3 &&
          pos_ > 0 && text_[pos_ - 1] == 'R') {
        out_.tokens.pop_back();
        raw_string_literal(line);
        return;
      }
    }
    advance();  // opening quote
    std::string text;
    while (pos_ < text_.size() && peek() != '"' && peek() != '\n') {
      if (peek() == '\\' && pos_ + 1 < text_.size()) text += advance();
      text += advance();
    }
    if (peek() == '"') advance();
    push(TokenKind::kString, std::move(text), line);
  }

  void raw_string_literal(int line) {
    advance();  // opening quote
    std::string delim;
    while (pos_ < text_.size() && peek() != '(') delim += advance();
    if (peek() == '(') advance();
    const std::string closer = ")" + delim + "\"";
    std::string text;
    while (pos_ < text_.size()) {
      if (text_.compare(pos_, closer.size(), closer) == 0) {
        for (std::size_t j = 0; j < closer.size(); ++j) advance();
        break;
      }
      text += advance();
    }
    push(TokenKind::kString, std::move(text), line);
  }

  void char_literal() {
    const int line = line_;
    advance();  // opening quote
    std::string text;
    while (pos_ < text_.size() && peek() != '\'' && peek() != '\n') {
      if (peek() == '\\' && pos_ + 1 < text_.size()) text += advance();
      text += advance();
    }
    if (peek() == '\'') advance();
    push(TokenKind::kChar, std::move(text), line);
  }

  void number() {
    const int line = line_;
    std::string text;
    text += advance();
    while (pos_ < text_.size()) {
      const char c = peek();
      if (ident_char(c) || c == '.' || c == '\'') {
        text += advance();
        const bool hex =
            text.size() > 1 && text[0] == '0' &&
            (text[1] == 'x' || text[1] == 'X');
        // Exponent signs: 1e-3 (decimal e/E), 0x1p+4 (hex p/P only -- an
        // 'e' in a hex literal is a digit, not an exponent).
        const bool exponent =
            hex ? (c == 'p' || c == 'P') : (c == 'e' || c == 'E');
        if (exponent && (peek() == '+' || peek() == '-')) text += advance();
      } else {
        break;
      }
    }
    push(TokenKind::kNumber, std::move(text), line);
  }

  void identifier() {
    const int line = line_;
    std::string text;
    while (pos_ < text_.size() && ident_char(peek())) text += advance();
    push(TokenKind::kIdentifier, std::move(text), line);
  }

  void punct() {
    const int line = line_;
    if (peek() == ':' && peek(1) == ':') {
      advance();
      advance();
      push(TokenKind::kPunct, "::", line);
      return;
    }
    std::string text(1, advance());
    push(TokenKind::kPunct, std::move(text), line);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  TokenStream out_;
};

}  // namespace

TokenStream tokenize(const std::string& text) { return Lexer(text).run(); }

}  // namespace dyndisp::lint
