#include "lint/registry.h"

#include <stdexcept>

#include "lint/rules.h"

namespace dyndisp::lint {

LintRegistry::LintRegistry() {
  rules_["determinism-random"] = make_random_rule;
  rules_["determinism-wallclock"] = make_wallclock_rule;
  rules_["determinism-unordered-iter"] = make_unordered_iter_rule;
  rules_["metering-serialize-fields"] = make_serialize_fields_rule;
  rules_["hygiene-include-cycle"] = make_include_cycle_rule;
  rules_["suppression-contract"] = make_suppression_contract_rule;
  rules_["hotpath-alloc"] = make_hotpath_alloc_rule;
  rules_["hotpath-blocking"] = make_hotpath_blocking_rule;
  rules_["digest-exclusion"] = make_digest_exclusion_rule;
}

const LintRegistry& LintRegistry::instance() {
  static const LintRegistry registry;
  return registry;
}

std::unique_ptr<Rule> LintRegistry::make(const std::string& name) const {
  const auto it = rules_.find(name);
  if (it == rules_.end())
    throw std::invalid_argument("unknown lint rule '" + name +
                                "' (dyndisp_lint --list shows all rules)");
  return it->second();
}

std::vector<std::unique_ptr<Rule>> LintRegistry::make_all() const {
  std::vector<std::unique_ptr<Rule>> all;
  all.reserve(rules_.size());
  for (const auto& [name, factory] : rules_) all.push_back(factory());
  return all;
}

bool LintRegistry::has(const std::string& name) const {
  return rules_.count(name) != 0;
}

std::vector<std::string> LintRegistry::names() const {
  std::vector<std::string> names;
  names.reserve(rules_.size());
  for (const auto& [name, factory] : rules_) names.push_back(name);
  return names;
}

std::string LintRegistry::description(const std::string& name) const {
  return make(name)->description();
}

}  // namespace dyndisp::lint
