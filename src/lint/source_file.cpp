#include "lint/source_file.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace dyndisp::lint {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_rules(const std::string& list) {
  std::vector<std::string> rules;
  std::string current;
  for (const char c : list) {
    if (c == ',') {
      rules.push_back(trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  rules.push_back(trim(current));
  return rules;
}

// Parses one directive starting at `at` (the index of the 'N' of NOLINT...)
// inside the comment text. Emits one Suppression per listed rule.
void parse_directive(const CommentText& comment, std::size_t at,
                     bool next_line, std::vector<Suppression>& out) {
  const std::string& text = comment.text;

  Suppression proto;
  proto.comment_line = comment.line;
  proto.next_line = next_line;
  // NEXTLINE targets are resolved against the token stream by the
  // SourceFile constructor (continuation comment lines must not count as
  // the "next line"); this is the provisional value.
  proto.target_line = next_line ? comment.line + 1 : comment.line;

  const std::size_t open = text.find_first_not_of(' ', at);
  if (open == std::string::npos || text[open] != '(') {
    proto.error = "NOLINT-dyndisp needs an explicit rule list: "
                  "NOLINT-dyndisp(rule): reason";
    out.push_back(std::move(proto));
    return;
  }
  const std::size_t close = text.find(')', open);
  if (close == std::string::npos) {
    proto.error = "unterminated rule list in NOLINT-dyndisp directive";
    out.push_back(std::move(proto));
    return;
  }
  const std::size_t colon = text.find(':', close);
  const std::string reason =
      colon == std::string::npos ? "" : trim(text.substr(colon + 1));
  for (const std::string& rule : split_rules(
           text.substr(open + 1, close - open - 1))) {
    Suppression s = proto;
    s.rule = rule;
    s.reason = reason;
    if (rule.empty()) {
      s.error = "empty rule name in NOLINT-dyndisp directive";
    } else if (reason.empty()) {
      s.error = "suppression of '" + rule +
                "' lacks a justification (NOLINT-dyndisp(" + rule +
                "): reason)";
    } else {
      s.well_formed = true;
    }
    out.push_back(std::move(s));
  }
}

}  // namespace

std::vector<Suppression> parse_suppressions(
    const std::vector<CommentText>& comments) {
  static const std::string kSame = "NOLINT-dyndisp";
  static const std::string kNext = "NOLINTNEXTLINE-dyndisp";
  std::vector<Suppression> out;
  for (const CommentText& comment : comments) {
    // A directive must be the comment's leading content. Mentions embedded
    // in prose (e.g. documentation quoting the contract) are not
    // directives; this is what lets docs/STATIC_ANALYSIS.md describe the
    // syntax without suppressing anything.
    const std::size_t start =
        comment.text.find_first_not_of(" \t", 0);
    if (start == std::string::npos) continue;
    if (comment.text.compare(start, kNext.size(), kNext) == 0) {
      parse_directive(comment, start + kNext.size(), /*next_line=*/true, out);
    } else if (comment.text.compare(start, kSame.size(), kSame) == 0) {
      parse_directive(comment, start + kSame.size(), /*next_line=*/false,
                      out);
    }
  }
  return out;
}

SourceFile SourceFile::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("lint: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_string(path, buffer.str());
}

SourceFile SourceFile::from_string(std::string path, const std::string& text) {
  SourceFile file;
  file.path_ = std::move(path);
  file.stream_ = tokenize(text);
  file.suppressions_ = parse_suppressions(file.stream_.comments);
  // Resolve NOLINTNEXTLINE targets: the first code token strictly after
  // the directive's line, so a justification may wrap over several
  // comment-only lines before the code it covers.
  for (Suppression& s : file.suppressions_) {
    if (!s.next_line) continue;
    for (const Token& t : file.stream_.tokens) {
      if (t.line > s.comment_line) {
        s.target_line = t.line;
        break;
      }
    }
  }
  return file;
}

bool SourceFile::suppressed(const std::string& rule, int line) const {
  for (const Suppression& s : suppressions_) {
    if (s.well_formed && s.rule == rule && s.target_line == line) return true;
  }
  return false;
}

bool SourceFile::in_dir(const std::string& dir) const {
  std::size_t pos = 0;
  while (pos <= path_.size()) {
    const std::size_t slash = path_.find('/', pos);
    const std::size_t end = slash == std::string::npos ? path_.size() : slash;
    if (path_.compare(pos, end - pos, dir) == 0) return true;
    if (slash == std::string::npos) break;
    pos = slash + 1;
  }
  return false;
}

}  // namespace dyndisp::lint
