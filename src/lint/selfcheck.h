// Planted-violation self-test for the lint pass, mirroring
// src/check/planted.h: every registered rule ships an embedded snippet
// that MUST produce a finding, a clean snippet that must NOT, and the
// suppression semantics are proven both ways (justified suppression
// silences the finding; bare suppression does not, and is itself
// reported). `dyndisp_lint --self-check` runs this before CI trusts a
// green tree scan.
#pragma once

#include <string>

namespace dyndisp::lint {

struct SelfCheckResult {
  bool ok = true;
  /// Human-readable transcript; on failure, names the rule and the
  /// expectation that broke.
  std::string detail;
};

[[nodiscard]] SelfCheckResult run_self_check();

}  // namespace dyndisp::lint
