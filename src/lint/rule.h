// The lint rule interface and its diagnostic record.
//
// Rules come in two shapes: per-file rules override check() and see one
// tokenized file at a time; whole-tree rules override check_tree() and see
// every scanned file at once (include cycles, field/serialize pairing
// across header/impl splits). A rule may implement both.
#pragma once

#include <string>
#include <vector>

#include "lint/source_file.h"

namespace dyndisp::lint {

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator==(const Diagnostic&) const = default;
};

class Rule {
 public:
  virtual ~Rule() = default;

  /// Stable rule identifier; appears in diagnostics and in
  /// NOLINT-dyndisp(...) suppressions. Renaming one invalidates existing
  /// suppressions, so treat names like the campaign registry treats its
  /// keys: as a format.
  virtual std::string name() const = 0;

  virtual std::string description() const = 0;

  virtual void check(const SourceFile& file,
                     std::vector<Diagnostic>& out) const;

  virtual void check_tree(const std::vector<SourceFile>& files,
                          std::vector<Diagnostic>& out) const;
};

}  // namespace dyndisp::lint
