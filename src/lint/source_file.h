// A lint-scanned source file: the token stream plus the parsed
// `NOLINT-dyndisp` suppression comments.
//
// The suppression contract (docs/STATIC_ANALYSIS.md):
//
//   // NOLINT-dyndisp(rule-name): why this hazard is intentional
//   // NOLINTNEXTLINE-dyndisp(rule-name): same, for the following line
//
// The justification after the colon is REQUIRED and must be non-empty; a
// bare `NOLINT-dyndisp(rule)` does not suppress anything and is itself
// reported by the suppression-contract rule. Multiple rules may share one
// comment: `NOLINT-dyndisp(rule-a, rule-b): reason`. A directive must be
// the comment's leading content -- mid-prose mentions (documentation) are
// ignored.
#pragma once

#include <string>
#include <vector>

#include "lint/token.h"

namespace dyndisp::lint {

/// One parsed suppression directive (one entry per rule named in it).
struct Suppression {
  std::string rule;
  std::string reason;
  int comment_line = 0;  ///< Line the comment starts on.
  /// Line whose diagnostics it suppresses: the comment's own line, or --
  /// for NOLINTNEXTLINE -- the line of the first code token after the
  /// comment (so a justification may wrap over several comment lines).
  int target_line = 0;
  bool next_line = false;  ///< NOLINTNEXTLINE form.
  bool well_formed = false;
  std::string error;  ///< Why it is malformed (when !well_formed).
};

class SourceFile {
 public:
  /// Reads and tokenizes `path`. Throws std::runtime_error on IO failure.
  static SourceFile load(const std::string& path);

  /// Builds from in-memory text (fixtures and tests).
  static SourceFile from_string(std::string path, const std::string& text);

  const std::string& path() const { return path_; }
  const TokenStream& stream() const { return stream_; }
  const std::vector<Token>& tokens() const { return stream_.tokens; }
  const std::vector<Suppression>& suppressions() const {
    return suppressions_;
  }

  /// True when a well-formed suppression for `rule` covers `line`.
  bool suppressed(const std::string& rule, int line) const;

  /// True when the path has `dir` as one of its directory components
  /// (e.g. in_dir("bench") for "bench/bench_scale.cpp").
  bool in_dir(const std::string& dir) const;

 private:
  std::string path_;
  TokenStream stream_;
  std::vector<Suppression> suppressions_;
};

/// Parses every NOLINT-dyndisp directive out of `comments` (exposed for the
/// suppression-contract rule's self-tests).
std::vector<Suppression> parse_suppressions(
    const std::vector<CommentText>& comments);

}  // namespace dyndisp::lint
