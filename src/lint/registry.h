// The lint-rule registry: string name -> rule factory, the same idiom as
// src/campaign/registry.h. Rule names are stable identifiers -- they
// appear in NOLINT-dyndisp suppressions, CLI flags, and CI logs; renaming
// one is a format break that invalidates existing suppressions.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lint/rule.h"

namespace dyndisp::lint {

class LintRegistry {
 public:
  static const LintRegistry& instance();

  LintRegistry(const LintRegistry&) = delete;
  LintRegistry& operator=(const LintRegistry&) = delete;

  /// Constructs the named rule; throws std::invalid_argument naming the
  /// offending key on an unknown name (so CLI errors read like the
  /// campaign registry's).
  std::unique_ptr<Rule> make(const std::string& name) const;

  /// Every registered rule, in lexicographic name order.
  std::vector<std::unique_ptr<Rule>> make_all() const;

  bool has(const std::string& name) const;

  /// Registered names in lexicographic order (deterministic for --list).
  std::vector<std::string> names() const;

  /// The rule's one-line description (for --list).
  std::string description(const std::string& name) const;

 private:
  LintRegistry();

  std::map<std::string, std::function<std::unique_ptr<Rule>()>> rules_;
};

}  // namespace dyndisp::lint
