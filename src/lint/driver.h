// The lint driver: collects source files, runs the selected rules,
// applies the NOLINT-dyndisp suppressions, and produces a deterministic,
// sorted diagnostic report. tools/dyndisp_lint is a thin CLI over this;
// tests call it directly.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "lint/rule.h"

namespace dyndisp::lint {

struct LintOptions {
  /// Rule names to run; empty = every registered rule.
  std::vector<std::string> rules;
  /// Files or directories to scan. Directories are walked recursively for
  /// .h/.hpp/.cpp/.cc files in sorted order; a directory named
  /// `lint_fixtures` is skipped unless it is itself a root (the planted
  /// fixtures must not fail the tree scan).
  std::vector<std::string> paths;
};

struct LintReport {
  /// Post-suppression diagnostics, sorted by (file, line, rule).
  std::vector<Diagnostic> diagnostics;
  std::size_t files_scanned = 0;
  /// Diagnostics dropped by a well-formed, justified suppression.
  std::size_t suppressed = 0;

  bool clean() const { return diagnostics.empty(); }
};

/// Expands files/directories into the sorted list of source files to scan.
/// Throws std::runtime_error on a path that does not exist.
[[nodiscard]] std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths);

/// Runs `rule_names` (empty = all) over already-loaded files.
[[nodiscard]] LintReport lint_files(const std::vector<SourceFile>& files,
                                    const std::vector<std::string>& rule_names);

/// Collect + load + lint in one call.
[[nodiscard]] LintReport lint_paths(const LintOptions& options);

/// Writes "file:line: [rule] message" lines plus a one-line summary.
void print_report(const LintReport& report, std::ostream& out);

}  // namespace dyndisp::lint
