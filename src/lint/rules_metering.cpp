// metering-serialize-fields: the honesty check behind the Lemma 8 memory
// audit.
//
// The engine meters a robot's persistent memory as the bit count its
// serialize(BitWriter&) emits (src/sim/memory_meter.h). That number is only
// honest if EVERY between-round member actually flows through the
// serializer -- a field that is carried across rounds but skipped in
// serialize() is unmetered state, and the Theta(log k) claim silently
// stops being audited.
//
// Heuristic pairing: inside any class that implements
// serialize(BitWriter&), every trailing-underscore member must be named
// somewhere in that class's serialize body (inline or out-of-line
// ClassName::serialize in any scanned file). Members that are genuinely
// not between-round state (model parameters, shared caches, config knobs)
// carry a NOLINT-dyndisp(metering-serialize-fields) justification on their
// declaration line.
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/rules.h"

namespace dyndisp::lint {

namespace {

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

struct FieldDecl {
  std::string name;
  int line = 0;
};

struct ClassInfo {
  std::string name;
  std::string file;
  bool has_serialize = false;
  std::vector<FieldDecl> fields;
  std::set<std::string> inline_body_idents;
  bool inline_body_seen = false;
};

// Collects identifier texts of the brace-balanced body starting at
// tokens[open] == "{"; returns the index just past the closing brace.
std::size_t capture_body(const std::vector<Token>& tokens, std::size_t open,
                         std::set<std::string>& idents) {
  int depth = 0;
  std::size_t i = open;
  for (; i < tokens.size(); ++i) {
    if (is_punct(tokens[i], "{")) ++depth;
    if (is_punct(tokens[i], "}") && --depth == 0) return i + 1;
    if (tokens[i].kind == TokenKind::kIdentifier)
      idents.insert(tokens[i].text);
  }
  return i;
}

// True when the parameter list starting at tokens[open] == "(" mentions
// BitWriter; sets `close` to the index of the matching ")".
bool paren_mentions_bitwriter(const std::vector<Token>& tokens,
                              std::size_t open, std::size_t& close) {
  int depth = 0;
  bool found = false;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (is_punct(tokens[i], "(")) ++depth;
    if (is_punct(tokens[i], ")") && --depth == 0) {
      close = i;
      return found;
    }
    if (tokens[i].kind == TokenKind::kIdentifier &&
        tokens[i].text == "BitWriter")
      found = true;
  }
  return false;
}

// Skips trailing function qualifiers after the parameter list.
std::size_t skip_qualifiers(const std::vector<Token>& tokens, std::size_t i) {
  static const std::set<std::string> kQualifiers = {"const", "override",
                                                    "final", "noexcept"};
  while (i < tokens.size() && tokens[i].kind == TokenKind::kIdentifier &&
         kQualifiers.count(tokens[i].text))
    ++i;
  return i;
}

class FileScanner {
 public:
  FileScanner(const SourceFile& file, std::vector<ClassInfo>& classes,
              std::map<std::string, std::set<std::string>>& out_of_line)
      : file_(file), classes_(classes), out_of_line_(out_of_line) {}

  void run() {
    const std::vector<Token>& tokens = file_.tokens();
    for (std::size_t i = 0; i < tokens.size(); ++i) i = step(tokens, i);
  }

 private:
  struct Frame {
    int class_index = -1;  ///< Index into classes_, or -1 for a plain scope.
  };

  bool in_class() const {
    return !frames_.empty() && frames_.back().class_index >= 0;
  }

  // Processes tokens[i]; returns the index whose successor should be
  // processed next (usually i itself).
  std::size_t step(const std::vector<Token>& tokens, std::size_t i) {
    const Token& t = tokens[i];

    // Track `class X` / `struct X` heads so the next '{' opens a class
    // scope. Template parameters (`template <class T>`) and enum classes
    // are not class heads.
    if (t.kind == TokenKind::kIdentifier &&
        (t.text == "class" || t.text == "struct")) {
      const bool template_param =
          i > 0 && (is_punct(tokens[i - 1], "<") || is_punct(tokens[i - 1], ","));
      const bool enum_class =
          i > 0 && tokens[i - 1].kind == TokenKind::kIdentifier &&
          tokens[i - 1].text == "enum";
      if (!template_param && !enum_class && i + 1 < tokens.size() &&
          tokens[i + 1].kind == TokenKind::kIdentifier) {
        pending_class_ = tokens[i + 1].text;
      }
      return i;
    }
    if (is_punct(t, ";") || is_punct(t, "=")) {
      // `class X;` forward declaration / `using Y = ...` alias -- the
      // pending head never opens a scope.
      pending_class_.clear();
      return i;
    }
    if (is_punct(t, "{")) {
      Frame frame;
      if (!pending_class_.empty()) {
        frame.class_index = static_cast<int>(classes_.size());
        ClassInfo info;
        info.name = pending_class_;
        info.file = file_.path();
        classes_.push_back(info);
        pending_class_.clear();
      }
      frames_.push_back(frame);
      return i;
    }
    if (is_punct(t, "}")) {
      if (!frames_.empty()) frames_.pop_back();
      return i;
    }

    // Out-of-line `ClassName::serialize(BitWriter&...) const {`.
    if (t.kind == TokenKind::kIdentifier && t.text == "serialize" && i >= 2 &&
        is_punct(tokens[i - 1], "::") &&
        tokens[i - 2].kind == TokenKind::kIdentifier &&
        i + 1 < tokens.size() && is_punct(tokens[i + 1], "(")) {
      std::size_t close = 0;
      if (!paren_mentions_bitwriter(tokens, i + 1, close)) return i;
      std::size_t j = skip_qualifiers(tokens, close + 1);
      if (j < tokens.size() && is_punct(tokens[j], "{")) {
        std::set<std::string>& idents = out_of_line_[tokens[i - 2].text];
        return capture_body(tokens, j, idents) - 1;
      }
      return i;
    }

    if (!in_class()) return i;
    ClassInfo& cls = classes_[frames_.back().class_index];

    // In-class `serialize(BitWriter&...)` declaration or inline definition.
    if (t.kind == TokenKind::kIdentifier && t.text == "serialize" &&
        i + 1 < tokens.size() && is_punct(tokens[i + 1], "(") &&
        !(i > 0 && is_punct(tokens[i - 1], "::"))) {
      std::size_t close = 0;
      if (!paren_mentions_bitwriter(tokens, i + 1, close)) return i;
      cls.has_serialize = true;
      std::size_t j = skip_qualifiers(tokens, close + 1);
      if (j < tokens.size() && is_punct(tokens[j], "{")) {
        cls.inline_body_seen = true;
        return capture_body(tokens, j, cls.inline_body_idents) - 1;
      }
      return i;
    }

    // Member field: trailing-underscore identifier at the class's immediate
    // scope, followed by a declarator terminator. Method bodies push plain
    // frames (or are captured above), so locals never reach here.
    if (t.kind == TokenKind::kIdentifier && t.text.size() > 1 &&
        t.text.back() == '_' && i + 1 < tokens.size() &&
        (is_punct(tokens[i + 1], ";") || is_punct(tokens[i + 1], "=") ||
         is_punct(tokens[i + 1], "{") || is_punct(tokens[i + 1], "["))) {
      // `= default;` style appears after constructors, never after a
      // trailing-underscore name, so this is a declaration.
      cls.fields.push_back(FieldDecl{t.text, t.line});
      // A brace initializer opens a scope we must not treat as code.
      if (is_punct(tokens[i + 1], "{")) {
        std::set<std::string> ignored;
        return capture_body(tokens, i + 1, ignored) - 1;
      }
    }
    return i;
  }

  const SourceFile& file_;
  std::vector<ClassInfo>& classes_;
  std::map<std::string, std::set<std::string>>& out_of_line_;
  std::vector<Frame> frames_;
  std::string pending_class_;
};

class SerializeFieldsRule final : public Rule {
 public:
  std::string name() const override { return "metering-serialize-fields"; }
  std::string description() const override {
    return "every persistent field of a serialize(BitWriter&) class must "
           "be routed through the serializer (Lemma 8 metering honesty)";
  }

  void check_tree(const std::vector<SourceFile>& files,
                  std::vector<Diagnostic>& out) const override {
    std::vector<ClassInfo> classes;
    std::map<std::string, std::set<std::string>> out_of_line;
    for (const SourceFile& file : files)
      FileScanner(file, classes, out_of_line).run();

    for (const ClassInfo& cls : classes) {
      if (!cls.has_serialize || cls.fields.empty()) continue;
      std::set<std::string> body = cls.inline_body_idents;
      bool body_seen = cls.inline_body_seen;
      if (const auto it = out_of_line.find(cls.name);
          it != out_of_line.end()) {
        body.insert(it->second.begin(), it->second.end());
        body_seen = true;
      }
      // Headers scanned without their implementation: nothing to pair
      // against, so nothing to claim.
      if (!body_seen) continue;
      for (const FieldDecl& field : cls.fields) {
        if (body.count(field.name)) continue;
        out.push_back(Diagnostic{
            cls.file, field.line, name(),
            "field '" + field.name + "' of " + cls.name +
                " never reaches serialize(BitWriter&); the Lemma 8 memory "
                "meter undercounts it -- serialize it, or justify with "
                "NOLINT-dyndisp why it is not between-round state"});
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_serialize_fields_rule() {
  return std::make_unique<SerializeFieldsRule>();
}

}  // namespace dyndisp::lint
