// Hygiene rules: include-cycle detection over the scanned tree, and the
// suppression contract that keeps NOLINT-dyndisp honest (a suppression
// without a justification is itself a finding, mirroring how
// src/check/planted.h keeps the fuzzer honest).
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/registry.h"
#include "lint/rules.h"

namespace dyndisp::lint {

namespace {

// ---------------------------------------------------------------------------

class IncludeCycleRule final : public Rule {
 public:
  std::string name() const override { return "hygiene-include-cycle"; }
  std::string description() const override {
    return "detect #include cycles among the scanned files";
  }

  void check_tree(const std::vector<SourceFile>& files,
                  std::vector<Diagnostic>& out) const override {
    // Resolve quoted includes by path suffix: the repo includes with
    // src-root-relative paths ("campaign/registry.h"), while scan paths
    // carry the tree prefix ("src/campaign/registry.h").
    std::map<std::string, int> index;
    for (std::size_t i = 0; i < files.size(); ++i)
      index[files[i].path()] = static_cast<int>(i);

    auto resolve = [&](const std::string& inc) -> int {
      if (const auto it = index.find(inc); it != index.end())
        return it->second;
      int match = -1;
      const std::string suffix = "/" + inc;
      for (const auto& [path, i] : index) {
        if (path.size() > suffix.size() &&
            path.compare(path.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
          if (match >= 0) return -1;  // ambiguous; stay silent
          match = i;
        }
      }
      return match;
    };

    const int n = static_cast<int>(files.size());
    std::vector<std::vector<std::pair<int, int>>> edges(n);  // (target, line)
    for (int i = 0; i < n; ++i) {
      for (const IncludeDirective& inc : files[i].stream().includes) {
        if (inc.angled) continue;
        const int target = resolve(inc.path);
        if (target >= 0 && target != i)
          edges[i].push_back({target, inc.line});
      }
    }

    // Iterative DFS with an explicit stack; a back edge to a gray node
    // closes a cycle. Each cycle is reported once, rotated to start at its
    // lexicographically smallest file.
    std::vector<int> color(n, 0);  // 0 white, 1 gray, 2 black
    std::vector<int> parent(n, -1), parent_line(n, 0);
    std::set<std::vector<std::string>> reported;
    for (int root = 0; root < n; ++root) {
      if (color[root] != 0) continue;
      dfs(root, files, edges, color, parent, parent_line, reported, out);
    }
  }

 private:
  void dfs(int root, const std::vector<SourceFile>& files,
           const std::vector<std::vector<std::pair<int, int>>>& edges,
           std::vector<int>& color, std::vector<int>& parent,
           std::vector<int>& parent_line,
           std::set<std::vector<std::string>>& reported,
           std::vector<Diagnostic>& out) const {
    struct StackEntry {
      int node;
      std::size_t next_edge = 0;
    };
    std::vector<StackEntry> stack{{root}};
    color[root] = 1;
    while (!stack.empty()) {
      StackEntry& top = stack.back();
      if (top.next_edge >= edges[top.node].size()) {
        color[top.node] = 2;
        stack.pop_back();
        continue;
      }
      const auto [target, line] = edges[top.node][top.next_edge++];
      if (color[target] == 0) {
        color[target] = 1;
        parent[target] = top.node;
        parent_line[target] = line;
        stack.push_back({target});
      } else if (color[target] == 1) {
        report_cycle(top.node, target, line, files, parent, reported, out);
      }
    }
  }

  void report_cycle(int from, int to, int line,
                    const std::vector<SourceFile>& files,
                    const std::vector<int>& parent,
                    std::set<std::vector<std::string>>& reported,
                    std::vector<Diagnostic>& out) const {
    std::vector<int> cycle{from};
    for (int v = from; v != to; v = parent[v]) {
      if (parent[v] < 0) return;  // stale gray chain; not an ancestor
      cycle.push_back(parent[v]);
    }
    std::reverse(cycle.begin(), cycle.end());  // to -> ... -> from

    std::vector<std::string> names;
    names.reserve(cycle.size());
    for (const int v : cycle) names.push_back(files[v].path());
    // Canonical form: rotate so the smallest path leads.
    const auto smallest = std::min_element(names.begin(), names.end());
    std::vector<std::string> canonical(smallest, names.end());
    canonical.insert(canonical.end(), names.begin(), smallest);
    if (!reported.insert(canonical).second) return;

    std::string chain;
    for (const std::string& p : canonical) chain += p + " -> ";
    chain += canonical.front();
    out.push_back(Diagnostic{files[from].path(), line, name(),
                             "#include cycle: " + chain});
  }
};

// ---------------------------------------------------------------------------

class SuppressionContractRule final : public Rule {
 public:
  std::string name() const override { return "suppression-contract"; }
  std::string description() const override {
    return "NOLINT-dyndisp directives must name an existing rule and carry "
           "a non-empty justification";
  }

  void check(const SourceFile& file,
             std::vector<Diagnostic>& out) const override {
    for (const Suppression& s : file.suppressions()) {
      if (!s.well_formed) {
        out.push_back(
            Diagnostic{file.path(), s.comment_line, name(), s.error});
        continue;
      }
      if (!LintRegistry::instance().has(s.rule)) {
        out.push_back(Diagnostic{
            file.path(), s.comment_line, name(),
            "suppression names unknown rule '" + s.rule +
                "' (see dyndisp_lint --list); a typo here silently "
                "suppresses nothing"});
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> make_include_cycle_rule() {
  return std::make_unique<IncludeCycleRule>();
}

std::unique_ptr<Rule> make_suppression_contract_rule() {
  return std::make_unique<SuppressionContractRule>();
}

}  // namespace dyndisp::lint
