// A lightweight whole-tree symbol index for the call-graph contract rules
// (rules_hotpath.cpp), built on the lint tokenizer. Not a compiler: it
// recognizes function DEFINITIONS (identifier + balanced parameter list +
// body, with ctor-init-lists, trailing return types, and out-of-line
// qualified names handled), the call sites inside each body, and structs
// tagged DYNDISP_STATS (util/contract.h). Calls are resolved by unqualified
// name to every same-named definition in the indexed set -- deliberately
// over-approximate: a contract analyzer must not miss a real edge, and a
// spurious edge at worst asks for one reviewed suppression or DYNDISP_COLD
// boundary.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lint/source_file.h"

namespace dyndisp::lint {

/// One call site inside a function body.
struct CallSite {
  std::string callee;         ///< Unqualified called name.
  int line = 0;
  bool member_access = false;  ///< Preceded by `.` or `->`.
  std::string receiver;        ///< Identifier before the `.`/`->`, if any.
};

/// One function definition (a body was seen, not just a declaration).
struct FunctionDef {
  std::string name;       ///< Unqualified name.
  std::string qualified;  ///< `Class::name` for out-of-line members.
  std::size_t file = 0;   ///< Index into SymbolIndex::files.
  int line = 0;
  bool hot = false;   ///< Annotated DYNDISP_HOT.
  bool cold = false;  ///< Annotated DYNDISP_COLD (stops propagation).
  std::size_t body_begin = 0;  ///< Token range of the body, exclusive of
  std::size_t body_end = 0;    ///< the braces: [body_begin, body_end).
  std::vector<CallSite> calls;
};

/// One struct tagged DYNDISP_STATS, with its field names.
struct StatsStruct {
  std::string name;
  std::size_t file = 0;
  int line = 0;
  std::vector<std::string> fields;
};

/// The index over one set of files (pointers must outlive the index).
struct SymbolIndex {
  std::vector<const SourceFile*> files;
  std::vector<FunctionDef> defs;
  std::vector<StatsStruct> stats;
  /// Unqualified name -> indices into defs (ascending; deterministic).
  std::map<std::string, std::vector<std::size_t>> by_name;
};

/// Indexes `files` (every entry must stay alive while the index is used).
SymbolIndex build_index(const std::vector<const SourceFile*>& files);

/// One function's hot-path status after transitive closure.
struct HotReach {
  bool reachable = false;
  /// Human-readable chain from the hot root to this def, e.g.
  /// "fill_view -> count" ("" for the roots themselves).
  std::string path;
};

/// BFS from every DYNDISP_HOT def along call edges, stopping at
/// DYNDISP_COLD boundaries. Returns one entry per index.defs element.
std::vector<HotReach> hot_reachability(const SymbolIndex& index);

}  // namespace dyndisp::lint
