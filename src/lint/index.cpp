#include "lint/index.h"

#include <cstddef>
#include <deque>

namespace dyndisp::lint {
namespace {

/// Keywords (and keyword-like macros) that can precede a `(` without being
/// a function name -- excluded from both definition and call detection.
bool is_keyword(const std::string& t) {
  static const char* const kWords[] = {
      "if",       "for",      "while",    "switch",   "catch",
      "return",   "sizeof",   "alignof",  "alignas",  "decltype",
      "noexcept", "static_assert",        "new",      "delete",
      "throw",    "else",     "do",       "operator", "constexpr",
      "const",    "case",     "default",  "using",    "typedef",
      "template", "typename", "requires", "static",   "inline",
      "virtual",  "explicit", "friend",   "struct",   "class",
      "enum",     "namespace","union",    "goto",     "assert",
      "co_await", "co_yield", "co_return"};
  for (const char* w : kWords)
    if (t == w) return true;
  return false;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

/// Index just past the `)` matching the `(` at `open`, or 0 on failure.
std::size_t skip_balanced_parens(const std::vector<Token>& toks,
                                 std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "(")) ++depth;
    else if (is_punct(toks[i], ")")) {
      if (--depth == 0) return i + 1;
    }
  }
  return 0;
}

/// Index just past the `}` matching the `{` at `open`, or toks.size().
std::size_t skip_balanced_braces(const std::vector<Token>& toks,
                                 std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is_punct(toks[i], "{")) ++depth;
    else if (is_punct(toks[i], "}")) {
      if (--depth == 0) return i + 1;
    }
  }
  return toks.size();
}

/// True when the token before `i` is a member-access operator (`.` or the
/// two-token `->`); fills `receiver` with the identifier in front of it.
bool member_access_before(const std::vector<Token>& toks, std::size_t i,
                          std::string* receiver) {
  std::size_t obj = 0;
  if (i >= 1 && is_punct(toks[i - 1], ".")) {
    obj = i - 1;
  } else if (i >= 2 && is_punct(toks[i - 1], ">") && is_punct(toks[i - 2], "-")) {
    obj = i - 2;
  } else {
    return false;
  }
  if (receiver) {
    receiver->clear();
    if (obj >= 1 && toks[obj - 1].kind == TokenKind::kIdentifier)
      *receiver = toks[obj - 1].text;
  }
  return true;
}

/// Starting from an identifier at `i` followed by `(`, decides whether this
/// is a function definition; on success returns the index of the body's
/// opening `{`, else 0. Handles cv/ref qualifiers, noexcept(...), override/
/// final, function-try-blocks, ctor initializer lists (member init braces
/// are skipped, the body brace follows a `)` or `}`), and trailing return
/// types.
std::size_t find_body_open(const std::vector<Token>& toks, std::size_t i) {
  const std::size_t after_params = skip_balanced_parens(toks, i + 1);
  if (after_params == 0) return 0;
  std::size_t k = after_params;
  while (k < toks.size()) {
    const Token& t = toks[k];
    if (is_ident(t, "const") || is_ident(t, "override") ||
        is_ident(t, "final") || is_ident(t, "try") || is_punct(t, "&")) {
      ++k;
      continue;
    }
    if (is_ident(t, "noexcept")) {
      ++k;
      if (k < toks.size() && is_punct(toks[k], "(")) {
        k = skip_balanced_parens(toks, k);
        if (k == 0) return 0;
      }
      continue;
    }
    if (is_punct(t, "-") && k + 1 < toks.size() && is_punct(toks[k + 1], ">")) {
      // Trailing return type: scan to the body brace or a declaration end.
      std::size_t j = k + 2;
      while (j < toks.size()) {
        if (is_punct(toks[j], "(")) {
          j = skip_balanced_parens(toks, j);
          if (j == 0) return 0;
          continue;
        }
        if (is_punct(toks[j], "{")) return j;
        if (is_punct(toks[j], ";") || is_punct(toks[j], "=")) return 0;
        ++j;
      }
      return 0;
    }
    if (is_punct(t, ":")) {
      // Constructor initializer list: member-init braces follow an
      // identifier or `>`; the body brace follows a `)` or `}`.
      std::size_t j = k + 1;
      while (j < toks.size()) {
        if (is_punct(toks[j], "(")) {
          j = skip_balanced_parens(toks, j);
          if (j == 0) return 0;
          continue;
        }
        if (is_punct(toks[j], "{")) {
          if (j >= 1 && (toks[j - 1].kind == TokenKind::kIdentifier ||
                         is_punct(toks[j - 1], ">"))) {
            j = skip_balanced_braces(toks, j);
            continue;
          }
          return j;
        }
        if (is_punct(toks[j], ";")) return 0;
        ++j;
      }
      return 0;
    }
    if (is_punct(t, "{")) return k;
    return 0;  // `;`, `=` (decl, = default/delete/0), or anything else.
  }
  return 0;
}

/// Extracts the call sites inside [begin, end) into `def`.
void collect_calls(const std::vector<Token>& toks, std::size_t begin,
                   std::size_t end, FunctionDef& def) {
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier || is_keyword(t.text)) continue;
    if (i + 1 >= end || !is_punct(toks[i + 1], "(")) continue;
    CallSite call;
    call.callee = t.text;
    call.line = t.line;
    call.member_access = member_access_before(toks, i, &call.receiver);
    def.calls.push_back(call);
  }
}

/// Side-scan of a DYNDISP_STATS struct: name from the head, field names
/// from the body (depth-1 identifiers followed by `=`, `;`, `{`, or `[`).
/// `kw` is the index of the `struct`/`class` keyword. Does not advance the
/// main walk -- methods inside the body still get indexed normally.
void collect_stats_struct(const std::vector<Token>& toks, std::size_t kw,
                          std::size_t file, std::vector<StatsStruct>& out) {
  StatsStruct s;
  s.file = file;
  s.line = toks[kw].line;
  std::size_t body = 0;
  bool tagged = false;
  for (std::size_t i = kw + 1; i < toks.size(); ++i) {
    if (is_punct(toks[i], ";") || is_punct(toks[i], "(")) return;
    if (is_punct(toks[i], "{")) {
      body = i;
      break;
    }
    if (toks[i].kind == TokenKind::kIdentifier) {
      if (toks[i].text == "DYNDISP_STATS") tagged = true;
      else if (s.name.empty() && toks[i].text != "final") s.name = toks[i].text;
    }
  }
  if (!tagged || body == 0 || s.name.empty()) return;
  int depth = 0;
  for (std::size_t i = body; i < toks.size(); ++i) {
    if (is_punct(toks[i], "{")) { ++depth; continue; }
    if (is_punct(toks[i], "}")) {
      if (--depth == 0) break;
      continue;
    }
    if (depth != 1) continue;
    if (toks[i].kind != TokenKind::kIdentifier || is_keyword(toks[i].text))
      continue;
    if (i + 1 >= toks.size()) break;
    if (is_punct(toks[i + 1], "=") || is_punct(toks[i + 1], ";") ||
        is_punct(toks[i + 1], "[")) {
      s.fields.push_back(toks[i].text);
    }
  }
  out.push_back(s);
}

}  // namespace

SymbolIndex build_index(const std::vector<const SourceFile*>& files) {
  SymbolIndex index;
  index.files = files;
  for (std::size_t f = 0; f < files.size(); ++f) {
    const std::vector<Token>& toks = files[f]->tokens();
    bool pending_hot = false;
    bool pending_cold = false;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind == TokenKind::kPunct) {
        if (t.text == ";" || t.text == "{" || t.text == "}")
          pending_hot = pending_cold = false;
        continue;
      }
      if (t.kind != TokenKind::kIdentifier) continue;
      if (t.text == "DYNDISP_HOT") { pending_hot = true; continue; }
      if (t.text == "DYNDISP_COLD") { pending_cold = true; continue; }
      if (t.text == "struct" || t.text == "class") {
        collect_stats_struct(toks, i, f, index.stats);
        continue;
      }
      if (is_keyword(t.text)) continue;
      if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) continue;
      if (member_access_before(toks, i, nullptr)) continue;
      const std::size_t body_open = find_body_open(toks, i);
      if (body_open == 0) continue;
      FunctionDef def;
      def.name = t.text;
      def.qualified = t.text;
      for (std::size_t p = i; p >= 2 && is_punct(toks[p - 1], "::") &&
                              toks[p - 2].kind == TokenKind::kIdentifier;
           p -= 2) {
        def.qualified = toks[p - 2].text + "::" + def.qualified;
      }
      def.file = f;
      def.line = t.line;
      def.hot = pending_hot;
      def.cold = pending_cold;
      pending_hot = pending_cold = false;
      const std::size_t body_close = skip_balanced_braces(toks, body_open);
      def.body_begin = body_open + 1;
      def.body_end = body_close == 0 ? toks.size() : body_close - 1;
      collect_calls(toks, def.body_begin, def.body_end, def);
      index.by_name[def.name].push_back(index.defs.size());
      index.defs.push_back(def);
      i = def.body_end;  // Bodies are consumed wholesale (lambdas and
                         // local types attribute to the enclosing def).
    }
  }
  return index;
}

std::vector<HotReach> hot_reachability(const SymbolIndex& index) {
  std::vector<HotReach> reach(index.defs.size());
  std::deque<std::size_t> queue;
  for (std::size_t d = 0; d < index.defs.size(); ++d) {
    if (index.defs[d].hot) {
      reach[d].reachable = true;
      queue.push_back(d);
    }
  }
  while (!queue.empty()) {
    const std::size_t d = queue.front();
    queue.pop_front();
    const std::string& base =
        reach[d].path.empty() ? index.defs[d].qualified : reach[d].path;
    for (const CallSite& call : index.defs[d].calls) {
      const auto it = index.by_name.find(call.callee);
      if (it == index.by_name.end()) continue;
      for (const std::size_t target : it->second) {
        if (reach[target].reachable || index.defs[target].cold) continue;
        reach[target].reachable = true;
        reach[target].path = base + " -> " + index.defs[target].qualified;
        queue.push_back(target);
      }
    }
  }
  return reach;
}

}  // namespace dyndisp::lint
