#include "lint/selfcheck.h"

#include <string>
#include <vector>

#include "lint/driver.h"
#include "lint/registry.h"

namespace dyndisp::lint {

namespace {

struct Planted {
  const char* rule;
  const char* path;  ///< Fake path (some rules are path-sensitive).
  const char* source;
};

// One planted violation per rule. Paths are fake but shaped like the real
// tree so path-sensitive rules (bench/ allowlist) see production inputs.
const Planted kViolations[] = {
    {"determinism-random", "src/fake/random.cpp",
     "#include <cstdlib>\n"
     "int draw() { return std::rand(); }\n"},
    {"determinism-random", "src/fake/device.cpp",
     "#include <random>\n"
     "unsigned seed() { std::random_device rd; return rd(); }\n"},
    {"determinism-wallclock", "src/fake/clock.cpp",
     "#include <chrono>\n"
     "double stamp() {\n"
     "  return std::chrono::system_clock::now().time_since_epoch().count();\n"
     "}\n"},
    {"determinism-wallclock", "src/fake/ctime.cpp",
     "#include <ctime>\n"
     "long stamp() { return time(nullptr); }\n"},
    {"determinism-unordered-iter", "src/fake/iter.cpp",
     "#include <string>\n#include <unordered_map>\n"
     "int sum(const std::unordered_map<std::string, int>& m) {\n"
     "  int total = 0;\n"
     "  for (const auto& [k, v] : m) total += v;\n"
     "  return total;\n"
     "}\n"},
    {"metering-serialize-fields", "src/fake/robot.h",
     "#include \"util/bits.h\"\n"
     "class FakeRobot {\n"
     " public:\n"
     "  void serialize(dyndisp::BitWriter& out) const {\n"
     "    out.write(id_, 8);\n"
     "  }\n"
     " private:\n"
     "  unsigned id_ = 0;\n"
     "  unsigned hoarded_ = 0;\n"  // carried but never metered
     "};\n"},
    {"suppression-contract", "src/fake/bare.cpp",
     "#include <cstdlib>\n"
     "// NOLINT-dyndisp(determinism-random)\n"
     "int draw() { return std::rand(); }\n"},
    {"hotpath-alloc", "src/fake/hot_alloc.cpp",
     "#include <memory>\n"
     "#include \"util/contract.h\"\n"
     "int helper() { auto boxed = std::make_unique<int>(3); return *boxed; }\n"
     "DYNDISP_HOT int round_tick() { return helper(); }\n"},
    {"hotpath-blocking", "src/fake/hot_block.cpp",
     "#include <mutex>\n"
     "#include \"util/contract.h\"\n"
     "int guarded(std::mutex& mu) {\n"
     "  std::lock_guard<std::mutex> lock(mu);\n"
     "  return 1;\n"
     "}\n"
     "DYNDISP_HOT int round_tick(std::mutex& mu) { return guarded(mu); }\n"},
    {"digest-exclusion", "src/fake/stats_digest.cpp",
     "#include <cstdint>\n"
     "#include \"util/contract.h\"\n"
     "struct DYNDISP_STATS FakeStats { std::uint64_t reuses = 0; };\n"
     "struct FakeResult { std::uint64_t rounds = 0; FakeStats stats; };\n"
     "std::uint64_t digest_run(const FakeResult& r) {\n"
     "  return r.rounds ^ r.stats.reuses;\n"
     "}\n"},
};

// Clean snippets: production-shaped code that must stay silent.
const Planted kClean[] = {
    {"determinism-random", "src/fake/rng_ok.cpp",
     "#include \"util/rng.h\"\n"
     "int draw(dyndisp::Rng& rng) { return static_cast<int>(rng.below(6)); }\n"},
    {"determinism-wallclock", "bench/fake_timer.cpp",
     "#include <chrono>\n"
     "double ms() {\n"
     "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
     "}\n"},
    {"determinism-unordered-iter", "src/fake/member_ok.cpp",
     "#include <string>\n#include <unordered_set>\n"
     "bool seen(const std::unordered_set<std::string>& done,\n"
     "          const std::string& id) {\n"
     "  return done.count(id) != 0;\n"  // membership only: order-free
     "}\n"},
    {"metering-serialize-fields", "src/fake/robot_ok.h",
     "#include \"util/bits.h\"\n"
     "class FakeRobot {\n"
     " public:\n"
     "  void serialize(dyndisp::BitWriter& out) const {\n"
     "    out.write(id_, 8);\n"
     "  }\n"
     " private:\n"
     "  unsigned id_ = 0;\n"
     "  unsigned k_ = 0;  // NOLINT-dyndisp(metering-serialize-fields): "
     "model parameter, not between-round state\n"
     "};\n"},
    // A DYNDISP_COLD boundary makes the allocating slow path invisible to
    // the transitive closure: the reviewed cold annotation IS the fix.
    {"hotpath-alloc", "src/fake/hot_alloc_ok.cpp",
     "#include <memory>\n"
     "#include \"util/contract.h\"\n"
     "DYNDISP_COLD int rebuild() {\n"
     "  auto fresh = std::make_unique<int>(3);\n"
     "  return *fresh;\n"
     "}\n"
     "DYNDISP_HOT int round_tick(bool miss) { return miss ? rebuild() : 0; }\n"},
    {"hotpath-blocking", "src/fake/hot_block_ok.cpp",
     "#include <cstdio>\n"
     "#include \"util/contract.h\"\n"
     "DYNDISP_COLD void report() { std::printf(\"cold path\\n\"); }\n"
     "DYNDISP_HOT int round_tick(bool fail) {\n"
     "  if (fail) report();\n"
     "  return 0;\n"
     "}\n"},
    // Digest reads only untagged result fields; the tagged struct sits in
    // the same record but never feeds the digest.
    {"digest-exclusion", "src/fake/stats_digest_ok.cpp",
     "#include <cstdint>\n"
     "#include \"util/contract.h\"\n"
     "struct DYNDISP_STATS FakeStats { std::uint64_t reuses = 0; };\n"
     "struct FakeResult { std::uint64_t rounds = 0; FakeStats stats; };\n"
     "std::uint64_t digest_run(const FakeResult& r) {\n"
     "  return r.rounds * 1099511628211ull;\n"
     "}\n"},
};

// The two sides of the suppression contract, exercised on a real rule.
const char* kSuppressedWithReason =
    "#include <cstdlib>\n"
    "// NOLINTNEXTLINE-dyndisp(determinism-random): fixture proving "
    "justified suppressions silence the finding\n"
    "int draw() { return std::rand(); }\n";
const char* kSuppressedWithoutReason =
    "#include <cstdlib>\n"
    "int draw() { return std::rand(); }  // NOLINT-dyndisp(determinism-random)\n";

bool has_rule(const LintReport& report, const std::string& rule) {
  for (const Diagnostic& d : report.diagnostics)
    if (d.rule == rule) return true;
  return false;
}

LintReport lint_snippet(const char* path, const char* source) {
  const std::vector<SourceFile> files = {
      SourceFile::from_string(path, source)};
  return lint_files(files, {});
}

}  // namespace

SelfCheckResult run_self_check() {
  SelfCheckResult result;
  auto fail = [&](const std::string& what) {
    result.ok = false;
    result.detail += "FAIL: " + what + "\n";
  };

  for (const Planted& planted : kViolations) {
    const LintReport report = lint_snippet(planted.path, planted.source);
    if (!has_rule(report, planted.rule))
      fail(std::string(planted.rule) + " missed its planted violation in " +
           planted.path);
    else
      result.detail += std::string("ok: ") + planted.rule +
                       " caught planted violation\n";
  }

  for (const Planted& clean : kClean) {
    const LintReport report = lint_snippet(clean.path, clean.source);
    if (has_rule(report, clean.rule))
      fail(std::string(clean.rule) + " false-positived on clean snippet " +
           clean.path);
    else
      result.detail += std::string("ok: ") + clean.rule +
                       " silent on clean snippet\n";
  }

  {
    const LintReport report =
        lint_snippet("src/fake/justified.cpp", kSuppressedWithReason);
    if (has_rule(report, "determinism-random") || report.suppressed == 0)
      fail("a justified suppression did not silence the finding");
    else
      result.detail += "ok: justified suppression silences the finding\n";
  }
  {
    const LintReport report =
        lint_snippet("src/fake/bare.cpp", kSuppressedWithoutReason);
    if (!has_rule(report, "determinism-random") ||
        !has_rule(report, "suppression-contract"))
      fail("a bare suppression must both fail to suppress and be reported");
    else
      result.detail +=
          "ok: bare suppression suppresses nothing and is reported\n";
  }

  // Every registered rule must have at least one planted violation above:
  // a rule nobody can prove fires is a rule CI cannot trust.
  for (const std::string& name : LintRegistry::instance().names()) {
    bool covered = name == "hygiene-include-cycle";  // needs 2 files; below
    for (const Planted& planted : kViolations)
      if (name == planted.rule) covered = true;
    if (!covered) fail("rule '" + name + "' has no planted self-test");
  }

  // Include cycle needs two files, so it gets its own stanza.
  {
    const std::vector<SourceFile> files = {
        SourceFile::from_string("src/fake/a.h", "#include \"fake/b.h\"\n"),
        SourceFile::from_string("src/fake/b.h", "#include \"fake/a.h\"\n"),
    };
    const LintReport report = lint_files(files, {});
    if (!has_rule(report, "hygiene-include-cycle"))
      fail("hygiene-include-cycle missed a two-file cycle");
    else
      result.detail += "ok: hygiene-include-cycle caught planted cycle\n";
  }

  return result;
}

}  // namespace dyndisp::lint
