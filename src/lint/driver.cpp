#include "lint/driver.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <stdexcept>
#include <tuple>

#include "lint/registry.h"

namespace dyndisp::lint {

namespace {

namespace fs = std::filesystem;

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

void walk(const fs::path& dir, std::vector<std::string>& out) {
  // Deterministic traversal: sort each directory's entries by name.
  std::vector<fs::path> entries;
  for (const fs::directory_entry& e : fs::directory_iterator(dir))
    entries.push_back(e.path());
  std::sort(entries.begin(), entries.end());
  for (const fs::path& p : entries) {
    if (fs::is_directory(p)) {
      const std::string leaf = p.filename().string();
      // Build trees, VCS internals, and the planted lint fixtures are
      // never part of a recursive scan (fixtures are linted only when
      // passed explicitly -- they exist to FAIL).
      if (leaf == "build" || leaf.rfind("build-", 0) == 0 ||
          leaf == ".git" || leaf == "lint_fixtures")
        continue;
      walk(p, out);
    } else if (lintable_extension(p)) {
      out.push_back(p.generic_string());
    }
  }
}

}  // namespace

std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    if (!fs::exists(path))
      throw std::runtime_error("lint: no such path: " + path);
    if (fs::is_directory(path)) {
      walk(path, files);
    } else {
      files.push_back(fs::path(path).generic_string());
    }
  }
  // Stable order + dedupe (a file may be reachable through two roots).
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

LintReport lint_files(const std::vector<SourceFile>& files,
                      const std::vector<std::string>& rule_names) {
  std::vector<std::unique_ptr<Rule>> rules;
  if (rule_names.empty()) {
    rules = LintRegistry::instance().make_all();
  } else {
    for (const std::string& name : rule_names)
      rules.push_back(LintRegistry::instance().make(name));
  }

  std::vector<Diagnostic> raw;
  for (const std::unique_ptr<Rule>& rule : rules) {
    for (const SourceFile& file : files) rule->check(file, raw);
    rule->check_tree(files, raw);
  }

  // Apply suppressions. suppression-contract findings are never
  // suppressible by the directive they complain about (a malformed
  // directive is not well-formed, so it cannot match anyway).
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& file : files) by_path[file.path()] = &file;

  LintReport report;
  report.files_scanned = files.size();
  for (Diagnostic& diag : raw) {
    const auto it = by_path.find(diag.file);
    if (it != by_path.end() && it->second->suppressed(diag.rule, diag.line)) {
      ++report.suppressed;
      continue;
    }
    report.diagnostics.push_back(std::move(diag));
  }
  std::sort(report.diagnostics.begin(), report.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  report.diagnostics.erase(
      std::unique(report.diagnostics.begin(), report.diagnostics.end()),
      report.diagnostics.end());
  return report;
}

LintReport lint_paths(const LintOptions& options) {
  std::vector<SourceFile> files;
  for (const std::string& path : collect_sources(options.paths))
    files.push_back(SourceFile::load(path));
  return lint_files(files, options.rules);
}

void print_report(const LintReport& report, std::ostream& out) {
  for (const Diagnostic& diag : report.diagnostics) {
    out << diag.file << ":" << diag.line << ": [" << diag.rule << "] "
        << diag.message << "\n";
  }
  out << "dyndisp_lint: " << report.files_scanned << " file(s), "
      << report.diagnostics.size() << " finding(s), " << report.suppressed
      << " suppressed with justification\n";
}

}  // namespace dyndisp::lint
