// A small, work-stealing-free thread pool for the engine's per-robot fan-out.
//
// The simulator's parallelism is embarrassingly regular: once per round, the
// same O(1)-to-O(k) body runs for every robot index (view assembly, then
// step()). A static contiguous partition of [0, count) -- one chunk per
// thread, no stealing, no dynamic scheduling -- keeps the execution order
// within each chunk sequential and the set of indices per thread a pure
// function of (count, thread_count). Combined with bodies that only write
// state owned by their index, results are bitwise identical at any thread
// count, which is the contract EngineOptions::threads promises.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dyndisp {

class ThreadPool {
 public:
  /// Spawns `threads - 1` persistent workers (the calling thread is the
  /// remaining lane). `threads` is clamped to at least 1.
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Total lanes, including the caller's.
  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Runs body(i) for every i in [0, count) and blocks until all are done.
  /// Lane c executes the contiguous chunk [c*count/T, (c+1)*count/T) in
  /// ascending order; the caller runs chunk 0 itself. body must not touch
  /// state owned by another index unless that access is read-only. If bodies
  /// throw, the exception of the smallest faulting index is rethrown on the
  /// calling thread (matching what a sequential loop would have surfaced).
  void for_each(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  struct Chunk {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::exception_ptr error;
  };

  void worker_loop(std::size_t lane);
  void run_chunk(Chunk& chunk);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::vector<Chunk> chunks_;        // one per lane; lane 0 is the caller
  std::size_t generation_ = 0;       // bumped per for_each dispatch
  std::size_t pending_ = 0;          // worker chunks not yet finished
  bool shutdown_ = false;
};

/// Below this many items, parallel_for runs the plain sequential loop even
/// when a pool is available: waking and joining the worker lanes costs more
/// than the fan-out saves on the engine's O(1)-per-index bodies (measured:
/// k=64 rounds ran ~20% SLOWER at 8 threads than at 1 before this cutoff).
/// The threshold is a compile-time constant -- a pure function of count, not
/// of load or timing -- so which path runs is deterministic, and both paths
/// produce bitwise-identical results by the static-partition argument above.
inline constexpr std::size_t kParallelForSerialCutoff = 192;

/// Convenience: fans body over [0, count) on `pool`, or runs the plain
/// sequential loop when pool is null, the pool has one lane, or count is
/// below kParallelForSerialCutoff (the small-problem regression guard).
/// ThreadPool::for_each itself never applies the cutoff -- callers that
/// always want the fan-out call it directly.
///
/// A template, not a std::function parameter, on purpose: the engine's
/// round-loop bodies capture several references, which exceeds the small-
/// buffer size of libstdc++'s std::function -- a std::function signature
/// would heap-allocate a temporary on EVERY call, serial path included,
/// breaking the zero-allocation steady-state contract the hot-path lint
/// rules and util/memprobe.h pin. The serial path below calls the body
/// directly (no wrapper, no allocation); only the multi-lane dispatch
/// wraps, and by reference_wrapper (one pointer, inside any SBO).
template <typename Body>
void parallel_for(ThreadPool* pool, std::size_t count, Body&& body) {
  if (pool == nullptr || pool->thread_count() == 1 ||
      count < kParallelForSerialCutoff) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  pool->for_each(count, std::function<void(std::size_t)>(std::ref(body)));
}

}  // namespace dyndisp
