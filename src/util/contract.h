// Hot-path contract annotations, read by the dyndisp_lint call-graph rules
// (src/lint/rules_hotpath.cpp) and invisible to the compiler -- every macro
// expands to nothing. They encode the phase-3 scaling invariants the
// massive-scale engine core rests on (see docs/STATIC_ANALYSIS.md):
//
//   * DYNDISP_HOT marks a function as a round-loop root: the function and
//     everything reachable from it through the call graph must stay free of
//     heap allocation (rule `hotpath-alloc`) and of blocking or I/O calls
//     (rule `hotpath-blocking`) in steady state. Place it on the definition,
//     before the return type:  DYNDISP_HOT void fill_view(...) { ... }
//
//   * DYNDISP_COLD marks a function as an acknowledged cold boundary:
//     transitive hot-path analysis stops there. Use it for slow paths a hot
//     root legitimately dispatches to on cache misses, first rounds, or
//     rebuilds -- the annotation is the reviewed statement that the call is
//     off the steady-state path, so hazards beyond it are not hot findings.
//
//   * DYNDISP_STATS tags a struct as observability-only: its fields exist
//     for reporting and must never feed a result digest or serialized
//     record (rule `digest-exclusion` -- the dual of the Lemma-8
//     metering-serialize-fields rule). Place it between the struct keyword
//     and the name:  struct DYNDISP_STATS RoundLoopStats { ... };
//
// The static rules have a runtime twin: util/memprobe.h counts real heap
// allocations so tests can pin the annotated paths to zero allocations per
// warmed-up round (EngineOptions::alloc_probe). Static rule and dynamic
// probe cross-validate -- one catches hazards the other cannot see.
#pragma once

#define DYNDISP_HOT
#define DYNDISP_COLD
#define DYNDISP_STATS
