// Fundamental scalar types shared across the dyndisp library.
//
// The paper's model (Section II) uses:
//   * anonymous nodes            -> NodeId exists only inside the simulator;
//                                   algorithms never see it directly,
//   * port numbers in [1, deg(v)]-> Port, 1-based on the wire, with
//                                   kInvalidPort denoting "no port",
//   * robot IDs in [1, k]        -> RobotId, 1-based,
//   * synchronous rounds         -> Round.
#pragma once

#include <cstdint>
#include <limits>

namespace dyndisp {

/// Simulator-internal node index in [0, n). Algorithms must not consume raw
/// NodeIds except through the sensing interfaces (nodes are anonymous).
using NodeId = std::uint32_t;

/// Robot identifier in [1, k] as in the paper; 0 is reserved as "none".
using RobotId = std::uint32_t;

/// Port label in [1, deg(v)]; 0 is reserved as "none".
using Port = std::uint32_t;

/// Round counter r >= 0.
using Round = std::uint64_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr RobotId kNoRobot = 0;
inline constexpr Port kInvalidPort = 0;

}  // namespace dyndisp
