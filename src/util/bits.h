// Bit-level serialization used to meter the persistent memory of robots.
//
// The paper counts memory as "the number of bits stored at each robot
// *between* rounds" (Section II). To audit Lemma 8 (Theta(log k) bits) the
// simulator requires every robot algorithm to serialize its persistent state
// into a BitWriter at the end of each round; the produced bit count is the
// metered memory. Temporary within-round state is, per the model, free.
#pragma once

#include <cstdint>
#include <vector>

namespace dyndisp {

/// Number of bits needed to represent values in [0, n); ceil(log2(n)), >= 1.
[[nodiscard]] unsigned bit_width_for(std::uint64_t n);

/// Append-only bit sink.
class BitWriter {
 public:
  /// Writes the low `bits` bits of `value`, most-significant first.
  void write(std::uint64_t value, unsigned bits);

  /// Writes a single flag bit.
  void write_bool(bool b) { write(b ? 1 : 0, 1); }

  /// Resets to an empty sink, retaining the byte buffer's capacity so one
  /// writer can serialize k robots per round without k allocations.
  void clear() {
    bytes_.clear();
    bit_count_ = 0;
  }

  /// Total bits written so far.
  [[nodiscard]] std::size_t bit_count() const { return bit_count_; }

  /// Packed payload (last byte zero-padded).
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
};

/// Sequential reader over a BitWriter payload.
class BitReader {
 public:
  explicit BitReader(const BitWriter& w)
      : bytes_(w.bytes()), bit_count_(w.bit_count()) {}

  /// Reads a raw byte payload (e.g., an exchanged peer state); all
  /// bytes.size()*8 bits are addressable.
  explicit BitReader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes), bit_count_(bytes.size() * 8) {}

  /// Reads `bits` bits written most-significant first.
  [[nodiscard]] std::uint64_t read(unsigned bits);

  [[nodiscard]] bool read_bool() { return read(1) != 0; }

  /// Bits remaining.
  [[nodiscard]] std::size_t remaining() const { return bit_count_ - cursor_; }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t bit_count_;
  std::size_t cursor_ = 0;
};

}  // namespace dyndisp
