// Minimal command-line flag parser for the tools: supports --key=value,
// --key value, and bare --switch forms, with typed accessors and an
// unknown-flag check so typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace dyndisp {

class CliArgs {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input
  /// (non-flag positional arguments are rejected).
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  /// Typed getters with defaults. Throw std::invalid_argument when the
  /// present value does not parse.
  std::string get(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  std::uint64_t get_uint(const std::string& key, std::uint64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Keys that were provided but never read; used to reject typos after
  /// all gets are done.
  std::vector<std::string> unused() const;

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> used_;
};

}  // namespace dyndisp
