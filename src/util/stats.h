// Summary statistics over experiment samples (rounds, moves, bits, ...).
#pragma once

#include <cstddef>
#include <vector>

namespace dyndisp {

/// Online accumulator plus exact percentiles (keeps all samples).
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double min() const;
  double max() const;
  double mean() const;
  /// Sample standard deviation (0 for fewer than 2 samples).
  double stddev() const;
  /// Exact p-th percentile by nearest-rank, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double sum() const { return sum_; }

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;

  void ensure_sorted() const;
};

/// Least-squares slope of y against x; used to check linear O(k) scaling.
double linear_slope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace dyndisp
