// Minimal JSON support: a streaming writer so benches can emit
// machine-readable perf trajectories (BENCH_*.json) alongside their ASCII
// tables -- the JSON sibling of util/csv.h -- and a small document reader
// (JsonValue) so campaign specs, manifests, and JSONL result stores can be
// parsed back in. The writer emits values depth-first and manages commas
// and indentation; the caller guarantees well-formed nesting (asserted in
// debug builds). The reader is a strict recursive-descent parser over the
// JSON grammar (no comments, no trailing commas) that throws
// std::invalid_argument with a line/column location on malformed input.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace dyndisp {

/// Escapes a string for embedding in a JSON document (without quotes).
[[nodiscard]] std::string json_escape(const std::string& s);

/// An immutable parsed JSON document node. Object member order is preserved
/// so iteration (and anything derived from it, e.g. campaign job expansion)
/// is deterministic and independent of hash seeds.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses a complete JSON document; trailing non-whitespace is an error.
  /// Throws std::invalid_argument with "line L col C" context on failure.
  [[nodiscard]] static JsonValue parse(const std::string& text);

  JsonValue() : type_(Type::kNull) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::invalid_argument on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  /// The number as a non-negative integer. Plain integer tokens are
  /// reparsed from their raw text, so the full uint64 range round-trips
  /// losslessly; fractions, negatives, and values a double cannot represent
  /// exactly are rejected.
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member lookup; null when absent or when this is not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

 private:
  friend class JsonParser;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

class JsonWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer. The document is
  /// complete when every begin_* has been matched by its end_*.
  explicit JsonWriter(std::ostream& out);

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object member key; must be followed by exactly one value or begin_*.
  void key(const std::string& name);

  void value(const std::string& v);
  void value(const char* v);
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(bool v);

  /// Convenience: key + value in one call.
  template <typename T>
  void member(const std::string& name, const T& v) {
    key(name);
    value(v);
  }

 private:
  enum class Scope { kObject, kArray };
  void comma_and_indent(bool is_value);
  void indent();

  std::ostream& out_;
  std::vector<Scope> stack_;
  bool first_in_scope_ = true;
  bool after_key_ = false;
};

}  // namespace dyndisp
