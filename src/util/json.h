// Minimal streaming JSON writer so benches can emit machine-readable perf
// trajectories (BENCH_*.json) alongside their ASCII tables -- the JSON
// sibling of util/csv.h. Values are written depth-first; the writer manages
// commas and indentation, the caller guarantees well-formed nesting
// (asserted in debug builds).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace dyndisp {

/// Escapes a string for embedding in a JSON document (without quotes).
std::string json_escape(const std::string& s);

class JsonWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer. The document is
  /// complete when every begin_* has been matched by its end_*.
  explicit JsonWriter(std::ostream& out);

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object member key; must be followed by exactly one value or begin_*.
  void key(const std::string& name);

  void value(const std::string& v);
  void value(const char* v);
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(bool v);

  /// Convenience: key + value in one call.
  template <typename T>
  void member(const std::string& name, const T& v) {
    key(name);
    value(v);
  }

 private:
  enum class Scope { kObject, kArray };
  void comma_and_indent(bool is_value);
  void indent();

  std::ostream& out_;
  std::vector<Scope> stack_;
  bool first_in_scope_ = true;
  bool after_key_ = false;
};

}  // namespace dyndisp
