// Monotonic nanosecond clock for OBSERVABILITY-ONLY phase timing.
//
// The engine's round loop attributes wall time to per-phase buckets
// (RoundLoopStats::phase_*_ms) so the roundtime bench can say where a
// mega-scale round actually goes. Timing never feeds a decision: every
// value lands in DYNDISP_STATS fields, which the digest-exclusion lint
// rule keeps out of run digests and campaign records, so two runs with
// different timings still compare bitwise equal.
//
// This header is the ONE sanctioned wall-clock read outside bench/; all
// phase instrumentation funnels through it so the determinism-wallclock
// audit stays a single suppression.
#pragma once

#include <chrono>
#include <cstdint>

namespace dyndisp {

/// Monotonic timestamp in nanoseconds since an arbitrary epoch. Subtract
/// two reads for a duration; never persist or compare across processes.
inline std::uint64_t phase_clock_ns() {
  // NOLINTNEXTLINE-dyndisp(determinism-wallclock): observability-only
  // phase buckets; values land in DYNDISP_STATS fields that digests and
  // campaign records exclude, so timing can never alter a compared output.
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t).count());
}

/// Nanoseconds-to-milliseconds for bucket accumulation.
inline double phase_ns_to_ms(std::uint64_t ns) {
  return static_cast<double>(ns) / 1e6;
}

}  // namespace dyndisp
