// ASCII table rendering for bench output that mirrors the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace dyndisp {

/// Column-aligned ASCII table with a header row and optional title.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void set_title(std::string title) { title_ = std::move(title); }

  /// Adds one row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> row);

  /// Renders with box-drawing separators.
  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals.
std::string fmt_double(double v, int digits = 2);

}  // namespace dyndisp
