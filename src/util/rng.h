// Deterministic, splittable pseudo-random number generator.
//
// All stochastic pieces of the library (random graph adversaries, placements,
// crash schedules) consume this generator so that every experiment is
// reproducible from a single seed. The engine is xoshiro256** which is small,
// fast, and has no global state.
#pragma once

#include <cstdint>
#include <vector>

namespace dyndisp {

class Rng {
 public:
  /// Seeds the generator via splitmix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0xD15CE55E5EEDULL);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element; `v` must be non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(below(v.size()))];
  }

  /// Derives an independent child generator (for per-component streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// Stateless counter-based generator: draw `i` of the stream keyed by
/// (seed, stream) is a pure function of (seed, stream, i) -- a splitmix64
/// finalizer over key + i*golden -- so disjoint index ranges can be
/// evaluated concurrently, or in any order, with bitwise-identical results.
/// This is what lets the graph builders run edge generation and port
/// assignment through parallel_for while keeping the emitted graph
/// byte-identical at any thread count (the adversary conformance suite
/// pins exactly that property).
class CounterRng {
 public:
  CounterRng(std::uint64_t seed, std::uint64_t stream);

  /// Raw 64-bit draw at index `i`.
  std::uint64_t at(std::uint64_t i) const;

  /// Integer in [0, bound) from draw `i`, via the fixed-point multiply map
  /// (at(i) * bound) >> 64. Unlike Rng::below's rejection loop this
  /// consumes exactly one indexed draw -- a counter stream cannot retry
  /// without losing its index structure -- at the price of a bias below
  /// bound/2^64, negligible for every bound this library draws.
  std::uint64_t below(std::uint64_t bound, std::uint64_t i) const;

  /// Derives the stream for sub-entity `sub` (per-node port streams and the
  /// like); forks of distinct subs are independent of each other and of the
  /// parent's own draws.
  CounterRng fork(std::uint64_t sub) const;

 private:
  explicit CounterRng(std::uint64_t key) : key_(key) {}
  std::uint64_t key_;
};

}  // namespace dyndisp
