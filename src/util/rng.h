// Deterministic, splittable pseudo-random number generator.
//
// All stochastic pieces of the library (random graph adversaries, placements,
// crash schedules) consume this generator so that every experiment is
// reproducible from a single seed. The engine is xoshiro256** which is small,
// fast, and has no global state.
#pragma once

#include <cstdint>
#include <vector>

namespace dyndisp {

class Rng {
 public:
  /// Seeds the generator via splitmix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0xD15CE55E5EEDULL);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element; `v` must be non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(below(v.size()))];
  }

  /// Derives an independent child generator (for per-component streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace dyndisp
