#include "util/csv.h"

namespace dyndisp {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path) {
  if (out_) write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) { write_row(row); }

void CsvWriter::write_row(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(row[i]);
  }
  out_ << '\n';
}

}  // namespace dyndisp
