// Minimal CSV writer so benches can emit machine-readable series alongside
// the human-readable ASCII tables.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace dyndisp {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// True when the file opened successfully.
  bool ok() const { return static_cast<bool>(out_); }

  void add_row(const std::vector<std::string>& row);

 private:
  std::ofstream out_;

  void write_row(const std::vector<std::string>& row);
};

/// Escapes one CSV field (quotes fields containing separators/quotes).
std::string csv_escape(const std::string& field);

}  // namespace dyndisp
