#include "util/rng.h"

#include <cassert>

namespace dyndisp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : below(span));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xA5A5A5A5DEADBEEFULL); }

namespace {

/// splitmix64's stateless finalizer (the mixing rounds without the stream
/// increment).
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

CounterRng::CounterRng(std::uint64_t seed, std::uint64_t stream)
    : key_(mix64(mix64(seed + 0x9E3779B97F4A7C15ULL) ^
                 (stream * 0xBF58476D1CE4E5B9ULL + 0x94D049BB133111EBULL))) {}

std::uint64_t CounterRng::at(std::uint64_t i) const {
  return mix64(key_ + i * 0x9E3779B97F4A7C15ULL);
}

std::uint64_t CounterRng::below(std::uint64_t bound, std::uint64_t i) const {
  assert(bound > 0);
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(at(i)) * bound) >> 64);
}

CounterRng CounterRng::fork(std::uint64_t sub) const {
  return CounterRng(
      mix64(key_ ^ (sub * 0xD1B54A32D192ED03ULL + 0x9E3779B97F4A7C15ULL)));
}

}  // namespace dyndisp
