// Heap-allocation probe: a process-global allocation counter plus the
// operator-new/delete replacement that feeds it, promoted out of
// bench_roundtime.cpp so tests and the engine's alloc_probe option share
// one implementation. This is the runtime twin of the static hot-path
// rules in src/lint/rules_hotpath.cpp (see util/contract.h): the lint rule
// proves no allocating call is REACHABLE from a hot root, the probe proves
// no allocation actually HAPPENS in a warmed-up round.
//
// The counter is always present (one relaxed atomic, zero when no hook
// feeds it); the operator-new replacement is opt-in per binary. A TU that
// wants real counts places DYNDISP_MEMPROBE_DEFINE_GLOBAL_NEW at namespace
// scope in exactly one TU of the final binary -- replaceable operator new
// is a program-wide property, which is why the hook cannot live in the
// library (every test and tool would silently pay for it).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace dyndisp::memprobe {

/// Allocations observed so far. Stays 0 in binaries that do not install
/// the operator-new hook. Constant-initialized, safe before main().
inline std::atomic<std::uint64_t> g_allocations{0};

/// Called by the hooked operator new on every allocation.
inline void count_allocation() {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
}

/// Total allocations since process start (or 0 without the hook).
[[nodiscard]] inline std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

/// Scoped window: delta() is the number of heap allocations since the
/// guard's construction. Meaningful only in binaries that install
/// DYNDISP_MEMPROBE_DEFINE_GLOBAL_NEW; elsewhere delta() is always 0.
class AllocGuard {
 public:
  AllocGuard() : start_(allocation_count()) {}

  /// Allocations observed since construction.
  [[nodiscard]] std::uint64_t delta() const {
    return allocation_count() - start_;
  }

 private:
  std::uint64_t start_;
};

}  // namespace dyndisp::memprobe

// The full replaceable allocation-function set, counting through
// memprobe::count_allocation. GCC's inliner pairs the replacement with the
// default allocator when expanding make_unique and then flags the
// std::free as mismatched; the replacement is internally consistent
// (new -> malloc, delete -> free), so the diagnostic is noise in any TU
// that instantiates this macro.
#if defined(__GNUC__) && !defined(__clang__)
#define DYNDISP_MEMPROBE_SUPPRESS_MISMATCH \
  _Pragma("GCC diagnostic ignored \"-Wmismatched-new-delete\"")
#else
#define DYNDISP_MEMPROBE_SUPPRESS_MISMATCH
#endif

#define DYNDISP_MEMPROBE_DEFINE_GLOBAL_NEW                                    \
  DYNDISP_MEMPROBE_SUPPRESS_MISMATCH                                          \
  void* operator new(std::size_t size) {                                      \
    ::dyndisp::memprobe::count_allocation();                                  \
    if (void* p = std::malloc(size ? size : 1)) return p;                     \
    throw std::bad_alloc();                                                   \
  }                                                                           \
  void* operator new[](std::size_t size) { return ::operator new(size); }     \
  void* operator new(std::size_t size, std::align_val_t align) {              \
    ::dyndisp::memprobe::count_allocation();                                  \
    /* aligned_alloc requires size to be a multiple of the alignment. */      \
    const std::size_t a = static_cast<std::size_t>(align);                    \
    const std::size_t rounded = ((size ? size : 1) + a - 1) / a * a;          \
    if (void* p = std::aligned_alloc(a, rounded)) return p;                   \
    throw std::bad_alloc();                                                   \
  }                                                                           \
  void* operator new[](std::size_t size, std::align_val_t align) {            \
    return ::operator new(size, align);                                       \
  }                                                                           \
  void operator delete(void* p) noexcept { std::free(p); }                    \
  void operator delete[](void* p) noexcept { std::free(p); }                  \
  void operator delete(void* p, std::size_t) noexcept { std::free(p); }       \
  void operator delete[](void* p, std::size_t) noexcept { std::free(p); }     \
  void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }  \
  void operator delete[](void* p, std::align_val_t) noexcept {                \
    std::free(p);                                                             \
  }                                                                           \
  void operator delete(void* p, std::size_t, std::align_val_t) noexcept {     \
    std::free(p);                                                             \
  }                                                                           \
  void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {   \
    std::free(p);                                                             \
  }
