#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dyndisp {

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
  sum_ += x;
  sum_sq_ += x * x;
}

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::min() const {
  assert(!empty());
  ensure_sorted();
  return samples_.front();
}

double Summary::max() const {
  assert(!empty());
  ensure_sorted();
  return samples_.back();
}

double Summary::mean() const {
  assert(!empty());
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  const std::size_t n = samples_.size();
  if (n < 2) return 0.0;
  const double m = mean();
  const double var =
      (sum_sq_ - static_cast<double>(n) * m * m) / static_cast<double>(n - 1);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double Summary::percentile(double p) const {
  assert(!empty());
  ensure_sorted();
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size());
  std::size_t idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx == 0) idx = 1;
  if (idx > samples_.size()) idx = samples_.size();
  return samples_[idx - 1];
}

double linear_slope(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  assert(x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  assert(denom != 0.0);
  return (n * sxy - sx * sy) / denom;
}

}  // namespace dyndisp
