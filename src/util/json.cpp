#include "util/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace dyndisp {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& out) : out_(out) {}

void JsonWriter::indent() {
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void JsonWriter::comma_and_indent(bool is_value) {
  if (after_key_) {
    // The key already positioned us; the value follows inline.
    after_key_ = false;
    return;
  }
  assert((stack_.empty() || stack_.back() == Scope::kArray || !is_value) &&
         "object members need a key()");
  (void)is_value;
  if (!first_in_scope_) out_ << ',';
  if (!stack_.empty()) indent();
  first_in_scope_ = false;
}

void JsonWriter::begin_object() {
  comma_and_indent(true);
  out_ << '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_ = true;
}

void JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back() == Scope::kObject);
  stack_.pop_back();
  if (!first_in_scope_) indent();
  out_ << '}';
  first_in_scope_ = false;
}

void JsonWriter::begin_array() {
  comma_and_indent(true);
  out_ << '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_ = true;
}

void JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back() == Scope::kArray);
  stack_.pop_back();
  if (!first_in_scope_) indent();
  out_ << ']';
  first_in_scope_ = false;
}

void JsonWriter::key(const std::string& name) {
  assert(!stack_.empty() && stack_.back() == Scope::kObject);
  assert(!after_key_);
  comma_and_indent(false);
  out_ << '"' << json_escape(name) << "\": ";
  after_key_ = true;
}

void JsonWriter::value(const std::string& v) {
  comma_and_indent(true);
  out_ << '"' << json_escape(v) << '"';
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void JsonWriter::value(double v) {
  comma_and_indent(true);
  if (!std::isfinite(v)) {
    out_ << "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out_ << buf;
}

void JsonWriter::value(std::int64_t v) {
  comma_and_indent(true);
  out_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  comma_and_indent(true);
  out_ << v;
}

void JsonWriter::value(bool v) {
  comma_and_indent(true);
  out_ << (v ? "true" : "false");
}

}  // namespace dyndisp
