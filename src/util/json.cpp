#include "util/json.h"

#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace dyndisp {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reader

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw std::invalid_argument("JSON parse error at line " +
                                std::to_string(line) + " col " +
                                std::to_string(col) + ": " + what);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (eof() || peek() != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value() {
    if (eof()) fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        if (consume_literal("true")) {
          JsonValue v;
          v.type_ = JsonValue::Type::kBool;
          v.bool_ = true;
          return v;
        }
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) {
          JsonValue v;
          v.type_ = JsonValue::Type::kBool;
          v.bool_ = false;
          return v;
        }
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue{};
        fail("invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("unexpected character");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      v.members_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      v.items_.push_back(parse_value());
      skip_ws();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          const unsigned cp = parse_hex4();
          // Encode the BMP code point as UTF-8 (surrogate pairs are passed
          // through as two 3-byte sequences; good enough for our specs).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("unterminated \\u escape");
      const char h = text_[pos_++];
      cp <<= 4;
      if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
      else fail("invalid \\u escape digit");
    }
    return cp;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || peek() < '0' || peek() > '9') fail("invalid number");
    while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') fail("invalid number fraction");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') fail("invalid number exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("unparsable number");
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = parsed;
    v.string_ = token;  // raw token, so as_uint() can reparse losslessly
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

namespace {

[[noreturn]] void type_error(const char* wanted) {
  throw std::invalid_argument(std::string("JSON value is not ") + wanted);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error("a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) type_error("a number");
  return number_;
}

std::uint64_t JsonValue::as_uint() const {
  if (type_ != Type::kNumber) type_error("a number");
  // Plain integer tokens reparse losslessly from the raw text; routing them
  // through the double would silently round values above 2^53 (e.g. large
  // seeds), so the record id would no longer match the job that produced it.
  if (!string_.empty() &&
      string_.find_first_not_of("0123456789") == std::string::npos) {
    errno = 0;
    const unsigned long long parsed = std::strtoull(string_.c_str(), nullptr, 10);
    if (errno == ERANGE)
      throw std::invalid_argument("JSON integer overflows uint64");
    return parsed;
  }
  // Fraction/exponent/sign forms: accept only values a double represents
  // exactly as an integer.
  const double v = number_;
  if (v < 0 || v != std::floor(v))
    throw std::invalid_argument("JSON number is not a non-negative integer");
  if (v >= 9007199254740992.0)  // 2^53: doubles no longer cover every integer
    throw std::invalid_argument(
        "JSON number too large to represent exactly as an integer");
  return static_cast<std::uint64_t>(v);
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error("a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::kArray) type_error("an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::kObject) type_error("an object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : members_)
    if (name == key) return &value;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Writer

JsonWriter::JsonWriter(std::ostream& out) : out_(out) {}

void JsonWriter::indent() {
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void JsonWriter::comma_and_indent(bool is_value) {
  if (after_key_) {
    // The key already positioned us; the value follows inline.
    after_key_ = false;
    return;
  }
  assert((stack_.empty() || stack_.back() == Scope::kArray || !is_value) &&
         "object members need a key()");
  (void)is_value;
  if (!first_in_scope_) out_ << ',';
  if (!stack_.empty()) indent();
  first_in_scope_ = false;
}

void JsonWriter::begin_object() {
  comma_and_indent(true);
  out_ << '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_ = true;
}

void JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back() == Scope::kObject);
  stack_.pop_back();
  if (!first_in_scope_) indent();
  out_ << '}';
  first_in_scope_ = false;
}

void JsonWriter::begin_array() {
  comma_and_indent(true);
  out_ << '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_ = true;
}

void JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back() == Scope::kArray);
  stack_.pop_back();
  if (!first_in_scope_) indent();
  out_ << ']';
  first_in_scope_ = false;
}

void JsonWriter::key(const std::string& name) {
  assert(!stack_.empty() && stack_.back() == Scope::kObject);
  assert(!after_key_);
  comma_and_indent(false);
  out_ << '"' << json_escape(name) << "\": ";
  after_key_ = true;
}

void JsonWriter::value(const std::string& v) {
  comma_and_indent(true);
  out_ << '"' << json_escape(v) << '"';
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void JsonWriter::value(double v) {
  comma_and_indent(true);
  if (!std::isfinite(v)) {
    out_ << "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out_ << buf;
}

void JsonWriter::value(std::int64_t v) {
  comma_and_indent(true);
  out_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  comma_and_indent(true);
  out_ << v;
}

void JsonWriter::value(bool v) {
  comma_and_indent(true);
  out_ << (v ? "true" : "false");
}

}  // namespace dyndisp
