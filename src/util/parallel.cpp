#include "util/parallel.h"

#include "util/contract.h"

namespace dyndisp {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t lanes = threads < 1 ? 1 : threads;
  chunks_.resize(lanes);
  workers_.reserve(lanes - 1);
  for (std::size_t lane = 1; lane < lanes; ++lane)
    workers_.emplace_back([this, lane] { worker_loop(lane); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_chunk(Chunk& chunk) {
  try {
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) (*body_)(i);
  } catch (...) {
    chunk.error = std::current_exception();
  }
}

void ThreadPool::worker_loop(std::size_t lane) {
  std::size_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    run_chunk(chunks_[lane]);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) work_done_.notify_one();
    }
  }
}

DYNDISP_COLD
void ThreadPool::for_each(std::size_t count,
                          const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t lanes = chunks_.size();
  if (lanes == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    for (std::size_t c = 0; c < lanes; ++c) {
      chunks_[c].begin = c * count / lanes;
      chunks_[c].end = (c + 1) * count / lanes;
      chunks_[c].error = nullptr;
    }
    pending_ = lanes - 1;
    ++generation_;
  }
  work_ready_.notify_all();
  run_chunk(chunks_[0]);
  {
    std::unique_lock<std::mutex> lock(mu_);
    work_done_.wait(lock, [&] { return pending_ == 0; });
    body_ = nullptr;
  }
  // Chunks are index-ordered, and each chunk records its first (smallest-
  // index) failure, so the first non-null error is the sequential one.
  for (Chunk& chunk : chunks_) {
    if (chunk.error) std::rethrow_exception(chunk.error);
  }
}


}  // namespace dyndisp
