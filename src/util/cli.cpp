#include "util/cli.h"

#include <cstdlib>
#include <stdexcept>

namespace dyndisp {
namespace {

bool looks_like_flag(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not itself a flag; else a switch.
    if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  if (values_.count(key)) {
    used_.insert(key);
    return true;
  }
  return false;
}

std::string CliArgs::get(const std::string& key, const std::string& def) const {
  used_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key, std::int64_t def) const {
  const std::string v = get(key, "");
  if (v.empty()) return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (end == nullptr || *end != '\0')
    throw std::invalid_argument("--" + key + " expects an integer, got " + v);
  return parsed;
}

std::uint64_t CliArgs::get_uint(const std::string& key,
                                std::uint64_t def) const {
  const std::int64_t v = get_int(key, static_cast<std::int64_t>(def));
  if (v < 0)
    throw std::invalid_argument("--" + key + " expects a non-negative value");
  return static_cast<std::uint64_t>(v);
}

double CliArgs::get_double(const std::string& key, double def) const {
  const std::string v = get(key, "");
  if (v.empty()) return def;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (end == nullptr || *end != '\0')
    throw std::invalid_argument("--" + key + " expects a number, got " + v);
  return parsed;
}

bool CliArgs::get_bool(const std::string& key, bool def) const {
  const std::string v = get(key, "");
  if (v.empty()) return def;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("--" + key + " expects a boolean, got " + v);
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_)
    if (!used_.count(key)) out.push_back(key);
  return out;
}

}  // namespace dyndisp
