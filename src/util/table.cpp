#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dyndisp {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto rule = [&](std::ostringstream& os) {
    os << '+';
    for (const auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](std::ostringstream& os, const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';
  rule(os);
  line(os, header_);
  rule(os);
  for (const auto& row : rows_) line(os, row);
  rule(os);
  return os.str();
}

std::string fmt_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

}  // namespace dyndisp
