#include "util/bits.h"

#include <cassert>

namespace dyndisp {

unsigned bit_width_for(std::uint64_t n) {
  if (n <= 2) return 1;
  unsigned w = 0;
  std::uint64_t v = n - 1;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

void BitWriter::write(std::uint64_t value, unsigned bits) {
  assert(bits <= 64);
  for (unsigned i = bits; i-- > 0;) {
    const bool bit = ((value >> i) & 1u) != 0;
    const std::size_t byte_index = bit_count_ / 8;
    if (byte_index == bytes_.size()) bytes_.push_back(0);
    if (bit) bytes_[byte_index] |= static_cast<std::uint8_t>(1u << (7 - bit_count_ % 8));
    ++bit_count_;
  }
}

std::uint64_t BitReader::read(unsigned bits) {
  assert(bits <= 64);
  assert(cursor_ + bits <= bit_count_);
  std::uint64_t value = 0;
  for (unsigned i = 0; i < bits; ++i) {
    const std::size_t byte_index = cursor_ / 8;
    const bool bit =
        (bytes_[byte_index] >> (7 - cursor_ % 8)) & 1u;
    value = (value << 1) | (bit ? 1u : 0u);
    ++cursor_;
  }
  return value;
}

}  // namespace dyndisp
