// Invariant oracles: the paper's lemmas and theorems turned into per-round
// engine hooks and post-run checks.
//
// Which oracles apply depends on the trial (an OracleProfile): graph-level
// safety (the adversary must emit a valid 1-interval connected round graph)
// holds for EVERY trial and is enforced by the engine itself as the
// "round-graph" oracle; the lemma oracles only bind for algorithms that
// claim Algorithm 4's guarantees, under the model the paper proves them in
// (synchronous, global communication). Baseline walkers are allowed to
// stall, regress, and fail to disperse -- for them only safety is checked.
//
// Oracle keys (stable; shrinker matching and artifacts use them):
//   round-graph       engine graph validation (dynamic/validator.h)
//   occupied-monotone Lemma 6 corollary, in-engine, fault-free only
//   progress          Lemma 7, in-engine (>=1 newly occupied node per round
//                     while an undispersed robot exists), fault-free only
//   memory            Lemma 8, in-engine (peak bits <= ceil(log2(k+1)))
//   dispersal         the algorithm's basic liveness claim, post-run
//   round-bound       Theorem 4 (rounds <= k), post-run, fault-free only
//   faulty-round-bound Theorem 5 (rounds <= k-f+slack), post-run, faulty
#pragma once

#include <cstddef>

#include "check/trial.h"
#include "sim/engine.h"

namespace dyndisp::check {

/// Which oracles bind for one trial.
struct OracleProfile {
  bool occupied_monotone = false;
  bool progress = false;
  bool memory = false;
  bool dispersal = false;
  bool round_bound = false;
  bool faulty_round_bound = false;
};

/// Derives the profile: lemma oracles require claims_lemmas plus a model
/// the paper proves them in (comm "default"/"global"); the fault-free
/// oracles additionally require faults == 0.
OracleProfile oracle_profile(const TrialConfig& config, bool claims_lemmas);

/// Builds the per-round engine hook for the profile's in-engine oracles
/// (occupied-monotone, progress, memory). Returns a null function when none
/// of them bind, so the engine hot path stays untouched.
InvariantChecker make_invariant_checker(const OracleProfile& profile,
                                        std::size_t k);

/// Runs the profile's post-run oracles (dispersal, round-bound,
/// faulty-round-bound) against a completed result, reusing the
/// analysis/verify checkers. nullopt when all pass.
std::optional<Violation> post_run_violation(const OracleProfile& profile,
                                            const RunResult& result);

}  // namespace dyndisp::check
