// The fuzz driver: generate random trial configs over everything the
// registry (or a restricted toolbox) offers, run each with the full oracle
// set, differential-check the clean ones, and shrink + dump an artifact for
// every failure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "check/shrinker.h"
#include "check/trial.h"
#include "util/rng.h"

namespace dyndisp::check {

struct FuzzOptions {
  std::size_t trials = 100;
  /// Wall-clock budget in seconds; 0 = unbounded. The driver stops cleanly
  /// between trials when exceeded (CI smoke uses this).
  double budget_s = 0.0;
  std::uint64_t base_seed = 1;
  /// Largest requested node count (generated n is in [4, max_n]).
  std::size_t max_n = 24;
  /// Fraction of trials that get a random fault schedule.
  double fault_probability = 0.3;
  /// Run the differential oracles on trials that pass the invariant
  /// oracles (threads and, for pure-registry configs, construction).
  bool differential = true;
  std::size_t diff_threads = 4;
  /// Shrink failures and write one repro artifact per failure here; empty =
  /// shrink but do not write artifacts.
  std::string artifact_dir;
  /// Stop after this many failures.
  std::size_t max_failures = 5;
  ShrinkOptions shrink;
  /// Progress/failure log (one line per event); null = silent.
  std::ostream* log = nullptr;
};

struct FuzzFailure {
  TrialConfig original;
  TrialConfig shrunk;
  Violation violation;  ///< Violation of the SHRUNK config.
  std::size_t captured_script_length = 0;
  std::string artifact_path;  ///< Empty when no artifact was written.
};

struct FuzzReport {
  std::size_t trials_run = 0;
  std::size_t differential_trials = 0;
  bool budget_exhausted = false;
  std::vector<FuzzFailure> failures;

  [[nodiscard]] bool clean() const { return failures.empty(); }
};

/// Draws one random well-formed trial config. `n` is normalized to the
/// constructed adversary's actual node count (families may round the
/// requested size), so k and the placement always fit the real graph.
[[nodiscard]] TrialConfig random_trial(Rng& rng, const Toolbox& toolbox,
                         const FuzzOptions& options);

/// Runs the fuzz loop.
[[nodiscard]] FuzzReport fuzz(const FuzzOptions& options, const Toolbox& toolbox);

}  // namespace dyndisp::check
