#include "check/repro.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dyndisp::check {

std::string artifact_json(const ReproArtifact& artifact) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.member("dyndisp_check_repro", std::uint64_t{1});
  w.member("cli", "dyndisp_check replay <this-file>");
  if (!artifact.note.empty()) w.member("note", artifact.note);
  w.key("violation");
  w.begin_object();
  w.member("oracle", artifact.expected.oracle);
  w.member("round", static_cast<std::uint64_t>(artifact.expected.round));
  w.member("message", artifact.expected.message);
  w.end_object();
  w.key("config");
  artifact.config.write_json(w);
  w.end_object();
  os << '\n';
  return os.str();
}

ReproArtifact parse_artifact(const std::string& text) {
  const JsonValue doc = JsonValue::parse(text);
  if (!doc.is_object())
    throw std::invalid_argument("repro artifact must be a JSON object");
  const JsonValue* version = doc.find("dyndisp_check_repro");
  if (version == nullptr || version->as_uint() != 1)
    throw std::invalid_argument(
        "not a dyndisp_check repro artifact (missing/unknown "
        "\"dyndisp_check_repro\" version)");
  const JsonValue* config = doc.find("config");
  if (config == nullptr)
    throw std::invalid_argument("repro artifact has no \"config\"");
  ReproArtifact artifact;
  artifact.config = TrialConfig::from_json(*config);
  if (const JsonValue* note = doc.find("note"))
    artifact.note = note->as_string();
  const JsonValue* violation = doc.find("violation");
  if (violation == nullptr)
    throw std::invalid_argument("repro artifact has no \"violation\"");
  const JsonValue* oracle = violation->find("oracle");
  if (oracle == nullptr)
    throw std::invalid_argument("repro artifact violation has no \"oracle\"");
  artifact.expected.oracle = oracle->as_string();
  if (const JsonValue* round = violation->find("round"))
    artifact.expected.round = round->as_uint();
  if (const JsonValue* message = violation->find("message"))
    artifact.expected.message = message->as_string();
  return artifact;
}

void write_artifact(const ReproArtifact& artifact, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write repro artifact " + path);
  out << artifact_json(artifact);
  if (!out.flush())
    throw std::runtime_error("failed writing repro artifact " + path);
}

ReproArtifact load_artifact(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read repro artifact " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_artifact(buffer.str());
}

ReplayOutcome replay(const ReproArtifact& artifact, const Toolbox& toolbox) {
  const CheckedOutcome out = run_checked(artifact.config, toolbox);
  ReplayOutcome outcome;
  outcome.violation = out.violation;
  outcome.reproduced =
      out.violation && out.violation->oracle == artifact.expected.oracle;
  return outcome;
}

}  // namespace dyndisp::check
