// The shrinker: given a failing trial, produce the smallest trial it can
// that still fails the SAME oracle, as a self-contained scripted replay.
//
// Three stages, each accepting a candidate only if re-running it yields a
// violation with the same oracle key:
//   1. scalar shrink -- n, then k, then the fault count, each by
//      halve-then-decrement (dependent fields are clamped so every
//      candidate is well-formed);
//   2. script capture -- re-run the minimized config with its adversary
//      wrapped in a recorder, turning the (possibly randomized, possibly
//      plan-probing) adversary into an explicit graph sequence;
//   3. script shrink -- truncate the tail (ScriptedAdversary repeats the
//      last graph forever, so every non-empty prefix is a complete
//      execution), then drop graphs from the front (pulling a late
//      violation toward round 0), then tighten max_rounds.
//
// Every run is deterministic, so "same oracle" is a faithful notion of
// "same bug" for in-engine violations at a specific round.
#pragma once

#include <cstddef>

#include "check/trial.h"

namespace dyndisp::check {

struct ShrinkOptions {
  /// Upper bound on candidate re-runs across all stages.
  std::size_t max_attempts = 400;
};

struct ShrinkResult {
  TrialConfig config;   ///< Minimized, scripted when capture succeeded.
  Violation violation;  ///< The minimized config's violation.
  /// Script length right after capture, before script shrinking (0 when
  /// capture was skipped or failed); lets callers assert the script
  /// actually got shorter.
  std::size_t captured_script_length = 0;
  std::size_t attempts = 0;  ///< Candidate re-runs performed.
};

/// Shrinks `failing` (which violated `violation` under `toolbox`). The
/// returned config always still violates the same oracle -- when no
/// reduction helps, it is the input config unchanged.
[[nodiscard]] ShrinkResult shrink(const TrialConfig& failing, const Violation& violation,
                    const Toolbox& toolbox, const ShrinkOptions& options = {});

}  // namespace dyndisp::check
