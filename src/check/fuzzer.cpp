#include "check/fuzzer.h"

#include <algorithm>
#include <chrono>

#include "campaign/registry.h"
#include "check/differential.h"
#include "check/repro.h"

namespace dyndisp::check {

TrialConfig random_trial(Rng& rng, const Toolbox& toolbox,
                         const FuzzOptions& options) {
  const std::vector<std::string> algorithms = toolbox.algorithm_names();
  const std::vector<std::string> adversaries = toolbox.adversary_names();
  const std::vector<std::string> families =
      campaign::Registry::instance().family_names();
  static const char* const kPlacements[] = {"rooted", "random", "grouped"};

  TrialConfig c;
  c.algorithm = rng.pick(algorithms);
  c.adversary = rng.pick(adversaries);
  c.family = rng.pick(families);
  c.placement = kPlacements[rng.below(3)];
  c.seed = 1 + rng.below(1u << 20);
  const std::size_t lo = std::max<std::size_t>(4, minimum_n(c));
  const std::size_t hi = std::max(lo, options.max_n);
  c.n = lo + rng.below(hi - lo + 1);
  // Families may round the requested size; normalize n to the graph the
  // adversary will actually emit so k and the placement always fit it.
  c.n = toolbox.adversary(c.adversary, c.family, c.n, c.seed)->node_count();
  c.k = 2 + rng.below(c.n - 1);  // [2, n]
  c.groups = 1 + rng.below(std::min(c.k, c.n));
  c.faults =
      rng.chance(options.fault_probability) ? rng.below(c.k / 2 + 1) : 0;
  // The delta-aware round loop is itself a fuzzed axis: half the trials run
  // with it off, so oracle coverage spans both engine loops.
  c.structure_cache = rng.below(2) == 0;
  // Likewise the struct-of-arrays round core: half the trials exercise the
  // legacy allocate-per-round engine so the oracles cover both cores.
  c.soa = rng.below(2) == 0;
  // And the flat PacketArena broadcast backend: half the trials run on the
  // legacy vector<InfoPacket> path so every oracle sees both wire layouts.
  c.flat_packets = rng.below(2) == 0;
  // And the graph-change-gated plan routing: half the trials stamp every
  // round full churn (stateless re-plan), so the oracles cover both routes.
  c.incremental = rng.below(2) == 0;
  return c;
}

FuzzReport fuzz(const FuzzOptions& options, const Toolbox& toolbox) {
  FuzzReport report;
  // NOLINTNEXTLINE-dyndisp(determinism-wallclock): the CI budget cutoff
  // only decides WHEN to stop drawing trials; each trial itself stays a
  // pure function of its seed, so every failure replays identically.
  const auto start = std::chrono::steady_clock::now();
  const auto over_budget = [&] {
    if (options.budget_s <= 0) return false;
    const std::chrono::duration<double> elapsed =
        // NOLINTNEXTLINE-dyndisp(determinism-wallclock): budget check only
        // (see above); budget_s=0 disables it for exact-count runs.
        std::chrono::steady_clock::now() - start;
    return elapsed.count() > options.budget_s;
  };
  // Decorrelate from the raw seed so base_seed=1,2,... explore unrelated
  // trial streams.
  Rng rng(options.base_seed * 0x9E3779B97F4A7C15ull + 0x1F123BB5ull);

  for (std::size_t t = 0; t < options.trials; ++t) {
    if (over_budget()) {
      report.budget_exhausted = true;
      if (options.log)
        *options.log << "fuzz: budget exhausted after " << report.trials_run
                     << " trials\n";
      break;
    }
    const TrialConfig config = random_trial(rng, toolbox, options);
    ++report.trials_run;

    const CheckedOutcome out = run_checked(config, toolbox);
    std::optional<Violation> violation = out.violation;
    bool from_differential = false;
    if (!violation && options.differential) {
      ++report.differential_trials;
      const DiffReport threads =
          diff_threads(config, toolbox, options.diff_threads);
      if (!threads.ok) {
        violation = Violation{"differential-threads", out.result.rounds,
                              threads.detail};
        from_differential = true;
      }
      if (!violation) {
        const DiffReport cache = diff_structure_cache(config, toolbox);
        if (!cache.ok) {
          violation = Violation{"differential-structure-cache",
                                out.result.rounds, cache.detail};
          from_differential = true;
        }
      }
      if (!violation) {
        const DiffReport incremental = diff_incremental(config, toolbox);
        if (!incremental.ok) {
          violation = Violation{"differential-incremental",
                                out.result.rounds, incremental.detail};
          from_differential = true;
        }
      }
      if (!violation) {
        const DiffReport soa = diff_soa(config, toolbox);
        if (!soa.ok) {
          violation =
              Violation{"differential-soa", out.result.rounds, soa.detail};
          from_differential = true;
        }
      }
      if (!violation) {
        const DiffReport packets = diff_flat_packets(config, toolbox);
        if (!packets.ok) {
          violation = Violation{"differential-packets", out.result.rounds,
                                packets.detail};
          from_differential = true;
        }
      }
      if (!violation && !toolbox.is_extension(config.algorithm) &&
          !toolbox.is_extension(config.adversary)) {
        const DiffReport construction = diff_construction(config);
        if (!construction.ok) {
          violation = Violation{"differential-construction",
                                out.result.rounds, construction.detail};
          from_differential = true;
        }
      }
    }
    if (!violation) continue;

    if (options.log)
      *options.log << "fuzz: [" << violation->oracle << "] round "
                   << violation->round << " in " << config.summary() << '\n';

    FuzzFailure failure;
    failure.original = config;
    failure.shrunk = config;
    failure.violation = *violation;
    if (!from_differential) {
      // Differential mismatches are not shrunk: the shrinker's acceptance
      // test re-runs single configs, which cannot witness a two-leg diff.
      const ShrinkResult shrunk =
          shrink(config, *violation, toolbox, options.shrink);
      failure.shrunk = shrunk.config;
      failure.violation = shrunk.violation;
      failure.captured_script_length = shrunk.captured_script_length;
      if (options.log)
        *options.log << "fuzz: shrunk to " << shrunk.config.summary() << " ("
                     << shrunk.attempts << " attempts)\n";
    }
    if (!options.artifact_dir.empty()) {
      ReproArtifact artifact;
      artifact.config = failure.shrunk;
      artifact.expected = failure.violation;
      artifact.note = "shrunk from " + config.summary();
      const std::string path = options.artifact_dir + "/repro-" +
                               std::to_string(report.failures.size() + 1) +
                               "-" + failure.violation.oracle + ".json";
      write_artifact(artifact, path);
      failure.artifact_path = path;
      if (options.log) *options.log << "fuzz: artifact " << path << '\n';
    }
    report.failures.push_back(std::move(failure));
    if (report.failures.size() >= options.max_failures) break;
  }
  return report;
}

}  // namespace dyndisp::check
