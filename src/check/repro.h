// Repro artifacts: a failing (usually shrunk) trial as one self-contained
// JSON file -- the full config including the scripted graph sequence, the
// violation it is expected to reproduce, and the exact CLI line that
// replays it. An artifact checked into tests/repros/ is a permanent
// regression test (docs/TESTING.md shows the recipe).
#pragma once

#include <optional>
#include <string>

#include "check/trial.h"

namespace dyndisp::check {

struct ReproArtifact {
  TrialConfig config;
  Violation expected;  ///< The violation this artifact reproduces.
  std::string note;    ///< Provenance (e.g. the pre-shrink config summary).
};

/// Serializes / parses the artifact document. parse throws
/// std::invalid_argument on anything malformed (artifacts are untrusted:
/// they travel through bug reports).
[[nodiscard]] std::string artifact_json(const ReproArtifact& artifact);
[[nodiscard]] ReproArtifact parse_artifact(const std::string& text);

/// File convenience wrappers; throw std::runtime_error on IO failure.
void write_artifact(const ReproArtifact& artifact, const std::string& path);
[[nodiscard]] ReproArtifact load_artifact(const std::string& path);

struct ReplayOutcome {
  /// True iff the run violated the SAME oracle the artifact expects.
  bool reproduced = false;
  std::optional<Violation> violation;  ///< What the replay actually hit.
};

/// Re-runs the artifact's config with the full oracle set.
[[nodiscard]] ReplayOutcome replay(const ReproArtifact& artifact, const Toolbox& toolbox);

}  // namespace dyndisp::check
