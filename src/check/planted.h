// Planted bugs: deliberately broken components used to prove the harness
// catches what it claims to catch. Each planted_toolbox() restricts the
// fuzzable pool to the broken component, so `dyndisp_check fuzz --plant X`
// (and tests/test_check.cpp) exercise it on every trial.
//
// Plants:
//   disconnect -- an adversary that behaves like the random adversary until
//                 round 6, then emits a two-component graph every round
//                 (ports stay valid; only 1-interval connectivity breaks).
//                 The engine's "round-graph" oracle must catch it at the
//                 exact round, and the shrinker must script it down.
//   lazy       -- an Algorithm 4 wrapper whose robots all stop moving from
//                 round 3 on, while still claiming the paper's guarantees.
//                 The in-engine "progress" oracle (Lemma 7) must fire at
//                 round 3 whenever the run is not yet dispersed.
#pragma once

#include <string>

#include "check/trial.h"

namespace dyndisp::check {

/// Names the planted components inject under.
inline constexpr const char* kPlantedDisconnectAdversary =
    "planted-disconnect";
inline constexpr const char* kPlantedLazyAlgorithm = "planted-lazy";

/// Round from which the disconnect plant splits the graph.
inline constexpr Round kDisconnectRound = 6;
/// Round from which the lazy plant's robots refuse to move.
inline constexpr Round kLazyRound = 3;

/// Builds a toolbox with the named plant ("disconnect" or "lazy")
/// registered and the corresponding fuzz pool restricted to it. Throws
/// std::invalid_argument on an unknown plant name.
Toolbox planted_toolbox(const std::string& plant);

}  // namespace dyndisp::check
