#include "check/shrinker.h"

#include <algorithm>
#include <exception>
#include <optional>
#include <utility>
#include <vector>

#include "dynamic/scripted_adversary.h"

namespace dyndisp::check {

namespace {

/// Forwards everything to the wrapped adversary while recording each graph
/// it emits. Plan-probe plumbing is forwarded both ways so trap adversaries
/// behave identically under recording.
class RecordingAdversary final : public Adversary {
 public:
  explicit RecordingAdversary(Adversary& inner) : inner_(inner) {}

  std::string name() const override { return inner_.name(); }
  std::size_t node_count() const override { return inner_.node_count(); }

  Graph next_graph(Round r, const Configuration& conf) override {
    Graph g = inner_.next_graph(r, conf);
    recorded_.push_back(g);
    return g;
  }

  bool wants_plan_probe() const override { return inner_.wants_plan_probe(); }
  void set_plan_probe(PlanProbe probe) override {
    inner_.set_plan_probe(std::move(probe));
  }

  std::vector<Graph> take_recorded() { return std::move(recorded_); }

 private:
  Adversary& inner_;
  std::vector<Graph> recorded_;
};

/// Clamps the dependent fields after a scalar changed so every candidate is
/// a well-formed trial (k <= n for non-rooted placements to stay solvable,
/// groups in [1, k], faults < k so at least one robot survives).
void clamp(TrialConfig& c) {
  c.k = std::max<std::size_t>(2, std::min(c.k, c.n));
  c.groups = std::max<std::size_t>(1, std::min(c.groups, c.k));
  if (c.faults >= c.k) c.faults = c.k - 1;
}

class Shrinker {
 public:
  Shrinker(const TrialConfig& failing, const Violation& violation,
           const Toolbox& toolbox, const ShrinkOptions& options)
      : toolbox_(toolbox), options_(options), current_(failing),
        violation_(violation) {}

  ShrinkResult run() {
    shrink_scalar(
        [](TrialConfig& c, std::size_t v) { c.n = v; clamp(c); },
        [](const TrialConfig& c) { return c.n; },
        /*floor=*/minimum_n(current_));
    shrink_scalar(
        [](TrialConfig& c, std::size_t v) { c.k = v; clamp(c); },
        [](const TrialConfig& c) { return c.k; }, /*floor=*/2);
    shrink_scalar(
        [](TrialConfig& c, std::size_t v) { c.faults = v; },
        [](const TrialConfig& c) { return c.faults; }, /*floor=*/0);
    std::size_t captured = 0;
    if (current_.script.empty()) captured = capture_script();
    if (!current_.script.empty()) {
      shrink_script_tail();
      shrink_script_front();
      tighten_max_rounds();
    }
    return ShrinkResult{current_, violation_, captured, attempts_};
  }

 private:
  /// Re-runs a candidate; accepts it as the new current config iff it still
  /// violates the same oracle.
  bool accept(const TrialConfig& candidate) {
    if (attempts_ >= options_.max_attempts) return false;
    ++attempts_;
    CheckedOutcome out;
    try {
      out = run_checked(candidate, toolbox_);
    } catch (const std::exception&) {
      // A candidate some component refuses to construct (size constraints
      // the clamp does not know about) is simply not a reduction.
      return false;
    }
    if (!out.violation || out.violation->oracle != violation_.oracle)
      return false;
    current_ = candidate;
    violation_ = *out.violation;
    return true;
  }

  /// Halve-then-decrement on one scalar until neither step reproduces.
  template <typename Set, typename Get>
  void shrink_scalar(Set set, Get get, std::size_t floor) {
    for (;;) {
      const std::size_t value = get(current_);
      if (value <= floor) return;
      const std::size_t half = std::max(floor, value / 2);
      bool reduced = false;
      for (const std::size_t next : {half, value - 1}) {
        if (next >= value) continue;
        TrialConfig candidate = current_;
        set(candidate, next);
        if (accept(candidate)) {
          reduced = true;
          break;
        }
      }
      if (!reduced) return;
    }
  }

  /// Replays the current config with its adversary wrapped in a recorder
  /// and, when the same violation reproduces, replaces the adversary with
  /// the recorded script. Returns the captured length (0 on failure).
  std::size_t capture_script() {
    auto inner = toolbox_.adversary(current_.adversary, current_.family,
                                    current_.n, current_.seed);
    RecordingAdversary recorder(*inner);
    const CheckedOutcome out = run_checked(current_, toolbox_, &recorder);
    ++attempts_;
    if (!out.violation || out.violation->oracle != violation_.oracle)
      return 0;
    std::vector<Graph> script = recorder.take_recorded();
    if (script.empty()) return 0;
    TrialConfig scripted = current_;
    scripted.script = std::move(script);
    // The scripted replay re-executes the identical graph sequence, but
    // accept() re-verifies rather than assuming.
    if (!accept(scripted)) return 0;
    return current_.script.size();
  }

  /// Truncates the script's tail: a prefix plus repeat-last covers the run
  /// up to the violation, and often far fewer graphs suffice.
  void shrink_script_tail() {
    for (;;) {
      const std::size_t len = current_.script.size();
      if (len <= 1) return;
      bool reduced = false;
      for (const std::size_t next : {std::size_t{1}, len / 2, len - 1}) {
        if (next == 0 || next >= len) continue;
        TrialConfig candidate = current_;
        candidate.script.resize(next);
        if (accept(candidate)) {
          reduced = true;
          break;
        }
      }
      if (!reduced) return;
    }
  }

  /// Drops graphs from the front, pulling a late violation toward round 0
  /// (the dropped prefix is usually irrelevant warm-up).
  void shrink_script_front() {
    while (current_.script.size() > 1) {
      TrialConfig candidate = current_;
      candidate.script.erase(candidate.script.begin());
      if (!accept(candidate)) return;
    }
  }

  /// A minimal repro should not ask for more rounds than the violation
  /// needs (post-run oracles keep their horizon: shortening it would change
  /// what they assert).
  void tighten_max_rounds() {
    const Round horizon = violation_.round + 1;
    if (horizon >= current_.effective_max_rounds()) return;
    TrialConfig candidate = current_;
    candidate.max_rounds = horizon;
    accept(candidate);
  }

  const Toolbox& toolbox_;
  const ShrinkOptions& options_;
  TrialConfig current_;
  Violation violation_;
  std::size_t attempts_ = 0;
};

}  // namespace

ShrinkResult shrink(const TrialConfig& failing, const Violation& violation,
                    const Toolbox& toolbox, const ShrinkOptions& options) {
  return Shrinker(failing, violation, toolbox, options).run();
}

}  // namespace dyndisp::check
