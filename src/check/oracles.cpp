#include "check/oracles.h"

#include <string>

#include "analysis/verify.h"
#include "util/bits.h"

namespace dyndisp::check {

OracleProfile oracle_profile(const TrialConfig& config, bool claims_lemmas) {
  OracleProfile p;
  if (!claims_lemmas) return p;
  // The paper proves the lemmas under global communication; "default"
  // resolves to global for every algorithm that claims them. An explicit
  // --comm local run is a model mismatch and voids the guarantees.
  if (config.comm != "default" && config.comm != "global") return p;
  const bool fault_free = config.faults == 0;
  p.occupied_monotone = fault_free;
  p.progress = fault_free;
  p.memory = true;
  p.dispersal = true;
  p.round_bound = fault_free;
  p.faulty_round_bound = !fault_free;
  return p;
}

InvariantChecker make_invariant_checker(const OracleProfile& profile,
                                        std::size_t k) {
  if (!profile.occupied_monotone && !profile.progress && !profile.memory)
    return nullptr;
  const OracleProfile p = profile;
  const std::size_t memory_bound =
      bit_width_for(static_cast<std::uint64_t>(k) + 1);
  return [p, memory_bound](const RoundSnapshot& s) {
    if (p.occupied_monotone &&
        s.after.occupied_count() < s.before.occupied_count()) {
      throw InvariantViolation(
          s.round, "occupied-monotone",
          "[occupied-monotone] Lemma 6: occupied nodes dropped from " +
              std::to_string(s.before.occupied_count()) + " to " +
              std::to_string(s.after.occupied_count()) + " in round " +
              std::to_string(s.round));
    }
    if (p.progress && s.newly_occupied == 0 && !s.crashed_this_round &&
        s.before.occupied_count() < s.before.alive_count()) {
      throw InvariantViolation(
          s.round, "progress",
          "[progress] Lemma 7: round " + std::to_string(s.round) +
              " occupied no new node while " +
              std::to_string(s.before.alive_count() -
                             s.before.occupied_count()) +
              " robot(s) were still sharing nodes");
    }
    if (p.memory && s.max_memory_bits > memory_bound) {
      throw InvariantViolation(
          s.round, "memory",
          "[memory] Lemma 8: peak robot memory " +
              std::to_string(s.max_memory_bits) + " bits exceeds ceil(log2(" +
              "k+1)) = " + std::to_string(memory_bound) + " bits at round " +
              std::to_string(s.round));
    }
  };
}

std::optional<Violation> post_run_violation(const OracleProfile& profile,
                                            const RunResult& result) {
  if (profile.dispersal && !result.dispersed) {
    return Violation{"dispersal", result.rounds,
                     "[dispersal] run ended after " +
                         std::to_string(result.rounds) +
                         " rounds without dispersing (" +
                         std::to_string(result.final_config.occupied_count()) +
                         "/" + std::to_string(result.k) + " nodes occupied)"};
  }
  if (profile.round_bound) {
    if (std::string err = analysis::check_round_bound(result); !err.empty())
      return Violation{"round-bound", result.rounds, "[round-bound] " + err};
  }
  if (profile.faulty_round_bound) {
    if (std::string err = analysis::check_faulty_round_bound(result);
        !err.empty())
      return Violation{"faulty-round-bound", result.rounds,
                       "[faulty-round-bound] " + err};
  }
  return std::nullopt;
}

}  // namespace dyndisp::check
