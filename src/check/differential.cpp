#include "check/differential.h"

#include "analysis/experiment.h"
#include "campaign/registry.h"
#include "campaign/spec.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "util/rng.h"

namespace dyndisp::check {

namespace {

DiffReport compare(const std::string& axis, const std::string& leg_a,
                   const RunResult& a, const std::string& leg_b,
                   const RunResult& b) {
  if (digest_run(a) == digest_run(b)) return {};
  DiffReport report;
  report.ok = false;
  report.detail = "[differential-" + axis + "] " + leg_a + ": " +
                  describe_run(a) + " | " + leg_b + ": " + describe_run(b);
  return report;
}

}  // namespace

DiffReport diff_threads(const TrialConfig& config, const Toolbox& toolbox,
                        std::size_t threads) {
  const RunResult serial = run_plain(config, toolbox, 1);
  const RunResult parallel = run_plain(config, toolbox, threads);
  return compare("threads", "threads=1", serial,
                 "threads=" + std::to_string(threads), parallel);
}

DiffReport diff_structure_cache(const TrialConfig& config,
                                const Toolbox& toolbox) {
  TrialConfig on = config;
  on.structure_cache = true;
  TrialConfig off = config;
  off.structure_cache = false;
  const RunResult cached = run_plain(on, toolbox, config.threads);
  const RunResult uncached = run_plain(off, toolbox, config.threads);
  return compare("structure-cache", "cache=on", cached, "cache=off", uncached);
}

DiffReport diff_soa(const TrialConfig& config, const Toolbox& toolbox) {
  TrialConfig on = config;
  on.soa = true;
  TrialConfig off = config;
  off.soa = false;
  const RunResult flat = run_plain(on, toolbox, config.threads);
  const RunResult legacy = run_plain(off, toolbox, config.threads);
  return compare("soa", "soa=on", flat, "soa=off", legacy);
}

DiffReport diff_flat_packets(const TrialConfig& config,
                             const Toolbox& toolbox) {
  TrialConfig on = config;
  on.flat_packets = true;
  TrialConfig off = config;
  off.flat_packets = false;
  const RunResult arena = run_plain(on, toolbox, config.threads);
  const RunResult legacy = run_plain(off, toolbox, config.threads);
  return compare("packets", "flat=on", arena, "flat=off", legacy);
}

DiffReport diff_incremental(const TrialConfig& config,
                            const Toolbox& toolbox) {
  TrialConfig on = config;
  on.incremental = true;
  TrialConfig off = config;
  off.incremental = false;
  const RunResult gated = run_plain(on, toolbox, config.threads);
  const RunResult replan = run_plain(off, toolbox, config.threads);
  return compare("incremental", "inc=on", gated, "inc=off", replan);
}

DiffReport diff_construction(const TrialConfig& config) {
  // Leg A: the campaign path, exactly as the scheduler drives it.
  campaign::JobSpec job;
  job.algorithm = config.algorithm;
  job.adversary = config.adversary;
  job.family = config.family;
  job.placement = config.placement;
  job.comm = config.comm;
  job.n = config.n;
  job.k = config.k;
  job.groups = config.groups;
  job.faults = config.faults;
  job.max_rounds = config.max_rounds;
  job.seed = config.seed;
  job.structure_cache = config.structure_cache;
  job.soa = config.soa;
  job.flat_packets = config.flat_packets;
  job.incremental = config.incremental;
  analysis::TrialSpec spec = campaign::make_trial_spec(job);
  spec.options.record_progress = true;
  const RunResult via_campaign = analysis::run_trial(spec, job.seed);

  // Leg B: dyndisp_sim's construction, replicated literally (direct
  // registry calls, the driver's option wiring) rather than through
  // make_trial_spec -- the point is that the two clients agree.
  const campaign::Registry& registry = campaign::Registry::instance();
  const campaign::AlgorithmChoice algo =
      registry.algorithm(config.algorithm, config.seed);
  auto adversary = registry.adversary(config.adversary, config.family,
                                      config.n, config.seed);
  Configuration initial = registry.placement(config.placement, config.n,
                                             config.k, config.groups,
                                             config.seed);
  FaultSchedule schedule = FaultSchedule::none();
  if (config.faults > 0) {
    Rng rng(config.seed * 17 + 5);
    schedule = FaultSchedule::random(config.k, config.faults, config.k, rng);
  }
  EngineOptions options;
  options.max_rounds = config.effective_max_rounds();
  const std::string comm = config.comm == "default"
                               ? (algo.needs_global ? "global" : "local")
                               : config.comm;
  options.comm = comm == "global" ? CommModel::kGlobal : CommModel::kLocal;
  options.neighborhood_knowledge = algo.needs_knowledge;
  options.allow_model_mismatch = true;
  options.record_progress = true;
  options.structure_cache = config.structure_cache;
  options.soa = config.soa;
  options.flat_packets = config.flat_packets;
  options.incremental_planning = config.incremental;
  Engine engine(*adversary, std::move(initial), algo.factory, options,
                std::move(schedule));
  const RunResult via_sim = engine.run();

  return compare("construction", "campaign", via_campaign, "sim", via_sim);
}

}  // namespace dyndisp::check
