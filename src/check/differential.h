// Differential oracles: the same trial executed two independent ways must
// produce bitwise-identical results.
//
// Four axes are diffed:
//   * threads      -- the engine's parallel compute phase (threads = N)
//                     against the fully serial engine (threads = 1). PR 1
//                     claims bitwise identity at any thread count; this is
//                     the oracle that keeps that claim honest.
//   * construction -- the campaign path (campaign::make_trial_spec +
//                     analysis::run_trial) against a literal replication of
//                     the dyndisp_sim driver's construction. The registry
//                     exists so both resolve a name identically; this
//                     catches the two paths drifting apart (seed streams,
//                     option defaults, placement parameters).
//   * structure-cache -- the delta-aware round loop + StructureCache
//                     (EngineOptions::structure_cache, the default) against
//                     the cache-off engine that rebuilds everything every
//                     round. Every reuse path claims bitwise identity; this
//                     oracle is that claim, executed.
//   * soa          -- the struct-of-arrays round core (EngineOptions::soa,
//                     the default: persistent view arena, gated state lists,
//                     before-copy elision) against the legacy
//                     allocate-per-round engine. The mega-scale rebuild
//                     claims bitwise identity; this oracle keeps it honest.
//   * incremental  -- the graph-change-gated plan routing
//                     (EngineOptions::incremental_planning, the default:
//                     full-churn rounds bypass the StructureCache and
//                     re-plan statelessly, kSame/kSmallDelta rounds use its
//                     exact-hit/delta machinery) against the engine that
//                     stamps every round full churn and re-plans everything.
//                     The mega-scale incremental planning claims bitwise
//                     identity; this oracle keeps it honest.
//   * packets      -- the flat PacketArena broadcast backend
//                     (EngineOptions::flat_packets, the default: CSR-style
//                     robot pool + offset tables, refilled in place across
//                     rounds) against the legacy per-round
//                     std::vector<InfoPacket> broadcast. The wire format,
//                     metering, and every downstream plan claim bitwise
//                     identity; this oracle keeps that claim honest.
//
// "Bitwise identical" means digest_run() equality: every RunResult scalar,
// the final configuration, and the per-round occupied counts.
#pragma once

#include <cstddef>
#include <string>

#include "check/trial.h"

namespace dyndisp::check {

struct DiffReport {
  bool ok = true;
  std::string detail;  ///< Both legs' fingerprints when !ok.
};

/// Runs `config` at threads=1 and threads=`threads` through the identical
/// construction path and compares digests.
[[nodiscard]] DiffReport diff_threads(const TrialConfig& config, const Toolbox& toolbox,
                        std::size_t threads);

/// Runs `config` once through the campaign spec path and once through a
/// replica of dyndisp_sim's construction and compares digests. Only valid
/// for configs whose every name resolves through the shared registry (no
/// toolbox extensions, no script).
[[nodiscard]] DiffReport diff_construction(const TrialConfig& config);

/// Runs `config` with the structure cache on and off (both at the config's
/// own thread count) and compares digests. The config's own structure_cache
/// value is ignored: both legs are forced explicitly.
[[nodiscard]] DiffReport diff_structure_cache(const TrialConfig& config,
                                              const Toolbox& toolbox);

/// Runs `config` with the struct-of-arrays round core on and off (both at
/// the config's own thread count) and compares digests. The config's own
/// soa value is ignored: both legs are forced explicitly.
[[nodiscard]] DiffReport diff_soa(const TrialConfig& config,
                                  const Toolbox& toolbox);

/// Runs `config` with the flat PacketArena broadcast backend on and off
/// (both at the config's own thread count) and compares digests. The
/// config's own flat_packets value is ignored: both legs are forced
/// explicitly.
[[nodiscard]] DiffReport diff_flat_packets(const TrialConfig& config,
                                           const Toolbox& toolbox);

/// Runs `config` with incremental component-forest planning on (the
/// graph-change-gated plan routing) and off (every round re-planned
/// statelessly as full churn) and compares digests. The config's own
/// incremental value is ignored: both legs are forced explicitly.
[[nodiscard]] DiffReport diff_incremental(const TrialConfig& config,
                                          const Toolbox& toolbox);

}  // namespace dyndisp::check
