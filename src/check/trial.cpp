#include "check/trial.h"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "check/oracles.h"
#include "dynamic/scripted_adversary.h"
#include "sim/fault.h"
#include "util/rng.h"

namespace dyndisp::check {

std::string TrialConfig::summary() const {
  std::ostringstream os;
  os << algorithm << '|' << adversary << '|' << family << '|' << placement
     << "|n=" << n << "|k=" << k << "|g=" << groups << "|f=" << faults
     << "|seed=" << seed;
  if (comm != "default") os << "|comm=" << comm;
  if (max_rounds != 0) os << "|mr=" << max_rounds;
  if (!structure_cache) os << "|sc=off";
  if (!soa) os << "|soa=off";
  if (!flat_packets) os << "|flat=off";
  if (!incremental) os << "|inc=off";
  if (!script.empty()) os << "|script=" << script.size();
  return os.str();
}

void TrialConfig::write_json(JsonWriter& w) const {
  w.begin_object();
  w.member("algorithm", algorithm);
  w.member("adversary", adversary);
  w.member("family", family);
  w.member("placement", placement);
  w.member("comm", comm);
  w.member("n", static_cast<std::uint64_t>(n));
  w.member("k", static_cast<std::uint64_t>(k));
  w.member("groups", static_cast<std::uint64_t>(groups));
  w.member("faults", static_cast<std::uint64_t>(faults));
  w.member("threads", static_cast<std::uint64_t>(threads));
  w.member("max_rounds", static_cast<std::uint64_t>(max_rounds));
  w.member("seed", seed);
  w.member("structure_cache", structure_cache);
  w.member("soa", soa);
  w.member("flat_packets", flat_packets);
  w.member("incremental", incremental);
  if (!script.empty())
    w.member("script", ScriptedAdversary::serialize_script(script));
  w.end_object();
}

std::string TrialConfig::to_json() const {
  std::ostringstream os;
  JsonWriter w(os);
  write_json(w);
  return os.str();
}

TrialConfig TrialConfig::from_json(const JsonValue& doc) {
  if (!doc.is_object())
    throw std::invalid_argument("trial config must be a JSON object");
  TrialConfig c;
  for (const auto& [key, value] : doc.members()) {
    if (key == "algorithm") c.algorithm = value.as_string();
    else if (key == "adversary") c.adversary = value.as_string();
    else if (key == "family") c.family = value.as_string();
    else if (key == "placement") c.placement = value.as_string();
    else if (key == "comm") c.comm = value.as_string();
    else if (key == "n") c.n = static_cast<std::size_t>(value.as_uint());
    else if (key == "k") c.k = static_cast<std::size_t>(value.as_uint());
    else if (key == "groups") c.groups = static_cast<std::size_t>(value.as_uint());
    else if (key == "faults") c.faults = static_cast<std::size_t>(value.as_uint());
    else if (key == "threads") c.threads = static_cast<std::size_t>(value.as_uint());
    else if (key == "max_rounds") c.max_rounds = value.as_uint();
    else if (key == "seed") c.seed = value.as_uint();
    // Absent in pre-existing repro artifacts -> the default (true).
    else if (key == "structure_cache") c.structure_cache = value.as_bool();
    // Absent in pre-existing repro artifacts -> the default (true).
    else if (key == "soa") c.soa = value.as_bool();
    // Absent in pre-existing repro artifacts -> the default (true).
    else if (key == "flat_packets") c.flat_packets = value.as_bool();
    // Absent in pre-existing repro artifacts -> the default (true).
    else if (key == "incremental") c.incremental = value.as_bool();
    else if (key == "script")
      c.script = ScriptedAdversary::parse_script(value.as_string());
    else
      throw std::invalid_argument("trial config: unknown key '" + key + "'");
  }
  return c;
}

TrialConfig TrialConfig::parse_json(const std::string& text) {
  return from_json(JsonValue::parse(text));
}

void Toolbox::add_algorithm(const std::string& name, AlgorithmFn fn,
                            bool claims_lemmas) {
  extra_algorithms_[name] = {std::move(fn), claims_lemmas};
}

void Toolbox::add_adversary(const std::string& name, AdversaryFn fn) {
  extra_adversaries_[name] = std::move(fn);
}

void Toolbox::restrict_algorithms(std::vector<std::string> names) {
  restricted_algorithms_ = std::move(names);
}

void Toolbox::restrict_adversaries(std::vector<std::string> names) {
  restricted_adversaries_ = std::move(names);
}

campaign::AlgorithmChoice Toolbox::algorithm(const std::string& name,
                                             std::uint64_t seed) const {
  if (auto it = extra_algorithms_.find(name); it != extra_algorithms_.end())
    return it->second.first(seed);
  return campaign::Registry::instance().algorithm(name, seed);
}

std::unique_ptr<Adversary> Toolbox::adversary(const std::string& name,
                                              const std::string& family,
                                              std::size_t n,
                                              std::uint64_t seed) const {
  if (auto it = extra_adversaries_.find(name); it != extra_adversaries_.end())
    return it->second(family, n, seed);
  return campaign::Registry::instance().adversary(name, family, n, seed);
}

bool Toolbox::claims_lemmas(const std::string& algorithm) const {
  if (auto it = extra_algorithms_.find(algorithm);
      it != extra_algorithms_.end())
    return it->second.second;
  return algorithm.rfind("alg4", 0) == 0;
}

bool Toolbox::is_extension(const std::string& name) const {
  return extra_algorithms_.count(name) > 0 || extra_adversaries_.count(name) > 0;
}

std::vector<std::string> Toolbox::algorithm_names() const {
  if (!restricted_algorithms_.empty()) return restricted_algorithms_;
  std::vector<std::string> names =
      campaign::Registry::instance().algorithm_names();
  for (const auto& [name, fn] : extra_algorithms_) names.push_back(name);
  return names;
}

std::vector<std::string> Toolbox::adversary_names() const {
  if (!restricted_adversaries_.empty()) return restricted_adversaries_;
  std::vector<std::string> names =
      campaign::Registry::instance().adversary_names();
  for (const auto& [name, fn] : extra_adversaries_) names.push_back(name);
  return names;
}

namespace {

/// Everything needed to hand a trial to the Engine. Construction follows
/// the dyndisp_sim / campaign convention exactly (placement on the
/// requested n, fault stream Rng(seed*17+5), comm "default" resolved from
/// the algorithm's declared needs) so a checked run IS the run those tools
/// would perform.
struct BuiltTrial {
  campaign::AlgorithmChoice algo;
  std::unique_ptr<Adversary> adversary;  ///< Null when an override is used.
  Configuration initial;
  FaultSchedule faults;
  EngineOptions options;
};

BuiltTrial build_trial(const TrialConfig& c, const Toolbox& tb,
                       bool need_adversary, std::size_t threads) {
  BuiltTrial b;
  b.algo = tb.algorithm(c.algorithm, c.seed);
  if (need_adversary) {
    if (!c.script.empty())
      b.adversary = std::make_unique<ScriptedAdversary>(c.script);
    else
      b.adversary = tb.adversary(c.adversary, c.family, c.n, c.seed);
  }
  b.initial = campaign::Registry::instance().placement(c.placement, c.n, c.k,
                                                       c.groups, c.seed);
  if (c.faults > 0) {
    Rng rng(c.seed * 17 + 5);
    b.faults = FaultSchedule::random(c.k, c.faults, c.k, rng);
  }
  b.options.max_rounds = c.effective_max_rounds();
  const std::string comm =
      c.comm == "default" ? (b.algo.needs_global ? "global" : "local") : c.comm;
  b.options.comm = comm == "global" ? CommModel::kGlobal : CommModel::kLocal;
  b.options.neighborhood_knowledge = b.algo.needs_knowledge;
  b.options.allow_model_mismatch = true;
  b.options.record_progress = true;
  b.options.threads = threads;
  b.options.structure_cache = c.structure_cache;
  b.options.soa = c.soa;
  b.options.flat_packets = c.flat_packets;
  b.options.incremental_planning = c.incremental;
  return b;
}

}  // namespace

CheckedOutcome run_checked(const TrialConfig& config, const Toolbox& toolbox,
                           Adversary* override_adversary) {
  BuiltTrial b = build_trial(config, toolbox,
                             /*need_adversary=*/override_adversary == nullptr,
                             config.threads);
  const OracleProfile profile =
      oracle_profile(config, toolbox.claims_lemmas(config.algorithm));
  b.options.invariant_checker = make_invariant_checker(profile, config.k);

  Adversary& adversary =
      override_adversary ? *override_adversary : *b.adversary;
  CheckedOutcome out;
  try {
    Engine engine(adversary, std::move(b.initial), b.algo.factory, b.options,
                  std::move(b.faults));
    out.result = engine.run();
    out.completed = true;
    out.violation = post_run_violation(profile, out.result);
  } catch (const InvariantViolation& e) {
    out.violation = Violation{e.oracle(), e.round(), e.what()};
  }
  return out;
}

RunResult run_plain(const TrialConfig& config, const Toolbox& toolbox,
                    std::size_t threads) {
  BuiltTrial b = build_trial(config, toolbox, /*need_adversary=*/true, threads);
  Engine engine(*b.adversary, std::move(b.initial), b.algo.factory, b.options,
                std::move(b.faults));
  return engine.run();
}

std::size_t minimum_n(const TrialConfig& config) {
  if (config.adversary == "ring" || config.adversary == "ring-worst") return 3;
  if (config.adversary == "static" || config.adversary == "static-shuffle") {
    if (config.family == "torus") return 7;   // 3 x cols torus, cols >= 3
    if (config.family == "cycle") return 3;
  }
  return 2;
}

namespace {

/// FNV-1a over the 8 bytes of `v`, low byte first.
void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
}

}  // namespace

std::uint64_t digest_run(const RunResult& r) {
  std::uint64_t h = 14695981039346656037ull;
  mix(h, r.dispersed ? 1 : 0);
  mix(h, r.rounds);
  mix(h, r.k);
  mix(h, r.initial_occupied);
  mix(h, r.crashed);
  mix(h, r.total_moves);
  mix(h, r.max_memory_bits);
  mix(h, r.packets_sent);
  mix(h, r.packet_bits_sent);
  mix(h, r.stalled_rounds);
  mix(h, r.max_occupied);
  mix(h, r.explored_nodes);
  mix(h, r.exploration_round);
  mix(h, r.final_config.node_count());
  mix(h, r.final_config.robot_count());
  for (RobotId id = 1; id <= r.final_config.robot_count(); ++id) {
    mix(h, r.final_config.alive(id) ? 1 : 0);
    mix(h, r.final_config.position(id));
  }
  mix(h, r.occupied_per_round.size());
  for (const std::size_t v : r.occupied_per_round) mix(h, v);
  return h;
}

std::string describe_run(const RunResult& r) {
  std::ostringstream os;
  os << "dispersed=" << (r.dispersed ? 1 : 0) << " rounds=" << r.rounds
     << " moves=" << r.total_moves << " mem=" << r.max_memory_bits
     << " crashed=" << r.crashed << " occupied=" << r.max_occupied
     << " digest=" << std::hex << digest_run(r);
  return os.str();
}

}  // namespace dyndisp::check
