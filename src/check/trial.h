// The correctness harness's unit of work: one fully-specified trial
// (algorithm x adversary x graph family x placement x fault schedule x comm
// model x seed), runnable with the full invariant-oracle set installed.
//
// A TrialConfig is pure data: it JSON round-trips (repro artifacts embed
// one), renders as a one-line id, and -- via the Toolbox -- resolves every
// name through the shared campaign registry, so anything registered there
// is fuzzable for free. Tests extend the Toolbox with deliberately broken
// components (see check/planted.h) without touching the global registry.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "campaign/registry.h"
#include "dynamic/dynamic_graph.h"
#include "graph/graph.h"
#include "sim/engine.h"
#include "util/json.h"

namespace dyndisp::check {

/// One fully-specified trial. When `script` is non-empty the adversary name
/// is ignored and a ScriptedAdversary replays the recorded graphs (this is
/// what a shrunk repro looks like); otherwise the adversary is constructed
/// by name through the Toolbox.
struct TrialConfig {
  std::string algorithm = "alg4";
  std::string adversary = "random";
  std::string family = "random";    ///< Consulted by static adversaries.
  std::string placement = "rooted";
  std::string comm = "default";     ///< "default" | "global" | "local".
  std::size_t n = 12;               ///< Requested node count (families may round).
  std::size_t k = 8;
  std::size_t groups = 3;
  std::size_t faults = 0;
  std::size_t threads = 1;
  Round max_rounds = 0;             ///< 0 = 100*k, as everywhere else.
  std::uint64_t seed = 1;
  /// EngineOptions::structure_cache: the delta-aware round loop, on by
  /// default everywhere. A fuzzable axis -- the differential suite proves
  /// both values bitwise identical on every drawn trial.
  bool structure_cache = true;
  /// EngineOptions::soa: the struct-of-arrays round core (persistent view
  /// arena, gated state lists, before-copy elision), on by default. A
  /// fuzzable axis like structure_cache -- the differential suite proves
  /// both values bitwise identical on every drawn trial.
  bool soa = true;
  /// EngineOptions::flat_packets: the flat PacketArena broadcast backend,
  /// on by default. A fuzzable axis like structure_cache and soa -- the
  /// differential-packets oracle proves both values bitwise identical on
  /// every drawn trial.
  bool flat_packets = true;
  /// EngineOptions::incremental_planning: graph-change-classified plan
  /// routing (full-churn rounds bypass the StructureCache), on by default.
  /// A fuzzable axis like the others -- the differential-incremental oracle
  /// proves both values bitwise identical on every drawn trial.
  bool incremental = true;
  std::vector<Graph> script;        ///< Non-empty: scripted replay.

  Round effective_max_rounds() const {
    return max_rounds ? max_rounds : 100 * static_cast<Round>(k);
  }

  /// One-line id, e.g. "alg4|random|n=12|k=8|f=0|seed=3" (+ "|script=5").
  std::string summary() const;

  /// JSON object round-trip (scripts embed via the scripted-adversary text
  /// format, ports preserved exactly).
  void write_json(JsonWriter& w) const;
  std::string to_json() const;
  static TrialConfig from_json(const JsonValue& doc);
  static TrialConfig parse_json(const std::string& text);
};

/// Name -> component resolution for trials: the campaign registry plus any
/// test-local extensions, with optional restriction of the fuzzable name
/// pools (a planted-bug toolbox restricts fuzzing to the planted component).
class Toolbox {
 public:
  using AlgorithmFn = std::function<campaign::AlgorithmChoice(std::uint64_t)>;
  using AdversaryFn = std::function<std::unique_ptr<Adversary>(
      const std::string& family, std::size_t n, std::uint64_t seed)>;

  Toolbox() = default;

  /// `claims_lemmas`: whether the algorithm claims Algorithm 4's guarantees
  /// (Lemmas 6-8, Theorems 4-5), turning the lemma oracles on for it.
  void add_algorithm(const std::string& name, AlgorithmFn fn,
                     bool claims_lemmas);
  void add_adversary(const std::string& name, AdversaryFn fn);

  /// Restricts the name pools the fuzzer draws from (lookup still resolves
  /// any registered name).
  void restrict_algorithms(std::vector<std::string> names);
  void restrict_adversaries(std::vector<std::string> names);

  campaign::AlgorithmChoice algorithm(const std::string& name,
                                      std::uint64_t seed) const;
  std::unique_ptr<Adversary> adversary(const std::string& name,
                                       const std::string& family,
                                       std::size_t n, std::uint64_t seed) const;

  /// Registry algorithms claim the lemmas iff their name starts with "alg4";
  /// extensions declare it at registration.
  bool claims_lemmas(const std::string& algorithm) const;

  /// True when the name is a test-local extension (such configs are skipped
  /// by the registry-construction differential).
  bool is_extension(const std::string& name) const;

  /// Fuzzable name pools: the restriction when set, else registry + extras.
  std::vector<std::string> algorithm_names() const;
  std::vector<std::string> adversary_names() const;

 private:
  std::map<std::string, std::pair<AlgorithmFn, bool>> extra_algorithms_;
  std::map<std::string, AdversaryFn> extra_adversaries_;
  std::vector<std::string> restricted_algorithms_;
  std::vector<std::string> restricted_adversaries_;
};

/// One observed invariant violation: which oracle, at which round, and the
/// full diagnostic. `oracle` is the stable key the shrinker matches on.
struct Violation {
  std::string oracle;
  Round round = 0;
  std::string message;
};

struct CheckedOutcome {
  RunResult result;   ///< Meaningful when `completed`.
  bool completed = false;
  std::optional<Violation> violation;
};

/// Runs `config` with the oracle set for its profile installed (see
/// check/oracles.h). `override_adversary`, when non-null, is used instead
/// of constructing one (the shrinker's recording wrapper enters here).
CheckedOutcome run_checked(const TrialConfig& config, const Toolbox& toolbox,
                           Adversary* override_adversary = nullptr);

/// Runs `config` with no oracles at the given thread count (differential
/// legs call this).
RunResult run_plain(const TrialConfig& config, const Toolbox& toolbox,
                    std::size_t threads);

/// Smallest requested n the named components can be constructed with: a
/// few registry components have hard minimum sizes (a ring needs 3 nodes,
/// a torus 7). The fuzzer generates at or above this; the shrinker will
/// not shrink n below it.
std::size_t minimum_n(const TrialConfig& config);

/// Order-sensitive FNV-1a digest over every field of a RunResult (scalars,
/// final configuration, per-round occupied counts). Two runs are "bitwise
/// identical" for the differential oracle iff their digests match.
std::uint64_t digest_run(const RunResult& result);

/// Short human-readable fingerprint for diff diagnostics.
std::string describe_run(const RunResult& result);

}  // namespace dyndisp::check
