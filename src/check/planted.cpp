#include "check/planted.h"

#include <memory>
#include <stdexcept>
#include <utility>

#include "core/dispersion.h"
#include "dynamic/random_adversary.h"
#include "sim/algorithm.h"

namespace dyndisp::check {

namespace {

/// Valid random graphs until kDisconnectRound, then two disjoint paths
/// forever: every port label stays well-formed, only connectivity breaks.
class PlantedDisconnectAdversary final : public Adversary {
 public:
  PlantedDisconnectAdversary(std::size_t n, std::uint64_t seed)
      : n_(n), inner_(n, n / 3, seed) {}

  std::string name() const override { return "planted-disconnect"; }
  std::size_t node_count() const override { return n_; }

  Graph next_graph(Round r, const Configuration& conf) override {
    if (r < kDisconnectRound) return inner_.next_graph(r, conf);
    std::vector<std::pair<NodeId, NodeId>> edges;
    const std::size_t half = n_ / 2;
    for (NodeId v = 1; v < half; ++v) edges.emplace_back(v - 1, v);
    for (NodeId v = half + 1; v < n_; ++v) edges.emplace_back(v - 1, v);
    return Graph::from_edges(n_, edges);
  }

 private:
  std::size_t n_;
  RandomAdversary inner_;
};

/// Wraps a real Algorithm 4 robot but refuses to move from kLazyRound on
/// -- the "skipped move" bug class. It still claims the paper's lemmas, so
/// the progress oracle must convict it.
class LazyRobot final : public RobotAlgorithm {
 public:
  explicit LazyRobot(std::unique_ptr<RobotAlgorithm> inner)
      : inner_(std::move(inner)) {}

  std::unique_ptr<RobotAlgorithm> clone() const override {
    return std::make_unique<LazyRobot>(inner_->clone());
  }

  Port step(const RobotView& view) override {
    if (view.round >= kLazyRound) return kInvalidPort;
    return inner_->step(view);
  }

  void serialize(BitWriter& out) const override { inner_->serialize(out); }
  std::string name() const override {
    return "planted-lazy(" + inner_->name() + ")";
  }
  bool requires_global_comm() const override {
    return inner_->requires_global_comm();
  }
  bool requires_neighborhood() const override {
    return inner_->requires_neighborhood();
  }

 private:
  std::unique_ptr<RobotAlgorithm> inner_;
};

}  // namespace

Toolbox planted_toolbox(const std::string& plant) {
  Toolbox toolbox;
  if (plant == "disconnect") {
    toolbox.add_adversary(
        kPlantedDisconnectAdversary,
        [](const std::string&, std::size_t n, std::uint64_t seed) {
          return std::make_unique<PlantedDisconnectAdversary>(n, seed);
        });
    toolbox.restrict_adversaries({kPlantedDisconnectAdversary});
  } else if (plant == "lazy") {
    toolbox.add_algorithm(
        kPlantedLazyAlgorithm,
        [](std::uint64_t) {
          const AlgorithmFactory inner = core::dispersion_factory_memoized();
          AlgorithmFactory factory = [inner](RobotId id, std::size_t k) {
            return std::make_unique<LazyRobot>(inner(id, k));
          };
          return campaign::AlgorithmChoice{std::move(factory), true, true};
        },
        /*claims_lemmas=*/true);
    toolbox.restrict_algorithms({kPlantedLazyAlgorithm});
  } else {
    throw std::invalid_argument("unknown plant '" + plant +
                                "' (disconnect|lazy)");
  }
  return toolbox;
}

}  // namespace dyndisp::check
