// Experiment harness: run one (adversary, placement, algorithm) tuple, or a
// seed sweep of them, collecting the summary statistics the benches print.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "robots/configuration.h"
#include "sim/algorithm.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "util/stats.h"

namespace dyndisp::analysis {

/// One fully-specified trial. Fresh adversary/placement/faults are created
/// per trial so that seed sweeps are independent.
struct TrialSpec {
  std::function<std::unique_ptr<Adversary>(std::uint64_t seed)> adversary;
  std::function<Configuration(std::uint64_t seed)> placement;
  AlgorithmFactory algorithm;
  std::function<FaultSchedule(std::uint64_t seed)> faults;  // optional
  EngineOptions options;
};

/// Runs a single trial with the given seed.
RunResult run_trial(const TrialSpec& spec, std::uint64_t seed);

/// Aggregates over `trials` seeds (seed = base_seed + i).
struct SweepSummary {
  Summary rounds;
  Summary moves;
  Summary memory_bits;
  Summary max_occupied;
  std::size_t dispersed_count = 0;
  std::size_t trials = 0;
};
SweepSummary run_sweep(const TrialSpec& spec, std::size_t trials,
                       std::uint64_t base_seed = 1);

}  // namespace dyndisp::analysis
