#include "analysis/verify.h"

#include <sstream>

#include "util/bits.h"

namespace dyndisp::analysis {

std::string check_progress_every_round(const RunResult& result) {
  if (result.occupied_per_round.empty())
    return "run was not recorded with record_progress";
  const auto& occ = result.occupied_per_round;
  for (std::size_t i = 0; i + 1 < occ.size(); ++i) {
    if (occ[i] < result.k && occ[i + 1] < occ[i] + 1) {
      std::ostringstream os;
      os << "no progress in round " << i << ": occupied " << occ[i] << " -> "
         << occ[i + 1] << " (k=" << result.k << ")";
      return os.str();
    }
  }
  return {};
}

std::string check_occupied_monotone(const RunResult& result) {
  if (result.occupied_per_round.empty())
    return "run was not recorded with record_progress";
  const auto& occ = result.occupied_per_round;
  for (std::size_t i = 0; i + 1 < occ.size(); ++i) {
    if (occ[i + 1] < occ[i]) {
      std::ostringstream os;
      os << "occupied count dropped in round " << i << ": " << occ[i] << " -> "
         << occ[i + 1];
      return os.str();
    }
  }
  return {};
}

std::string check_round_bound(const RunResult& result) {
  if (!result.dispersed) return "run did not disperse";
  const std::size_t bound = result.k - result.initial_occupied + 1;
  if (result.rounds > bound) {
    std::ostringstream os;
    os << "dispersion took " << result.rounds << " rounds, bound is " << bound
       << " (k=" << result.k << ", initially occupied "
       << result.initial_occupied << ")";
    return os.str();
  }
  return {};
}

std::string check_memory_bound(const RunResult& result, std::size_t slack) {
  const std::size_t bound =
      bit_width_for(static_cast<std::uint64_t>(result.k) + 1) + slack;
  if (result.max_memory_bits > bound) {
    std::ostringstream os;
    os << "robot memory peaked at " << result.max_memory_bits
       << " bits, bound is " << bound << " (k=" << result.k << ")";
    return os.str();
  }
  return {};
}

std::string check_faulty_round_bound(const RunResult& result,
                                     std::size_t slack) {
  if (!result.dispersed) return "run did not disperse";
  if (!result.final_config.is_dispersed())
    return "final configuration has a multiplicity node";
  const std::size_t bound = result.k - result.crashed + slack;
  if (result.rounds > bound) {
    std::ostringstream os;
    os << "faulty dispersion took " << result.rounds << " rounds, bound is "
       << bound << " (k=" << result.k << ", f=" << result.crashed << ")";
    return os.str();
  }
  return {};
}

}  // namespace dyndisp::analysis
