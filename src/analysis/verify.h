// Post-hoc verifiers tying run results back to the paper's lemmas.
// Each check returns an empty string on success, else a human-readable
// description of the first violation (gtest-friendly).
#pragma once

#include <cstddef>
#include <string>

#include "sim/engine.h"

namespace dyndisp::analysis {

/// Lemma 7: with Algorithm 4, fault-free, the number of occupied nodes
/// grows by at least one every round until dispersion. Requires the run to
/// have been recorded with record_progress.
std::string check_progress_every_round(const RunResult& result);

/// Lemma 6 corollary: the occupied-node count never decreases (fault-free).
std::string check_occupied_monotone(const RunResult& result);

/// Theorem 4: dispersion within k - initial_occupied + 1 rounds... the
/// sharp per-round progress bound gives rounds <= k - initial_occupied + 1;
/// this checks the asymptotic claim rounds <= k (and dispersion happened).
std::string check_round_bound(const RunResult& result);

/// Lemma 8: persistent memory of every robot stayed within
/// ceil(log2(k+1)) + slack bits.
std::string check_memory_bound(const RunResult& result, std::size_t slack = 0);

/// Theorem 5: with f crashes, dispersion within k - f rounds + slack, and
/// all alive robots are on distinct nodes.
std::string check_faulty_round_bound(const RunResult& result,
                                     std::size_t slack = 1);

}  // namespace dyndisp::analysis
