#include "analysis/experiment.h"

namespace dyndisp::analysis {

RunResult run_trial(const TrialSpec& spec, std::uint64_t seed) {
  auto adversary = spec.adversary(seed);
  Configuration initial = spec.placement(seed);
  FaultSchedule faults =
      spec.faults ? spec.faults(seed) : FaultSchedule::none();
  Engine engine(*adversary, std::move(initial), spec.algorithm, spec.options,
                std::move(faults));
  return engine.run();
}

SweepSummary run_sweep(const TrialSpec& spec, std::size_t trials,
                       std::uint64_t base_seed) {
  SweepSummary summary;
  summary.trials = trials;
  for (std::size_t i = 0; i < trials; ++i) {
    const RunResult result = run_trial(spec, base_seed + i);
    summary.rounds.add(static_cast<double>(result.rounds));
    summary.moves.add(static_cast<double>(result.total_moves));
    summary.memory_bits.add(static_cast<double>(result.max_memory_bits));
    summary.max_occupied.add(static_cast<double>(result.max_occupied));
    if (result.dispersed) ++summary.dispersed_count;
  }
  return summary;
}

}  // namespace dyndisp::analysis
