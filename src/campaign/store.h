// The campaign result store: one JSONL record per trial plus a manifest,
// laid out as
//
//   <dir>/spec.json       copy of the spec the store was created from
//   <dir>/results.jsonl   one self-contained JSON object per line/trial
//   <dir>/manifest.json   campaign identity + per-invocation run counters
//
// Records are appended under a mutex and flushed per line, so a campaign
// killed mid-run leaves a readable store; `load()` tolerates a torn final
// line. Resume works by skipping every job whose id already has a record.
// The aggregator folds records (in job-index order, so floating-point
// accumulation is identical regardless of the thread count or completion
// order that produced the store) into util/stats.h summaries grouped by
// tuple, rendered as the usual ASCII/CSV tables.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/spec.h"
#include "util/stats.h"

namespace dyndisp::campaign {

/// One trial outcome, as persisted. `ok == false` means the trial threw;
/// `error` holds the message and the metric fields are meaningless.
struct TrialRecord {
  JobSpec job;
  std::string spec_hash;
  bool ok = true;
  std::string error;
  bool dispersed = false;
  std::uint64_t rounds = 0;
  std::uint64_t moves = 0;
  std::uint64_t memory_bits = 0;
  std::uint64_t max_occupied = 0;
  std::uint64_t crashed = 0;
  double wall_ms = 0.0;
};

/// Counters for one scheduler invocation, recorded in the manifest's
/// "runs" array (the audit trail that proves a resume did not re-run
/// finished trials: its wall_ms only covers the jobs it executed).
struct RunCounters {
  std::size_t executed = 0;
  std::size_t skipped = 0;
  std::size_t failed = 0;
  double wall_ms = 0.0;
  /// In-process worker lanes the invocation actually used (the resolved
  /// value, never the "auto" sentinel) -- echoed so a stored run is
  /// reproducible without knowing the machine it ran on.
  std::size_t threads = 0;
  /// Worker *processes* for coordinator runs (0 for in-process runs).
  std::size_t workers = 0;
};

class ResultStore {
 public:
  /// Opens (creating if needed) the store directory. No files are written
  /// until initialize() or append().
  explicit ResultStore(std::string dir);
  ~ResultStore();
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  const std::string& dir() const { return dir_; }
  std::string spec_path() const { return dir_ + "/spec.json"; }
  std::string results_path() const { return dir_ + "/results.jsonl"; }
  std::string manifest_path() const { return dir_ + "/manifest.json"; }

  /// Writes the spec copy (if not already present) so `resume <dir>` needs
  /// no other input.
  void initialize(const CampaignSpec& spec);

  /// Loads all complete records currently on disk (empty if none). A
  /// truncated trailing line -- the signature of a killed run -- is ignored;
  /// an unparsable line followed by further records is real corruption and
  /// throws std::runtime_error rather than silently dropping the tail.
  std::vector<TrialRecord> load() const;

  /// Crash-tolerant mode: when on, every append() is fsync'd after the
  /// write, so a SIGKILLed process loses at most the torn trailing line
  /// that load()/append() already recover from. Service worker shards run
  /// durable; the in-process scheduler keeps the cheaper flush-only mode.
  void set_durable(bool durable) { durable_ = durable; }
  bool durable() const { return durable_; }

  /// Appends one record and flushes it (fsync when durable; see
  /// set_durable); safe to call from worker threads. The first append
  /// truncates any torn trailing line left by a killed run so the new
  /// record starts on its own line.
  void append(const TrialRecord& record);

  /// Atomically rewrites results.jsonl as `records` sorted by (job index,
  /// seed) and deduplicated by job id (first occurrence in the sorted
  /// order wins), via a temp file + rename so a crash mid-merge leaves
  /// either the old or the new file, never a mix. Lines are serialized by
  /// the same function append() uses, so a replace_all of the records a
  /// single-threaded run would produce is bitwise identical to that run's
  /// file. Returns the record count written.
  std::size_t replace_all(std::vector<TrialRecord> records);

  /// Rewrites the manifest: campaign identity, job totals, completion count,
  /// and the full history of run counters (previous runs are preserved and
  /// `latest` is appended).
  void record_run(const CampaignSpec& spec, std::size_t total_jobs,
                  std::size_t completed, const RunCounters& latest);

  /// Run counters parsed back from the manifest (empty if no manifest).
  std::vector<RunCounters> run_history() const;

 private:
  std::string dir_;
  std::mutex mu_;
  int fd_ = -1;  ///< Lazily opened O_APPEND handle for results.jsonl.
  bool durable_ = false;
};

/// One record as the exact single JSONL line append() writes (no trailing
/// newline). Exposed so the service's shard merge and tests can reproduce
/// store bytes without an append handle.
std::string record_to_jsonl(const TrialRecord& record);

/// Per-tuple aggregate of a campaign's records (seeds folded together).
struct GroupSummary {
  JobSpec tuple;  ///< Representative job; its seed field is meaningless.
  Summary rounds;
  Summary moves;
  Summary memory_bits;
  Summary max_occupied;
  std::size_t dispersed = 0;
  std::size_t trials = 0;
  std::size_t failed = 0;
  double wall_ms = 0.0;
};

/// Groups records by (algorithm, adversary, n, k, comm, faults) in job-index
/// order. Records are first sorted by job index so the aggregate is a pure
/// function of the record set.
std::vector<GroupSummary> aggregate(std::vector<TrialRecord> records);

/// ASCII report table over the aggregated groups.
std::string render_report(const std::string& campaign_name,
                          const std::vector<GroupSummary>& groups);

/// CSV export of the aggregated groups.
void write_report_csv(const std::string& path,
                      const std::vector<GroupSummary>& groups);

}  // namespace dyndisp::campaign
