// The campaign scheduler: expands a spec into its job list, subtracts the
// jobs already present in the result store (resume), and fans the rest over
// the util/parallel.h ThreadPool. Each job is isolated -- a throwing trial
// produces a failure record instead of aborting the campaign -- and progress
// is reported monotonically as jobs complete. Aggregate results are a pure
// function of the record set (see store.h), so a campaign run at any thread
// count produces the identical report.
#pragma once

#include <cstddef>
#include <ostream>

#include "campaign/spec.h"
#include "campaign/store.h"

namespace dyndisp::campaign {

/// Outcome of one run_campaign invocation. `completed` counts all records in
/// the store afterwards (executed + previously present).
struct CampaignOutcome {
  std::size_t total = 0;     ///< Jobs in the spec's expansion.
  std::size_t executed = 0;  ///< Trials run by this invocation.
  std::size_t skipped = 0;   ///< Jobs already in the store (resume).
  std::size_t failed = 0;    ///< Executed trials that threw.
  std::size_t completed = 0;
  double wall_ms = 0.0;      ///< Wall time of this invocation only.
  std::size_t threads = 0;   ///< Worker lanes actually used (auto resolved).
};

/// Worker-lane count for `threads == 0` ("auto"): the machine's hardware
/// concurrency, with a floor of 1 when it cannot be determined. Shared by
/// the in-process scheduler and the service coordinator's process fleet.
std::size_t resolve_auto_threads(std::size_t threads);

/// Runs (or resumes) `spec` against `store` with `threads` worker lanes;
/// `threads == 0` means auto (hardware concurrency), and the resolved value
/// is echoed in the manifest's run counters so a stored run is reproducible.
/// Throws std::invalid_argument if the store holds records of a different
/// campaign (spec-hash mismatch). Writes the spec copy and the manifest;
/// when `progress` is non-null, one line per completed job is streamed to it.
///
/// `record_timing = false` zeroes the per-record wall_ms field -- the one
/// nondeterministic value in results.jsonl -- so two invocations of the
/// same spec+seed produce byte-identical record lines (line ORDER still
/// depends on the thread count; compare sorted, or run with threads = 1).
/// The manifest's per-invocation counters keep real wall times either way.
CampaignOutcome run_campaign(const CampaignSpec& spec, ResultStore& store,
                             std::size_t threads,
                             std::ostream* progress = nullptr,
                             bool record_timing = true);

}  // namespace dyndisp::campaign
