#include "campaign/registry.h"

#include <stdexcept>

#include "baselines/blind_walk.h"
#include "baselines/dfs_dispersion.h"
#include "baselines/greedy_local.h"
#include "baselines/random_walk.h"
#include "core/dispersion.h"
#include "dynamic/churn_adversary.h"
#include "dynamic/clique_trap_adversary.h"
#include "dynamic/path_trap_adversary.h"
#include "dynamic/random_adversary.h"
#include "dynamic/ring_adversary.h"
#include "dynamic/star_star_adversary.h"
#include "dynamic/static_adversary.h"
#include "dynamic/t_interval_adversary.h"
#include "graph/builders.h"
#include "robots/placement.h"
#include "util/rng.h"

namespace dyndisp::campaign {

namespace {

template <typename Map>
std::vector<std::string> keys_of(const Map& map) {
  std::vector<std::string> out;
  out.reserve(map.size());
  for (const auto& [name, fn] : map) out.push_back(name);
  return out;
}

template <typename Map>
const typename Map::mapped_type& lookup(const Map& map, const std::string& name,
                                        const char* category) {
  const auto it = map.find(name);
  if (it == map.end())
    throw std::invalid_argument(std::string("unknown ") + category + " '" +
                                name + "'");
  return it->second;
}

}  // namespace

const Registry& Registry::instance() {
  static const Registry registry;
  return registry;
}

Registry::Registry() {
  using core::PlannerConfig;

  // -- Algorithms (seeds parameterize only the randomized walkers). --
  algorithms_["alg4"] = [](std::uint64_t) {
    return AlgorithmChoice{core::dispersion_factory_memoized(), true, true};
  };
  algorithms_["alg4-bfs"] = [](std::uint64_t) {
    return AlgorithmChoice{
        core::dispersion_factory_with_config({PlannerConfig::Tree::kBfs, 0}),
        true, true};
  };
  algorithms_["alg4-1path"] = [](std::uint64_t) {
    return AlgorithmChoice{
        core::dispersion_factory_with_config({PlannerConfig::Tree::kDfs, 1}),
        true, true};
  };
  algorithms_["dfs"] = [](std::uint64_t) {
    return AlgorithmChoice{baselines::dfs_dispersion_factory(), false, false};
  };
  algorithms_["greedy"] = [](std::uint64_t) {
    return AlgorithmChoice{baselines::greedy_local_factory(), false, true};
  };
  algorithms_["random-walk"] = [](std::uint64_t seed) {
    return AlgorithmChoice{baselines::random_walk_factory(seed * 911 + 3),
                           false, false};
  };
  algorithms_["blind-walk"] = [](std::uint64_t) {
    return AlgorithmChoice{baselines::blind_walk_factory(), true, false};
  };

  // -- Static graph families. --
  families_["path"] = [](std::size_t n, std::uint64_t) {
    return builders::path(n);
  };
  families_["cycle"] = [](std::size_t n, std::uint64_t) {
    return builders::cycle(n);
  };
  families_["star"] = [](std::size_t n, std::uint64_t) {
    return builders::star(n);
  };
  families_["complete"] = [](std::size_t n, std::uint64_t) {
    return builders::complete(n);
  };
  families_["grid"] = [](std::size_t n, std::uint64_t) {
    return builders::grid((n + 3) / 4, 4);
  };
  families_["torus"] = [](std::size_t n, std::uint64_t) {
    return builders::torus(3, (n + 2) / 3);
  };
  families_["hypercube"] = [](std::size_t n, std::uint64_t) {
    std::size_t d = 1;
    while ((std::size_t{1} << (d + 1)) <= n) ++d;
    return builders::hypercube(d);
  };
  families_["btree"] = [](std::size_t n, std::uint64_t) {
    return builders::binary_tree(n);
  };
  families_["lollipop"] = [](std::size_t n, std::uint64_t) {
    return builders::lollipop(n / 2, n - n / 2);
  };
  families_["random"] = [](std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    return builders::random_connected(n, n / 2, rng);
  };

  // -- Adversaries (dynamic-graph generators). --
  adversaries_["random"] = [](const std::string&, std::size_t n,
                              std::uint64_t seed) -> std::unique_ptr<Adversary> {
    return std::make_unique<RandomAdversary>(n, n / 3, seed);
  };
  adversaries_["tree"] = [](const std::string&, std::size_t n,
                            std::uint64_t seed) -> std::unique_ptr<Adversary> {
    return std::make_unique<RandomAdversary>(n, 0, seed);
  };
  adversaries_["churn"] = [](const std::string&, std::size_t n,
                             std::uint64_t seed) -> std::unique_ptr<Adversary> {
    Rng rng(seed);
    return std::make_unique<ChurnAdversary>(
        builders::random_connected(n, n / 2, rng), 2, seed);
  };
  adversaries_["star-star"] =
      [](const std::string&, std::size_t n,
         std::uint64_t seed) -> std::unique_ptr<Adversary> {
    return std::make_unique<StarStarAdversary>(n, true, seed);
  };
  adversaries_["ring"] = [](const std::string&, std::size_t n,
                            std::uint64_t seed) -> std::unique_ptr<Adversary> {
    return std::make_unique<RingAdversary>(
        n, RingAdversary::Strategy::kRandomEdge, seed);
  };
  adversaries_["ring-worst"] =
      [](const std::string&, std::size_t n,
         std::uint64_t seed) -> std::unique_ptr<Adversary> {
    return std::make_unique<RingAdversary>(
        n, RingAdversary::Strategy::kWorstEdge, seed);
  };
  adversaries_["t-interval"] =
      [](const std::string&, std::size_t n,
         std::uint64_t seed) -> std::unique_ptr<Adversary> {
    return std::make_unique<TIntervalAdversary>(
        std::make_unique<RandomAdversary>(n, n / 4, seed), 4);
  };
  adversaries_["static"] = [this](const std::string& family, std::size_t n,
                                  std::uint64_t seed)
      -> std::unique_ptr<Adversary> {
    return std::make_unique<StaticAdversary>(this->family(family, n, seed));
  };
  adversaries_["static-shuffle"] = [this](const std::string& family,
                                          std::size_t n, std::uint64_t seed)
      -> std::unique_ptr<Adversary> {
    return std::make_unique<StaticAdversary>(this->family(family, n, seed),
                                             true, seed);
  };
  adversaries_["path-trap"] =
      [](const std::string&, std::size_t n,
         std::uint64_t) -> std::unique_ptr<Adversary> {
    return std::make_unique<PathTrapAdversary>(n);
  };
  adversaries_["clique-trap"] =
      [](const std::string&, std::size_t n,
         std::uint64_t) -> std::unique_ptr<Adversary> {
    return std::make_unique<CliqueTrapAdversary>(n);
  };

  // -- Initial placements. --
  placements_["rooted"] = [](std::size_t n, std::size_t k, std::size_t,
                             std::uint64_t) {
    return placement::rooted(n, k);
  };
  placements_["random"] = [](std::size_t n, std::size_t k, std::size_t,
                             std::uint64_t seed) {
    Rng rng(seed);
    return placement::uniform_random(n, k, rng);
  };
  placements_["grouped"] = [](std::size_t n, std::size_t k, std::size_t groups,
                              std::uint64_t seed) {
    // Throw (don't assert) here: specs are untrusted input, and a campaign
    // records a per-job failure instead of aborting the whole sweep.
    if (groups == 0 || groups > k || groups > n)
      throw std::invalid_argument(
          "grouped placement needs 1 <= groups <= min(k, n); got groups=" +
          std::to_string(groups) + " k=" + std::to_string(k) +
          " n=" + std::to_string(n));
    Rng rng(seed);
    return placement::grouped(n, k, groups, rng);
  };
  placements_["figure1"] = [](std::size_t n, std::size_t k, std::size_t,
                              std::uint64_t) {
    return placement::figure1(n, k);
  };
}

AlgorithmChoice Registry::algorithm(const std::string& name,
                                    std::uint64_t seed) const {
  return lookup(algorithms_, name, "algorithm")(seed);
}

std::unique_ptr<Adversary> Registry::adversary(const std::string& name,
                                               const std::string& family,
                                               std::size_t n,
                                               std::uint64_t seed) const {
  return lookup(adversaries_, name, "adversary")(family, n, seed);
}

Graph Registry::family(const std::string& name, std::size_t n,
                       std::uint64_t seed) const {
  return lookup(families_, name, "family")(n, seed);
}

Configuration Registry::placement(const std::string& name, std::size_t n,
                                  std::size_t k, std::size_t groups,
                                  std::uint64_t seed) const {
  return lookup(placements_, name, "placement")(n, k, groups, seed);
}

bool Registry::has_algorithm(const std::string& name) const {
  return algorithms_.count(name) != 0;
}
bool Registry::has_adversary(const std::string& name) const {
  return adversaries_.count(name) != 0;
}
bool Registry::has_family(const std::string& name) const {
  return families_.count(name) != 0;
}
bool Registry::has_placement(const std::string& name) const {
  return placements_.count(name) != 0;
}

std::vector<std::string> Registry::algorithm_names() const {
  return keys_of(algorithms_);
}
std::vector<std::string> Registry::adversary_names() const {
  return keys_of(adversaries_);
}
std::vector<std::string> Registry::family_names() const {
  return keys_of(families_);
}
std::vector<std::string> Registry::placement_names() const {
  return keys_of(placements_);
}

}  // namespace dyndisp::campaign
