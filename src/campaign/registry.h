// The shared factory registry: one place that maps string names to
// constructors for every algorithm, adversary, static graph family, and
// placement in the library. Extracted from the duplicated if-chains in
// tools/dyndisp_sim.cpp and the bench binaries so that the CLI tools, the
// campaign engine, and the benches all resolve the same name to the same
// construction (same seeds, same parameters) -- which is what makes a
// campaign record comparable to a one-off dyndisp_sim run.
//
// Names are stable identifiers (they appear in campaign specs, JSONL
// records, and CLI flags); renaming one is a format break.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "graph/graph.h"
#include "robots/configuration.h"
#include "sim/algorithm.h"

namespace dyndisp::campaign {

/// An algorithm factory plus the model requirements dyndisp_sim used to
/// default --comm and --knowledge from.
struct AlgorithmChoice {
  AlgorithmFactory factory;
  bool needs_global = false;
  bool needs_knowledge = false;
};

/// Immutable singleton registry. All lookups throw std::invalid_argument
/// naming the offending key and category on an unknown name, so spec
/// validation errors read like CLI errors.
class Registry {
 public:
  static const Registry& instance();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// `seed` parameterizes the few randomized algorithms (random-walk).
  AlgorithmChoice algorithm(const std::string& name, std::uint64_t seed) const;

  /// `family` is consulted only by the static adversaries.
  std::unique_ptr<Adversary> adversary(const std::string& name,
                                       const std::string& family,
                                       std::size_t n, std::uint64_t seed) const;

  /// A static graph family instance on ~n nodes.
  Graph family(const std::string& name, std::size_t n,
               std::uint64_t seed) const;

  /// `groups` is consulted only by the grouped placement.
  Configuration placement(const std::string& name, std::size_t n,
                          std::size_t k, std::size_t groups,
                          std::uint64_t seed) const;

  bool has_algorithm(const std::string& name) const;
  bool has_adversary(const std::string& name) const;
  bool has_family(const std::string& name) const;
  bool has_placement(const std::string& name) const;

  /// Registered names in lexicographic order (deterministic for --list).
  std::vector<std::string> algorithm_names() const;
  std::vector<std::string> adversary_names() const;
  std::vector<std::string> family_names() const;
  std::vector<std::string> placement_names() const;

 private:
  Registry();

  using AlgorithmFn = std::function<AlgorithmChoice(std::uint64_t seed)>;
  using AdversaryFn = std::function<std::unique_ptr<Adversary>(
      const std::string& family, std::size_t n, std::uint64_t seed)>;
  using FamilyFn =
      std::function<Graph(std::size_t n, std::uint64_t seed)>;
  using PlacementFn = std::function<Configuration(
      std::size_t n, std::size_t k, std::size_t groups, std::uint64_t seed)>;

  std::map<std::string, AlgorithmFn> algorithms_;
  std::map<std::string, AdversaryFn> adversaries_;
  std::map<std::string, FamilyFn> families_;
  std::map<std::string, PlacementFn> placements_;
};

}  // namespace dyndisp::campaign
