#include "campaign/scheduler.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_set>
#include <vector>

#include "util/parallel.h"

namespace dyndisp::campaign {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             // NOLINTNEXTLINE-dyndisp(determinism-wallclock): feeds only
             // wall_ms, which check_determinism.sh zeroes via --no-timing
             // before any byte comparison; never part of a result digest.
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::size_t resolve_auto_threads(std::size_t threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

CampaignOutcome run_campaign(const CampaignSpec& spec, ResultStore& store,
                             std::size_t threads, std::ostream* progress,
                             bool record_timing) {
  threads = resolve_auto_threads(threads);
  // NOLINTNEXTLINE-dyndisp(determinism-wallclock): campaign wall_ms is
  // reporting-only metadata (manifest run counters), not replayable output.
  const auto campaign_start = std::chrono::steady_clock::now();
  const std::string spec_hash = spec.hash();
  const std::vector<JobSpec> jobs = spec.expand();

  // Resume: every job whose id already has a record is skipped. Records
  // carrying a different spec hash mean the directory belongs to another
  // campaign -- refuse rather than silently mixing result sets.
  //
  // Determinism audit (dyndisp_lint determinism-unordered-iter): `done` is
  // hash-ordered but membership-only -- it is probed with count() and never
  // iterated, so no output order can depend on it. The pending list below
  // preserves the spec expansion's deterministic job order.
  std::unordered_set<std::string> done;
  for (const TrialRecord& record : store.load()) {
    if (record.spec_hash != spec_hash)
      throw std::invalid_argument(
          "result store " + store.dir() + " holds records of a different "
          "campaign (spec hash " + record.spec_hash + " != " + spec_hash +
          ")");
    done.insert(record.job.id());
  }

  std::vector<const JobSpec*> pending;
  pending.reserve(jobs.size());
  for (const JobSpec& job : jobs)
    if (!done.count(job.id())) pending.push_back(&job);

  CampaignOutcome outcome;
  outcome.total = jobs.size();
  outcome.skipped = jobs.size() - pending.size();

  store.initialize(spec);

  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> reported{0};
  std::mutex progress_mu;

  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

  parallel_for(pool.get(), pending.size(), [&](std::size_t i) {
    const JobSpec& job = *pending[i];
    TrialRecord record;
    record.job = job;
    record.spec_hash = spec_hash;
    // NOLINTNEXTLINE-dyndisp(determinism-wallclock): per-job wall_ms only;
    // record_timing=false (--no-timing) zeroes it for byte-exact compares.
    const auto start = std::chrono::steady_clock::now();
    try {
      const analysis::TrialSpec trial = make_trial_spec(job);
      const RunResult result = analysis::run_trial(trial, job.seed);
      record.dispersed = result.dispersed;
      record.rounds = result.rounds;
      record.moves = result.total_moves;
      record.memory_bits = result.max_memory_bits;
      record.max_occupied = result.max_occupied;
      record.crashed = result.crashed;
    } catch (const std::exception& e) {
      record.ok = false;
      record.error = e.what();
      failed.fetch_add(1, std::memory_order_relaxed);
    }
    record.wall_ms = record_timing ? ms_since(start) : 0.0;
    store.append(record);
    // Progress is monotonic: the counter only grows, and each line is
    // emitted under the lock with the value it claimed.
    if (progress != nullptr) {
      std::lock_guard<std::mutex> lock(progress_mu);
      const std::size_t n = reported.fetch_add(1) + 1;
      // Count against the current expansion only: `done` may hold records
      // outside it (the spec hash ignores the seed count, so a store built
      // with more seeds is a valid resume target).
      (*progress) << "[" << outcome.skipped + n << "/" << jobs.size() << "] "
                  << job.id()
                  << (record.ok
                          ? (record.dispersed ? "  dispersed in " +
                                                    std::to_string(record.rounds) +
                                                    " rounds"
                                              : "  NOT dispersed (" +
                                                    std::to_string(record.rounds) +
                                                    " rounds)")
                          : "  FAILED: " + record.error)
                  << "\n";
      progress->flush();
    }
  });

  outcome.executed = pending.size();
  outcome.failed = failed.load();
  outcome.completed = outcome.skipped + outcome.executed;
  outcome.wall_ms = ms_since(campaign_start);
  outcome.threads = threads;

  RunCounters counters;
  counters.executed = outcome.executed;
  counters.skipped = outcome.skipped;
  counters.failed = outcome.failed;
  counters.wall_ms = outcome.wall_ms;
  counters.threads = threads;
  store.record_run(spec, outcome.total, outcome.completed, counters);
  return outcome;
}

}  // namespace dyndisp::campaign
