#include "campaign/store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"
#include "util/json.h"
#include "util/table.h"

namespace dyndisp::campaign {

std::string record_to_jsonl(const TrialRecord& r) {
  std::ostringstream out;
  out.precision(17);  // max_digits10: wall_ms round-trips exactly
  out << '{' << "\"job\": " << r.job.index << ", \"id\": \""
      << json_escape(r.job.id()) << "\", \"spec_hash\": \""
      << json_escape(r.spec_hash) << "\", \"algorithm\": \""
      << json_escape(r.job.algorithm) << "\", \"adversary\": \""
      << json_escape(r.job.adversary) << "\", \"family\": \""
      << json_escape(r.job.family) << "\", \"placement\": \""
      << json_escape(r.job.placement) << "\", \"comm\": \""
      << json_escape(r.job.comm) << "\", \"n\": " << r.job.n
      << ", \"k\": " << r.job.k << ", \"groups\": " << r.job.groups
      << ", \"faults\": " << r.job.faults
      << ", \"max_rounds\": " << r.job.max_rounds
      << ", \"seed\": " << r.job.seed << ", \"ok\": "
      << (r.ok ? "true" : "false");
  if (!r.ok) out << ", \"error\": \"" << json_escape(r.error) << '"';
  out << ", \"dispersed\": " << (r.dispersed ? "true" : "false")
      << ", \"rounds\": " << r.rounds << ", \"moves\": " << r.moves
      << ", \"memory_bits\": " << r.memory_bits
      << ", \"max_occupied\": " << r.max_occupied
      << ", \"crashed\": " << r.crashed << ", \"wall_ms\": " << r.wall_ms
      << '}';
  return out.str();
}

namespace {

TrialRecord record_from_json(const JsonValue& v) {
  TrialRecord r;
  const auto u = [&v](const char* key) -> std::uint64_t {
    const JsonValue* f = v.find(key);
    return f ? f->as_uint() : 0;
  };
  r.job.index = static_cast<std::size_t>(u("job"));
  if (const JsonValue* f = v.find("spec_hash")) r.spec_hash = f->as_string();
  if (const JsonValue* f = v.find("algorithm"))
    r.job.algorithm = f->as_string();
  if (const JsonValue* f = v.find("adversary"))
    r.job.adversary = f->as_string();
  if (const JsonValue* f = v.find("family")) r.job.family = f->as_string();
  if (const JsonValue* f = v.find("placement"))
    r.job.placement = f->as_string();
  if (const JsonValue* f = v.find("comm")) r.job.comm = f->as_string();
  r.job.n = static_cast<std::size_t>(u("n"));
  r.job.k = static_cast<std::size_t>(u("k"));
  r.job.groups = static_cast<std::size_t>(u("groups"));
  r.job.faults = static_cast<std::size_t>(u("faults"));
  r.job.max_rounds = u("max_rounds");
  r.job.seed = u("seed");
  if (const JsonValue* f = v.find("ok")) r.ok = f->as_bool();
  if (const JsonValue* f = v.find("error")) r.error = f->as_string();
  if (const JsonValue* f = v.find("dispersed")) r.dispersed = f->as_bool();
  r.rounds = u("rounds");
  r.moves = u("moves");
  r.memory_bits = u("memory_bits");
  r.max_occupied = u("max_occupied");
  r.crashed = u("crashed");
  if (const JsonValue* f = v.find("wall_ms")) r.wall_ms = f->as_number();
  return r;
}

/// Tuple identity for grouping (everything but the seed).
std::string tuple_key(const JobSpec& job) {
  std::ostringstream out;
  out << job.algorithm << '|' << job.adversary << '|' << job.n << '|' << job.k
      << '|' << job.comm << '|' << job.faults;
  return out.str();
}

/// Byte length of the newline-terminated prefix of `path`: everything up to
/// and including the last '\n' (0 if the file has none). Bytes past it are a
/// torn final line from a killed run. On an I/O failure returns `size`
/// (i.e. "keep everything") so the caller never truncates valid records.
std::uintmax_t complete_prefix_size(const std::string& path,
                                    std::uintmax_t size) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return size;
  std::streamoff end = static_cast<std::streamoff>(size);
  char buf[4096];
  while (end > 0) {
    const std::streamoff begin =
        std::max<std::streamoff>(0, end - static_cast<std::streamoff>(sizeof buf));
    const std::streamoff len = end - begin;
    in.seekg(begin);
    in.read(buf, len);
    if (!in) return size;
    for (std::streamoff i = len - 1; i >= 0; --i)
      if (buf[i] == '\n') return static_cast<std::uintmax_t>(begin + i + 1);
    end = begin;
  }
  return 0;
}

}  // namespace

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

ResultStore::~ResultStore() {
  if (fd_ >= 0) ::close(fd_);
}

void ResultStore::initialize(const CampaignSpec& spec) {
  if (!std::filesystem::exists(spec_path())) {
    std::ofstream out(spec_path());
    out << spec.source_text();
    if (spec.source_text().empty() || spec.source_text().back() != '\n')
      out << '\n';
  }
}

std::vector<TrialRecord> ResultStore::load() const {
  std::vector<TrialRecord> records;
  std::ifstream in(results_path());
  if (!in) return records;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    try {
      records.push_back(record_from_json(JsonValue::parse(line)));
    } catch (const std::invalid_argument& e) {
      // A torn final line from a killed run is expected: everything before
      // it is valid and the interrupted trial re-runs on resume. A bad line
      // *followed by more records* is real corruption -- silently dropping
      // the tail would present a truncated set as complete.
      std::string rest;
      while (std::getline(in, rest)) {
        if (rest.find_first_not_of(" \t\r") != std::string::npos)
          throw std::runtime_error(
              results_path() + ":" + std::to_string(lineno) +
              ": unparsable record followed by more data (" + e.what() + ")");
      }
      break;
    }
  }
  return records;
}

void ResultStore::append(const TrialRecord& record) {
  const std::string line = record_to_jsonl(record) + '\n';
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) {
    // A killed run can leave a torn final line. Appending after it would
    // fuse the new record onto the fragment, corrupting the line mid-file;
    // truncate back to the last complete line first.
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(results_path(), ec);
    if (!ec && size > 0) {
      const std::uintmax_t keep = complete_prefix_size(results_path(), size);
      if (keep < size) std::filesystem::resize_file(results_path(), keep);
    }
    // CLOEXEC: the service coordinator fork/execs workers; they must not
    // inherit (and hold open) the root store's append handle.
    fd_ = ::open(results_path().c_str(),
                 O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd_ < 0)
      throw std::runtime_error("cannot open " + results_path() +
                               " for append: " + std::strerror(errno));
  }
  // One write() per record: the line lands in the file in a single syscall,
  // so concurrent appenders (worker threads sharing this store) never
  // interleave bytes, and a kill between records never tears more than the
  // final line.
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("write to " + results_path() +
                               " failed: " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  // Durable mode pushes the record to disk before the job is acknowledged:
  // a SIGKILL after append() then loses nothing, and a kill *during* it at
  // most the torn line the recovery path truncates.
  if (durable_ && ::fsync(fd_) != 0)
    throw std::runtime_error("fsync of " + results_path() +
                             " failed: " + std::strerror(errno));
}

std::size_t ResultStore::replace_all(std::vector<TrialRecord> records) {
  // stable_sort keeps input order among duplicates of a job, so "first
  // occurrence wins" holds as documented (duplicates arise when a crashed
  // worker persisted a record the coordinator never saw acked and the job
  // was re-run elsewhere; payloads agree, wall_ms may not).
  std::stable_sort(records.begin(), records.end(),
            [](const TrialRecord& a, const TrialRecord& b) {
              if (a.job.index != b.job.index) return a.job.index < b.job.index;
              return a.job.seed < b.job.seed;
            });
  const std::string tmp = results_path() + ".tmp";
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Close the append handle so the rename below is not racing buffered
    // writes; the next append() reopens against the merged file.
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  std::size_t written = 0;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + tmp + " for write");
    std::string last_id;
    for (const TrialRecord& r : records) {
      const std::string id = r.job.id();
      if (!last_id.empty() && id == last_id) continue;  // dedupe by job id
      out << record_to_jsonl(r) << '\n';
      last_id = id;
      ++written;
    }
    out.flush();
    if (!out) throw std::runtime_error("write to " + tmp + " failed");
  }
  if (durable_) {
    // Make the merged contents durable before it replaces the old file.
    const int tfd = ::open(tmp.c_str(), O_RDONLY);
    if (tfd >= 0) {
      ::fsync(tfd);
      ::close(tfd);
    }
  }
  std::filesystem::rename(tmp, results_path());
  return written;
}

void ResultStore::record_run(const CampaignSpec& spec, std::size_t total_jobs,
                             std::size_t completed,
                             const RunCounters& latest) {
  std::vector<RunCounters> runs = run_history();
  runs.push_back(latest);

  std::ofstream out(manifest_path());
  JsonWriter w(out);
  w.begin_object();
  w.member("campaign", spec.name());
  w.member("spec_hash", spec.hash());
  w.member("seeds", static_cast<std::uint64_t>(spec.seeds()));
  w.member("base_seed", spec.base_seed());
  w.member("total_jobs", static_cast<std::uint64_t>(total_jobs));
  w.member("completed", static_cast<std::uint64_t>(completed));
  w.key("runs");
  w.begin_array();
  for (const RunCounters& run : runs) {
    w.begin_object();
    w.member("executed", static_cast<std::uint64_t>(run.executed));
    w.member("skipped", static_cast<std::uint64_t>(run.skipped));
    w.member("failed", static_cast<std::uint64_t>(run.failed));
    w.member("wall_ms", run.wall_ms);
    w.member("threads", static_cast<std::uint64_t>(run.threads));
    w.member("workers", static_cast<std::uint64_t>(run.workers));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

std::vector<RunCounters> ResultStore::run_history() const {
  std::vector<RunCounters> runs;
  std::ifstream in(manifest_path());
  if (!in) return runs;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const JsonValue doc = JsonValue::parse(buffer.str());
    if (const JsonValue* arr = doc.find("runs")) {
      for (const JsonValue& item : arr->items()) {
        RunCounters run;
        if (const JsonValue* f = item.find("executed"))
          run.executed = static_cast<std::size_t>(f->as_uint());
        if (const JsonValue* f = item.find("skipped"))
          run.skipped = static_cast<std::size_t>(f->as_uint());
        if (const JsonValue* f = item.find("failed"))
          run.failed = static_cast<std::size_t>(f->as_uint());
        if (const JsonValue* f = item.find("wall_ms"))
          run.wall_ms = f->as_number();
        if (const JsonValue* f = item.find("threads"))
          run.threads = static_cast<std::size_t>(f->as_uint());
        if (const JsonValue* f = item.find("workers"))
          run.workers = static_cast<std::size_t>(f->as_uint());
        runs.push_back(run);
      }
    }
  } catch (const std::invalid_argument&) {
    // Corrupt manifest: treat as no history rather than blocking a resume.
  }
  return runs;
}

std::vector<GroupSummary> aggregate(std::vector<TrialRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const TrialRecord& a, const TrialRecord& b) {
              if (a.job.index != b.job.index) return a.job.index < b.job.index;
              return a.job.seed < b.job.seed;
            });
  std::vector<GroupSummary> groups;
  for (const TrialRecord& r : records) {
    const std::string key = tuple_key(r.job);
    GroupSummary* group = nullptr;
    for (GroupSummary& g : groups)
      if (tuple_key(g.tuple) == key) {
        group = &g;
        break;
      }
    if (group == nullptr) {
      groups.emplace_back();
      group = &groups.back();
      group->tuple = r.job;
    }
    ++group->trials;
    group->wall_ms += r.wall_ms;
    if (!r.ok) {
      ++group->failed;
      continue;
    }
    if (r.dispersed) ++group->dispersed;
    group->rounds.add(static_cast<double>(r.rounds));
    group->moves.add(static_cast<double>(r.moves));
    group->memory_bits.add(static_cast<double>(r.memory_bits));
    group->max_occupied.add(static_cast<double>(r.max_occupied));
  }
  return groups;
}

std::string render_report(const std::string& campaign_name,
                          const std::vector<GroupSummary>& groups) {
  AsciiTable table({"algorithm", "adversary", "n", "k", "comm", "faults",
                    "trials", "dispersed", "rounds mean/max", "moves mean",
                    "mem bits max", "failed"});
  table.set_title("campaign: " + campaign_name);
  for (const GroupSummary& g : groups) {
    table.add_row(
        {g.tuple.algorithm, g.tuple.adversary, std::to_string(g.tuple.n),
         std::to_string(g.tuple.k), g.tuple.comm,
         std::to_string(g.tuple.faults), std::to_string(g.trials),
         std::to_string(g.dispersed) + "/" + std::to_string(g.trials),
         g.rounds.empty()
             ? "-"
             : fmt_double(g.rounds.mean(), 1) + " / " +
                   fmt_double(g.rounds.max(), 0),
         g.moves.empty() ? "-" : fmt_double(g.moves.mean(), 1),
         g.memory_bits.empty() ? "-" : fmt_double(g.memory_bits.max(), 0),
         std::to_string(g.failed)});
  }
  return table.render();
}

void write_report_csv(const std::string& path,
                      const std::vector<GroupSummary>& groups) {
  CsvWriter csv(path,
                {"algorithm", "adversary", "n", "k", "comm", "faults",
                 "trials", "dispersed", "rounds_mean", "rounds_max",
                 "moves_mean", "memory_bits_max", "failed", "wall_ms"});
  for (const GroupSummary& g : groups) {
    csv.add_row({g.tuple.algorithm, g.tuple.adversary,
                 std::to_string(g.tuple.n), std::to_string(g.tuple.k),
                 g.tuple.comm, std::to_string(g.tuple.faults),
                 std::to_string(g.trials), std::to_string(g.dispersed),
                 g.rounds.empty() ? "" : fmt_double(g.rounds.mean(), 4),
                 g.rounds.empty() ? "" : fmt_double(g.rounds.max(), 0),
                 g.moves.empty() ? "" : fmt_double(g.moves.mean(), 4),
                 g.memory_bits.empty() ? ""
                                       : fmt_double(g.memory_bits.max(), 0),
                 std::to_string(g.failed), fmt_double(g.wall_ms, 2)});
  }
}

}  // namespace dyndisp::campaign
