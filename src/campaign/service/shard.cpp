#include "campaign/service/shard.h"

#include <algorithm>
#include <filesystem>

namespace dyndisp::campaign::service {

namespace fs = std::filesystem;

std::string shard_dir(const std::string& root_dir, std::size_t index) {
  return root_dir + "/shards/worker-" + std::to_string(index);
}

std::vector<std::string> list_shard_dirs(const std::string& root_dir) {
  std::vector<std::string> dirs;
  const fs::path shards = fs::path(root_dir) / "shards";
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(shards, ec)) {
    if (!entry.is_directory()) continue;
    if (entry.path().filename().string().rfind("worker-", 0) != 0) continue;
    dirs.push_back(entry.path().string());
  }
  // directory_iterator order is filesystem-dependent; sort so merges and
  // resume scans read shards in one fixed order.
  std::sort(dirs.begin(), dirs.end());
  return dirs;
}

std::vector<TrialRecord> load_shard_records(const std::string& root_dir) {
  std::vector<TrialRecord> records;
  for (const std::string& dir : list_shard_dirs(root_dir)) {
    ResultStore shard(dir);
    std::vector<TrialRecord> loaded = shard.load();
    records.insert(records.end(), std::make_move_iterator(loaded.begin()),
                   std::make_move_iterator(loaded.end()));
  }
  return records;
}

std::size_t merge_shards(ResultStore& root, bool remove_shards) {
  // Root records go first so replace_all's first-occurrence-wins dedupe
  // prefers what an earlier merge already committed over a shard replay.
  std::vector<TrialRecord> records = root.load();
  std::vector<TrialRecord> shard_records = load_shard_records(root.dir());
  records.insert(records.end(),
                 std::make_move_iterator(shard_records.begin()),
                 std::make_move_iterator(shard_records.end()));
  const std::size_t merged = root.replace_all(std::move(records));
  if (remove_shards)
    std::filesystem::remove_all(std::filesystem::path(root.dir()) / "shards");
  return merged;
}

}  // namespace dyndisp::campaign::service
