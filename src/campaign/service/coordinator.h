// The campaign service coordinator: shards a spec's deterministic job list
// across worker *processes* and merges their shard stores back into one
// job-ordered results.jsonl.
//
// Scheduling is demand-driven: the coordinator holds the global job queue
// and feeds each worker exactly one job at a time over its stdin pipe, so a
// straggling worker never strands queued work behind it -- the moment any
// worker acks, it is handed the next pending job (work-stealing by pull).
//
// Crash tolerance: a worker that dies (SIGKILL, abort, nonzero exit) is
// reaped, its shard store is consulted -- a record the worker persisted but
// never acked counts as completed, not re-run -- and its in-flight job is
// requeued at the front of the queue for a freshly spawned replacement
// worker bound to the same shard directory. A job that takes a worker down
// `max_attempts` times (default 2) is deterministic poison: it is dropped,
// listed in the outcome, and makes the coordinator exit nonzero; everything
// else still completes.
//
// Determinism: workers append records in completion order, but the final
// merge (ResultStore::replace_all via merge_shards) rewrites the root
// results.jsonl in (job index, seed) order with the exact serializer the
// in-process scheduler uses -- so the merged store is bitwise identical to
// a single-process threads=1 run at ANY worker count, crashes included
// (modulo wall_ms, which --no-timing zeroes).
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "campaign/scheduler.h"
#include "campaign/spec.h"
#include "campaign/store.h"

namespace dyndisp::campaign::service {

struct CoordinatorOptions {
  /// Worker processes; 0 = auto (hardware concurrency), clamped to the
  /// pending job count. The resolved value is echoed in the manifest.
  std::size_t workers = 0;
  /// Path of the dyndisp_campaign binary to exec in `worker` mode; empty
  /// resolves /proc/self/exe (correct when the caller IS that binary --
  /// tests pass the path explicitly).
  std::string worker_binary;
  std::size_t seeds = 0;      ///< Seeds override forwarded to workers.
  bool record_timing = true;  ///< false => workers zero per-record wall_ms.
  /// Test hook: the FIRST incarnation of worker 0 is spawned with
  /// --die-after N (SIGKILL itself after N durable appends, pre-ack);
  /// its replacement runs normally. 0 = off.
  std::size_t kill_after = 0;
  /// Test hook: every worker is spawned with --die-on N (SIGKILL on
  /// receiving job index N, before running it) -- deterministic poison.
  std::size_t die_on_index = std::numeric_limits<std::size_t>::max();
  /// Attempts before a crash-looping job is declared deterministic and
  /// dropped (>= 1).
  std::size_t max_attempts = 2;
  std::ostream* progress = nullptr;  ///< Per-job progress lines.
  /// Called after every completion with (completed-of-expansion, total);
  /// the serve queue uses it for status reporting.
  std::function<void(std::size_t, std::size_t)> on_progress;
};

struct ServiceOutcome {
  CampaignOutcome campaign;  ///< Same counters the scheduler reports.
  std::size_t workers = 0;   ///< Resolved fleet size.
  std::size_t worker_crashes = 0;  ///< Crashes tolerated via requeue.
  /// Jobs that crashed a worker `max_attempts` times and were dropped;
  /// non-empty forces a nonzero exit. (Trial failures that the worker
  /// survives are records, counted in campaign.failed instead.)
  std::vector<std::string> poisoned_jobs;
  bool ok() const { return campaign.failed == 0 && poisoned_jobs.empty(); }
};

/// Runs (or resumes) `spec` against `store` with a fleet of worker
/// processes. Leftover shard stores from a killed coordinator are folded in
/// before scheduling (their jobs are not re-run). Throws
/// std::invalid_argument on a spec-hash mismatch with the store and
/// std::runtime_error on process-management failures.
ServiceOutcome run_coordinator(const CampaignSpec& spec, ResultStore& store,
                               const CoordinatorOptions& options);

}  // namespace dyndisp::campaign::service
