#include "campaign/service/coordinator.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "campaign/service/shard.h"

namespace dyndisp::campaign::service {

namespace {

constexpr long kNoJob = -1;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             // NOLINTNEXTLINE-dyndisp(determinism-wallclock): feeds only
             // the manifest's reporting-only wall_ms counter, never a
             // result digest or record field.
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Restores the previous SIGPIPE disposition on scope exit. A worker dying
/// between poll() and our write() to its stdin must surface as EPIPE, not
/// kill the coordinator.
class SigpipeGuard {
 public:
  SigpipeGuard() { previous_ = signal(SIGPIPE, SIG_IGN); }
  ~SigpipeGuard() { signal(SIGPIPE, previous_); }

 private:
  void (*previous_)(int);
};

std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0)
    throw std::runtime_error(
        "cannot resolve /proc/self/exe; pass the worker binary explicitly");
  buf[n] = '\0';
  return buf;
}

struct WorkerProc {
  pid_t pid = -1;
  int in_fd = -1;          ///< Coordinator -> worker stdin (job indices).
  int out_fd = -1;         ///< Worker stdout -> coordinator (acks).
  std::size_t shard = 0;   ///< Shard-directory index this worker appends to.
  long in_flight = kNoJob;  ///< Dispatched, unacked job index.
  std::string buf;         ///< Partial ack line.
  bool closed = false;     ///< Stdin closed: worker is draining to exit.

  bool alive() const { return pid > 0; }
};

struct AckLine {
  std::size_t index = 0;
  bool ok = false;
  bool dispersed = false;
  std::uint64_t rounds = 0;
};

AckLine parse_ack(const std::string& line) {
  std::istringstream ss(line);
  std::string tag, okword;
  AckLine ack;
  int dispersed = 0;
  ss >> tag >> ack.index >> okword >> dispersed >> ack.rounds;
  if (!ss || tag != "done" || (okword != "ok" && okword != "fail"))
    throw std::runtime_error("coordinator: bad worker ack line '" + line +
                             "'");
  ack.ok = okword == "ok";
  ack.dispersed = dispersed != 0;
  return ack;
}

/// The full coordinator state for one run, so helpers don't take ten
/// parameters each.
class Coordinator {
 public:
  Coordinator(const CampaignSpec& spec, ResultStore& store,
              const CoordinatorOptions& opts)
      : spec_(spec), store_(store), opts_(opts), jobs_(spec.expand()) {}

  ServiceOutcome run();

 private:
  void scan_existing();
  WorkerProc spawn(std::size_t shard_index, bool first_incarnation);
  void dispatch(WorkerProc& w);
  void close_stdin(WorkerProc& w);
  void handle_readable(WorkerProc& w);
  void handle_death(WorkerProc& w);
  void report(const std::string& id, bool ok, bool dispersed,
              std::uint64_t rounds);
  bool any_in_flight() const;

  const CampaignSpec& spec_;
  ResultStore& store_;
  const CoordinatorOptions& opts_;
  const std::vector<JobSpec> jobs_;
  std::string spec_hash_;
  std::string binary_;
  std::size_t fleet_ = 0;

  std::deque<std::size_t> pending_;
  /// Crashes consumed per job index (ordered map: deterministic, and never
  /// iterated for output anyway).
  std::map<std::size_t, std::size_t> attempts_;
  std::vector<WorkerProc> workers_;
  bool worker0_spawned_ = false;  ///< kill_after applies only to the first.

  std::size_t skipped_ = 0;
  std::size_t executed_ = 0;       ///< Acked + recovered this invocation.
  std::size_t failed_trials_ = 0;  ///< ok=false records (acked or recovered).
  std::size_t crashes_ = 0;
  std::vector<std::string> poisoned_;
};

void Coordinator::scan_existing() {
  spec_hash_ = spec_.hash();
  // Jobs already persisted -- in the merged root store or in shard stores a
  // killed coordinator left behind -- are never re-run.
  //
  // Determinism audit (dyndisp_lint determinism-unordered-iter): `done` is
  // membership-only (count() probes); the pending queue below preserves the
  // expansion's job order.
  std::unordered_set<std::string> done;
  std::vector<TrialRecord> existing = store_.load();
  std::vector<TrialRecord> leftovers = load_shard_records(store_.dir());
  existing.insert(existing.end(), std::make_move_iterator(leftovers.begin()),
                  std::make_move_iterator(leftovers.end()));
  for (const TrialRecord& record : existing) {
    if (record.spec_hash != spec_hash_)
      throw std::invalid_argument(
          "result store " + store_.dir() + " holds records of a different "
          "campaign (spec hash " + record.spec_hash + " != " + spec_hash_ +
          ")");
    done.insert(record.job.id());
  }
  for (const JobSpec& job : jobs_)
    if (done.count(job.id()))
      ++skipped_;
    else
      pending_.push_back(job.index);
}

WorkerProc Coordinator::spawn(std::size_t shard_index,
                              bool first_incarnation) {
  std::vector<std::string> args;
  args.push_back(binary_);
  args.push_back("worker");
  args.push_back("--spec");
  args.push_back(store_.spec_path());
  args.push_back("--store");
  args.push_back(shard_dir(store_.dir(), shard_index));
  if (opts_.seeds != 0) {
    args.push_back("--seeds");
    args.push_back(std::to_string(opts_.seeds));
  }
  if (!opts_.record_timing) args.push_back("--no-timing");
  if (opts_.kill_after != 0 && shard_index == 0 && first_incarnation) {
    args.push_back("--die-after");
    args.push_back(std::to_string(opts_.kill_after));
  }
  if (opts_.die_on_index != std::numeric_limits<std::size_t>::max()) {
    args.push_back("--die-on");
    args.push_back(std::to_string(opts_.die_on_index));
  }

  // Parent-side pipe ends are CLOEXEC so a later worker's fork does not
  // inherit (and hold open) this worker's stdin write end -- that would
  // defeat EOF-as-shutdown.
  int to_child[2], from_child[2];
  if (pipe2(to_child, O_CLOEXEC) != 0 || pipe2(from_child, O_CLOEXEC) != 0)
    throw std::runtime_error(std::string("pipe2 failed: ") +
                             std::strerror(errno));
  const pid_t pid = fork();
  if (pid < 0)
    throw std::runtime_error(std::string("fork failed: ") +
                             std::strerror(errno));
  if (pid == 0) {
    // Child: wire the pipes to stdin/stdout (dup2 clears CLOEXEC on the
    // duplicates) and become the worker.
    if (dup2(to_child[0], STDIN_FILENO) < 0 ||
        dup2(from_child[1], STDOUT_FILENO) < 0)
      _exit(127);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(binary_.c_str(), argv.data());
    _exit(127);  // exec failed; parent sees a crash and retries elsewhere
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  WorkerProc w;
  w.pid = pid;
  w.in_fd = to_child[1];
  w.out_fd = from_child[0];
  w.shard = shard_index;
  return w;
}

void Coordinator::dispatch(WorkerProc& w) {
  if (pending_.empty()) {
    close_stdin(w);
    return;
  }
  const std::size_t job = pending_.front();
  pending_.pop_front();
  w.in_flight = static_cast<long>(job);
  const std::string line = std::to_string(job) + "\n";
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(w.in_fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      // EPIPE: the worker died under us. Leave in_flight set; the EOF on
      // its stdout reaches handle_death, which requeues or recovers it.
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void Coordinator::close_stdin(WorkerProc& w) {
  if (w.closed) return;
  if (w.in_fd >= 0) ::close(w.in_fd);
  w.in_fd = -1;
  w.closed = true;
}

void Coordinator::report(const std::string& id, bool ok, bool dispersed,
                         std::uint64_t rounds) {
  const std::size_t completed = skipped_ + executed_;
  if (opts_.progress != nullptr) {
    (*opts_.progress)
        << "[" << completed << "/" << jobs_.size() << "] " << id
        << (ok ? (dispersed
                      ? "  dispersed in " + std::to_string(rounds) + " rounds"
                      : "  NOT dispersed (" + std::to_string(rounds) +
                            " rounds)")
                : std::string("  FAILED (see record)"))
        << "\n";
    opts_.progress->flush();
  }
  if (opts_.on_progress) opts_.on_progress(completed, jobs_.size());
}

void Coordinator::handle_readable(WorkerProc& w) {
  char buf[4096];
  const ssize_t n = ::read(w.out_fd, buf, sizeof buf);
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN) return;
    throw std::runtime_error(std::string("read from worker failed: ") +
                             std::strerror(errno));
  }
  if (n == 0) {
    handle_death(w);
    return;
  }
  w.buf.append(buf, static_cast<std::size_t>(n));
  std::size_t pos;
  while ((pos = w.buf.find('\n')) != std::string::npos) {
    const std::string line = w.buf.substr(0, pos);
    w.buf.erase(0, pos + 1);
    const AckLine ack = parse_ack(line);
    if (ack.index >= jobs_.size())
      throw std::runtime_error("coordinator: ack job index out of range");
    if (w.in_flight == kNoJob ||
        ack.index != static_cast<std::size_t>(w.in_flight))
      throw std::runtime_error("coordinator: ack for job " +
                               std::to_string(ack.index) +
                               " does not match the in-flight job");
    w.in_flight = kNoJob;
    ++executed_;
    if (!ack.ok) ++failed_trials_;
    report(jobs_[ack.index].id(), ack.ok, ack.dispersed, ack.rounds);
    dispatch(w);
  }
}

void Coordinator::handle_death(WorkerProc& w) {
  if (w.out_fd >= 0) ::close(w.out_fd);
  w.out_fd = -1;
  close_stdin(w);
  int status = 0;
  while (waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
  }
  const bool clean_exit =
      WIFEXITED(status) && WEXITSTATUS(status) == 0 && w.in_flight == kNoJob;
  const std::size_t shard_index = w.shard;
  const long in_flight = w.in_flight;
  w.pid = -1;
  w.in_flight = kNoJob;
  if (clean_exit) return;

  ++crashes_;
  if (in_flight != kNoJob) {
    const std::size_t job = static_cast<std::size_t>(in_flight);
    const std::string id = jobs_[job].id();
    // The worker appends durably BEFORE acking, so a record present in its
    // shard store is a finished job whose ack was lost -- recover it
    // instead of re-running.
    bool recovered = false;
    {
      ResultStore shard(shard_dir(store_.dir(), shard_index));
      for (const TrialRecord& record : shard.load()) {
        if (record.job.id() != id) continue;
        ++executed_;
        if (!record.ok) ++failed_trials_;
        report(id, record.ok, record.dispersed, record.rounds);
        recovered = true;
        break;
      }
    }
    if (!recovered) {
      std::size_t& used = attempts_[job];
      ++used;
      if (used >= opts_.max_attempts) {
        // Crashed a worker on every attempt: deterministic poison. Drop it
        // so the rest of the campaign completes; the outcome lists it and
        // the exit code goes nonzero.
        poisoned_.push_back(id);
        if (opts_.progress != nullptr) {
          (*opts_.progress) << "POISON " << id << "  crashed "
                            << std::to_string(used) << " workers, dropped\n";
          opts_.progress->flush();
        }
      } else {
        // Front of the queue: the retry should not wait behind the whole
        // backlog, and front placement keeps requeue order deterministic.
        pending_.push_front(job);
      }
    }
  }
  // Keep the fleet at strength while work remains. The replacement binds to
  // the same shard directory -- its store already holds the dead worker's
  // durable records (torn final line truncated on first append) and simply
  // continues the shard.
  if (!pending_.empty()) {
    WorkerProc replacement = spawn(shard_index, /*first_incarnation=*/false);
    dispatch(replacement);
    for (WorkerProc& slot : workers_)
      if (!slot.alive() && slot.shard == shard_index) {
        slot = std::move(replacement);
        return;
      }
    workers_.push_back(std::move(replacement));
  }
}

bool Coordinator::any_in_flight() const {
  for (const WorkerProc& w : workers_)
    if (w.alive() && w.in_flight != kNoJob) return true;
  return false;
}

ServiceOutcome Coordinator::run() {
  // NOLINTNEXTLINE-dyndisp(determinism-wallclock): manifest counter only.
  const auto start = std::chrono::steady_clock::now();
  binary_ = opts_.worker_binary.empty() ? self_exe_path()
                                        : opts_.worker_binary;
  scan_existing();
  store_.initialize(spec_);

  fleet_ = resolve_auto_threads(opts_.workers);
  if (fleet_ > pending_.size() && !pending_.empty()) fleet_ = pending_.size();

  SigpipeGuard sigpipe;
  if (!pending_.empty()) {
    workers_.reserve(fleet_);
    for (std::size_t i = 0; i < fleet_; ++i) {
      workers_.push_back(spawn(i, /*first_incarnation=*/true));
      dispatch(workers_.back());
    }
    while (!pending_.empty() || any_in_flight()) {
      std::vector<pollfd> fds;
      std::vector<std::size_t> owners;
      for (std::size_t i = 0; i < workers_.size(); ++i) {
        if (!workers_[i].alive()) continue;
        fds.push_back(pollfd{workers_[i].out_fd, POLLIN, 0});
        owners.push_back(i);
      }
      if (fds.empty()) {
        // Every worker is dead but jobs remain (crash cascade): restart a
        // fleet sized to what's left and keep going.
        const std::size_t n = std::min(fleet_, pending_.size());
        for (std::size_t i = 0; i < n; ++i) {
          workers_.push_back(spawn(i, /*first_incarnation=*/false));
          dispatch(workers_.back());
        }
        continue;
      }
      const int rc = poll(fds.data(), fds.size(), -1);
      if (rc < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("poll failed: ") +
                                 std::strerror(errno));
      }
      for (std::size_t i = 0; i < fds.size(); ++i)
        if (fds[i].revents != 0) handle_readable(workers_[owners[i]]);
    }
  }

  // Drain: close every stdin; workers exit on EOF.
  for (WorkerProc& w : workers_) {
    if (!w.alive()) continue;
    close_stdin(w);
    int status = 0;
    while (waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
    }
    w.pid = -1;
    if (w.out_fd >= 0) ::close(w.out_fd);
    w.out_fd = -1;
  }

  // Deterministic merge: shard records + whatever the root already held,
  // rewritten in job order. Bitwise identical to a single-process run of
  // the same jobs regardless of fleet size, crashes, or completion order.
  merge_shards(store_, /*remove_shards=*/true);

  ServiceOutcome outcome;
  outcome.workers = fleet_;
  outcome.worker_crashes = crashes_;
  outcome.poisoned_jobs = poisoned_;
  outcome.campaign.total = jobs_.size();
  outcome.campaign.executed = executed_;
  outcome.campaign.skipped = skipped_;
  outcome.campaign.failed = failed_trials_;
  outcome.campaign.completed = skipped_ + executed_;
  outcome.campaign.wall_ms = ms_since(start);
  outcome.campaign.threads = 1;  // each worker runs trials single-threaded

  RunCounters counters;
  counters.executed = outcome.campaign.executed;
  counters.skipped = outcome.campaign.skipped;
  counters.failed = outcome.campaign.failed;
  counters.wall_ms = outcome.campaign.wall_ms;
  counters.threads = 1;
  counters.workers = fleet_;
  store_.record_run(spec_, outcome.campaign.total, outcome.campaign.completed,
                    counters);
  return outcome;
}

}  // namespace

ServiceOutcome run_coordinator(const CampaignSpec& spec, ResultStore& store,
                               const CoordinatorOptions& options) {
  if (options.max_attempts == 0)
    throw std::invalid_argument("max_attempts must be >= 1");
  Coordinator coordinator(spec, store, options);
  return coordinator.run();
}

}  // namespace dyndisp::campaign::service
