// The campaign service queue: a long-running mode that watches a spool
// directory, admits new specs while draining, and runs each through the
// coordinator with per-spec progress and backpressure.
//
// Spool contract (all subdirectories are created on first run):
//
//   <spool>/incoming/   drop "<name>.json" campaign specs here
//   <spool>/active/     admitted specs, queued or running (crash-safe: a
//                       killed server's active specs are re-queued on start)
//   <spool>/done/       specs whose campaigns completed with zero failures
//   <spool>/failed/     specs with failed/poisoned jobs or run errors
//                       (+ "<name>.json.error" holding the message)
//   <spool>/rejected/   unparsable or never-admissible specs (+ .error)
//   <spool>/status.json per-spec progress, rewritten atomically on every
//                       admission and every few job completions
//   <spool>/stop        touch to shut the server down after the current
//                       spec (consumed on exit)
//
// Admission control / backpressure: every spec's expanded job count is
// charged against `max_queued_jobs`. A spec that can never fit is rejected
// outright; one that merely does not fit *right now* stays in incoming/ and
// is retried after capacity frees (a deferral, not a rejection). Specs are
// admitted and run in sorted filename order, so the queue discipline is
// deterministic.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>

namespace dyndisp::campaign::service {

struct ServeOptions {
  std::string spool_dir;
  std::string out_dir;      ///< Result stores; default "<spool>/out".
  std::size_t workers = 0;  ///< Coordinator fleet per spec (0 = auto).
  /// Admission budget: total expanded-but-unfinished jobs across admitted
  /// specs (bounded in-flight work).
  std::size_t max_queued_jobs = 1000000;
  std::size_t poll_ms = 500;  ///< Idle rescan interval.
  /// Drain mode: exit once incoming/ and active/ are empty instead of
  /// waiting for more specs (tests, CI, cron).
  bool once = false;
  bool record_timing = true;
  std::string worker_binary;  ///< Forwarded to the coordinator (tests).
  std::ostream* log = nullptr;  ///< One line per admission/completion.
};

struct ServeReport {
  std::size_t specs_completed = 0;
  std::size_t specs_failed = 0;
  std::size_t specs_rejected = 0;
  std::size_t deferrals = 0;  ///< Admissions postponed by backpressure.
};

/// Runs the spool service until stopped (or drained, with `once`).
ServeReport run_serve(const ServeOptions& options);

/// Human-readable snapshot of a spool: status.json plus directory counts.
/// Works while a server is live (status.json is written atomically).
std::string render_spool_status(const std::string& spool_dir);

}  // namespace dyndisp::campaign::service
