// Shard-store layout and deterministic merge for the campaign service.
//
// A coordinator run keeps one ResultStore per worker process under the
// root store:
//
//   <root>/results.jsonl            the merged, job-ordered store
//   <root>/shards/worker-<i>/       a full ResultStore a worker appends to
//       results.jsonl               (durable: fsync per record)
//
// Workers never touch the root file; the coordinator merges shard records
// into it by (job index, seed) order via ResultStore::replace_all, which
// makes the merged file bitwise identical to what a single-process
// threads=1 run of the same jobs would have written. Shard directories are
// removed after a successful merge; any left behind are the signature of a
// killed coordinator, and the next run folds them in before scheduling.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/store.h"

namespace dyndisp::campaign::service {

/// Directory of worker `index`'s shard store under `root_dir`.
std::string shard_dir(const std::string& root_dir, std::size_t index);

/// Existing shard directories under `root_dir`, sorted by name so every
/// traversal of the shards is deterministic. Empty if none.
std::vector<std::string> list_shard_dirs(const std::string& root_dir);

/// Loads every record from every shard store under `root_dir`, in shard-name
/// then file order (torn trailing lines tolerated per ResultStore::load).
std::vector<TrialRecord> load_shard_records(const std::string& root_dir);

/// Folds the root store's records and all shard records into the root's
/// results.jsonl (sorted by job order, deduped by job id, atomic rewrite)
/// and, when `remove_shards`, deletes the shard directories. Returns the
/// merged record count.
std::size_t merge_shards(ResultStore& root, bool remove_shards);

}  // namespace dyndisp::campaign::service
