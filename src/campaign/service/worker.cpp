#include "campaign/service/worker.h"

#include <csignal>

#include <chrono>
#include <exception>
#include <stdexcept>
#include <vector>

#include "analysis/experiment.h"
#include "campaign/spec.h"
#include "campaign/store.h"

namespace dyndisp::campaign::service {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             // NOLINTNEXTLINE-dyndisp(determinism-wallclock): feeds only
             // wall_ms, zeroed by --no-timing before byte comparisons;
             // never part of a result digest.
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int run_worker(const WorkerOptions& opts, std::istream& in,
               std::ostream& out) {
  CampaignSpec spec = CampaignSpec::parse_file(opts.spec_path);
  if (opts.seeds != 0) spec.set_seeds(opts.seeds);
  const std::string spec_hash = spec.hash();
  const std::vector<JobSpec> jobs = spec.expand();

  ResultStore store(opts.store_dir);
  store.set_durable(true);

  std::size_t appended = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::size_t index = 0;
    try {
      index = static_cast<std::size_t>(std::stoull(line));
    } catch (const std::exception&) {
      throw std::runtime_error("worker: bad job index line '" + line + "'");
    }
    if (index >= jobs.size())
      throw std::runtime_error("worker: job index " + std::to_string(index) +
                               " out of range (" +
                               std::to_string(jobs.size()) + " jobs)");
    if (index == opts.die_on_index) raise(SIGKILL);

    const JobSpec& job = jobs[index];
    TrialRecord record;
    record.job = job;
    record.spec_hash = spec_hash;
    // NOLINTNEXTLINE-dyndisp(determinism-wallclock): per-record wall_ms
    // only; --no-timing zeroes it for byte-exact store comparisons.
    const auto start = std::chrono::steady_clock::now();
    try {
      const analysis::TrialSpec trial = make_trial_spec(job);
      const RunResult result = analysis::run_trial(trial, job.seed);
      record.dispersed = result.dispersed;
      record.rounds = result.rounds;
      record.moves = result.total_moves;
      record.memory_bits = result.max_memory_bits;
      record.max_occupied = result.max_occupied;
      record.crashed = result.crashed;
    } catch (const std::exception& e) {
      record.ok = false;
      record.error = e.what();
    }
    record.wall_ms = opts.record_timing ? ms_since(start) : 0.0;
    store.append(record);
    ++appended;
    // Crash window under test: the record is durable but unacked; the
    // coordinator must recover it from the shard store instead of
    // re-running the job.
    if (opts.die_after != 0 && appended >= opts.die_after) raise(SIGKILL);

    out << "done " << index << (record.ok ? " ok " : " fail ")
        << (record.dispersed ? 1 : 0) << ' ' << record.rounds << '\n';
    out.flush();
    if (!out) return 1;  // coordinator hung up mid-campaign
  }
  return 0;
}

}  // namespace dyndisp::campaign::service
