// The campaign service worker: one process, one shard store, jobs fed one
// index at a time over stdin.
//
// Protocol (line-oriented, coordinator -> worker over stdin, worker ->
// coordinator over stdout):
//
//   coordinator:  "<job-index>\n"        dispatch one job
//   worker:       "done <job-index> ok <dispersed 0|1> <rounds>\n"
//                 "done <job-index> fail 0 0\n"   trial threw; a failure
//                                         record was appended (the campaign
//                                         goes on; crash != trial failure)
//
// The worker appends each record to its shard ResultStore in durable mode
// (fsync per record) BEFORE acknowledging, so an acked job is on disk and a
// SIGKILL at any point loses at most one unacked, recoverable record. EOF
// on stdin is the shutdown signal: the worker exits 0. Any protocol or
// store error exits nonzero, which the coordinator treats as a crash and
// requeues the in-flight job.
#pragma once

#include <cstddef>
#include <istream>
#include <limits>
#include <ostream>
#include <string>

namespace dyndisp::campaign::service {

struct WorkerOptions {
  std::string spec_path;   ///< Spec the job indices refer to.
  std::string store_dir;   ///< Shard ResultStore directory.
  std::size_t seeds = 0;   ///< Seeds-per-tuple override (0 = spec's own).
  bool record_timing = true;  ///< false zeroes per-record wall_ms.
  /// Test hook (--die-after): SIGKILL self after appending this many
  /// records, before acknowledging the last one (0 = off). Exercises the
  /// crash-recovery path: the record is on disk but the coordinator never
  /// sees the ack.
  std::size_t die_after = 0;
  /// Test hook (--die-on): SIGKILL self when dispatched this job index,
  /// before running it -- a job that deterministically kills every worker
  /// it lands on, for the fails-twice coordinator path.
  std::size_t die_on_index = std::numeric_limits<std::size_t>::max();
};

/// Runs the worker loop over (in, out); returns the process exit code
/// (0 = clean EOF shutdown). Throws std::exception subclasses on spec or
/// store errors -- the CLI turns those into a nonzero exit.
int run_worker(const WorkerOptions& opts, std::istream& in, std::ostream& out);

}  // namespace dyndisp::campaign::service
