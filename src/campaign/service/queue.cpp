#include "campaign/service/queue.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "campaign/service/coordinator.h"
#include "campaign/spec.h"
#include "campaign/store.h"
#include "util/json.h"

namespace dyndisp::campaign::service {

namespace fs = std::filesystem;

namespace {

/// "*.json" entries of `dir`, sorted by filename for a deterministic queue
/// discipline.
std::vector<fs::path> list_specs(const fs::path& dir) {
  std::vector<fs::path> specs;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec))
    if (entry.is_regular_file() && entry.path().extension() == ".json")
      specs.push_back(entry.path());
  std::sort(specs.begin(), specs.end());
  return specs;
}

std::size_t count_specs(const fs::path& dir) { return list_specs(dir).size(); }

void write_text(const fs::path& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  if (!text.empty() && text.back() != '\n') out << '\n';
}

/// One admitted spec, parked in <spool>/active/.
struct Queued {
  fs::path path;          ///< active/<file>.json
  std::string stem;       ///< file stem; names the result store.
  std::string name;       ///< campaign name from the spec.
  std::size_t jobs = 0;   ///< expanded job count (budget charge).
};

class Server {
 public:
  explicit Server(const ServeOptions& opts) : opts_(opts) {}

  ServeReport run();

 private:
  fs::path spool(const char* sub) const {
    return fs::path(opts_.spool_dir) / sub;
  }
  void log(const std::string& line) {
    if (opts_.log != nullptr) {
      (*opts_.log) << line << "\n";
      opts_.log->flush();
    }
  }
  void reject(const fs::path& from, const std::string& why);
  void adopt_active();
  void admit_incoming();
  void run_front();
  void write_status();

  ServeOptions opts_;
  ServeReport report_;
  std::vector<Queued> queue_;   ///< Sorted by path.
  std::size_t queued_jobs_ = 0;  ///< Budget charged by queue_.
  std::size_t deferred_now_ = 0;  ///< Incoming specs deferred in last pass.
  std::uint64_t seq_ = 0;       ///< status.json monotonic tick.
  std::string running_stem_;    ///< Empty when idle.
  std::size_t running_done_ = 0;
  std::size_t running_total_ = 0;
};

void Server::reject(const fs::path& from, const std::string& why) {
  const fs::path to = spool("rejected") / from.filename();
  std::error_code ec;
  fs::rename(from, to, ec);
  write_text(to.string() + ".error", why);
  ++report_.specs_rejected;
  log("reject " + from.filename().string() + ": " + why);
}

/// Re-queues specs a killed server left in active/ -- admitted work is
/// never lost, and their partially-filled result stores resume.
void Server::adopt_active() {
  for (const fs::path& path : list_specs(spool("active"))) {
    try {
      const CampaignSpec spec = CampaignSpec::parse_file(path.string());
      queue_.push_back(
          Queued{path, path.stem().string(), spec.name(), spec.job_count()});
      queued_jobs_ += queue_.back().jobs;
      log("adopt " + path.filename().string() + " (" +
          std::to_string(queue_.back().jobs) + " jobs)");
    } catch (const std::exception& e) {
      reject(path, e.what());
    }
  }
  std::sort(queue_.begin(), queue_.end(),
            [](const Queued& a, const Queued& b) { return a.path < b.path; });
}

void Server::admit_incoming() {
  deferred_now_ = 0;
  bool admitted = false;
  for (const fs::path& path : list_specs(spool("incoming"))) {
    std::size_t jobs = 0;
    std::string name;
    try {
      const CampaignSpec spec = CampaignSpec::parse_file(path.string());
      jobs = spec.job_count();
      name = spec.name();
    } catch (const std::exception& e) {
      reject(path, e.what());
      continue;
    }
    if (jobs > opts_.max_queued_jobs) {
      reject(path, "spec expands to " + std::to_string(jobs) +
                       " jobs, over the admission budget of " +
                       std::to_string(opts_.max_queued_jobs) +
                       " (can never fit)");
      continue;
    }
    if (queued_jobs_ + jobs > opts_.max_queued_jobs) {
      // Backpressure: fits in principle, not right now. Stays in incoming/
      // and is retried after a running spec frees budget.
      ++deferred_now_;
      ++report_.deferrals;
      log("defer " + path.filename().string() + " (" + std::to_string(jobs) +
          " jobs; " + std::to_string(opts_.max_queued_jobs - queued_jobs_) +
          " budget free)");
      continue;
    }
    const fs::path to = spool("active") / path.filename();
    fs::rename(path, to);
    queue_.push_back(Queued{to, to.stem().string(), name, jobs});
    queued_jobs_ += jobs;
    admitted = true;
    log("admit " + to.filename().string() + " (" + std::to_string(jobs) +
        " jobs)");
  }
  if (admitted)
    std::sort(queue_.begin(), queue_.end(),
              [](const Queued& a, const Queued& b) { return a.path < b.path; });
}

void Server::write_status() {
  const fs::path path = spool("status.json");
  const fs::path tmp = spool("status.json.tmp");
  {
    std::ofstream out(tmp);
    JsonWriter w(out);
    w.begin_object();
    w.member("seq", seq_++);
    w.key("running");
    if (running_stem_.empty()) {
      w.begin_object();  // keep a fixed shape: {} when idle
      w.end_object();
    } else {
      w.begin_object();
      w.member("store", running_stem_);
      w.member("completed", static_cast<std::uint64_t>(running_done_));
      w.member("total", static_cast<std::uint64_t>(running_total_));
      w.end_object();
    }
    w.key("queued");
    w.begin_array();
    for (const Queued& q : queue_)
      if (q.stem != running_stem_) w.value(q.path.filename().string());
    w.end_array();
    w.member("deferred_incoming",
             static_cast<std::uint64_t>(deferred_now_));
    w.key("counts");
    w.begin_object();
    w.member("done", static_cast<std::uint64_t>(count_specs(spool("done"))));
    w.member("failed",
             static_cast<std::uint64_t>(count_specs(spool("failed"))));
    w.member("rejected",
             static_cast<std::uint64_t>(count_specs(spool("rejected"))));
    w.end_object();
    w.key("budget");
    w.begin_object();
    w.member("max_queued_jobs",
             static_cast<std::uint64_t>(opts_.max_queued_jobs));
    w.member("queued_jobs", static_cast<std::uint64_t>(queued_jobs_));
    w.end_object();
    w.end_object();
    out << '\n';
  }
  // Atomic swap: a concurrent `status` reader sees the old or the new
  // snapshot, never a torn one.
  fs::rename(tmp, path);
}

void Server::run_front() {
  const Queued item = queue_.front();
  queue_.erase(queue_.begin());
  running_stem_ = item.stem;
  running_done_ = 0;
  running_total_ = item.jobs;
  write_status();

  std::string error;
  bool ok = false;
  try {
    const CampaignSpec spec = CampaignSpec::parse_file(item.path.string());
    ResultStore store((fs::path(opts_.out_dir) / item.stem).string());
    CoordinatorOptions copts;
    copts.workers = opts_.workers;
    copts.worker_binary = opts_.worker_binary;
    copts.record_timing = opts_.record_timing;
    std::size_t ticks = 0;
    copts.on_progress = [this, &ticks](std::size_t done, std::size_t total) {
      running_done_ = done;
      running_total_ = total;
      if (++ticks % 8 == 0) write_status();  // throttle the rewrite
    };
    const ServiceOutcome outcome = run_coordinator(spec, store, copts);
    ok = outcome.ok();
    if (!ok) {
      std::ostringstream why;
      why << outcome.campaign.failed << " failed trial(s), "
          << outcome.poisoned_jobs.size() << " poisoned job(s)";
      for (const std::string& id : outcome.poisoned_jobs)
        why << "\n  poisoned: " << id;
      error = why.str();
    }
  } catch (const std::exception& e) {
    error = e.what();
  }

  const fs::path to =
      spool(ok ? "done" : "failed") / item.path.filename();
  std::error_code ec;
  fs::rename(item.path, to, ec);
  if (!ok) write_text(to.string() + ".error", error);
  if (ok)
    ++report_.specs_completed;
  else
    ++report_.specs_failed;
  log(std::string(ok ? "done " : "failed ") + item.path.filename().string() +
      (error.empty() ? "" : ": " + error));

  queued_jobs_ -= std::min(queued_jobs_, item.jobs);
  running_stem_.clear();
  running_done_ = running_total_ = 0;
  write_status();
}

ServeReport Server::run() {
  for (const char* sub :
       {"incoming", "active", "done", "failed", "rejected"})
    fs::create_directories(spool(sub));
  if (opts_.out_dir.empty())
    opts_.out_dir = (fs::path(opts_.spool_dir) / "out").string();
  fs::create_directories(opts_.out_dir);

  adopt_active();
  while (true) {
    admit_incoming();
    write_status();
    if (!queue_.empty()) {
      run_front();
      continue;  // re-admit before the next spec: budget just freed
    }
    if (fs::exists(spool("stop"))) {
      fs::remove(spool("stop"));
      log("stop file consumed; shutting down");
      break;
    }
    if (opts_.once) {
      // Drained: nothing queued and nothing admissible. Deferred incoming
      // specs would need budget no completed spec can free anymore.
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(opts_.poll_ms));
  }
  write_status();
  return report_;
}

}  // namespace

ServeReport run_serve(const ServeOptions& options) {
  if (options.spool_dir.empty())
    throw std::invalid_argument("serve: spool directory required");
  Server server(options);
  return server.run();
}

std::string render_spool_status(const std::string& spool_dir) {
  std::ostringstream out;
  out << "spool: " << spool_dir << "\n";
  const fs::path root(spool_dir);
  out << "  incoming: " << count_specs(root / "incoming")
      << "  active: " << count_specs(root / "active")
      << "  done: " << count_specs(root / "done")
      << "  failed: " << count_specs(root / "failed")
      << "  rejected: " << count_specs(root / "rejected") << "\n";
  std::ifstream in(root / "status.json");
  if (!in) {
    out << "  (no status.json yet -- server never ran)\n";
    return out.str();
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out << "status.json:\n" << buffer.str();
  if (buffer.str().empty() || buffer.str().back() != '\n') out << "\n";
  return out.str();
}

}  // namespace dyndisp::campaign::service
