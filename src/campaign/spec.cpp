#include "campaign/spec.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "campaign/registry.h"
#include "sim/engine.h"
#include "util/json.h"
#include "util/rng.h"

namespace dyndisp::campaign {

namespace {

std::vector<std::string> string_axis(const JsonValue& axes, const char* key,
                                     std::vector<std::string> def) {
  const JsonValue* v = axes.find(key);
  if (v == nullptr) return def;
  std::vector<std::string> out;
  for (const JsonValue& item : v->items()) out.push_back(item.as_string());
  if (out.empty())
    throw std::invalid_argument(std::string("axis '") + key + "' is empty");
  return out;
}

std::vector<std::size_t> uint_axis(const JsonValue& axes, const char* key,
                                   std::vector<std::size_t> def,
                                   bool allow_empty = false) {
  const JsonValue* v = axes.find(key);
  if (v == nullptr) return def;
  std::vector<std::size_t> out;
  for (const JsonValue& item : v->items())
    out.push_back(static_cast<std::size_t>(item.as_uint()));
  if (out.empty() && !allow_empty)
    throw std::invalid_argument(std::string("axis '") + key + "' is empty");
  return out;
}

}  // namespace

std::string JobSpec::id() const {
  std::ostringstream out;
  out << algorithm << '|' << adversary << '|' << "n=" << n << '|' << "k=" << k
      << '|' << "comm=" << comm << '|' << "f=" << faults << '|'
      << "seed=" << seed;
  // Appended only when off so default campaigns keep their pre-existing ids
  // (stores resume across this option's introduction).
  if (!structure_cache) out << "|sc=off";
  if (!soa) out << "|soa=off";
  if (!flat_packets) out << "|flat=off";
  if (!incremental) out << "|inc=off";
  return out.str();
}

analysis::TrialSpec make_trial_spec(const JobSpec& job) {
  const Registry& registry = Registry::instance();
  const AlgorithmChoice algo = registry.algorithm(job.algorithm, job.seed);

  analysis::TrialSpec spec;
  spec.algorithm = algo.factory;
  spec.adversary = [job](std::uint64_t seed) {
    return Registry::instance().adversary(job.adversary, job.family, job.n,
                                          seed);
  };
  spec.placement = [job](std::uint64_t seed) {
    return Registry::instance().placement(job.placement, job.n, job.k,
                                          job.groups, seed);
  };
  if (job.faults > 0) {
    spec.faults = [job](std::uint64_t seed) {
      // Same derived stream dyndisp_sim uses, so records are comparable.
      Rng rng(seed * 17 + 5);
      return FaultSchedule::random(job.k, job.faults, job.k, rng);
    };
  }

  EngineOptions options;
  options.max_rounds = job.effective_max_rounds();
  const std::string comm =
      job.comm == "default" ? (algo.needs_global ? "global" : "local")
                            : job.comm;
  options.comm = comm == "global" ? CommModel::kGlobal : CommModel::kLocal;
  options.neighborhood_knowledge = algo.needs_knowledge;
  options.allow_model_mismatch = true;
  options.threads = 1;  // campaign parallelism is across jobs, not robots
  options.structure_cache = job.structure_cache;
  options.soa = job.soa;
  options.flat_packets = job.flat_packets;
  options.incremental_planning = job.incremental;
  spec.options = options;
  return spec;
}

CampaignSpec CampaignSpec::parse_json(const std::string& text) {
  const JsonValue doc = JsonValue::parse(text);
  if (!doc.is_object())
    throw std::invalid_argument("campaign spec must be a JSON object");

  static const char* const known_keys[] = {
      "name",  "axes",      "family",     "placement",       "groups",
      "seeds", "base_seed", "max_rounds", "structure_cache", "soa",
      "flat_packets", "incremental"};
  for (const auto& [key, value] : doc.members()) {
    bool known = false;
    for (const char* k : known_keys) known |= key == k;
    if (!known)
      throw std::invalid_argument("unknown spec key '" + key + "'");
  }

  CampaignSpec spec;
  spec.source_ = text;

  const JsonValue* name = doc.find("name");
  if (name == nullptr)
    throw std::invalid_argument("campaign spec needs a \"name\"");
  spec.name_ = name->as_string();
  if (spec.name_.empty())
    throw std::invalid_argument("campaign \"name\" is empty");

  static const JsonValue kEmptyObject = JsonValue::parse("{}");
  const JsonValue* axes_ptr = doc.find("axes");
  const JsonValue& axes = axes_ptr ? *axes_ptr : kEmptyObject;
  static const char* const known_axes[] = {"algorithms", "adversaries", "n",
                                           "k",          "comm",        "faults"};
  for (const auto& [key, value] : axes.members()) {
    bool known = false;
    for (const char* k : known_axes) known |= key == k;
    if (!known)
      throw std::invalid_argument("unknown axis '" + key + "'");
  }

  spec.algorithms_ = string_axis(axes, "algorithms", spec.algorithms_);
  spec.adversaries_ = string_axis(axes, "adversaries", spec.adversaries_);
  spec.ns_ = uint_axis(axes, "n", spec.ns_);
  spec.ks_ = uint_axis(axes, "k", {}, /*allow_empty=*/true);
  spec.comms_ = string_axis(axes, "comm", spec.comms_);
  spec.faults_ = uint_axis(axes, "faults", spec.faults_);

  if (const JsonValue* v = doc.find("family")) spec.family_ = v->as_string();
  if (const JsonValue* v = doc.find("placement"))
    spec.placement_ = v->as_string();
  if (const JsonValue* v = doc.find("groups"))
    spec.groups_ = static_cast<std::size_t>(v->as_uint());
  if (const JsonValue* v = doc.find("seeds"))
    spec.seeds_ = static_cast<std::size_t>(v->as_uint());
  if (const JsonValue* v = doc.find("base_seed")) spec.base_seed_ = v->as_uint();
  if (const JsonValue* v = doc.find("max_rounds"))
    spec.max_rounds_ = v->as_uint();
  if (const JsonValue* v = doc.find("structure_cache"))
    spec.structure_cache_ = v->as_bool();
  if (const JsonValue* v = doc.find("soa")) spec.soa_ = v->as_bool();
  if (const JsonValue* v = doc.find("flat_packets"))
    spec.flat_packets_ = v->as_bool();
  if (const JsonValue* v = doc.find("incremental"))
    spec.incremental_ = v->as_bool();
  if (spec.seeds_ == 0)
    throw std::invalid_argument("\"seeds\" must be at least 1");

  // Validate every name against the registry now, before any trial runs.
  const Registry& registry = Registry::instance();
  for (const std::string& a : spec.algorithms_)
    if (!registry.has_algorithm(a))
      throw std::invalid_argument("unknown algorithm '" + a + "'");
  for (const std::string& a : spec.adversaries_)
    if (!registry.has_adversary(a))
      throw std::invalid_argument("unknown adversary '" + a + "'");
  for (const std::string& c : spec.comms_)
    if (c != "default" && c != "global" && c != "local")
      throw std::invalid_argument("unknown comm model '" + c +
                                  "' (default|global|local)");
  if (!registry.has_family(spec.family_))
    throw std::invalid_argument("unknown family '" + spec.family_ + "'");
  if (!registry.has_placement(spec.placement_))
    throw std::invalid_argument("unknown placement '" + spec.placement_ + "'");
  return spec;
}

CampaignSpec CampaignSpec::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read campaign spec " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_json(buffer.str());
}

void CampaignSpec::set_seeds(std::size_t seeds) {
  if (seeds == 0) throw std::invalid_argument("seeds must be at least 1");
  seeds_ = seeds;
}

std::vector<std::size_t> CampaignSpec::ks_for(std::size_t n) const {
  if (!ks_.empty()) return ks_;
  return {std::max<std::size_t>(2, 2 * n / 3)};
}

std::size_t CampaignSpec::job_count() const {
  std::size_t tuples = 0;
  for (const std::size_t n : ns_) tuples += ks_for(n).size();
  return algorithms_.size() * adversaries_.size() * tuples * comms_.size() *
         faults_.size() * seeds_;
}

std::vector<JobSpec> CampaignSpec::expand() const {
  std::vector<JobSpec> jobs;
  jobs.reserve(job_count());
  for (const std::string& algorithm : algorithms_)
    for (const std::string& adversary : adversaries_)
      for (const std::size_t n : ns_)
        for (const std::size_t k : ks_for(n))
          for (const std::string& comm : comms_)
            for (const std::size_t faults : faults_)
              for (std::size_t s = 0; s < seeds_; ++s) {
                JobSpec job;
                job.index = jobs.size();
                job.algorithm = algorithm;
                job.adversary = adversary;
                job.family = family_;
                job.placement = placement_;
                job.comm = comm;
                job.n = n;
                job.k = k;
                job.groups = groups_;
                job.faults = faults;
                job.max_rounds = max_rounds_;
                job.seed = base_seed_ + s;
                job.structure_cache = structure_cache_;
                job.soa = soa_;
                job.flat_packets = flat_packets_;
                job.incremental = incremental_;
                jobs.push_back(std::move(job));
              }
  return jobs;
}

std::string CampaignSpec::canonical() const {
  std::ostringstream out;
  out << "name=" << name_ << ";algorithms=";
  for (const auto& a : algorithms_) out << a << ',';
  out << ";adversaries=";
  for (const auto& a : adversaries_) out << a << ',';
  out << ";n=";
  for (const auto& n : ns_) out << n << ',';
  out << ";k=";
  for (const auto& k : ks_) out << k << ',';
  out << ";comm=";
  for (const auto& c : comms_) out << c << ',';
  out << ";faults=";
  for (const auto& f : faults_) out << f << ',';
  // seeds/base_seed are deliberately excluded: the hash identifies the tuple
  // grid, so a store can be extended with more seeds of the same campaign
  // (each seed is keyed individually by its job id).
  out << ";family=" << family_ << ";placement=" << placement_
      << ";groups=" << groups_ << ";max_rounds=" << max_rounds_;
  // Appended only when off: existing campaigns (all default) keep their hash
  // across this option's introduction.
  if (!structure_cache_) out << ";sc=off";
  if (!soa_) out << ";soa=off";
  if (!flat_packets_) out << ";flat=off";
  return out.str();
}

std::string CampaignSpec::hash() const {
  // FNV-1a 64 over the canonical axes text.
  const std::string text = canonical();
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

}  // namespace dyndisp::campaign
