// Declarative campaign specs: a small JSON format describing axes whose
// cross-product expands into a deterministic, ordered list of fully
// specified trial jobs.
//
// Spec format (all axes optional; defaults in brackets):
//
//   {
//     "name": "table1",                   // required, names the campaign
//     "axes": {
//       "algorithms":  ["alg4", "dfs"],   // [["alg4"]]
//       "adversaries": ["random"],        // [["random"]]
//       "n":           [20, 40],          // [[20]]
//       "k":           [12],              // [[2n/3 of each n]]
//       "comm":        ["default"],       // [["default"]] | "global"|"local"
//       "faults":      [0, 4]             // [[0]]
//     },
//     "family":    "random",              // static-adversary family
//     "placement": "rooted",              // initial configuration
//     "groups":    3,                     // grouped-placement group count
//     "seeds":     10,                    // trials per tuple [1]
//     "base_seed": 1,                     // first seed [1]
//     "max_rounds": 0,                    // 0 = 100*k (dyndisp_sim default)
//     "structure_cache": true,            // delta-aware round loop [true]
//     "soa": true,                        // struct-of-arrays round core [true]
//     "flat_packets": true,               // flat PacketArena broadcasts [true]
//     "incremental": true                 // graph-change plan routing [true]
//   }
//
// Every name is validated against the campaign registry at parse time, so a
// typo fails before any trial runs. Expansion order is the fixed nesting
// algorithm > adversary > n > k > comm > faults > seed; job indices and ids
// are therefore stable across runs, which is what the resumable store keys
// on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "util/types.h"

namespace dyndisp::campaign {

/// One fully-specified trial job: the cross-product point plus the seed.
struct JobSpec {
  std::size_t index = 0;  ///< Position in the campaign's expansion order.
  std::string algorithm;
  std::string adversary;
  std::string family;
  std::string placement;
  std::string comm;  ///< "default" | "global" | "local".
  std::size_t n = 0;
  std::size_t k = 0;
  std::size_t groups = 3;
  std::size_t faults = 0;
  Round max_rounds = 0;  ///< 0 = 100*k.
  std::uint64_t seed = 1;
  /// EngineOptions::structure_cache for the job (spec key "structure_cache";
  /// the delta-aware round loop is on by default).
  bool structure_cache = true;
  /// EngineOptions::soa for the job (spec key "soa"; the struct-of-arrays
  /// round core is on by default).
  bool soa = true;
  /// EngineOptions::flat_packets for the job (spec key "flat_packets"; the
  /// flat PacketArena broadcast backend is on by default).
  bool flat_packets = true;
  /// EngineOptions::incremental_planning for the job (spec key
  /// "incremental"; the graph-change-gated plan routing is on by default).
  bool incremental = true;

  /// Canonical id, e.g. "alg4|random|n=20|k=12|comm=default|f=0|seed=3"
  /// (+ "|sc=off" when the structure cache is disabled). Uniquely
  /// identifies the job within its campaign; the resume key.
  std::string id() const;

  /// The round budget actually applied (resolves the 0 default).
  Round effective_max_rounds() const { return max_rounds ? max_rounds : 100 * k; }
};

/// Builds the runnable analysis::TrialSpec for a job by resolving its names
/// through the registry, mirroring dyndisp_sim's construction exactly (same
/// adversary/placement/fault seeds, same engine defaults) so campaign
/// records match one-off sim runs on the same tuple and seed.
analysis::TrialSpec make_trial_spec(const JobSpec& job);

class CampaignSpec {
 public:
  /// Parses and validates a spec document; throws std::invalid_argument on
  /// malformed JSON, unknown keys/axes, or names absent from the registry.
  static CampaignSpec parse_json(const std::string& text);
  /// Reads `path` and parses it; throws std::runtime_error if unreadable.
  static CampaignSpec parse_file(const std::string& path);

  const std::string& name() const { return name_; }
  const std::string& source_text() const { return source_; }

  std::size_t seeds() const { return seeds_; }
  std::uint64_t base_seed() const { return base_seed_; }

  /// Smoke-mode override (e.g. `--seeds 2`); must be >= 1.
  void set_seeds(std::size_t seeds);

  /// Number of jobs expand() will produce.
  std::size_t job_count() const;

  /// The deterministic, ordered cross-product of all axes and seeds.
  std::vector<JobSpec> expand() const;

  /// FNV-1a hash (hex) over the canonical axes (excluding the seed range, so
  /// a store can be extended with more seeds); identifies the campaign a
  /// stored record belongs to.
  std::string hash() const;

  const std::vector<std::string>& algorithms() const { return algorithms_; }
  const std::vector<std::string>& adversaries() const { return adversaries_; }
  const std::vector<std::size_t>& n_values() const { return ns_; }
  const std::vector<std::size_t>& k_values() const { return ks_; }
  const std::vector<std::string>& comm_values() const { return comms_; }
  const std::vector<std::size_t>& fault_values() const { return faults_; }

 private:
  CampaignSpec() = default;

  /// k for tuple (n, k-axis entry): k_axis empty means the dyndisp_sim
  /// default 2n/3 (at least 2).
  std::vector<std::size_t> ks_for(std::size_t n) const;
  std::string canonical() const;

  std::string name_;
  std::string source_;
  std::vector<std::string> algorithms_{"alg4"};
  std::vector<std::string> adversaries_{"random"};
  std::vector<std::size_t> ns_{20};
  std::vector<std::size_t> ks_;  // empty = derive 2n/3
  std::vector<std::string> comms_{"default"};
  std::vector<std::size_t> faults_{0};
  std::string family_ = "random";
  std::string placement_ = "rooted";
  std::size_t groups_ = 3;
  std::size_t seeds_ = 1;
  std::uint64_t base_seed_ = 1;
  Round max_rounds_ = 0;
  bool structure_cache_ = true;
  bool soa_ = true;
  bool flat_packets_ = true;
  bool incremental_ = true;
};

}  // namespace dyndisp::campaign
