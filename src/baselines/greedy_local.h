// Stateless greedy rule in the local model WITH 1-neighborhood knowledge --
// the exact setting of Theorem 1. On every multiplicity node the surplus
// robots hop to a visibly empty neighbor if one exists, else toward a
// strictly less-crowded neighbor. Works on stars/cliques; provably cannot
// work in general (Theorem 1), and the path-trap bench shows it stalling.
#pragma once

#include <memory>
#include <string>

#include "sim/algorithm.h"

namespace dyndisp::baselines {

class GreedyLocalRobot final : public RobotAlgorithm {
 public:
  GreedyLocalRobot(RobotId id, std::size_t k) : id_(id), k_(k) {}

  std::unique_ptr<RobotAlgorithm> clone() const override {
    return std::make_unique<GreedyLocalRobot>(*this);
  }
  Port step(const RobotView& view) override;
  void serialize(BitWriter& out) const override;
  std::string name() const override { return "greedy(local+1-nbhd)"; }
  bool requires_global_comm() const override { return false; }
  bool requires_neighborhood() const override { return true; }

 private:
  RobotId id_;
  std::size_t k_;
};

AlgorithmFactory greedy_local_factory();

}  // namespace dyndisp::baselines
