// Randomized scattering baseline: every surplus robot (any robot that is
// not the smallest ID on its node) walks across a uniformly random port.
// Eventually disperses on static connected graphs; the Theorem 3 remark
// notes the Omega(k) dynamic lower bound applies to randomized algorithms
// too, which the lower-bound bench demonstrates on this walker.
//
// The PRNG state is persistent robot memory and is metered as such -- a
// deliberate contrast with Algorithm 4's log k bits.
#pragma once

#include <memory>
#include <string>

#include "sim/algorithm.h"
#include "util/rng.h"

namespace dyndisp::baselines {

class RandomWalkRobot final : public RobotAlgorithm {
 public:
  RandomWalkRobot(RobotId id, std::size_t k, std::uint64_t seed);

  std::unique_ptr<RobotAlgorithm> clone() const override {
    return std::make_unique<RandomWalkRobot>(*this);
  }
  Port step(const RobotView& view) override;
  void serialize(BitWriter& out) const override;
  std::string name() const override { return "random-walk"; }
  bool requires_global_comm() const override { return false; }
  bool requires_neighborhood() const override { return false; }

 private:
  RobotId id_;
  std::size_t k_;
  Rng rng_;
};

AlgorithmFactory random_walk_factory(std::uint64_t seed);

}  // namespace dyndisp::baselines
