// Local-model DFS dispersion -- the canonical static-graph baseline
// (Augustine & Moses Jr. 2018 / Kshemkalyani & Ali 2019 style).
//
// The unsettled robots travel as a group performing a DFS of the anonymous
// port-labeled graph; the first unsettled robot to reach a free node settles
// there and serves as that node's marker, storing the DFS parent port and a
// rotor over the untried ports. Arriving groups read the settled robot's
// state through local (same-node) communication and either explore the next
// untried port or backtrack through the parent.
//
// On STATIC graphs from a rooted configuration this disperses in O(m)
// rounds with O(log(max(k, Delta))) bits per robot. On dynamic graphs the
// DFS tree it grows refers to edges that stop existing, which is exactly
// the failure mode the paper's Section I highlights; the impossibility and
// baseline-comparison benches quantify it.
#pragma once

#include <memory>
#include <string>

#include "sim/algorithm.h"

namespace dyndisp::baselines {

class DfsDispersionRobot final : public RobotAlgorithm {
 public:
  DfsDispersionRobot(RobotId id, std::size_t k);

  std::unique_ptr<RobotAlgorithm> clone() const override;
  Port step(const RobotView& view) override;
  void serialize(BitWriter& out) const override;
  std::string name() const override { return "DFS-dispersion(local,static)"; }
  bool requires_global_comm() const override { return false; }
  bool requires_neighborhood() const override { return false; }

  bool settled() const { return settled_; }

  /// State layout shared with peers (see serialize): id, settled, mode,
  /// parent_port, last_tried. Ports use a fixed 16-bit field.
  struct PeerState {
    RobotId id = kNoRobot;
    bool settled = false;
    bool backtracking = false;
    Port parent_port = kInvalidPort;
    Port last_tried = kInvalidPort;
  };
  static PeerState decode(const std::vector<std::uint8_t>& bytes,
                          std::size_t bit_count_hint, std::size_t k);

 private:
  RobotId id_;
  std::size_t k_;
  bool settled_ = false;
  bool backtracking_ = false;      // group mode of this robot
  Port parent_port_ = kInvalidPort;  // settled: DFS parent port (0 at root)
  Port last_tried_ = kInvalidPort;   // settled: rotor over child ports
};

AlgorithmFactory dfs_dispersion_factory();

}  // namespace dyndisp::baselines
