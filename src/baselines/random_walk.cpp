#include "baselines/random_walk.h"

#include "util/bits.h"

namespace dyndisp::baselines {

RandomWalkRobot::RandomWalkRobot(RobotId id, std::size_t k, std::uint64_t seed)
    : id_(id), k_(k), rng_(seed ^ (0x9E3779B97F4A7C15ULL * id)) {}

Port RandomWalkRobot::step(const RobotView& view) {
  if (view.colocated.front() == id_) return kInvalidPort;  // settler stays
  if (view.degree == 0) return kInvalidPort;
  return static_cast<Port>(rng_.below(view.degree) + 1);
}

void RandomWalkRobot::serialize(BitWriter& out) const {
  out.write(id_, bit_width_for(static_cast<std::uint64_t>(k_) + 1));
  // The walker's PRNG state is carried between rounds: 256 bits. Serialized
  // by value so the meter counts it (and clones replay identically).
  Rng copy = rng_;
  for (int i = 0; i < 4; ++i) out.write(copy.next_u64(), 64);
}

AlgorithmFactory random_walk_factory(std::uint64_t seed) {
  return [seed](RobotId id, std::size_t k) {
    return std::make_unique<RandomWalkRobot>(id, k, seed);
  };
}

}  // namespace dyndisp::baselines
