#include "baselines/dfs_dispersion.h"

#include <cassert>

#include "util/bits.h"

namespace dyndisp::baselines {
namespace {

constexpr unsigned kPortBits = 16;

}  // namespace

DfsDispersionRobot::DfsDispersionRobot(RobotId id, std::size_t k)
    : id_(id), k_(k) {}

std::unique_ptr<RobotAlgorithm> DfsDispersionRobot::clone() const {
  return std::make_unique<DfsDispersionRobot>(*this);
}

void DfsDispersionRobot::serialize(BitWriter& out) const {
  out.write(id_, bit_width_for(static_cast<std::uint64_t>(k_) + 1));
  out.write_bool(settled_);
  out.write_bool(backtracking_);
  out.write(parent_port_, kPortBits);
  out.write(last_tried_, kPortBits);
}

DfsDispersionRobot::PeerState DfsDispersionRobot::decode(
    const std::vector<std::uint8_t>& bytes, std::size_t /*bit_count_hint*/,
    std::size_t k) {
  BitReader r(bytes);
  PeerState s;
  s.id = static_cast<RobotId>(
      r.read(bit_width_for(static_cast<std::uint64_t>(k) + 1)));
  s.settled = r.read_bool();
  s.backtracking = r.read_bool();
  s.parent_port = static_cast<Port>(r.read(kPortBits));
  s.last_tried = static_cast<Port>(r.read(kPortBits));
  return s;
}

Port DfsDispersionRobot::step(const RobotView& view) {
  // On dynamic graphs stored ports can refer to edges that no longer exist
  // (the algorithm is a static-graph design); wrap any stale port onto the
  // current port range instead of aborting. This is part of the observed
  // failure mode, not a fix for it.
  const auto clamp = [&view](Port p) -> Port {
    if (p == kInvalidPort || view.degree == 0) return kInvalidPort;
    return p <= view.degree
               ? p
               : static_cast<Port>((p - 1) % view.degree + 1);
  };

  // Decode the co-located robots' start-of-round states.
  std::vector<PeerState> peers;
  peers.reserve(view.colocated.size());
  for (std::size_t i = 0; i < view.colocated.size(); ++i) {
    PeerState s = decode(view.colocated_state(i), 0, view.k);
    s.id = view.colocated[i];  // authoritative ID from the view
    peers.push_back(s);
  }

  const PeerState* settled_here = nullptr;
  RobotId smallest_unsettled = kNoRobot;
  bool any_backtracker = false;
  for (const PeerState& s : peers) {
    if (s.settled) {
      settled_here = &s;
    } else {
      if (smallest_unsettled == kNoRobot || s.id < smallest_unsettled)
        smallest_unsettled = s.id;
      if (s.backtracking) any_backtracker = true;
    }
  }

  if (settled_) {
    // A settled robot is this node's marker. It never moves, but it mirrors
    // the group's deterministic decision to keep its rotor current: a
    // backtracking group advances the rotor to the next untried port.
    if (any_backtracker) {
      for (Port p = last_tried_ + 1; p <= view.degree; ++p) {
        if (p != parent_port_) {
          last_tried_ = p;
          break;
        }
      }
    }
    return kInvalidPort;
  }

  // --- Unsettled robot ---
  if (settled_here == nullptr) {
    // Fresh (never-settled) node: the smallest unsettled robot settles.
    const Port group_arrival = view.arrival_port;
    if (id_ == smallest_unsettled) {
      settled_ = true;
      parent_port_ = group_arrival;
      // Record the port the remaining group departs through (if any).
      last_tried_ = kInvalidPort;
      for (Port p = 1; p <= view.degree; ++p) {
        if (p != group_arrival) {
          last_tried_ = p;
          break;
        }
      }
      if (last_tried_ == kInvalidPort)
        last_tried_ = static_cast<Port>(view.degree);  // rotor exhausted
      return kInvalidPort;
    }
    // The rest of the group explores the smallest non-parent port, or
    // backtracks when the fresh node is a dead end.
    for (Port p = 1; p <= view.degree; ++p) {
      if (p != group_arrival) {
        backtracking_ = false;
        return p;
      }
    }
    if (group_arrival != kInvalidPort) {
      backtracking_ = true;
      return clamp(group_arrival);
    }
    return kInvalidPort;  // isolated node: nowhere to go this round
  }

  // Node already settled.
  if (!backtracking_ && view.arrival_port != kInvalidPort) {
    // Forward arrival at a visited node: bounce back where we came from.
    backtracking_ = true;
    return clamp(view.arrival_port);
  }
  // Backtracking (or stationary start on a settled node): take the next
  // untried child port from the marker's rotor, else climb to the parent.
  for (Port p = settled_here->last_tried + 1; p <= view.degree; ++p) {
    if (p != settled_here->parent_port) {
      backtracking_ = false;
      return p;
    }
  }
  if (settled_here->parent_port != kInvalidPort) {
    backtracking_ = true;
    return clamp(settled_here->parent_port);
  }
  return kInvalidPort;  // exhausted root: wait (cannot happen while k <= n)
}

AlgorithmFactory dfs_dispersion_factory() {
  return [](RobotId id, std::size_t k) {
    return std::make_unique<DfsDispersionRobot>(id, k);
  };
}

}  // namespace dyndisp::baselines
