// Deterministic coordinated walk with GLOBAL communication but NO
// 1-neighborhood knowledge -- the exact setting of Theorem 2. Surplus
// robots leave their node through a pseudo-deterministic port schedule
// (a hash of robot ID and round), the strongest thing a robot can do when
// it cannot see which neighbors are occupied: pick ports obliviously and
// rely on global communication for termination detection.
//
// On static graphs this scatters (slowly). Under the clique-trap adversary
// it visits zero new nodes forever: the adversary predicts the schedule and
// rewires an edge no robot uses (the paper's Theorem 2 construction).
#pragma once

#include <memory>
#include <string>

#include "sim/algorithm.h"

namespace dyndisp::baselines {

class BlindWalkRobot final : public RobotAlgorithm {
 public:
  BlindWalkRobot(RobotId id, std::size_t k) : id_(id), k_(k) {}

  std::unique_ptr<RobotAlgorithm> clone() const override {
    return std::make_unique<BlindWalkRobot>(*this);
  }
  Port step(const RobotView& view) override;
  void serialize(BitWriter& out) const override;
  std::string name() const override { return "blind-walk(global,no-1-nbhd)"; }
  bool requires_global_comm() const override { return true; }
  bool requires_neighborhood() const override { return false; }

 private:
  RobotId id_;
  std::size_t k_;
};

AlgorithmFactory blind_walk_factory();

}  // namespace dyndisp::baselines
