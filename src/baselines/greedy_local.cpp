#include "baselines/greedy_local.h"

#include "util/bits.h"

namespace dyndisp::baselines {

Port GreedyLocalRobot::step(const RobotView& view) {
  // The smallest-ID robot on a node is its settler and never moves.
  if (view.colocated.front() == id_) return kInvalidPort;

  // Surplus robot. Preferred: a visibly empty neighbor (smallest port).
  if (!view.empty_ports.empty()) {
    // Spread surplus robots over distinct empty ports: the j-th surplus
    // robot (by ID rank on this node) takes the j-th empty port.
    std::size_t rank = 0;
    for (const RobotId peer : view.colocated) {
      if (peer == id_) break;
      ++rank;
    }
    // rank >= 1 (smallest stays); surplus ranks start at 1.
    const std::size_t idx = (rank - 1) % view.empty_ports.size();
    return view.empty_ports[idx];
  }

  // Otherwise move toward a strictly less-crowded occupied neighbor.
  const std::size_t here = view.node_count;
  Port best = kInvalidPort;
  std::size_t best_count = here - 1;  // require neighbor count < here - 1
  for (const NeighborInfo& nb : view.occupied_neighbors) {
    if (nb.count < best_count) {
      best_count = nb.count;
      best = nb.port;
    }
  }
  return best;
}

void GreedyLocalRobot::serialize(BitWriter& out) const {
  out.write(id_, bit_width_for(static_cast<std::uint64_t>(k_) + 1));
}

AlgorithmFactory greedy_local_factory() {
  return [](RobotId id, std::size_t k) {
    return std::make_unique<GreedyLocalRobot>(id, k);
  };
}

}  // namespace dyndisp::baselines
