#include "baselines/blind_walk.h"

#include "util/bits.h"

namespace dyndisp::baselines {

Port BlindWalkRobot::step(const RobotView& view) {
  if (view.colocated.front() == id_) return kInvalidPort;  // settler stays
  if (view.degree == 0) return kInvalidPort;
  // Knuth-style multiplicative hash over (id, round): a deterministic but
  // round-varying port schedule.
  const std::uint64_t h =
      (static_cast<std::uint64_t>(id_) * 0x9E3779B97F4A7C15ULL) ^
      (view.round * 0xC2B2AE3D27D4EB4FULL);
  return static_cast<Port>(h % view.degree + 1);
}

void BlindWalkRobot::serialize(BitWriter& out) const {
  out.write(id_, bit_width_for(static_cast<std::uint64_t>(k_) + 1));
}

AlgorithmFactory blind_walk_factory() {
  return [](RobotId id, std::size_t k) {
    return std::make_unique<BlindWalkRobot>(id, k);
  };
}

}  // namespace dyndisp::baselines
