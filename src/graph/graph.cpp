#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/contract.h"
#include "util/parallel.h"

namespace dyndisp {

Graph Graph::from_edges(std::size_t n,
                        const std::vector<std::pair<NodeId, NodeId>>& edges) {
  Graph g(n);
  // Pre-size each adjacency list to its final degree so dense builders
  // (cliques, trap graphs) do no reallocation during insertion.
  std::vector<std::size_t> degree(n, 0);
  for (const auto& [u, v] : edges) {
    ++degree[u];
    ++degree[v];
  }
  for (NodeId v = 0; v < n; ++v) g.adj_[v].reserve(degree[v]);
  for (const auto& [u, v] : edges) g.add_edge(u, v);
  return g;
}

Graph Graph::from_port_edges(std::size_t n, const std::vector<Edge>& edges) {
  Graph g(n);
  // First pass: degrees are the highest port named at each endpoint.
  std::vector<std::size_t> degree(n, 0);
  for (const Edge& e : edges) {
    if (e.u >= n || e.v >= n)
      throw std::invalid_argument("from_port_edges: endpoint out of range");
    if (e.u == e.v)
      throw std::invalid_argument("from_port_edges: self-loop");
    if (e.port_u == kInvalidPort || e.port_v == kInvalidPort)
      throw std::invalid_argument("from_port_edges: invalid port");
    degree[e.u] = std::max(degree[e.u], static_cast<std::size_t>(e.port_u));
    degree[e.v] = std::max(degree[e.v], static_cast<std::size_t>(e.port_v));
  }
  for (NodeId v = 0; v < n; ++v)
    g.adj_[v].assign(degree[v], HalfEdge{});
  for (const Edge& e : edges) {
    HalfEdge& at_u = g.adj_[e.u][e.port_u - 1];
    HalfEdge& at_v = g.adj_[e.v][e.port_v - 1];
    if (at_u.to != kInvalidNode || at_v.to != kInvalidNode)
      throw std::invalid_argument("from_port_edges: duplicate port");
    at_u = HalfEdge{e.v, e.port_v};
    at_v = HalfEdge{e.u, e.port_u};
    g.fp_edges_ ^= fp_edge_term(e.u, e.v, e.port_u, e.port_v);
    ++g.edge_count_;
  }
  // Every port in [1, degree] must have been named (contiguity), and the
  // usual simple-graph invariants must hold; validate() checks both.
  for (NodeId v = 0; v < n; ++v)
    for (const HalfEdge& he : g.adj_[v])
      if (he.to == kInvalidNode)
        throw std::invalid_argument("from_port_edges: port gap at node " +
                                    std::to_string(v));
  if (std::string err = g.validate(); !err.empty())
    throw std::invalid_argument("from_port_edges: " + err);
  return g;
}

std::size_t Graph::max_degree() const {
  std::size_t d = 0;
  for (const auto& inc : adj_) d = std::max(d, inc.size());
  return d;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  // Scan the lower-degree endpoint: membership is symmetric, and hub-and-
  // spoke graphs (stars, blobs) make the asymmetry a k-fold saving.
  if (adj_[v].size() < adj_[u].size()) std::swap(u, v);
  for (const auto& he : adj_[u])
    if (he.to == v) return true;
  return false;
}

Port Graph::port_to(NodeId u, NodeId v) const {
  // Same lower-degree trick: v's half-edge back to u records the port at u
  // as its reverse_port, so scanning the shorter list still answers for u.
  if (adj_[v].size() < adj_[u].size()) {
    for (const auto& he : adj_[v])
      if (he.to == u) return he.reverse_port;
    return kInvalidPort;
  }
  for (std::size_t i = 0; i < adj_[u].size(); ++i)
    if (adj_[u][i].to == v) return static_cast<Port>(i + 1);
  return kInvalidPort;
}

std::pair<Port, Port> Graph::add_edge(NodeId u, NodeId v) {
  assert(u < adj_.size() && v < adj_.size());
  assert(u != v && "self-loops are not part of the model");
  assert(!has_edge(u, v) && "parallel edges are not part of the model");
  const Port pu = static_cast<Port>(adj_[u].size() + 1);
  const Port pv = static_cast<Port>(adj_[v].size() + 1);
  adj_[u].push_back(HalfEdge{v, pv});
  adj_[v].push_back(HalfEdge{u, pu});
  fp_edges_ ^= fp_edge_term(u, v, pu, pv);
  ++edge_count_;
  return {pu, pv};
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  const Port pu = port_to(u, v);
  if (pu == kInvalidPort) return false;
  const Port pv = adj_[u][pu - 1].reverse_port;
  fp_edges_ ^= fp_edge_term(u, v, pu, pv);

  auto drop = [&](NodeId a, Port pa) {
    // Port compaction relabels every edge sitting above pa at `a`, so their
    // fingerprint terms change: XOR the old terms out before the shift and
    // the new ones back in after. The removed edge itself sits AT pa (never
    // above it), so its stale twin at the second drop is not re-counted.
    for (std::size_t i = pa; i < adj_[a].size(); ++i) {
      const HalfEdge& he = adj_[a][i];
      fp_edges_ ^= fp_edge_term(a, he.to, static_cast<Port>(i + 1),
                                he.reverse_port);
    }
    adj_[a].erase(adj_[a].begin() + (pa - 1));
    // Compact: every half-edge that used to sit at a port > pa shifts down;
    // fix the reverse_port recorded at the far endpoint.
    for (std::size_t i = pa - 1; i < adj_[a].size(); ++i) {
      const HalfEdge& he = adj_[a][i];
      adj_[he.to][he.reverse_port - 1].reverse_port = static_cast<Port>(i + 1);
      fp_edges_ ^= fp_edge_term(a, he.to, static_cast<Port>(i + 1),
                                he.reverse_port);
    }
  };
  drop(u, pu);
  // pv is still valid at v: dropping at u only rewrote reverse ports stored
  // at *other* endpoints of u's edges; the edge {u,v} itself is gone from u.
  drop(v, pv);
  --edge_count_;
  return true;
}

void Graph::rewire_edge(NodeId u, NodeId v, NodeId x, NodeId y) {
  const Port pu = port_to(u, v);
  assert(pu != kInvalidPort && "rewire_edge requires the edge {u,v}");
  const Port pv = adj_[u][pu - 1].reverse_port;
  assert(x != u && !has_edge(u, x));
  assert(y != v && !has_edge(v, y));
  const Port px = static_cast<Port>(adj_[x].size() + 1);
  adj_[x].push_back(HalfEdge{u, pu});
  adj_[u][pu - 1] = HalfEdge{x, px};
  const Port py = static_cast<Port>(adj_[y].size() + 1);
  adj_[y].push_back(HalfEdge{v, pv});
  adj_[v][pv - 1] = HalfEdge{y, py};
  fp_edges_ ^= fp_edge_term(u, v, pu, pv) ^ fp_edge_term(u, x, pu, px) ^
               fp_edge_term(v, y, pv, py);
  ++edge_count_;
}

void Graph::permute_ports(NodeId v, const std::vector<std::size_t>& perm) {
  std::vector<HalfEdge> scratch;
  permute_ports_impl(v, perm, scratch);
}

void Graph::permute_ports_impl(NodeId v, const std::vector<std::size_t>& perm,
                               std::vector<HalfEdge>& scratch) {
  assert(perm.size() == adj_[v].size());
  // Every incident edge's port at v changes, so retire all of v's terms and
  // re-add them after the permutation (reverse ports elsewhere included).
  for (std::size_t i = 0; i < adj_[v].size(); ++i) {
    const HalfEdge& he = adj_[v][i];
    fp_edges_ ^=
        fp_edge_term(v, he.to, static_cast<Port>(i + 1), he.reverse_port);
  }
  scratch.resize(adj_[v].size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    assert(perm[i] < scratch.size());
    scratch[perm[i]] = adj_[v][i];
  }
  std::copy(scratch.begin(), scratch.end(), adj_[v].begin());
  for (std::size_t i = 0; i < adj_[v].size(); ++i) {
    const HalfEdge& he = adj_[v][i];
    adj_[he.to][he.reverse_port - 1].reverse_port = static_cast<Port>(i + 1);
    fp_edges_ ^=
        fp_edge_term(v, he.to, static_cast<Port>(i + 1), he.reverse_port);
  }
}

void Graph::shuffle_ports(Rng& rng) {
  std::vector<std::size_t> perm;
  std::vector<HalfEdge> scratch;
  for (NodeId v = 0; v < adj_.size(); ++v) {
    perm.resize(adj_[v].size());
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    rng.shuffle(perm);
    permute_ports_impl(v, perm, scratch);
  }
}

DYNDISP_HOT
void Graph::shuffle_ports_counter(std::uint64_t seed, std::uint64_t draw,
                                  ThreadPool* pool) {
  const std::size_t n = adj_.size();
  const CounterRng streams(seed, draw);
  std::vector<std::size_t> off(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) off[v + 1] = off[v] + adj_[v].size();
  // new_port[off[v] + i] is the new 1-based port of the half-edge currently
  // at 0-based slot i of v: each node permutes its own CSR segment from its
  // forked stream, so the pass is lane-safe and order-independent.
  std::vector<Port> new_port(off[n]);
  parallel_for(pool, n, [&](std::size_t v) {
    Port* seg = new_port.data() + off[v];
    const std::size_t d = adj_[v].size();
    for (std::size_t i = 0; i < d; ++i) seg[i] = static_cast<Port>(i + 1);
    const CounterRng node = streams.fork(v);
    for (std::size_t j = d; j > 1; --j)
      std::swap(seg[j - 1], seg[node.below(j, j)]);
  });
  // Relabeled rows are staged into a flat scratch first: the rebuild reads
  // OTHER nodes' old slots (for reverse ports), so writing adj_ in place
  // would race across lanes. The copy-back pass then owns each row.
  std::vector<HalfEdge> rebuilt(off[n]);
  parallel_for(pool, n, [&](std::size_t v) {
    const std::size_t base = off[v];
    for (std::size_t i = 0; i < adj_[v].size(); ++i) {
      const HalfEdge& he = adj_[v][i];
      const Port np = new_port[base + i];
      const Port nrev = new_port[off[he.to] + he.reverse_port - 1];
      rebuilt[base + np - 1] = HalfEdge{he.to, nrev};
    }
  });
  parallel_for(pool, n, [&](std::size_t v) {
    std::copy(rebuilt.begin() + static_cast<std::ptrdiff_t>(off[v]),
              rebuilt.begin() + static_cast<std::ptrdiff_t>(off[v + 1]),
              adj_[v].begin());
  });
  // Every port changed; rebuild the edge fingerprint in one sweep.
  std::uint64_t fp = 0;
  for (NodeId v = 0; v < n; ++v)
    for (std::size_t i = 0; i < adj_[v].size(); ++i) {
      const HalfEdge& he = adj_[v][i];
      if (v < he.to)
        fp ^= fp_edge_term(v, he.to, static_cast<Port>(i + 1),
                           he.reverse_port);
    }
  fp_edges_ = fp;
}

std::vector<Graph::Edge> Graph::edges() const {
  std::vector<Edge> result;
  edges_into(result);
  return result;
}

void Graph::edges_into(std::vector<Edge>& out) const {
  out.clear();
  out.reserve(edge_count_);
  for (NodeId u = 0; u < adj_.size(); ++u) {
    for (std::size_t i = 0; i < adj_[u].size(); ++i) {
      const HalfEdge& he = adj_[u][i];
      if (u < he.to) {
        out.push_back(Edge{u, he.to, static_cast<Port>(i + 1),
                           he.reverse_port});
      }
    }
  }
}

void Graph::reset_assembly(std::size_t n) {
  // clear() per row (not adj_.assign) keeps each row's heap block for the
  // refill; shrinking drops surplus rows' storage only when n shrinks.
  adj_.resize(n);
  for (auto& row : adj_) row.clear();
  edge_count_ = 0;
  fp_edges_ = 0;
}

void Graph::commit_assembly(std::size_t edge_count, std::uint64_t fp_edges) {
  edge_count_ = edge_count;
  fp_edges_ = fp_edges;
  assert(validate().empty() && "bulk assembly produced an invalid graph");
}

Graph::Delta Graph::delta(const Graph& prev) const {
  Delta out;
  delta_into(prev, out);
  return out;
}

void Graph::delta_into(const Graph& prev, Delta& out) const {
  out.changed_nodes.clear();
  out.added.clear();
  out.removed.clear();
  out.node_count_changed = adj_.size() != prev.adj_.size();
  if (out.node_count_changed) return;
  for (NodeId v = 0; v < adj_.size(); ++v)
    if (adj_[v] != prev.adj_[v]) out.changed_nodes.push_back(v);
  // Edge-level diff only needs the changed nodes: a port-labeled edge that
  // appears or disappears (or is relabeled) changes the adjacency of BOTH
  // endpoints, so scanning changed nodes and emitting at the lower endpoint
  // sees every difference exactly once.
  auto collect = [&](const Graph& g, const Graph& other,
                     std::vector<Edge>& sink) {
    for (NodeId v : out.changed_nodes) {
      for (std::size_t i = 0; i < g.adj_[v].size(); ++i) {
        const HalfEdge& he = g.adj_[v][i];
        if (v >= he.to) continue;
        const bool present_in_other =
            i < other.adj_[v].size() && other.adj_[v][i] == he;
        if (!present_in_other)
          sink.push_back(Edge{v, he.to, static_cast<Port>(i + 1),
                              he.reverse_port});
      }
    }
  };
  collect(*this, prev, out.added);
  collect(prev, *this, out.removed);
}

bool Graph::changed_nodes_into(const Graph& prev, std::vector<NodeId>& out,
                               std::size_t cap) const {
  out.clear();
  if (adj_.size() != prev.adj_.size()) return false;
  for (NodeId v = 0; v < adj_.size(); ++v) {
    if (adj_[v] == prev.adj_[v]) continue;
    if (out.size() >= cap) return false;
    out.push_back(v);
  }
  return true;
}

std::string Graph::validate() const {
  // Error strings are formatted only on failure: this runs once per round
  // on every adversary-emitted graph, so the success path must stay
  // allocation-free (a stream per half-edge used to dominate validation).
  std::size_t half_edges = 0;
  for (NodeId v = 0; v < adj_.size(); ++v) {
    half_edges += adj_[v].size();
    for (std::size_t i = 0; i < adj_[v].size(); ++i) {
      const HalfEdge& he = adj_[v][i];
      if (he.to >= adj_.size()) {
        return "node " + std::to_string(v) + " port " + std::to_string(i + 1) +
               " points outside graph";
      }
      if (he.to == v) {
        return "self-loop at node " + std::to_string(v);
      }
      if (he.reverse_port == kInvalidPort ||
          he.reverse_port > adj_[he.to].size()) {
        return "node " + std::to_string(v) + " port " + std::to_string(i + 1) +
               " has bad reverse port";
      }
      const HalfEdge& back = adj_[he.to][he.reverse_port - 1];
      if (back.to != v || back.reverse_port != static_cast<Port>(i + 1)) {
        return "reverse port mismatch on edge {" + std::to_string(v) + "," +
               std::to_string(he.to) + "}";
      }
      for (std::size_t j = i + 1; j < adj_[v].size(); ++j) {
        if (adj_[v][j].to == he.to) {
          return "parallel edge {" + std::to_string(v) + "," +
                 std::to_string(he.to) + "}";
        }
      }
    }
  }
  if (half_edges != 2 * edge_count_) {
    return "edge_count out of sync with adjacency";
  }
  return {};
}

}  // namespace dyndisp
