#include "graph/local_view.h"

#include <algorithm>
#include <sstream>

namespace dyndisp {

LocalView local_view(const Graph& g, NodeId node,
                     const std::vector<std::size_t>& occupancy) {
  LocalView view;
  view.own_count = occupancy[node];
  view.degree = g.degree(node);
  view.neighbor_counts.reserve(view.degree);
  for (const HalfEdge& he : g.incident(node))
    view.neighbor_counts.push_back(occupancy[he.to]);
  return view;
}

std::string encode_view(const LocalView& view) {
  std::ostringstream os;
  os << "own=" << view.own_count << ";deg=" << view.degree << ";ports=";
  for (std::size_t i = 0; i < view.neighbor_counts.size(); ++i) {
    if (i) os << ',';
    os << view.neighbor_counts[i];
  }
  return os.str();
}

std::string encode_view_canonical(const LocalView& view) {
  LocalView sorted = view;
  std::sort(sorted.neighbor_counts.begin(), sorted.neighbor_counts.end());
  return encode_view(sorted);
}

bool views_symmetric(const Graph& g, NodeId a, NodeId b,
                     const std::vector<std::size_t>& occupancy) {
  return encode_view_canonical(local_view(g, a, occupancy)) ==
         encode_view_canonical(local_view(g, b, occupancy));
}

}  // namespace dyndisp
