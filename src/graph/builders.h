// Standard graph families used by tests, adversaries, and benches.
//
// Every builder returns a Graph whose port labels follow deterministic
// insertion order; callers that want adversarial or randomized labelings
// apply Graph::shuffle_ports afterwards.
#pragma once

#include <cstddef>

#include "graph/graph.h"
#include "util/rng.h"

namespace dyndisp::builders {

/// Path 0-1-2-...-(n-1). Requires n >= 1.
Graph path(std::size_t n);

/// Cycle 0-1-...-(n-1)-0. Requires n >= 3.
Graph cycle(std::size_t n);

/// Star with center 0 and leaves 1..n-1. Requires n >= 1.
Graph star(std::size_t n);

/// Complete graph K_n. Requires n >= 1.
Graph complete(std::size_t n);

/// Complete bipartite K_{a,b}; side A is nodes [0,a), side B is [a, a+b).
Graph complete_bipartite(std::size_t a, std::size_t b);

/// rows x cols grid; node (r, c) has index r*cols + c. Requires rows, cols >= 1.
Graph grid(std::size_t rows, std::size_t cols);

/// rows x cols torus (grid with wraparound). Requires rows, cols >= 3.
Graph torus(std::size_t rows, std::size_t cols);

/// d-dimensional hypercube with 2^d nodes. Requires d >= 1.
Graph hypercube(std::size_t d);

/// Complete binary tree with n nodes (heap indexing: children 2i+1, 2i+2).
Graph binary_tree(std::size_t n);

/// Lollipop: K_m attached to a path of p extra nodes. Requires m >= 1.
Graph lollipop(std::size_t m, std::size_t p);

/// Uniform random labeled tree via a random Prüfer sequence. Requires n >= 1.
Graph random_tree(std::size_t n, Rng& rng);

/// Connected random graph: a random tree plus `extra_edges` distinct random
/// non-tree edges (clamped to the number of available slots).
Graph random_connected(std::size_t n, std::size_t extra_edges, Rng& rng);

/// Connected Erdos-Renyi-style graph: each non-tree pair kept with
/// probability p on top of a random spanning tree.
Graph random_connected_p(std::size_t n, double p, Rng& rng);

}  // namespace dyndisp::builders
