// Standard graph families used by tests, adversaries, and benches.
//
// Every builder returns a Graph whose port labels follow deterministic
// insertion order; callers that want adversarial or randomized labelings
// apply Graph::shuffle_ports afterwards.
#pragma once

#include <cstddef>

#include "graph/graph.h"
#include "util/rng.h"

namespace dyndisp {
class ThreadPool;  // util/parallel.h
}

namespace dyndisp::builders {

/// Path 0-1-2-...-(n-1). Requires n >= 1.
Graph path(std::size_t n);

/// Cycle 0-1-...-(n-1)-0. Requires n >= 3.
Graph cycle(std::size_t n);

/// Star with center 0 and leaves 1..n-1. Requires n >= 1.
Graph star(std::size_t n);

/// Complete graph K_n. Requires n >= 1.
Graph complete(std::size_t n);

/// Complete bipartite K_{a,b}; side A is nodes [0,a), side B is [a, a+b).
Graph complete_bipartite(std::size_t a, std::size_t b);

/// rows x cols grid; node (r, c) has index r*cols + c. Requires rows, cols >= 1.
Graph grid(std::size_t rows, std::size_t cols);

/// rows x cols torus (grid with wraparound). Requires rows, cols >= 3.
Graph torus(std::size_t rows, std::size_t cols);

/// d-dimensional hypercube with 2^d nodes. Requires d >= 1.
Graph hypercube(std::size_t d);

/// Complete binary tree with n nodes (heap indexing: children 2i+1, 2i+2).
Graph binary_tree(std::size_t n);

/// Lollipop: K_m attached to a path of p extra nodes. Requires m >= 1.
Graph lollipop(std::size_t m, std::size_t p);

/// Uniform random labeled tree via a random Prüfer sequence. Requires n >= 1.
Graph random_tree(std::size_t n, Rng& rng);

/// Connected random graph: a random tree plus `extra_edges` distinct random
/// non-tree edges (clamped to the number of available slots).
Graph random_connected(std::size_t n, std::size_t extra_edges, Rng& rng);

/// Connected Erdos-Renyi-style graph: each non-tree pair kept with
/// probability p on top of a random spanning tree.
Graph random_connected_p(std::size_t n, double p, Rng& rng);

/// Reusable storage for random_connected_counter: one instance per adversary,
/// refilled in place every round so steady-state graph generation allocates
/// nothing (the k=10^6 row regenerates a million-node graph every round; the
/// fresh-vector churn of the sequential builder dominated its graph phase).
struct CounterBuildScratch {
  std::vector<std::uint32_t> prufer;
  std::vector<std::uint32_t> deg;      ///< Final degree per node.
  std::vector<std::uint32_t> eu, ev;   ///< Edge endpoints (tree then chords).
  std::vector<Port> pu, pv;            ///< Final port per edge side.
  std::vector<std::uint32_t> offsets;  ///< CSR incidence offsets (n + 1).
  std::vector<std::uint32_t> cursor;   ///< CSR fill cursors.
  std::vector<std::uint32_t> inc;      ///< CSR incident edge ids (2m).
  std::vector<Port> slot_port;         ///< Shuffled port per incidence slot.
  std::vector<std::uint64_t> table;    ///< Open-addressing edge membership.
};

/// Node-count floor for the counter-based builder in the regenerating
/// adversaries: below it they keep the legacy sequential Rng path (whose
/// exact draw sequences the golden small-n digests pin), above it they
/// switch to counter streams. Chosen under kParallelForSerialCutoff so
/// conformance sizes can straddle BOTH thresholds.
inline constexpr std::size_t kCounterBuilderMinNodes = 128;

/// Connected random graph with shuffled ports from counter-based RNG
/// streams: a uniform random tree (parallel Prüfer fill, linear smallest-
/// leaf decode) plus `extra_edges` distinct chords, with every node's port
/// labels independently Fisher-Yates-permuted -- the counter-stream
/// equivalent of random_connected + Graph::shuffle_ports, distribution-wise
/// (the draw sequences differ, so the sampled graph differs for a given
/// seed). (seed, draw) keys the graph: the same pair always yields the same
/// bytes, at any thread count of `pool` (or pool == nullptr), which is the
/// identity the adversary conformance suite pins. Requires n >= 3.
void random_connected_counter(std::size_t n, std::size_t extra_edges,
                              std::uint64_t seed, std::uint64_t draw,
                              ThreadPool* pool, CounterBuildScratch& scratch,
                              Graph& out);

}  // namespace dyndisp::builders
