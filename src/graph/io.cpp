#include "graph/io.h"

#include <sstream>
#include <stdexcept>

namespace dyndisp {

std::string to_dot(const Graph& g, const std::vector<std::size_t>& occupancy,
                   const std::string& name) {
  std::ostringstream os;
  os << "graph " << name << " {\n";
  os << "  node [shape=circle];\n";
  const bool with_occ = occupancy.size() == g.node_count();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    os << "  n" << v << " [label=\"" << v;
    if (with_occ && occupancy[v] > 0) os << "\\nr=" << occupancy[v];
    os << "\"";
    if (with_occ && occupancy[v] > 0)
      os << ", style=filled, fillcolor=" << (occupancy[v] > 1 ? "salmon" : "lightblue");
    os << "];\n";
  }
  for (const auto& e : g.edges()) {
    os << "  n" << e.u << " -- n" << e.v << " [taillabel=\"" << e.port_u
       << "\", headlabel=\"" << e.port_v << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_edge_list(const Graph& g) {
  std::ostringstream os;
  os << g.node_count() << ' ' << g.edge_count() << '\n';
  for (const auto& e : g.edges()) os << e.u << ' ' << e.v << '\n';
  return os.str();
}

Graph from_edge_list(const std::string& text) {
  std::istringstream is(text);
  std::size_t n = 0, m = 0;
  if (!(is >> n >> m)) throw std::invalid_argument("edge list: missing header");
  Graph g(n);
  for (std::size_t i = 0; i < m; ++i) {
    NodeId u, v;
    if (!(is >> u >> v))
      throw std::invalid_argument("edge list: truncated edge section");
    if (u >= n || v >= n)
      throw std::invalid_argument("edge list: endpoint out of range");
    if (u == v) throw std::invalid_argument("edge list: self-loop");
    if (g.has_edge(u, v)) throw std::invalid_argument("edge list: duplicate edge");
    g.add_edge(u, v);
  }
  return g;
}

}  // namespace dyndisp
