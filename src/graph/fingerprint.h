// Deterministic 64-bit structural fingerprints for port-labeled graphs.
//
// The fingerprint is an XOR of one mixed term per edge (a commutative
// accumulator), finalized with the node count, so Graph can maintain it
// INCREMENTALLY through every mutator: add/remove/rewire touch O(deg)
// terms, and reading the fingerprint is O(1). Two graphs with equal edge
// sets and equal port labelings always produce equal fingerprints; unequal
// graphs collide with probability ~2^-64 per pair. Consumers that need a
// hard guarantee (the engine's broadcast-reuse path) use the fingerprint
// as a fast reject and confirm with Graph::operator==; consumers that can
// tolerate the astronomical collision odds (validation skipping, cache
// keys whose misuse the differential oracle would catch) use it directly.
//
// The mixer is the splitmix64 finalizer over the same constants util/rng.h
// seeds with -- a fixed, seeded function, never std::hash (whose value is
// implementation-defined and would break cross-build determinism).
#pragma once

#include <cstdint>

#include "util/types.h"

namespace dyndisp {

/// splitmix64's output mixer: a fixed 64-bit bijection with full avalanche.
inline std::uint64_t fp_mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// The XOR-accumulator term of one port-labeled edge {u, v} with port pu at
/// u and pv at v. Canonicalized by endpoint id, so either endpoint computes
/// the identical term; any change to an endpoint or a port changes it.
inline std::uint64_t fp_edge_term(NodeId u, NodeId v, Port pu, Port pv) {
  if (v < u) {
    const NodeId tn = u; u = v; v = tn;
    const Port tp = pu; pu = pv; pv = tp;
  }
  const std::uint64_t endpoints =
      (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint64_t>(v);
  const std::uint64_t ports =
      (static_cast<std::uint64_t>(pu) << 32) | static_cast<std::uint64_t>(pv);
  return fp_mix(fp_mix(endpoints) ^ ports);
}

}  // namespace dyndisp
