#include "graph/builders.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <numeric>
#include <queue>

namespace dyndisp::builders {

Graph path(std::size_t n) {
  assert(n >= 1);
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph cycle(std::size_t n) {
  assert(n >= 3);
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  g.add_edge(static_cast<NodeId>(n - 1), 0);
  return g;
}

Graph star(std::size_t n) {
  assert(n >= 1);
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph complete(std::size_t n) {
  assert(n >= 1);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

Graph complete_bipartite(std::size_t a, std::size_t b) {
  Graph g(a + b);
  for (NodeId u = 0; u < a; ++u)
    for (NodeId v = 0; v < b; ++v) g.add_edge(u, static_cast<NodeId>(a + v));
  return g;
}

Graph grid(std::size_t rows, std::size_t cols) {
  assert(rows >= 1 && cols >= 1);
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph torus(std::size_t rows, std::size_t cols) {
  assert(rows >= 3 && cols >= 3);
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      g.add_edge(id(r, c), id(r, (c + 1) % cols));
      g.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return g;
}

Graph hypercube(std::size_t d) {
  assert(d >= 1 && d < 32);
  const std::size_t n = std::size_t{1} << d;
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t bit = 0; bit < d; ++bit) {
      const NodeId u = v ^ static_cast<NodeId>(1u << bit);
      if (v < u) g.add_edge(v, u);
    }
  }
  return g;
}

Graph binary_tree(std::size_t n) {
  assert(n >= 1);
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge((v - 1) / 2, v);
  return g;
}

Graph lollipop(std::size_t m, std::size_t p) {
  assert(m >= 1);
  Graph g(m + p);
  for (NodeId u = 0; u < m; ++u)
    for (NodeId v = u + 1; v < m; ++v) g.add_edge(u, v);
  for (std::size_t i = 0; i < p; ++i) {
    const NodeId tail = static_cast<NodeId>(m + i);
    g.add_edge(tail == m ? static_cast<NodeId>(m - 1) : tail - 1, tail);
  }
  return g;
}

Graph random_tree(std::size_t n, Rng& rng) {
  assert(n >= 1);
  Graph g(n);
  if (n == 1) return g;
  if (n == 2) {
    g.add_edge(0, 1);
    return g;
  }
  // Decode a uniformly random Prufer sequence: repeatedly join the smallest
  // remaining leaf to the next sequence element.
  std::vector<NodeId> prufer(n - 2);
  for (auto& x : prufer) x = static_cast<NodeId>(rng.below(n));
  std::vector<std::size_t> deg(n, 1);
  for (NodeId x : prufer) ++deg[x];
  // deg[v] is exactly v's final tree degree, so every adjacency list can be
  // sized once up front instead of growing through add_edge.
  for (NodeId v = 0; v < n; ++v) g.reserve_ports(v, deg[v]);
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> leaves;
  for (NodeId v = 0; v < n; ++v)
    if (deg[v] == 1) leaves.push(v);
  for (NodeId x : prufer) {
    const NodeId leaf = leaves.top();
    leaves.pop();
    g.add_edge(leaf, x);
    if (--deg[x] == 1) leaves.push(x);
  }
  const NodeId a = leaves.top();
  leaves.pop();
  const NodeId b = leaves.top();
  g.add_edge(a, b);
  return g;
}

Graph random_connected(std::size_t n, std::size_t extra_edges, Rng& rng) {
  Graph g = random_tree(n, rng);
  const std::size_t max_edges = n * (n - 1) / 2;
  std::size_t budget = std::min(extra_edges, max_edges - g.edge_count());
  std::size_t attempts = 0;
  const std::size_t attempt_cap = 50 * (budget + 1) + 100;
  while (budget > 0 && attempts++ < attempt_cap) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const NodeId v = static_cast<NodeId>(rng.below(n));
    if (u == v || g.has_edge(u, v)) continue;
    g.add_edge(u, v);
    --budget;
  }
  // Fall back to a deterministic sweep when rejection sampling stalls
  // (dense graphs): add the lexicographically first missing edges.
  if (budget > 0) {
    for (NodeId u = 0; u < n && budget > 0; ++u)
      for (NodeId v = u + 1; v < n && budget > 0; ++v)
        if (!g.has_edge(u, v)) {
          g.add_edge(u, v);
          --budget;
        }
  }
  return g;
}

Graph random_connected_p(std::size_t n, double p, Rng& rng) {
  Graph g = random_tree(n, rng);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v)
      if (!g.has_edge(u, v) && rng.chance(p)) g.add_edge(u, v);
  return g;
}

}  // namespace dyndisp::builders
