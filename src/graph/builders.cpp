#include "graph/builders.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <numeric>
#include <queue>

#include "util/contract.h"
#include "util/parallel.h"

namespace dyndisp::builders {

Graph path(std::size_t n) {
  assert(n >= 1);
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph cycle(std::size_t n) {
  assert(n >= 3);
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  g.add_edge(static_cast<NodeId>(n - 1), 0);
  return g;
}

Graph star(std::size_t n) {
  assert(n >= 1);
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph complete(std::size_t n) {
  assert(n >= 1);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

Graph complete_bipartite(std::size_t a, std::size_t b) {
  Graph g(a + b);
  for (NodeId u = 0; u < a; ++u)
    for (NodeId v = 0; v < b; ++v) g.add_edge(u, static_cast<NodeId>(a + v));
  return g;
}

Graph grid(std::size_t rows, std::size_t cols) {
  assert(rows >= 1 && cols >= 1);
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph torus(std::size_t rows, std::size_t cols) {
  assert(rows >= 3 && cols >= 3);
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      g.add_edge(id(r, c), id(r, (c + 1) % cols));
      g.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return g;
}

Graph hypercube(std::size_t d) {
  assert(d >= 1 && d < 32);
  const std::size_t n = std::size_t{1} << d;
  Graph g(n);
  for (NodeId v = 0; v < n; ++v) {
    for (std::size_t bit = 0; bit < d; ++bit) {
      const NodeId u = v ^ static_cast<NodeId>(1u << bit);
      if (v < u) g.add_edge(v, u);
    }
  }
  return g;
}

Graph binary_tree(std::size_t n) {
  assert(n >= 1);
  Graph g(n);
  for (NodeId v = 1; v < n; ++v) g.add_edge((v - 1) / 2, v);
  return g;
}

Graph lollipop(std::size_t m, std::size_t p) {
  assert(m >= 1);
  Graph g(m + p);
  for (NodeId u = 0; u < m; ++u)
    for (NodeId v = u + 1; v < m; ++v) g.add_edge(u, v);
  for (std::size_t i = 0; i < p; ++i) {
    const NodeId tail = static_cast<NodeId>(m + i);
    g.add_edge(tail == m ? static_cast<NodeId>(m - 1) : tail - 1, tail);
  }
  return g;
}

Graph random_tree(std::size_t n, Rng& rng) {
  assert(n >= 1);
  Graph g(n);
  if (n == 1) return g;
  if (n == 2) {
    g.add_edge(0, 1);
    return g;
  }
  // Decode a uniformly random Prufer sequence: repeatedly join the smallest
  // remaining leaf to the next sequence element.
  std::vector<NodeId> prufer(n - 2);
  for (auto& x : prufer) x = static_cast<NodeId>(rng.below(n));
  std::vector<std::size_t> deg(n, 1);
  for (NodeId x : prufer) ++deg[x];
  // deg[v] is exactly v's final tree degree, so every adjacency list can be
  // sized once up front instead of growing through add_edge.
  for (NodeId v = 0; v < n; ++v) g.reserve_ports(v, deg[v]);
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> leaves;
  for (NodeId v = 0; v < n; ++v)
    if (deg[v] == 1) leaves.push(v);
  for (NodeId x : prufer) {
    const NodeId leaf = leaves.top();
    leaves.pop();
    g.add_edge(leaf, x);
    if (--deg[x] == 1) leaves.push(x);
  }
  const NodeId a = leaves.top();
  leaves.pop();
  const NodeId b = leaves.top();
  g.add_edge(a, b);
  return g;
}

Graph random_connected(std::size_t n, std::size_t extra_edges, Rng& rng) {
  Graph g = random_tree(n, rng);
  const std::size_t max_edges = n * (n - 1) / 2;
  std::size_t budget = std::min(extra_edges, max_edges - g.edge_count());
  std::size_t attempts = 0;
  const std::size_t attempt_cap = 50 * (budget + 1) + 100;
  while (budget > 0 && attempts++ < attempt_cap) {
    const NodeId u = static_cast<NodeId>(rng.below(n));
    const NodeId v = static_cast<NodeId>(rng.below(n));
    if (u == v || g.has_edge(u, v)) continue;
    g.add_edge(u, v);
    --budget;
  }
  // Fall back to a deterministic sweep when rejection sampling stalls
  // (dense graphs): add the lexicographically first missing edges.
  if (budget > 0) {
    for (NodeId u = 0; u < n && budget > 0; ++u)
      for (NodeId v = u + 1; v < n && budget > 0; ++v)
        if (!g.has_edge(u, v)) {
          g.add_edge(u, v);
          --budget;
        }
  }
  return g;
}

Graph random_connected_p(std::size_t n, double p, Rng& rng) {
  Graph g = random_tree(n, rng);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v)
      if (!g.has_edge(u, v) && rng.chance(p)) g.add_edge(u, v);
  return g;
}

namespace {

/// Open-addressing membership over canonical (min<<32|max) edge keys; the
/// key is never the empty sentinel because min < max forces the high word
/// below 0xffffffff.
constexpr std::uint64_t kEmptySlot = ~std::uint64_t{0};

std::uint64_t edge_key(std::uint32_t u, std::uint32_t v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// Inserts `key`; false when already present. `table` is a power of two.
bool table_insert(std::vector<std::uint64_t>& table, std::uint64_t key) {
  const std::size_t mask = table.size() - 1;
  std::size_t h = fp_mix(key) & mask;
  while (table[h] != kEmptySlot) {
    if (table[h] == key) return false;
    h = (h + 1) & mask;
  }
  table[h] = key;
  return true;
}

}  // namespace

DYNDISP_HOT
void random_connected_counter(std::size_t n, std::size_t extra_edges,
                              std::uint64_t seed, std::uint64_t draw,
                              ThreadPool* pool, CounterBuildScratch& s,
                              Graph& out) {
  assert(n >= 3 && "counter builder serves the large-n adversary path");
  const CounterRng base(seed, draw);
  const CounterRng prufer_rng = base.fork(0);
  const CounterRng chord_rng = base.fork(1);
  const CounterRng port_rng = base.fork(2);

  std::size_t budget = std::min(extra_edges, n * (n - 1) / 2 - (n - 1));
  const std::size_t m_target = (n - 1) + budget;

  // 1. Prüfer sequence: one independent counter draw per position, so the
  //    fill fans out with no cross-lane state.
  s.prufer.resize(n - 2);
  parallel_for(pool, n - 2, [&](std::size_t i) {
    s.prufer[i] = static_cast<std::uint32_t>(prufer_rng.below(n, i));
  });

  // 2. Linear smallest-leaf decode, serial O(n): emits exactly the edges
  //    (in the same order) as random_tree's priority-queue decode for the
  //    same sequence -- the scan pointer always sits at the globally
  //    smallest available leaf, because a node below it that turns into a
  //    leaf is taken immediately via the x < ptr branch. The final leaf is
  //    joined to n-1, the largest label, which is never consumed earlier
  //    (the remaining tree keeps >= 2 leaves, so the largest is never the
  //    smallest one). test_builders pins this against a reference decode.
  s.deg.assign(n, 1);
  for (const std::uint32_t x : s.prufer) ++s.deg[x];
  // Edges land by index into the pre-sized lists (the hot-path contract:
  // resize refills warmed-up capacity, growth calls would reallocate); at
  // most m_target edges exist, and `m` below counts the ones emitted.
  s.eu.resize(m_target);
  s.ev.resize(m_target);
  std::size_t m = 0;
  {
    std::size_t ptr = 0;
    while (s.deg[ptr] != 1) ++ptr;
    std::size_t leaf = ptr;
    for (const std::uint32_t x : s.prufer) {
      s.eu[m] = static_cast<std::uint32_t>(leaf);
      s.ev[m] = x;
      ++m;
      if (--s.deg[x] == 1 && x < ptr) {
        leaf = x;
      } else {
        do {
          ++ptr;
        } while (s.deg[ptr] != 1);
        leaf = ptr;
      }
    }
    s.eu[m] = static_cast<std::uint32_t>(leaf);
    s.ev[m] = static_cast<std::uint32_t>(n - 1);
    ++m;
  }

  // 3. Chords: rejection sampling with O(1) membership. The registry's
  //    random family draws extra = Theta(n) chords, so membership runs
  //    through one open-addressing table (load factor <= 1/2, recycled
  //    across rounds) instead of per-attempt adjacency scans. Each attempt
  //    consumes exactly two indexed draws, accepted or not.
  std::size_t table_size = 1;
  while (table_size < 2 * (m_target + 1)) table_size <<= 1;
  if (s.table.size() != table_size)
    s.table.assign(table_size, kEmptySlot);
  else
    std::fill(s.table.begin(), s.table.end(), kEmptySlot);
  for (std::size_t e = 0; e < n - 1; ++e)
    table_insert(s.table, edge_key(s.eu[e], s.ev[e]));
  std::size_t attempts = 0;
  const std::size_t attempt_cap = 50 * (budget + 1) + 100;
  std::uint64_t t = 0;
  while (budget > 0 && attempts++ < attempt_cap) {
    const auto u = static_cast<std::uint32_t>(chord_rng.below(n, 2 * t));
    const auto v = static_cast<std::uint32_t>(chord_rng.below(n, 2 * t + 1));
    ++t;
    if (u == v || !table_insert(s.table, edge_key(u, v))) continue;
    s.eu[m] = u;
    s.ev[m] = v;
    ++m;
    --budget;
  }
  // Deterministic sweep fallback when rejection stalls (dense corner),
  // mirroring random_connected.
  for (std::uint32_t u = 0; u < n && budget > 0; ++u)
    for (std::uint32_t v = u + 1; v < n && budget > 0; ++v)
      if (table_insert(s.table, edge_key(u, v))) {
        s.eu[m] = u;
        s.ev[m] = v;
        ++m;
        --budget;
      }

  // 4. Incidence CSR over final degrees; canonical slot order at every node
  //    is edge-id order, the anchor the port permutation shuffles from.
  s.deg.assign(n, 0);
  for (std::size_t e = 0; e < m; ++e) {
    ++s.deg[s.eu[e]];
    ++s.deg[s.ev[e]];
  }
  s.offsets.resize(n + 1);
  s.offsets[0] = 0;
  for (std::size_t v = 0; v < n; ++v) s.offsets[v + 1] = s.offsets[v] + s.deg[v];
  s.cursor.assign(s.offsets.begin(), s.offsets.end() - 1);
  s.inc.resize(2 * m);
  for (std::size_t e = 0; e < m; ++e) {
    s.inc[s.cursor[s.eu[e]]++] = static_cast<std::uint32_t>(e);
    s.inc[s.cursor[s.ev[e]]++] = static_cast<std::uint32_t>(e);
  }

  // 5. Per-node Fisher-Yates port permutation from the node's forked
  //    stream, written into each node's own CSR segment; the same pass
  //    resolves the edge-side ports (pu[e] is written only by eu[e]'s node,
  //    pv[e] only by ev[e]'s, so lanes never collide).
  s.slot_port.resize(2 * m);
  s.pu.resize(m);
  s.pv.resize(m);
  parallel_for(pool, n, [&](std::size_t v) {
    const std::size_t off = s.offsets[v];
    const std::size_t d = s.offsets[v + 1] - off;
    Port* seg = s.slot_port.data() + off;
    for (std::size_t i = 0; i < d; ++i) seg[i] = static_cast<Port>(i + 1);
    const CounterRng node = port_rng.fork(v);
    for (std::size_t j = d; j > 1; --j)
      std::swap(seg[j - 1], seg[node.below(j, j)]);
    for (std::size_t i = 0; i < d; ++i) {
      const std::uint32_t e = s.inc[off + i];
      if (s.eu[e] == v)
        s.pu[e] = seg[i];
      else
        s.pv[e] = seg[i];
    }
  });

  // 6. Row fill (needs both sides' ports, hence the barrier between the
  //    passes) straight into the recycled adjacency rows, then one XOR
  //    sweep for the fingerprint.
  out.reset_assembly(n);
  parallel_for(pool, n, [&](std::size_t v) {
    const std::size_t off = s.offsets[v];
    const std::size_t d = s.offsets[v + 1] - off;
    std::vector<HalfEdge>& row = out.assembly_row(static_cast<NodeId>(v));
    row.resize(d);
    for (std::size_t i = 0; i < d; ++i) {
      const std::uint32_t e = s.inc[off + i];
      if (s.eu[e] == v)
        row[s.pu[e] - 1] = HalfEdge{s.ev[e], s.pv[e]};
      else
        row[s.pv[e] - 1] = HalfEdge{s.eu[e], s.pu[e]};
    }
  });
  std::uint64_t fp = 0;
  for (std::size_t e = 0; e < m; ++e)
    fp ^= fp_edge_term(s.eu[e], s.ev[e], s.pu[e], s.pv[e]);
  out.commit_assembly(m, fp);
}

}  // namespace dyndisp::builders
