// Graph (de)serialization: DOT for visual inspection, a simple edge-list
// format for round-tripping graphs through files and tests.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace dyndisp {

/// Renders `g` as Graphviz DOT. When `occupancy` is non-empty (size n),
/// node labels include robot counts and occupied nodes are filled.
std::string to_dot(const Graph& g,
                   const std::vector<std::size_t>& occupancy = {},
                   const std::string& name = "G");

/// Serializes as "n m\n" followed by one "u v" line per edge in port order.
std::string to_edge_list(const Graph& g);

/// Parses the to_edge_list format. Throws std::invalid_argument on
/// malformed input (bad counts, out-of-range endpoints, self-loops,
/// duplicate edges).
Graph from_edge_list(const std::string& text);

}  // namespace dyndisp
