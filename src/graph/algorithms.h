// Classic graph algorithms over the simulator-side Graph.
//
// These run with full topology knowledge and are used by the substrate
// itself (adversary validation, diameter computation, metrics) -- never by
// the robot algorithms, which only see ports and packets.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace dyndisp {

/// BFS hop distances from `source`; unreachable nodes get kUnreachable.
inline constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);
std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source);

/// True if the graph is connected (vacuously true for n <= 1).
bool is_connected(const Graph& g);

/// Connected components; returns component index per node (0-based,
/// numbered by smallest contained node).
std::vector<std::size_t> connected_components(const Graph& g);

/// Eccentricity of `source` (max BFS distance); requires connectivity.
std::size_t eccentricity(const Graph& g, NodeId source);

/// Exact diameter via all-pairs BFS; requires connectivity. D_r in the paper.
std::size_t diameter(const Graph& g);

/// A BFS spanning tree encoded as parent pointers (parent[source] = source).
/// Requires connectivity.
std::vector<NodeId> bfs_tree(const Graph& g, NodeId source);

/// Shortest path between two nodes as a node sequence (inclusive);
/// empty if unreachable.
std::vector<NodeId> shortest_path(const Graph& g, NodeId from, NodeId to);

/// True if the connected graph g is a tree (m == n - 1 and connected).
bool is_tree(const Graph& g);

}  // namespace dyndisp
