#include "graph/algorithms.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace dyndisp {

std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source) {
  std::vector<std::size_t> dist(g.node_count(), kUnreachable);
  std::queue<NodeId> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const HalfEdge& he : g.incident(v)) {
      if (dist[he.to] == kUnreachable) {
        dist[he.to] = dist[v] + 1;
        q.push(he.to);
      }
    }
  }
  return dist;
}

bool is_connected(const Graph& g) {
  if (g.node_count() <= 1) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::size_t d) { return d == kUnreachable; });
}

std::vector<std::size_t> connected_components(const Graph& g) {
  std::vector<std::size_t> comp(g.node_count(), kUnreachable);
  std::size_t next = 0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    if (comp[s] != kUnreachable) continue;
    const std::size_t id = next++;
    std::queue<NodeId> q;
    comp[s] = id;
    q.push(s);
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      for (const HalfEdge& he : g.incident(v)) {
        if (comp[he.to] == kUnreachable) {
          comp[he.to] = id;
          q.push(he.to);
        }
      }
    }
  }
  return comp;
}

std::size_t eccentricity(const Graph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  std::size_t ecc = 0;
  for (const std::size_t d : dist) {
    assert(d != kUnreachable && "eccentricity requires a connected graph");
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::size_t diameter(const Graph& g) {
  std::size_t d = 0;
  for (NodeId v = 0; v < g.node_count(); ++v)
    d = std::max(d, eccentricity(g, v));
  return d;
}

std::vector<NodeId> bfs_tree(const Graph& g, NodeId source) {
  std::vector<NodeId> parent(g.node_count(), kInvalidNode);
  std::queue<NodeId> q;
  parent[source] = source;
  q.push(source);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const HalfEdge& he : g.incident(v)) {
      if (parent[he.to] == kInvalidNode) {
        parent[he.to] = v;
        q.push(he.to);
      }
    }
  }
  return parent;
}

std::vector<NodeId> shortest_path(const Graph& g, NodeId from, NodeId to) {
  const auto parent = bfs_tree(g, from);
  if (parent[to] == kInvalidNode) return {};
  std::vector<NodeId> path;
  for (NodeId v = to; v != from; v = parent[v]) path.push_back(v);
  path.push_back(from);
  std::reverse(path.begin(), path.end());
  return path;
}

bool is_tree(const Graph& g) {
  return g.node_count() >= 1 && g.edge_count() == g.node_count() - 1 &&
         is_connected(g);
}

}  // namespace dyndisp
