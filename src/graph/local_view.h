// Canonical encodings of a node's 1-neighborhood "view".
//
// The impossibility proof of Theorem 1 rests on two nodes (w and x in
// Fig. 1) whose local information is symmetric: because port numbers are
// uncorrelated across nodes, no deterministic rule can make the robots on
// both nodes move in a consistent direction along the path. These helpers
// canonicalize what a robot can observe at a node so the symmetry can be
// asserted programmatically in tests and in the impossibility bench.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace dyndisp {

/// What a robot standing on `node` observes with 1-neighborhood knowledge.
/// `occupancy[v]` is the number of robots on node v (simulator-side input).
struct LocalView {
  std::size_t own_count = 0;            ///< robots co-located with the observer
  std::size_t degree = 0;               ///< deg(node) in the current graph
  /// Per port (index = port-1): robot count on the neighbor behind it.
  std::vector<std::size_t> neighbor_counts;
};

/// Extracts the local view of `node` in `g` under `occupancy`.
LocalView local_view(const Graph& g, NodeId node,
                     const std::vector<std::size_t>& occupancy);

/// Canonical string for a view *as observed through a fixed port labeling*.
std::string encode_view(const LocalView& view);

/// Canonical string invariant under port relabeling (sorts the per-port
/// attributes). Two nodes with equal canonical encodings are
/// indistinguishable to ID-oblivious deterministic rules, because the
/// adversary may renumber ports arbitrarily each round.
std::string encode_view_canonical(const LocalView& view);

/// True if nodes a and b are view-symmetric (equal canonical encodings).
bool views_symmetric(const Graph& g, NodeId a, NodeId b,
                     const std::vector<std::size_t>& occupancy);

}  // namespace dyndisp
