// Port-labeled anonymous undirected graph (Section II of the paper).
//
// Nodes carry no identifiers visible to algorithms; what the model exposes is
// that the edges incident to a node v are labeled by distinct ports in
// [1, deg(v)], and that an edge {u, v} has two independent port numbers, one
// per endpoint, with no correlation between them. The simulator uses internal
// NodeIds in [0, n) to represent topology; algorithm-facing layers translate
// everything into ports / robot IDs before handing information to robots.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/fingerprint.h"
#include "util/rng.h"
#include "util/types.h"

namespace dyndisp {

class ThreadPool;  // util/parallel.h

/// One endpoint's view of an incident edge.
struct HalfEdge {
  NodeId to = kInvalidNode;     ///< The neighbor this port leads to.
  Port reverse_port = kInvalidPort;  ///< The port of `to` that leads back.
};

/// Undirected simple graph with per-node contiguous port labels.
///
/// Ports are 1-based: node v with degree d exposes ports 1..d, and
/// `half_edge(v, p)` resolves port p. The class maintains the invariant that
/// reverse ports are consistent: if half_edge(v, p) == {u, q} then
/// half_edge(u, q) == {v, p}.
class Graph {
 public:
  Graph() = default;

  /// Creates an edgeless graph with `n` nodes.
  explicit Graph(std::size_t n) : adj_(n) {}

  /// Builds a graph from an edge list; ports are assigned in list order
  /// (the i-th edge incident to v gets port i+1 at v).
  static Graph from_edges(std::size_t n,
                          const std::vector<std::pair<NodeId, NodeId>>& edges);

  struct Edge;  // defined below

  /// Builds a graph from an edge list with EXPLICIT port labels at both
  /// endpoints -- the exact inverse of edges(), so a graph whose ports were
  /// shuffled round-trips bit-identically (scripted-adversary replay relies
  /// on this). Throws std::invalid_argument when the list is not a valid
  /// port-labeled simple graph (duplicate/missing ports, self-loops,
  /// out-of-range endpoints).
  static Graph from_port_edges(std::size_t n, const std::vector<Edge>& edges);

  std::size_t node_count() const { return adj_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  std::size_t degree(NodeId v) const { return adj_[v].size(); }

  /// Maximum degree over all nodes (Delta_r in the paper); 0 if edgeless.
  std::size_t max_degree() const;

  /// Resolves port `p` in [1, degree(v)] at node `v`.
  const HalfEdge& half_edge(NodeId v, Port p) const { return adj_[v][p - 1]; }

  /// The neighbor reached from `v` via port `p`.
  NodeId neighbor(NodeId v, Port p) const { return half_edge(v, p).to; }

  /// All incident half-edges of `v`, indexed by port-1.
  const std::vector<HalfEdge>& incident(NodeId v) const { return adj_[v]; }

  /// True if {u, v} is an edge (linear scan; graphs here are sparse).
  bool has_edge(NodeId u, NodeId v) const;

  /// Port at `u` leading to `v`, or kInvalidPort when {u,v} is not an edge.
  Port port_to(NodeId u, NodeId v) const;

  /// Adds the edge {u, v}; returns the (port at u, port at v) pair.
  /// Requires u != v and that the edge is not already present.
  std::pair<Port, Port> add_edge(NodeId u, NodeId v);

  /// Capacity hint: pre-sizes `v`'s adjacency for `degree` incident edges.
  /// Purely an allocation optimization for builders that know final degrees
  /// up front (adversaries regenerate a graph every round, so the growth
  /// reallocations of plain add_edge dominate generation at n >= 10^5).
  void reserve_ports(NodeId v, std::size_t degree) {
    adj_[v].reserve(degree);
  }

  /// Removes the edge {u, v} if present, compacting port labels so they stay
  /// contiguous (the ports of later edges shift down by one at each
  /// endpoint). Returns true if an edge was removed.
  bool remove_edge(NodeId u, NodeId v);

  /// Replaces the edge {u, v} with the two edges {u, x} and {v, y} while
  /// keeping the port layout at u and v intact: the port that led from u to v
  /// now leads to x, and the port that led from v to u now leads to y. The
  /// new half-edges at x and y are appended (highest ports). This is the
  /// surgical rewiring used by the Theorem 2 clique-trap adversary, which
  /// must not disturb any port a robot could have planned to use.
  /// Requires {u, v} present, {u, x} and {v, y} absent, x != u, y != v.
  void rewire_edge(NodeId u, NodeId v, NodeId x, NodeId y);

  /// Randomly permutes the port labels of every node. Models the adversary's
  /// freedom to choose arbitrary port numberings each round.
  void shuffle_ports(Rng& rng);

  /// Counter-stream sibling of shuffle_ports: every node's ports are
  /// independently Fisher-Yates-permuted from the per-node fork of the
  /// (seed, draw) stream, fanned over `pool` (null runs serially). Equal to
  /// shuffle_ports in distribution, not in draws -- and byte-identical at
  /// any thread count for a fixed (seed, draw), which is what lets the
  /// port-relabeling adversaries go parallel without losing determinism.
  void shuffle_ports_counter(std::uint64_t seed, std::uint64_t draw,
                             ThreadPool* pool);

  /// Applies an explicit port permutation at node `v`: `perm[i]` is the new
  /// 0-based position of the half-edge currently at 0-based position i.
  /// `perm` must be a permutation of [0, degree(v)).
  void permute_ports(NodeId v, const std::vector<std::size_t>& perm);

 private:
  /// permute_ports with caller-owned scratch: shuffle_ports permutes every
  /// node each round, so the rearrangement buffer is reused across nodes
  /// instead of allocated per call.
  void permute_ports_impl(NodeId v, const std::vector<std::size_t>& perm,
                          std::vector<HalfEdge>& scratch);

 public:

  /// All edges as (u, v, port at u, port at v) with u < v, in port order at u.
  struct Edge {
    NodeId u, v;
    Port port_u, port_v;

    bool operator==(const Edge&) const = default;
  };
  std::vector<Edge> edges() const;

  /// edges() into caller-owned storage (cleared first) so per-round callers
  /// (the churn adversary re-draws from the edge list every round) reuse the
  /// vector's capacity instead of reallocating it.
  void edges_into(std::vector<Edge>& out) const;

  /// -- Bulk assembly (trusted deterministic builders only) ----------------
  ///
  /// The flat counter-based builders assemble every adjacency row and the
  /// edge fingerprint themselves (possibly across threads), then commit the
  /// aggregate counters in one step -- the incremental bookkeeping of
  /// add_edge would serialize them. reset_assembly() sizes the graph to `n`
  /// nodes and clears every row WITHOUT releasing row capacity, so a
  /// regenerating adversary that recycles one Graph re-fills rows in place.
  /// Writers fill rows via assembly_row() (row[p-1] = {neighbor, reverse
  /// port}); commit_assembly() then installs the caller-computed edge count
  /// and XOR-of-fp_edge_term fingerprint. Debug builds re-validate the
  /// invariants; release builds trust the builder (the conformance suite
  /// pins builder output against the incremental path).
  void reset_assembly(std::size_t n);
  std::vector<HalfEdge>& assembly_row(NodeId v) { return adj_[v]; }
  void commit_assembly(std::size_t edge_count, std::uint64_t fp_edges);

  /// Deterministic 64-bit structural fingerprint of the port-labeled edge
  /// set plus the node count (see graph/fingerprint.h). Maintained
  /// incrementally by every mutator, so this is O(1). Equal graphs always
  /// have equal fingerprints; the converse holds up to ~2^-64 collisions.
  std::uint64_t fingerprint() const {
    return fp_mix(fp_edges_ ^ fp_mix(static_cast<std::uint64_t>(adj_.size())));
  }

  /// The structural difference against `prev` (typically last round's
  /// graph): which nodes' adjacency changed, and the port-labeled edges
  /// added/removed. A port relabeling of a surviving edge reports as one
  /// removed + one added edge -- port identity is part of edge identity
  /// here, because packets and plans depend on it. Cost: O(n + changed
  /// adjacency); unchanged nodes are compared vector-wise.
  struct Delta {
    /// Nodes whose incident half-edge list differs, ascending. When
    /// node_count_changed is true this list is empty (no meaningful diff).
    std::vector<NodeId> changed_nodes;
    std::vector<Edge> added;    ///< In this graph, not (identically) in prev.
    std::vector<Edge> removed;  ///< In prev, not (identically) in this graph.
    bool node_count_changed = false;

    bool empty() const {
      return !node_count_changed && changed_nodes.empty();
    }
  };
  Delta delta(const Graph& prev) const;

  /// delta() into caller-owned storage (cleared first) so the round loop
  /// can reuse the vectors' capacity across rounds.
  void delta_into(const Graph& prev, Delta& out) const;

  /// The changed-nodes part of delta() alone, abandoned early: fills `out`
  /// (cleared first) with the nodes whose adjacency differs from `prev`,
  /// ascending, and returns true -- unless more than `cap` nodes differ or
  /// the node counts differ, in which case it returns false with `out` in
  /// an unspecified partial state. The round loop's small-delta probe uses
  /// this so churn-heavy rounds pay for a prefix of the comparison, not a
  /// full edge-level diff they will immediately discard.
  bool changed_nodes_into(const Graph& prev, std::vector<NodeId>& out,
                          std::size_t cap) const;

  /// Verifies internal consistency (reverse ports, contiguity, simplicity).
  /// Returns an empty string when valid, else a description of the violation.
  std::string validate() const;

  bool operator==(const Graph& other) const {
    return adj_ == other.adj_;
  }

 private:
  std::vector<std::vector<HalfEdge>> adj_;
  std::size_t edge_count_ = 0;
  /// XOR of fp_edge_term over all edges; folded into fingerprint().
  std::uint64_t fp_edges_ = 0;

  friend bool operator==(const HalfEdge&, const HalfEdge&);
};

inline bool operator==(const HalfEdge& a, const HalfEdge& b) {
  return a.to == b.to && a.reverse_port == b.reverse_port;
}

}  // namespace dyndisp
