#include "viz/svg.h"

#include <cmath>
#include <sstream>
#include <vector>

namespace dyndisp::viz {
namespace {

constexpr double kPi = 3.14159265358979323846;

struct Point {
  double x, y;
};

/// Nodes on a circle, node 0 at 12 o'clock, clockwise.
std::vector<Point> circle_layout(std::size_t n, double size) {
  const double cx = size / 2, cy = size / 2;
  const double radius = size * 0.40;
  std::vector<Point> pts(n);
  for (std::size_t v = 0; v < n; ++v) {
    const double angle =
        -kPi / 2 + 2 * kPi * static_cast<double>(v) / static_cast<double>(n);
    pts[v] = {cx + radius * std::cos(angle), cy + radius * std::sin(angle)};
  }
  return pts;
}

void render_body(std::ostringstream& os, const Graph& g,
                 const Configuration& conf, const std::vector<Point>& pts,
                 double node_radius) {
  for (const auto& e : g.edges()) {
    os << "<line x1=\"" << pts[e.u].x << "\" y1=\"" << pts[e.u].y
       << "\" x2=\"" << pts[e.v].x << "\" y2=\"" << pts[e.v].y
       << "\" stroke=\"#b8b8b8\" stroke-width=\"1.5\"/>\n";
  }
  const auto occ = conf.occupancy();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const char* fill = occ[v] == 0 ? "#f4f4f4"
                       : occ[v] == 1 ? "#8fc7ff"
                                     : "#ff9b8f";
    os << "<circle cx=\"" << pts[v].x << "\" cy=\"" << pts[v].y << "\" r=\""
       << node_radius << "\" fill=\"" << fill
       << "\" stroke=\"#444\" stroke-width=\"1\"/>\n";
    os << "<text x=\"" << pts[v].x << "\" y=\"" << pts[v].y + node_radius / 3
       << "\" text-anchor=\"middle\" font-size=\"" << node_radius
       << "\" font-family=\"sans-serif\">";
    if (occ[v] > 0) {
      const auto robots = conf.robots_at(v);
      os << 'r' << robots.front();
      if (occ[v] > 1) os << "+" << occ[v] - 1;
    } else {
      os << v;
    }
    os << "</text>\n";
  }
}

std::string svg_open(std::size_t size) {
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << size
     << "\" height=\"" << size << "\" viewBox=\"0 0 " << size << ' ' << size
     << "\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  return os.str();
}

}  // namespace

std::string render_frame(const Graph& g, const Configuration& conf,
                         const SvgOptions& options) {
  const auto pts =
      circle_layout(g.node_count(), static_cast<double>(options.size));
  const double node_radius = static_cast<double>(options.size) /
                             (3.0 * static_cast<double>(g.node_count()) + 10);
  std::ostringstream os;
  os << svg_open(options.size);
  render_body(os, g, conf, pts, std::max(8.0, node_radius));
  os << "</svg>\n";
  return os.str();
}

std::string render_animation(const Trace& trace, const SvgOptions& options) {
  if (trace.empty()) return {};
  const std::size_t n = trace.at(0).graph.node_count();
  const auto pts = circle_layout(n, static_cast<double>(options.size));
  const double node_radius =
      std::max(8.0, static_cast<double>(options.size) /
                        (3.0 * static_cast<double>(n) + 10));
  const double total =
      options.seconds_per_round * static_cast<double>(trace.size());

  std::ostringstream os;
  os << svg_open(options.size);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const RoundRecord& rec = trace.at(i);
    os << "<g opacity=\"" << (i == 0 ? 1 : 0) << "\">\n";
    // Cycle layers: visible during [i, i+1) * seconds_per_round, repeating.
    const double begin_frac =
        static_cast<double>(i) / static_cast<double>(trace.size());
    const double end_frac =
        static_cast<double>(i + 1) / static_cast<double>(trace.size());
    os << "<animate attributeName=\"opacity\" dur=\"" << total
       << "s\" repeatCount=\"indefinite\" calcMode=\"discrete\" keyTimes=\"0;"
       << begin_frac;
    if (i + 1 < trace.size()) {
      os << ';' << end_frac << ";1\" values=\"0;1;0;0\"/>\n";
    } else {
      os << ";1\" values=\"0;1;1\"/>\n";
    }
    render_body(os, rec.graph, rec.before, pts, node_radius);
    os << "<text x=\"12\" y=\"24\" font-size=\"16\" "
          "font-family=\"sans-serif\">round "
       << rec.round << "</text>\n";
    os << "</g>\n";
  }
  os << "</svg>\n";
  return os.str();
}

}  // namespace dyndisp::viz
