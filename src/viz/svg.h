// Self-contained SVG rendering of executions: a circular node layout with
// edges, occupancy-colored nodes, and robot counts, either as one static
// frame per round or as a single SMIL-animated SVG that steps through the
// whole run. No external dependencies; the output opens in any browser.
#pragma once

#include <cstddef>
#include <string>

#include "graph/graph.h"
#include "robots/configuration.h"
#include "sim/trace.h"

namespace dyndisp::viz {

struct SvgOptions {
  std::size_t size = 480;          ///< Canvas width/height in px.
  double seconds_per_round = 1.0;  ///< Animation dwell time per round.
};

/// One static frame: graph + configuration.
std::string render_frame(const Graph& g, const Configuration& conf,
                         const SvgOptions& options = {});

/// The whole trace as one animated SVG (one layer per round, cycled with
/// SMIL opacity animations). Returns a static frame when the trace has a
/// single round; empty string for an empty trace.
std::string render_animation(const Trace& trace, const SvgOptions& options = {});

}  // namespace dyndisp::viz
