// The per-round sliding plan of Algorithm 4 (Section VI).
//
// Given the round's packet set, the plan determines -- identically at every
// robot, by Lemma 4 -- which robots slide along which disjoint root paths:
//   * per kept path, one robot leaves the root toward the path's second
//     node (or straight to an empty neighbor on the trivial root path);
//   * at every interior path node one robot advances to the successor;
//   * at the path's last node one robot exits to an empty neighbor via the
//     smallest empty port (resolved locally by the robot standing there).
// Everything is a pure function of the packets, which is what makes the
// shared-plan memoization below safe: robots in one component compute
// byte-identical plans, so computing the plan once per packet set and
// sharing it is an exact optimization (tests compare both modes).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/component.h"
#include "core/disjoint_paths.h"
#include "core/spanning_tree.h"
#include "sim/info_packet.h"
#include "sim/packet_arena.h"
#include "sim/reuse_hints.h"
#include "util/types.h"

namespace dyndisp::core {

class StructureCache;

/// What one designated mover robot does this round.
struct MoveDirective {
  /// Exit port; meaningful when exit_via_smallest_empty is false.
  Port port = kInvalidPort;
  /// Exit via the smallest port leading to an EMPTY neighbor (the last node
  /// of a path, or the root's trivial path). The port is resolved by the
  /// robot on the spot from its own 1-neighborhood view.
  bool exit_via_smallest_empty = false;
};

/// Flat ordered map: (robot ID, directive) pairs kept ascending by ID in
/// one contiguous vector. Replaces the seed's std::map<RobotId,
/// MoveDirective> -- per-round plans are built once and then only read
/// (k lookups per round), so a sorted vector turns every node allocation
/// into an append and every red-black walk into a binary search over a
/// cache-dense array. The read surface mirrors std::map (find/at/count/
/// iteration in ascending key order) so planner consumers are unchanged.
class MoverMap {
 public:
  using value_type = std::pair<RobotId, MoveDirective>;
  using const_iterator = std::vector<value_type>::const_iterator;

  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const_iterator find(RobotId id) const {
    const auto it = lower_bound(id);
    return (it != entries_.end() && it->first == id) ? it : entries_.end();
  }
  std::size_t count(RobotId id) const { return find(id) != end() ? 1 : 0; }
  const MoveDirective& at(RobotId id) const {
    const auto it = find(id);
    assert(it != end() && "MoverMap::at on an absent robot");
    return it->second;
  }

  /// Inserts or overwrites, keeping the entries sorted. O(size) worst case;
  /// builders on hot paths use append()+seal() instead.
  MoveDirective& operator[](RobotId id) {
    const auto it = lower_bound(id);
    if (it != entries_.end() && it->first == id) return it->second;
    return entries_.insert(it, value_type{id, MoveDirective{}})->second;
  }

  /// Appends without maintaining order; a seal() must follow before reads.
  void append(RobotId id, MoveDirective d) { entries_.emplace_back(id, d); }

  /// Bulk append for accumulation loops (per-component plans into the round
  /// union): entry order is not maintained, so a single seal() must follow
  /// the run of append_all()s -- one final sort instead of re-merging the
  /// accumulator once per component.
  void append_all(const MoverMap& other) {
    entries_.insert(entries_.end(), other.entries_.begin(),
                    other.entries_.end());
  }

  /// Restores ascending-ID order after a run of append()s. Keys must be
  /// unique (the planner assigns each mover exactly once per round).
  void seal() {
    std::sort(entries_.begin(), entries_.end(),
              [](const value_type& a, const value_type& b) {
                return a.first < b.first;
              });
    assert(std::adjacent_find(entries_.begin(), entries_.end(),
                              [](const value_type& a, const value_type& b) {
                                return a.first == b.first;
                              }) == entries_.end() &&
           "each robot receives at most one directive per round");
  }

  /// Unions `other` in (disjoint key sets, both sorted): one linear merge,
  /// the flat replacement for std::map::merge/insert(range).
  void merge_disjoint(const MoverMap& other) {
    if (other.empty()) return;
    if (empty()) {
      entries_ = other.entries_;
      return;
    }
    std::vector<value_type> merged;
    merged.reserve(entries_.size() + other.entries_.size());
    std::merge(entries_.begin(), entries_.end(), other.entries_.begin(),
               other.entries_.end(), std::back_inserter(merged),
               [](const value_type& a, const value_type& b) {
                 return a.first < b.first;
               });
    entries_ = std::move(merged);
  }

  bool operator==(const MoverMap&) const = default;

 private:
  std::vector<value_type>::iterator lower_bound(RobotId id) {
    return std::lower_bound(entries_.begin(), entries_.end(), id,
                            [](const value_type& e, RobotId x) {
                              return e.first < x;
                            });
  }
  const_iterator lower_bound(RobotId id) const {
    return std::lower_bound(entries_.begin(), entries_.end(), id,
                            [](const value_type& e, RobotId x) {
                              return e.first < x;
                            });
  }

  std::vector<value_type> entries_;
};

/// Movers for one round: robot ID -> directive. Robots absent from the map
/// stay put.
struct SlidePlan {
  MoverMap movers;

  bool operator==(const SlidePlan&) const;
};

/// Design knobs for ablation studies. The defaults are the paper's
/// Algorithm 4; every variant preserves correctness (Lemmas 3-7 do not
/// depend on the tree construction order or the number of served paths),
/// only the constant factors change -- which is what the ablation bench
/// measures.
struct PlannerConfig {
  enum class Tree { kDfs, kBfs };
  /// Spanning-tree construction for Algorithm 2 (the paper uses DFS and
  /// notes BFS works too; BFS minimizes root-path lengths).
  Tree tree = Tree::kDfs;
  /// Cap on the disjoint paths served per component per round (0 = only
  /// bounded by count(root)-1, the paper's rule). max_paths = 1 is the
  /// "serve one path per round" ablation: still O(k) rounds by Lemma 7,
  /// but with a larger constant and more total rounds on bushy components.
  std::size_t max_paths = 0;

  bool operator==(const PlannerConfig&) const = default;
};

inline bool operator==(const MoveDirective& a, const MoveDirective& b) {
  return a.port == b.port &&
         a.exit_via_smallest_empty == b.exit_via_smallest_empty;
}

/// Plans the sliding for one component (requires a multiplicity node).
SlidePlan plan_component(const ComponentGraph& cg, const SpanningTree& st,
                         const PlannerConfig& config = {});

/// Plans the whole round: builds all components from the packets and merges
/// the per-component plans (components without multiplicity contribute
/// nothing). Either packet backend yields the identical plan.
SlidePlan plan_round(const PacketSet& packets, const PlannerConfig& config = {});

/// Legacy-vector overload (tests, one-shot callers); identical output.
inline SlidePlan plan_round(const std::vector<InfoPacket>& packets,
                            const PlannerConfig& config = {}) {
  return plan_round(PacketSet::borrow(packets), config);
}

/// Process-wide planner wall-time accumulator, in nanoseconds: every
/// PlanCache miss (plan_round or the StructureCache path) adds the time it
/// spent deriving a plan. Observability only -- the engine snapshots deltas
/// around its compute phase to split the compute bucket into "planning" vs
/// "robot steps" (RoundLoopStats::phase_plan_ms), and nothing else reads
/// it. Monotone; exact when one run executes at a time, advisory under
/// concurrent runs (same contract as StructureCache::global_stats()).
std::uint64_t planner_time_ns();

/// Adds `ns` to the accumulator (PlanCache's miss path; relaxed atomic).
void add_planner_time_ns(std::uint64_t ns);

/// Single-slot memo of plan_round keyed by the exact packet set. All robots
/// of a run may share one cache; correctness is unchanged because
/// plan_round is deterministic in the packets (Lemma 4).
///
/// Thread-safe: the engine's parallel compute phase calls get() from many
/// robots at once. The returned reference stays valid as long as no get()
/// with a DIFFERENT packet set runs concurrently -- which holds inside one
/// round, where every robot receives the same broadcast.
class PlanCache {
 public:
  /// Legacy-vector entry point (tests, one-shot callers). The key is
  /// deep-copied on a miss, so temporaries are safe.
  const SlidePlan& get(const std::vector<InfoPacket>& packets,
                       const PlannerConfig& config = {});

  /// Set-keyed fast path: the engine shares one immutable broadcast per
  /// round, so storage identity short-circuits the deep packet comparison
  /// (the cache pins owning sets, so the address cannot be reused while it
  /// is the key). Falls back to content comparison -- trap-adversary probes
  /// produce byte-identical packet sets under fresh storage and must still
  /// hit. Either backend works, and a hit never depends on which backend
  /// carries the key or the query.
  const SlidePlan& get(const PacketSet& packets,
                       const PlannerConfig& config = {});

  /// Hint-carrying fast path: on a slot miss with VALID hints and an
  /// attached StructureCache, the plan is obtained from the cross-round
  /// cache (exact hit or delta rebuild) instead of plan_round. With invalid
  /// hints or no StructureCache this overload is byte-for-byte the plain
  /// set overload -- which is how --no-structure-cache reproduces the
  /// baseline exactly.
  const SlidePlan& get(const PacketSet& packets, const ReuseHints& hints,
                       const PlannerConfig& config = {});

  /// Attaches the cross-round structure cache consulted by the hint-carrying
  /// get() overload. Null detaches (hints are then ignored).
  void set_structure_cache(std::shared_ptr<StructureCache> cache);
  const std::shared_ptr<StructureCache>& structure_cache() const {
    return structure_;
  }

  std::size_t hits() const;
  std::size_t misses() const;

 private:
  const SlidePlan& get_locked(const PacketSet& packets,
                              const ReuseHints* hints,
                              const PlannerConfig& config);

  mutable std::mutex mu_;
  std::shared_ptr<StructureCache> structure_;
  /// The stored key: an owning set when the caller handed one in (pointer
  /// hits stay O(1)), else a borrow of key_copy_ below.
  PacketSet key_;
  /// Detached deep copy backing handle-less (borrowed) keys only, so
  /// owned-key misses never deep-copy the round's packets.
  std::vector<InfoPacket> key_copy_;
  PlannerConfig config_;
  /// Immutable so StructureCache-produced plans are shared, not copied; the
  /// slot repoints on every miss while old plans stay alive for borrowers.
  std::shared_ptr<const SlidePlan> value_;
  bool valid_ = false;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace dyndisp::core
