#include "core/spanning_tree.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <queue>

namespace dyndisp::core {

const TreeNode* SpanningTree::find(RobotId name) const {
  const auto it = std::lower_bound(
      nodes_.begin(), nodes_.end(), name,
      [](const TreeNode& n, RobotId x) { return n.name < x; });
  return (it != nodes_.end() && it->name == name) ? &*it : nullptr;
}

std::vector<RobotId> SpanningTree::root_path(RobotId name) const {
  const TreeNode* node = find(name);
  assert(node != nullptr && "root_path of a node outside the tree");
  // depth hops to the root: size the path once and fill it back-to-front.
  std::vector<RobotId> path(node->depth + 1);
  for (std::size_t i = node->depth + 1; i-- > 0;) {
    path[i] = node->name;
    if (node->parent != kNoRobot)
      node = &nodes_[parent_idx_[static_cast<std::size_t>(node - nodes_.data())]];
  }
  assert(path.front() == root_);
  return path;
}

void SpanningTree::add_node(TreeNode node) { nodes_.push_back(std::move(node)); }

void SpanningTree::seal() {
  std::sort(nodes_.begin(), nodes_.end(),
            [](const TreeNode& a, const TreeNode& b) { return a.name < b.name; });
  parent_idx_.assign(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent == kNoRobot) continue;
    const TreeNode* parent = find(nodes_[i].parent);
    assert(parent != nullptr && "tree parent missing from the node set");
    parent_idx_[i] = static_cast<std::uint32_t>(parent - nodes_.data());
  }
}

SpanningTree build_spanning_tree(const ComponentGraph& cg) {
  const RobotId root = cg.root_name();
  assert(root != kNoRobot &&
         "spanning trees are built only for components with a multiplicity");

  SpanningTree st;
  st.set_root(root);

  // Iterative DFS per the pseudocode: push the neighbors in decreasing port
  // order so the smallest port is explored first; connect each node to the
  // node from which it was (first) discovered. cg.nodes() is ascending by
  // name and ComponentGraph::find returns a pointer into it, so `cn - base`
  // is a stable dense index -- the builder works on flat arrays and resolves
  // each name exactly once, when its edge is pushed.
  const ComponentNode* const base = cg.nodes().data();
  std::vector<TreeNode> tree(cg.size());
  std::vector<char> present(cg.size(), 0);

  struct PendingVisit {
    std::uint32_t idx;       // dense index of the node to visit
    std::uint32_t from_idx;  // dense index of the discovering node
    Port port_at_from;       // port of `from` leading to the node
  };
  std::vector<PendingVisit> stack;

  const ComponentNode* root_cn = cg.find(root);
  assert(root_cn != nullptr);
  const auto root_idx = static_cast<std::uint32_t>(root_cn - base);
  tree[root_idx].name = root;
  tree[root_idx].depth = 0;
  present[root_idx] = 1;

  const auto push_edges = [&](const ComponentNode& cn, std::uint32_t from_idx) {
    for (auto it = cn.edges.rbegin(); it != cn.edges.rend(); ++it) {
      const ComponentNode* nb = cg.find(it->second);
      assert(nb != nullptr && "component edge points outside the component");
      const auto nb_idx = static_cast<std::uint32_t>(nb - base);
      if (!present[nb_idx])
        stack.push_back(PendingVisit{nb_idx, from_idx, it->first});
    }
  };
  push_edges(*root_cn, root_idx);

  while (!stack.empty()) {
    const PendingVisit visit = stack.back();
    stack.pop_back();
    if (present[visit.idx]) continue;  // already explored
    present[visit.idx] = 1;

    const ComponentNode& cn = base[visit.idx];
    TreeNode& node = tree[visit.idx];
    node.name = cn.name;
    node.parent = tree[visit.from_idx].name;
    node.port_from_parent = visit.port_at_from;
    // The port at this node back to the parent: find the edge to `from`.
    for (const auto& [port, nb] : cn.edges) {
      if (nb == node.parent) {
        node.port_to_parent = port;
        break;
      }
    }
    assert(node.port_to_parent != kInvalidPort);
    node.depth = tree[visit.from_idx].depth + 1;
    tree[visit.from_idx].children.emplace_back(visit.port_at_from, node.name);

    push_edges(cn, visit.idx);
  }

  assert(std::count(present.begin(), present.end(), char{1}) ==
             static_cast<std::ptrdiff_t>(cg.size()) &&
         "spanning tree must cover the whole (connected) component");
  // Dense order IS ascending-name order, so seal()'s sort is a no-op pass.
  for (auto& node : tree) st.add_node(std::move(node));
  st.seal();
  return st;
}

SpanningTree build_spanning_tree_bfs(const ComponentGraph& cg) {
  const RobotId root = cg.root_name();
  assert(root != kNoRobot &&
         "spanning trees are built only for components with a multiplicity");

  SpanningTree st;
  st.set_root(root);

  // Same dense-index scheme as the DFS builder above.
  const ComponentNode* const base = cg.nodes().data();
  std::vector<TreeNode> tree(cg.size());
  std::vector<char> present(cg.size(), 0);

  const ComponentNode* root_cn = cg.find(root);
  assert(root_cn != nullptr);
  const auto root_idx = static_cast<std::uint32_t>(root_cn - base);
  tree[root_idx].name = root;
  tree[root_idx].depth = 0;
  present[root_idx] = 1;

  std::queue<std::uint32_t> frontier;
  frontier.push(root_idx);
  while (!frontier.empty()) {
    const std::uint32_t from_idx = frontier.front();
    frontier.pop();
    const ComponentNode& cn = base[from_idx];
    for (const auto& [port, nb] : cn.edges) {  // ascending by port
      const ComponentNode* nb_cn = cg.find(nb);
      assert(nb_cn != nullptr);
      const auto nb_idx = static_cast<std::uint32_t>(nb_cn - base);
      if (present[nb_idx]) continue;
      present[nb_idx] = 1;
      TreeNode& node = tree[nb_idx];
      node.name = nb;
      node.parent = cn.name;
      node.port_from_parent = port;
      for (const auto& [back_port, back_nb] : nb_cn->edges) {
        if (back_nb == cn.name) {
          node.port_to_parent = back_port;
          break;
        }
      }
      assert(node.port_to_parent != kInvalidPort);
      node.depth = tree[from_idx].depth + 1;
      tree[from_idx].children.emplace_back(port, nb);
      frontier.push(nb_idx);
    }
  }

  assert(std::count(present.begin(), present.end(), char{1}) ==
         static_cast<std::ptrdiff_t>(cg.size()));
  for (auto& node : tree) st.add_node(std::move(node));
  st.seal();
  return st;
}

}  // namespace dyndisp::core
