#include "core/spanning_tree.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <queue>

namespace dyndisp::core {

const TreeNode* SpanningTree::find(RobotId name) const {
  const auto it = std::lower_bound(
      nodes_.begin(), nodes_.end(), name,
      [](const TreeNode& n, RobotId x) { return n.name < x; });
  return (it != nodes_.end() && it->name == name) ? &*it : nullptr;
}

std::vector<RobotId> SpanningTree::root_path(RobotId name) const {
  const TreeNode* node = find(name);
  assert(node != nullptr && "root_path of a node outside the tree");
  // depth hops to the root: size the path once and fill it back-to-front.
  std::vector<RobotId> path(node->depth + 1);
  for (std::size_t i = node->depth + 1; i-- > 0;) {
    path[i] = node->name;
    if (node->parent != kNoRobot)
      node = &nodes_[parent_idx_[static_cast<std::size_t>(node - nodes_.data())]];
  }
  assert(path.front() == root_);
  return path;
}

void SpanningTree::add_node(TreeNode node) { nodes_.push_back(std::move(node)); }

void SpanningTree::seal() {
  std::sort(nodes_.begin(), nodes_.end(),
            [](const TreeNode& a, const TreeNode& b) { return a.name < b.name; });
  parent_idx_.assign(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent == kNoRobot) continue;
    const TreeNode* parent = find(nodes_[i].parent);
    assert(parent != nullptr && "tree parent missing from the node set");
    parent_idx_[i] = static_cast<std::uint32_t>(parent - nodes_.data());
  }
}

void SpanningTree::seal_presorted(std::vector<std::uint32_t> parent_idx) {
  assert(std::is_sorted(
      nodes_.begin(), nodes_.end(),
      [](const TreeNode& a, const TreeNode& b) { return a.name < b.name; }));
  assert(parent_idx.size() == nodes_.size());
#ifndef NDEBUG
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    assert(nodes_[i].parent == kNoRobot ||
           nodes_[parent_idx[i]].name == nodes_[i].parent);
#endif
  parent_idx_ = std::move(parent_idx);
}

SpanningTree build_spanning_tree(const ComponentGraph& cg) {
  const RobotId root = cg.root_name();
  assert(root != kNoRobot &&
         "spanning trees are built only for components with a multiplicity");

  SpanningTree st;
  st.set_root(root);

  // Iterative DFS per the pseudocode: push the neighbors in decreasing port
  // order so the smallest port is explored first; connect each node to the
  // node from which it was (first) discovered. cg.nodes() is ascending by
  // name and cg.edge_targets() pre-resolves every edge's dense node index,
  // so the builder works entirely on flat arrays without name lookups.
  const ComponentNode* const base = cg.nodes().data();
  std::vector<TreeNode> tree(cg.size());
  std::vector<std::uint32_t> parent_idx(cg.size(), 0);
  std::vector<char> present(cg.size(), 0);

  struct PendingVisit {
    std::uint32_t idx;       // dense index of the node to visit
    std::uint32_t from_idx;  // dense index of the discovering node
    Port port_at_from;       // port of `from` leading to the node
  };
  std::vector<PendingVisit> stack;

  const ComponentNode* root_cn = cg.find(root);
  assert(root_cn != nullptr);
  const auto root_idx = static_cast<std::uint32_t>(root_cn - base);
  tree[root_idx].name = root;
  tree[root_idx].depth = 0;
  present[root_idx] = 1;

  const auto push_edges = [&](std::uint32_t cn_idx) {
    const ComponentNode& cn = base[cn_idx];
    const std::uint32_t* targets = cg.edge_targets(cn_idx);
    for (std::size_t e = cn.edges.size(); e-- > 0;) {
      const std::uint32_t nb_idx = targets[e];
      assert(nb_idx != ComponentGraph::kMissingTarget &&
             "component edge points outside the component");
      if (nb_idx == ComponentGraph::kMissingTarget) continue;
      if (!present[nb_idx])
        stack.push_back(PendingVisit{nb_idx, cn_idx, cn.edges[e].first});
    }
  };
  push_edges(root_idx);

  while (!stack.empty()) {
    const PendingVisit visit = stack.back();
    stack.pop_back();
    if (present[visit.idx]) continue;  // already explored
    present[visit.idx] = 1;

    const ComponentNode& cn = base[visit.idx];
    TreeNode& node = tree[visit.idx];
    node.name = cn.name;
    node.parent = tree[visit.from_idx].name;
    node.port_from_parent = visit.port_at_from;
    // The port at this node back to the parent: find the edge to `from`.
    for (const auto& [port, nb] : cn.edges) {
      if (nb == node.parent) {
        node.port_to_parent = port;
        break;
      }
    }
    assert(node.port_to_parent != kInvalidPort);
    node.depth = tree[visit.from_idx].depth + 1;
    parent_idx[visit.idx] = visit.from_idx;
    tree[visit.from_idx].children.emplace_back(visit.port_at_from, node.name);

    push_edges(visit.idx);
  }

  assert(std::count(present.begin(), present.end(), char{1}) ==
             static_cast<std::ptrdiff_t>(cg.size()) &&
         "spanning tree must cover the whole (connected) component");
  // Dense order IS ascending-name order, and the discovery indices are the
  // parent indices, so the sealed form needs no sort and no lookups.
  for (auto& node : tree) st.add_node(std::move(node));
  st.seal_presorted(std::move(parent_idx));
  return st;
}

SpanningTree build_spanning_tree_bfs(const ComponentGraph& cg) {
  const RobotId root = cg.root_name();
  assert(root != kNoRobot &&
         "spanning trees are built only for components with a multiplicity");

  SpanningTree st;
  st.set_root(root);

  // Same dense-index scheme as the DFS builder above.
  const ComponentNode* const base = cg.nodes().data();
  std::vector<TreeNode> tree(cg.size());
  std::vector<std::uint32_t> parent_idx(cg.size(), 0);
  std::vector<char> present(cg.size(), 0);

  const ComponentNode* root_cn = cg.find(root);
  assert(root_cn != nullptr);
  const auto root_idx = static_cast<std::uint32_t>(root_cn - base);
  tree[root_idx].name = root;
  tree[root_idx].depth = 0;
  present[root_idx] = 1;

  std::queue<std::uint32_t> frontier;
  frontier.push(root_idx);
  while (!frontier.empty()) {
    const std::uint32_t from_idx = frontier.front();
    frontier.pop();
    const ComponentNode& cn = base[from_idx];
    const std::uint32_t* targets = cg.edge_targets(from_idx);
    for (std::size_t e = 0; e < cn.edges.size(); ++e) {  // ascending by port
      const std::uint32_t nb_idx = targets[e];
      assert(nb_idx != ComponentGraph::kMissingTarget);
      if (nb_idx == ComponentGraph::kMissingTarget || present[nb_idx])
        continue;
      present[nb_idx] = 1;
      const ComponentNode& nb_cn = base[nb_idx];
      TreeNode& node = tree[nb_idx];
      node.name = nb_cn.name;
      node.parent = cn.name;
      node.port_from_parent = cn.edges[e].first;
      for (const auto& [back_port, back_nb] : nb_cn.edges) {
        if (back_nb == cn.name) {
          node.port_to_parent = back_port;
          break;
        }
      }
      assert(node.port_to_parent != kInvalidPort);
      node.depth = tree[from_idx].depth + 1;
      parent_idx[nb_idx] = from_idx;
      tree[from_idx].children.emplace_back(cn.edges[e].first, nb_cn.name);
      frontier.push(nb_idx);
    }
  }

  assert(std::count(present.begin(), present.end(), char{1}) ==
         static_cast<std::ptrdiff_t>(cg.size()));
  for (auto& node : tree) st.add_node(std::move(node));
  st.seal_presorted(std::move(parent_idx));
  return st;
}

}  // namespace dyndisp::core
