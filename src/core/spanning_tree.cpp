#include "core/spanning_tree.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>

namespace dyndisp::core {

const TreeNode* SpanningTree::find(RobotId name) const {
  const auto it = std::lower_bound(
      nodes_.begin(), nodes_.end(), name,
      [](const TreeNode& n, RobotId x) { return n.name < x; });
  return (it != nodes_.end() && it->name == name) ? &*it : nullptr;
}

std::vector<RobotId> SpanningTree::root_path(RobotId name) const {
  std::vector<RobotId> path;
  const TreeNode* node = find(name);
  assert(node != nullptr && "root_path of a node outside the tree");
  while (true) {
    path.push_back(node->name);
    if (node->parent == kNoRobot) break;
    node = find(node->parent);
    assert(node != nullptr);
  }
  std::reverse(path.begin(), path.end());  // root first
  return path;
}

void SpanningTree::add_node(TreeNode node) { nodes_.push_back(std::move(node)); }

void SpanningTree::seal() {
  std::sort(nodes_.begin(), nodes_.end(),
            [](const TreeNode& a, const TreeNode& b) { return a.name < b.name; });
}

SpanningTree build_spanning_tree(const ComponentGraph& cg) {
  const RobotId root = cg.root_name();
  assert(root != kNoRobot &&
         "spanning trees are built only for components with a multiplicity");

  SpanningTree st;
  st.set_root(root);

  // Iterative DFS per the pseudocode: push the neighbors in decreasing port
  // order so the smallest port is explored first; connect each node to the
  // node from which it was (first) discovered.
  struct PendingVisit {
    RobotId name;
    RobotId from;
    Port port_at_from;  // port of `from` leading to `name`
  };
  std::vector<PendingVisit> stack;
  std::map<RobotId, TreeNode> in_tree;

  TreeNode root_node;
  root_node.name = root;
  root_node.depth = 0;
  in_tree.emplace(root, root_node);

  const ComponentNode* root_cn = cg.find(root);
  assert(root_cn != nullptr);
  for (auto it = root_cn->edges.rbegin(); it != root_cn->edges.rend(); ++it)
    stack.push_back(PendingVisit{it->second, root, it->first});

  while (!stack.empty()) {
    const PendingVisit visit = stack.back();
    stack.pop_back();
    if (in_tree.count(visit.name)) continue;  // already explored

    const ComponentNode* cn = cg.find(visit.name);
    assert(cn != nullptr && "component edge points outside the component");

    TreeNode node;
    node.name = visit.name;
    node.parent = visit.from;
    node.port_from_parent = visit.port_at_from;
    // The port at this node back to the parent: find the edge to `from`.
    for (const auto& [port, nb] : cn->edges) {
      if (nb == visit.from) {
        node.port_to_parent = port;
        break;
      }
    }
    assert(node.port_to_parent != kInvalidPort);
    node.depth = in_tree.at(visit.from).depth + 1;
    in_tree.at(visit.from).children.emplace_back(visit.port_at_from,
                                                 visit.name);
    in_tree.emplace(visit.name, std::move(node));

    for (auto it = cn->edges.rbegin(); it != cn->edges.rend(); ++it)
      if (!in_tree.count(it->second))
        stack.push_back(PendingVisit{it->second, visit.name, it->first});
  }

  assert(in_tree.size() == cg.size() &&
         "spanning tree must cover the whole (connected) component");
  for (auto& [name, node] : in_tree) st.add_node(std::move(node));
  st.seal();
  return st;
}

SpanningTree build_spanning_tree_bfs(const ComponentGraph& cg) {
  const RobotId root = cg.root_name();
  assert(root != kNoRobot &&
         "spanning trees are built only for components with a multiplicity");

  SpanningTree st;
  st.set_root(root);

  std::map<RobotId, TreeNode> in_tree;
  TreeNode root_node;
  root_node.name = root;
  root_node.depth = 0;
  in_tree.emplace(root, root_node);

  std::queue<RobotId> frontier;
  frontier.push(root);
  while (!frontier.empty()) {
    const RobotId from = frontier.front();
    frontier.pop();
    const ComponentNode* cn = cg.find(from);
    assert(cn != nullptr);
    for (const auto& [port, nb] : cn->edges) {  // ascending by port
      if (in_tree.count(nb)) continue;
      const ComponentNode* nb_cn = cg.find(nb);
      assert(nb_cn != nullptr);
      TreeNode node;
      node.name = nb;
      node.parent = from;
      node.port_from_parent = port;
      for (const auto& [back_port, back_nb] : nb_cn->edges) {
        if (back_nb == from) {
          node.port_to_parent = back_port;
          break;
        }
      }
      assert(node.port_to_parent != kInvalidPort);
      node.depth = in_tree.at(from).depth + 1;
      in_tree.at(from).children.emplace_back(port, nb);
      in_tree.emplace(nb, std::move(node));
      frontier.push(nb);
    }
  }

  assert(in_tree.size() == cg.size());
  for (auto& [name, node] : in_tree) st.add_node(std::move(node));
  st.seal();
  return st;
}

}  // namespace dyndisp::core
