// Cross-round structure cache: LRU memoization of Algorithm 1-3 products.
//
// Every Algorithm 4 round rebuilds connected components, component spanning
// trees, and disjoint root-path plans from the packet broadcast -- all pure
// functions of the packet set (Lemma 4). Under `static`, `t_interval`, and
// repeat-heavy `scripted` adversaries, consecutive rounds see identical or
// nearly identical packet sets, so this cache keeps the last few rounds'
// structures and serves repeats without rebuilding:
//
//   * EXACT HIT: an entry keyed by the same (graph fingerprint, configuration
//     digest, neighborhood, planner config) whose stored packets compare
//     equal. Returns the merged plan untouched. The deep compare makes the
//     hit immune to fingerprint collisions -- digests select, contents
//     decide.
//   * DELTA REBUILD: no exact entry, but a recent entry shares the sensing
//     model and planner config. The packet sets are diffed sender-wise;
//     components containing a changed/absent sender are rebuilt from the
//     dirty seeds, components whose members are all unchanged are reused by
//     shared_ptr (a changed component always contains a changed packet:
//     any edge gained or lost rewrites the occupied_neighbors of BOTH
//     endpoints' packets, so fully-clean components are exactly the
//     unchanged ones). A defensive sweep then builds a component for any
//     sender left unassigned, making completeness independent of that
//     argument. When more than half the senders are dirty the diff is
//     abandoned for a full build -- the reuse bookkeeping would cost more
//     than it saves.
//   * FULL BUILD: identical computation to core::plan_round, plus storing
//     the per-component structures for future rounds.
//
// Determinism: entries live in a plain vector in most-recent-first order,
// components are kept ascending by their smallest node name, and the merged
// plan is a sorted flat MoverMap -- no hash-order iteration anywhere (the
// lint gate enforces this repo-wide). The cache is shared by all robots of a run and
// by the engine's plan probes; a mutex serializes access (the PR-1 ThreadPool
// calls in from many lanes). Returned plans are immutable shared_ptrs, valid
// for as long as the caller holds them regardless of later evictions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/component.h"
#include "core/planner.h"
#include "core/spanning_tree.h"
#include "sim/info_packet.h"
#include "sim/reuse_hints.h"
#include "util/contract.h"

namespace dyndisp::core {

/// Counters describing how the cache served its plan() calls. Exposed per
/// instance (exact, for tests) and process-wide (see global_stats) for
/// RunResult reporting. Observability only (DYNDISP_STATS): the
/// digest-exclusion lint rule keeps these out of result digests.
struct DYNDISP_STATS StructureCacheStats {
  std::uint64_t exact_hits = 0;        ///< Rounds served without any rebuild.
  std::uint64_t delta_rounds = 0;      ///< Rounds served by a partial rebuild.
  std::uint64_t full_builds = 0;       ///< Rounds built from scratch.
  std::uint64_t components_reused = 0; ///< Components shared from a prior round.
  std::uint64_t components_rebuilt = 0;///< Components (re)built in delta rounds.
  std::uint64_t evictions = 0;         ///< LRU entries dropped.
};

class StructureCache {
 public:
  /// `capacity` bounds the retained rounds. The default covers the engine's
  /// working set (current round, previous round, a probe candidate or two);
  /// larger values only help adversaries that cycle through more graphs.
  explicit StructureCache(std::size_t capacity = 4);

  /// The round plan for `packets`, equal to core::plan_round(packets,
  /// config) by construction (the differential suite proves it bitwise).
  /// `packets` must be owning (the cache retains it across rounds); either
  /// backend works, and an entry stored from one backend serves exact hits
  /// and delta rebuilds against queries from the other. `hints` must be
  /// valid and must describe the triple `packets` was assembled from;
  /// callers with invalid hints use plan_round directly.
  std::shared_ptr<const SlidePlan> plan(const PacketSet& packets,
                                        const ReuseHints& hints,
                                        const PlannerConfig& config);

  /// This instance's counters (snapshot under the lock).
  StructureCacheStats stats() const;

  /// Process-wide counters aggregated over every StructureCache. The engine
  /// reports per-run deltas of these; exact for single-run processes, and
  /// only advisory when runs execute concurrently (campaign mode, which
  /// deliberately does not record them).
  static StructureCacheStats global_stats();

 private:
  /// One component's cached products. `tree`/`movers` are null for
  /// components without a multiplicity node (they plan nothing).
  struct CachedComponent {
    std::shared_ptr<const ComponentGraph> graph;
    std::shared_ptr<const SpanningTree> tree;
    std::shared_ptr<const SlidePlan> movers;
  };

  struct Entry {
    std::uint64_t graph_fp = 0;
    std::uint64_t conf_digest = 0;
    bool neighborhood = false;
    PlannerConfig config;
    PacketSet packets;  ///< Owning; pins the round's broadcast storage.
    std::vector<CachedComponent> components;  ///< Ascending by min node name.
    /// Single-robot, edge-free components stored by name only (ascending);
    /// see build_components_split. They plan nothing, so reuse just checks
    /// the sender's packet is unchanged.
    std::vector<RobotId> trivial;
    std::shared_ptr<const SlidePlan> merged;
  };

  /// Builds one component (plus tree and movers when it has multiplicity)
  /// through the round's shared builder starting at `seed`, marking every
  /// member in `assigned`. The builder indexes the packet set once per
  /// delta round; seeds are guaranteed distinct-component by the `assigned`
  /// checks at every call site.
  static CachedComponent build_one(ComponentBuilder& builder, RobotId seed,
                                   const PlannerConfig& config,
                                   std::vector<bool>& assigned);

  /// Attempts the sender-wise diff against `prev`; fills `out.components`
  /// and `out.merged` and returns true, or returns false when the dirty
  /// fraction makes a full build cheaper.
  bool try_delta(const Entry& prev, const PacketSet& packets,
                 const PlannerConfig& config, Entry& out);

  /// plan_round's computation with the structures captured into `out`.
  static void full_build(const PacketSet& packets, const PlannerConfig& config,
                         Entry& out);

  mutable std::mutex mu_;
  std::vector<Entry> entries_;  ///< Most-recent-first (LRU order).
  std::size_t capacity_;
  StructureCacheStats stats_;
};

}  // namespace dyndisp::core
