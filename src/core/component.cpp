#include "core/component.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

namespace dyndisp::core {

const ComponentNode* ComponentGraph::find(RobotId name) const {
  const auto it = std::lower_bound(
      nodes_.begin(), nodes_.end(), name,
      [](const ComponentNode& n, RobotId x) { return n.name < x; });
  return (it != nodes_.end() && it->name == name) ? &*it : nullptr;
}

std::size_t ComponentGraph::robot_count() const {
  std::size_t total = 0;
  for (const ComponentNode& n : nodes_) total += n.count;
  return total;
}

bool ComponentGraph::has_multiplicity() const {
  return std::any_of(nodes_.begin(), nodes_.end(),
                     [](const ComponentNode& n) { return n.count > 1; });
}

RobotId ComponentGraph::root_name() const {
  for (const ComponentNode& n : nodes_)  // ascending by name
    if (n.count > 1) return n.name;
  return kNoRobot;
}

void ComponentGraph::add_node(ComponentNode node) {
  nodes_.push_back(std::move(node));
}

void ComponentGraph::seal() {
  std::sort(nodes_.begin(), nodes_.end(),
            [](const ComponentNode& a, const ComponentNode& b) {
              return a.name < b.name;
            });
}

namespace {

ComponentNode node_from_packet(const InfoPacket& pkt) {
  ComponentNode node;
  node.name = pkt.sender;
  node.count = pkt.count;
  node.degree = pkt.degree;
  node.robots = pkt.robots;
  for (const NeighborInfo& nb : pkt.occupied_neighbors)
    node.edges.emplace_back(nb.port, nb.min_robot);
  // Packets list neighbors port-ascending already; keep the invariant
  // explicit in case a caller hand-builds packets.
  std::sort(node.edges.begin(), node.edges.end());
  return node;
}

}  // namespace

ComponentGraph build_component(const std::vector<InfoPacket>& packets,
                               RobotId start_name) {
  std::map<RobotId, const InfoPacket*> by_sender;
  for (const InfoPacket& pkt : packets) by_sender.emplace(pkt.sender, &pkt);
  assert(by_sender.count(start_name) && "start node must have a packet");

  ComponentGraph cg;
  // Algorithm 1's loop: repeatedly take the smallest-ID unprocessed node,
  // add its occupied neighbors (with ports), until no reachable node is
  // unprocessed. std::set gives the increasing-ID processing order.
  //
  // Under the paper's model every referenced neighbor has a packet; a
  // reference without one can only come from a lying (Byzantine) packet,
  // in which case the phantom node is skipped -- the honest part of the
  // component is still built deterministically by every robot.
  std::set<RobotId> to_process{start_name};
  std::set<RobotId> processed;
  while (!to_process.empty()) {
    const RobotId name = *to_process.begin();
    to_process.erase(to_process.begin());
    processed.insert(name);
    const auto it = by_sender.find(name);
    if (it == by_sender.end()) continue;  // phantom reference: skip
    ComponentNode node = node_from_packet(*it->second);
    // Drop edges toward phantom names so the component stays closed.
    std::erase_if(node.edges, [&](const std::pair<Port, RobotId>& edge) {
      return !by_sender.count(edge.second);
    });
    for (const auto& [port, nb] : node.edges)
      if (!processed.count(nb)) to_process.insert(nb);
    cg.add_node(std::move(node));
  }
  cg.seal();
  return cg;
}

std::vector<ComponentGraph> build_all_components(
    const std::vector<InfoPacket>& packets) {
  std::vector<ComponentGraph> components;
  std::set<RobotId> seen;
  for (const InfoPacket& pkt : packets) {
    if (seen.count(pkt.sender)) continue;
    ComponentGraph cg = build_component(packets, pkt.sender);
    for (const ComponentNode& n : cg.nodes()) seen.insert(n.name);
    components.push_back(std::move(cg));
  }
  return components;
}

}  // namespace dyndisp::core
