#include "core/component.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

namespace dyndisp::core {

const ComponentNode* ComponentGraph::find(RobotId name) const {
  const auto it = std::lower_bound(
      nodes_.begin(), nodes_.end(), name,
      [](const ComponentNode& n, RobotId x) { return n.name < x; });
  return (it != nodes_.end() && it->name == name) ? &*it : nullptr;
}

std::size_t ComponentGraph::robot_count() const {
  std::size_t total = 0;
  for (const ComponentNode& n : nodes_) total += n.count;
  return total;
}

bool ComponentGraph::has_multiplicity() const {
  return std::any_of(nodes_.begin(), nodes_.end(),
                     [](const ComponentNode& n) { return n.count > 1; });
}

RobotId ComponentGraph::root_name() const {
  for (const ComponentNode& n : nodes_)  // ascending by name
    if (n.count > 1) return n.name;
  return kNoRobot;
}

void ComponentGraph::add_node(ComponentNode node) {
  nodes_.push_back(std::move(node));
}

void ComponentGraph::seal() {
  std::sort(nodes_.begin(), nodes_.end(),
            [](const ComponentNode& a, const ComponentNode& b) {
              return a.name < b.name;
            });
}

namespace {

ComponentNode node_from_packet(const InfoPacket& pkt) {
  ComponentNode node;
  node.name = pkt.sender;
  node.count = pkt.count;
  node.degree = pkt.degree;
  node.robots = pkt.robots;
  for (const NeighborInfo& nb : pkt.occupied_neighbors)
    node.edges.emplace_back(nb.port, nb.min_robot);
  // Packets list neighbors port-ascending already; keep the invariant
  // explicit in case a caller hand-builds packets.
  std::sort(node.edges.begin(), node.edges.end());
  return node;
}

/// Sender -> packet index, built once and shared by every component of the
/// round (the seed rebuilt a std::map per component, which made one round's
/// component construction O(components * packets * log)).
using SenderIndex = std::vector<std::pair<RobotId, const InfoPacket*>>;

SenderIndex index_by_sender(const std::vector<InfoPacket>& packets) {
  SenderIndex index;
  index.reserve(packets.size());
  for (const InfoPacket& pkt : packets) index.emplace_back(pkt.sender, &pkt);
  // Canonical packet sets arrive sender-ascending; hand-built ones may not.
  if (!std::is_sorted(index.begin(), index.end(),
                      [](const auto& a, const auto& b) {
                        return a.first < b.first;
                      })) {
    std::sort(index.begin(), index.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  return index;
}

const InfoPacket* find_sender(const SenderIndex& index, RobotId name) {
  const auto it = std::lower_bound(
      index.begin(), index.end(), name,
      [](const std::pair<RobotId, const InfoPacket*>& e, RobotId x) {
        return e.first < x;
      });
  return (it != index.end() && it->first == name) ? it->second : nullptr;
}

ComponentGraph build_component_indexed(const SenderIndex& by_sender,
                                       RobotId start_name) {
  assert(find_sender(by_sender, start_name) != nullptr &&
         "start node must have a packet");

  ComponentGraph cg;
  // Algorithm 1's loop: repeatedly take the smallest-ID unprocessed node,
  // add its occupied neighbors (with ports), until no reachable node is
  // unprocessed. std::set gives the increasing-ID processing order.
  //
  // Under the paper's model every referenced neighbor has a packet; a
  // reference without one can only come from a lying (Byzantine) packet,
  // in which case the phantom node is skipped -- the honest part of the
  // component is still built deterministically by every robot.
  std::set<RobotId> to_process{start_name};
  std::set<RobotId> processed;
  while (!to_process.empty()) {
    const RobotId name = *to_process.begin();
    to_process.erase(to_process.begin());
    processed.insert(name);
    const InfoPacket* pkt = find_sender(by_sender, name);
    if (pkt == nullptr) continue;  // phantom reference: skip
    ComponentNode node = node_from_packet(*pkt);
    // Drop edges toward phantom names so the component stays closed.
    std::erase_if(node.edges, [&](const std::pair<Port, RobotId>& edge) {
      return find_sender(by_sender, edge.second) == nullptr;
    });
    for (const auto& [port, nb] : node.edges)
      if (!processed.count(nb)) to_process.insert(nb);
    cg.add_node(std::move(node));
  }
  cg.seal();
  return cg;
}

}  // namespace

ComponentGraph build_component(const std::vector<InfoPacket>& packets,
                               RobotId start_name) {
  return build_component_indexed(index_by_sender(packets), start_name);
}

std::vector<ComponentGraph> build_all_components(
    const std::vector<InfoPacket>& packets) {
  const SenderIndex by_sender = index_by_sender(packets);
  std::vector<ComponentGraph> components;
  std::set<RobotId> seen;
  for (const InfoPacket& pkt : packets) {
    if (seen.count(pkt.sender)) continue;
    ComponentGraph cg = build_component_indexed(by_sender, pkt.sender);
    for (const ComponentNode& n : cg.nodes()) seen.insert(n.name);
    components.push_back(std::move(cg));
  }
  return components;
}

}  // namespace dyndisp::core
