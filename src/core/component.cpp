#include "core/component.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <numeric>

namespace dyndisp::core {

const ComponentNode* ComponentGraph::find(RobotId name) const {
  const auto it = std::lower_bound(
      nodes_.begin(), nodes_.end(), name,
      [](const ComponentNode& n, RobotId x) { return n.name < x; });
  return (it != nodes_.end() && it->name == name) ? &*it : nullptr;
}

std::size_t ComponentGraph::robot_count() const {
  std::size_t total = 0;
  for (const ComponentNode& n : nodes_) total += n.count;
  return total;
}

bool ComponentGraph::has_multiplicity() const {
  return std::any_of(nodes_.begin(), nodes_.end(),
                     [](const ComponentNode& n) { return n.count > 1; });
}

RobotId ComponentGraph::root_name() const {
  for (const ComponentNode& n : nodes_)  // ascending by name
    if (n.count > 1) return n.name;
  return kNoRobot;
}

void ComponentGraph::add_node(ComponentNode node) {
  nodes_.push_back(std::move(node));
}

void ComponentGraph::seal() {
  std::sort(nodes_.begin(), nodes_.end(),
            [](const ComponentNode& a, const ComponentNode& b) {
              return a.name < b.name;
            });
  edge_offsets_.resize(nodes_.size() + 1);
  edge_offsets_[0] = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    edge_offsets_[i + 1] =
        edge_offsets_[i] + static_cast<std::uint32_t>(nodes_[i].edges.size());
  edge_targets_.resize(edge_offsets_.back());
  std::size_t t = 0;
  for (const ComponentNode& n : nodes_) {
    for (const auto& [port, nb] : n.edges) {
      const ComponentNode* target = find(nb);
      edge_targets_[t++] = target != nullptr
                               ? static_cast<std::uint32_t>(target - nodes_.data())
                               : kMissingTarget;
    }
  }
}

void ComponentGraph::seal_presorted(std::vector<std::uint32_t> edge_targets) {
  assert(std::is_sorted(nodes_.begin(), nodes_.end(),
                        [](const ComponentNode& a, const ComponentNode& b) {
                          return a.name < b.name;
                        }));
  edge_offsets_.resize(nodes_.size() + 1);
  edge_offsets_[0] = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    edge_offsets_[i + 1] =
        edge_offsets_[i] + static_cast<std::uint32_t>(nodes_[i].edges.size());
  assert(edge_targets.size() == edge_offsets_.back());
  edge_targets_ = std::move(edge_targets);
}

namespace {


/// Sender -> packet index, built once and shared by every component of the
/// round (the seed rebuilt a std::map per component, which made one round's
/// component construction O(components * packets * log)). The direct-lookup
/// rank table replaces the per-edge binary search of the first flat version:
/// component BFS touches every directed edge of the occupied subgraph, and
/// at k >= 10^5 those lower_bound probes dominated Algorithm 1.
struct SenderIndex {
  std::vector<std::pair<RobotId, PacketView>> entries;
  std::vector<std::uint32_t> rank_of;  ///< name -> rank; kMissing otherwise.

  static constexpr std::uint32_t kMissing = 0xffffffffu;

  std::size_t size() const { return entries.size(); }
  const std::pair<RobotId, PacketView>& operator[](std::size_t rank) const {
    return entries[rank];
  }
};

SenderIndex index_by_sender(const PacketSet& packets) {
  SenderIndex index;
  index.entries.reserve(packets.size());
  RobotId max_sender = 0;
  for (std::size_t i = 0, size = packets.size(); i < size; ++i) {
    const PacketView pkt = packets[i];
    index.entries.emplace_back(pkt.sender(), pkt);
    max_sender = std::max(max_sender, pkt.sender());
  }
  // Canonical packet sets arrive sender-ascending; hand-built ones may not.
  if (!std::is_sorted(index.entries.begin(), index.entries.end(),
                      [](const auto& a, const auto& b) {
                        return a.first < b.first;
                      })) {
    std::sort(index.entries.begin(), index.entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }
  if (!packets.empty()) {
    index.rank_of.assign(static_cast<std::size_t>(max_sender) + 1,
                         SenderIndex::kMissing);
    // First occurrence wins, matching lower_bound on (degenerate,
    // hand-built) sets with duplicate senders.
    for (std::size_t r = 0; r < index.entries.size(); ++r) {
      std::uint32_t& slot = index.rank_of[index.entries[r].first];
      if (slot == SenderIndex::kMissing) slot = static_cast<std::uint32_t>(r);
    }
  }
  return index;
}

/// Dense rank of `name` in the (sorted) index; npos for phantom names.
constexpr std::size_t kNoRank = static_cast<std::size_t>(-1);

std::size_t sender_rank(const SenderIndex& index, RobotId name) {
  if (name >= index.rank_of.size() ||
      index.rank_of[name] == SenderIndex::kMissing)
    return kNoRank;
  return index.rank_of[name];
}

/// Scratch for one round's component construction: `visited` flags senders
/// already queued or absorbed (by dense rank), `frontier` and `members` hold
/// pending and collected ranks, `local_of` translates a member's rank to its
/// dense index within the component being materialized. All flat vectors,
/// reused across the round's components -- the seed's std::set frontier,
/// whose node allocations and pointer chasing dominated giant-component
/// rounds at k >= 10^5, is long gone.
/// Ranks are dense indices below k < 2^32, so 32-bit entries halve the
/// n-proportional footprint of the two walk vectors (memory-diet audit).
struct ComponentScratch {
  std::vector<char> visited;
  std::vector<std::uint32_t> frontier;
  std::vector<std::uint32_t> members;
  std::vector<std::uint32_t> local_of;
};

ComponentGraph build_component_indexed(const SenderIndex& by_sender,
                                       RobotId start_name,
                                       ComponentScratch& scratch) {
  const std::size_t start = sender_rank(by_sender, start_name);
  assert(start != kNoRank && "start node must have a packet");

  // Phase 1 -- membership: flood-fill over the packets' neighbor references.
  // Traversal order cannot affect the result (the component is the
  // reachability closure, and nodes are emitted name-ascending below), so a
  // plain stack replaces any ordered frontier.
  //
  // Under the paper's model every referenced neighbor has a packet; a
  // reference without one can only come from a lying (Byzantine) packet, in
  // which case the phantom node is skipped -- the honest part of the
  // component is still built deterministically by every robot.
  if (scratch.visited.size() != by_sender.size())
    scratch.visited.assign(by_sender.size(), 0);
  assert(scratch.frontier.empty());
  scratch.members.clear();
  scratch.visited[start] = 1;
  scratch.frontier.push_back(static_cast<std::uint32_t>(start));
  scratch.members.push_back(static_cast<std::uint32_t>(start));
  while (!scratch.frontier.empty()) {
    const std::size_t rank = scratch.frontier.back();
    scratch.frontier.pop_back();
    const PacketView pkt = by_sender[rank].second;
    for (std::size_t i = 0, end = pkt.neighbor_count(); i < end; ++i) {
      const std::size_t r =
          sender_rank(by_sender, pkt.neighbor(i).min_robot());
      if (r == kNoRank || scratch.visited[r]) continue;
      scratch.visited[r] = 1;
      scratch.frontier.push_back(static_cast<std::uint32_t>(r));
      scratch.members.push_back(static_cast<std::uint32_t>(r));
    }
  }

  // Phase 2 -- materialization, name-ascending (ranks ascend with names, so
  // sorting the collected ranks IS the canonical node order), resolving every
  // edge target to its dense in-component index as it is emitted.
  std::sort(scratch.members.begin(), scratch.members.end());
  if (scratch.local_of.size() != by_sender.size())
    scratch.local_of.resize(by_sender.size());
  for (std::size_t i = 0; i < scratch.members.size(); ++i)
    scratch.local_of[scratch.members[i]] = static_cast<std::uint32_t>(i);

  ComponentGraph cg;
  std::vector<std::uint32_t> targets;
  for (const std::size_t rank : scratch.members) {
    const PacketView pkt = by_sender[rank].second;
    ComponentNode node;
    node.name = pkt.sender();
    node.count = pkt.count();
    node.degree = pkt.degree();
    node.robots.assign(pkt.robots(), pkt.robots() + pkt.robot_count());
    node.edges.reserve(pkt.neighbor_count());
    const std::size_t first_target = targets.size();
    for (std::size_t i = 0, end = pkt.neighbor_count(); i < end; ++i) {
      const NeighborView nb = pkt.neighbor(i);
      const std::size_t r = sender_rank(by_sender, nb.min_robot());
      if (r == kNoRank) continue;  // phantom neighbor: edge dropped
      node.edges.emplace_back(nb.port(), nb.min_robot());
      targets.push_back(scratch.local_of[r]);
    }
    // Packets list neighbors port-ascending already; keep the invariant in
    // case a caller hand-builds packets (permuting targets alongside).
    if (!std::is_sorted(node.edges.begin(), node.edges.end())) {
      std::vector<std::size_t> order(node.edges.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return node.edges[a] < node.edges[b];
      });
      std::vector<std::pair<Port, RobotId>> edges(node.edges.size());
      std::vector<std::uint32_t> tgt(node.edges.size());
      for (std::size_t e = 0; e < order.size(); ++e) {
        edges[e] = node.edges[order[e]];
        tgt[e] = targets[first_target + order[e]];
      }
      node.edges = std::move(edges);
      std::copy(tgt.begin(), tgt.end(), targets.begin() + first_target);
    }
    cg.add_node(std::move(node));
  }
  cg.seal_presorted(std::move(targets));
  return cg;
}


}  // namespace

ComponentGraph build_component(const PacketSet& packets, RobotId start_name) {
  ComponentScratch scratch;
  return build_component_indexed(index_by_sender(packets), start_name, scratch);
}

struct ComponentBuilder::Impl {
  SenderIndex index;
  ComponentScratch scratch;
};

ComponentBuilder::ComponentBuilder(const PacketSet& packets)
    : impl_(std::make_unique<Impl>()) {
  impl_->index = index_by_sender(packets);
  impl_->scratch.visited.assign(impl_->index.size(), 0);
}

ComponentBuilder::~ComponentBuilder() = default;

ComponentGraph ComponentBuilder::component_at(RobotId start_name) {
  return build_component_indexed(impl_->index, start_name, impl_->scratch);
}

std::vector<ComponentGraph> build_components_split(
    const PacketSet& packets, std::vector<RobotId>* trivial) {
  const SenderIndex by_sender = index_by_sender(packets);
  std::vector<ComponentGraph> components;
  // The scratch's visited flags persist across seeds: a sender absorbed by
  // an earlier component is never re-seeded (the `seen` set of the seed).
  ComponentScratch scratch;
  scratch.visited.assign(by_sender.size(), 0);
  for (std::size_t i = 0, size = packets.size(); i < size; ++i) {
    const PacketView pkt = packets[i];
    const std::size_t rank = sender_rank(by_sender, pkt.sender());
    assert(rank != kNoRank);
    if (scratch.visited[rank]) continue;
    // A lone robot whose packet lists no occupied neighbor seeds a
    // single-node, edge-free component; when the caller accepts the compact
    // form, record just the name. Marking it visited here preserves the
    // exact absorption behavior of the full build: later components keep
    // their edge toward it but never enqueue it.
    if (trivial != nullptr && pkt.count() == 1 && pkt.neighbor_count() == 0) {
      scratch.visited[rank] = 1;
      trivial->push_back(pkt.sender());
      continue;
    }
    components.push_back(
        build_component_indexed(by_sender, pkt.sender(), scratch));
  }
  return components;
}

std::vector<ComponentGraph> build_all_components(const PacketSet& packets) {
  return build_components_split(packets, nullptr);
}

}  // namespace dyndisp::core
