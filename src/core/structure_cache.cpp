#include "core/structure_cache.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <utility>

namespace dyndisp::core {

namespace {

// Process-wide counters (relaxed: they are statistics, not synchronization).
std::atomic<std::uint64_t> g_exact_hits{0};
std::atomic<std::uint64_t> g_delta_rounds{0};
std::atomic<std::uint64_t> g_full_builds{0};
std::atomic<std::uint64_t> g_components_reused{0};
std::atomic<std::uint64_t> g_components_rebuilt{0};
std::atomic<std::uint64_t> g_evictions{0};

void bump(std::atomic<std::uint64_t>& counter, std::uint64_t by = 1) {
  counter.fetch_add(by, std::memory_order_relaxed);
}

/// Builds `comp`'s spanning tree per the config's tree choice -- the same
/// dispatch plan_round performs.
SpanningTree build_tree(const ComponentGraph& cg, const PlannerConfig& config) {
  return config.tree == PlannerConfig::Tree::kBfs ? build_spanning_tree_bfs(cg)
                                                  : build_spanning_tree(cg);
}

}  // namespace

StructureCache::StructureCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

DYNDISP_COLD
StructureCache::CachedComponent StructureCache::build_one(
    ComponentBuilder& builder, RobotId seed, const PlannerConfig& config,
    std::vector<bool>& assigned) {
  CachedComponent cc;
  cc.graph = std::make_shared<const ComponentGraph>(builder.component_at(seed));
  for (const ComponentNode& cn : cc.graph->nodes()) {
    assert(cn.name < assigned.size());
    assigned[cn.name] = true;
  }
  if (cc.graph->has_multiplicity()) {
    auto tree =
        std::make_shared<const SpanningTree>(build_tree(*cc.graph, config));
    cc.movers = std::make_shared<const SlidePlan>(
        plan_component(*cc.graph, *tree, config));
    cc.tree = std::move(tree);
  }
  return cc;
}

DYNDISP_COLD
bool StructureCache::try_delta(const Entry& prev, const PacketSet& packets,
                               const PlannerConfig& config, Entry& out) {
  const PacketSet& old_pk = prev.packets;
  const std::size_t new_size = packets.size();
  const std::size_t old_size = old_pk.size();

  RobotId max_id = 0;
  for (std::size_t p = 0; p < new_size; ++p)
    max_id = std::max(max_id, packets[p].sender());
  for (std::size_t p = 0; p < old_size; ++p)
    max_id = std::max(max_id, old_pk[p].sender());

  // Per-sender status: absent from the new set (default), unchanged packet,
  // or new/changed packet. Both packet sets are sender-ascending, so a
  // two-pointer walk classifies every sender in one pass. PacketView's deep
  // equality makes the diff backend-agnostic: an entry stored from the
  // legacy vector diffs cleanly against a flat-arena query and vice versa.
  enum : std::uint8_t { kAbsent = 0, kClean = 1, kDirty = 2 };
  std::vector<std::uint8_t> status(static_cast<std::size_t>(max_id) + 1,
                                   kAbsent);
  std::vector<std::pair<RobotId, PacketView>> dirty;
  // Past half the senders dirty, the diff bookkeeping outweighs the reuse --
  // and the walk aborts the moment that is certain, so churn-heavy rounds
  // (every round under the random adversaries) pay for a prefix of the
  // packet comparisons, not all of them.
  const std::size_t max_dirty = new_size / 2;
  std::size_t i = 0, j = 0;
  while (i < new_size || j < old_size) {
    if (j >= old_size ||
        (i < new_size && packets[i].sender() < old_pk[j].sender())) {
      const PacketView pkt = packets[i];
      status[pkt.sender()] = kDirty;
      dirty.emplace_back(pkt.sender(), pkt);
      ++i;
    } else if (i >= new_size || old_pk[j].sender() < packets[i].sender()) {
      ++j;  // sender vanished; stays kAbsent
    } else {
      const PacketView pkt = packets[i];
      if (pkt == old_pk[j]) {
        status[pkt.sender()] = kClean;
      } else {
        status[pkt.sender()] = kDirty;
        dirty.emplace_back(pkt.sender(), pkt);
      }
      ++i;
      ++j;
    }
    if (dirty.size() > max_dirty) return false;
  }

  std::vector<bool> assigned(static_cast<std::size_t>(max_id) + 1, false);
  out.components.clear();
  out.trivial.clear();
  std::uint64_t rebuilt = 0, reused = 0;

  // One sender index for every component this round rebuilds (constructed
  // only after the dirty walk committed to the delta path, so aborted
  // rounds never pay for it).
  ComponentBuilder builder(packets);

  // Single-robot senders whose packets list no occupied neighbor always form
  // a one-node, edge-free, plan-free component (see build_components_split);
  // record the name instead of running Algorithm 1 on them.
  const auto is_trivial = [](const PacketView& p) {
    return p.count() == 1 && p.neighbor_count() == 0;
  };

  // 1. Rebuild from the dirty seeds (ascending). A seed already absorbed by
  // an earlier dirty component is skipped.
  for (const auto& [seed, pkt] : dirty) {
    if (assigned[seed]) continue;
    if (is_trivial(pkt)) {
      assigned[seed] = true;
      out.trivial.push_back(seed);
      ++rebuilt;
      continue;
    }
    out.components.push_back(build_one(builder, seed, config, assigned));
    ++rebuilt;
  }
  // 2. Reuse previous components whose members are all present, unchanged,
  // and not absorbed by a rebuilt component -- and previous trivial senders
  // under the same (one-member) condition.
  for (const CachedComponent& pc : prev.components) {
    bool reusable = true;
    for (const ComponentNode& cn : pc.graph->nodes()) {
      if (cn.name >= status.size() || status[cn.name] != kClean ||
          assigned[cn.name]) {
        reusable = false;
        break;
      }
    }
    if (!reusable) continue;
    for (const ComponentNode& cn : pc.graph->nodes()) assigned[cn.name] = true;
    out.components.push_back(pc);
    ++reused;
  }
  for (const RobotId s : prev.trivial) {
    if (s >= status.size() || status[s] != kClean || assigned[s]) continue;
    assigned[s] = true;
    out.trivial.push_back(s);
    ++reused;
  }
  // 3. Defensive sweep: every sender must belong to exactly one component.
  // Under the endpoints-both-dirty argument nothing is left over, but
  // correctness must not hinge on that argument: build whatever remains.
  for (std::size_t p = 0; p < new_size; ++p) {
    const PacketView pkt = packets[p];
    if (assigned[pkt.sender()]) continue;
    if (is_trivial(pkt)) {
      assigned[pkt.sender()] = true;
      out.trivial.push_back(pkt.sender());
      ++rebuilt;
      continue;
    }
    out.components.push_back(
        build_one(builder, pkt.sender(), config, assigned));
    ++rebuilt;
  }

  std::sort(out.components.begin(), out.components.end(),
            [](const CachedComponent& a, const CachedComponent& b) {
              return a.graph->nodes().front().name <
                     b.graph->nodes().front().name;
            });
  std::sort(out.trivial.begin(), out.trivial.end());

  auto merged = std::make_shared<SlidePlan>();
  // Robot sets of distinct components are disjoint, so append + one seal
  // builds their sorted union.
  for (const CachedComponent& cc : out.components) {
    if (!cc.movers) continue;
    merged->movers.append_all(cc.movers->movers);
  }
  merged->movers.seal();
  out.merged = std::move(merged);

  stats_.components_reused += reused;
  stats_.components_rebuilt += rebuilt;
  bump(g_components_reused, reused);
  bump(g_components_rebuilt, rebuilt);
  return true;
}

DYNDISP_COLD
void StructureCache::full_build(const PacketSet& packets,
                                const PlannerConfig& config, Entry& out) {
  out.components.clear();
  out.trivial.clear();
  auto merged = std::make_shared<SlidePlan>();
  for (ComponentGraph& built : build_components_split(packets, &out.trivial)) {
    CachedComponent cc;
    cc.graph = std::make_shared<const ComponentGraph>(std::move(built));
    if (cc.graph->has_multiplicity()) {
      auto tree =
          std::make_shared<const SpanningTree>(build_tree(*cc.graph, config));
      cc.movers = std::make_shared<const SlidePlan>(
          plan_component(*cc.graph, *tree, config));
      merged->movers.append_all(cc.movers->movers);
      cc.tree = std::move(tree);
    }
    out.components.push_back(std::move(cc));
  }
  merged->movers.seal();
  out.merged = std::move(merged);
}

DYNDISP_HOT
std::shared_ptr<const SlidePlan> StructureCache::plan(
    const PacketSet& packets, const ReuseHints& hints,
    const PlannerConfig& config) {
  assert(packets.owned() && "the cache retains the set across rounds");
  assert(hints.valid && "callers with invalid hints must use plan_round");
  // NOLINTNEXTLINE-dyndisp(hotpath-blocking): the cache is shared by all
  // robots of a run and the engine's plan probes; this lock is the
  // sanctioned serialization point and is uncontended per round.
  std::lock_guard<std::mutex> lock(mu_);

  for (std::size_t idx = 0; idx < entries_.size(); ++idx) {
    Entry& e = entries_[idx];
    if (e.graph_fp != hints.graph_fp || e.conf_digest != hints.conf_digest ||
        e.neighborhood != hints.neighborhood || !(e.config == config)) {
      continue;
    }
    // Digests matched; contents decide (collision-immune exact hit).
    if (!(e.packets == packets)) continue;
    if (idx != 0) {
      std::rotate(entries_.begin(), entries_.begin() + idx,
                  entries_.begin() + idx + 1);
    }
    ++stats_.exact_hits;
    bump(g_exact_hits);
    return entries_.front().merged;
  }

  Entry fresh;
  fresh.graph_fp = hints.graph_fp;
  fresh.conf_digest = hints.conf_digest;
  fresh.neighborhood = hints.neighborhood;
  fresh.config = config;
  fresh.packets = packets;

  // Delta candidate: the most recent entry under the same sensing model and
  // planner config (entries are most-recent-first).
  Entry* candidate = nullptr;
  for (Entry& e : entries_) {
    if (e.neighborhood == hints.neighborhood && e.config == config) {
      candidate = &e;
      break;
    }
  }
  if (candidate != nullptr && try_delta(*candidate, packets, config, fresh)) {
    ++stats_.delta_rounds;
    bump(g_delta_rounds);
  } else {
    full_build(packets, config, fresh);
    ++stats_.full_builds;
    bump(g_full_builds);
  }

  entries_.insert(entries_.begin(), std::move(fresh));
  if (entries_.size() > capacity_) {
    entries_.pop_back();
    ++stats_.evictions;
    bump(g_evictions);
  }
  return entries_.front().merged;
}

StructureCacheStats StructureCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

StructureCacheStats StructureCache::global_stats() {
  StructureCacheStats s;
  s.exact_hits = g_exact_hits.load(std::memory_order_relaxed);
  s.delta_rounds = g_delta_rounds.load(std::memory_order_relaxed);
  s.full_builds = g_full_builds.load(std::memory_order_relaxed);
  s.components_reused = g_components_reused.load(std::memory_order_relaxed);
  s.components_rebuilt = g_components_rebuilt.load(std::memory_order_relaxed);
  s.evictions = g_evictions.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dyndisp::core
