// Algorithm 4, Dispersion_Dynamic: the paper's O(k)-round, Theta(log k)-bit
// dispersion algorithm for 1-interval connected dynamic graphs under global
// communication with 1-neighborhood knowledge (Theorems 4 and 5).
//
// Per round each robot: broadcasts/receives info packets, rebuilds its
// connected component (Algorithm 1), the component spanning tree
// (Algorithm 2) and the disjoint root paths (Algorithm 3), derives the
// shared sliding plan, and moves if it is a designated mover. Everything is
// recomputed from the round's packets, so the only state carried across
// rounds -- and hence the only *metered* memory -- is the robot's own
// ceil(log2 k)-bit ID. This also makes the algorithm natively crash-fault
// tolerant (Section VII): vanished robots simply stop contributing packets,
// components re-form, and previously occupied nodes that a crash emptied
// are re-fillable empty nodes.
#pragma once

#include <memory>
#include <string>

#include "core/planner.h"
#include "sim/algorithm.h"

namespace dyndisp::core {

class DispersionRobot final : public RobotAlgorithm {
 public:
  /// `cache` may be shared across all robots of a run (exact memoization of
  /// the per-round plan) or null for the faithful per-robot mode. `config`
  /// selects design variants for ablations (defaults: the paper's
  /// Algorithm 4).
  DispersionRobot(RobotId id, std::size_t k,
                  std::shared_ptr<PlanCache> cache = nullptr,
                  PlannerConfig config = {});

  std::unique_ptr<RobotAlgorithm> clone() const override;
  Port step(const RobotView& view) override;
  void serialize(BitWriter& out) const override;
  std::string name() const override { return "Dispersion_Dynamic(Alg4)"; }
  bool requires_global_comm() const override { return true; }
  bool requires_neighborhood() const override { return true; }

  /// step() reads only the packet broadcast (with its reuse hints), the
  /// node degree, and the empty-port list; it never touches the co-located
  /// robot list, exchanged states, or per-neighbor robot lists -- Algorithm 4
  /// derives everything from the packets. Declaring that lets the engine's
  /// struct-of-arrays loop skip assembling those fields for all k robots.
  ViewNeeds view_needs() const override {
    ViewNeeds needs;
    needs.colocated = false;
    needs.colocated_states = false;
    needs.occupied_neighbors = false;
    needs.empty_ports = true;
    return needs;
  }

 private:
  RobotId id_;        // persistent: the robot's ceil(log2 k)-bit identity
  std::size_t k_;     // model parameter (IDs range over [1, k]); not state
  // NOLINTNEXTLINE-dyndisp(metering-serialize-fields): shared memoization
  // of a pure function of the round's packets -- an exact simulator-level
  // optimization (tested against the faithful mode), not robot memory.
  std::shared_ptr<PlanCache> cache_;
  // NOLINTNEXTLINE-dyndisp(metering-serialize-fields): ablation design
  // knob fixed at construction; a compile-time choice, not mutable state.
  PlannerConfig config_;
};

/// Factory for the faithful mode: every robot independently recomputes the
/// round plan from the packets (the literal Algorithm 4).
AlgorithmFactory dispersion_factory();

/// Factory for the memoized mode: one shared PlanCache per run computes the
/// plan once per distinct packet set. Identical behaviour (tested), ~k times
/// less work per round.
AlgorithmFactory dispersion_factory_memoized();

/// Factory with explicit design knobs (BFS trees, path caps) for ablations.
AlgorithmFactory dispersion_factory_with_config(PlannerConfig config,
                                                bool memoized = true);

}  // namespace dyndisp::core
