// Algorithm 2: component spanning tree (Section V, Definition 4).
//
// Given a connected component with a multiplicity node, the tree is rooted
// at the smallest-name multiplicity node and grown by a deterministic DFS
// that explores ports in increasing order (the pseudocode pushes neighbors
// in DECREASING port order so the smallest port is popped first). Every
// robot in the component computes the identical tree (Lemma 2) because the
// construction is a deterministic function of the shared component graph.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/component.h"
#include "util/types.h"

namespace dyndisp::core {

struct TreeNode {
  RobotId name = kNoRobot;       ///< Node name (smallest robot ID on it).
  RobotId parent = kNoRobot;     ///< Parent name; kNoRobot at the root.
  Port port_to_parent = kInvalidPort;   ///< Port at this node toward parent.
  Port port_from_parent = kInvalidPort; ///< Port at the parent toward here.
  /// Children as (port at this node, child name), in DFS discovery order.
  std::vector<std::pair<Port, RobotId>> children;
  std::size_t depth = 0;         ///< Hops from the root.
};

class SpanningTree {
 public:
  RobotId root() const { return root_; }
  std::size_t size() const { return nodes_.size(); }

  /// Nodes ascending by name.
  const std::vector<TreeNode>& nodes() const { return nodes_; }

  /// nodes() index of nodes()[i]'s parent; meaningful only when
  /// nodes()[i].parent != kNoRobot. Lets path walkers climb the tree on
  /// dense indices without per-hop name lookups.
  std::uint32_t parent_index(std::size_t i) const { return parent_idx_[i]; }

  /// Lookup by name; nullptr when absent.
  const TreeNode* find(RobotId name) const;

  /// The unique tree path from the root to `name`, inclusive:
  /// RootPath_r(name) of Section VI (stored root-first).
  std::vector<RobotId> root_path(RobotId name) const;

  /// Used by the builder.
  void set_root(RobotId root) { root_ = root; }
  void add_node(TreeNode node);
  void seal();

  /// Builder fast path: nodes were added already ascending by name and
  /// `parent_idx` holds each node's parent index (value irrelevant at the
  /// root) -- skips seal()'s sort and per-node parent lookup.
  void seal_presorted(std::vector<std::uint32_t> parent_idx);

 private:
  RobotId root_ = kNoRobot;
  std::vector<TreeNode> nodes_;  // ascending by name after seal()
  /// nodes_ index of each node's parent (undefined at the root), resolved
  /// once in seal() so root_path walks indices instead of re-finding names.
  std::vector<std::uint32_t> parent_idx_;
};

/// Algorithm 2. Requires cg.has_multiplicity() (otherwise the component is
/// already dispersed and no tree is built -- callers must check).
SpanningTree build_spanning_tree(const ComponentGraph& cg);

/// The BFS alternative the paper mentions ("a breadth-first search approach
/// can also be used"): same root choice, level-order exploration taking
/// smallest ports first. Produces trees of minimum depth, which shortens
/// root paths (and hence per-round slide lengths) at identical asymptotics.
SpanningTree build_spanning_tree_bfs(const ComponentGraph& cg);

}  // namespace dyndisp::core
