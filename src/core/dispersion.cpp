#include "core/dispersion.h"

#include <cassert>

#include "core/structure_cache.h"
#include "util/bits.h"
#include "util/contract.h"

namespace dyndisp::core {

DispersionRobot::DispersionRobot(RobotId id, std::size_t k,
                                 std::shared_ptr<PlanCache> cache,
                                 PlannerConfig config)
    : id_(id), k_(k), cache_(std::move(cache)), config_(config) {}

std::unique_ptr<RobotAlgorithm> DispersionRobot::clone() const {
  // Clones share the cache deliberately: plan_round is deterministic in the
  // packets, so dry-run probes hitting the cache see identical plans.
  return std::make_unique<DispersionRobot>(id_, k_, cache_, config_);
}

DYNDISP_HOT
Port DispersionRobot::step(const RobotView& view) {
  assert(view.global_comm &&
         "Algorithm 4 is defined in the global communication model");
  assert(view.neighborhood_knowledge &&
         "Algorithm 4 requires 1-neighborhood knowledge");

  const SlidePlan* plan;
  SlidePlan local_plan;
  if (cache_) {
    // Prefer the handle-keyed cache path: all robots of a round share one
    // broadcast handle, so the lookup is a pointer compare, not a deep one.
    // The view's reuse hints ride along so a slot miss can consult the
    // cross-round StructureCache (invalid hints degrade to plan_round).
    plan = view.shared_packets
               ? &cache_->get(view.shared_packets, view.reuse, config_)
               : &cache_->get(view.packets(), config_);
  } else {
    local_plan = plan_round(view.packets(), config_);
    plan = &local_plan;
  }

  const auto it = plan->movers.find(id_);
  if (it == plan->movers.end()) return kInvalidPort;  // not a mover: settle
  const MoveDirective& directive = it->second;
  if (directive.exit_via_smallest_empty) {
    // The last node of a root path always has an empty neighbor (Lemma 5);
    // the mover takes the smallest port leading to one (Algorithm 4 l.12).
    // An empty list means the plan was derived from lying (Byzantine)
    // packets; staying put is the safe fallback.
    if (view.empty_ports.empty()) return kInvalidPort;
    return view.empty_ports.front();
  }
  // A directive port beyond the node's degree likewise only occurs when the
  // packets lied about ports; never under the paper's model.
  if (directive.port > view.degree) return kInvalidPort;
  return directive.port;
}

void DispersionRobot::serialize(BitWriter& out) const {
  // The complete persistent state: the robot's ID in [1, k], encoded in
  // ceil(log2(k+1)) bits. Lemma 8's Theta(log k) bound, audited by the
  // engine's memory meter.
  out.write(id_, bit_width_for(static_cast<std::uint64_t>(k_) + 1));
}

AlgorithmFactory dispersion_factory() {
  return [](RobotId id, std::size_t k) {
    return std::make_unique<DispersionRobot>(id, k);
  };
}

AlgorithmFactory dispersion_factory_memoized() {
  auto cache = std::make_shared<PlanCache>();
  // The cross-round StructureCache is attached unconditionally; it is only
  // consulted when the engine hands out valid reuse hints (structure_cache
  // engine option), so attaching it never changes uncached runs.
  cache->set_structure_cache(std::make_shared<StructureCache>());
  return [cache](RobotId id, std::size_t k) {
    return std::make_unique<DispersionRobot>(id, k, cache);
  };
}

AlgorithmFactory dispersion_factory_with_config(PlannerConfig config,
                                                bool memoized) {
  auto cache = memoized ? std::make_shared<PlanCache>() : nullptr;
  if (cache) cache->set_structure_cache(std::make_shared<StructureCache>());
  return [cache, config](RobotId id, std::size_t k) {
    return std::make_unique<DispersionRobot>(id, k, cache, config);
  };
}

}  // namespace dyndisp::core
