#include "core/planner.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "core/structure_cache.h"
#include "util/contract.h"
#include "util/phase_clock.h"

namespace dyndisp::core {

namespace {
/// See planner_time_ns(): process-wide planning wall-time, observability
/// only, relaxed ordering (readers only ever diff snapshots they took on
/// the same thread as the runs they bracket).
std::atomic<std::uint64_t> g_planner_time_ns{0};
}  // namespace

std::uint64_t planner_time_ns() {
  return g_planner_time_ns.load(std::memory_order_relaxed);
}

void add_planner_time_ns(std::uint64_t ns) {
  g_planner_time_ns.fetch_add(ns, std::memory_order_relaxed);
}

bool SlidePlan::operator==(const SlidePlan& other) const {
  return movers == other.movers;
}

namespace {

/// Port at tree node `from` leading to its child `to`.
Port port_to_child(const SpanningTree& st, RobotId from, RobotId to) {
  const TreeNode* tn = st.find(from);
  assert(tn != nullptr);
  for (const auto& [port, child] : tn->children)
    if (child == to) return port;
  assert(false && "successor on a root path must be a tree child");
  return kInvalidPort;
}

}  // namespace

DYNDISP_COLD
SlidePlan plan_component(const ComponentGraph& cg, const SpanningTree& st,
                         const PlannerConfig& config) {
  SlidePlan plan;
  const ComponentNode* root_cn = cg.find(st.root());
  assert(root_cn != nullptr && root_cn->count >= 2);
  const std::size_t count_root = root_cn->count;

  // Algorithm 4's trimming: at most count(v_root) - 1 paths can be served,
  // one robot each; paths are kept in increasing leaf-name order, so
  // passing the trim bound as disjoint_paths' keep cap yields exactly the
  // trimmed set without ever materializing the discarded paths.
  std::size_t cap = count_root - 1;
  if (config.max_paths > 0 && config.max_paths < cap) cap = config.max_paths;
  std::vector<RootPath> paths = disjoint_paths(cg, st, cap);
  // Lemma 3 guarantees a path under the paper's model; an empty set can
  // only arise from lying (Byzantine) packets that hide empty neighbors.
  // Degrade gracefully: nobody in this component moves this round.
  if (paths.empty()) return plan;

  // Root movers: the smallest-ID robot at the root stays settled; the rest
  // are assigned to the kept paths in ascending order.
  assert(paths.size() <= count_root - 1);

  // Each mover is assigned exactly once (paths are node-disjoint and root
  // movers are distinct robots), so directives are appended unordered and
  // sealed into ascending-ID order in one sort.
  for (std::size_t j = 0; j < paths.size(); ++j) {
    const RootPath& path = paths[j];
    const RobotId root_mover = root_cn->robots[j + 1];

    if (path.size() == 1) {
      // Trivial path: the root itself borders an empty node.
      plan.movers.append(root_mover, MoveDirective{kInvalidPort, true});
      continue;
    }
    plan.movers.append(root_mover,
                       MoveDirective{port_to_child(st, path[0], path[1]), false});

    for (std::size_t i = 1; i < path.size(); ++i) {
      const ComponentNode* cn = cg.find(path[i]);
      assert(cn != nullptr);
      // The designated mover at a non-root path node: its largest-ID robot
      // (the smallest-ID robot stays settled; see DESIGN.md #4).
      const RobotId mover = cn->robots.back();
      if (i + 1 < path.size()) {
        plan.movers.append(
            mover, MoveDirective{port_to_child(st, path[i], path[i + 1]), false});
      } else {
        plan.movers.append(mover, MoveDirective{kInvalidPort, true});
      }
    }
  }
  plan.movers.seal();
  return plan;
}

DYNDISP_COLD
SlidePlan plan_round(const PacketSet& packets, const PlannerConfig& config) {
  SlidePlan plan;
  // Trivial (single-robot, edge-free) senders never carry multiplicity, so
  // the split form skips materializing their one-node graphs outright.
  std::vector<RobotId> trivial;
  for (const ComponentGraph& cg : build_components_split(packets, &trivial)) {
    if (!cg.has_multiplicity()) continue;
    const SpanningTree st = config.tree == PlannerConfig::Tree::kBfs
                                ? build_spanning_tree_bfs(cg)
                                : build_spanning_tree(cg);
    SlidePlan component_plan = plan_component(cg, st, config);
    // Robot sets of distinct components are disjoint, so appending then
    // sealing once builds exactly their sorted union.
    plan.movers.append_all(component_plan.movers);
  }
  plan.movers.seal();
  return plan;
}

const SlidePlan& PlanCache::get_locked(const PacketSet& packets,
                                       const ReuseHints* hints,
                                       const PlannerConfig& config) {
  // PacketSet equality starts with the storage-identity fast path, so a
  // pinned owning key makes repeat queries O(1); the deep comparison backs
  // fresh-storage queries with identical content (trap-adversary probes).
  if (valid_ && config_ == config && key_ == packets) {
    if (packets.owned() && !key_.owned()) {
      key_ = packets;  // adopt for future pointer hits
      key_copy_.clear();
    }
    ++hits_;
    return *value_;
  }
  ++misses_;
  if (packets.owned()) {
    key_ = packets;
    key_copy_.clear();
  } else if (const std::vector<InfoPacket>* vec = packets.legacy_vec()) {
    // Borrowed key: detach a deep copy (the caller's vector may die).
    key_copy_ = *vec;
    key_ = PacketSet::borrow(key_copy_);
  } else {
    key_copy_.clear();
    key_.reset();
  }
  config_ = config;
  // Planner-time attribution: the derivation below is the round's actual
  // planning work (everything else in this function is cache bookkeeping).
  const std::uint64_t plan_t0 = phase_clock_ns();
  // Full-churn rounds (the hint-carrying engine loop observed G_r sharing
  // essentially nothing with G_{r-1}) route straight to plan_round: the
  // StructureCache could only miss, and storing the round into it would
  // retain an owning copy of the broadcast storage -- pinning arenas the
  // round context wants to recycle. StructureCache::full_build IS
  // plan_round's computation, so the direct call is bitwise identical
  // (the incremental-planning differential leg pins it).
  if (structure_ && hints != nullptr && hints->valid && packets.owned() &&
      hints->change != GraphChange::kFullChurn) {
    value_ = structure_->plan(packets, *hints, config);
  } else {
    // NOLINTNEXTLINE-dyndisp(hotpath-alloc): cache-miss slow path; the
    // steady-state round takes the structure_->plan branch above.
    value_ = std::make_shared<const SlidePlan>(plan_round(packets, config));
  }
  add_planner_time_ns(phase_clock_ns() - plan_t0);
  valid_ = true;
  return *value_;
}

const SlidePlan& PlanCache::get(const std::vector<InfoPacket>& packets,
                                const PlannerConfig& config) {
  // NOLINTNEXTLINE-dyndisp(hotpath-blocking): the sanctioned
  // serialization point -- plan probes call in from ThreadPool lanes;
  // uncontended (and never waited on) in the per-round compute phase.
  std::lock_guard<std::mutex> lock(mu_);
  return get_locked(PacketSet::borrow(packets), nullptr, config);
}

const SlidePlan& PlanCache::get(const PacketSet& packets,
                                const PlannerConfig& config) {
  // NOLINTNEXTLINE-dyndisp(hotpath-blocking): the sanctioned
  // serialization point -- plan probes call in from ThreadPool lanes;
  // uncontended (and never waited on) in the per-round compute phase.
  std::lock_guard<std::mutex> lock(mu_);
  return get_locked(packets, nullptr, config);
}

DYNDISP_HOT
const SlidePlan& PlanCache::get(const PacketSet& packets,
                                const ReuseHints& hints,
                                const PlannerConfig& config) {
  // NOLINTNEXTLINE-dyndisp(hotpath-blocking): the sanctioned
  // serialization point -- plan probes call in from ThreadPool lanes;
  // uncontended (and never waited on) in the per-round compute phase.
  std::lock_guard<std::mutex> lock(mu_);
  return get_locked(packets, &hints, config);
}

void PlanCache::set_structure_cache(std::shared_ptr<StructureCache> cache) {
  std::lock_guard<std::mutex> lock(mu_);
  structure_ = std::move(cache);
}

std::size_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace dyndisp::core
