#include "core/disjoint_paths.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace dyndisp::core {

std::vector<RobotId> leaf_node_set(const ComponentGraph& cg,
                                   const SpanningTree& st) {
  std::vector<RobotId> leaves;
  for (const TreeNode& tn : st.nodes()) {  // ascending by name
    const ComponentNode* cn = cg.find(tn.name);
    assert(cn != nullptr);
    if (cn->has_empty_neighbor()) leaves.push_back(tn.name);
  }
  return leaves;
}

bool paths_disjoint(const RootPath& a, const RootPath& b) {
  assert(!a.empty() && !b.empty() && a.front() == b.front());
  std::set<RobotId> nodes_a(a.begin() + 1, a.end());
  return std::none_of(b.begin() + 1, b.end(), [&](RobotId name) {
    return nodes_a.count(name) > 0;
  });
}

std::vector<RootPath> disjoint_paths(const ComponentGraph& cg,
                                     const SpanningTree& st) {
  std::vector<RootPath> kept;
  if (st.size() == 0) return kept;
  // Non-root nodes already claimed by a path, flagged by name (tree names
  // are robot IDs, so the flat array is at most k entries).
  std::vector<char> used(st.nodes().back().name + 1, 0);
  for (const RobotId leaf : leaf_node_set(cg, st)) {
    RootPath path = st.root_path(leaf);
    const bool overlaps =
        std::any_of(path.begin() + 1, path.end(),
                    [&](RobotId name) { return used[name] != 0; });
    if (overlaps) continue;
    for (auto it = path.begin() + 1; it != path.end(); ++it) used[*it] = 1;
    kept.push_back(std::move(path));
  }
  return kept;
}

}  // namespace dyndisp::core
