#include "core/disjoint_paths.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace dyndisp::core {

std::vector<RobotId> leaf_node_set(const ComponentGraph& cg,
                                   const SpanningTree& st) {
  std::vector<RobotId> leaves;
  // cg and the tree hold the same name set ascending: lockstep cursor, no
  // binary searches.
  const std::vector<ComponentNode>& cn = cg.nodes();
  std::size_t c = 0;
  for (const TreeNode& tn : st.nodes()) {  // ascending by name
    while (c < cn.size() && cn[c].name < tn.name) ++c;
    assert(c < cn.size() && cn[c].name == tn.name);
    if (cn[c].has_empty_neighbor()) leaves.push_back(tn.name);
  }
  return leaves;
}

bool paths_disjoint(const RootPath& a, const RootPath& b) {
  assert(!a.empty() && !b.empty() && a.front() == b.front());
  std::set<RobotId> nodes_a(a.begin() + 1, a.end());
  return std::none_of(b.begin() + 1, b.end(), [&](RobotId name) {
    return nodes_a.count(name) > 0;
  });
}

std::vector<RootPath> disjoint_paths(const ComponentGraph& cg,
                                     const SpanningTree& st,
                                     std::size_t max_keep) {
  std::vector<RootPath> kept;
  if (st.size() == 0) return kept;
  const std::vector<TreeNode>& tn = st.nodes();  // ascending by name

  // Per-node walk state, by dense tree index. kClaimed marks non-root nodes
  // on a kept path. kOverlaps memoizes rejection: every node walked during a
  // rejected candidate's upward walk has a claimed ancestor (root paths are
  // unique in a tree, so any later candidate walking through it overlaps
  // too, against a claimed set that only grows). Without the memo a
  // rejection costs the distance to the claimed forest -- which on the deep
  // DFS trees of giant random components is O(depth) per leaf, quadratic
  // over the round (the k=10^5 profile put a quarter of the whole run
  // here). With it every node is walked at most once, so one call is
  // O(component + kept path lengths).
  enum : char { kUnwalked = 0, kClaimed = 1, kOverlaps = 2 };
  std::vector<char> state(tn.size(), kUnwalked);
  std::vector<std::size_t> walked;  // rejected-walk scratch, reused

  // LeafNodeSet membership comes from the component node's degree; cg and
  // the tree hold the same name set ascending, so a lockstep cursor
  // resolves each tree node's ComponentNode without binary searches.
  const std::vector<ComponentNode>& cn = cg.nodes();
  std::size_t c = 0;
  for (std::size_t i = 0; i < tn.size(); ++i) {
    while (c < cn.size() && cn[c].name < tn[i].name) ++c;
    assert(c < cn.size() && cn[c].name == tn[i].name &&
           "spanning tree node missing from its component");
    if (!cn[c].has_empty_neighbor()) continue;  // not in LeafNodeSet

    bool overlaps = false;
    walked.clear();
    for (std::size_t j = i; tn[j].parent != kNoRobot;
         j = st.parent_index(j)) {
      if (state[j] != kUnwalked) {
        overlaps = true;
        break;
      }
      walked.push_back(j);
    }
    if (overlaps) {
      // Everything walked sits below a claimed node; memoize the verdict.
      for (const std::size_t j : walked) state[j] = kOverlaps;
      continue;
    }

    // Keep: materialize the path root-first and claim its non-root nodes.
    RootPath path(tn[i].depth + 1);
    std::size_t j = i;
    for (std::size_t d = tn[i].depth + 1; d-- > 0;) {
      path[d] = tn[j].name;
      if (tn[j].parent != kNoRobot) {
        state[j] = kClaimed;
        j = st.parent_index(j);
      }
    }
    assert(path.front() == st.root());
    kept.push_back(std::move(path));
    if (max_keep != 0 && kept.size() >= max_keep) break;
  }
  return kept;
}

}  // namespace dyndisp::core
