#include "core/disjoint_paths.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace dyndisp::core {

std::vector<RobotId> leaf_node_set(const ComponentGraph& cg,
                                   const SpanningTree& st) {
  std::vector<RobotId> leaves;
  // cg and the tree hold the same name set ascending: lockstep cursor, no
  // binary searches.
  const std::vector<ComponentNode>& cn = cg.nodes();
  std::size_t c = 0;
  for (const TreeNode& tn : st.nodes()) {  // ascending by name
    while (c < cn.size() && cn[c].name < tn.name) ++c;
    assert(c < cn.size() && cn[c].name == tn.name);
    if (cn[c].has_empty_neighbor()) leaves.push_back(tn.name);
  }
  return leaves;
}

bool paths_disjoint(const RootPath& a, const RootPath& b) {
  assert(!a.empty() && !b.empty() && a.front() == b.front());
  std::set<RobotId> nodes_a(a.begin() + 1, a.end());
  return std::none_of(b.begin() + 1, b.end(), [&](RobotId name) {
    return nodes_a.count(name) > 0;
  });
}

std::vector<RootPath> disjoint_paths(const ComponentGraph& cg,
                                     const SpanningTree& st,
                                     std::size_t max_keep) {
  std::vector<RootPath> kept;
  if (st.size() == 0) return kept;
  const std::vector<TreeNode>& tn = st.nodes();  // ascending by name

  // Non-root nodes already claimed by a path, flagged by dense tree index.
  // A candidate's path is rejected the moment the upward walk from its leaf
  // meets a claimed node, so a rejection costs the distance to the claimed
  // forest, not the full depth -- the seed's root_path-per-leaf scheme made
  // one round's planning O(leaves * depth), quadratic on the giant
  // component of a random placement.
  std::vector<char> used(tn.size(), 0);

  // LeafNodeSet membership comes from the component node's degree; cg and
  // the tree hold the same name set ascending, so a lockstep cursor
  // resolves each tree node's ComponentNode without binary searches.
  const std::vector<ComponentNode>& cn = cg.nodes();
  std::size_t c = 0;
  for (std::size_t i = 0; i < tn.size(); ++i) {
    while (c < cn.size() && cn[c].name < tn[i].name) ++c;
    assert(c < cn.size() && cn[c].name == tn[i].name &&
           "spanning tree node missing from its component");
    if (!cn[c].has_empty_neighbor()) continue;  // not in LeafNodeSet

    bool overlaps = false;
    for (std::size_t j = i; tn[j].parent != kNoRobot;
         j = st.parent_index(j)) {
      if (used[j] != 0) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) continue;

    // Keep: materialize the path root-first and claim its non-root nodes.
    RootPath path(tn[i].depth + 1);
    std::size_t j = i;
    for (std::size_t d = tn[i].depth + 1; d-- > 0;) {
      path[d] = tn[j].name;
      if (tn[j].parent != kNoRobot) {
        used[j] = 1;
        j = st.parent_index(j);
      }
    }
    assert(path.front() == st.root());
    kept.push_back(std::move(path));
    if (max_keep != 0 && kept.size() >= max_keep) break;
  }
  return kept;
}

}  // namespace dyndisp::core
