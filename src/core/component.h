// Algorithm 1: connected-component construction from information packets
// (Section V, Definition 2/3).
//
// The component graph CG_r spans the occupied nodes of G_r and the edges of
// G_r between them. Robots cannot name anonymous nodes, so every node of the
// component is identified by the smallest robot ID positioned on it
// (Observation 1). Each robot rebuilds, from the broadcast packets, the
// connected component containing its own node; Lemma 1 (robots in the same
// component build identical structures) is a pure consequence of this code
// being deterministic on the shared packet set -- and is verified by tests.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "sim/info_packet.h"
#include "sim/packet_arena.h"
#include "util/types.h"

namespace dyndisp::core {

/// One occupied node, named by its smallest robot (Obs. 1).
struct ComponentNode {
  RobotId name = kNoRobot;       ///< Smallest robot ID on the node.
  std::size_t count = 0;         ///< Robots on the node.
  std::size_t degree = 0;        ///< Degree of the node in G_r.
  std::vector<RobotId> robots;   ///< All robot IDs here, ascending.
  /// Edges to occupied neighbors: (port at this node, neighbor name),
  /// ascending by port.
  std::vector<std::pair<Port, RobotId>> edges;

  /// True when the node has at least one empty (unoccupied) neighbor --
  /// the LeafNodeSet membership test of Algorithm 3.
  bool has_empty_neighbor() const { return edges.size() < degree; }
};

/// A connected component CG_r^phi of the component graph.
class ComponentGraph {
 public:
  /// Nodes ascending by name.
  const std::vector<ComponentNode>& nodes() const { return nodes_; }
  std::size_t size() const { return nodes_.size(); }

  /// Node lookup by name; nullptr when absent.
  const ComponentNode* find(RobotId name) const;
  bool contains(RobotId name) const { return find(name) != nullptr; }

  /// Total robots in the component.
  std::size_t robot_count() const;

  /// True if some node hosts two or more robots.
  bool has_multiplicity() const;

  /// The spanning-tree root choice of Algorithm 2: the smallest-name
  /// multiplicity node; kNoRobot when the component has no multiplicity.
  RobotId root_name() const;

  /// Sentinel for an edge whose named neighbor is not a node of this
  /// component (only hand-built or Byzantine-degenerate graphs produce one).
  static constexpr std::uint32_t kMissingTarget = 0xffffffffu;

  /// Dense nodes() indices of nodes()[node_idx].edges' targets, aligned to
  /// that edges vector: edge_targets(i)[e] is the index of the node named
  /// nodes()[i].edges[e].second (or kMissingTarget). Resolved once at seal
  /// time so the per-edge consumers (Algorithm 2's builders) walk indices
  /// instead of binary-searching names.
  const std::uint32_t* edge_targets(std::size_t node_idx) const {
    return edge_targets_.data() + edge_offsets_[node_idx];
  }

  /// Used by the builder; nodes must be inserted in any order, then sealed.
  void add_node(ComponentNode node);
  void seal();

  /// Builder fast path: nodes were added already ascending by name, and
  /// `edge_targets` holds every node's edge target indices pre-resolved and
  /// concatenated in node order -- skips seal()'s sort and name resolution.
  void seal_presorted(std::vector<std::uint32_t> edge_targets);

 private:
  std::vector<ComponentNode> nodes_;  // kept ascending by name after seal()
  /// CSR layout of the resolved edge targets: node i's targets live at
  /// [edge_offsets_[i], edge_offsets_[i + 1]).
  std::vector<std::uint32_t> edge_offsets_;
  std::vector<std::uint32_t> edge_targets_;
};

/// Algorithm 1: builds the connected component containing the node named
/// `start_name` from the full packet set. `packets` must contain one packet
/// per occupied node (as delivered under global communication) and must
/// include neighbor information (1-neighborhood knowledge). Either packet
/// backend (flat arena or InfoPacket vector) builds the identical graph.
ComponentGraph build_component(const PacketSet& packets, RobotId start_name);

/// Legacy-vector overload (tests, one-shot callers); identical output.
inline ComponentGraph build_component(const std::vector<InfoPacket>& packets,
                                      RobotId start_name) {
  return build_component(PacketSet::borrow(packets), start_name);
}

/// Builds every connected component of the packet graph, ascending by the
/// smallest node name they contain. (Simulator-side convenience; each robot
/// only ever needs its own component.)
std::vector<ComponentGraph> build_all_components(const PacketSet& packets);

inline std::vector<ComponentGraph> build_all_components(
    const std::vector<InfoPacket>& packets) {
  return build_all_components(PacketSet::borrow(packets));
}

/// Reusable Algorithm 1 builder over ONE packet set: indexes the senders
/// once and shares the index (and the flood-fill scratch) across every
/// build() call. StructureCache's delta rebuild constructs one component
/// per dirty seed; going through build_component re-indexed all k packets
/// per seed, making a delta round O(dirty_components * k). Seeds handed to
/// one builder must lie in distinct components (the flood-fill's visited
/// flags persist, exactly like build_components_split's seed loop);
/// `packets` must outlive the builder.
class ComponentBuilder {
 public:
  explicit ComponentBuilder(const PacketSet& packets);
  ~ComponentBuilder();
  ComponentBuilder(const ComponentBuilder&) = delete;
  ComponentBuilder& operator=(const ComponentBuilder&) = delete;

  /// The component containing `start_name`; identical to
  /// build_component(packets, start_name) under the seed contract above.
  ComponentGraph component_at(RobotId start_name);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// build_all_components with the dominant degenerate case split out: when
/// `trivial` is non-null, single-robot senders whose packets list no occupied
/// neighbor are appended to it (in packet order, hence ascending) instead of
/// being materialized as one-node ComponentGraphs, and the return value holds
/// only the remaining components. Such components never carry multiplicity and
/// contribute nothing to a plan, but at k >= 10^5 on sparse random graphs they
/// are ~10^4 per round -- the compact form skips their node/robots/edges
/// allocations. The union of both outputs is exactly build_all_components;
/// passing nullptr IS build_all_components.
std::vector<ComponentGraph> build_components_split(
    const PacketSet& packets, std::vector<RobotId>* trivial);

inline std::vector<ComponentGraph> build_components_split(
    const std::vector<InfoPacket>& packets, std::vector<RobotId>* trivial) {
  return build_components_split(PacketSet::borrow(packets), trivial);
}

}  // namespace dyndisp::core
