// Algorithm 3: disjoint root-path computation (Section VI, Definition 5).
//
// LeafNodeSet(ST) holds the tree nodes with at least one EMPTY neighbor in
// G_r. Going through it in increasing name order, the algorithm keeps each
// node's unique tree path to the root iff the path shares no node (other
// than the root itself, which every root path ends at) with a previously
// kept path. Lemma 3 guarantees at least one kept path whenever the
// component has a multiplicity node.
//
// Clarification over the pseudocode (see DESIGN.md #3): when the ROOT has an
// empty neighbor it participates with its trivial zero-length path. From a
// rooted configuration the component is a single multiplicity node and the
// trivial path is the only way any robot can ever leave -- the paper's own
// lower-bound instance (Theorem 3) exercises exactly this case.
#pragma once

#include <vector>

#include "core/component.h"
#include "core/spanning_tree.h"
#include "util/types.h"

namespace dyndisp::core {

/// A root path stored root-first: {root, ..., leaf}. The trivial path of the
/// root is {root} alone.
using RootPath = std::vector<RobotId>;

/// Names of tree nodes with at least one empty neighbor, ascending.
std::vector<RobotId> leaf_node_set(const ComponentGraph& cg,
                                   const SpanningTree& st);

/// Algorithm 3: the disjoint path set, in the order the paths were kept
/// (which is increasing by leaf name -- the order Algorithm 4's trimming
/// step relies on).
///
/// `max_keep` (0 = unlimited) stops the scan once that many paths are kept.
/// Because paths are kept in increasing leaf-name order, the capped result
/// is exactly the uncapped result's prefix -- the planner passes its
/// count(root)-1 trimming bound here so giant components never materialize
/// paths the trim would discard anyway.
std::vector<RootPath> disjoint_paths(const ComponentGraph& cg,
                                     const SpanningTree& st,
                                     std::size_t max_keep = 0);

/// True if `a` and `b` share no node other than the root (index 0).
bool paths_disjoint(const RootPath& a, const RootPath& b);

}  // namespace dyndisp::core
