// The Theorem 1 impossibility adversary (local communication model, Fig. 1).
//
// Invariant it maintains: the occupied nodes form a path with a multiplicity
// node at one end, and all empty nodes hang off the far end as a star blob.
// The only empty node adjacent to any occupied node is the blob center, so
// the occupied-node count can grow only if the robot at the path end enters
// the blob AND the entire chain of robots behind it shifts forward in the
// same round. Because robots communicate only locally, interior robots
// cannot know which path direction leads to the blob; the adversary exploits
// this by probing the algorithm's planned moves on candidate graphs (path
// orderings x per-node port flips) and emitting one on which the chain
// breaks, so the occupied count never reaches k.
//
// An executable cannot quantify over all algorithms, so the trap reports how
// many rounds it failed to contain (failures() == 0 over a long horizon is
// the reproduced claim; the theorem guarantees a containing candidate exists
// for every deterministic local algorithm, k >= 5).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "util/rng.h"

namespace dyndisp {

class PathTrapAdversary final : public Adversary {
 public:
  PathTrapAdversary(std::size_t n, std::uint64_t seed = 13,
                    std::size_t random_candidates = 16);

  std::string name() const override { return "path-trap(Thm1)"; }
  std::size_t node_count() const override { return n_; }
  bool wants_plan_probe() const override { return true; }
  Graph next_graph(Round r, const Configuration& conf) override;

  /// Rounds in which no probed candidate prevented progress.
  std::size_t failures() const { return failures_; }

 private:
  std::size_t n_;
  Rng rng_;
  std::size_t random_candidates_;
  std::size_t failures_ = 0;

  /// Builds path-over-occupied (in `order`) + empty star blob at the far
  /// end; `flip[i]` swaps the two path ports of interior path node i.
  Graph build_candidate(const std::vector<NodeId>& order,
                        const std::vector<NodeId>& empty,
                        const std::vector<bool>& flip) const;
};

}  // namespace dyndisp
