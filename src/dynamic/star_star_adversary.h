// The Omega(k) lower-bound adversary of Theorem 3 (Fig. 2).
//
// Each round, let A_r be the currently occupied nodes and B_r the empty
// ones. The adversary emits the dynamic tree T_{A_r} + T_{B_r}: a star over
// A_r, a star over B_r, and one edge joining the two star centers. The only
// empty node adjacent to any occupied node is the center of T_{B_r}, so at
// most ONE new node can be reached per round -- by any algorithm, with any
// amount of memory -- while the tree stays connected with diameter <= 3.
// Dispersing k robots from a rooted configuration therefore needs >= k-1
// rounds.
#pragma once

#include <string>

#include "dynamic/dynamic_graph.h"
#include "util/rng.h"

namespace dyndisp {

class StarStarAdversary final : public Adversary {
 public:
  /// `shuffle_ports` additionally randomizes port labels each round (the
  /// bound is label-independent; the option exercises that).
  explicit StarStarAdversary(std::size_t n, bool shuffle_ports = false,
                             std::uint64_t seed = 7);

  std::string name() const override { return "star-star-lower-bound"; }
  std::size_t node_count() const override { return n_; }
  Graph next_graph(Round r, const Configuration& conf) override;

 private:
  std::size_t n_;
  bool shuffle_ports_;
  Rng rng_;
};

}  // namespace dyndisp
