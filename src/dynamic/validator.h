// Validity checks for adversary-emitted graphs: the 1-interval connected
// model demands a fixed vertex set, simple undirected edges, contiguous
// consistent port labels, and connectivity in every round.
#pragma once

#include <string>

#include "graph/graph.h"

namespace dyndisp {

/// Returns an empty string when `g` is a valid round-graph for an n-node
/// 1-interval connected dynamic graph, else a description of the violation.
std::string validate_round_graph(const Graph& g, std::size_t n);

}  // namespace dyndisp
