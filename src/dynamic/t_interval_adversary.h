// T-interval connected adversary (the paper's first future-work direction):
// wraps any inner adversary and holds each emitted graph fixed for T
// consecutive rounds. For T = 1 this is exactly the inner adversary; for
// larger T the whole graph is stable across each window, which trivially
// satisfies T-interval connectivity (a stable connected spanning subgraph
// across every window of T rounds).
#pragma once

#include <memory>
#include <string>

#include "dynamic/dynamic_graph.h"

namespace dyndisp {

class TIntervalAdversary final : public Adversary {
 public:
  /// Requires t >= 1 and a non-null inner adversary.
  TIntervalAdversary(std::unique_ptr<Adversary> inner, std::size_t t);

  std::string name() const override;
  std::size_t node_count() const override { return inner_->node_count(); }
  Graph next_graph(Round r, const Configuration& conf) override;

  /// Stable within each T-round window: rounds with r % t != 0 replay the
  /// window's graph verbatim. Safe under skipped next_graph calls because
  /// the inner adversary is only consulted at window starts (r % t == 0),
  /// where this returns false and forces a real call.
  bool same_as_last(Round r, const Configuration& conf) const override {
    (void)conf;
    return have_current_ && r % t_ != 0;
  }

  bool wants_plan_probe() const override { return inner_->wants_plan_probe(); }
  void set_plan_probe(PlanProbe probe) override {
    inner_->set_plan_probe(std::move(probe));
  }

  /// Window starts regenerate through the inner adversary's in-place path
  /// (its storage recycling and parallelism carry through); replay rounds
  /// copy-assign the cached window graph into the recycled rows.
  void next_graph_into(Round r, const Configuration& conf,
                       Graph& out) override;
  void set_thread_pool(ThreadPool* pool) override {
    inner_->set_thread_pool(pool);
  }

 private:
  std::unique_ptr<Adversary> inner_;
  std::size_t t_;
  Graph current_;
  bool have_current_ = false;
};

}  // namespace dyndisp
