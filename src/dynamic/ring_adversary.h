// Dynamic ring adversary -- the setting of the only prior dynamic-graph
// dispersion work the paper cites (Agarwalla et al., ICDCN 2018). A
// 1-interval connected dynamic ring is a cycle from which the adversary may
// remove at most one edge per round (removing more would disconnect it).
// This adversary removes the worst edge it can: by default the one whose
// removal maximizes the distance from the largest multiplicity node to the
// nearest empty node, forcing robots the long way around.
#pragma once

#include <string>

#include "dynamic/dynamic_graph.h"
#include "util/rng.h"

namespace dyndisp {

class RingAdversary final : public Adversary {
 public:
  enum class Strategy {
    kRandomEdge,   ///< Remove a uniformly random edge each round.
    kWorstEdge,    ///< Maximize multiplicity-to-empty distance.
    kFixedRing,    ///< Never remove an edge (static ring control).
  };

  RingAdversary(std::size_t n, Strategy strategy, std::uint64_t seed = 3);

  std::string name() const override;
  std::size_t node_count() const override { return n_; }
  Graph next_graph(Round r, const Configuration& conf) override;

 private:
  std::size_t n_;
  Strategy strategy_;
  Rng rng_;

  Graph ring_without(std::size_t missing_edge) const;  // n_ = no removal
};

}  // namespace dyndisp
