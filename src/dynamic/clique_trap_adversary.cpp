#include "dynamic/clique_trap_adversary.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

namespace dyndisp {

CliqueTrapAdversary::CliqueTrapAdversary(std::size_t n) : n_(n) {}

Graph CliqueTrapAdversary::build_probe_graph(
    const std::vector<NodeId>& occupied,
    const std::vector<NodeId>& empty) const {
  Graph g(n_);
  const std::size_t alpha = occupied.size();
  // Clique over occupied nodes minus the pair (occupied[0], occupied[1]).
  for (std::size_t i = 0; i < alpha; ++i)
    for (std::size_t j = i + 1; j < alpha; ++j)
      if (!(i == 0 && j == 1)) g.add_edge(occupied[i], occupied[j]);
  // Path H over the empty nodes.
  for (std::size_t i = 1; i < empty.size(); ++i)
    g.add_edge(empty[i - 1], empty[i]);
  // The two replacement edges standing in for the removed clique edge.
  if (!empty.empty() && alpha >= 2) {
    g.add_edge(occupied[0], empty.front());
    g.add_edge(occupied[1], empty.back());
  } else if (!empty.empty()) {
    g.add_edge(occupied[0], empty.front());
  }
  return g;
}

Graph CliqueTrapAdversary::next_graph(Round, const Configuration& conf) {
  assert(conf.node_count() == n_);
  const auto occupied = conf.occupied_nodes();
  std::vector<NodeId> empty;
  {
    const auto occ = conf.occupancy();
    for (NodeId v = 0; v < n_; ++v)
      if (occ[v] == 0) empty.push_back(v);
  }

  if (occupied.empty() || conf.multiplicity_nodes().empty() || empty.empty() ||
      occupied.size() < 3) {
    // Dispersed, degenerate, or too few occupied nodes for a clique trap.
    if (!conf.multiplicity_nodes().empty()) ++degenerate_;
    Graph g(n_);
    for (NodeId v = 1; v < n_; ++v) g.add_edge(0, v);
    return g;
  }

  const std::size_t alpha = occupied.size();
  Graph b0 = build_probe_graph(occupied, empty);
  if (!probe_) return b0;

  const MovePlan plan = probe_(b0);

  // Which ports does each occupied node's robot population plan to use?
  // (A robot's observable inputs are identical on every candidate below, so
  // the same deterministic algorithm emits the same port numbers on each.)
  std::map<NodeId, std::set<Port>> planned;
  for (RobotId id = 1; id <= conf.robot_count(); ++id) {
    if (!conf.alive(id)) continue;
    const Port p = plan[id - 1];
    if (p != kInvalidPort) planned[conf.position(id)].insert(p);
  }

  // Pick u*, v*: the two occupied nodes with the most free port slots.
  // Slots run over [1, alpha-1] (every occupied node has degree alpha-1).
  const std::size_t degree = alpha - 1;
  std::vector<NodeId> by_free = occupied;
  std::stable_sort(by_free.begin(), by_free.end(), [&](NodeId a, NodeId b) {
    const auto fa = planned.count(a) ? planned.at(a).size() : 0;
    const auto fb = planned.count(b) ? planned.at(b).size() : 0;
    return fa < fb;
  });
  auto free_slot = [&](NodeId v) -> Port {
    const auto it = planned.find(v);
    for (Port s = 1; s <= degree; ++s)
      if (it == planned.end() || !it->second.count(s)) return s;
    return kInvalidPort;
  };
  const NodeId u_star = by_free[0];
  const NodeId v_star = by_free[1];
  const Port su = free_slot(u_star);
  const Port sv = free_slot(v_star);
  if (su == kInvalidPort || sv == kInvalidPort) {
    // Every slot at the two freest nodes is in use: alpha is too small
    // relative to k for the paper's counting argument. Emit the probe graph.
    ++degenerate_;
    return b0;
  }

  // Build the emitted graph: clique minus {u*, v*}, H, and the two
  // replacement edges placed exactly at the free slots su / sv.
  Graph g(n_);
  for (std::size_t i = 1; i < empty.size(); ++i)
    g.add_edge(empty[i - 1], empty[i]);
  for (std::size_t i = 0; i < alpha; ++i) {
    for (std::size_t j = i + 1; j < alpha; ++j) {
      const NodeId a = occupied[i], b = occupied[j];
      if (a == u_star || a == v_star || b == u_star || b == v_star) continue;
      g.add_edge(a, b);
    }
  }
  auto add_constrained = [&](NodeId center, NodeId redirect_to, Port slot) {
    std::vector<NodeId> targets;
    for (const NodeId w : occupied)
      if (w != center && w != u_star && w != v_star) targets.push_back(w);
    targets.insert(targets.begin() + (slot - 1), redirect_to);
    for (const NodeId t : targets) g.add_edge(center, t);
  };
  add_constrained(u_star, empty.front(), su);
  add_constrained(v_star, empty.back(), sv);

  // Audit: re-probe on the graph actually emitted. For algorithms without
  // 1-neighborhood knowledge this equals `plan` (identical views); for
  // algorithms WITH it (e.g., Algorithm 4) the re-probe reveals the escape,
  // which failures() then records.
  const MovePlan emitted_plan = probe_(g);
  const std::size_t after = apply_plan(g, conf, emitted_plan).occupied_count();
  if (after > alpha) ++failures_;
  return g;
}

}  // namespace dyndisp
