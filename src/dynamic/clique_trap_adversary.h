// The Theorem 2 impossibility adversary (global communication, no
// 1-neighborhood knowledge).
//
// Round construction, following the paper's proof: form the clique over the
// alpha occupied nodes and a path H over the empty nodes. Because at most k
// robots move and the clique has alpha(alpha-1)/2 > k edges, some clique
// edge {u*, v*} is used by no planned move. Remove it and attach H with the
// two replacement edges {u*, x} and {v*, y} instead, placing each
// replacement at a port slot that no robot on u* / v* plans to use.
//
// Without 1-neighborhood knowledge, a robot's observable inputs (its memory,
// co-located robots, global messages, and its node's degree -- uniformly
// alpha-1 on occupied nodes) are identical across all these candidate
// graphs, so the planned port numbers probed on one candidate are the
// planned port numbers on the emitted graph; no robot ever crosses into H
// and no new node is ever visited. Algorithms *with* 1-neighborhood
// knowledge (e.g., the paper's Algorithm 4) see through the trap; the
// failures() counter records such escapes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dynamic/dynamic_graph.h"

namespace dyndisp {

class CliqueTrapAdversary final : public Adversary {
 public:
  explicit CliqueTrapAdversary(std::size_t n);

  std::string name() const override { return "clique-trap(Thm2)"; }
  std::size_t node_count() const override { return n_; }
  bool wants_plan_probe() const override { return true; }
  Graph next_graph(Round r, const Configuration& conf) override;

  /// Rounds where the trap could not prevent a new node from being visited.
  std::size_t failures() const { return failures_; }

  /// Rounds where no unused clique edge existed (alpha too small vs k);
  /// the trap needs alpha(alpha-1)/2 > k as in the paper's proof.
  std::size_t degenerate_rounds() const { return degenerate_; }

 private:
  std::size_t n_;
  std::size_t failures_ = 0;
  std::size_t degenerate_ = 0;

  Graph build_probe_graph(const std::vector<NodeId>& occupied,
                          const std::vector<NodeId>& empty) const;
};

}  // namespace dyndisp
