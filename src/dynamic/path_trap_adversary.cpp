#include "dynamic/path_trap_adversary.h"

#include <algorithm>
#include <cassert>

namespace dyndisp {

PathTrapAdversary::PathTrapAdversary(std::size_t n, std::uint64_t seed,
                                     std::size_t random_candidates)
    : n_(n), rng_(seed), random_candidates_(random_candidates) {}

Graph PathTrapAdversary::build_candidate(const std::vector<NodeId>& order,
                                         const std::vector<NodeId>& empty,
                                         const std::vector<bool>& flip) const {
  Graph g(n_);
  for (std::size_t i = 1; i < order.size(); ++i)
    g.add_edge(order[i - 1], order[i]);
  if (!empty.empty()) {
    const NodeId center = empty.front();
    g.add_edge(order.back(), center);
    for (std::size_t i = 1; i < empty.size(); ++i)
      g.add_edge(center, empty[i]);
  }
  // Orientation flips: swapping the two ports of a degree-2 path node makes
  // "the port I used last time" / "port 1" style rules walk backward.
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (flip[i] && g.degree(order[i]) == 2) {
      g.permute_ports(order[i], {1, 0});
    }
  }
  return g;
}

Graph PathTrapAdversary::next_graph(Round, const Configuration& conf) {
  assert(conf.node_count() == n_);
  const auto occupied = conf.occupied_nodes();
  const auto mult = conf.multiplicity_nodes();
  std::vector<NodeId> empty;
  {
    const auto occ = conf.occupancy();
    for (NodeId v = 0; v < n_; ++v)
      if (occ[v] == 0) empty.push_back(v);
  }

  if (occupied.empty() || mult.empty()) {
    // Dispersed (or no robots): the game is over; any connected graph works.
    Graph g(n_);
    for (NodeId v = 1; v < n_; ++v) g.add_edge(0, v);
    return g;
  }

  // Path ordering: multiplicity nodes first (farthest from the blob), so the
  // blob-adjacent end is a singleton whenever one exists.
  const auto occ_counts = conf.occupancy();
  std::vector<NodeId> base = occupied;
  std::stable_sort(base.begin(), base.end(), [&](NodeId a, NodeId b) {
    return occ_counts[a] > occ_counts[b];
  });

  const std::size_t alpha = base.size();
  const std::size_t k = conf.alive_count();

  // Candidate generation: orderings x flip masks, probed against the
  // algorithm. Accept the first candidate on which the occupied-node count
  // does not grow; otherwise fall back to the candidate minimizing it.
  std::vector<std::pair<std::vector<NodeId>, std::vector<bool>>> candidates;
  const std::vector<bool> no_flip(alpha, false);
  candidates.emplace_back(base, no_flip);
  for (std::size_t i = 0; i < alpha; ++i) {
    std::vector<bool> f(alpha, false);
    f[i] = true;
    candidates.emplace_back(base, f);
  }
  for (std::size_t c = 0; c < random_candidates_; ++c) {
    std::vector<NodeId> ord = base;
    if (alpha > 2) {
      // Keep the multiplicity block in front; shuffle the singleton tail.
      std::vector<NodeId> tail(ord.begin() + 1, ord.end());
      rng_.shuffle(tail);
      std::copy(tail.begin(), tail.end(), ord.begin() + 1);
    }
    std::vector<bool> f(alpha);
    for (std::size_t i = 0; i < alpha; ++i) f[i] = rng_.chance(0.5);
    candidates.emplace_back(std::move(ord), std::move(f));
  }

  Graph best_graph;
  std::size_t best_occupied = static_cast<std::size_t>(-1);
  for (const auto& [ord, f] : candidates) {
    Graph g = build_candidate(ord, empty, f);
    if (!probe_) return g;  // no probe installed: emit the canonical trap
    const MovePlan plan = probe_(g);
    const std::size_t after =
        apply_plan(g, conf, plan).occupied_count();
    if (after <= conf.occupied_count()) return g;
    if (after < best_occupied) {
      best_occupied = after;
      best_graph = std::move(g);
    }
  }
  if (best_occupied >= k) ++failures_;  // a candidate-proof algorithm dispersed
  return best_graph;
}

}  // namespace dyndisp
